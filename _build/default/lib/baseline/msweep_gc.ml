module Protocol = Bmx_dsm.Protocol
module Store = Bmx_memory.Store

(* Acquire a read token for every local object: marking then proceeds
   over consistent copies, the way strongly consistent mark&sweep
   requires. *)
let consistent_read_sweep gc ~node ~bunch =
  let proto = Bmx_gc.Gc_state.proto gc in
  let store = Protocol.store proto node in
  List.iter
    (fun (addr, _obj) ->
      let addr' = Protocol.acquire proto ~actor:Protocol.Gc ~node addr `Read in
      Protocol.release proto ~node addr')
    (Store.objects_of_bunch store bunch)

let run gc ~node ~bunch =
  consistent_read_sweep gc ~node ~bunch;
  Bmx_gc.Collect.run gc ~node ~bunches:[ bunch ] ~group_mode:false ~copy:false ()
