(* E23: happens-before certifier cost vs trace length.

   The certifier (Bmx_check.Races.certify) replays the typed event log
   three times — once with full vector clocks, twice more for the GC
   erasure diff — so its cost must stay near-linear in the trace length
   or it cannot gate CI soaks.  This experiment generates workload
   traces of increasing length (same shape as the e20 smoke
   configuration), times the linter replay and the certifier on the very
   same event list, and reports both plus their ratio.  The certifier
   carries the heavier analysis, but on the e20-smoke-sized trace it must
   stay within 2x of the linter's wall-clock — that bound, and
   near-linearity of ns/event across sizes, are the acceptance gates.

   Output: a table plus one machine-readable "BENCH {...}" line. *)

open Bmx_util
module Cluster = Bmx.Cluster
module Driver = Bmx_workload.Driver
module Json = Bmx_obs.Json
module Lint = Bmx_check.Lint
module Races = Bmx_check.Races

let now_ns () = Monotonic_clock.now ()

(* Wall-clock of [f ()], best of [reps] runs (first run also warms the
   minor heap with the trace resident). *)
let time ?(reps = 3) f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = now_ns () in
    ignore (f ());
    let t1 = now_ns () in
    let ms = Int64.to_float (Int64.sub t1 t0) /. 1e6 in
    if ms < !best then best := ms
  done;
  !best

let trace_of ~nodes ~objects_per_bunch ~ops =
  let cfg =
    {
      Driver.default with
      nodes;
      bunches = nodes;
      objects_per_bunch;
      ops;
      seed = 23;
    }
  in
  let d = Driver.setup cfg in
  let c = Driver.cluster d in
  Cluster.set_event_trace c true;
  Driver.run_ops d ~ops ();
  ignore (Cluster.collect_until_quiescent c ());
  ignore (Cluster.drain c);
  Trace_event.events (Cluster.evlog c)

type row = {
  c_ops : int;
  c_events : int;
  c_lint_ms : float;
  c_certify_ms : float;
  c_ns_per_event : float;
}

let run_size ~nodes ~objects_per_bunch ~ops =
  let events = trace_of ~nodes ~objects_per_bunch ~ops in
  let n = List.length events in
  let lint_ms = time (fun () -> Lint.run events) in
  let cert = Races.certify events in
  if not (Races.ok cert) then
    failwith
      (Printf.sprintf "e23: workload trace (%d ops) failed to certify" ops);
  let certify_ms = time (fun () -> Races.certify events) in
  {
    c_ops = ops;
    c_events = n;
    c_lint_ms = lint_ms;
    c_certify_ms = certify_ms;
    c_ns_per_event = (if n = 0 then 0.0 else certify_ms *. 1e6 /. float_of_int n);
  }

let row_json r =
  Json.Obj
    [
      ("ops", Json.Int r.c_ops);
      ("events", Json.Int r.c_events);
      ("lint_ms", Json.Float r.c_lint_ms);
      ("certify_ms", Json.Float r.c_certify_ms);
      ( "certify_over_lint",
        Json.Float
          (if r.c_lint_ms <= 0.0 then 0.0 else r.c_certify_ms /. r.c_lint_ms) );
      ("certify_ns_per_event", Json.Float r.c_ns_per_event);
    ]

let e23 () =
  let t =
    Table.create
      ~title:
        "E23: happens-before certifier cost vs trace length — wall-clock of \
         Races.certify against Lint.run on the same trace (near-linear \
         ns/event is the scaling gate)"
      ~columns:
        [
          "nodes"; "ops"; "events"; "lint ms"; "certify ms"; "x lint";
          "ns/event";
        ]
  in
  let rows =
    List.map
      (fun (nodes, objects_per_bunch, ops) ->
        let r = run_size ~nodes ~objects_per_bunch ~ops in
        Table.add_row t
          [
            string_of_int nodes;
            string_of_int r.c_ops;
            string_of_int r.c_events;
            Printf.sprintf "%.2f" r.c_lint_ms;
            Printf.sprintf "%.2f" r.c_certify_ms;
            (if r.c_lint_ms <= 0.0 then "-"
             else Printf.sprintf "%.2f" (r.c_certify_ms /. r.c_lint_ms));
            Printf.sprintf "%.0f" r.c_ns_per_event;
          ];
        r)
      (* First row is the e20-smoke shape — the ≤2x-of-the-linter
         acceptance gate reads off that line. *)
      [ (3, 48, 400); (4, 64, 800); (4, 64, 1600); (4, 64, 3200) ]
  in
  let json =
    Json.Obj
      [
        ("experiment", Json.String "e23");
        ("unit", Json.String "certify_ms_wallclock");
        ("configs", Json.List (List.map row_json rows));
      ]
  in
  Printf.printf "BENCH %s\n" (Json.to_string json);
  [ t ]
