(* The certifier certified: the happens-before engine must (a) certify
   honest runs — clean, faulted, partitioned — and (b) BITE on every
   seeded protocol mutation.  Mutations come in two flavours: synthetic
   traces forging a violation in isolation, and trace surgery on a real
   run (delete the events a buggy protocol would have skipped, e.g. the
   invalidation of one copy-set member) replayed through the certifier. *)

open Bmx_util
module E = Trace_event
module Races = Bmx_check.Races
module Lint = Bmx_check.Lint
module Cluster = Bmx.Cluster
module Driver = Bmx_workload.Driver
module Value = Bmx_memory.Value

let check_bool = Alcotest.check Alcotest.bool

let has kind (cert : Races.t) =
  List.exists (fun (f : Races.finding) -> f.Races.kind = kind) cert.findings

let fail_with_findings name (cert : Races.t) =
  Alcotest.failf "%s: %s" name
    (String.concat "; "
       (List.map Races.finding_to_string cert.Races.findings))

(* ------------------------------------------------- honest runs certify *)

let certify_driver_workload ?(partition = false) ?(crash = false) ~seed () =
  let cfg =
    { Driver.default with nodes = 4; bunches = 4; objects_per_bunch = 32;
      ops = 300; seed }
  in
  let d = Driver.setup cfg in
  let c = Driver.cluster d in
  Cluster.set_event_trace c true;
  Driver.run_ops d ~ops:100 ();
  if partition then begin
    Cluster.partition c ~groups:[ [ 3 ]; [ 0; 1; 2 ] ];
    Driver.run_ops d ~ops:100 ();
    Cluster.heal_all_links c;
    ignore (Cluster.settle c)
  end;
  if crash then begin
    Cluster.crash_node c ~node:2;
    Driver.run_ops d ~ops:60 ();
    Cluster.restart_node c ~node:2;
    ignore (Cluster.settle c)
  end;
  Driver.run_ops d ();
  ignore (Cluster.collect_until_quiescent c ());
  ignore (Cluster.drain c);
  Races.certify (Cluster.events c)

let test_clean_workload_certifies () =
  let cert = certify_driver_workload ~seed:31 () in
  if not (Races.ok cert) then fail_with_findings "clean workload" cert;
  check_bool "erasure holds" true cert.Races.erasure_ok;
  check_bool "saw accesses" true (cert.Races.reads > 0 && cert.Races.writes > 0)

let test_partitioned_workload_certifies () =
  let cert = certify_driver_workload ~partition:true ~seed:32 () in
  if not (Races.ok cert) then fail_with_findings "partitioned workload" cert

let test_crash_workload_certifies () =
  let cert = certify_driver_workload ~crash:true ~seed:33 () in
  if not (Races.ok cert) then fail_with_findings "crash workload" cert

(* ------------------------------------------- synthetic forged traces *)

let w ?(actor = E.App) ?(covered = true) node uid version =
  E.Write_obs { actor; node; uid; version; covered }

let r ?(actor = E.App) ?(covered = true) node uid version =
  E.Read_obs { actor; node; uid; version; covered }

(* Two covered writes at different nodes with no happens-before edge:
   the certifier must call the write-write race. *)
let test_unordered_writes_race () =
  let cert = Races.certify [ w 0 1 1; w 1 1 2 ] in
  check_bool "write-write race flagged" true (has Races.Race cert)

(* Negative control: the same two writes ordered through a token
   hand-off (grant edge) are clean. *)
let test_token_transfer_orders_writes () =
  let cert =
    Races.certify
      [
        w 0 1 1;
        E.Acquire_start { actor = E.App; node = 1; uid = 1; tok = E.Write };
        E.Grant_sent
          { granter = 0; requester = 1; uid = 1; tok = E.Write; updates = 0 };
        E.Hook_ssp { granter = 0; requester = 1; uid = 1 };
        E.Acquire_done
          { actor = E.App; node = 1; uid = 1; tok = E.Write; addr_valid = true };
        w 1 1 2;
        E.Release { node = 1; uid = 1 };
      ]
  in
  if not (Races.ok cert) then fail_with_findings "token transfer" cert

(* A covered read observing an older version than the HB-maximal write
   — the grant arrived but the fresh contents did not (e.g. delivered
   across a cut with the invalidation dropped). *)
let test_stale_read_detected () =
  let cert =
    Races.certify
      [
        w 0 1 1;
        w 0 1 2;
        E.Link_cut { src = 0; dst = 1 };
        E.Acquire_start { actor = E.App; node = 1; uid = 1; tok = E.Read };
        E.Grant_sent
          { granter = 0; requester = 1; uid = 1; tok = E.Read; updates = 0 };
        E.Acquire_done
          { actor = E.App; node = 1; uid = 1; tok = E.Read; addr_valid = true };
        r 1 1 1;
      ]
  in
  check_bool "stale read flagged" true (has Races.Stale_read cert)

(* A covered read observing a version newer than any recorded write. *)
let test_phantom_version_detected () =
  let cert = Races.certify [ w 0 1 1; r 0 1 5 ] in
  check_bool "phantom version flagged" true (has Races.Phantom_version cert)

(* The collector acquiring a token is interference, full stop. *)
let test_gc_acquire_is_interference () =
  let cert =
    Races.certify
      [
        E.Acquire_start { actor = E.Gc; node = 0; uid = 7; tok = E.Read };
        E.Acquire_done
          { actor = E.Gc; node = 0; uid = 7; tok = E.Read; addr_valid = true };
        E.Release { node = 0; uid = 7 };
      ]
  in
  check_bool "gc acquire flagged" true (has Races.Gc_interference cert)

(* A collector write both is interference and breaks the erasure
   theorem: erasing it moves the read mapping's version basis. *)
let test_gc_write_breaks_erasure () =
  let cert =
    Races.certify [ w 0 1 1; w ~actor:E.Gc 0 1 2; r 0 1 2 ] in
  check_bool "gc write flagged" true (has Races.Gc_interference cert);
  check_bool "erasure broken" false cert.Races.erasure_ok;
  check_bool "erasure finding emitted" true (has Races.Erasure_broken cert)

(* An overflowed log is never certifiable. *)
let test_overflow_uncertifiable () =
  let cert = Races.certify ~overflowed:true [ w 0 1 1 ] in
  check_bool "incomplete trace flagged" true (has Races.Incomplete_trace cert)

(* Findings are deterministic: certifying the same trace twice yields
   the same report, sorted by trace position. *)
let test_findings_deterministic () =
  let trace = [ w 0 1 1; w 1 1 2; w 0 2 1; w 1 2 2; r 1 1 9 ] in
  let a = Races.certify trace and b = Races.certify trace in
  check_bool "same findings" true
    (List.map Races.finding_to_string a.Races.findings
    = List.map Races.finding_to_string b.Races.findings);
  let ats = List.map (fun (f : Races.finding) -> f.Races.at) a.Races.findings in
  check_bool "sorted by position" true (List.sort compare ats = ats)

(* ------------------------------------------------------ trace surgery *)

(* A deterministic three-node scenario with a copy-set: N1 and N2 read
   x (home N0), then N1 acquires the write token — a remote grant, so
   the SSP hook runs and N2's read copy is invalidated — then N2 reads
   again. *)
let copyset_scenario () =
  let c = Cluster.create ~nodes:3 ~trace_events:true () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  Cluster.add_root c ~node:0 x;
  let uid = Cluster.uid_at c ~node:0 x in
  let read_at node =
    let a = Cluster.acquire_read c ~node x in
    ignore (Cluster.read c ~node a 0);
    Cluster.release c ~node a
  in
  read_at 1;
  read_at 2;
  let a = Cluster.acquire_write c ~node:1 x in
  Cluster.write c ~node:1 a 0 (Value.Data 2);
  Cluster.release c ~node:1 a;
  read_at 2;
  ignore (Cluster.drain c);
  (Cluster.events c, uid)

let test_copyset_scenario_baseline_clean () =
  let events, _ = copyset_scenario () in
  let cert = Races.certify events in
  if not (Races.ok cert) then fail_with_findings "copy-set baseline" cert

(* Mutation: the writer skips invalidating one copy-set member — drop
   every trace of the invalidation exchange with N2 (the [Invalidate]
   record and its wire messages), exactly what a protocol that lost the
   copy-set forward would produce.  The write is then unordered with
   N2's covered read and the certifier must call the race. *)
let test_skipped_invalidation_races () =
  let events, uid = copyset_scenario () in
  let target = 2 in
  let doctored =
    List.filter
      (fun (e : E.t) ->
        match e with
        | E.Invalidate { dst; uid = u; _ } -> not (dst = target && u = uid)
        | E.Rpc { src; dst; kind = "invalidate"; _ }
        | E.Msg_sent { src; dst; kind = "invalidate"; _ }
        | E.Msg_delivered { src; dst; kind = "invalidate"; _ } ->
            not (src = target || dst = target)
        | _ -> true)
      events
  in
  check_bool "surgery removed something" true
    (List.length doctored < List.length events);
  let cert = Races.certify doctored in
  check_bool "skipped invalidation flagged as race" true (has Races.Race cert)

(* Mutation: disable the SSP-creation hook on an ownership transfer.
   Happens-before is unaffected (the grant edge still exists), so this
   tripwire belongs to the linter: Invariant 3. *)
let test_disabled_ssp_hook_flagged () =
  let events, uid = copyset_scenario () in
  let doctored =
    List.filter
      (fun (e : E.t) ->
        match e with E.Hook_ssp { uid = u; _ } -> u <> uid | _ -> true)
      events
  in
  check_bool "surgery removed the hook" true
    (List.length doctored < List.length events);
  let vs = Lint.run doctored in
  check_bool "missing hook flagged" true
    (List.exists (fun v -> v.Lint.rule = Lint.Invariant3) vs)

(* Mutation: a grant delivered across a partition cut.  The linter owns
   the quarantine rule; forge the split delivery and check it bites
   (the certifier's stale-read side of this story is synthetic above). *)
let test_delivery_across_cut_flagged () =
  let vs =
    Lint.run
      [
        E.Link_cut { src = 0; dst = 1 };
        E.Msg_sent
          { src = 0; dst = 1; kind = "token_grant"; seq = 1; rel = true };
        E.Msg_delivered
          { src = 0; dst = 1; kind = "token_grant"; seq = 1; rel = true };
      ]
  in
  check_bool "delivery across cut flagged" true
    (List.exists (fun v -> v.Lint.rule = Lint.Partition_quarantine) vs)

(* ------------------------------------------------------------- report *)

let test_report_carries_verdict () =
  let events, _ = copyset_scenario () in
  let cert = Races.certify events in
  let report =
    Bmx_obs.Report.of_events
      ~metrics:(Bmx_obs.Metrics.create ())
      (List.map (fun e -> (0, e)) events)
  in
  check_bool "unset by default" true
    (Bmx_obs.Report.certified report = None);
  let report = Bmx_obs.Report.with_certified report (Races.ok cert) in
  check_bool "verdict recorded" true
    (Bmx_obs.Report.certified report = Some true)

let () =
  Alcotest.run "certify"
    [
      ( "honest runs",
        [
          Alcotest.test_case "clean workload certifies" `Quick
            test_clean_workload_certifies;
          Alcotest.test_case "partitioned workload certifies" `Quick
            test_partitioned_workload_certifies;
          Alcotest.test_case "crash workload certifies" `Quick
            test_crash_workload_certifies;
          Alcotest.test_case "copy-set scenario baseline clean" `Quick
            test_copyset_scenario_baseline_clean;
        ] );
      ( "forged traces",
        [
          Alcotest.test_case "unordered writes race" `Quick
            test_unordered_writes_race;
          Alcotest.test_case "token transfer orders writes" `Quick
            test_token_transfer_orders_writes;
          Alcotest.test_case "stale read detected" `Quick
            test_stale_read_detected;
          Alcotest.test_case "phantom version detected" `Quick
            test_phantom_version_detected;
          Alcotest.test_case "gc acquire is interference" `Quick
            test_gc_acquire_is_interference;
          Alcotest.test_case "gc write breaks erasure" `Quick
            test_gc_write_breaks_erasure;
          Alcotest.test_case "overflowed log uncertifiable" `Quick
            test_overflow_uncertifiable;
          Alcotest.test_case "findings deterministic and sorted" `Quick
            test_findings_deterministic;
        ] );
      ( "trace surgery",
        [
          Alcotest.test_case "skipped invalidation races" `Quick
            test_skipped_invalidation_races;
          Alcotest.test_case "disabled SSP hook flagged" `Quick
            test_disabled_ssp_hook_flagged;
          Alcotest.test_case "delivery across cut flagged" `Quick
            test_delivery_across_cut_flagged;
        ] );
      ( "report",
        [
          Alcotest.test_case "report carries verdict" `Quick
            test_report_carries_verdict;
        ] );
    ]
