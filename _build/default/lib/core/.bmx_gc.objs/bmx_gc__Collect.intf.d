lib/core/collect.mli: Bmx_util Format Gc_state
