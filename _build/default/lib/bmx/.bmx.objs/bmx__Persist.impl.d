lib/bmx/persist.ml: Addr Bmx_dsm Bmx_memory Bmx_netsim Bmx_rvm Bmx_util Cluster Hashtbl Ids List
