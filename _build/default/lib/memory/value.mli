(** Field values stored inside objects.

    An object is a contiguous sequence of 4-byte words (§2.1); each word is
    either an ordinary pointer (an address — "object references are
    therefore ordinary pointers") or raw data.  The reference-map bit for a
    word says which (§8). *)

type t =
  | Ref of Bmx_util.Addr.t  (** a pointer; [Ref Addr.null] is a nil pointer *)
  | Data of int  (** uninterpreted data word *)

val nil : t
(** [Ref Addr.null]. *)

val is_pointer : t -> bool
(** [true] for [Ref a] with non-null [a]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
