(* The driver's incremental legality memo (Bmx_workload.Reach) against
   forged adversarial sequences and a from-scratch oracle.

   Three layers:
   - hand-forged shapes that break naive decremental reachability
     (rootless cycles that must not keep themselves alive, diamonds
     where one support survives, cascades through a dying region);
   - randomized equivalence: every mutation of a random graph is
     followed by a full naive BFS recomputation, and the mirror's
     bitmap must match it exactly — the memo is exact at every step,
     not just eventually;
   - driver-level: a churn-heavy workload runs in single-op batches with
     no batch resync, and [Driver.check_memo] compares the mirror
     object-by-object against [Audit.union_reachable] — including
     across collections and ownership migration, which rewrite
     addresses but must leave the uid-level graph untouched.

   Mutation checks (hand-applied breakages that make this file fail):
   - skipping the cascade after a closure clear (out-targets of cleared
     nodes keep stale marks): "cascade through a dying region" and the
     random equivalence property;
   - treating an anchored search as proof for the whole closure rather
     than the seed only — marks go stale-false: random equivalence;
   - dropping the rootless-cycle clear (only clearing the seed):
     "rootless cycle dies";
   - forgetting [unlink_edge] on overwrite, so ghost in-edges anchor
     dead nodes: "relink drops the old support" and random equivalence;
   - in the driver, updating the mirror before [remove_root_checked]
     reports whether a root was really removed: the driver-level batch
     equivalence diverges as soon as a stale handle makes the removal
     a silent no-op. *)

open Bmx_util
module Reach = Bmx_workload.Reach
module Driver = Bmx_workload.Driver
module Cluster = Bmx.Cluster

let check = Alcotest.check
let check_bool = check Alcotest.bool

let reachable_list t n = List.init n (fun i -> Reach.reachable t i)

let test_chain_and_cycle () =
  (* r -> a -> b -> c -> a  (cycle kept alive through the chain head) *)
  let t = Reach.create ~n:4 ~arity:1 in
  Reach.set_edge t ~src:0 ~slot:0 1;
  Reach.set_edge t ~src:1 ~slot:0 2;
  Reach.set_edge t ~src:2 ~slot:0 3;
  Reach.set_edge t ~src:3 ~slot:0 1;
  Reach.add_root t 0;
  check (Alcotest.list Alcotest.bool) "all alive" [ true; true; true; true ]
    (reachable_list t 4);
  Reach.drop_root t 0;
  (* The cycle 1->2->3->1 is rootless: it must not keep itself alive. *)
  check (Alcotest.list Alcotest.bool) "rootless cycle dies"
    [ false; false; false; false ]
    (reachable_list t 4)

let test_diamond_keeps_survivor () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3; cutting 1 -> 3 leaves 3 via 2. *)
  let t = Reach.create ~n:4 ~arity:2 in
  Reach.set_edge t ~src:0 ~slot:0 1;
  Reach.set_edge t ~src:0 ~slot:1 2;
  Reach.set_edge t ~src:1 ~slot:0 3;
  Reach.set_edge t ~src:2 ~slot:0 3;
  Reach.add_root t 0;
  Reach.set_edge t ~src:1 ~slot:0 (-1);
  check_bool "3 survives via the other arm" true (Reach.reachable t 3);
  Reach.set_edge t ~src:2 ~slot:0 (-1);
  check_bool "3 dies with its last support" false (Reach.reachable t 3)

let test_cascade_through_dying_region () =
  (* root -> 1 -> 2 -> 3 -> 4, plus 2 -> 4 directly: dropping edge
     root->1 must clear the whole chain including 4, whose two supports
     (3 and 2) both die in the same event — the cascade, not the first
     closure, reaches it. *)
  let t = Reach.create ~n:5 ~arity:2 in
  Reach.set_edge t ~src:0 ~slot:0 1;
  Reach.set_edge t ~src:1 ~slot:0 2;
  Reach.set_edge t ~src:2 ~slot:0 3;
  Reach.set_edge t ~src:3 ~slot:0 4;
  Reach.set_edge t ~src:2 ~slot:1 4;
  Reach.add_root t 0;
  Reach.set_edge t ~src:0 ~slot:0 (-1);
  check (Alcotest.list Alcotest.bool) "whole region dies"
    [ true; false; false; false; false ]
    (reachable_list t 5)

let test_relink_resurrects () =
  let t = Reach.create ~n:3 ~arity:1 in
  Reach.add_root t 0;
  Reach.set_edge t ~src:1 ~slot:0 2;
  check_bool "2 unreachable (its source is)" false (Reach.reachable t 2);
  Reach.set_edge t ~src:0 ~slot:0 1;
  check_bool "1 resurrected" true (Reach.reachable t 1);
  check_bool "2 resurrected transitively" true (Reach.reachable t 2);
  Reach.set_edge t ~src:0 ~slot:0 (-1);
  check_bool "relink drops the old support" false (Reach.reachable t 1)

let test_self_loop_and_root_counting () =
  let t = Reach.create ~n:2 ~arity:1 in
  Reach.set_edge t ~src:0 ~slot:0 0;
  Reach.add_root t 0;
  Reach.add_root t 0;
  Reach.drop_root t 0;
  check_bool "second root still pins the self-loop" true (Reach.reachable t 0);
  Reach.drop_root t 0;
  check_bool "self-loop cannot pin itself" false (Reach.reachable t 0)

(* --- randomized equivalence vs a naive oracle ------------------------- *)

let naive_reachable ~n ~arity out roots =
  let seen = Array.make n false in
  let rec visit i =
    if not seen.(i) then begin
      seen.(i) <- true;
      for s = 0 to arity - 1 do
        let j = out.((i * arity) + s) in
        if j >= 0 then visit j
      done
    end
  in
  for i = 0 to n - 1 do
    if roots.(i) > 0 then visit i
  done;
  seen

let random_equivalence seed =
  let rng = Rng.make seed in
  let n = 8 + Rng.int rng 40 in
  let arity = 1 + Rng.int rng 3 in
  let t = Reach.create ~n ~arity in
  let out = Array.make (n * arity) (-1) in
  let roots = Array.make n 0 in
  for step = 1 to 600 do
    (match Rng.int rng 5 with
    | 0 ->
        let i = Rng.int rng n in
        roots.(i) <- roots.(i) + 1;
        Reach.add_root t i
    | 1 ->
        let i = Rng.int rng n in
        if roots.(i) > 0 then begin
          roots.(i) <- roots.(i) - 1;
          Reach.drop_root t i
        end
    | _ ->
        let src = Rng.int rng n and slot = Rng.int rng arity in
        let target = if Rng.int rng 4 = 0 then -1 else Rng.int rng n in
        out.((src * arity) + slot) <- target;
        Reach.set_edge t ~src ~slot target);
    let oracle = naive_reachable ~n ~arity out roots in
    for i = 0 to n - 1 do
      if Reach.reachable t i <> oracle.(i) then
        Alcotest.failf
          "seed %d step %d: node %d mirror=%b oracle=%b (n=%d arity=%d)" seed
          step i (Reach.reachable t i) oracle.(i) n arity
    done
  done

let test_random_equivalence () =
  List.iter random_equivalence [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* --- driver-level: mirror == audit truth under a hostile workload ----- *)

let assert_memo d label =
  match Driver.check_memo d with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" label msg

let test_driver_memo_matches_audit () =
  let cfg =
    {
      Driver.default with
      nodes = 3;
      bunches = 3;
      objects_per_bunch = 24;
      root_churn_prob = 0.25;
      relink_prob = 0.8;
      write_prob = 0.7;
      seed = 97;
    }
  in
  let d = Driver.setup cfg in
  let c = Driver.cluster d in
  assert_memo d "after setup";
  (* Single-op batches with no resync: every divergence surfaces at the
     op that introduced it, not masked by a batch-start rebuild. *)
  for k = 1 to 300 do
    Driver.run_ops d ~resync_first:false ~ops:1 ();
    if k mod 25 = 0 then assert_memo d (Printf.sprintf "after op %d" k)
  done;
  assert_memo d "after 300 ops";
  (* Collections and ownership migration rewrite addresses; the
     uid-level graph — and therefore the mirror — must not move. *)
  ignore (Cluster.gc_round c);
  ignore (Cluster.drain c);
  assert_memo d "after a collection round";
  Driver.run_ops d ~resync_first:false ~ops:100 ();
  assert_memo d "after 100 more ops";
  check_bool "workload actually exercised churn" true (Driver.live_roots d > 0)

let test_modes_execute_identically () =
  (* The incremental mirror and the full-rescan baseline must drive the
     cluster through the same op sequence: same RNG draws, same
     legality verdicts.  Compare end states cheaply: live roots and the
     audit's reachable-set cardinality. *)
  let run full_rescan_legality =
    let cfg =
      {
        Driver.default with
        nodes = 3;
        bunches = 3;
        objects_per_bunch = 16;
        root_churn_prob = 0.2;
        relink_prob = 0.6;
        seed = 41;
        ops = 400;
        full_rescan_legality;
      }
    in
    let d = Driver.setup cfg in
    Driver.run_ops d ();
    ( Driver.live_roots d,
      Ids.Uid_set.cardinal (Bmx.Audit.union_reachable (Driver.cluster d)) )
  in
  let roots_inc, reach_inc = run false in
  let roots_full, reach_full = run true in
  check Alcotest.int "live roots agree" roots_full roots_inc;
  check Alcotest.int "reachable set agrees" reach_full reach_inc

let () =
  Alcotest.run "reach"
    [
      ( "forged",
        [
          Alcotest.test_case "rootless cycle dies" `Quick test_chain_and_cycle;
          Alcotest.test_case "diamond keeps the survivor" `Quick
            test_diamond_keeps_survivor;
          Alcotest.test_case "cascade through a dying region" `Quick
            test_cascade_through_dying_region;
          Alcotest.test_case "relink resurrects and re-kills" `Quick
            test_relink_resurrects;
          Alcotest.test_case "self-loops and root counts" `Quick
            test_self_loop_and_root_counting;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "random graphs match naive recomputation" `Quick
            test_random_equivalence;
        ] );
      ( "driver",
        [
          Alcotest.test_case "mirror matches audit under churn" `Quick
            test_driver_memo_matches_audit;
          Alcotest.test_case "incremental and full-rescan modes agree" `Quick
            test_modes_execute_identically;
        ] );
    ]
