examples/oo7_bench.mli:
