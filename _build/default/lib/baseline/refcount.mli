(** Baseline: distributed reference counting with increment/decrement
    messages (Bevan-style, the alternative §6.1 argues against).

    The counter model reproduces the two well-known properties the paper's
    idempotent-table design avoids:

    - {b cycles are never reclaimed} (experiment E9);
    - {b increment/decrement messages are not idempotent}: a lost
      decrement leaks the object forever, a lost increment (or a
      duplicated decrement) frees a live object (experiment E10).

    The collector runs against a cluster snapshot: counts are initialized
    from the actual heap, then root drops inject decrement traffic through
    the (possibly faulty) simulated channel. *)

type outcome = {
  rc_reclaimed : int;  (** objects whose count correctly reached zero *)
  rc_leaked : int;  (** garbage retained because a decrement was lost *)
  rc_premature : int;  (** live objects freed (safety violations) *)
  rc_cycle_garbage : int;  (** unreachable objects kept alive by a cycle *)
  rc_messages : int;  (** increment/decrement messages sent *)
}

val analyze :
  Bmx.Cluster.t ->
  ?loss_prob:float ->
  ?dup_prob:float ->
  ?rng:Bmx_util.Rng.t ->
  unit ->
  outcome
(** Initialize per-object counts from the cluster's current heap (one
    count per incoming reference or root), then tear down: process every
    unreachable object's death as cascading decrement messages, each
    subject to [loss_prob] / [dup_prob].  What the counting scheme frees,
    leaks, or frees wrongly is reported against the ground truth of
    {!Bmx.Audit.union_reachable}. *)
