lib/workload/graphgen.ml: Array Bmx Bmx_memory Bmx_util Ids List Rng
