examples/quickstart.ml: Bmx Bmx_gc Bmx_memory Bmx_util Printf
