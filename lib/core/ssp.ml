open Bmx_util

type inter_stub = {
  is_src_bunch : Ids.Bunch.t;
  is_src_uid : Ids.Uid.t;
  is_created_at : Ids.Node.t;
  is_target_uid : Ids.Uid.t;
  is_target_bunch : Ids.Bunch.t;
  is_target_addr : Addr.t;
  is_scion_at : Ids.Node.t;
}

type inter_scion = {
  xs_src_bunch : Ids.Bunch.t;
  xs_src_uid : Ids.Uid.t;
  xs_src_node : Ids.Node.t;
  xs_target_uid : Ids.Uid.t;
  xs_target_bunch : Ids.Bunch.t;
}

type intra_stub = { ns_bunch : Ids.Bunch.t; ns_uid : Ids.Uid.t; ns_holder : Ids.Node.t }

type intra_scion = {
  xn_bunch : Ids.Bunch.t;
  xn_uid : Ids.Uid.t;
  xn_owner_side : Ids.Node.t;
}

(* Match keys: exactly the fields the coverage predicates below compare.
   Stub records also carry volatile detail — notably the target's address,
   which changes whenever the target bunch is copied — so table journals,
   delta messages and receiver mirrors all work at key granularity:
   address churn costs no wire bytes and cannot perturb scion cleaning. *)

type inter_key = Ids.Bunch.t * Ids.Uid.t * Ids.Node.t * Ids.Uid.t
type intra_key = Ids.Bunch.t * Ids.Uid.t * Ids.Node.t

let inter_stub_key s =
  (s.is_src_bunch, s.is_src_uid, s.is_created_at, s.is_target_uid)

let inter_scion_key s =
  (s.xs_src_bunch, s.xs_src_uid, s.xs_src_node, s.xs_target_uid)

let intra_stub_key s = (s.ns_bunch, s.ns_uid, s.ns_holder)
let intra_scion_key ~holder s = (s.xn_bunch, s.xn_uid, holder)

let inter_stub_matches stub scion =
  Ids.Bunch.equal stub.is_src_bunch scion.xs_src_bunch
  && Ids.Uid.equal stub.is_src_uid scion.xs_src_uid
  && Ids.Node.equal stub.is_created_at scion.xs_src_node
  && Ids.Uid.equal stub.is_target_uid scion.xs_target_uid

let intra_stub_matches ~holder stub scion =
  Ids.Bunch.equal stub.ns_bunch scion.xn_bunch
  && Ids.Uid.equal stub.ns_uid scion.xn_uid
  && Ids.Node.equal stub.ns_holder holder

let pp_inter_stub ppf s =
  Format.fprintf ppf "@[<h>stub[%a:%a@%a -> %a:%a sc@%a]@]" Ids.Bunch.pp
    s.is_src_bunch Ids.Uid.pp s.is_src_uid Ids.Node.pp s.is_created_at
    Ids.Bunch.pp s.is_target_bunch Ids.Uid.pp s.is_target_uid Ids.Node.pp
    s.is_scion_at

let pp_inter_scion ppf s =
  Format.fprintf ppf "@[<h>scion[%a:%a <- %a:%a@%a]@]" Ids.Bunch.pp
    s.xs_target_bunch Ids.Uid.pp s.xs_target_uid Ids.Bunch.pp s.xs_src_bunch
    Ids.Uid.pp s.xs_src_uid Ids.Node.pp s.xs_src_node

let pp_intra_stub ppf s =
  Format.fprintf ppf "@[<h>intra-stub[%a:%a holder=%a]@]" Ids.Bunch.pp s.ns_bunch
    Ids.Uid.pp s.ns_uid Ids.Node.pp s.ns_holder

let pp_intra_scion ppf s =
  Format.fprintf ppf "@[<h>intra-scion[%a:%a owner=%a]@]" Ids.Bunch.pp s.xn_bunch
    Ids.Uid.pp s.xn_uid Ids.Node.pp s.xn_owner_side
