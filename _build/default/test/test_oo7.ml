(* The OO7-flavoured design-database workload. *)

module Cluster = Bmx.Cluster
module Oo7 = Bmx_workload.Oo7

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let expected_atomics cfg =
  let bases =
    int_of_float (float_of_int cfg.Oo7.assembly_fanout ** float_of_int cfg.Oo7.levels)
  in
  bases * cfg.Oo7.comp_per_base * cfg.Oo7.atomic_per_comp

let test_build_size () =
  let c = Cluster.create ~nodes:2 () in
  let m = Oo7.build c ~node:0 Oo7.default in
  let cfg = Oo7.config m in
  let bases =
    int_of_float (float_of_int cfg.Oo7.assembly_fanout ** float_of_int cfg.Oo7.levels)
  in
  let assemblies =
    (* Complete tree: fanout^0 + ... + fanout^levels. *)
    let rec sum i acc =
      if i > cfg.Oo7.levels then acc
      else sum (i + 1) (acc + int_of_float (float_of_int cfg.Oo7.assembly_fanout ** float_of_int i))
    in
    sum 0 0
  in
  let comps = bases * cfg.Oo7.comp_per_base in
  check_int "object inventory" (assemblies + comps + (comps * cfg.Oo7.atomic_per_comp))
    (Oo7.size m);
  check_bool "safety after build" true (Result.is_ok (Bmx.Audit.check_safety c))

let test_t1_visits_every_atomic () =
  let c = Cluster.create ~nodes:2 () in
  let m = Oo7.build c ~node:0 Oo7.default in
  check_int "T1 from the home node" (expected_atomics Oo7.default) (Oo7.t1 m ~node:0);
  (* A remote node traverses through read tokens. *)
  check_int "T1 from a remote node" (expected_atomics Oo7.default) (Oo7.t1 m ~node:1)

let test_t2_updates () =
  let c = Cluster.create ~nodes:2 () in
  let m = Oo7.build c ~node:0 Oo7.default in
  check_int "T2 updates every atomic" (expected_atomics Oo7.default) (Oo7.t2 m ~node:1);
  (* A second T2 sees build dates already bumped once (reads the new
     values through tokens — consistency). *)
  check_int "T2 again" (expected_atomics Oo7.default) (Oo7.t2 m ~node:0);
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c))

let test_churn_creates_collectable_garbage () =
  let c = Cluster.create ~nodes:1 () in
  let m = Oo7.build c ~node:0 Oo7.default in
  let made_garbage = Oo7.churn m ~node:0 in
  check_bool "churn replaced parts" true (made_garbage > 0);
  let reclaimed = Cluster.collect_until_quiescent c () in
  check_int "old composites and their atomic rings reclaimed" made_garbage reclaimed;
  (* The module still traverses completely. *)
  check_int "T1 after churn+GC" (expected_atomics Oo7.default) (Oo7.t1 m ~node:0);
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c))

let test_traversal_under_gc () =
  let c = Cluster.create ~nodes:2 () in
  let m = Oo7.build c ~node:0 Oo7.default in
  (* Interleave collections with traversals at another node. *)
  ignore (Oo7.t1 m ~node:1);
  ignore (Cluster.gc_round c);
  check_int "T1 after a GC round" (expected_atomics Oo7.default) (Oo7.t1 m ~node:1);
  ignore (Oo7.t2 m ~node:1);
  ignore (Cluster.gc_round c);
  check_int "T2 after another round" (expected_atomics Oo7.default) (Oo7.t2 m ~node:0);
  check_int "collector still token-free" 0
    (Bmx_util.Stats.get (Cluster.stats c) "dsm.gc.acquire_read"
    + Bmx_util.Stats.get (Cluster.stats c) "dsm.gc.acquire_write")

let () =
  Alcotest.run "oo7"
    [
      ( "structure",
        [
          Alcotest.test_case "inventory" `Quick test_build_size;
          Alcotest.test_case "T1 visits every atomic part" `Quick
            test_t1_visits_every_atomic;
          Alcotest.test_case "T2 updates every atomic part" `Quick test_t2_updates;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "churn garbage is reclaimed" `Quick
            test_churn_creates_collectable_garbage;
          Alcotest.test_case "traversals under GC" `Quick test_traversal_under_gc;
        ] );
    ]
