(* E20: scalability sweep — objects-per-bunch × nodes.

   The paper's performance story (§4.3–§4.4, §8) is that BGC costs stay
   local and cleaner traffic stays background; this experiment measures
   whether the reproduction scales past toy sizes.  Each configuration
   runs the mixed mutator workload interleaved with collector waves
   (as E5/E6 do) and reports wall-clock throughput, GC pause
   percentiles (virtual time, via bmx_obs spans), and wire totals.  A
   steady-state phase then runs light-churn cleaner cycles to compare
   delta-table bytes against full-table bytes.

   Output: a table per run plus a machine-readable BENCH_SCALE.json
   (also echoed as one "BENCH {...}" line per configuration for the
   perf-trajectory scraper). *)

open Bmx_util
module Cluster = Bmx.Cluster
module Protocol = Bmx_dsm.Protocol
module Net = Bmx_netsim.Net
module Json = Bmx_obs.Json
module Driver = Bmx_workload.Driver

type run_result = {
  r_nodes : int;
  r_objects_per_bunch : int;
  r_ops : int;
  r_elapsed_ms : float;
  r_ops_per_sec : float;
  r_gc_pause : Bmx_obs.Metrics.summary option;
  r_messages : int;
  r_bytes : int;
  r_stub_table_msgs : int;
  r_delta_bytes : int;
  r_full_bytes : int;
  r_steady_delta_bytes : int;
  r_steady_full_bytes : int;
  r_full_sent : int;
  r_delta_sent : int;
  r_resyncs : int;
  r_gc_token_acquires : int;
  r_minor_words_per_op : float;
  r_components : (Net.Component.t * int) list;
}

let now_ns () = Monotonic_clock.now ()

(* One collector wave: BGC every replicated bunch at every holder, then
   drain — the E5/E6 shape, kept identical so throughput numbers include
   collection work. *)
let gc_wave c =
  List.iter
    (fun bunch ->
      List.iter
        (fun node -> ignore (Cluster.bgc ~economical:true c ~node ~bunch))
        (Protocol.bunch_replica_nodes (Cluster.proto c) bunch))
    (Protocol.bunches (Cluster.proto c));
  ignore (Cluster.drain c)

let run_config ~nodes ~objects_per_bunch ~ops ~waves =
  let cfg =
    {
      Driver.default with
      nodes;
      bunches = nodes;
      objects_per_bunch;
      ops;
      seed = 20;
    }
  in
  let d = Driver.setup cfg in
  let c = Driver.cluster d in
  Cluster.set_event_trace c true;
  (* Continuous sampling stays ON during the measured loop: the
     @bench-smoke throughput/allocation floors double as the
     observer-effect budget for the telemetry path. *)
  let ts = Cluster.enable_timeseries c in
  let chunk = max 1 (ops / waves) in
  (* OCaml-runtime allocation attributable to the mutator loop itself
     (collector waves excluded): the flat-heap hot path is supposed to
     allocate O(1) words per op, and the smoke gate holds it there. *)
  let mutator_words = ref 0.0 in
  let t0 = now_ns () in
  for _ = 1 to waves do
    let w0 = Gc.minor_words () in
    (* [resync_first:false]: between batches only driver ops and
       collector waves ran, and collections preserve the object graph
       (forwarders move copies, never edges), so the O(population)
       mirror re-extraction is pure overhead here.  Billing it to the
       mutator was what made words/op grow with the heap across the
       sweep (641 → 3738 from the 4×64 to the 16×4096 leg). *)
    Driver.run_ops d ~resync_first:false ~ops:chunk ();
    mutator_words := !mutator_words +. (Gc.minor_words () -. w0);
    gc_wave c
  done;
  ignore (Cluster.collect_until_quiescent c ());
  let t1 = now_ns () in
  let elapsed_ms = Int64.to_float (Int64.sub t1 t0) /. 1e6 in
  let stats = Cluster.stats c in
  let delta_before = Stats.get stats "tables.delta_bytes" in
  let full_before = Stats.get stats "tables.full_bytes" in
  (* Steady state: light churn between cleaner cycles.  With delta
     tables, Stub_table bytes here are O(churn), not O(table). *)
  for _ = 1 to 4 do
    Driver.run_ops d ~resync_first:false ~ops:20 ();
    gc_wave c
  done;
  Bmx_obs.Timeseries.freeze ts;
  let report =
    Bmx_obs.Report.of_events
      ~metrics:(Cluster.metrics c)
      (Trace_event.timed_events (Cluster.evlog c))
  in
  let net = Cluster.net c in
  {
    r_nodes = nodes;
    r_objects_per_bunch = objects_per_bunch;
    r_ops = ops;
    r_elapsed_ms = elapsed_ms;
    r_ops_per_sec =
      (if elapsed_ms <= 0.0 then 0.0
       else float_of_int ops /. (elapsed_ms /. 1000.0));
    r_gc_pause = Bmx_obs.Report.latency report "gc.pause";
    r_messages = Net.total_messages net;
    r_bytes = Net.total_bytes net;
    r_stub_table_msgs = Net.sent net Net.Stub_table;
    r_delta_bytes = delta_before;
    r_full_bytes = full_before;
    r_steady_delta_bytes = Stats.get stats "tables.delta_bytes" - delta_before;
    r_steady_full_bytes = Stats.get stats "tables.full_bytes" - full_before;
    r_full_sent = Stats.get stats "gc.cleaner.full_sent";
    r_delta_sent = Stats.get stats "gc.cleaner.delta_sent";
    r_resyncs = Stats.get stats "gc.cleaner.resyncs";
    r_gc_token_acquires =
      Stats.get stats "dsm.gc.acquire_read"
      + Stats.get stats "dsm.gc.acquire_write";
    r_minor_words_per_op =
      (let total = float_of_int (chunk * waves) in
       if total <= 0.0 then 0.0 else !mutator_words /. total);
    r_components =
      List.map
        (fun comp -> (comp, Net.component_bytes net comp))
        Net.Component.all;
  }

(* BENCH_SCALE.json holds one JSON object per line, one per experiment
   (e20's throughput sweep, e22's sharded-registry sweep).  Rewriting an
   experiment replaces its own line and preserves the others, so the
   committed artifact can be regenerated piecemeal in either order. *)
let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let upsert_json_line ~path ~experiment json =
  let tag = Printf.sprintf "\"experiment\":%S" experiment in
  let existing =
    if Sys.file_exists path then begin
      let ic = open_in path in
      let rec go acc =
        match input_line ic with
        | l -> go (if String.length l = 0 then acc else l :: acc)
        | exception End_of_file -> List.rev acc
      in
      let ls = go [] in
      close_in ic;
      ls
    end
    else []
  in
  let kept = List.filter (fun l -> not (contains_substring l tag)) existing in
  let oc = open_out path in
  List.iter
    (fun l ->
      output_string oc l;
      output_char oc '\n')
    kept;
  output_string oc (Json.to_string json);
  output_char oc '\n';
  close_out oc

let summary_json = function
  | None -> Json.Null
  | Some s ->
      Json.Obj
        [
          ("n", Json.Int s.Bmx_obs.Metrics.s_count);
          ("p50", Json.Float s.Bmx_obs.Metrics.s_p50);
          ("p90", Json.Float s.Bmx_obs.Metrics.s_p90);
          ("p99", Json.Float s.Bmx_obs.Metrics.s_p99);
          ("max", Json.Float s.Bmx_obs.Metrics.s_max);
        ]

let result_json r =
  Json.Obj
    [
      ("nodes", Json.Int r.r_nodes);
      ("objects_per_bunch", Json.Int r.r_objects_per_bunch);
      ("ops", Json.Int r.r_ops);
      ("elapsed_ms", Json.Float r.r_elapsed_ms);
      ("ops_per_sec", Json.Float r.r_ops_per_sec);
      ("gc_pause_usteps", summary_json r.r_gc_pause);
      ("messages", Json.Int r.r_messages);
      ("bytes", Json.Int r.r_bytes);
      ("stub_table_msgs", Json.Int r.r_stub_table_msgs);
      ("tables_delta_bytes", Json.Int r.r_delta_bytes);
      ("tables_full_bytes", Json.Int r.r_full_bytes);
      ("steady_delta_bytes", Json.Int r.r_steady_delta_bytes);
      ("steady_full_bytes", Json.Int r.r_steady_full_bytes);
      ("full_msgs", Json.Int r.r_full_sent);
      ("delta_msgs", Json.Int r.r_delta_sent);
      ("resyncs", Json.Int r.r_resyncs);
      ("gc_token_acquires", Json.Int r.r_gc_token_acquires);
      ("minor_words_per_op", Json.Float r.r_minor_words_per_op);
      ( "components",
        Json.Obj
          (List.map
             (fun (comp, bytes) ->
               (Net.Component.to_string comp, Json.Int bytes))
             r.r_components) );
    ]

let sweep_json ?(extra_configs = []) results =
  Json.Obj
    [
      ("experiment", Json.String "e20");
      ("unit", Json.String "ops_per_sec_wallclock");
      ("configs", Json.List (List.map result_json results @ extra_configs));
    ]

(* Partitioned configuration for the smoke gate (§5 under degradation):
   split one node off mid-run, keep mutating and collecting on both
   sides of the cut, heal, and count the cleaner cycles the delta-table
   streams need before no further full-table resyncs happen.  The §5
   property — the collector acquires no DSM token — must survive the
   partition, and resync after heal must converge in a bounded number
   of cycles rather than degenerating into perpetual full tables. *)
let run_partitioned_config ~nodes ~objects_per_bunch ~ops =
  let cfg =
    {
      Driver.default with
      nodes;
      bunches = nodes;
      objects_per_bunch;
      ops;
      seed = 21;
    }
  in
  let d = Driver.setup cfg in
  let c = Driver.cluster d in
  let stats = Cluster.stats c in
  Driver.run_ops d ~ops:(ops / 2) ();
  gc_wave c;
  let lone = nodes - 1 in
  let rest = List.filter (fun n -> n <> lone) (Cluster.nodes c) in
  Cluster.partition c ~groups:[ [ lone ]; rest ];
  Driver.run_ops d ~ops:(ops / 2) ();
  gc_wave c;
  gc_wave c;
  Cluster.heal_all_links c;
  ignore (Cluster.settle c);
  let rounds = ref 0 and quiet = ref false in
  while (not !quiet) && !rounds < 8 do
    let before =
      Stats.get stats "gc.cleaner.resyncs"
      + Stats.get stats "gc.cleaner.full_sent"
    in
    gc_wave c;
    incr rounds;
    if
      Stats.get stats "gc.cleaner.resyncs"
      + Stats.get stats "gc.cleaner.full_sent"
      = before
    then quiet := true
  done;
  Json.Obj
    [
      ("nodes", Json.Int nodes);
      ("objects_per_bunch", Json.Int objects_per_bunch);
      ("ops", Json.Int ops);
      ("partitioned", Json.Bool true);
      ( "gc_token_acquires",
        Json.Int
          (Stats.get stats "dsm.gc.acquire_read"
          + Stats.get stats "dsm.gc.acquire_write") );
      ("heal_resync_rounds", Json.Int !rounds);
      ("converged", Json.Bool !quiet);
    ]

let run_sweep ?(extra_configs = []) ~configs ~json_path () =
  let t =
    Table.create
      ~title:
        "E20 (§4.3/§8): scalability sweep — wall-clock throughput with \
         collector waves, GC pause p99 (virtual µsteps), wire totals and \
         steady-state cleaner bytes"
      ~columns:
        [
          "nodes";
          "objs/bunch";
          "ops";
          "ms";
          "ops/sec";
          "gc p99";
          "msgs";
          "steady delta B";
          "steady full B";
          "gc tokens";
          "alloc w/op";
        ]
  in
  let results =
    List.map
      (fun (nodes, objects_per_bunch, ops) ->
        let r = run_config ~nodes ~objects_per_bunch ~ops ~waves:4 in
        Table.add_row t
          [
            string_of_int r.r_nodes;
            string_of_int r.r_objects_per_bunch;
            string_of_int r.r_ops;
            Printf.sprintf "%.1f" r.r_elapsed_ms;
            Printf.sprintf "%.0f" r.r_ops_per_sec;
            (match r.r_gc_pause with
            | Some s -> Printf.sprintf "%.0f" s.Bmx_obs.Metrics.s_p99
            | None -> "-");
            string_of_int r.r_messages;
            string_of_int r.r_steady_delta_bytes;
            string_of_int r.r_steady_full_bytes;
            string_of_int r.r_gc_token_acquires;
            Printf.sprintf "%.0f" r.r_minor_words_per_op;
          ];
        r)
      configs
  in
  let json = sweep_json ~extra_configs results in
  Printf.printf "BENCH %s\n" (Json.to_string json);
  (match json_path with
  | None -> ()
  | Some path -> upsert_json_line ~path ~experiment:"e20" json);
  [ t ]

(* Full sweep: the largest configuration is 64× the default
   objects-per-bunch and 4× the default node count (65536 objects) —
   feasible only because the driver's legality memo and the collectors'
   copy paths are no longer superlinear in the heap. *)
let e20 () =
  run_sweep
    ~configs:
      [
        (4, 64, 2000);
        (4, 320, 3000);
        (6, 640, 4000);
        (8, 1280, 5000);
        (16, 4096, 8000);
      ]
    ~json_path:(Some "BENCH_SCALE.json") ()

(* Phase timing at one configuration, with Perfcount deltas — the
   HACKING.md profiling recipe packaged as a command
   (`dune exec bench/main.exe -- e20-diag [nodes objs_per_bunch]`).
   Prints where a sweep leg's wall-clock goes: setup, mutator chunk,
   one collector wave, one full gc_round, quiescence.  Counters name
   the culprit when one of those is superlinear in the heap. *)
let e20_diag_at ~nodes ~objects_per_bunch =
  let module P = Perfcount in
  let phase name f =
    let before = P.snapshot () in
    let w0 = Gc.minor_words () in
    let t0 = now_ns () in
    let r = f () in
    let ms = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e6 in
    let minor = Gc.minor_words () -. w0 in
    let d = P.diff ~before ~after:(P.snapshot ()) in
    Printf.printf
      "%-22s %9.1f ms  gc_objs=%-9d gc_tbl=%-9d store_cells=%-9d        flat_words=%-10d reach=%-8d obs=%-8d minor_kw=%.0f
%!"
      name ms d.P.s_gc_objects_touched d.P.s_gc_table_entries
      d.P.s_store_cells_touched d.P.s_flat_words_copied
      d.P.s_reach_nodes_touched d.P.s_obs_sample_work (minor /. 1000.0);
    let pn =
      d.P.s_gc_ns_trace + d.P.s_gc_ns_flip + d.P.s_gc_ns_copy
      + d.P.s_gc_ns_scan + d.P.s_gc_ns_reconcile
    in
    if pn > 0 then
      Printf.printf
        "%-22s %12s gc-phase-ms: trace=%.1f flip=%.1f copy=%.1f scan=%.1f \
         reconcile=%.1f\n\
         %!"
        "" ""
        (float_of_int d.P.s_gc_ns_trace /. 1e6)
        (float_of_int d.P.s_gc_ns_flip /. 1e6)
        (float_of_int d.P.s_gc_ns_copy /. 1e6)
        (float_of_int d.P.s_gc_ns_scan /. 1e6)
        (float_of_int d.P.s_gc_ns_reconcile /. 1e6);
    r
  in
  Printf.printf "--- e20-diag: %d nodes x %d objs/bunch ---
%!" nodes
    objects_per_bunch;
  let cfg =
    {
      Driver.default with
      nodes;
      bunches = nodes;
      objects_per_bunch;
      seed = 20;
    }
  in
  let d = phase "setup" (fun () -> Driver.setup cfg) in
  let c = Driver.cluster d in
  Cluster.set_event_trace c true;
  phase "mutate 2000 ops" (fun () -> Driver.run_ops d ~ops:2000 ());
  phase "mutate (no resync)" (fun () ->
      Driver.run_ops d ~resync_first:false ~ops:2000 ());
  phase "gc_wave (replicas)" (fun () -> gc_wave c);
  phase "gc_round (all nodes)" (fun () -> ignore (Cluster.gc_round c));
  phase "gc_round again" (fun () -> ignore (Cluster.gc_round c));
  phase "quiescence" (fun () -> ignore (Cluster.collect_until_quiescent c ()));
  let net = Cluster.net c in
  Printf.printf "net: %d msgs, %d bytes, %d events
%!"
    (Net.total_messages net) (Net.total_bytes net)
    (List.length (Trace_event.events (Cluster.evlog c)))

let e20_diag () =
  List.iter
    (fun (nodes, objects_per_bunch) -> e20_diag_at ~nodes ~objects_per_bunch)
    [ (8, 1280); (16, 4096) ];
  []

(* Miniature configuration for the @bench-smoke runtest alias, plus one
   partitioned run gating the degraded-mode invariants. *)
let e20_smoke () =
  run_sweep
    ~extra_configs:
      [ run_partitioned_config ~nodes:3 ~objects_per_bunch:48 ~ops:400 ]
    ~configs:[ (3, 48, 400) ] ~json_path:None ()

(* E22: sharded-registry scaling sweep — nodes × shards, with a fixed
   per-node working set.

   The point of sharding the registry and partitioning the location
   service is that no component's per-node traffic grows with N.  This
   sweep holds objects-per-bunch, per-node ops and the driver's locality
   window constant while widening the cluster to 16/32/64 nodes over a
   fixed shard count, then runs {!Net.scaling_check} over the points —
   including the per-shard rows, so a single hot shard soaking up an
   O(N) stream fails the gate even when the cluster-wide average looks
   flat.  Exits nonzero on a scaling violation or on any GC token
   acquire. *)

module Registry = Bmx_memory.Registry
module Persist = Bmx.Persist

type e22_result = {
  s_nodes : int;
  s_shards : int;
  s_ops : int;
  s_elapsed_ms : float;
  s_ops_per_sec : float;
  s_messages : int;
  s_bytes : int;
  s_gc_token_acquires : int;
  s_point : Net.scaling_point;
  s_shard_bytes : (int * (Net.Component.t * int) list) list;
  s_shard_msgs : (int * (Net.Component.t * int) list) list;
}

let e22_point ~nodes ~shards ~ops_per_node ~waves =
  let ops = ops_per_node * nodes in
  let cfg =
    {
      Driver.default with
      nodes;
      bunches = nodes;
      objects_per_bunch = 96;
      ops;
      seed = 22;
      shards;
      locality = 3;
    }
  in
  let d = Driver.setup cfg in
  let c = Driver.cluster d in
  let stats = Cluster.stats c in
  let chunk = max 1 (ops / waves) in
  let t0 = now_ns () in
  for _ = 1 to waves do
    Driver.run_ops d ~resync_first:false ~ops:chunk ();
    gc_wave c
  done;
  let elapsed_ms = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e6 in
  let net = Cluster.net c in
  {
    s_nodes = nodes;
    s_shards = shards;
    s_ops = ops;
    s_elapsed_ms = elapsed_ms;
    s_ops_per_sec =
      (if elapsed_ms <= 0.0 then 0.0
       else float_of_int ops /. (elapsed_ms /. 1000.0));
    s_messages = Net.total_messages net;
    s_bytes = Net.total_bytes net;
    s_gc_token_acquires =
      Stats.get stats "dsm.gc.acquire_read"
      + Stats.get stats "dsm.gc.acquire_write";
    s_point = Net.scaling_point net ~nodes;
    s_shard_bytes = Net.shard_components net;
    s_shard_msgs = Net.shard_component_msgs net;
  }

let shard_rows_json rows =
  Json.Obj
    (List.map
       (fun (s, comps) ->
         ( Printf.sprintf "s%d" s,
           Json.Obj
             (List.map
                (fun (comp, v) -> (Net.Component.to_string comp, Json.Int v))
                comps) ))
       rows)

let e22_result_json r =
  Json.Obj
    [
      ("nodes", Json.Int r.s_nodes);
      ("shards", Json.Int r.s_shards);
      ("ops", Json.Int r.s_ops);
      ("elapsed_ms", Json.Float r.s_elapsed_ms);
      ("ops_per_sec", Json.Float r.s_ops_per_sec);
      ("messages", Json.Int r.s_messages);
      ("bytes", Json.Int r.s_bytes);
      ("bytes_per_node", Json.Float (float_of_int r.s_bytes /. float_of_int r.s_nodes));
      ("gc_token_acquires", Json.Int r.s_gc_token_acquires);
      ("shard_bytes", shard_rows_json r.s_shard_bytes);
      ("shard_msgs", shard_rows_json r.s_shard_msgs);
      ( "components",
        Json.Obj
          (List.map
             (fun (comp, bytes) -> (Net.Component.to_string comp, Json.Int bytes))
             r.s_point.Net.sp_bytes) );
    ]

let scaling_rows_table ~title rows =
  let t =
    Table.create ~title
      ~columns:
        [ "component"; "shard"; "B/node first"; "B/node last"; "growth"; "verdict" ]
  in
  List.iter
    (fun (r : Net.scaling_row) ->
      Table.add_row t
        [
          Net.Component.to_string r.Net.sr_component;
          (match r.Net.sr_shard with
          | None -> "all"
          | Some s -> Printf.sprintf "s%d (hottest)" s);
          Printf.sprintf "%.0f" r.Net.sr_first_per_node;
          Printf.sprintf "%.0f" r.Net.sr_last_per_node;
          Printf.sprintf "%.2f" r.Net.sr_growth;
          (if r.Net.sr_ok then "ok" else "FAIL")
          ^ (if r.Net.sr_note = "" then "" else " — " ^ r.Net.sr_note);
        ])
    rows;
  t

let run_e22 ~sweep ~shards ~ops_per_node ~json_path ~extra_json =
  let results =
    List.map (fun nodes -> e22_point ~nodes ~shards ~ops_per_node ~waves:4) sweep
  in
  let points = List.map (fun r -> r.s_point) results in
  let rows, scaling_ok = Net.scaling_check points in
  let tokens = List.fold_left (fun a r -> a + r.s_gc_token_acquires) 0 results in
  let summary =
    Table.create
      ~title:
        (Printf.sprintf
           "E22: sharded registry + partitioned location service — %s nodes \
            over %d shard(s), fixed per-node working set (locality window 3)"
           (String.concat "/" (List.map string_of_int sweep))
           shards)
      ~columns:
        [ "nodes"; "shards"; "ops"; "ms"; "ops/sec"; "msgs"; "B/node"; "gc tokens" ]
  in
  List.iter
    (fun r ->
      Table.add_row summary
        [
          string_of_int r.s_nodes;
          string_of_int r.s_shards;
          string_of_int r.s_ops;
          Printf.sprintf "%.1f" r.s_elapsed_ms;
          Printf.sprintf "%.0f" r.s_ops_per_sec;
          string_of_int r.s_messages;
          Printf.sprintf "%.0f" (float_of_int r.s_bytes /. float_of_int r.s_nodes);
          string_of_int r.s_gc_token_acquires;
        ])
    results;
  let growth =
    scaling_rows_table
      ~title:
        "E22: per-component per-node growth, cluster-wide and hottest-shard \
         rows (gc-cleaner exempt; everything else must stay flat)"
      rows
  in
  let json =
    Json.Obj
      ([
         ("experiment", Json.String "e22");
         ("unit", Json.String "bytes_per_node_flat");
         ("scaling_ok", Json.Bool scaling_ok);
         ("gc_token_acquires", Json.Int tokens);
         ("configs", Json.List (List.map e22_result_json results));
       ]
      @ extra_json)
  in
  Printf.printf "BENCH %s\n" (Json.to_string json);
  (match json_path with
  | None -> ()
  | Some path -> upsert_json_line ~path ~experiment:"e22" json);
  if not scaling_ok then begin
    Table.print summary;
    Table.print growth;
    prerr_endline "e22: per-component scaling check failed";
    exit 1
  end;
  if tokens <> 0 then begin
    prerr_endline "e22: collector acquired DSM tokens";
    exit 1
  end;
  [ summary; growth ]

let e22 () =
  run_e22 ~sweep:[ 16; 32; 64 ] ~shards:8 ~ops_per_node:60
    ~json_path:(Some "BENCH_SCALE.json") ~extra_json:[]

(* @scale-smoke: a small 3-point sweep gating the no-growth contract and
   tokens=0, plus a shard crash/recovery convergence check — the shard
   service dies mid-run with journals attached, mutation continues
   degraded, recovery replays the journal, fsck must be clean, and a
   collector wave plus fresh carves must succeed afterwards. *)
let e22_smoke () =
  let crash_recovery_json =
    let nodes = 16 and shards = 2 in
    let cfg =
      {
        Driver.default with
        nodes;
        bunches = nodes;
        objects_per_bunch = 32;
        ops = 400;
        seed = 23;
        shards;
        locality = 3;
      }
    in
    let d = Driver.setup cfg in
    let c = Driver.cluster d in
    Cluster.set_event_trace c true;
    let reg = Protocol.registry (Cluster.proto c) in
    let disks = Persist.attach_shard_journals c in
    Driver.run_ops d ~ops:200 ();
    let victim = 0 in
    Cluster.crash_shard c ~shard:victim;
    (* Degraded window: mutation continues (ops never carve), and the
       service being down is observable as a refused carve. *)
    let refused =
      match
        Registry.alloc_range reg ~bunch:victim ~origin:0 ()
      with
      | exception Failure _ -> true
      | _ -> false
    in
    Driver.run_ops d ~resync_first:false ~ops:100 ();
    let owner = Registry.shard_owner reg victim in
    let replayed = Persist.recover_shard c ~shard:victim ~node:owner disks.(victim) in
    let fsck = Persist.verify_shard c ~shard:victim disks.(victim) in
    (* Convergence: the recovered shard serves carves again and a full
       collector wave (whose to-space carves route through it) runs. *)
    let carved =
      match Registry.alloc_range reg ~bunch:victim ~origin:0 () with
      | _ -> true
      | exception Failure _ -> false
    in
    gc_wave c;
    Driver.run_ops d ~resync_first:false ~ops:100 ();
    let lint =
      Bmx_check.Lint.check_log (Cluster.evlog c)
      |> List.filter (fun v ->
             v.Bmx_check.Lint.rule = Bmx_check.Lint.Shard_ownership)
    in
    let ok =
      refused && carved && fsck.Persist.s_missing = [] && lint = []
      && Registry.shard_up reg victim
    in
    if not ok then begin
      Printf.eprintf
        "e22-smoke: shard crash/recovery failed — refused=%b carved=%b \
         fsck_missing=%d lint=%d up=%b\n"
        refused carved
        (List.length fsck.Persist.s_missing)
        (List.length lint)
        (Registry.shard_up reg victim);
      exit 1
    end;
    Json.Obj
      [
        ("shard_crash_recovery", Json.Bool ok);
        ("journal_replayed", Json.Int replayed);
        ("fsck_checked", Json.Int fsck.Persist.s_checked);
        ("fsck_missing", Json.Int (List.length fsck.Persist.s_missing));
      ]
  in
  run_e22 ~sweep:[ 8; 12; 16 ] ~shards:2 ~ops_per_node:25 ~json_path:None
    ~extra_json:[ ("crash_recovery", crash_recovery_json) ]

(* E24: per-component wire attribution across a node sweep — the
   scaling shape gate.  Every message kind is totally mapped to a
   component (dsm / gc-cleaner / gc-bgc / registry / rvm / app); a
   3-point sweep widening only the cluster checks that gc-cleaner
   traffic grows with sharing (it is O(inter-node references), which the
   sweep increases) while no other component's per-node bytes grow
   superlinearly in N.  Exits nonzero when a component breaks its
   scaling contract — this is how an accidental O(N) broadcast sneaks
   into a "background" path gets caught. *)
let e24 () =
  let point nodes =
    let cfg =
      {
        Driver.default with
        nodes;
        bunches = nodes;
        objects_per_bunch = 48;
        ops = 400;
        seed = 24;
      }
    in
    let d = Driver.setup cfg in
    let c = Driver.cluster d in
    let ts = Cluster.enable_timeseries c in
    Driver.run_ops d ();
    for _ = 1 to 3 do
      gc_wave c
    done;
    ignore (Cluster.collect_until_quiescent c ());
    Bmx_obs.Timeseries.freeze ts;
    Net.scaling_point (Cluster.net c) ~nodes
  in
  let sweep = [ 3; 4; 6 ] in
  let points = List.map point sweep in
  let rows, ok = Net.scaling_check points in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "E24: per-component wire scaling — bytes/node across a %s-node \
            sweep (gc-cleaner must grow with sharing; nothing else \
            superlinear in N)"
           (String.concat "/" (List.map string_of_int sweep)))
      ~columns:
        [ "component"; "B/node first"; "B/node last"; "growth"; "verdict" ]
  in
  List.iter
    (fun (r : Net.scaling_row) ->
      Table.add_row t
        [
          Net.Component.to_string r.Net.sr_component;
          Printf.sprintf "%.0f" r.Net.sr_first_per_node;
          Printf.sprintf "%.0f" r.Net.sr_last_per_node;
          Printf.sprintf "%.2f" r.Net.sr_growth;
          (if r.Net.sr_ok then "ok" else "FAIL")
          ^ (if r.Net.sr_note = "" then "" else " — " ^ r.Net.sr_note);
        ])
    rows;
  if not ok then begin
    Table.print t;
    prerr_endline "e24: per-component scaling check failed";
    exit 1
  end;
  [ t ]
