lib/rvm/rvm.mli: Bmx_util
