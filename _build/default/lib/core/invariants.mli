(** GC-side enforcement of the §5 acquire-time invariants.

    Invariants 1 and 2 (valid addresses piggybacked on grants; forwarding
    of new-location information along copy-sets) are implemented inside
    {!Bmx_dsm.Protocol} because they only involve forwarding state the
    collector leaves in the stores.  Invariant 3 — "the acquisition of a
    write token completes only after all necessary intra-bunch SSPs have
    been created" — needs the collector's stub tables, so it is installed
    into the DSM as a hook by {!install}. *)

val install : Gc_state.t -> unit
(** Register the invariant-3 hook with the state's protocol. *)

val on_write_transfer :
  Gc_state.t ->
  granter:Bmx_util.Ids.Node.t ->
  requester:Bmx_util.Ids.Node.t ->
  uid:Bmx_util.Ids.Uid.t ->
  unit
(** The hook body, exposed for direct testing: if the old owner holds
    inter-bunch stubs for the object, or an intra-bunch stub naming the
    node that does, create the intra-bunch SSP linking the new owner to
    each such stub holder (§3.2, §5 invariant 3).  Scion creation at the
    granter and the stub-creation request to the requester ride the
    token-grant exchange (piggybacked, no extra message). *)
