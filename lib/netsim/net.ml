open Bmx_util

type kind =
  | Token_request
  | Token_grant
  | Invalidate
  | Object_fetch
  | Scion_message
  | Stub_table
  | Addr_update
  | Reclaim_request
  | Reclaim_reply
  | Refcount_op
  | App_message

let kind_to_string = function
  | Token_request -> "token_request"
  | Token_grant -> "token_grant"
  | Invalidate -> "invalidate"
  | Object_fetch -> "object_fetch"
  | Scion_message -> "scion_message"
  | Stub_table -> "stub_table"
  | Addr_update -> "addr_update"
  | Reclaim_request -> "reclaim_request"
  | Reclaim_reply -> "reclaim_reply"
  | Refcount_op -> "refcount_op"
  | App_message -> "app_message"

let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)

let all_kinds =
  [
    Token_request; Token_grant; Invalidate; Object_fetch; Scion_message;
    Stub_table; Addr_update; Reclaim_request; Reclaim_reply; Refcount_op;
    App_message;
  ]

(* Wire attribution: every message kind belongs to exactly one component
   — [of_kind] is an exhaustive match, so an unmapped new kind is a
   build-time error, and the shard-scaling gate can say which
   component's traffic grows with what. *)
module Component = struct
  type t = Dsm | Gc_cleaner | Gc_bgc | Registry | Rvm | App

  let of_kind = function
    | Token_request | Token_grant | Invalidate | Object_fetch -> Dsm
    | Scion_message | Stub_table -> Gc_cleaner
    | Reclaim_request | Reclaim_reply | Refcount_op -> Gc_bgc
    | Addr_update -> Registry
    | App_message -> App
  (* Rvm never appears here: recoverable virtual memory is node-local
     (log + disk image); it is listed so reports show its wire share is
     zero by construction, not by omission. *)

  let to_string = function
    | Dsm -> "dsm"
    | Gc_cleaner -> "gc-cleaner"
    | Gc_bgc -> "gc-bgc"
    | Registry -> "registry"
    | Rvm -> "rvm"
    | App -> "app"

  let all = [ Dsm; Gc_cleaner; Gc_bgc; Registry; Rvm; App ]

  (* Dense index for per-shard accounting arrays (no hashing, no
     allocation on the per-message path). *)
  let index = function
    | Dsm -> 0
    | Gc_cleaner -> 1
    | Gc_bgc -> 2
    | Registry -> 3
    | Rvm -> 4
    | App -> 5

  let of_index = function
    | 0 -> Dsm
    | 1 -> Gc_cleaner
    | 2 -> Gc_bgc
    | 3 -> Registry
    | 4 -> Rvm
    | _ -> App

  let count = 6
end

(* Pre-interned metric names: the per-message accounting path must not
   build strings. *)
let comp_bytes_key = function
  | Component.Dsm -> "net.comp.bytes.dsm"
  | Component.Gc_cleaner -> "net.comp.bytes.gc-cleaner"
  | Component.Gc_bgc -> "net.comp.bytes.gc-bgc"
  | Component.Registry -> "net.comp.bytes.registry"
  | Component.Rvm -> "net.comp.bytes.rvm"
  | Component.App -> "net.comp.bytes.app"

let comp_msgs_key = function
  | Component.Dsm -> "net.comp.msgs.dsm"
  | Component.Gc_cleaner -> "net.comp.msgs.gc-cleaner"
  | Component.Gc_bgc -> "net.comp.msgs.gc-bgc"
  | Component.Registry -> "net.comp.msgs.registry"
  | Component.Rvm -> "net.comp.msgs.rvm"
  | Component.App -> "net.comp.msgs.app"

type 'p envelope = {
  src : Ids.Node.t;
  dst : Ids.Node.t;
  kind : kind;
  seq : int;
  rel : int;
  payload : 'p;
}

type fault = { drop : float; dup : float; rng : Rng.t }

(* A transmitted-but-unacknowledged reliable message awaiting its
   retransmission timeout. *)
type 'p unacked = {
  u_env : 'p envelope;
  u_bytes : int;
  mutable u_due : int;  (* virtual time of the next retransmission *)
  mutable u_interval : int;  (* current backoff interval *)
  mutable u_attempts : int;  (* transmissions so far, >= 1 *)
}

(* Receiver-side state of one reliable (src, dst) stream. *)
type 'p rstate = {
  mutable r_next : int;  (* next reliable index to hand to the handler *)
  r_buf : (int, 'p envelope) Hashtbl.t;  (* arrived ahead of a gap *)
}

type 'p t = {
  stats : Stats.registry;
  queue : 'p envelope Queue.t;
  seqs : (Ids.Node.t * Ids.Node.t, int ref) Hashtbl.t;
  faults : (kind, fault) Hashtbl.t;
  mutable handler : ('p envelope -> unit) option;
  mutable evlog : Trace_event.log option;
  mutable obs : Bmx_obs.Metrics.t option;
  (* Reliable-delivery layer (opt-in per kind). *)
  reliable : (kind, unit) Hashtbl.t;
  mutable rto : int;
  mutable rto_max : int;
  mutable max_attempts : int;
  mutable now : int;  (* virtual clock driving retransmission timers *)
  rseqs : (Ids.Node.t * Ids.Node.t, int ref) Hashtbl.t;
  unacked_tbl : (Ids.Node.t * Ids.Node.t, 'p unacked list ref) Hashtbl.t;
  rstates : (Ids.Node.t * Ids.Node.t, 'p rstate) Hashtbl.t;
  down : (Ids.Node.t, unit) Hashtbl.t;
  (* Partition model: directed links whose transmissions blackhole, and
     the sender-side failure detector derived from them. *)
  cut : (Ids.Node.t * Ids.Node.t, unit) Hashtbl.t;
  suspect : (Ids.Node.t * Ids.Node.t, unit) Hashtbl.t;
  mutable suspect_after : int;
  (* Observer of virtual-time advance (the periodic sampler). *)
  mutable tick_hook : (int -> unit) option;
  (* Per-shard wire attribution: shard -> Component.index -> total.
     Grown on demand; counts logical sends (retransmissions are a
     transport artifact, not a routing decision). *)
  mutable shard_b : int array array;
  mutable shard_m : int array array;
  (* Lazily interned "<comp key>.s<shard>" metric names (bytes, msgs):
     the accounting path must not build strings. *)
  shard_keys : (int, string array * string array) Hashtbl.t;
}

let create ~stats () =
  {
    stats;
    queue = Queue.create ();
    seqs = Hashtbl.create 16;
    faults = Hashtbl.create 4;
    handler = None;
    evlog = None;
    obs = None;
    reliable = Hashtbl.create 4;
    rto = 4;
    rto_max = 64;
    max_attempts = 20;
    now = 0;
    rseqs = Hashtbl.create 16;
    unacked_tbl = Hashtbl.create 16;
    rstates = Hashtbl.create 16;
    down = Hashtbl.create 4;
    cut = Hashtbl.create 8;
    suspect = Hashtbl.create 8;
    suspect_after = 6;
    tick_hook = None;
    shard_b = [||];
    shard_m = [||];
    shard_keys = Hashtbl.create 8;
  }

let stats t = t.stats
let set_handler t f = t.handler <- Some f
let set_evlog t l = t.evlog <- Some l

let set_reliable t ?(rto = 4) ?(rto_max = 64) ?(max_attempts = 20)
    ?(suspect_after = 6) kinds =
  if rto <= 0 || rto_max < rto || max_attempts < 1 || suspect_after < 1 then
    invalid_arg "Net.set_reliable: bad retransmission parameters";
  Hashtbl.reset t.reliable;
  List.iter (fun k -> Hashtbl.replace t.reliable k ()) kinds;
  t.rto <- rto;
  t.rto_max <- rto_max;
  t.max_attempts <- max_attempts;
  t.suspect_after <- suspect_after

let set_backoff t ?rto ?rto_max ?max_attempts ?suspect_after () =
  let rto = Option.value ~default:t.rto rto in
  let rto_max = Option.value ~default:t.rto_max rto_max in
  let max_attempts = Option.value ~default:t.max_attempts max_attempts in
  let suspect_after = Option.value ~default:t.suspect_after suspect_after in
  if rto <= 0 || rto_max < rto || max_attempts < 1 || suspect_after < 1 then
    invalid_arg "Net.set_backoff: bad retransmission parameters";
  t.rto <- rto;
  t.rto_max <- rto_max;
  t.max_attempts <- max_attempts;
  t.suspect_after <- suspect_after

let backoff_ceiling t = t.rto_max
let suspect_after t = t.suspect_after

let reliable_kinds t = List.filter (Hashtbl.mem t.reliable) all_kinds
let is_reliable t kind = Hashtbl.mem t.reliable kind
let now t = t.now
let is_down t node = Hashtbl.mem t.down node

let ev t e =
  match t.evlog with
  | Some l when Trace_event.enabled l -> Trace_event.record l e
  | Some _ | None -> ()

let ev_sent t ~src ~dst ~kind ~seq ~rel =
  ev t (Trace_event.Msg_sent { src; dst; kind = kind_to_string kind; seq; rel })

let ev_delivered t ~src ~dst ~kind ~seq ~rel =
  ev t
    (Trace_event.Msg_delivered
       { src; dst; kind = kind_to_string kind; seq; rel })

(* ------------------------------------------------------------------ *)
(* Network partitions.  A cut is a {e directed} link property: while
   (src, dst) is cut every transmission from src to dst blackholes at
   delivery time — deterministic, unlike the probabilistic fault dice —
   and, for reliable traffic, the implicit ack of a delivered message
   blackholes when the {e reverse} link is cut (asymmetric partition).
   Cut links drop messages; they never forget them: reliable messages
   stay in the sender's retransmission buffer and land after heal. *)

let is_cut t ~src ~dst = Hashtbl.mem t.cut (src, dst)

let reachable t a b =
  (not (Hashtbl.mem t.down a))
  && (not (Hashtbl.mem t.down b))
  && (not (Hashtbl.mem t.cut (a, b)))
  && not (Hashtbl.mem t.cut (b, a))

(* The (src, dst) path is severed for reliable delivery: no ack can
   complete the round trip, whatever the sender does. *)
let severed t (src, dst) =
  Hashtbl.mem t.down dst || Hashtbl.mem t.down src
  || Hashtbl.mem t.cut (src, dst)
  || Hashtbl.mem t.cut (dst, src)

let cut_link t ~src ~dst =
  if not (Hashtbl.mem t.cut (src, dst)) then begin
    Hashtbl.replace t.cut (src, dst) ();
    Stats.incr t.stats "net.cut.count";
    ev t (Trace_event.Link_cut { src; dst })
  end

let heal_link t ~src ~dst =
  if Hashtbl.mem t.cut (src, dst) then begin
    Hashtbl.remove t.cut (src, dst);
    Stats.incr t.stats "net.heal.count";
    ev t (Trace_event.Link_heal { src; dst })
  end

let cut_pairs t =
  Hashtbl.fold (fun k () acc -> k :: acc) t.cut [] |> List.sort compare

let heal_all_links t =
  List.iter (fun (src, dst) -> heal_link t ~src ~dst) (cut_pairs t)

let partition t ~groups =
  List.iteri
    (fun i gi ->
      List.iteri
        (fun j gj ->
          if i <> j then
            List.iter
              (fun src -> List.iter (fun dst -> cut_link t ~src ~dst) gj)
              gi)
        groups)
    groups

let is_suspect t ~src ~dst = Hashtbl.mem t.suspect (src, dst)

let suspect_pairs t =
  Hashtbl.fold (fun k () acc -> k :: acc) t.suspect [] |> List.sort compare

let suspect_transition t ~src ~dst ~on =
  Stats.incr t.stats "net.suspect_transitions";
  (match t.obs with
  | Some m -> Bmx_obs.Metrics.incr m ~node:src "net.suspect_transitions"
  | None -> ());
  ev t (Trace_event.Suspect { src; dst; on })

let mark_suspect t (src, dst) =
  if not (Hashtbl.mem t.suspect (src, dst)) then begin
    Hashtbl.replace t.suspect (src, dst) ();
    suspect_transition t ~src ~dst ~on:true
  end

let clear_suspect t (src, dst) =
  if Hashtbl.mem t.suspect (src, dst) then begin
    Hashtbl.remove t.suspect (src, dst);
    suspect_transition t ~src ~dst ~on:false
  end

let next_seq t ~src ~dst =
  let key = (src, dst) in
  match Hashtbl.find_opt t.seqs key with
  | Some r ->
      incr r;
      !r
  | None ->
      Hashtbl.add t.seqs key (ref 1);
      1

let next_rseq t ~src ~dst =
  let key = (src, dst) in
  match Hashtbl.find_opt t.rseqs key with
  | Some r ->
      incr r;
      !r
  | None ->
      Hashtbl.add t.rseqs key (ref 1);
      1

let rstate t key =
  match Hashtbl.find_opt t.rstates key with
  | Some rs -> rs
  | None ->
      let rs = { r_next = 1; r_buf = Hashtbl.create 4 } in
      Hashtbl.add t.rstates key rs;
      rs

(* Per-(component, node) byte/message series feed the continuous
   sampler; cluster-wide totals ride along unlabelled. *)
let comp_account_bytes t ~src ~kind ~bytes =
  match t.obs with
  | None -> ()
  | Some m ->
      let key = comp_bytes_key (Component.of_kind kind) in
      Bmx_obs.Metrics.incr m ~by:bytes key;
      Bmx_obs.Metrics.incr m ~node:src ~by:bytes key

let comp_account_msg t ~src ~kind =
  match t.obs with
  | None -> ()
  | Some m ->
      let key = comp_msgs_key (Component.of_kind kind) in
      Bmx_obs.Metrics.incr m key;
      Bmx_obs.Metrics.incr m ~node:src key

let shard_row rows shard =
  if shard < Array.length rows then rows.(shard)
  else invalid_arg "Net: shard accounting row missing"

let ensure_shard_rows t shard =
  if shard >= Array.length t.shard_b then begin
    let n = max (shard + 1) (2 * Array.length t.shard_b) in
    let grow old =
      Array.init n (fun i ->
          if i < Array.length old then old.(i)
          else Array.make Component.count 0)
    in
    t.shard_b <- grow t.shard_b;
    t.shard_m <- grow t.shard_m
  end

let shard_metric_keys t shard =
  match Hashtbl.find_opt t.shard_keys shard with
  | Some ks -> ks
  | None ->
      let suffix = ".s" ^ string_of_int shard in
      let ks =
        ( Array.init Component.count (fun i ->
              comp_bytes_key (Component.of_index i) ^ suffix),
          Array.init Component.count (fun i ->
              comp_msgs_key (Component.of_index i) ^ suffix) )
      in
      Hashtbl.add t.shard_keys shard ks;
      ks

(* The per-shard series reach the metric registry as callback gauges
   over the dense rows, registered once per shard: a counter increment
   here would pay the continuous sampler's tap on every labelled send,
   and the shard label rides the hottest path in the system. *)
let register_shard_gauges t shard =
  match t.obs with
  | None -> ()
  | Some m ->
      if not (Hashtbl.mem t.shard_keys shard) then begin
        let bkeys, mkeys = shard_metric_keys t shard in
        for ci = 0 to Component.count - 1 do
          Bmx_obs.Metrics.gauge_fn m bkeys.(ci) (fun () ->
              (shard_row t.shard_b shard).(ci));
          Bmx_obs.Metrics.gauge_fn m mkeys.(ci) (fun () ->
              (shard_row t.shard_m shard).(ci))
        done
      end

(* One logical send routed via a registry shard: label the component
   series with the shard so a hot shard can't hide in a flat total. *)
let shard_account t ~kind ~shard ~bytes ~count_msg =
  if shard < 0 then invalid_arg "Net: negative shard label";
  ensure_shard_rows t shard;
  register_shard_gauges t shard;
  let ci = Component.index (Component.of_kind kind) in
  let brow = shard_row t.shard_b shard in
  brow.(ci) <- brow.(ci) + bytes;
  if count_msg then begin
    let mrow = shard_row t.shard_m shard in
    mrow.(ci) <- mrow.(ci) + 1
  end

let shard_account_opt t ~kind ~shard ~bytes ?(count_msg = true) () =
  match shard with
  | None -> ()
  | Some s -> shard_account t ~kind ~shard:s ~bytes ~count_msg

let account_bytes t ~src ~kind ~bytes =
  Stats.incr t.stats ~by:bytes ("net.bytes." ^ kind_to_string kind);
  Stats.incr t.stats ~by:bytes "net.bytes.total";
  comp_account_bytes t ~src ~kind ~bytes

let account t ~src ~kind ~bytes =
  Stats.incr t.stats ("net.sent." ^ kind_to_string kind);
  Stats.incr t.stats "net.sent.total";
  comp_account_msg t ~src ~kind;
  account_bytes t ~src ~kind ~bytes

(* Put one copy of [env] on the wire: roll the fault dice, account the
   bytes of every copy actually enqueued.  Used for reliable transmissions
   and retransmissions (logical sends are counted separately, once). *)
let transmit t env ~bytes =
  match Hashtbl.find_opt t.faults env.kind with
  | Some { drop; dup; rng } ->
      if Rng.float rng 1.0 < drop then begin
        Stats.incr t.stats ("net.dropped." ^ kind_to_string env.kind);
        Stats.incr t.stats "net.dropped.total"
      end
      else begin
        account_bytes t ~src:env.src ~kind:env.kind ~bytes;
        Queue.add env t.queue;
        if Rng.float rng 1.0 < dup then begin
          Stats.incr t.stats ("net.duplicated." ^ kind_to_string env.kind);
          Stats.incr t.stats "net.duplicated.total";
          account_bytes t ~src:env.src ~kind:env.kind ~bytes;
          Queue.add env t.queue
        end
      end
  | None ->
      account_bytes t ~src:env.src ~kind:env.kind ~bytes;
      Queue.add env t.queue

let send t ~src ~dst ~kind ?(bytes = 64) ?shard payload =
  shard_account_opt t ~kind ~shard ~bytes ();
  let seq = next_seq t ~src ~dst in
  if Hashtbl.mem t.reliable kind then begin
    ev_sent t ~src ~dst ~kind ~seq ~rel:true;
    let rel = next_rseq t ~src ~dst in
    let env = { src; dst; kind; seq; rel; payload } in
    (* One logical send, however many transmissions it takes. *)
    Stats.incr t.stats ("net.sent." ^ kind_to_string kind);
    Stats.incr t.stats "net.sent.total";
    comp_account_msg t ~src ~kind;
    let u =
      {
        u_env = env;
        u_bytes = bytes;
        u_due = t.now + t.rto;
        u_interval = t.rto;
        u_attempts = 1;
      }
    in
    (match Hashtbl.find_opt t.unacked_tbl (src, dst) with
    | Some r -> r := !r @ [ u ]
    | None -> Hashtbl.add t.unacked_tbl (src, dst) (ref [ u ]));
    transmit t env ~bytes
  end
  else begin
    ev_sent t ~src ~dst ~kind ~seq ~rel:false;
    let env = { src; dst; kind; seq; rel = 0; payload } in
    match Hashtbl.find_opt t.faults kind with
    | Some { drop; dup; rng } ->
        if Rng.float rng 1.0 < drop then begin
          Stats.incr t.stats ("net.dropped." ^ kind_to_string kind);
          Stats.incr t.stats "net.dropped.total"
        end
        else begin
          account t ~src ~kind ~bytes;
          Queue.add env t.queue;
          if Rng.float rng 1.0 < dup then begin
            Stats.incr t.stats ("net.duplicated." ^ kind_to_string kind);
            Stats.incr t.stats "net.duplicated.total";
            account t ~src ~kind ~bytes;
            Queue.add env t.queue
          end
        end
    | None ->
        account t ~src ~kind ~bytes;
        Queue.add env t.queue
  end

let record_rpc t ~src ~dst ~kind ?(bytes = 64) ?shard () =
  (* Synchronous exchange executed inline by the caller; it overtakes
     any queued background messages on the (src, dst) stream, so it gets
     its own event kind rather than a sent/delivered pair.  An RPC is a
     round trip, so a cut in either direction makes it time out — the
     caller sees the failure immediately instead of a silent half-run. *)
  if Hashtbl.mem t.cut (src, dst) || Hashtbl.mem t.cut (dst, src) then begin
    Stats.incr t.stats "net.rpc_unreachable";
    failwith
      (Printf.sprintf "Net.record_rpc: link %d-%d cut (%s)" src dst
         (kind_to_string kind))
  end;
  shard_account_opt t ~kind ~shard ~bytes ();
  let seq = next_seq t ~src ~dst in
  ev t (Trace_event.Rpc { src; dst; kind = kind_to_string kind; seq });
  account t ~src ~kind ~bytes

let record_piggyback t ~src ~kind ~bytes ?shard () =
  shard_account_opt t ~kind ~shard ~bytes ();
  Stats.incr t.stats ("net.piggyback." ^ kind_to_string kind);
  Stats.incr t.stats ~by:bytes ("net.bytes." ^ kind_to_string kind);
  Stats.incr t.stats ~by:bytes "net.bytes.total";
  Stats.incr t.stats ~by:bytes "net.bytes.piggyback";
  comp_account_bytes t ~src ~kind ~bytes

(* Cumulative acknowledgement: everything on the (src, dst) stream up to
   reliable index [upto] has been handed to the handler; retire the
   sender's retransmission state for it.  Acks are modeled as
   instantaneous control traffic (they carry no payload and the layer
   only needs them eventually; an ack loss is indistinguishable from a
   late ack, which the duplicate suppression already absorbs). *)
let ack t ~src ~dst ~upto =
  match Hashtbl.find_opt t.unacked_tbl (src, dst) with
  | None -> ()
  | Some r ->
      let keep, acked = List.partition (fun u -> u.u_env.rel > upto) !r in
      if acked <> [] then begin
        r := keep;
        (* An ack is proof of a live round trip: the failure detector
           stands down, and anything still outstanding on the pair is
           re-armed at the base timeout for a prompt post-heal flush. *)
        if Hashtbl.mem t.suspect (src, dst) then begin
          clear_suspect t (src, dst);
          List.iter
            (fun u ->
              u.u_interval <- t.rto;
              u.u_due <- t.now)
            keep
        end;
        Stats.incr t.stats ~by:(List.length acked) "net.rel.acked";
        match t.obs with
        | None -> ()
        | Some m ->
            (* Transmissions it took to land each reliable message — the
               retransmit-epoch cost in one histogram. *)
            List.iter
              (fun u ->
                Bmx_obs.Metrics.observe m ~node:src "net.rel.attempts"
                  (float_of_int u.u_attempts))
              acked
      end

let handoff t env =
  let handler =
    match t.handler with
    | Some h -> h
    | None -> failwith "Net.step: no handler installed"
  in
  Stats.incr t.stats ("net.delivered." ^ kind_to_string env.kind);
  ev_delivered t ~src:env.src ~dst:env.dst ~kind:env.kind ~seq:env.seq
    ~rel:(env.rel > 0);
  handler env

let deliver t env =
  if Hashtbl.mem t.down env.dst then begin
    (* The destination host is dead: the message evaporates.  Reliable
       messages stay in the sender's retransmission buffer and are
       retried when (if) the node returns. *)
    Stats.incr t.stats ("net.down_dropped." ^ kind_to_string env.kind);
    Stats.incr t.stats "net.down_dropped.total"
  end
  else if Hashtbl.mem t.cut (env.src, env.dst) then begin
    (* The directed link is cut: the transmission blackholes.  As with a
       dead destination, reliable messages survive in the sender's
       retransmission buffer and land after heal. *)
    Stats.incr t.stats ("net.cut_dropped." ^ kind_to_string env.kind);
    Stats.incr t.stats "net.cut_dropped.total"
  end
  else if env.rel = 0 then handoff t env
  else begin
    let rs = rstate t (env.src, env.dst) in
    if env.rel < rs.r_next || Hashtbl.mem rs.r_buf env.rel then begin
      (* Duplicate (fault-injected copy or spurious retransmission). *)
      Stats.incr t.stats "net.rel.suppressed";
      ev t
        (Trace_event.Msg_suppressed
           {
             src = env.src;
             dst = env.dst;
             kind = kind_to_string env.kind;
             seq = env.seq;
           })
    end
    else if env.rel > rs.r_next then begin
      (* Ahead of a gap (an earlier copy was dropped): hold it so the
         handler observes per-pair FIFO in send order. *)
      Hashtbl.add rs.r_buf env.rel env;
      Stats.incr t.stats "net.rel.buffered";
      ev t
        (Trace_event.Msg_buffered
           {
             src = env.src;
             dst = env.dst;
             kind = kind_to_string env.kind;
             seq = env.seq;
           })
    end
    else begin
      handoff t env;
      rs.r_next <- rs.r_next + 1;
      let rec flush () =
        match Hashtbl.find_opt rs.r_buf rs.r_next with
        | Some held ->
            Hashtbl.remove rs.r_buf rs.r_next;
            handoff t held;
            rs.r_next <- rs.r_next + 1;
            flush ()
        | None -> ()
      in
      flush ()
    end;
    (* Only contiguously delivered prefixes are acknowledged: a crash of
       the receiver can lose buffered-but-unacked messages, never acked
       ones.  When the reverse link is cut (asymmetric partition) the
       payload was handed off but the ack blackholes: the sender keeps
       retransmitting, the receiver suppresses the duplicates, and the
       ack finally lands on the first post-heal copy. *)
    if Hashtbl.mem t.cut (env.dst, env.src) then
      Stats.incr t.stats "net.rel.ack_blackholed"
    else ack t ~src:env.src ~dst:env.dst ~upto:(rs.r_next - 1)
  end

let step t =
  match Queue.take_opt t.queue with
  | None -> false
  | Some env ->
      deliver t env;
      true

(* ------------------------------------------------------------------ *)
(* Out-of-global-order delivery for the schedule explorer.  The only
   ordering guarantee the GC design relies on is FIFO per (src, dst)
   pair (§6.1), so any interleaving that delivers each pair's messages
   in queue order is a legal network behaviour.  [deliverable_pairs]
   enumerates the choice points; [step_pair] commits one choice. *)

let deliverable_pairs t =
  let seen = Hashtbl.create 8 in
  Queue.fold
    (fun acc env ->
      let key = (env.src, env.dst) in
      if Hashtbl.mem seen key then acc
      else begin
        Hashtbl.add seen key ();
        key :: acc
      end)
    [] t.queue
  |> List.rev

let step_pair t ~src ~dst =
  (* Remove the oldest queued message of the pair, preserving the
     relative order of everything else. *)
  let all = List.of_seq (Queue.to_seq t.queue) in
  let rec split acc = function
    | [] -> None
    | env :: rest when Ids.Node.equal env.src src && Ids.Node.equal env.dst dst
      ->
        Some (env, List.rev_append acc rest)
    | env :: rest -> split (env :: acc) rest
  in
  match split [] all with
  | None -> false
  | Some (env, rest) ->
      Queue.clear t.queue;
      List.iter (fun e -> Queue.add e t.queue) rest;
      deliver t env;
      true

let drain t =
  let rec go n = if step t then go (n + 1) else n in
  go 0

let pending t = Queue.length t.queue

(* ------------------------------------------------------------------ *)
(* Retransmission clock. *)

let unacked_count t =
  Hashtbl.fold (fun _ r acc -> acc + List.length !r) t.unacked_tbl 0

let set_metrics t m =
  t.obs <- Some m;
  (* Shards labelled before the registry was attached registered no
     gauges; catch them up now. *)
  for shard = 0 to Array.length t.shard_b - 1 do
    register_shard_gauges t shard
  done;
  (* Occupancy levels read lazily at snapshot time — no hot-path cost. *)
  Bmx_obs.Metrics.gauge_fn m "net.unacked_reliable" (fun () -> unacked_count t);
  Bmx_obs.Metrics.gauge_fn m "net.pending" (fun () -> Queue.length t.queue);
  Bmx_obs.Metrics.gauge_fn m "net.vclock" (fun () -> t.now)

let set_tick_hook t f = t.tick_hook <- Some f

let tick ?(dt = 1) t =
  if dt <= 0 then invalid_arg "Net.tick: dt must be positive";
  t.now <- t.now + dt;
  (match t.tick_hook with None -> () | Some f -> f t.now);
  let retransmitted = ref 0 in
  let retransmit_one u ~interval =
    u.u_attempts <- u.u_attempts + 1;
    u.u_interval <- interval;
    u.u_due <- t.now + interval;
    incr retransmitted;
    Stats.incr t.stats ("net.retransmit." ^ kind_to_string u.u_env.kind);
    Stats.incr t.stats "net.retransmit.total";
    ev t
      (Trace_event.Msg_retransmit
         {
           src = u.u_env.src;
           dst = u.u_env.dst;
           kind = kind_to_string u.u_env.kind;
           seq = u.u_env.seq;
           attempt = u.u_attempts;
         });
    (* Retransmissions carry the original sequence number: the
       receivers' logical clocks compare against send time, and
       the reorder buffer restores handler-visible FIFO. *)
    transmit t u.u_env ~bytes:u.u_bytes
  in
  Hashtbl.iter
    (fun key r ->
      (* While a pair is suspect only its oldest overdue message is
         probed, at the backoff ceiling — a partitioned destination costs
         one transmission per [rto_max] however deep the backlog. *)
      let probe_sent = ref false in
      r :=
        List.filter
          (fun u ->
            if u.u_due > t.now then true
            else if Hashtbl.mem t.suspect key then begin
              if !probe_sent then u.u_due <- t.now + t.rto_max
              else begin
                probe_sent := true;
                Stats.incr t.stats "net.rel.probes";
                retransmit_one u ~interval:t.rto_max
              end;
              true
            end
            else if severed t key && u.u_attempts >= t.suspect_after then begin
              (* Repeated timeouts against a severed path: stop spinning,
                 switch to the slow probe.  Suspect messages are never
                 abandoned — they deliver after heal or restart. *)
              mark_suspect t key;
              probe_sent := true;
              Stats.incr t.stats "net.rel.probes";
              retransmit_one u ~interval:t.rto_max;
              true
            end
            else if u.u_attempts >= t.max_attempts && not (severed t key)
            then begin
              (* Abandonment is for sustained loss on a live path only: a
                 severed path is the failure detector's business whatever
                 the attempt count, even when [max_attempts] is below
                 [suspect_after] — reliable messages to a cut or down
                 destination are never abandoned. *)
              Stats.incr t.stats "net.rel.abandoned";
              false
            end
            else begin
              (* Exponential backoff, capped at [rto_max]. *)
              retransmit_one u ~interval:(min (u.u_interval * 2) t.rto_max);
              true
            end)
          !r)
    t.unacked_tbl;
  !retransmitted

let settle ?(max_rounds = 10_000) t =
  let delivered = ref (drain t) in
  let next_due () =
    (* Pairs whose path is severed (down node or cut link in either
       direction) can make no progress however far the clock jumps:
       ignore them so [settle] terminates during a partition instead of
       probing it [max_rounds] times. *)
    Hashtbl.fold
      (fun key r acc ->
        if severed t key then acc
        else
          List.fold_left
            (fun acc u ->
              match acc with
              | None -> Some u.u_due
              | Some d -> Some (min d u.u_due))
            acc !r)
      t.unacked_tbl None
  in
  let rounds = ref 0 in
  let rec go () =
    if unacked_count t > 0 && !rounds < max_rounds then begin
      incr rounds;
      match next_due () with
      | None -> ()
      | Some due ->
          (* Jump the virtual clock straight to the next deadline. *)
          ignore (tick ~dt:(max 1 (due - t.now)) t);
          delivered := !delivered + drain t;
          go ()
    end
  in
  go ();
  !delivered

(* ------------------------------------------------------------------ *)
(* Node crash/restart.  Volatile per-node channel state dies with the
   node: queued messages from/to it, its retransmission buffer, and its
   reorder buffers.  Per-pair sequence counters and the receivers'
   delivery cursors are stable (tiny, O(nodes^2) integers journalled with
   the RVM image), the standard at-most-once assumption that lets a
   stream resume across a crash without an epoch handshake. *)

let set_down t node =
  if not (Hashtbl.mem t.down node) then begin
    Hashtbl.replace t.down node ();
    Stats.incr t.stats "net.crash.count";
    (* In-flight messages involving the node are lost. *)
    let keep =
      Queue.fold
        (fun acc env ->
          if Ids.Node.equal env.src node || Ids.Node.equal env.dst node then begin
            Stats.incr t.stats "net.crash.purged_in_flight";
            acc
          end
          else env :: acc)
        [] t.queue
    in
    Queue.clear t.queue;
    List.iter (fun e -> Queue.add e t.queue) (List.rev keep);
    (* The node's own retransmission buffer is volatile, and so is its
       failure detector's opinion of its peers. *)
    Hashtbl.iter
      (fun (src, _) r ->
        if Ids.Node.equal src node && !r <> [] then begin
          Stats.incr t.stats ~by:(List.length !r) "net.crash.lost_unacked";
          r := []
        end)
      t.unacked_tbl;
    List.iter
      (fun (src, dst) ->
        if Ids.Node.equal src node then clear_suspect t (src, dst))
      (suspect_pairs t);
    (* Reorder buffers touching the node are volatile; roll the crashed
       sender's stream counters back to each receiver's contiguous
       high-water mark so post-restart sends resume gap-free. *)
    Hashtbl.iter
      (fun (src, dst) rs ->
        if Ids.Node.equal src node || Ids.Node.equal dst node then
          Hashtbl.reset rs.r_buf)
      t.rstates;
    Hashtbl.iter
      (fun (src, dst) r ->
        if Ids.Node.equal src node then
          let delivered =
            match Hashtbl.find_opt t.rstates (src, dst) with
            | Some rs -> rs.r_next - 1
            | None -> 0
          in
          r := delivered)
      t.rseqs
  end

let set_up t node = Hashtbl.remove t.down node

let down_nodes t =
  Hashtbl.fold (fun n () acc -> n :: acc) t.down [] |> List.sort Ids.Node.compare

let current_seq t ~src ~dst =
  match Hashtbl.find_opt t.seqs (src, dst) with Some r -> !r | None -> 0
let set_fault t ~kind ~drop ~dup ~rng = Hashtbl.replace t.faults kind { drop; dup; rng }
let clear_faults t = Hashtbl.reset t.faults
let sent t kind = Stats.get t.stats ("net.sent." ^ kind_to_string kind)
let total_messages t = Stats.get t.stats "net.sent.total"
let total_bytes t = Stats.get t.stats "net.bytes.total"

let component_bytes t comp =
  List.fold_left
    (fun acc k ->
      if Component.of_kind k = comp then
        acc + Stats.get t.stats ("net.bytes." ^ kind_to_string k)
      else acc)
    0 all_kinds

let shard_rows_to_list rows =
  Array.to_list rows
  |> List.mapi (fun shard row ->
         let comps =
           List.filter_map
             (fun c ->
               let v = row.(Component.index c) in
               if v > 0 then Some (c, v) else None)
             Component.all
         in
         (shard, comps))
  |> List.filter (fun (_, comps) -> comps <> [])

let shard_components t = shard_rows_to_list t.shard_b
let shard_component_msgs t = shard_rows_to_list t.shard_m

(* ------------------------------------------------------------------ *)
(* Scaling gate over a node sweep. *)

type scaling_point = {
  sp_nodes : int;
  sp_bytes : (Component.t * int) list;
  sp_shards : (int * (Component.t * int) list) list;
}

let scaling_point t ~nodes =
  {
    sp_nodes = nodes;
    sp_bytes = List.map (fun c -> (c, component_bytes t c)) Component.all;
    sp_shards = shard_components t;
  }

type scaling_row = {
  sr_component : Component.t;
  sr_shard : int option;
      (* [None]: the component's cluster-wide total.  [Some s]: the
         hottest-shard row — s is the shard carrying the most bytes of
         this component at the widest sweep point. *)
  sr_first_per_node : float;
  sr_last_per_node : float;
  sr_growth : float;
  sr_ok : bool;
  sr_note : string;
}

let scaling_check ?(floor = 1024) ?(bound = 1.5) points =
  if List.length points < 3 then
    invalid_arg "Net.scaling_check: need at least 3 sweep points";
  let points =
    List.sort (fun a b -> compare a.sp_nodes b.sp_nodes) points
  in
  let first = List.hd points in
  let last = List.nth points (List.length points - 1) in
  if first.sp_nodes >= last.sp_nodes then
    invalid_arg "Net.scaling_check: sweep points must span distinct node counts";
  let bytes_of p c =
    match List.assoc_opt c p.sp_bytes with Some b -> b | None -> 0
  in
  let rows =
    List.map
      (fun c ->
        let b0 = bytes_of first c and b1 = bytes_of last c in
        let per0 = float_of_int b0 /. float_of_int first.sp_nodes in
        let per1 = float_of_int b1 /. float_of_int last.sp_nodes in
        let growth = if per0 > 0. then per1 /. per0 else 0. in
        match c with
        | Component.Gc_cleaner ->
            (* Cleaner traffic is O(sharing): widening the sweep adds
               cross-node references, so its total must grow — but it is
               exempt from the per-node bound. *)
            if b1 <= floor && b0 <= floor then
              {
                sr_component = c;
                sr_shard = None;
                sr_first_per_node = per0;
                sr_last_per_node = per1;
                sr_growth = growth;
                sr_ok = false;
                sr_note = "cleaner traffic below floor — sweep saw no sharing";
              }
            else
              {
                sr_component = c;
                sr_shard = None;
                sr_first_per_node = per0;
                sr_last_per_node = per1;
                sr_growth = growth;
                sr_ok = b1 > b0;
                sr_note =
                  (if b1 > b0 then "grows with sharing (exempt from bound)"
                   else "cleaner traffic failed to grow with sharing");
              }
        | _ ->
            if b1 <= floor then
              {
                sr_component = c;
                sr_shard = None;
                sr_first_per_node = per0;
                sr_last_per_node = per1;
                sr_growth = growth;
                sr_ok = true;
                sr_note = "below floor (skipped)";
              }
            else
              {
                sr_component = c;
                sr_shard = None;
                sr_first_per_node = per0;
                sr_last_per_node = per1;
                sr_growth = growth;
                sr_ok = growth <= bound;
                sr_note =
                  (if growth <= bound then "per-node traffic bounded"
                   else "per-node traffic grows with N — superlinear total");
              })
      Component.all
  in
  (* Hottest-shard rows: when the sweep carries per-shard attribution at
     both ends, a component's flat total is not enough — one overloaded
     shard can absorb the growth while the sum stays bounded.  For each
     component with shard data, gate the single hottest shard's per-node
     traffic by the same bound.  The cleaner keeps its exemption. *)
  let shard_bytes_of p s c =
    match List.assoc_opt s p.sp_shards with
    | None -> 0
    | Some comps -> ( match List.assoc_opt c comps with Some b -> b | None -> 0)
  in
  let shard_rows =
    if first.sp_shards = [] || last.sp_shards = [] then []
    else
      List.filter_map
        (fun c ->
          if c = Component.Gc_cleaner then None
          else
            let hottest =
              List.fold_left
                (fun acc (s, comps) ->
                  let b =
                    match List.assoc_opt c comps with Some b -> b | None -> 0
                  in
                  match acc with
                  | Some (_, best) when best >= b -> acc
                  | _ -> if b > 0 then Some (s, b) else acc)
                None last.sp_shards
            in
            match hottest with
            | None -> None
            | Some (s, b1) ->
                if b1 <= floor then None
                else
                  let b0 = shard_bytes_of first s c in
                  let per0 = float_of_int b0 /. float_of_int first.sp_nodes in
                  let per1 = float_of_int b1 /. float_of_int last.sp_nodes in
                  let growth = if per0 > 0. then per1 /. per0 else 0. in
                  let ok = per0 > 0. && growth <= bound in
                  Some
                    {
                      sr_component = c;
                      sr_shard = Some s;
                      sr_first_per_node = per0;
                      sr_last_per_node = per1;
                      sr_growth = growth;
                      sr_ok = ok;
                      sr_note =
                        (if ok then "hottest shard bounded"
                         else if per0 = 0. then
                           "hottest shard absent at first point — \
                            shard layout changed across the sweep"
                         else "hottest shard's per-node traffic grows with N");
                    })
        Component.all
  in
  let rows = rows @ shard_rows in
  (rows, List.for_all (fun r -> r.sr_ok) rows)
