lib/core/barrier.ml: Addr Bmx_dsm Bmx_memory Bmx_netsim Bmx_util Gc_state Ids Ssp Stats
