open Bmx_util
module E = Trace_event
module Protocol = Bmx_dsm.Protocol
module Store = Bmx_memory.Store

type rule =
  | Gc_acquired_token
  | Invariant1
  | Invariant2
  | Invariant3
  | Fifo_order
  | Reliable_fifo
  | Dead_node_activity
  | Forwarder_cycle
  | Incomplete_trace
  | Split_brain_ownership
  | Partition_quarantine
  | Checksum_recovery
  | Shard_ownership

type violation = { rule : rule; at : int; vnode : int; detail : string }

let rule_to_string = function
  | Gc_acquired_token -> "gc-acquired-token"
  | Invariant1 -> "invariant-1"
  | Invariant2 -> "invariant-2"
  | Invariant3 -> "invariant-3"
  | Fifo_order -> "fifo-order"
  | Reliable_fifo -> "reliable-fifo"
  | Dead_node_activity -> "dead-node-activity"
  | Forwarder_cycle -> "forwarder-cycle"
  | Incomplete_trace -> "incomplete-trace"
  | Split_brain_ownership -> "split-brain-ownership"
  | Partition_quarantine -> "partition-quarantine"
  | Checksum_recovery -> "checksum-recovery"
  | Shard_ownership -> "shard-ownership"

let violation_to_string v =
  Printf.sprintf "[%s] %s" (rule_to_string v.rule) v.detail

let pp_violation ppf v = Format.pp_print_string ppf (violation_to_string v)

(* Deterministic report order: trace position, then rule, then node, then
   text; duplicates collapse.  End-of-trace emissions walk hashtables
   whose iteration order is seeded per-process, so without this the same
   trace could lint to differently-ordered (or repeated) findings. *)
let compare_violation a b =
  let c = Int.compare a.at b.at in
  if c <> 0 then c
  else
    let c = Stdlib.compare a.rule b.rule in
    if c <> 0 then c
    else
      let c = Int.compare a.vnode b.vnode in
      if c <> 0 then c else String.compare a.detail b.detail

let normalize vs = List.sort_uniq compare_violation vs

let tok_str = function E.Read -> "read" | E.Write -> "write"

let run events =
  let out = ref [] in
  let add ~at ~vnode rule fmt =
    Printf.ksprintf (fun detail -> out := { rule; at; vnode; detail } :: !out) fmt
  in
  (* Outstanding grants: (requester, uid) -> (piggybacked update count,
     "updates were applied at the requester" flag).  Acquires execute
     synchronously, so at most one grant per requester is in flight. *)
  let grants : (int * int, int * bool ref) Hashtbl.t = Hashtbl.create 32 in
  (* Invariant-3 hook firings not yet consumed by a write grant. *)
  let hooks : (int * int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  (* Invariant-2 obligations: (node, peer, uid) still owed a forward. *)
  let due : (int * int * int, int) Hashtbl.t = Hashtbl.create 32 in
  let last_sent : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
  (* Delivered-side FIFO is tracked per delivery class: unreliable
     streams may repeat a sequence number (duplicate) but never run
     backwards; reliable streams must be handed off strictly in order,
     exactly once — duplicate suppression makes a repeat a violation. *)
  let last_delivered : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
  let last_rel_delivered : (int * int, int) Hashtbl.t = Hashtbl.create 32 in
  (* Nodes currently crashed (between their Crash and Restart events). *)
  let down : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  (* Directed links currently cut (between Link_cut and Link_heal). *)
  let cut : (int * int, unit) Hashtbl.t = Hashtbl.create 8 in
  let partitioned a b =
    Hashtbl.mem cut (a, b) || Hashtbl.mem cut (b, a)
  in
  (* Ownership as witnessed by the trace: write grants transfer it,
     adoption re-seats it.  Partial — allocation is not traced — so the
     split-brain rule only fires when the trace itself recorded who owned
     the object last. *)
  let owner_seen : (int, int) Hashtbl.t = Hashtbl.create 32 in
  (* Registry-shard ownership as witnessed by the trace: adoptions
     re-seat it, allocations must come from it.  Partial knowledge, same
     idiom as [owner_seen] — shard ownership is durable (journalled), so
     a crash does not erase what the trace recorded. *)
  let shard_owner_seen : (int, int) Hashtbl.t = Hashtbl.create 8 in
  (* Storage faults injected and not yet acknowledged by a recovery. *)
  let faults : (int, (int * string) list ref) Hashtbl.t = Hashtbl.create 4 in
  let dead i node fmt =
    Printf.ksprintf
      (fun what ->
        if Hashtbl.mem down node then
          add ~at:i ~vnode:node Dead_node_activity
            "event %d: %s at/involving crashed N%d" i what node)
      fmt
  in
  List.iteri
    (fun i e ->
      match e with
      | E.Acquire_start { actor = E.Gc; node; uid; tok } ->
          add ~at:i ~vnode:node Gc_acquired_token
            "event %d: the collector acquired a %s token for o%d at N%d \
             (actor = Gc on the acquire path)"
            i (tok_str tok) uid node;
          dead i node "%s token acquire for o%d" (tok_str tok) uid
      | E.Acquire_start { node; uid; tok; _ } ->
          dead i node "%s token acquire for o%d" (tok_str tok) uid
      | E.Grant_sent { granter; requester; uid; tok; updates } ->
          (* No token resurrects at a crashed node: a dead granter means
             a token was minted from lost state. *)
          dead i granter "token grant of o%d (as granter)" uid;
          dead i requester "token grant of o%d (as requester)" uid;
          (* No token crosses a partition: the protocol must refuse the
             acquire while granter and requester cannot exchange
             messages. *)
          if granter <> requester && partitioned granter requester then
            add ~at:i ~vnode:granter Split_brain_ownership
              "event %d: %s token of o%d granted N%d -> N%d across a cut \
               link"
              i (tok_str tok) uid granter requester;
          if tok = E.Write then Hashtbl.replace owner_seen uid requester;
          Hashtbl.replace grants (requester, uid) (updates, ref false);
          if tok = E.Write then
            if Hashtbl.mem hooks (granter, requester, uid) then
              Hashtbl.remove hooks (granter, requester, uid)
            else
              add ~at:i ~vnode:granter Invariant3
                "event %d: write grant of o%d (N%d -> N%d) sent without the \
                 SSP-creation hook having run"
                i uid granter requester
      | E.Hook_ssp { granter; requester; uid } ->
          dead i granter "SSP hook for o%d (as granter)" uid;
          dead i requester "SSP hook for o%d (as requester)" uid;
          Hashtbl.replace hooks (granter, requester, uid) ()
      | E.Updates_applied { node; uids = _ } ->
          dead i node "location updates applied";
          Hashtbl.iter
            (fun (r, _) (_, applied) -> if r = node then applied := true)
            grants
      | E.Acquire_done { actor = _; node; uid; tok; addr_valid } ->
          dead i node "%s acquire completion for o%d" (tok_str tok) uid;
          if not addr_valid then
            add ~at:i ~vnode:node Invariant1
              "event %d: %s acquire of o%d at N%d completed without a valid \
               local address"
              i (tok_str tok) uid node;
          (match Hashtbl.find_opt grants (node, uid) with
          | Some (updates, applied) ->
              if updates > 0 && not !applied then
                add ~at:i ~vnode:node Invariant1
                  "event %d: the grant for o%d carried %d location updates \
                   that N%d never applied before the acquire completed"
                  i uid updates node;
              Hashtbl.remove grants (node, uid)
          | None -> ())
      | E.Forward_due { node; uid; peers } ->
          List.iter (fun p -> Hashtbl.replace due (node, p, uid) i) peers
      | E.Copyset_forward { src; dst; uid } ->
          Hashtbl.remove due (src, dst, uid)
      | E.Msg_sent { src; dst; kind; seq; rel = _ } ->
          dead i src "%s message sent to N%d (seq %d)" kind dst seq;
          (match Hashtbl.find_opt last_sent (src, dst) with
          | Some s when seq <= s ->
              add ~at:i ~vnode:src Fifo_order
                "event %d: %s message N%d -> N%d sent with seq %d after seq \
                 %d on the same stream"
                i kind src dst seq s
          | Some _ | None -> ());
          Hashtbl.replace last_sent (src, dst) seq
      | E.Msg_delivered { src; dst; kind; seq; rel = false } ->
          dead i src "%s message delivered from it (seq %d)" kind seq;
          dead i dst "%s message delivered to it (seq %d)" kind seq;
          if Hashtbl.mem cut (src, dst) then
            add ~at:i ~vnode:dst Partition_quarantine
              "event %d: %s message N%d -> N%d (seq %d) delivered over a cut \
               link"
              i kind src dst seq;
          (match Hashtbl.find_opt last_delivered (src, dst) with
          | Some s when seq < s ->
              add ~at:i ~vnode:dst Fifo_order
                "event %d: %s message N%d -> N%d delivered with seq %d after \
                 seq %d — per-pair FIFO broken"
                i kind src dst seq s
          | Some _ | None -> ());
          Hashtbl.replace last_delivered (src, dst) seq
      | E.Msg_delivered { src; dst; kind; seq; rel = true } ->
          dead i src "reliable %s delivered from it (seq %d)" kind seq;
          dead i dst "reliable %s delivered to it (seq %d)" kind seq;
          if Hashtbl.mem cut (src, dst) then
            add ~at:i ~vnode:dst Partition_quarantine
              "event %d: reliable %s message N%d -> N%d (seq %d) delivered \
               over a cut link"
              i kind src dst seq;
          (match Hashtbl.find_opt last_rel_delivered (src, dst) with
          | Some s when seq <= s ->
              add ~at:i ~vnode:dst Reliable_fifo
                "event %d: reliable %s message N%d -> N%d handed off with \
                 seq %d after seq %d — exactly-once in-order delivery broken"
                i kind src dst seq s
          | Some _ | None -> ());
          Hashtbl.replace last_rel_delivered (src, dst) seq
      | E.Msg_retransmit { src; dst; kind; seq; attempt = _ } ->
          (* A dead node's retransmission buffer died with it. *)
          dead i src "%s retransmission to N%d (seq %d)" kind dst seq
      | E.Msg_suppressed _ | E.Msg_buffered _ ->
          (* Receiver-side bookkeeping of the reliable layer. *)
          ()
      | E.Rpc _ ->
          (* Synchronous inline exchange: shares the seq counter but is
             exempt from the background channel's FIFO; recovery-time
             accounting (ownership adoption) also records these. *)
          ()
      | E.Crash { node } ->
          Hashtbl.replace down node ();
          (* Ownership is volatile state and dies with the node: a later
             adoption elsewhere is legitimate even if this node restarts
             in between (its recovery re-establishes ownership — and
             re-records it here — only via Owner_adopted/Grant_sent). *)
          Hashtbl.iter
            (fun uid owner -> if owner = node then Hashtbl.remove owner_seen uid)
            (Hashtbl.copy owner_seen)
      | E.Restart { node } -> Hashtbl.remove down node
      | E.Link_cut { src; dst } -> Hashtbl.replace cut (src, dst) ()
      | E.Link_heal { src; dst } -> Hashtbl.remove cut (src, dst)
      | E.Suspect _ ->
          (* Transport failure-detector bookkeeping.  A crash clears the
             crashed sender's suspect pairs, so a Suspect-off can
             legitimately trail a Crash event — no dead-node check. *)
          ()
      | E.Owner_adopted { node; uid } ->
          dead i node "ownership adoption of o%d" uid;
          (match Hashtbl.find_opt owner_seen uid with
          | Some prev
            when prev <> node
                 && (not (Hashtbl.mem down prev))
                 && partitioned prev node ->
              add ~at:i ~vnode:node Split_brain_ownership
                "event %d: N%d adopted ownership of o%d while its last \
                 recorded owner N%d is alive across a cut link — two owners \
                 after heal"
                i node uid prev
          | Some _ | None -> ());
          Hashtbl.replace owner_seen uid node
      | E.Tables_processed { at; sender; bunch; seq = _ } ->
          dead i at "reachability tables processed";
          if Hashtbl.mem down sender then
            add ~at:i ~vnode:at Partition_quarantine
              "event %d: N%d processed reachability tables for b%d from \
               crashed sender N%d — dead-sender quarantine bypassed"
              i at bunch sender
          else if partitioned sender at then
            add ~at:i ~vnode:at Partition_quarantine
              "event %d: N%d processed reachability tables for b%d from \
               unreachable sender N%d — partition quarantine bypassed"
              i at bunch sender
      | E.Disk_fault { node; fault } -> (
          (* The disk is independent of the node's volatile state: faults
             may be injected while the node is down.  Each must later be
             acknowledged by a recovery at that node. *)
          match Hashtbl.find_opt faults node with
          | Some l -> l := (i, fault) :: !l
          | None -> Hashtbl.add faults node (ref [ (i, fault) ]))
      | E.Rvm_recover { node; dropped = _; lost = _ } ->
          dead i node "RVM recovery";
          Hashtbl.remove faults node
      | E.Bunch_verified { node; missing = _ } ->
          dead i node "bunch verification"
      | E.Shard_adopted { shard; node } ->
          dead i node "registry shard %d adoption" shard;
          (match Hashtbl.find_opt shard_owner_seen shard with
          | Some prev
            when prev <> node
                 && (not (Hashtbl.mem down prev))
                 && partitioned prev node ->
              add ~at:i ~vnode:node Shard_ownership
                "event %d: N%d adopted registry shard %d while its last \
                 recorded owner N%d is alive across a cut link — two shard \
                 owners after heal"
                i node shard prev
          | Some _ | None -> ());
          Hashtbl.replace shard_owner_seen shard node
      | E.Shard_alloc { shard; node } ->
          dead i node "range carved from registry shard %d" shard;
          (* A non-owner carve is the fail-stop regency, legal only while
             the recorded owner is down — everyone agrees a crashed node
             is gone, unlike a partition, where carving for an absent
             owner would be exactly the two-writers split-brain. *)
          (match Hashtbl.find_opt shard_owner_seen shard with
          | Some owner when owner <> node && not (Hashtbl.mem down owner) ->
              add ~at:i ~vnode:node Shard_ownership
                "event %d: N%d carved a range from registry shard %d whose \
                 recorded owner N%d is alive — registry mutation applied by \
                 a non-owning node"
                i node shard owner
          | Some _ -> ()
          | None -> Hashtbl.replace shard_owner_seen shard node)
      | E.Gc_begin { node; _ } -> dead i node "collection started"
      | E.Gc_end { node; _ } -> dead i node "collection finished"
      | E.Gc_phase { node; phase; _ } ->
          dead i node "collector %s phase timed" phase
      | E.Release { node; uid } -> dead i node "token release for o%d" uid
      | E.Read_obs { node; uid; _ } -> dead i node "field read of o%d" uid
      | E.Write_obs { node; uid; _ } -> dead i node "field write of o%d" uid
      | E.Invalidate { src; dst = _; uid } ->
          (* An invalidation *to* a dead node is legal — the message just
             evaporates at the dead host; one *from* a dead node is not. *)
          dead i src "invalidation of o%d issued" uid)
    events;
  Hashtbl.iter
    (fun (node, peer, uid) i ->
      add ~at:i ~vnode:node Invariant2
        "event %d: N%d installed new-location information for o%d but never \
         forwarded it to copy-set member N%d"
        i node uid peer)
    due;
  Hashtbl.iter
    (fun node l ->
      List.iter
        (fun (i, fault) ->
          add ~at:i ~vnode:node Checksum_recovery
            "event %d: storage fault '%s' injected at N%d's disk was never \
             acknowledged by an RVM recovery at that node"
            i fault node)
        (List.rev !l))
    faults;
  normalize !out

let check_log log =
  let vs = run (E.events log) in
  if E.overflowed log then
    {
      rule = Incomplete_trace;
      at = -1;
      vnode = -1;
      detail =
        Printf.sprintf
          "the event log overflowed after %d events; the trace cannot be \
           certified"
          (E.length log);
    }
    :: vs
  else vs

let check_stores proto =
  let out = ref [] in
  List.iter
    (fun node ->
      let store = Protocol.store proto node in
      (* Snapshot the forwarder graph, then walk every chain. *)
      let fwd : (Addr.t, Addr.t) Hashtbl.t = Hashtbl.create 64 in
      Store.iter store (fun a cell ->
          match cell with
          | Store.Forwarder target -> Hashtbl.replace fwd a target
          | Store.Object _ -> ());
      let reported = Hashtbl.create 4 in
      Hashtbl.iter
        (fun start _ ->
          let visited = Hashtbl.create 8 in
          let rec walk a =
            if Hashtbl.mem visited a then begin
              if not (Hashtbl.mem reported a) then begin
                (* Mark the whole cycle so each is flagged exactly once. *)
                let rec mark x =
                  if not (Hashtbl.mem reported x) then begin
                    Hashtbl.replace reported x ();
                    match Hashtbl.find_opt fwd x with
                    | Some next -> mark next
                    | None -> ()
                  end
                in
                mark a;
                out :=
                  {
                    rule = Forwarder_cycle;
                    at = -1;
                    vnode = node;
                    detail =
                      Printf.sprintf
                        "N%d: forwarding-pointer cycle through %s" node
                        (Addr.to_string a);
                  }
                  :: !out
              end
            end
            else begin
              Hashtbl.replace visited a ();
              match Hashtbl.find_opt fwd a with
              | Some next -> walk next
              | None -> ()
            end
          in
          walk start)
        fwd)
    (Protocol.nodes proto);
  normalize !out

let check_all proto = check_log (Protocol.evlog proto) @ check_stores proto
