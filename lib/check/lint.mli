(** The trace linter: replay a typed event log ({!Bmx_util.Trace_event})
    against the protocol state machine and report every violation of the
    GC/DSM non-interference contract.

    Checked rules (paper sections in brackets):

    - {b GC-never-acquires} (§5, central claim): no token acquisition is
      ever performed by the [Gc] actor — the collector works exclusively
      on local state and background messages.
    - {b Invariant 1} (§5): a token grant completes only after the
      acquiring node holds a valid local address for the object; when the
      grant piggybacked location updates, they were applied before the
      acquire returned.
    - {b Invariant 2} (§5): a node that installed fresh new-location
      information forwarded it to every node in its local copy-set for
      the object.
    - {b Invariant 3} (§5): every write grant that transfers ownership
      was preceded by the SSP-creation hook for that transfer.
    - {b FIFO} (§6.1): per (src, dst) stream, sent sequence numbers
      strictly increase and unreliable deliveries never run backwards
      (drops leave gaps, duplicates repeat a number — both legal).
    - {b Reliable FIFO}: messages on a reliable channel are handed to
      the handler strictly in send order, exactly once — retransmission
      and duplicate injection must never surface as a repeated or
      reordered hand-off.
    - {b Dead-node activity} (recovery): between a node's [Crash] and
      [Restart] events, the node performs no token operation, grants or
      receives no token (no token resurrects at a crashed node), starts
      no collection, and sends, relays or receives no background
      message.
    - {b Forwarder convergence} (§4.2, state check): no per-node
      forwarding-pointer chain contains a cycle — every chain reaches an
      object or dangles into reclaimed space after finitely many hops.
    - {b Completeness}: an overflowed (truncated) log cannot be
      certified.
    - {b Split-brain ownership} (partitions): no token is granted across
      a cut link, and no node adopts ownership of an object whose last
      trace-recorded owner is alive on the far side of a cut — healing
      must never reveal two owners.
    - {b Partition quarantine} (partitions): no message is delivered
      over a cut link, and the scion cleaner never processes
      reachability tables from a sender that is crashed or unreachable
      at processing time ([Tables_processed] is recorded only for
      accepted messages).
    - {b Checksum recovery} (storage faults): every injected disk fault
      ([Disk_fault]) is eventually acknowledged by an RVM recovery
      ([Rvm_recover]) at that node — damage is never silently ignored.
    - {b Shard ownership} (registry sharding): every segment range is
      carved by the owning node of its registry shard — a [Shard_alloc]
      applied by any other node is a registry mutation from a non-owning
      replica — and no node adopts a shard whose last trace-recorded
      owner is alive on the far side of a cut link.  Partial knowledge,
      like split-brain ownership: the rule only fires when the trace
      recorded who owned the shard. *)

type rule =
  | Gc_acquired_token
  | Invariant1
  | Invariant2
  | Invariant3
  | Fifo_order
  | Reliable_fifo
  | Dead_node_activity
  | Forwarder_cycle
  | Incomplete_trace
  | Split_brain_ownership
  | Partition_quarantine
  | Checksum_recovery
  | Shard_ownership

type violation = {
  rule : rule;
  at : int;  (** index of the triggering event in the trace, [-1] when the
                 finding is not tied to one (truncation, store checks) *)
  vnode : int;  (** primary node involved, [-1] when none *)
  detail : string;
}

val rule_to_string : rule -> string
val violation_to_string : violation -> string
val pp_violation : Format.formatter -> violation -> unit

val compare_violation : violation -> violation -> int
(** Orders by trace position, then rule, then node, then text. *)

val normalize : violation list -> violation list
(** Sort by {!compare_violation} and drop duplicates — report order is
    deterministic regardless of hashtable iteration order. *)

val run : Bmx_util.Trace_event.t list -> violation list
(** Replay the log; empty result means every checked invariant held. *)

val check_log : Bmx_util.Trace_event.log -> violation list
(** {!run} on the log's events, plus the truncation check. *)

val check_stores : Bmx_dsm.Protocol.t -> violation list
(** Forwarding-pointer acyclicity on every node's store. *)

val check_all : Bmx_dsm.Protocol.t -> violation list
(** {!check_log} on the protocol's event log plus {!check_stores}. *)
