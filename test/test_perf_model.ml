(* Empirical complexity model: the per-op work of the driver's hot path,
   measured through the Perfcount counter harness at two heap sizes, must
   not grow with the heap.  This is the lock on the flat-heap refactor —
   wall-clock floors live in the bench smoke gate; here we assert the
   *counts* that make the wall-clock follow.

   Method (also the HACKING.md "Performance" recipe): set up a workload,
   warm it with one resynced batch, then snapshot Perfcount / diff
   around a steady-state batch and divide by ops.  Do it at a baseline
   heap and at an 8x heap; every per-op figure must stay within a small
   constant factor, nowhere near the 8x a linear-in-heap path would show.

   Mutation checks (hand-applied breakages that make this file fail):
   - forcing [full_rescan_legality] into the incremental path (or
     resurrecting the Audit.union_reachable call per invalidation):
     [memo_full_rebuilds] stops being 0 and reach-work explodes with the
     heap — "per-op reach work is heap-size independent" fails exactly
     the way the pre-flat-heap driver did (the sibling test below runs
     the old path deliberately and shows the counters catching it);
   - a Store.iter sneaking into the mutator path: store_cells_touched
     per op is no longer ~0;
   - reverting the rooted-set ring buffer to the O(roots) list append
     does not move these counters but re-blows the allocation test:
     minor words per op scales with live roots, which scale with the
     heap;
   - reverting gauge sampling to heap iteration makes
     [obs_sample_work] per collection scale with objects_per_bunch:
     "gauge sampling is heap-size independent" fails. *)

open Bmx_util
module Cluster = Bmx.Cluster
module Driver = Bmx_workload.Driver
module P = Perfcount

let check = Alcotest.check
let check_int = check Alcotest.int

let steady_cfg objects_per_bunch =
  {
    Driver.default with
    nodes = 4;
    bunches = 4;
    objects_per_bunch;
    root_churn_prob = 0.05;
    relink_prob = 0.4;
    seed = 11;
  }

(* Steady-state per-op counter deltas over [ops] driver ops. *)
let measure ?(full_rescan = false) ~objects_per_bunch ~ops () =
  let cfg = { (steady_cfg objects_per_bunch) with full_rescan_legality = full_rescan } in
  let d = Driver.setup cfg in
  (* Warm: one resynced batch so lazily-built state exists. *)
  Driver.run_ops d ~ops:200 ();
  let before = P.snapshot () in
  let w0 = Gc.minor_words () in
  Driver.run_ops d ~resync_first:false ~ops ();
  let words = Gc.minor_words () -. w0 in
  let delta = P.diff ~before ~after:(P.snapshot ()) in
  (d, delta, words /. float_of_int ops)

let per_op delta field ops = float_of_int (field delta) /. float_of_int ops

let test_reach_work_heap_independent () =
  let ops = 1500 in
  let _, small, _ = measure ~objects_per_bunch:64 ~ops () in
  let _, big, _ = measure ~objects_per_bunch:512 ~ops () in
  (* The incremental mirror never falls back to a from-scratch rebuild. *)
  check_int "no full rebuilds (small)" 0 small.P.s_memo_full_rebuilds;
  check_int "no full rebuilds (8x heap)" 0 big.P.s_memo_full_rebuilds;
  check_int "no batch resyncs measured" 0 big.P.s_memo_resyncs;
  (* No store-wide iteration inside the mutator loop. *)
  check_int "no store scans (small)" 0 small.P.s_store_cells_touched;
  check_int "no store scans (8x heap)" 0 big.P.s_store_cells_touched;
  let s = per_op small P.(fun d -> d.s_reach_nodes_touched) ops in
  let b = per_op big P.(fun d -> d.s_reach_nodes_touched) ops in
  if b > 25.0 then
    Alcotest.failf "reach work per op too high at 8x heap: %.2f nodes" b;
  if b > (4.0 *. s) +. 8.0 then
    Alcotest.failf
      "reach work per op scales with the heap: %.2f (baseline) -> %.2f (8x)" s b

let test_allocation_heap_independent () =
  let ops = 1500 in
  let _, _, w_small = measure ~objects_per_bunch:64 ~ops () in
  let _, _, w_big = measure ~objects_per_bunch:512 ~ops () in
  if w_big > 1024.0 then
    Alcotest.failf "allocation per op over budget at 8x heap: %.0f words" w_big;
  if w_big > (2.5 *. w_small) +. 64.0 then
    Alcotest.failf
      "allocation per op scales with the heap: %.0f -> %.0f words" w_small w_big

(* The deliberate mutation, kept runnable: the pre-flat-heap legality
   path (memoized full traversals) through the same workload.  The
   counter harness must *see* it — this is what guards the guards. *)
let test_full_rescan_baseline_is_visible () =
  let ops = 300 in
  let _, slow, _ = measure ~full_rescan:true ~objects_per_bunch:64 ~ops () in
  if slow.P.s_memo_full_rebuilds < 5 then
    Alcotest.failf
      "expected the full-rescan baseline to rebuild the memo repeatedly, saw %d"
      slow.P.s_memo_full_rebuilds;
  check_int "the incremental mirror stays out of the baseline's way" 0
    slow.P.s_reach_nodes_touched

let test_gauge_sampling_heap_independent () =
  let sample_work objects_per_bunch =
    let cfg = steady_cfg objects_per_bunch in
    let d = Driver.setup cfg in
    let c = Driver.cluster d in
    Driver.run_ops d ~ops:100 ();
    let bunch = List.hd (Bmx_dsm.Protocol.bunches (Cluster.proto c)) in
    let node = List.hd (Cluster.nodes c) in
    let before = P.snapshot () in
    ignore (Cluster.bgc c ~node ~bunch);
    (P.diff ~before ~after:(P.snapshot ())).P.s_obs_sample_work
  in
  let small = sample_work 64 in
  let big = sample_work 512 in
  if small <= 0 then
    Alcotest.failf "gauge sampling not instrumented (work=%d)" small;
  if big > 2 * small then
    Alcotest.failf
      "gauge sampling scales with the heap: %d (baseline) -> %d (8x)" small big

let test_quiescent_rounds_are_constant_work () =
  (* Economical-mode convergence: once [collect_until_quiescent] returns,
     the cluster is structurally clean — every (node, bunch) pair's dirty
     epoch matches its last BGC — so one more [gc_round] must be skips
     all the way down: no objects traced, no table entries reconciled.
     Mutation checks (hand-applied breakages that make this fail):
     - bumping Store/Directory mutation epochs on reads or on a BGC's
       own bookkeeping writes (e.g. dropping the duplicate-forwarder
       guard in Store.set_forwarder) re-dirties peers forever:
       [skipped_clean] stays 0 and the post-quiescence round traces the
       whole heap again;
     - removing the cleaner's empty-delta fast path does not break the
       skip counter but resurfaces as [gc_table_entries] > 0 here
       whenever a straggler message drains late. *)
  let cfg = steady_cfg 128 in
  let d = Driver.setup cfg in
  let c = Driver.cluster d in
  Driver.run_ops d ~ops:400 ();
  ignore (Cluster.collect_until_quiescent c ());
  let stats = Cluster.stats c in
  let skipped0 = Stats.get stats "gc.bgc.skipped_clean" in
  let before = P.snapshot () in
  ignore (Cluster.gc_round c);
  let delta = P.diff ~before ~after:(P.snapshot ()) in
  if Stats.get stats "gc.bgc.skipped_clean" <= skipped0 then
    Alcotest.fail "post-quiescence gc_round skipped no clean (node, bunch) pair";
  check_int "post-quiescence round traces no objects" 0
    delta.P.s_gc_objects_touched;
  check_int "post-quiescence round reconciles no table entries" 0
    delta.P.s_gc_table_entries

let test_memo_exact_after_measurement () =
  (* The speed must not come from drift: after a steady-state run the
     mirror still equals the from-scratch oracle. *)
  let d, _, _ = measure ~objects_per_bunch:128 ~ops:1000 () in
  match Driver.check_memo d with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "memo diverged: %s" msg

let () =
  Alcotest.run "perf_model"
    [
      ( "complexity",
        [
          Alcotest.test_case "per-op reach work is heap-size independent"
            `Quick test_reach_work_heap_independent;
          Alcotest.test_case "per-op allocation is heap-size independent"
            `Quick test_allocation_heap_independent;
          Alcotest.test_case "counter harness sees the full-rescan baseline"
            `Quick test_full_rescan_baseline_is_visible;
          Alcotest.test_case "gauge sampling is heap-size independent" `Quick
            test_gauge_sampling_heap_independent;
          Alcotest.test_case "post-quiescence rounds do constant work"
            `Quick test_quiescent_rounds_are_constant_work;
          Alcotest.test_case "memo stays exact after measurement" `Quick
            test_memo_exact_after_measurement;
        ] );
    ]
