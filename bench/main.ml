(* Experiment harness entry point.

   `dune exec bench/main.exe` prints every experiment table (E1-E19);
   `dune exec bench/main.exe -- e5` prints one; `-- micro` runs the
   Bechamel micro-benchmarks (E11/E12). *)

let experiments =
  [
    ("e1", Experiments.e1);
    ("e2", Experiments.e2);
    ("e3", Experiments.e3);
    ("e4", Experiments.e4);
    ("e5", Experiments.e5);
    ("e6", Experiments.e6);
    ("e7", Experiments.e7);
    ("e8", Experiments.e8);
    ("e9", Experiments.e9);
    ("e10", Experiments.e10);
    ("e13", Experiments.e13);
    ("e14", Experiments.e14);
    ("e15", Experiments.e15);
    ("e16", Experiments.e16);
    ("e17", Experiments.e17);
    ("e18", Experiments.e18);
    ("e19", Experiments.e19);
    ("e20", Scale.e20);
    ("e20-smoke", Scale.e20_smoke);
    ("e20-diag", Scale.e20_diag);
    ("e22", Scale.e22);
    ("e22-smoke", Scale.e22_smoke);
    ("e23", Certifier.e23);
    ("e24", Scale.e24);
    ("micro", Micro.run);
  ]

let print_tables tables =
  List.iter
    (fun t ->
      Bmx_util.Table.print t;
      print_newline ())
    tables

let () =
  match Array.to_list Sys.argv with
  | _ :: [] ->
      print_endline "BMX experiment harness - reproducing Ferreira & Shapiro, OSDI '94";
      print_endline "(figures E1-E4 as executable scenarios; claims E5-E13 as measurements)";
      print_newline ();
      (* The scalability sweep (e20) runs minutes and rewrites
         BENCH_SCALE.json — run it explicitly, not as part of "all". *)
      let skip =
        [ "micro"; "e20"; "e20-smoke"; "e20-diag"; "e22"; "e22-smoke" ]
      in
      List.iter
        (fun (name, f) ->
          if not (List.mem name skip) then begin
            Printf.printf "### %s\n\n" (String.uppercase_ascii name);
            print_tables (f ())
          end)
        experiments;
      Printf.printf "### MICRO (E11/E12)\n\n";
      print_tables (Micro.run ())
  | _ :: names ->
      List.iter
        (fun name ->
          match List.assoc_opt (String.lowercase_ascii name) experiments with
          | Some f -> print_tables (f ())
          | None ->
              Printf.eprintf "unknown experiment %S; known: %s\n" name
                (String.concat ", " (List.map fst experiments));
              exit 1)
        names
  | [] -> assert false
