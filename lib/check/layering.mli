(** Build-time layering lint: the collector layer ([lib/core]) must never
    call the DSM token APIs.

    The paper's central claim (§5) is that the collector needs {e no}
    token acquisitions — it works on local state, background messages,
    and the sanctioned hooks the protocol exposes
    ({!Bmx_dsm.Protocol.set_hooks}, installed once by
    [Bmx_gc.Invariants.install]).  This scanner enforces that statically:
    any source file in the collector layer that names
    [Protocol.acquire], [Protocol.release], [Protocol.demand_fetch] or
    an unsanctioned [Protocol.set_hooks] is rejected at build time (the
    [@lint] alias, wired into [dune runtest]).

    The scan strips OCaml comments (nested) and string/char literals, and
    tracks [module X = Bmx_dsm.Protocol]-style aliases, so doc comments
    citing the API don't trip it and renaming the module doesn't evade
    it. *)

type finding = {
  file : string;
  line : int;
  path : string;  (** the offending dotted path, e.g. ["Protocol.acquire"] *)
}

val pp_finding : Format.formatter -> finding -> unit

val forbidden_members : string list
(** Member names of {!Bmx_dsm.Protocol} that the collector layer must not
    call: [acquire], [release], [demand_fetch], [set_hooks]. *)

val sanctioned : (string * string) list
(** [(basename, member)] pairs exempt from the rule — the one place each
    hook is legitimately installed. *)

val scan_source : file:string -> string -> finding list
(** Scan one file's contents.  [file] is used for reporting and for the
    {!sanctioned} basename check. *)

val scan_file : string -> finding list
(** Read and {!scan_source} a file on disk. *)

val scan_dir : string -> finding list
(** Scan every [.ml]/[.mli] file under a directory (recursively),
    skipping [_build] and dot-directories.  Findings are sorted by file
    then line. *)
