lib/bmx/audit.mli: Bmx_util Cluster
