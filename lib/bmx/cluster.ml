open Bmx_util
module Net = Bmx_netsim.Net
module Protocol = Bmx_dsm.Protocol
module Registry = Bmx_memory.Registry
module Store = Bmx_memory.Store
module Value = Bmx_memory.Value
module Gc_state = Bmx_gc.Gc_state
module Barrier = Bmx_gc.Barrier
module Invariants = Bmx_gc.Invariants
module Bgc = Bmx_gc.Bgc
module Ggc = Bmx_gc.Ggc
module Reclaim = Bmx_gc.Reclaim

type t = {
  proto : Protocol.t;
  gc : Gc_state.t;
  net : (int -> unit) Net.t;
  stats : Stats.registry;
  obs : Bmx_obs.Metrics.t;
  rng : Rng.t;
  mutable next_node : int;
  mutable next_bunch : int;
  mutable timeseries : Bmx_obs.Timeseries.t option;
  mutable flight : Bmx_obs.Flight.t option;
}

(* The kinds carried reliably by default: the two that mutate remote
   protocol state through one-way background messages.  Stub tables stay
   unreliable on purpose — §6.1's whole point is that rebroadcast plus
   the cleaner's seq-freshness check tolerate their loss.  RPC-shaped
   exchanges (token, fetch, reclaim) execute synchronously in the
   simulator and need no retransmission. *)
let default_reliable = [ Net.Scion_message; Net.Addr_update ]

let create ?(nodes = 3) ?(shards = 1) ?mode ?update_policy ?(seed = 42)
    ?(trace_events = false) ?(reliable = default_reliable) () =
  let stats = Stats.create_registry () in
  let net = Net.create ~stats () in
  Net.set_reliable net reliable;
  let registry = Registry.create ~shards () in
  let proto = Protocol.create ~net ~registry ?mode ?update_policy () in
  Net.set_evlog net (Protocol.evlog proto);
  Trace_event.set_enabled (Protocol.evlog proto) trace_events;
  (* Event timestamps are anchored to the network's virtual clock so span
     durations line up with retransmission timers. *)
  Trace_event.set_clock (Protocol.evlog proto) (fun () -> Net.now net);
  let gc = Gc_state.create ~proto in
  Invariants.install gc;
  let obs = Bmx_obs.Metrics.create () in
  Net.set_metrics net obs;
  Protocol.set_metrics proto obs;
  Gc_state.set_metrics gc obs;
  (* Registry occupancy rides the maintained O(1) gauge — sampling must
     never fold over segments (Perfcount.obs_sample_work stays flat as
     ranges are carved; test_registry asserts it). *)
  Bmx_obs.Metrics.gauge_fn obs "registry.bytes" (fun () ->
      Perfcount.counters.Perfcount.obs_sample_work <-
        Perfcount.counters.Perfcount.obs_sample_work + 1;
      Registry.total_bytes registry);
  Net.set_handler net (fun env -> env.Net.payload env.Net.seq);
  let t =
    {
      proto;
      gc;
      net;
      stats;
      obs;
      rng = Rng.make seed;
      next_node = 0;
      next_bunch = 0;
      timeseries = None;
      flight = None;
    }
  in
  for _ = 1 to nodes do
    Protocol.add_node proto t.next_node;
    t.next_node <- t.next_node + 1
  done;
  (* Deterministic initial shard placement: shard s is owned by node
     s mod nodes, so with shards = nodes every bunch's home shard sits at
     the bunch's home node and level-1 location consults stay local. *)
  let record_ev e =
    let log = Protocol.evlog proto in
    if Trace_event.enabled log then Trace_event.record log e
  in
  for s = 0 to shards - 1 do
    if nodes > 0 then Registry.set_shard_owner registry s (s mod nodes);
    record_ev
      (Trace_event.Shard_adopted { shard = s; node = Registry.shard_owner registry s })
  done;
  (* Every carve is traced as applied by the shard's owner — the
     Shard_ownership lint replays these against the adoption history.
     Under a fail-stop owner crash the lowest-id live node carves as
     regent (safe because fail-stop is globally agreed — unlike a
     partition, where adoption rules apply instead); the lint tolerates
     a non-owner carve only while the recorded owner is down. *)
  Registry.add_on_alloc registry (fun ~shard _entry ->
      let owner = Registry.shard_owner registry shard in
      let node =
        if Net.is_down net owner then
          match
            List.find_opt (fun n -> not (Net.is_down net n)) (Protocol.nodes proto)
          with
          | Some n -> n
          | None -> owner
        else owner
      in
      record_ev (Trace_event.Shard_alloc { shard; node }));
  t

let enable_timeseries ?window ?slots ?reservoir t =
  match t.timeseries with
  | Some ts -> ts
  | None ->
      let ts =
        Bmx_obs.Timeseries.create ?window ?slots ?reservoir ~metrics:t.obs ()
      in
      Bmx_obs.Timeseries.attach ts (Protocol.evlog t.proto);
      (* The event tap only sees recorded events; the tick hook keeps
         windows closing on virtual time even through quiet stretches
         (or with event recording off). *)
      Net.set_tick_hook t.net (fun now ->
          Bmx_obs.Timeseries.note ts (now * Trace_event.quantum));
      t.timeseries <- Some ts;
      ts

let timeseries t = t.timeseries

let enable_flight ?per_node ?max_dumps t =
  match t.flight with
  | Some f -> f
  | None ->
      let f = Bmx_obs.Flight.create ?per_node ?max_dumps ~metrics:t.obs () in
      Bmx_obs.Flight.attach f (Protocol.evlog t.proto);
      t.flight <- Some f;
      f

let flight t = t.flight
let proto t = t.proto
let gc t = t.gc
let net t = t.net
let stats t = t.stats
let metrics t = t.obs
let tracer t = Protocol.tracer t.proto
let evlog t = Protocol.evlog t.proto
let set_event_trace t b = Trace_event.set_enabled (Protocol.evlog t.proto) b
let events t = Trace_event.events (Protocol.evlog t.proto)
let rng t = t.rng
let nodes t = Protocol.nodes t.proto

let add_node t =
  let n = t.next_node in
  t.next_node <- t.next_node + 1;
  Protocol.add_node t.proto n;
  n

(** {2 Crash and restart} *)

let node_alive t node = not (Net.is_down t.net node)
let live_nodes t = List.filter (node_alive t) (Protocol.nodes t.proto)

let check_alive t node op =
  if Net.is_down t.net node then
    failwith (Printf.sprintf "Cluster.%s: node %d is crashed" op node)

let record_ev t e =
  let log = Protocol.evlog t.proto in
  if Trace_event.enabled log then Trace_event.record log e

let crash_node t ~node =
  check_alive t node "crash_node";
  if not (List.mem node (Protocol.nodes t.proto)) then
    invalid_arg "Cluster.crash_node: unknown node";
  (* Record the crash first: everything the purges below discard happened
     strictly before it in trace order. *)
  record_ev t (Trace_event.Crash { node });
  (* Volatile state dies in three layers: in-flight and unacknowledged
     messages (network), cached copies / tokens / directory (DSM), and
     roots / SSP tables / cleaner clocks (GC). *)
  Net.set_down t.net node;
  Protocol.crash_node t.proto node;
  Gc_state.crash_node t.gc ~node

let restart_node t ~node =
  if not (Net.is_down t.net node) then
    invalid_arg "Cluster.restart_node: node is not down";
  Net.set_up t.net node;
  record_ev t (Trace_event.Restart { node })

(* A node crash (above) loses DSM/GC volatile state but not the registry
   service: under fail-stop a regent node carves on the owner's behalf
   (see the on-alloc trace hook in [create]).  The interesting registry
   failure is the shard service itself — its cursor lives in an RVM
   journal, so taking it down forces a replay-and-verify recovery
   ([Persist.recover_shard]) and possibly a split-brain-checked adoption
   ({!adopt_shard}).  While a shard is down its allocations fail
   ([Failure], which the workload driver degrades on); lookups keep
   answering out of the immutable-entry read cache. *)
let crash_shard t ~shard =
  let reg = Protocol.registry t.proto in
  if shard < 0 || shard >= Registry.num_shards reg then
    invalid_arg "Cluster.crash_shard: unknown shard";
  if not (Registry.shard_up reg shard) then
    failwith (Printf.sprintf "Cluster.crash_shard: shard %d already down" shard);
  Registry.crash_shard reg shard

(* Move a (typically crashed) shard's ownership to a survivor, with the
   same split-brain discipline as object-ownership adoption (PR 5): while
   the recorded owner is alive but unreachable, adoption is refused —
   healing must never reveal two nodes carving the same region. *)
let adopt_shard t ~shard ~node =
  check_alive t node "adopt_shard";
  let reg = Protocol.registry t.proto in
  if shard < 0 || shard >= Registry.num_shards reg then
    invalid_arg "Cluster.adopt_shard: unknown shard";
  let prev = Registry.shard_owner reg shard in
  if
    (not (Ids.Node.equal prev node))
    && (not (Net.is_down t.net prev))
    && not (Net.reachable t.net prev node)
  then
    failwith
      (Printf.sprintf
         "Cluster.adopt_shard: shard %d's recorded owner N%d is alive but \
          unreachable — refusing split-brain adoption"
         shard prev);
  Registry.set_shard_owner reg shard node;
  Registry.revive_shard reg shard;
  record_ev t (Trace_event.Shard_adopted { shard; node })

(** {2 Network partitions} *)

let cut_link t ~src ~dst = Net.cut_link t.net ~src ~dst
let heal_link t ~src ~dst = Net.heal_link t.net ~src ~dst

let partition t ~groups =
  List.iter
    (List.iter (fun n ->
         if not (List.mem n (Protocol.nodes t.proto)) then
           invalid_arg "Cluster.partition: unknown node"))
    groups;
  Net.partition t.net ~groups

let heal_all_links t = Net.heal_all_links t.net
let reachable t a b = Net.reachable t.net a b

let new_bunch t ~home =
  check_alive t home "new_bunch";
  let b = t.next_bunch in
  t.next_bunch <- t.next_bunch + 1;
  Protocol.declare_bunch t.proto ~bunch:b ~home;
  ignore (Store.fresh_segment (Protocol.store t.proto home) ~bunch:b ());
  b

let alloc t ~node ~bunch fields =
  check_alive t node "alloc";
  (* Allocate with blank fields, then initialize through the barrier so
     inter-bunch references present at birth create their SSPs (§3.2). *)
  let blank = Array.map (fun _ -> Value.Data 0) fields in
  let addr = Protocol.alloc t.proto ~node ~bunch ~fields:blank in
  Array.iteri (fun i v -> Barrier.write_field t.gc ~node addr i v) fields;
  addr

let acquire_read t ~node addr =
  check_alive t node "acquire_read";
  Protocol.acquire t.proto ~node addr `Read

let acquire_write t ~node addr =
  check_alive t node "acquire_write";
  Protocol.acquire t.proto ~node addr `Write

let release t ~node addr =
  check_alive t node "release";
  Protocol.release t.proto ~node addr

let demand_fetch t ~node addr =
  check_alive t node "demand_fetch";
  Protocol.demand_fetch t.proto ~node addr

let read t ?weak ~node addr i =
  check_alive t node "read";
  Protocol.read_field t.proto ?weak ~node addr i

let write t ~node addr i v =
  check_alive t node "write";
  Barrier.write_field t.gc ~node addr i v

let ptr_eq t ~node a b = Protocol.ptr_eq t.proto ~node a b

let add_root t ~node addr =
  check_alive t node "add_root";
  Gc_state.add_root t.gc ~node addr

let remove_root_checked t ~node addr =
  (* The collector rewrites stack roots through forwarders at each local
     collection (§4.4), so the caller's remembered address may be an
     older name for the same object: match by identity, exact address
     first. *)
  let roots = Gc_state.roots t.gc ~node in
  if List.exists (Addr.equal addr) roots then begin
    Gc_state.remove_root t.gc ~node addr;
    true
  end
  else
    match Protocol.uid_of_addr t.proto addr with
    | None -> false
    | Some uid -> (
        let same_object r = Protocol.uid_of_addr t.proto r = Some uid in
        match List.find_opt same_object roots with
        | Some r ->
            Gc_state.remove_root t.gc ~node r;
            true
        | None -> false)

let remove_root t ~node addr = ignore (remove_root_checked t ~node addr)
let roots t ~node = Gc_state.roots t.gc ~node

let bgc ?economical t ~node ~bunch =
  check_alive t node "bgc";
  Bgc.run ?economical t.gc ~node ~bunch

let ggc t ~node =
  check_alive t node "ggc";
  Ggc.run t.gc ~node ()

let reclaim_from_space t ~node ~bunch =
  check_alive t node "reclaim_from_space";
  Reclaim.run t.gc ~node ~bunch

let drain t = Net.drain t.net
let tick ?dt t = Net.tick ?dt t.net
let settle ?max_rounds t = Net.settle ?max_rounds t.net

let gc_round t =
  let reclaimed = ref 0 in
  List.iter
    (fun bunch ->
      (* Every node that caches the bunch OR holds GC tables for it runs
         its local BGC: a node can hold scions for a bunch it has no
         copies of, and those tables must keep being advertised. *)
      let nodes =
        List.filter
          (fun node ->
            (* A crashed node never participates: the round skips it and
               moves on — degrade, don't block (§8). *)
            node_alive t node
            &&
            (Protocol.store t.proto node |> fun s ->
            Bmx_memory.Store.has_objects_of_bunch s bunch
            || Bmx_gc.Gc_state.inter_scions t.gc ~node ~bunch <> []
            || Bmx_gc.Gc_state.intra_scions t.gc ~node ~bunch <> []
            || Bmx_gc.Gc_state.inter_stubs t.gc ~node ~bunch <> []
            (* Peers that once received this node's tables keep getting
               rebroadcasts: that is the §6.1 retransmission that repairs
               losses without acknowledgements. *)
            || Bmx_gc.Gc_state.last_broadcast_dests t.gc ~node ~bunch <> []))
          (Protocol.nodes t.proto)
      in
      List.iter
        (fun node ->
          (* Economical: clean pairs are skipped and garbage-free traces
             do not evacuate — what makes the confirming empty rounds of
             [collect_until_quiescent] O(1) instead of O(heap). *)
          let r = Bgc.run ~economical:true t.gc ~node ~bunch in
          reclaimed := !reclaimed + r.Bmx_gc.Collect.r_reclaimed)
        nodes)
    (Protocol.bunches t.proto);
  ignore (Net.drain t.net);
  !reclaimed

let collect_until_quiescent t ?max_rounds () =
  (* A zero-reclaim round can still make progress: its trailing drain may
     remove scions or entering entries that enable reclamation several
     rounds later, one cleaner hop per round.  Chains are bounded by the
     cluster size, so quiescence needs (nodes + 1) empty rounds in a
     row. *)
  let quiet_needed = List.length (Protocol.nodes t.proto) + 1 in
  let max_rounds =
    match max_rounds with Some m -> m | None -> 10 + (3 * quiet_needed)
  in
  let rec go total zeros rounds =
    if rounds = 0 || zeros >= quiet_needed then total
    else
      let n = gc_round t in
      go (total + n) (if n = 0 then zeros + 1 else 0) (rounds - 1)
  in
  go 0 0 max_rounds

let uid_at t ~node addr =
  match Store.resolve (Protocol.store t.proto node) addr with
  | Some (_, obj) -> obj.Bmx_memory.Heap_obj.uid
  | None -> (
      match Protocol.uid_of_addr t.proto addr with
      | Some uid -> uid
      | None -> failwith "Cluster.uid_at: dangling address")

let cached_at t ~node ~uid =
  Store.addr_of_uid (Protocol.store t.proto node) uid <> None

let owner_of t ~uid = Protocol.owner_of t.proto uid
