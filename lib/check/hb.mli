(** Vector-clock happens-before engine over the typed event trace.

    This is the foundation the certifier ({!Races}) derives everything
    from: data races, the per-object read mapping, and the GC
    non-interference erasure theorem are all statements about the
    partial order this module computes.

    {2 Clock model}

    Every node [n] carries an {e application} vector clock [C(n)] with
    one component per node.  Component [C(n).(m)] counts the
    App-classified events of node [m] that happen-before node [n]'s
    latest event — GC-classified events are {e not counted} in any
    component, which is what makes the erasure theorem checkable: if the
    collector really is a passive observer, deleting its events cannot
    move any application clock.

    Each event is classified [App] or [Gc] (see below) and stamped:

    - an App event at node [n] first joins its incoming edges into
      [C(n)], then increments [C(n).(n)], and its timestamp is the
      resulting [C(n)];
    - a Gc event at node [n] joins [C(n)] and its incoming GC-side edges
      into a parallel clock [G(n)] and takes that as its timestamp.  It
      never writes back into any [C] — the collector may {e observe}
      application progress but contributes no ordering to it.

    {2 Edge catalog}

    - {b Program order}: events at the same node are totally ordered (the
      trace is recorded in execution order).  This subsumes the
      crash→restart edge: a node's post-restart events follow its crash.
    - {b Message edges}: [Msg_sent src→dst (kind, seq)] happens-before
      the matching [Msg_delivered] (matched on [(src, dst, seq)] — per
      the FIFO discipline sequence numbers are unique per stream —
      reliable or not: a delivered payload carries causality either
      way).  Application-kind messages edge [C(src) → C(dst)];
      GC-kind messages ([scion_message], [stub_table],
      [reclaim_request], [reclaim_reply], [refcount_op]) edge only
      [G(src) → G(dst)].
    - {b RPC edges}: a synchronous [Rpc] joins caller and callee clocks
      in {e both} directions (the caller resumes only after the handler
      returned).
    - {b Token grant edges}: [Grant_sent {granter; requester; uid}]
      snapshots [C(granter)]; the requester's matching [Acquire_done]
      joins the snapshot — everything the granter did (including the
      previous holder's writes it learned via the grant chain)
      happens-before everything the new holder does under the token.
    - {b Invalidation edges}: each [Invalidate {src; dst; uid}] joins the
      invalidated reader's clock [C(dst)] into a per-object accumulator
      (and joins src↔dst — the invalidation is a synchronous exchange);
      a {e write} [Acquire_done] for the object then joins and clears the
      accumulator.  This covers readers invalidated transitively through
      the copy-set tree, whom the granter's own clock may not dominate.

    {2 Classification}

    [Acquire_*] and [*_obs] events carry their actor.  [Gc_begin],
    [Gc_end] and [Tables_processed] are GC.  Messages and RPCs classify
    by kind.  [Grant_sent], [Hook_ssp] and [Invalidate] inherit the
    actor of the pending acquire for their object (acquires execute
    synchronously, so at most one is in flight per object); [Release]
    is GC iff the matching token was acquired by the GC.  Everything
    else (crash, restart, links, recovery, disk faults) is App: those
    are environment events the application timeline owns. *)

type clock = int array
(** One component per node; missing nodes read 0. *)

type info = {
  idx : int;  (** caller-supplied index of the event (trace position) *)
  ev : Bmx_util.Trace_event.t;
  actor : Bmx_util.Trace_event.actor;  (** classification, see above *)
  clock : clock;  (** the event's vector timestamp *)
}

val leq : clock -> clock -> bool
(** Pointwise [<=] — happens-before-or-equal for event timestamps. *)

val node_span : Bmx_util.Trace_event.t array -> int
(** [1 + ] the largest node id mentioned anywhere in the trace (at least
    1), i.e. the clock width needed to replay it. *)

val run :
  ?nodes:int -> ?indices:int array -> Bmx_util.Trace_event.t array ->
  info array
(** Replay the engine over a trace.  [indices] supplies each event's
    trace position (default: its array index) and is preserved in the
    output, so a filtered trace keeps its original positions — that is
    what the erasure check diffs on.  [nodes] defaults to {!node_span}
    of the events.  Single pass, O(events × nodes). *)

val scan :
  ?nodes:int -> ?indices:int array -> Bmx_util.Trace_event.t array ->
  (int -> Bmx_util.Trace_event.actor -> clock -> unit) -> unit
(** Streaming {!run}: calls the callback with each event's index,
    classification and timestamp instead of materialising an array.
    The clock argument is a {e live view} of the engine's state — read
    or compare it during the callback, never retain it.  Used by the
    erasure check, which only compares timestamps and so skips {!run}'s
    per-event snapshot allocation. *)
