(** Counters and summary statistics for experiments.

    Every subsystem (network, DSM, GC) records into a [registry]; the bench
    harness snapshots registries before/after a run to build the tables of
    EXPERIMENTS.md. *)

type registry

val create_registry : unit -> registry

val incr : registry -> ?by:int -> string -> unit
(** Bump the named counter (created at zero on first use). *)

val get : registry -> string -> int
(** Current value of a counter (0 if never bumped). *)

val reset : registry -> unit
(** Zero every counter. *)

val counters : registry -> (string * int) list
(** All counters, sorted by name. *)

val diff : before:(string * int) list -> after:(string * int) list
  -> (string * int) list
(** Per-counter deltas ([after - before]); names absent on one side count
    as zero. *)

(** Streaming summary of a sample (Welford's algorithm).

    Count, mean, stddev, min and max are exact for every sample ever
    [add]ed.  Percentiles are computed over a fixed-size reservoir
    (Vitter's algorithm R, capacity {!Summary.reservoir_capacity}) so a
    summary uses O(1) memory regardless of how many samples it absorbs;
    up to the capacity they are exact, beyond it they are an unbiased
    estimate.  Replacement decisions come from a private deterministic
    {!Rng} stream, so identical sample sequences always yield identical
    percentiles. *)
module Summary : sig
  type t

  val reservoir_capacity : int
  (** Number of samples retained for percentile estimation (1024). *)

  val create : ?seed:int -> unit -> t
  (** [seed] seeds the reservoir's private RNG (a fixed default keeps
      existing callers deterministic). *)

  val add : t -> float -> unit
  val n : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val total : t -> float
  val percentile : t -> float -> float
  (** [percentile t p] for [p] in [0,100]; exact up to
      {!reservoir_capacity} samples, reservoir-estimated beyond. *)
end
