(** The happens-before certifier: data races, the per-object read
    mapping, and the GC non-interference erasure theorem, all derived
    from the {!Hb} engine.

    {b Races.}  Two accesses to the same object conflict when at least
    one is a write.  Under entry consistency every token-covered access
    must be happens-before-ordered with every conflicting covered
    access; an unordered pair is a data race and the certificate fails.
    Explicitly weak ([~weak]) reads opted out of coherence and are
    exempt (but counted).

    {b Read mapping.}  Every covered read must observe the {e maximal}
    write in happens-before order: the object version it records must
    equal the version of the last covered write.  An older version is a
    {e stale read} (an invalidation or update was skipped); a newer one
    is a {e phantom version} (a write nobody recorded — e.g. the
    collector mutating an object).  Ownership adoption after a crash
    reseats the basis: the version chain restarts at the next write
    (honest RVM-truncation staleness is the fsck contract's business,
    not the certifier's).

    {b Erasure theorem.}  The paper's §5 claim, per trace: deleting
    every GC-classified event and replaying the engine must leave all
    application-event vector clocks and all application-anchored read
    findings bit-for-bit unchanged.  The engine's clock model makes
    this hold by construction for a passive collector, so any diff is a
    detected interference — a GC token acquire reclassifies grant
    events, a GC write shifts the version mapping.

    All findings are deterministically ordered (trace position, then
    kind, then node, then text) and deduplicated. *)

type kind =
  | Race  (** conflicting covered accesses unordered by happens-before *)
  | Stale_read  (** covered read observed an older version than the
                    happens-before-maximal write *)
  | Phantom_version  (** covered read observed a version newer than any
                         recorded write *)
  | Gc_interference  (** the collector acquired a token, held one at an
                         access, or wrote a shared object *)
  | Erasure_broken  (** erasing GC events changed an application clock
                        or the read mapping *)
  | Incomplete_trace  (** overflowed/unparseable log: cannot certify *)

type finding = {
  kind : kind;
  at : int;  (** trace index of the anchoring event, [-1] if none *)
  node : int;  (** primary node, [-1] if none *)
  uid : int;  (** object, [-1] if none *)
  detail : string;
}

type t = {
  events : int;
  app_events : int;
  gc_events : int;
  reads : int;
  writes : int;
  weak_reads : int;
  objects : int;  (** distinct objects accessed *)
  erasure_ok : bool;
  findings : finding list;  (** sorted, deduplicated; empty = certified *)
}

val certify : ?overflowed:bool -> Bmx_util.Trace_event.t list -> t
(** Replay the {!Hb} engine (twice — full and GC-erased) and check
    everything above.  [overflowed] adds an {!Incomplete_trace} finding:
    a truncated trace certifies nothing.  O(events × nodes). *)

val ok : t -> bool
(** No findings. *)

val races : t -> int
val stale_reads : t -> int

val kind_to_string : kind -> string
val finding_to_string : finding -> string
val pp_finding : Format.formatter -> finding -> unit

val to_text : t -> string
(** Human-readable certificate: counters, verdict, findings. *)

val to_json : t -> Bmx_obs.Json.t
