lib/core/scion_cleaner.mli: Bmx_util Gc_state Ssp
