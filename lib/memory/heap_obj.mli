(** A node's local copy of a shared object.

    Each object has a header preceding its data with system information such
    as the object's size (§2.1).  Because bunches are replicated, every node
    holds its {e own} copy record for an object — copies may be mutually
    inconsistent between synchronization points, which is precisely what the
    BGC tolerates (§4.2).  The [uid] is the stable cross-node identity used
    by DSM token bookkeeping; mutators only ever see addresses. *)

type t = private {
  uid : Bmx_util.Ids.Uid.t;
  bunch : Bmx_util.Ids.Bunch.t;  (** bunch the object was allocated from *)
  fields : Value.t array;  (** mutable data words *)
  mutable version : int;  (** bumped on every write; consistency checking *)
}

val make :
  ?version:int ->
  uid:Bmx_util.Ids.Uid.t ->
  bunch:Bmx_util.Ids.Bunch.t ->
  fields:Value.t array ->
  unit ->
  t
(** [version] defaults to 0 (a freshly allocated object).  Copies made
    by the collector must pass the source's version: the version is the
    object's mutator-visible write counter, and a GC copy is not a
    write. *)

val num_fields : t -> int

val size_bytes : t -> int
(** Header (two words) plus one word per field. *)

val header_bytes : int

val get : t -> int -> Value.t
(** Raises [Invalid_argument] on out-of-range index. *)

val set : t -> int -> Value.t -> unit
(** Writes the field and bumps [version]. *)

val fixup : t -> int -> Value.t -> unit
(** Writes the field {e without} bumping [version].  For GC/protocol
    pointer retargeting (forwarder collapse, copy-forwarding) that
    rewrites an address to an alias of the same object: the value the
    mutator observes is unchanged, so the version — the mutator-visible
    write counter used by the happens-before certifier — must not move. *)

val clone : t -> t
(** Deep copy (fresh field array), same uid — a new replica or a GC copy.
    The paper's BGC copies objects non-destructively (§4.1). *)

val overwrite : t -> from:t -> unit
(** Replace [t]'s contents with [from]'s in place.  The two must have the
    same uid and arity.  (The DSM installs grants as fresh clones so the
    segment maps stay accurate; this is for callers managing their own
    copies.) *)

val pointers : t -> Bmx_util.Addr.t list
(** Addresses of all non-null pointer fields, in field order. *)

val pp : Format.formatter -> t -> unit
