bench/main.ml: Array Bmx_util Experiments List Micro Printf String Sys
