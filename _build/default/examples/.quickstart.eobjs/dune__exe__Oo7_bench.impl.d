examples/oo7_bench.ml: Bmx Bmx_util Bmx_workload Printf
