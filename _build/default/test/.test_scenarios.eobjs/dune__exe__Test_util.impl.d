test/test_util.ml: Addr Alcotest Array Bitmap Bmx_util Fun Ids List Rng Stats String Table Tracelog
