lib/dsm/protocol.mli: Bmx_memory Bmx_netsim Bmx_util Directory
