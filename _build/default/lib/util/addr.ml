type t = int

let null = 0
let is_null a = a = 0
let word = 4
let page_size = 4096
let align_up a = (a + (word - 1)) land lnot (word - 1)
let is_aligned a = a land (word - 1) = 0

let add a n =
  let r = a + n in
  if r < 0 then invalid_arg "Addr.add: address overflow" else r

let diff hi lo = hi - lo
let compare = Int.compare
let equal = Int.equal
let hash = Hashtbl.hash
let pp ppf a = Format.fprintf ppf "0x%x" a
let to_string a = Printf.sprintf "0x%x" a

module Range = struct
  type addr = t
  type t = { lo : addr; hi : addr }

  let make ~lo ~size =
    if size <= 0 then invalid_arg "Addr.Range.make: size must be positive";
    if not (is_aligned lo) then invalid_arg "Addr.Range.make: unaligned base";
    { lo; hi = add lo size }

  let size { lo; hi } = hi - lo
  let contains { lo; hi } a = a >= lo && a < hi
  let overlaps r1 r2 = r1.lo < r2.hi && r2.lo < r1.hi
  let pp ppf { lo; hi } = Format.fprintf ppf "[%a, %a)" pp lo pp hi
end
