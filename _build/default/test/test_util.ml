open Bmx_util

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ------------------------------------------------------------------ Addr *)

let test_addr_align () =
  check_int "aligned stays" 8 (Addr.align_up 8);
  check_int "rounds up" 8 (Addr.align_up 5);
  check_int "zero" 0 (Addr.align_up 0);
  check_bool "is_aligned 4" true (Addr.is_aligned 4);
  check_bool "is_aligned 6" false (Addr.is_aligned 6)

let test_addr_arith () =
  check_int "add" 100 (Addr.add 60 40);
  check_int "diff" 40 (Addr.diff 100 60);
  check_bool "null" true (Addr.is_null Addr.null);
  Alcotest.check_raises "overflow" (Invalid_argument "Addr.add: address overflow")
    (fun () -> ignore (Addr.add max_int 1))

let test_range () =
  let r = Addr.Range.make ~lo:4096 ~size:8192 in
  check_int "size" 8192 (Addr.Range.size r);
  check_bool "contains lo" true (Addr.Range.contains r 4096);
  check_bool "excludes hi" false (Addr.Range.contains r (4096 + 8192));
  let r2 = Addr.Range.make ~lo:(4096 + 8192) ~size:4096 in
  check_bool "adjacent ranges do not overlap" false (Addr.Range.overlaps r r2);
  let r3 = Addr.Range.make ~lo:8000 ~size:8192 in
  check_bool "overlapping ranges overlap" true (Addr.Range.overlaps r r3);
  Alcotest.check_raises "empty range rejected"
    (Invalid_argument "Addr.Range.make: size must be positive") (fun () ->
      ignore (Addr.Range.make ~lo:0 ~size:0))

(* ---------------------------------------------------------------- Bitmap *)

let test_bitmap_basic () =
  let range = Addr.Range.make ~lo:4096 ~size:1024 in
  let bm = Bitmap.create ~range in
  check_int "starts empty" 0 (Bitmap.cardinal bm);
  Bitmap.set bm 4096;
  Bitmap.set bm 5116;
  check_bool "get set bit" true (Bitmap.get bm 4096);
  check_bool "get clear bit" false (Bitmap.get bm 4100);
  check_int "cardinal" 2 (Bitmap.cardinal bm);
  Bitmap.clear bm 4096;
  check_bool "cleared" false (Bitmap.get bm 4096);
  check_int "cardinal after clear" 1 (Bitmap.cardinal bm)

let test_bitmap_iter () =
  let range = Addr.Range.make ~lo:0 ~size:256 in
  let bm = Bitmap.create ~range in
  List.iter (Bitmap.set bm) [ 0; 12; 200; 252 ];
  let seen = ref [] in
  Bitmap.iter_set bm (fun a -> seen := a :: !seen);
  check (Alcotest.list Alcotest.int) "iter in order" [ 0; 12; 200; 252 ]
    (List.rev !seen);
  check (Alcotest.option Alcotest.int) "next_set" (Some 200) (Bitmap.next_set bm 13);
  check (Alcotest.option Alcotest.int) "next_set beyond" None (Bitmap.next_set bm 253)

let test_bitmap_bounds () =
  let range = Addr.Range.make ~lo:4096 ~size:64 in
  let bm = Bitmap.create ~range in
  Alcotest.check_raises "out of range" (Invalid_argument "Bitmap: address out of range")
    (fun () -> Bitmap.set bm 0);
  Alcotest.check_raises "unaligned" (Invalid_argument "Bitmap: unaligned address")
    (fun () -> Bitmap.set bm 4097)

let test_bitmap_copy_independent () =
  let range = Addr.Range.make ~lo:0 ~size:64 in
  let bm = Bitmap.create ~range in
  Bitmap.set bm 0;
  let bm2 = Bitmap.copy bm in
  Bitmap.clear bm2 0;
  check_bool "original unaffected" true (Bitmap.get bm 0)

(* ------------------------------------------------------------------- Rng *)

let test_rng_determinism () =
  let a = Rng.make 123 and b = Rng.make 123 in
  for _ = 1 to 50 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let g = Rng.make 7 in
  for _ = 1 to 1000 do
    let x = Rng.int g 17 in
    check_bool "in bounds" true (x >= 0 && x < 17)
  done;
  for _ = 1 to 100 do
    let f = Rng.float g 2.5 in
    check_bool "float in bounds" true (f >= 0.0 && f < 2.5)
  done

let test_rng_split () =
  let g = Rng.make 7 in
  let h = Rng.split g in
  let xs = List.init 10 (fun _ -> Rng.int g 1000) in
  let ys = List.init 10 (fun _ -> Rng.int h 1000) in
  check_bool "split streams differ" true (xs <> ys)

let test_rng_shuffle_permutes () =
  let g = Rng.make 11 in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle g arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "same multiset" (Array.init 20 Fun.id) sorted

(* ----------------------------------------------------------------- Stats *)

let test_stats_counters () =
  let reg = Stats.create_registry () in
  Stats.incr reg "a";
  Stats.incr reg ~by:5 "a";
  Stats.incr reg "b";
  check_int "a" 6 (Stats.get reg "a");
  check_int "b" 1 (Stats.get reg "b");
  check_int "missing is zero" 0 (Stats.get reg "zzz");
  let d =
    Stats.diff
      ~before:[ ("a", 2); ("c", 1) ]
      ~after:[ ("a", 6); ("b", 1) ]
  in
  check (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int)) "diff"
    [ ("a", 4); ("b", 1); ("c", -1) ]
    d;
  Stats.reset reg;
  check_int "reset" 0 (Stats.get reg "a")

let test_stats_summary () =
  let s = Stats.Summary.create () in
  List.iter (Stats.Summary.add s) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  check_int "n" 5 (Stats.Summary.n s);
  check (Alcotest.float 1e-9) "mean" 3.0 (Stats.Summary.mean s);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.Summary.min s);
  check (Alcotest.float 1e-9) "max" 5.0 (Stats.Summary.max s);
  check (Alcotest.float 1e-6) "stddev" (sqrt 2.5) (Stats.Summary.stddev s);
  check (Alcotest.float 1e-9) "median" 3.0 (Stats.Summary.percentile s 50.0)

(* ----------------------------------------------------------------- Table *)

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_table_render () =
  let t = Table.create ~title:"T" ~columns:[ "x"; "y" ] in
  Table.add_row t [ "1"; "foo" ];
  Table.add_rowf t "%d|%s" 22 "b";
  let s = Table.render t in
  check_bool "has title" true (String.length s > 0 && String.sub s 0 4 = "== T");
  check_bool "contains cell" true
    (contains_substring s "foo" && contains_substring s "22")

let test_table_width_mismatch () =
  let t = Table.create ~title:"T" ~columns:[ "x"; "y" ] in
  Alcotest.check_raises "row width" (Invalid_argument "Table.add_row: row width mismatch")
    (fun () -> Table.add_row t [ "1" ])

(* -------------------------------------------------------------- Tracelog *)

let test_tracelog_order () =
  let tr = Tracelog.create ~capacity:8 () in
  for i = 1 to 5 do
    Tracelog.recordf tr ~category:"t" "event %d" i
  done;
  let evs = Tracelog.events tr in
  check_int "five events" 5 (List.length evs);
  check (Alcotest.list Alcotest.int) "oldest first" [ 0; 1; 2; 3; 4 ]
    (List.map (fun e -> e.Tracelog.seq) evs);
  check Alcotest.string "detail" "event 3"
    (List.nth evs 2).Tracelog.detail

let test_tracelog_ring_wraps () =
  let tr = Tracelog.create ~capacity:4 () in
  for i = 1 to 10 do
    Tracelog.recordf tr ~category:"t" "e%d" i
  done;
  let evs = Tracelog.events tr in
  check_int "only capacity retained" 4 (List.length evs);
  check_int "total counted" 10 (Tracelog.total_recorded tr);
  check (Alcotest.list Alcotest.string) "last four, oldest first"
    [ "e7"; "e8"; "e9"; "e10" ]
    (List.map (fun e -> e.Tracelog.detail) evs);
  check_int "recent 2" 2 (List.length (Tracelog.recent tr 2))

let test_tracelog_disable_clear () =
  let tr = Tracelog.create () in
  Tracelog.set_enabled tr false;
  Tracelog.record tr ~category:"t" "ignored";
  check_int "disabled records nothing" 0 (Tracelog.length tr);
  Tracelog.set_enabled tr true;
  Tracelog.record tr ~category:"t" "kept";
  check_int "enabled records" 1 (Tracelog.length tr);
  Tracelog.clear tr;
  check_int "cleared" 0 (Tracelog.length tr)

(* ------------------------------------------------------------------- Ids *)

let test_ids () =
  let g = Ids.Uid.generator () in
  let a = Ids.Uid.fresh g and b = Ids.Uid.fresh g in
  check_bool "fresh uids differ" true (not (Ids.Uid.equal a b));
  check Alcotest.string "node pp" "N3" (Ids.Node.to_string 3);
  check Alcotest.string "bunch pp" "B7" (Ids.Bunch.to_string 7);
  check_bool "invalid node is negative" true (Ids.Node.invalid < 0)

let () =
  Alcotest.run "util"
    [
      ( "addr",
        [
          Alcotest.test_case "align" `Quick test_addr_align;
          Alcotest.test_case "arith" `Quick test_addr_arith;
          Alcotest.test_case "range" `Quick test_range;
        ] );
      ( "bitmap",
        [
          Alcotest.test_case "set/get/clear" `Quick test_bitmap_basic;
          Alcotest.test_case "iteration" `Quick test_bitmap_iter;
          Alcotest.test_case "bounds checking" `Quick test_bitmap_bounds;
          Alcotest.test_case "copy independence" `Quick test_bitmap_copy_independent;
        ] );
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "split" `Quick test_rng_split;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
        ] );
      ( "stats",
        [
          Alcotest.test_case "counters" `Quick test_stats_counters;
          Alcotest.test_case "summary" `Quick test_stats_summary;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "width mismatch" `Quick test_table_width_mismatch;
        ] );
      ( "tracelog",
        [
          Alcotest.test_case "ordering" `Quick test_tracelog_order;
          Alcotest.test_case "ring wraps" `Quick test_tracelog_ring_wraps;
          Alcotest.test_case "disable and clear" `Quick test_tracelog_disable_clear;
        ] );
      ("ids", [ Alcotest.test_case "generators and printing" `Quick test_ids ]);
    ]
