lib/memory/value.mli: Bmx_util Format
