(** Deterministic message-passing network between simulated nodes.

    The paper's loosely coupled network of workstations (§2, §8) is modelled
    by point-to-point channels with the two properties the GC design
    actually relies on:

    - {b FIFO per pair} (§6.1): messages carrying reachability tables are
      sequence-numbered per (sender, receiver) stream so the scion cleaner
      can discard stale or duplicated tables;
    - {b no reliability requirement} (§6.1): the transport may drop or
      duplicate messages; fault injection reproduces this for experiment
      E10.

    Two transmission modes mirror the paper's accounting:

    - [send] enqueues a background message ("exchanged in the background",
      §4.4) to be delivered by [step]/[drain];
    - [record_rpc] accounts for a synchronous request/reply pair performed
      on behalf of an application (token acquire, §2.2) that the caller
      executes inline; [record_piggyback] accounts for extra GC payload
      bytes riding such a message without adding a message (§4.4, §8). *)

type kind =
  | Token_request  (** read/write token acquire request (§2.2) *)
  | Token_grant  (** reply granting a token, may carry GC piggyback (§5) *)
  | Invalidate  (** read-copy invalidation on write-token acquire *)
  | Object_fetch  (** demand fetch of an object's contents *)
  | Scion_message  (** creation of a remote inter-bunch scion (§3.2) *)
  | Stub_table  (** reachability tables for the scion cleaner (§4.3, §6) *)
  | Addr_update  (** explicit new-location message (non-piggyback mode, §4.4) *)
  | Reclaim_request  (** from-space reuse protocol: ask owner to copy (§4.5) *)
  | Reclaim_reply  (** reply enabling from-space reuse (§4.5) *)
  | Refcount_op  (** baseline only: Bevan-style increment/decrement *)
  | App_message  (** application-level traffic *)

val kind_to_string : kind -> string
val pp_kind : Format.formatter -> kind -> unit
val all_kinds : kind list

(** Wire attribution: every message kind maps to exactly one component
    ([Component.of_kind] is an exhaustive match — adding a kind without
    classifying it is a build-time error).  [Rvm] is listed but owns no
    wire traffic by construction (recoverable virtual memory is
    node-local), so reports can show its share is zero rather than
    unaccounted. *)
module Component : sig
  type t = Dsm | Gc_cleaner | Gc_bgc | Registry | Rvm | App

  val of_kind : kind -> t
  val to_string : t -> string
  val all : t list
end

type 'p envelope = {
  src : Bmx_util.Ids.Node.t;
  dst : Bmx_util.Ids.Node.t;
  kind : kind;
  seq : int;  (** per (src, dst) stream sequence number *)
  rel : int;
      (** reliable-stream index (per pair, counting only reliable
          messages); [0] for kinds outside the reliable set.
          Retransmissions reuse the original [seq] and [rel]: the
          sequence number is the message's send-time logical clock. *)
  payload : 'p;
}

type 'p t

val create : stats:Bmx_util.Stats.registry -> unit -> 'p t

val stats : 'p t -> Bmx_util.Stats.registry

val set_handler : 'p t -> ('p envelope -> unit) -> unit
(** Install the delivery handler (the cluster dispatch).  Must be set
    before the first [step]. *)

val set_evlog : 'p t -> Bmx_util.Trace_event.log -> unit
(** Share a structured event log: every message send and delivery is
    recorded (with its per-pair sequence number) so the trace linter can
    verify FIFO sequencing.  Synchronous [record_rpc] exchanges record a
    send and a delivery at once. *)

val set_metrics : 'p t -> Bmx_obs.Metrics.t -> unit
(** Attach a metrics registry.  Registers callback gauges
    [net.unacked_reliable], [net.pending] and [net.vclock] (sampled at
    snapshot time), and feeds the per-sender [net.rel.attempts]
    histogram — transmissions per acknowledged reliable message — as
    acks retire them.  Once attached, every transmission also bumps the
    per-component series [net.comp.bytes.<component>] and
    [net.comp.msgs.<component>], both cluster-wide and labelled with the
    sending node (pre-interned names — no per-message allocation). *)

val set_tick_hook : 'p t -> (int -> unit) -> unit
(** Observer of virtual-time advance, called with the new [now] on every
    {!tick} — the periodic sampler's clock source. *)

val send :
  'p t ->
  src:Bmx_util.Ids.Node.t ->
  dst:Bmx_util.Ids.Node.t ->
  kind:kind ->
  ?bytes:int ->
  ?shard:int ->
  'p ->
  unit
(** Enqueue a background message.  Subject to fault injection.  [shard]
    labels the message with the registry shard whose routing decided its
    destination; labelled traffic feeds {!shard_components} and the
    per-shard [net.comp.*.s<k>] metric series. *)

val record_rpc :
  'p t ->
  src:Bmx_util.Ids.Node.t ->
  dst:Bmx_util.Ids.Node.t ->
  kind:kind ->
  ?bytes:int ->
  ?shard:int ->
  unit ->
  unit
(** Account for one synchronous message executed inline by the caller.
    [shard] as in {!send}. *)

val record_piggyback :
  'p t ->
  src:Bmx_util.Ids.Node.t ->
  kind:kind ->
  bytes:int ->
  ?shard:int ->
  unit ->
  unit
(** Account for GC payload bytes piggybacked onto an existing message of
    [kind] sent by [src]; adds no message count.  [shard] as in
    {!send}. *)

val step : 'p t -> bool
(** Deliver the oldest pending message (globally).  Returns [false] if the
    queue was empty. *)

val drain : 'p t -> int
(** Deliver until quiescent; returns the number of messages delivered.
    Messages sent by handlers during the drain are delivered too. *)

val pending : 'p t -> int

(** {1 Schedule exploration}

    The transport's only ordering guarantee is FIFO per (src, dst) pair
    (§6.1); the global delivery order across pairs is unconstrained.  The
    bounded schedule explorer ([Bmx_check.Explore]) enumerates those
    legal orders through these two operations. *)

val deliverable_pairs :
  'p t -> (Bmx_util.Ids.Node.t * Bmx_util.Ids.Node.t) list
(** The (src, dst) pairs with at least one pending message — the legal
    next-delivery choices.  Listed in queue order, each pair once. *)

val step_pair :
  'p t -> src:Bmx_util.Ids.Node.t -> dst:Bmx_util.Ids.Node.t -> bool
(** Deliver the {e oldest} pending message of the pair (preserving
    per-pair FIFO while allowing any cross-pair interleaving).  Returns
    [false] if the pair has nothing pending. *)

val set_fault :
  'p t -> kind:kind -> drop:float -> dup:float -> rng:Bmx_util.Rng.t -> unit
(** Drop (resp. duplicate) messages of [kind] with the given probability.
    The drop die is rolled first; a kept message then rolls the dup die,
    so a message is never both dropped and duplicated.  Dropped messages
    consume a sequence number — receivers observe a gap, as over a real
    lossy transport.  Faults apply per transmission: retransmissions of
    a reliable message reroll the dice. *)

val clear_faults : 'p t -> unit

(** {1 Reliable delivery (opt-in per kind)}

    The paper needs no transport reliability for safety (§6.1) — but
    protocol-critical messages (scion creations, address updates) opt
    into a classic ack/retransmit layer so the cluster also stays {e
    live} under sustained loss: per-pair cumulative acknowledgements,
    retransmission on a virtual-clock timeout with exponential backoff,
    duplicate suppression and reorder buffering at the receiver keyed by
    the existing per-pair sequence numbers.  The handler observes each
    reliable message exactly once, in per-pair send order, whatever the
    fault injection does to individual transmissions. *)

val set_reliable :
  'p t ->
  ?rto:int ->
  ?rto_max:int ->
  ?max_attempts:int ->
  ?suspect_after:int ->
  kind list ->
  unit
(** Replace the set of reliable kinds.  [rto] (default 4) is the initial
    retransmission timeout in virtual-clock units, doubling per attempt
    up to [rto_max] (default 64); after [max_attempts] (default 20)
    transmissions a message is abandoned (counted in
    [net.rel.abandoned]) — timeouts, never blocking.  [suspect_after]
    (default 6) is the failure-detector threshold: that many fruitless
    transmissions against a severed path (cut link or down node) flip
    the pair into the {e suspect} state, see {!is_suspect}.  The
    abandonment cap applies only to sustained loss on a live path —
    messages against a severed path are never abandoned, whatever the
    relative magnitudes of [max_attempts] and [suspect_after]. *)

val set_backoff :
  'p t ->
  ?rto:int ->
  ?rto_max:int ->
  ?max_attempts:int ->
  ?suspect_after:int ->
  unit ->
  unit
(** Adjust the retransmission-timer knobs without touching the reliable
    kind set.  Omitted parameters keep their current values. *)

val backoff_ceiling : 'p t -> int
(** The current [rto_max] — the hard cap on the retransmission backoff
    interval and the suspect-probe period. *)

val suspect_after : 'p t -> int

val reliable_kinds : 'p t -> kind list
val is_reliable : 'p t -> kind -> bool

val now : 'p t -> int
(** The virtual clock (advanced only by {!tick}). *)

val tick : ?dt:int -> 'p t -> int
(** Advance the virtual clock by [dt] (default 1) and retransmit every
    reliable message whose timeout expired; returns how many were
    retransmitted.  Retransmissions reroll the fault dice. *)

val settle : ?max_rounds:int -> 'p t -> int
(** Drain, then repeatedly jump the clock to the next retransmission
    deadline and drain again until no unacknowledged messages remain (or
    every laggard has been abandoned).  Returns total deliveries.  With
    faults cleared this reliably flushes the reliable streams. *)

val unacked_count : 'p t -> int
(** Reliable messages sent but not yet acknowledged (or abandoned). *)

(** {1 Node crash/restart}

    A down node's in-flight messages, retransmission buffer and reorder
    buffers are lost (volatile); messages arriving at it evaporate.
    Per-pair sequence counters and delivery cursors are stable state —
    journalled with the RVM image — so streams resume gap-free after a
    restart and retransmitted-but-already-delivered messages are still
    recognized as duplicates (at-most-once across crashes). *)

val set_down : 'p t -> Bmx_util.Ids.Node.t -> unit
val set_up : 'p t -> Bmx_util.Ids.Node.t -> unit
val is_down : 'p t -> Bmx_util.Ids.Node.t -> bool
val down_nodes : 'p t -> Bmx_util.Ids.Node.t list

(** {1 Network partitions}

    A partition {e cuts} a set of directed links.  Transmissions over a
    cut link blackhole deterministically (counted in
    [net.cut_dropped.*]), unlike the probabilistic {!set_fault} dice.
    Cutting only one direction models an asymmetric partition: payloads
    still arrive but the implicit acknowledgement of a reliable delivery
    blackholes on the cut reverse link ([net.rel.ack_blackholed]), so
    the sender keeps retransmitting until heal.

    Reliable messages to a cut destination are {e never} abandoned.
    After [suspect_after] fruitless transmissions against a severed path
    the sender's failure detector marks the pair {e suspect}
    ([net.suspect_transitions], {!Bmx_util.Trace_event.Suspect}): only
    the oldest unacknowledged message is re-sent, once per [rto_max], as
    a probe.  The first acknowledgement after heal clears the suspicion
    and re-arms the backlog at the base timeout, so healing floods
    neither the virtual clock nor the queue.  [record_rpc] over a cut
    link (either direction — an RPC is a round trip) raises [Failure]
    so callers fail cleanly instead of silently half-running. *)

val cut_link :
  'p t -> src:Bmx_util.Ids.Node.t -> dst:Bmx_util.Ids.Node.t -> unit

val heal_link :
  'p t -> src:Bmx_util.Ids.Node.t -> dst:Bmx_util.Ids.Node.t -> unit

val is_cut : 'p t -> src:Bmx_util.Ids.Node.t -> dst:Bmx_util.Ids.Node.t -> bool

val cut_pairs : 'p t -> (Bmx_util.Ids.Node.t * Bmx_util.Ids.Node.t) list
(** Currently cut directed links, sorted. *)

val partition : 'p t -> groups:Bmx_util.Ids.Node.t list list -> unit
(** Cut every directed link between nodes of different groups — a
    symmetric multi-way partition.  Links within a group are untouched. *)

val heal_all_links : 'p t -> unit

val reachable : 'p t -> Bmx_util.Ids.Node.t -> Bmx_util.Ids.Node.t -> bool
(** Both nodes are up and the link between them is uncut in both
    directions — a synchronous round trip can complete. *)

val is_suspect :
  'p t -> src:Bmx_util.Ids.Node.t -> dst:Bmx_util.Ids.Node.t -> bool

val suspect_pairs : 'p t -> (Bmx_util.Ids.Node.t * Bmx_util.Ids.Node.t) list

val current_seq :
  'p t -> src:Bmx_util.Ids.Node.t -> dst:Bmx_util.Ids.Node.t -> int
(** The last sequence number stamped on the (src, dst) stream (0 if no
    message was ever sent).  Receivers use it as a logical clock: state
    registered during a synchronous exchange is newer than any message of
    the same stream sent before it. *)

val component_bytes : 'p t -> Component.t -> int
(** Total wire bytes attributed to a component so far (payload plus
    piggyback, every transmitted copy). *)

val shard_components : 'p t -> (int * (Component.t * int) list) list
(** Per-registry-shard wire bytes by component, for sends that carried a
    shard label (ascending shard id, zero rows omitted).  Shard labels
    count logical sends: retransmissions are a transport artifact, not a
    routing decision, so they appear in [component_bytes] but not
    here. *)

val shard_component_msgs : 'p t -> (int * (Component.t * int) list) list
(** Like {!shard_components}, counting logical messages instead of
    bytes (piggybacks add bytes but no message). *)

type scaling_point = {
  sp_nodes : int;
  sp_bytes : (Component.t * int) list;
  sp_shards : (int * (Component.t * int) list) list;
      (** per-shard attribution at this point ({!shard_components});
          empty when nothing was shard-labelled *)
}

val scaling_point : 'p t -> nodes:int -> scaling_point
(** Snapshot this network's per-component byte totals (flat and
    per-shard) as one sweep point. *)

type scaling_row = {
  sr_component : Component.t;
  sr_shard : int option;
      (** [None] for the component's cluster-wide row; [Some s] for the
          hottest-shard row, where [s] carried the most bytes of this
          component at the widest point *)
  sr_first_per_node : float;  (** bytes/node at the smallest sweep point *)
  sr_last_per_node : float;  (** bytes/node at the largest sweep point *)
  sr_growth : float;  (** last-per-node / first-per-node *)
  sr_ok : bool;
  sr_note : string;
}

val scaling_check :
  ?floor:int -> ?bound:float -> scaling_point list -> scaling_row list * bool
(** Assert the shard-scaling property over a sweep of ≥ 3 node counts:
    gc-cleaner traffic must grow with sharing (its total is O(sharing),
    exempt from the per-node bound), while every other component's
    per-node traffic must not grow by more than [bound] (default 1.5×)
    from the smallest to the largest point — i.e. no component is
    silently superlinear in N.  Components whose total stays under
    [floor] bytes (default 1024) are skipped.  When the sweep carries
    per-shard attribution at both ends, each component's single hottest
    shard is held to the same per-node bound — a flat total must not
    hide one shard absorbing all the growth.  Raises [Invalid_argument]
    on fewer than 3 points or a degenerate sweep. *)

val sent : 'p t -> kind -> int
(** Total messages of [kind] accounted so far (sent + rpc, not drops). *)

val total_messages : 'p t -> int
val total_bytes : 'p t -> int
