open Bmx_util
module Net = Bmx_netsim.Net
module Protocol = Bmx_dsm.Protocol
module Store = Bmx_memory.Store
module Heap_obj = Bmx_memory.Heap_obj
module Directory = Bmx_dsm.Directory

type table_msg = {
  tm_sender : Ids.Node.t;
  tm_bunch : Ids.Bunch.t;
  tm_inter_stubs : Ssp.inter_stub list;
  tm_intra_stubs : Ssp.intra_stub list;
  tm_exiting : (Ids.Uid.t * Ids.Node.t) list;
}

let msg_bytes m =
  16
  + (40 * List.length m.tm_inter_stubs)
  + (24 * List.length m.tm_intra_stubs)
  + (16 * List.length m.tm_exiting)

let bump t name = Stats.incr (Gc_state.stats t) name

let receive t ~at ~seq msg =
  let sender_dead =
    (not (Ids.Node.equal msg.tm_sender at))
    && Bmx_netsim.Net.is_down (Protocol.net (Gc_state.proto t)) msg.tm_sender
  in
  let fresh =
    match
      Gc_state.last_table_seq t ~node:at ~sender:msg.tm_sender ~bunch:msg.tm_bunch
    with
    | Some last -> seq > last
    | None -> true
  in
  if sender_dead then
    (* Quarantine, don't clean: a table attributed to a crashed node
       reflects state that died with it.  Acting on it could drop scions
       (and thus objects) that the recovered node still needs; the next
       table the node sends after restart supersedes everything. *)
    bump t "gc.cleaner.quarantined_dead_sender"
  else if not fresh then bump t "gc.cleaner.stale_ignored"
  else begin
    Gc_state.record_table_seq t ~node:at ~sender:msg.tm_sender ~bunch:msg.tm_bunch
      ~seq;
    bump t "gc.cleaner.processed";
    Bmx_util.Tracelog.recordf
      (Protocol.tracer (Gc_state.proto t))
      ~category:"cleaner" "N%d processed tables from N%d for B%d (seq %d)" at
      msg.tm_sender msg.tm_bunch seq;
    let proto = Gc_state.proto t in
    (* Inter-bunch scions held here whose stub lived in the sender's copy
       of the bunch: drop those the new stub table no longer covers. *)
    List.iter
      (fun target_bunch ->
        let removed =
          Gc_state.remove_inter_scions t ~node:at ~bunch:target_bunch
            (fun scion ->
              Ids.Node.equal scion.Ssp.xs_src_node msg.tm_sender
              && Ids.Bunch.equal scion.Ssp.xs_src_bunch msg.tm_bunch
              && not
                   (List.exists
                      (fun stub -> Ssp.inter_stub_matches stub scion)
                      msg.tm_inter_stubs))
        in
        if removed > 0 then
          Stats.incr (Gc_state.stats t) ~by:removed "gc.cleaner.inter_scions_removed")
      (Gc_state.bunches_with_tables t ~node:at);
    (* Intra-bunch scions for this bunch whose owner side is the sender:
       keep only those the sender's intra stubs still name. *)
    let removed_intra =
      Gc_state.remove_intra_scions t ~node:at ~bunch:msg.tm_bunch (fun scion ->
          Ids.Node.equal scion.Ssp.xn_owner_side msg.tm_sender
          && not
               (List.exists
                  (fun stub -> Ssp.intra_stub_matches ~holder:at stub scion)
                  msg.tm_intra_stubs))
    in
    if removed_intra > 0 then
      Stats.incr (Gc_state.stats t) ~by:removed_intra
        "gc.cleaner.intra_scions_removed";
    (* Entering ownerPtrs: reconcile the entries originating at the sender
       for objects of this bunch against the sender's exiting list. *)
    let dir = Protocol.directory proto at in
    let store = Protocol.store proto at in
    let claimed =
      List.filter_map
        (fun (uid, target) ->
          if Ids.Node.equal target at then Some uid else None)
        msg.tm_exiting
    in
    List.iter
      (fun uid ->
        if Ids.Node_set.mem msg.tm_sender (Directory.entering dir uid) then begin
          let belongs_to_bunch =
            match Store.addr_of_uid store uid with
            | Some a -> (
                match Store.resolve store a with
                | Some (_, obj) -> Ids.Bunch.equal obj.Heap_obj.bunch msg.tm_bunch
                | None -> false)
            | None -> false
          in
          let registered_after_send =
            Directory.entering_registration_seq dir ~uid ~from:msg.tm_sender
            >= seq
          in
          if belongs_to_bunch && (not (List.mem uid claimed))
             && not registered_after_send
          then begin
            Directory.remove_entering dir ~uid ~from:msg.tm_sender;
            bump t "gc.cleaner.entering_removed"
          end
        end)
      (Directory.entering_uids dir);
    List.iter
      (fun uid -> Directory.add_entering dir ~seq ~uid ~from:msg.tm_sender)
      claimed;
    Gc_state.sample_ssp_gauges t ~node:at
  end

let destinations t ~node ~bunch ~old_inter ~new_inter ~old_intra ~new_intra
    ~exiting =
  let proto = Gc_state.proto t in
  let replicas = Protocol.bunch_replica_nodes proto bunch in
  let scion_holders =
    List.map (fun (s : Ssp.inter_stub) -> s.Ssp.is_scion_at) (old_inter @ new_inter)
    @ List.map (fun (s : Ssp.intra_stub) -> s.Ssp.ns_holder) (old_intra @ new_intra)
  in
  let owners =
    List.map snd exiting @ List.map snd (Gc_state.last_exiting t ~node ~bunch)
  in
  List.sort_uniq Ids.Node.compare (replicas @ scion_holders @ owners)
  |> List.filter (fun n -> not (Ids.Node.equal n node))

let broadcast t ~node ~bunch ~old_inter ~old_intra ~exiting =
  let proto = Gc_state.proto t in
  let new_inter = Gc_state.inter_stubs t ~node ~bunch in
  let new_intra = Gc_state.intra_stubs t ~node ~bunch in
  let msg =
    {
      tm_sender = node;
      tm_bunch = bunch;
      tm_inter_stubs = new_inter;
      tm_intra_stubs = new_intra;
      tm_exiting = exiting;
    }
  in
  let dests =
    destinations t ~node ~bunch ~old_inter ~new_inter ~old_intra ~new_intra
      ~exiting
  in
  (* A resend must also reach last round's destinations: after a loss the
     replaced tables no longer name the peers whose scions must go. *)
  let dests =
    List.sort_uniq Ids.Node.compare
      (dests @ Gc_state.last_broadcast_dests t ~node ~bunch)
    |> List.filter (fun n -> not (Ids.Node.equal n node))
  in
  Gc_state.record_broadcast_dests t ~node ~bunch dests;
  (* Peers that are down right now are deferred, not forgotten: they stay
     in the recorded destination list, so the next round's rebroadcast
     reaches them once they return — the same §6.1 loss-repair path that
     covers dropped tables.  Never block on a dead peer. *)
  let live_dests =
    List.filter (fun d -> not (Net.is_down (Protocol.net proto) d)) dests
  in
  List.iter
    (fun dst ->
      Net.send (Protocol.net proto) ~src:node ~dst ~kind:Net.Stub_table
        ~bytes:(msg_bytes msg)
        (fun seq -> receive t ~at:dst ~seq msg))
    live_dests;
  (* The scion cleaner is a per-node service operating on all local
     bunches (§6.1): the node's own scions matching its own regenerated
     stub tables are processed by direct hand-off, no message needed. *)
  let self_seq =
    match Gc_state.last_table_seq t ~node ~sender:node ~bunch with
    | Some s -> s + 1
    | None -> 1
  in
  receive t ~at:node ~seq:self_seq msg;
  List.length live_dests
