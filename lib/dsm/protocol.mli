(** The entry-consistency DSM protocol (§2.2) with the GC cooperation
    points of §5.

    Tokens follow the multiple-readers / single-writer discipline: any
    number of read tokens, or one exclusive write token, per object.  A
    write token is obtained from the object's owner; a read token from any
    node already holding one.  Token location uses Li–Hudak probable-owner
    (ownerPtr) forwarding chains; copy-sets are either {e distributed}
    (§2.2: the copy-set is spread over the nodes that transitively granted
    read tokens) or {e centralized} at the owner (the prototype
    simplification of §8) — both modes are implemented.

    The three GC invariants of §5 are enforced on the acquire path:

    + a token grant completes only after the acquiring node has valid
      addresses for the object and everything it references directly —
      new locations are piggybacked on the grant reply;
    + a node receiving new-location information forwards it to the nodes
      in its local copy-set for that object;
    + a write grant completes only after the intra-bunch SSPs required by
      the ownership transfer exist — delegated to the collector through
      {!hooks}.

    The protocol itself never moves objects; it only reads forwarding
    state left in the per-node {!Bmx_memory.Store} by the collector.  In
    the other direction, the collector never calls [acquire] — that
    separation is the paper's central claim, and the [actor] parameter
    exists so tests and benchmarks can verify it (experiment E5). *)

type mode = Centralized | Distributed
type update_policy = Eager | Lazy

type actor = App | Gc

(** New-location information (§4.4): [old_addr] is where the sender last
    knew the object; [new_addr] is its current address at the owner side.
    Receivers install a forwarding header at [old_addr] and move their
    local copy, if any, to [new_addr]. *)
type location_update = {
  lu_uid : Bmx_util.Ids.Uid.t;
  old_addr : Bmx_util.Addr.t;
  new_addr : Bmx_util.Addr.t;
}

type hooks = {
  before_write_grant :
    granter:Bmx_util.Ids.Node.t ->
    requester:Bmx_util.Ids.Node.t ->
    uid:Bmx_util.Ids.Uid.t ->
    unit;
      (** Invariant 3 (§5): called at the old owner before the write grant
          message is sent; the collector creates any intra-bunch SSP the
          transfer requires (scion at granter, stub at requester). *)
}

val no_hooks : hooks

type t

val create :
  net:(int -> unit) Bmx_netsim.Net.t ->
  registry:Bmx_memory.Registry.t ->
  ?mode:mode ->
  ?update_policy:update_policy ->
  unit ->
  t

val set_hooks : t -> hooks -> unit

val set_metrics : t -> Bmx_obs.Metrics.t -> unit
(** Attach a metrics registry.  Registers callback gauges
    [dsm.oracle.entries] (address-oracle size) and [dsm.copyset.max]
    (widest copyset across all directories), and feeds the per-granter
    histograms [dsm.copyset.size] (copyset cardinality after each read
    grant) and [dsm.grant.updates] (piggybacked location updates per
    grant, §4.4). *)

val tracer : t -> Bmx_util.Tracelog.t
(** The shared event trace; disabled by default (see
    {!Bmx_util.Tracelog.set_enabled}).  The protocol records token
    grants, ownership transfers and invalidations; the collector and the
    cleaner record their phases into the same trace. *)

val evlog : t -> Bmx_util.Trace_event.log
(** The typed event log consumed by the trace linter
    ([Bmx_check.Lint]); disabled by default.  The acquire path records
    acquisition start/completion (with the acting subsystem and whether
    the local address was valid — §5 invariant 1), grant messages with
    their piggybacked update counts, the invariant-3 hook firing,
    invalidations, location-update application and the copy-set forwards
    of invariant 2.  {!Bmx_netsim.Net.set_evlog} shares the same log
    with the transport so per-pair FIFO is checkable too. *)

val net : t -> (int -> unit) Bmx_netsim.Net.t
val stats : t -> Bmx_util.Stats.registry
val registry : t -> Bmx_memory.Registry.t
val mode : t -> mode

val add_node : t -> Bmx_util.Ids.Node.t -> unit
(** Register a node (fresh store and directory).  Raises on duplicates. *)

val nodes : t -> Bmx_util.Ids.Node.t list
val store : t -> Bmx_util.Ids.Node.t -> Bmx_memory.Store.t
val directory : t -> Bmx_util.Ids.Node.t -> Directory.t

val declare_bunch :
  t -> bunch:Bmx_util.Ids.Bunch.t -> home:Bmx_util.Ids.Node.t -> unit
(** Register a bunch and its home node ("each bunch has an associated
    owner", §2.1) — the rendezvous for locating objects a node has never
    seen. *)

val bunch_home : t -> Bmx_util.Ids.Bunch.t -> Bmx_util.Ids.Node.t
val bunches : t -> Bmx_util.Ids.Bunch.t list

(** {1 Allocation} *)

val alloc :
  t ->
  node:Bmx_util.Ids.Node.t ->
  bunch:Bmx_util.Ids.Bunch.t ->
  fields:Bmx_memory.Value.t array ->
  Bmx_util.Addr.t
(** Allocate a new object; the allocating node becomes its owner with the
    write token. *)

val register_copy_location :
  t -> uid:Bmx_util.Ids.Uid.t -> addr:Bmx_util.Addr.t -> unit
(** Collector callback: a BGC copied the object to a fresh address.
    Keeps the simulator's address oracle complete. *)

val uid_of_addr : t -> Bmx_util.Addr.t -> Bmx_util.Ids.Uid.t option
(** Simulator oracle: stable identity behind an address (any epoch). *)

(** {1 Token operations (§2.2)} *)

val acquire :
  t ->
  ?actor:actor ->
  node:Bmx_util.Ids.Node.t ->
  Bmx_util.Addr.t ->
  [ `Read | `Write ] ->
  Bmx_util.Addr.t
(** Acquire a token for the object named by the address; blocks (in
    simulation: executes) the whole protocol exchange and returns the
    object's current local address, which may differ from the argument
    when GC moved it (invariant 1 installs the forwarding first).
    Raises [Failure] if another node currently {e holds} a conflicting
    token — the simulated applications must synchronize, as entry
    consistency requires. *)

val release : t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t -> unit

val demand_fetch :
  t -> ?actor:actor -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t -> Bmx_util.Addr.t
(** Fault-driven access (§5, closing note): for DSM systems that do not
    require applications to synchronize on accesses, a node faulting on
    an object is supplied a copy — {e without} any token — and the
    supplier piggybacks all necessary location updates on the reply.
    The installed copy is inconsistent ([Invalid] state, readable only
    with [read_field ~weak]); the supplier registers the new replica in
    its entering-ownerPtr table so the collector keeps the object alive.
    Returns the object's current local address.  No-op (and no message)
    if a copy is already cached. *)

(** {1 Data access} *)

val read_field :
  t -> ?weak:bool -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t -> int
  -> Bmx_memory.Value.t
(** Read a field of the local copy.  Requires a read or write token unless
    [weak] (weak reads see whatever inconsistent copy is cached — the
    undefined-state reads entry consistency permits, used by the BGC's
    scanning). *)

val write_field_raw :
  t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t -> int -> Bmx_memory.Value.t
  -> unit
(** Write a field of the local copy; requires the write token.  {b No
    write barrier} — the collector's barrier (§3.2) wraps this; mutators
    go through [Bmx.write_field]. *)

val ptr_eq : t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t -> Bmx_util.Addr.t -> bool
(** The paper's pointer-comparison operation (§4.2): equality modulo
    forwarding pointers. *)

(** {1 Location updates (§4.4, §5)} *)

val apply_location_updates :
  t -> node:Bmx_util.Ids.Node.t -> location_update list -> unit
(** Install forwarders / move local copies for the updates, then forward
    each to the local copy-set (invariant 2) as background messages. *)

val send_location_updates :
  t ->
  src:Bmx_util.Ids.Node.t ->
  dst:Bmx_util.Ids.Node.t ->
  location_update list ->
  unit
(** Explicit (non-piggybacked) address-update message, for the from-space
    reuse protocol (§4.5) and the explicit-update ablation of E6. *)

(** {1 Oracles and introspection (tests, benchmarks)} *)

val owner_of : t -> Bmx_util.Ids.Uid.t -> Bmx_util.Ids.Node.t option
val replica_nodes : t -> Bmx_util.Ids.Uid.t -> Bmx_util.Ids.Node.t list
(** Nodes whose store currently caches a copy of the object. *)

val bunch_replica_nodes : t -> Bmx_util.Ids.Bunch.t -> Bmx_util.Ids.Node.t list
(** Nodes currently caching at least one object of the bunch. *)

val forget_replica : t -> node:Bmx_util.Ids.Node.t -> uid:Bmx_util.Ids.Uid.t -> unit
(** Collector callback: the local replica was reclaimed; drop DSM state. *)

val copyset_changed : t -> was:int -> now:int -> unit
(** Report a copyset cardinality change ([~now:0] for record removal) to
    the histogram backing the O(1) [dsm.copyset.max] gauge.  Every
    mutation of a directory record's copyset made outside this module
    (e.g. recovery re-registration in [Persist]) must report here, or
    the gauge drifts from the true maximum. *)

val adopt_ownership : t -> node:Bmx_util.Ids.Node.t -> uid:Bmx_util.Ids.Uid.t -> unit
(** Ownership recovery: a node still holding a live copy claims
    ownership of an object whose recorded owner no longer caches it (the
    owner's replica died while this one survived — e.g. during from-space
    reuse, §4.5, or a crash, §8).  Accounts one exchange with the old
    owner when one exists and is up.  Raises [Invalid_argument] if the
    recorded owner still has a copy, or if the adopting node has none.

    Split-brain guard: raises [Failure] when the recorded owner — or any
    surviving replica — is alive but unreachable from the adopting node
    (network partition).  A merely-unreachable owner still holds live
    token state; adopting would leave two owners after heal.  Callers
    retry once the partition heals. *)

val crash_node : t -> Bmx_util.Ids.Node.t -> unit
(** Discard the node's volatile DSM state: its store (every cached
    copy) and its directory (every token, ownerPtr, copyset and entering
    table).  The node stays a cluster member with empty state; the
    cluster-wide bunch directory survives (BMX-server state, §8), as do
    the other nodes' — now possibly stale — records about this node.
    Raises [Invalid_argument] on an unknown node. *)

val exiting_ownerptrs :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> (Bmx_util.Ids.Uid.t * Bmx_util.Ids.Node.t) list
(** The node's exiting ownerPtrs for objects of the bunch: locally cached,
    not locally owned, with the probable owner each points to (§2.2). *)
