test/test_oo7.mli:
