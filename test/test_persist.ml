(* Persistence by reachability (§1, §2.1). *)

module Cluster = Bmx.Cluster
module Persist = Bmx.Persist
module Value = Bmx_memory.Value
module Rvm = Bmx_rvm.Rvm
module Graphgen = Bmx_workload.Graphgen

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let test_checkpoint_only_reachable () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let live = Graphgen.linked_list c ~node:0 ~bunch:b ~len:10 in
  let _garbage = Graphgen.linked_list c ~node:0 ~bunch:b ~len:7 in
  Cluster.add_root c ~node:0 live;
  let disk = Persist.create_disk () in
  let n = Persist.checkpoint c ~node:0 ~bunch:b disk in
  (* "Objects that are no longer reachable from the persistent root
     should not be stored on disk" (§1). *)
  check_int "exactly the reachable objects persisted" 10 n;
  check_int "disk holds them" 10 (Rvm.cardinal disk)

let test_checkpoint_retires_dead_entries () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let head = Graphgen.linked_list c ~node:0 ~bunch:b ~len:6 in
  Cluster.add_root c ~node:0 head;
  let disk = Persist.create_disk () in
  ignore (Persist.checkpoint c ~node:0 ~bunch:b disk);
  check_int "first image" 6 (Rvm.cardinal disk);
  (* Cut the list after the head: the tail dies; the next checkpoint
     must remove it from disk. *)
  let h = Cluster.acquire_write c ~node:0 head in
  Cluster.write c ~node:0 h 0 Value.nil;
  Cluster.release c ~node:0 h;
  let n = Persist.checkpoint c ~node:0 ~bunch:b disk in
  check_int "only the head persisted now" 1 n;
  check_int "stale cells retired from disk" 1 (Rvm.cardinal disk)

let test_checkpoint_scoped_to_bunch () =
  let c = Cluster.create ~nodes:1 () in
  let b1 = Cluster.new_bunch c ~home:0 in
  let b2 = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b2 [| Value.Data 2 |] in
  let y = Cluster.alloc c ~node:0 ~bunch:b1 [| Value.Ref x |] in
  Cluster.add_root c ~node:0 y;
  let disk = Persist.create_disk () in
  check_int "only b1's object persisted" 1 (Persist.checkpoint c ~node:0 ~bunch:b1 disk)

let test_restore_after_reboot () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let head = Graphgen.linked_list c ~node:0 ~bunch:b ~len:5 in
  Cluster.add_root c ~node:0 head;
  let disk = Persist.create_disk () in
  ignore (Persist.checkpoint c ~node:0 ~bunch:b disk);
  (* The disk crashes and recovers; a replacement node joins the cluster
     and restores the persistent state. *)
  Rvm.crash disk;
  ignore (Rvm.recover disk);
  let replacement = Cluster.add_node c in
  let n = Persist.restore c ~node:replacement disk in
  check_int "all cells restored" 5 n;
  check_bool "safety after restore" true (Result.is_ok (Bmx.Audit.check_safety c));
  (* The restored replica is readable (weak: it carries no token). *)
  check_bool "restored list readable" true
    (match Cluster.read c ~weak:true ~node:replacement head 1 with
    | Value.Data _ -> true
    | _ -> false);
  (* And the restored node can synchronize normally. *)
  let h = Cluster.acquire_read c ~node:replacement head in
  Cluster.release c ~node:replacement h;
  check_bool "token path works" true
    (match Cluster.read c ~node:replacement h 1 with Value.Data _ -> true | _ -> false)

let test_checkpoint_gc_checkpoint_cycle () =
  (* Checkpoints interleave with collections and stay consistent. *)
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let head = Graphgen.linked_list c ~node:0 ~bunch:b ~len:12 in
  Cluster.add_root c ~node:0 head;
  let disk = Persist.create_disk () in
  ignore (Persist.checkpoint c ~node:0 ~bunch:b disk);
  ignore (Cluster.bgc c ~node:0 ~bunch:b);
  (* Post-GC the objects moved; a new checkpoint persists the new image
     (addresses differ, contents same). *)
  let n = Persist.checkpoint c ~node:0 ~bunch:b disk in
  check_int "same object count after GC" 12 n;
  check_int "no duplicate cells" 12 (Rvm.cardinal disk)

let test_crash_mid_commit_recovers_last_checkpoint () =
  (* RVM's atomicity guarantee under the worst-case torn write (§8): a
     node dies exactly after a checkpoint's data records reach the log
     and before the commit record does.  Recovery must replay only the
     previously committed checkpoint — the torn tail is invisible. *)
  let c = Cluster.create ~nodes:2 () in
  let b = Cluster.new_bunch c ~home:0 in
  let head = Graphgen.linked_list c ~node:0 ~bunch:b ~len:4 in
  Cluster.add_root c ~node:0 head;
  let disk = Persist.create_disk () in
  check_int "first checkpoint committed" 4
    (Persist.checkpoint ~gc_roots:true c ~node:0 ~bunch:b disk);
  (* The heap grows, and a second checkpoint starts writing its log... *)
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 9; Value.nil |] in
  Cluster.add_root c ~node:0 a;
  let obj =
    match
      Bmx_memory.Store.resolve (Bmx_dsm.Protocol.store (Cluster.proto c) 0) a
    with
    | Some (_, o) -> Bmx_memory.Heap_obj.to_image o
    | None -> Alcotest.fail "fresh cell must resolve"
  in
  Rvm.begin_tx disk;
  Rvm.set disk a (a, obj, [], true);
  (* ...but the machine fails before the commit record lands. *)
  Rvm.crash_mid_commit disk;
  Cluster.crash_node c ~node:0;
  Cluster.restart_node c ~node:0;
  let n = Persist.recover_node c ~node:0 [ disk ] in
  check_int "recovery replays only the committed prefix" 4 n;
  check_bool "torn cell is invisible after recovery" true (Rvm.get disk a = None);
  check_bool "safety after recovery" true (Result.is_ok (Bmx.Audit.check_safety c));
  check_bool "recovered list readable" true
    (match Cluster.read c ~weak:true ~node:0 head 1 with
    | Value.Data _ -> true
    | _ -> false)

let () =
  Alcotest.run "persist"
    [
      ( "persistence by reachability",
        [
          Alcotest.test_case "only reachable objects stored" `Quick
            test_checkpoint_only_reachable;
          Alcotest.test_case "dead entries retired" `Quick
            test_checkpoint_retires_dead_entries;
          Alcotest.test_case "scoped to the bunch" `Quick test_checkpoint_scoped_to_bunch;
          Alcotest.test_case "restore after reboot" `Quick test_restore_after_reboot;
          Alcotest.test_case "checkpoint/GC/checkpoint" `Quick
            test_checkpoint_gc_checkpoint_cycle;
          Alcotest.test_case "crash mid-commit recovers last checkpoint" `Quick
            test_crash_mid_commit_recovers_last_checkpoint;
        ] );
    ]
