lib/core/ggc.mli: Bmx_util Collect Gc_state
