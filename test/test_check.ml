(* The checker checked: unit tests for the trace linter, the schedule
   explorer, the layering scanner, and the audit's stale-edge report.

   The positive direction (real runs lint clean) is exercised by
   test_races and test_integration; here we mostly make sure the linter
   actually BITES — forged violations of each rule must be flagged. *)

open Bmx_util
module E = Trace_event
module Lint = Bmx_check.Lint
module Explore = Bmx_check.Explore
module Layering = Bmx_check.Layering
module Cluster = Bmx.Cluster
module Protocol = Bmx_dsm.Protocol
module Store = Bmx_memory.Store
module Value = Bmx_memory.Value

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let rules vs = List.map (fun v -> v.Lint.rule) vs

let has rule vs = List.mem rule (rules vs)

(* ------------------------------------------------------------- linter *)

(* A forged acquire by the collector must be flagged — this is the
   paper's central claim, wired through the [actor] parameter. *)
let test_gc_acquire_flagged () =
  let c = Cluster.create ~nodes:2 ~trace_events:true () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  Cluster.add_root c ~node:0 x;
  (* Bypass the facade and acquire as the collector would be forbidden
     to: the linter, not the type system, is the tripwire. *)
  let proto = Cluster.proto c in
  let a = Protocol.acquire proto ~actor:Protocol.Gc ~node:1 x `Read in
  Protocol.release proto ~node:1 a;
  let vs = Lint.check_all proto in
  check_bool "forged Gc acquire flagged" true (has Lint.Gc_acquired_token vs)

let test_app_acquire_clean () =
  let c = Cluster.create ~nodes:2 ~trace_events:true () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  Cluster.add_root c ~node:0 x;
  let a = Cluster.acquire_read c ~node:1 x in
  Cluster.release c ~node:1 a;
  ignore (Cluster.drain c);
  check_int "clean trace has no violations" 0
    (List.length (Lint.check_all (Cluster.proto c)))

(* Synthetic logs: each §5 invariant violation in isolation. *)
let test_invariant1_flagged () =
  let vs =
    Lint.run
      [
        E.Acquire_done
          { actor = E.App; node = 1; uid = 7; tok = E.Read; addr_valid = false };
      ]
  in
  check_bool "acquire without valid address flagged" true (has Lint.Invariant1 vs);
  let vs =
    Lint.run
      [
        E.Grant_sent
          { granter = 0; requester = 1; uid = 7; tok = E.Read; updates = 2 };
        (* updates never applied at N1 before the acquire completes *)
        E.Acquire_done
          { actor = E.App; node = 1; uid = 7; tok = E.Read; addr_valid = true };
      ]
  in
  check_bool "unapplied piggybacked updates flagged" true (has Lint.Invariant1 vs)

let test_invariant2_flagged () =
  let vs = Lint.run [ E.Forward_due { node = 0; uid = 5; peers = [ 1; 2 ] } ] in
  check_int "one violation per unforwarded peer" 2 (List.length vs);
  check_bool "dropped copy-set forward flagged" true (has Lint.Invariant2 vs);
  (* Discharged obligations are clean. *)
  let vs =
    Lint.run
      [
        E.Forward_due { node = 0; uid = 5; peers = [ 1 ] };
        E.Copyset_forward { src = 0; dst = 1; uid = 5 };
      ]
  in
  check_int "forwarded copy-set is clean" 0 (List.length vs)

let test_invariant3_flagged () =
  let grant =
    E.Grant_sent { granter = 0; requester = 1; uid = 7; tok = E.Write; updates = 0 }
  in
  let vs = Lint.run [ grant ] in
  check_bool "write grant without SSP hook flagged" true (has Lint.Invariant3 vs);
  let vs = Lint.run [ E.Hook_ssp { granter = 0; requester = 1; uid = 7 }; grant ] in
  check_bool "hooked write grant is clean" false (has Lint.Invariant3 vs)

let test_fifo_flagged () =
  let msg seq =
    E.Msg_sent { src = 0; dst = 1; kind = "addr_update"; seq; rel = false }
  in
  let del seq =
    E.Msg_delivered { src = 0; dst = 1; kind = "addr_update"; seq; rel = false }
  in
  let vs = Lint.run [ msg 2; msg 1 ] in
  check_bool "non-monotonic send seq flagged" true (has Lint.Fifo_order vs);
  let vs = Lint.run [ msg 1; msg 2; del 2; del 1 ] in
  check_bool "reordered delivery flagged" true (has Lint.Fifo_order vs);
  (* Drops (gaps) and duplicates (repeats) are legal; synchronous RPCs
     overtake the background channel legally too. *)
  let vs =
    Lint.run
      [
        msg 1;
        msg 2;
        msg 3;
        E.Rpc { src = 0; dst = 1; kind = "token_req"; seq = 4 };
        del 1;
        del 3;
        del 3;
      ]
  in
  check_int "gaps, dups and rpc overtaking are clean" 0 (List.length vs)

let test_forwarder_cycle_flagged () =
  (* [Store.set_forwarder] refuses to close a cycle (address reuse can
     legally move an object A -> B -> A): the stale back-chain is
     re-pointed and the linter finds the graph acyclic.  Both the 2-cycle
     and a longer loop are exercised, plus a self-link. *)
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let y = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 2 |] in
  let z = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 3 |] in
  let store = Protocol.store (Cluster.proto c) 0 in
  Store.set_forwarder store ~at:x ~target:y;
  Store.set_forwarder store ~at:y ~target:x;
  check_int "2-cycle refused; graph stays acyclic" 0
    (List.length (Lint.check_stores (Cluster.proto c)));
  Store.set_forwarder store ~at:y ~target:z;
  Store.set_forwarder store ~at:z ~target:x;
  Store.set_forwarder store ~at:x ~target:y;
  check_int "3-cycle refused; graph stays acyclic" 0
    (List.length (Lint.check_stores (Cluster.proto c)));
  Store.set_forwarder store ~at:z ~target:z;
  check_bool "self-link ignored" true
    (match Store.cell store z with
    | Some (Store.Forwarder t) -> not (Addr.equal t z)
    | _ -> true);
  check_int "still acyclic after self-link attempt" 0
    (List.length (Lint.check_stores (Cluster.proto c)))

let test_overflow_refused () =
  let log = E.create_log ~capacity:2 () in
  E.set_enabled log true;
  for uid = 1 to 3 do
    E.record log (E.Release { node = 0; uid })
  done;
  check_bool "overflowed" true (E.overflowed log);
  check_bool "truncated log cannot be certified" true
    (has Lint.Incomplete_trace (Lint.check_log log))

(* ------------------------------------------------------ serialization *)

let test_event_roundtrip () =
  let samples =
    [
      E.Acquire_start { actor = E.App; node = 1; uid = 2; tok = E.Read };
      E.Acquire_done
        { actor = E.Gc; node = 1; uid = 2; tok = E.Write; addr_valid = true };
      E.Release { node = 3; uid = 4 };
      E.Grant_sent { granter = 0; requester = 2; uid = 9; tok = E.Write; updates = 3 };
      E.Hook_ssp { granter = 0; requester = 2; uid = 9 };
      E.Invalidate { src = 1; dst = 2; uid = 9 };
      E.Updates_applied { node = 2; uids = [ 9; 11 ] };
      E.Updates_applied { node = 2; uids = [] };
      E.Forward_due { node = 2; uid = 9; peers = [ 0; 1 ] };
      E.Copyset_forward { src = 2; dst = 0; uid = 9 };
      E.Gc_begin { node = 0; group = false; bunches = [ 1; 2 ] };
      E.Gc_end { node = 0; group = true; live = 17; reclaimed = 4 };
      E.Msg_sent { src = 0; dst = 1; kind = "stub_table"; seq = 12; rel = false };
      E.Msg_delivered
        { src = 0; dst = 1; kind = "stub_table"; seq = 12; rel = false };
      E.Msg_sent { src = 0; dst = 1; kind = "scion_message"; seq = 14; rel = true };
      E.Msg_delivered
        { src = 0; dst = 1; kind = "scion_message"; seq = 14; rel = true };
      E.Msg_retransmit { src = 0; dst = 1; kind = "scion_message"; seq = 14; attempt = 2 };
      E.Msg_suppressed { src = 0; dst = 1; kind = "scion_message"; seq = 14 };
      E.Msg_buffered { src = 0; dst = 1; kind = "addr_update"; seq = 15 };
      E.Crash { node = 2 };
      E.Restart { node = 2 };
      E.Rpc { src = 1; dst = 0; kind = "token_grant"; seq = 13 };
      E.Read_obs { actor = E.App; node = 1; uid = 9; version = 3; covered = true };
      E.Read_obs
        { actor = E.App; node = 2; uid = 9; version = 0; covered = false };
      E.Write_obs
        { actor = E.Gc; node = 0; uid = 7; version = 4; covered = true };
    ]
  in
  List.iter
    (fun e ->
      match E.of_line (E.to_line e) with
      | Ok e' -> check_bool (E.to_line e) true (e = e')
      | Error m -> Alcotest.failf "%s: %s" (E.to_line e) m)
    samples;
  check_bool "garbage rejected" true (Result.is_error (E.of_line "acquire_start x"));
  check_bool "unknown rejected" true (Result.is_error (E.of_line "warp_core 1 2"))

(* ----------------------------------------------------------- explorer *)

let test_explorer_scenarios_clean () =
  List.iter
    (fun sc ->
      let name = sc.Explore.sc_name in
      let r =
        Explore.run ~depth:5 ~max_schedules:500 ~build:sc.Explore.sc_build
          ~locals:sc.Explore.sc_locals ~finish:sc.Explore.sc_finish ()
      in
      check_bool (name ^ ": explored") true (r.Explore.schedules >= 2);
      (match r.Explore.violations with
      | [] -> ()
      | (sched, msg) :: _ ->
          Alcotest.failf "%s: [%s] %s" name
            (String.concat " " (List.map Explore.choice_to_string sched))
            msg);
      check_bool (name ^ ": not truncated") false r.Explore.truncated)
    Explore.builtin_scenarios

let test_explorer_catches_planted_bug () =
  (* A check that always fails must surface on every explored schedule —
     the explorer's reporting path, exercised end to end. *)
  let build () = Cluster.create ~nodes:2 ~trace_events:true () in
  let r =
    Explore.run ~depth:2 ~max_schedules:50 ~build
      ~locals:[ (fun _ -> ()) ]
      ~check:(fun _ -> Error "planted")
      ()
  in
  check_bool "planted failure reported" true
    (List.exists (fun (_, m) -> m = "planted") r.Explore.violations)

(* ----------------------------------------------------------- layering *)

let test_layering_catches_direct_call () =
  let src = "let f proto x = Protocol.acquire proto ~node:0 x `Read\n" in
  let fs = Layering.scan_source ~file:"lib/core/bad.ml" src in
  check_int "direct call caught" 1 (List.length fs);
  check Alcotest.string "path" "Protocol.acquire" (List.hd fs).Layering.path

let test_layering_tracks_aliases () =
  let src =
    "module P = Bmx_dsm.Protocol\nmodule Q = P\nlet f proto x = Q.release proto x\n"
  in
  let fs = Layering.scan_source ~file:"lib/core/bad.ml" src in
  check_int "aliased call caught" 1 (List.length fs);
  check_int "on the right line" 3 (List.hd fs).Layering.line

let test_layering_ignores_comments_and_strings () =
  let src =
    "(* Protocol.acquire is forbidden here — see {!Protocol.acquire}. *)\n\
     let s = \"Protocol.release proto\"\n\
     let ok proto n = Protocol.store proto n\n"
  in
  check_int "comments and strings are not calls" 0
    (List.length (Layering.scan_source ~file:"lib/core/fine.ml" src))

let test_layering_sanctioned_hook () =
  let src = "let install t = Protocol.set_hooks t hooks\n" in
  check_int "set_hooks sanctioned in invariants.ml" 0
    (List.length (Layering.scan_source ~file:"lib/core/invariants.ml" src));
  check_int "set_hooks forbidden elsewhere" 1
    (List.length (Layering.scan_source ~file:"lib/core/collect.ml" src))

let test_layering_real_tree_clean () =
  (* dune runtest runs in _build/default/test; dune exec from the root. *)
  let dir =
    if Sys.file_exists "../lib/core" then "../lib/core" else "lib/core"
  in
  check_int "lib/core is token-free" 0 (List.length (Layering.scan_dir dir))

(* -------------------------------------------------------------- audit *)

let test_stale_edge_sources_reported () =
  let c = Cluster.create ~nodes:2 () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  Cluster.add_root c ~node:0 x;
  let x1 = Cluster.acquire_read c ~node:1 x in
  Cluster.release c ~node:1 x1;
  ignore (Cluster.drain c);
  let x_uid = Cluster.uid_at c ~node:0 x in
  check_bool "initially authoritative" false
    (Ids.Uid_set.mem x_uid (Bmx.Audit.stale_edge_sources c));
  (* Surgically drop the owner's copy: only N1's stale replica remains,
     so the authoritative graph must fall back — and say so. *)
  let store0 = Protocol.store (Cluster.proto c) 0 in
  (match Store.addr_of_uid store0 x_uid with
  | Some a -> Store.remove store0 a
  | None -> Alcotest.fail "owner copy missing before surgery");
  check_bool "fallback reported" true
    (Ids.Uid_set.mem x_uid (Bmx.Audit.stale_edge_sources c))

let () =
  Alcotest.run "check"
    [
      ( "trace linter",
        [
          Alcotest.test_case "forged Gc-actor acquire flagged" `Quick
            test_gc_acquire_flagged;
          Alcotest.test_case "clean app trace passes" `Quick test_app_acquire_clean;
          Alcotest.test_case "invariant 1 (valid address) flagged" `Quick
            test_invariant1_flagged;
          Alcotest.test_case "invariant 2 (copy-set forward) flagged" `Quick
            test_invariant2_flagged;
          Alcotest.test_case "invariant 3 (SSP before write grant) flagged" `Quick
            test_invariant3_flagged;
          Alcotest.test_case "per-pair FIFO flagged" `Quick test_fifo_flagged;
          Alcotest.test_case "forwarder cycles refused at the store" `Quick
            test_forwarder_cycle_flagged;
          Alcotest.test_case "overflowed log refused" `Quick test_overflow_refused;
        ] );
      ( "event serialization",
        [ Alcotest.test_case "to_line/of_line round-trip" `Quick test_event_roundtrip ] );
      ( "schedule explorer",
        [
          Alcotest.test_case "built-in scenarios clean on all schedules" `Quick
            test_explorer_scenarios_clean;
          Alcotest.test_case "planted failure surfaces" `Quick
            test_explorer_catches_planted_bug;
        ] );
      ( "layering lint",
        [
          Alcotest.test_case "direct call caught" `Quick
            test_layering_catches_direct_call;
          Alcotest.test_case "module aliases tracked" `Quick
            test_layering_tracks_aliases;
          Alcotest.test_case "comments and strings ignored" `Quick
            test_layering_ignores_comments_and_strings;
          Alcotest.test_case "sanctioned hook installation" `Quick
            test_layering_sanctioned_hook;
          Alcotest.test_case "real collector layer clean" `Quick
            test_layering_real_tree_clean;
        ] );
      ( "audit",
        [
          Alcotest.test_case "stale-edge fallback reported" `Quick
            test_stale_edge_sources_reported;
        ] );
    ]
