lib/util/rng.mli:
