open Bmx_util

type entry = { range : Addr.Range.t; bunch : Ids.Bunch.t; origin : Ids.Node.t }

type t = {
  mutable next : Addr.t;
  mutable entries : entry list; (* newest first *)
  by_bunch : entry list ref Ids.Bunch_tbl.t;
}

let create ?(first_addr = Addr.page_size) () =
  { next = Addr.align_up first_addr; entries = []; by_bunch = Ids.Bunch_tbl.create 16 }

let alloc_range t ~bunch ~origin ?(bytes = Segment.default_bytes) () =
  let range = Addr.Range.make ~lo:t.next ~size:(Addr.align_up bytes) in
  t.next <- range.Addr.Range.hi;
  let e = { range; bunch; origin } in
  t.entries <- e :: t.entries;
  (match Ids.Bunch_tbl.find_opt t.by_bunch bunch with
  | Some r -> r := e :: !r
  | None -> Ids.Bunch_tbl.add t.by_bunch bunch (ref [ e ]));
  range

let find t a =
  List.find_opt (fun e -> Addr.Range.contains e.range a) t.entries

let bunch_of_addr t a = Option.map (fun e -> e.bunch) (find t a)

let entries_of_bunch t bunch =
  match Ids.Bunch_tbl.find_opt t.by_bunch bunch with
  | Some r -> List.rev !r
  | None -> []

let total_bytes t =
  List.fold_left (fun acc e -> acc + Addr.Range.size e.range) 0 t.entries
