(* Observability layer: JSON, metrics registry, span derivation, Perfetto
   export, trace round-trip, virtual timestamps, reservoir summaries. *)

open Bmx_util
module Json = Bmx_obs.Json
module Metrics = Bmx_obs.Metrics
module Span = Bmx_obs.Span
module Perfetto = Bmx_obs.Perfetto
module Report = Bmx_obs.Report
module T = Trace_event

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_string = check Alcotest.string

(* ------------------------------------------------------------------ json *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("null", Json.Null);
        ("t", Json.Bool true);
        ("n", Json.Int (-42));
        ("f", Json.Float 1.5);
        ("s", Json.String "a \"b\"\n\tc\\d");
        ("l", Json.List [ Json.Int 1; Json.List []; Json.Obj [] ]);
      ]
  in
  match Json.parse (Json.to_string v) with
  | Ok v' -> check_bool "round-trips" true (v = v')
  | Error m -> Alcotest.failf "reparse failed: %s" m

let test_json_parse_misc () =
  check_bool "int stays int" true (Json.parse "7" = Ok (Json.Int 7));
  check_bool "exp is float" true (Json.parse "1e3" = Ok (Json.Float 1000.));
  check_bool "ws tolerated" true
    (Json.parse "  [ 1 , 2 ]  " = Ok (Json.List [ Json.Int 1; Json.Int 2 ]));
  check_bool "unicode escape" true
    (Json.parse "\"\\u0041\\n\"" = Ok (Json.String "A\n"));
  check_bool "trailing junk rejected" true
    (match Json.parse "1 2" with Error _ -> true | Ok _ -> false);
  check_bool "unterminated rejected" true
    (match Json.parse "[1," with Error _ -> true | Ok _ -> false);
  check_string "nan is null" "null" (Json.to_string (Json.Float Float.nan));
  check_bool "member" true
    (Json.member "a" (Json.Obj [ ("a", Json.Int 1) ]) = Some (Json.Int 1))

(* --------------------------------------------------------------- metrics *)

let test_metrics_basic () =
  let m = Metrics.create () in
  Metrics.incr m "c";
  Metrics.incr m ~by:2 "c";
  Metrics.incr m ~node:1 "c";
  Metrics.set_gauge m "g" 5;
  Metrics.set_gauge m "g" 7;
  Metrics.gauge_fn m "gf" (fun () -> 11);
  List.iter (fun v -> Metrics.observe m "h" v) [ 1.; 2.; 3.; 4. ];
  let snap = Metrics.snapshot m in
  check_bool "counter" true (Metrics.get snap "c" = Some (Metrics.Counter 3));
  check_bool "labelled counter" true
    (Metrics.get snap ~node:1 "c" = Some (Metrics.Counter 1));
  check_int "counter_total sums labels" 4 (Metrics.counter_total snap "c");
  check_bool "gauge keeps last" true
    (Metrics.get snap "g" = Some (Metrics.Gauge 7));
  check_bool "gauge_fn sampled" true
    (Metrics.get snap "gf" = Some (Metrics.Gauge 11));
  (match Metrics.get snap "h" with
  | Some (Metrics.Histogram s) ->
      check_int "histo count" 4 s.Metrics.s_count;
      check_bool "histo p50" true (s.Metrics.s_p50 >= 2. && s.Metrics.s_p50 <= 3.);
      check_bool "histo max" true (s.Metrics.s_max = 4.)
  | _ -> Alcotest.fail "histogram missing");
  (* Snapshot ordering: sorted by name, unlabelled before labelled. *)
  let keys = List.map fst snap in
  check_bool "sorted" true (keys = List.sort compare keys)

let test_metrics_diff_and_json () =
  let m = Metrics.create () in
  Metrics.incr m ~by:5 "c";
  Metrics.set_gauge m "g" 1;
  let before = Metrics.snapshot m in
  Metrics.incr m ~by:2 "c";
  Metrics.set_gauge m "g" 9;
  let after = Metrics.snapshot m in
  let d = Metrics.diff ~before ~after in
  check_bool "counter delta" true (Metrics.get d "c" = Some (Metrics.Counter 2));
  check_bool "gauge is a level" true (Metrics.get d "g" = Some (Metrics.Gauge 9));
  (* JSON export parses and names every metric. *)
  match Json.parse (Json.to_string (Metrics.to_json after)) with
  | Ok (Json.List entries) ->
      check_int "one entry per metric" (List.length after) (List.length entries);
      List.iter
        (fun e ->
          match Json.member "name" e with
          | Some (Json.String _) -> ()
          | _ -> Alcotest.fail "entry without name")
        entries
  | _ -> Alcotest.fail "metrics JSON unparseable"

let test_metrics_kind_conflict () =
  let m = Metrics.create () in
  Metrics.incr m "x";
  Alcotest.check_raises "kind conflict"
    (Invalid_argument "Metrics: \"x\" already registered as a non-gauge")
    (fun () -> Metrics.set_gauge m "x" 1)

(* -------------------------------------------- trace round-trip (generated) *)

(* Every constructor, with parameter grids; to_line ∘ of_line = id. *)
let generated_events () =
  let nodes = [ 0; 7 ] and uids = [ 0; 123 ] in
  let acts = [ T.App; T.Gc ] and toks = [ T.Read; T.Write ] in
  let bools = [ true; false ] in
  let kinds = [ "token_grant"; "stub_table" ] in
  let lists = [ []; [ 1 ]; [ 2; 5; 9 ] ] in
  let cart f xs ys = List.concat_map (fun x -> List.map (f x) ys) xs in
  List.concat
    [
      cart (fun actor (node, (uid, tok)) -> T.Acquire_start { actor; node; uid; tok })
        acts
        (cart (fun n ut -> (n, ut)) nodes (cart (fun u k -> (u, k)) uids toks));
      cart
        (fun actor (tok, addr_valid) ->
          T.Acquire_done { actor; node = 3; uid = 9; tok; addr_valid })
        acts
        (cart (fun t b -> (t, b)) toks bools);
      cart (fun node uid -> T.Release { node; uid }) nodes uids;
      cart
        (fun tok updates ->
          T.Grant_sent { granter = 1; requester = 2; uid = 4; tok; updates })
        toks [ 0; 3 ];
      [ T.Hook_ssp { granter = 0; requester = 1; uid = 2 } ];
      [ T.Invalidate { src = 1; dst = 2; uid = 3 } ];
      List.map (fun uids -> T.Updates_applied { node = 1; uids }) lists;
      List.map (fun peers -> T.Forward_due { node = 2; uid = 5; peers }) lists;
      [ T.Copyset_forward { src = 0; dst = 1; uid = 2 } ];
      cart (fun group bunches -> T.Gc_begin { node = 1; group; bunches }) bools
        lists;
      cart (fun group live -> T.Gc_end { node = 2; group; live; reclaimed = 7 })
        bools [ 0; 50 ];
      cart
        (fun kind rel -> T.Msg_sent { src = 0; dst = 1; kind; seq = 3; rel })
        kinds bools;
      cart
        (fun kind rel -> T.Msg_delivered { src = 1; dst = 0; kind; seq = 9; rel })
        kinds bools;
      List.map
        (fun kind -> T.Msg_retransmit { src = 0; dst = 2; kind; seq = 4; attempt = 2 })
        kinds;
      [ T.Msg_suppressed { src = 0; dst = 1; kind = "addr_update"; seq = 8 } ];
      [ T.Msg_buffered { src = 2; dst = 0; kind = "scion_message"; seq = 6 } ];
      [ T.Rpc { src = 1; dst = 2; kind = "token_request"; seq = 5 } ];
      List.map (fun node -> T.Crash { node }) nodes;
      List.map (fun node -> T.Restart { node }) nodes;
      List.map (fun dst -> T.Link_cut { src = 1; dst }) nodes;
      List.map (fun dst -> T.Link_heal { src = 1; dst }) nodes;
      cart (fun src on -> T.Suspect { src; dst = 2; on }) nodes bools;
      cart (fun node uid -> T.Owner_adopted { node; uid }) nodes uids;
      cart
        (fun sender seq ->
          T.Tables_processed { at = 0; sender; bunch = 3; seq })
        nodes [ 1; 42 ];
      List.map
        (fun fault -> T.Disk_fault { node = 1; fault })
        [ "flip_bits:0"; "truncate_mid_record" ];
      cart
        (fun node dropped -> T.Rvm_recover { node; dropped; lost = 1 })
        nodes [ 0; 5 ];
      cart (fun node missing -> T.Bunch_verified { node; missing }) nodes
        [ 0; 2 ];
      cart (fun shard node -> T.Shard_alloc { shard; node }) [ 0; 7 ] nodes;
      cart (fun shard node -> T.Shard_adopted { shard; node }) [ 0; 7 ] nodes;
      cart
        (fun actor covered ->
          T.Read_obs { actor; node = 1; uid = 4; version = 3; covered })
        acts bools;
      cart
        (fun actor covered ->
          T.Write_obs { actor; node = 2; uid = 6; version = 8; covered })
        acts bools;
      cart
        (fun node us -> T.Gc_phase { node; phase = "trace"; us })
        nodes [ 0; 1234 ];
    ]

let test_trace_roundtrip_all_constructors () =
  let events = generated_events () in
  check_bool "covers a healthy grid" true (List.length events > 50);
  List.iter
    (fun e ->
      match T.of_line (T.to_line e) with
      | Ok e' ->
          if e <> e' then
            Alcotest.failf "round-trip changed %S into %S" (T.to_line e)
              (T.to_line e')
      | Error m -> Alcotest.failf "unparseable %S: %s" (T.to_line e) m)
    events;
  (* The grid reaches every constructor (paranoia against a new variant
     being forgotten here): count distinct leading words. *)
  let heads =
    List.sort_uniq compare
      (List.map
         (fun e -> List.hd (String.split_on_char ' ' (T.to_line e)))
         events)
  in
  check_int "all 32 constructors serialized" 32 (List.length heads)

(* ----------------------------------------------------- virtual timestamps *)

let test_trace_timestamps () =
  let l = T.create_log () in
  T.set_enabled l true;
  let clock = ref 0 in
  T.set_clock l (fun () -> !clock);
  T.record l (T.Crash { node = 0 });
  T.record l (T.Restart { node = 0 });
  clock := 2;
  T.record l (T.Crash { node = 1 });
  T.record l (T.Restart { node = 1 });
  (match T.timed_events l with
  | [ (t1, _); (t2, _); (t3, _); (t4, _) ] ->
      check_int "first event at one µstep" 1 t1;
      check_int "second strictly after" 2 t2;
      check_int "clock jump lands on quantum" (2 * T.quantum) t3;
      check_int "then strictly increasing" ((2 * T.quantum) + 1) t4
  | _ -> Alcotest.fail "expected 4 events");
  check_int "events unchanged" 4 (List.length (T.events l));
  T.clear l;
  clock := 0;
  T.record l (T.Crash { node = 2 });
  check_bool "clear resets the cursor" true
    (match T.timed_events l with [ (1, _) ] -> true | _ -> false)

(* ----------------------------------------------------------------- spans *)

(* A hand-built trace: an app read acquire spanning two other events, a
   GC cycle, a reliable message with one retransmit, and a crash window. *)
let hand_trace =
  [
    (10, T.Acquire_start { actor = T.App; node = 0; uid = 5; tok = T.Read });
    (12, T.Msg_sent { src = 0; dst = 1; kind = "addr_update"; seq = 1; rel = true });
    (14, T.Acquire_done
           { actor = T.App; node = 0; uid = 5; tok = T.Read; addr_valid = true });
    (20, T.Gc_begin { node = 1; group = false; bunches = [ 0; 1 ] });
    (25, T.Msg_retransmit
           { src = 0; dst = 1; kind = "addr_update"; seq = 1; attempt = 2 });
    (30, T.Gc_end { node = 1; group = false; live = 4; reclaimed = 2 });
    (35, T.Msg_delivered
           { src = 0; dst = 1; kind = "addr_update"; seq = 1; rel = true });
    (40, T.Crash { node = 2 });
    (50, T.Restart { node = 2 });
    (60, T.Acquire_start { actor = T.Gc; node = 2; uid = 9; tok = T.Write });
  ]

let find_span spans name =
  match List.find_opt (fun (s : Span.t) -> s.Span.name = name) spans with
  | Some s -> s
  | None -> Alcotest.failf "span %s not derived" name

let test_span_derivation () =
  let spans = Span.of_events hand_trace in
  let acq = find_span spans "acquire.read" in
  check_int "acquire start" 10 acq.Span.ts;
  check_bool "acquire duration" true (acq.Span.dur = Some 4);
  check_bool "app acquire on dsm track" true (acq.Span.track = Span.Dsm);
  let gc = find_span spans "gc.bgc" in
  check_int "gc start" 20 gc.Span.ts;
  check_bool "gc duration" true (gc.Span.dur = Some 10);
  check_int "gc node" 1 gc.Span.node;
  check_bool "bunch count in args" true
    (List.assoc_opt "bunches" gc.Span.args = Some (Json.Int 2));
  let msg = find_span spans "msg.addr_update" in
  check_int "flight starts at send" 12 msg.Span.ts;
  check_bool "flight spans the retransmit epoch" true (msg.Span.dur = Some 23);
  check_bool "attempts counted" true
    (List.assoc_opt "attempts" msg.Span.args = Some (Json.Int 2));
  let rx = find_span spans "retransmit.addr_update" in
  check_bool "retransmit is an instant" true (rx.Span.dur = None);
  let down = find_span spans "down" in
  check_bool "down window" true (down.Span.dur = Some 10 && down.Span.node = 2);
  let orphan = find_span spans "acquire.write" in
  check_bool "unmatched start is an unfinished instant" true
    (orphan.Span.dur = None
    && List.assoc_opt "unfinished" orphan.Span.args = Some (Json.Bool true));
  check_bool "gc-actor acquire on gc track" true (orphan.Span.track = Span.Gc);
  (* Output is sorted by start time. *)
  let ts = List.map (fun (s : Span.t) -> s.Span.ts) spans in
  check_bool "sorted by ts" true (ts = List.sort compare ts)

(* -------------------------------------------------------------- perfetto *)

let test_perfetto_export () =
  let spans = Span.of_events hand_trace in
  let body = Perfetto.to_string spans in
  match Json.parse body with
  | Error m -> Alcotest.failf "perfetto JSON unparseable: %s" m
  | Ok j -> (
      match Json.member "traceEvents" j with
      | Some (Json.List evs) ->
          let phases =
            List.filter_map
              (fun e ->
                match Json.member "ph" e with
                | Some (Json.String p) -> Some p
                | _ -> None)
          in
          let meta = List.filter (fun e -> Json.member "ph" e = Some (Json.String "M")) evs in
          (* 3 nodes appear (0, 1, 2): one process_name each + 4 thread
             names each. *)
          check_int "metadata rows" (3 * 5) (List.length meta);
          check_int "one record per span + metadata"
            (List.length spans + (3 * 5))
            (List.length evs);
          check_bool "has complete events" true (List.mem "X" (phases evs));
          check_bool "has instants" true (List.mem "i" (phases evs));
          List.iter
            (fun e ->
              match (Json.member "ph" e, Json.member "dur" e) with
              | Some (Json.String "X"), Some (Json.Int d) ->
                  check_bool "dur non-negative" true (d >= 0)
              | Some (Json.String "X"), _ -> Alcotest.fail "X without dur"
              | _ -> ())
            evs
      | _ -> Alcotest.fail "no traceEvents array")

(* ---------------------------------------------------------------- report *)

let test_report () =
  let m = Metrics.create () in
  let r = Report.of_events ~metrics:m hand_trace in
  (* The hand trace ends with a GC-actor acquire start: unfinished, but
     still a GC acquisition — the non-interference verdict must trip. *)
  check_int "gc acquire counted" 1 (Report.gc_token_acquires r);
  check_bool "not ok" false (Report.ok r);
  (match Report.latency r "token_acquire.read" with
  | Some s ->
      check_int "one read sample" 1 s.Metrics.s_count;
      check_bool "latency is the span duration" true (s.Metrics.s_p50 = 4.)
  | None -> Alcotest.fail "read latency missing");
  (match Report.latency r "gc.pause" with
  | Some s -> check_bool "gc pause sampled" true (s.Metrics.s_count = 1)
  | None -> Alcotest.fail "gc pause missing");
  let clean = Report.of_events ~metrics:(Metrics.create ()) [] in
  check_int "counter exists even on empty trace" 0
    (Report.gc_token_acquires clean);
  check_bool "empty trace is ok" true (Report.ok clean);
  check_bool "text mentions the verdict" true
    (let t = Report.to_text clean in
     let needle = "gc.token_acquires = 0" in
     let n = String.length needle in
     let rec scan i =
       i + n <= String.length t && (String.sub t i n = needle || scan (i + 1))
     in
     scan 0)

(* ------------------------------------------------------ reservoir summary *)

let test_reservoir_summary () =
  let s = Stats.Summary.create () in
  let n = (Stats.Summary.reservoir_capacity * 4) + 7 in
  for i = 1 to n do
    Stats.Summary.add s (float_of_int i)
  done;
  check_int "n exact" n (Stats.Summary.n s);
  check_bool "min exact" true (Stats.Summary.min s = 1.);
  check_bool "max exact" true (Stats.Summary.max s = float_of_int n);
  let p50 = Stats.Summary.percentile s 50. in
  let mid = float_of_int n /. 2. in
  check_bool "p50 near the middle" true
    (Float.abs (p50 -. mid) < mid *. 0.15);
  (* Determinism: the same stream always yields the same percentiles. *)
  let s2 = Stats.Summary.create () in
  for i = 1 to n do
    Stats.Summary.add s2 (float_of_int i)
  done;
  check_bool "deterministic" true
    (Stats.Summary.percentile s2 90. = Stats.Summary.percentile s 90.)

(* ------------------------------------------------------- lazy tracelog -- *)

let test_tracelog_lazy () =
  let tr = Tracelog.create () in
  Tracelog.set_enabled tr false;
  Tracelog.recordf tr ~category:"t" "x=%d" 1;
  check_int "disabled records nothing" 0 (Tracelog.total_recorded tr);
  Tracelog.set_enabled tr true;
  Tracelog.recordf tr ~category:"t" "x=%d y=%s" 2 "z";
  check_int "enabled records" 1 (Tracelog.total_recorded tr);
  match Tracelog.events tr with
  | [ e ] -> check_string "formatted" "x=2 y=z" e.Tracelog.detail
  | _ -> Alcotest.fail "expected one event"

(* ------------------------------------------------------------- wiring --- *)

let test_cluster_wiring () =
  (* End-to-end: a tiny workload populates metrics and the report reads
     0 GC token acquires. *)
  let module Cluster = Bmx.Cluster in
  let c = Cluster.create ~nodes:2 ~trace_events:true () in
  let b = Cluster.new_bunch c ~home:0 in
  let a =
    Cluster.alloc c ~node:0 ~bunch:b [| Bmx_memory.Value.Data 1 |]
  in
  Cluster.add_root c ~node:0 a;
  let a1 = Cluster.acquire_read c ~node:1 a in
  Cluster.release c ~node:1 a1;
  ignore (Cluster.bgc c ~node:0 ~bunch:b);
  ignore (Cluster.settle c);
  let r =
    Report.of_events ~metrics:(Cluster.metrics c)
      (Trace_event.timed_events (Cluster.evlog c))
  in
  check_bool "non-interference holds" true (Report.ok r);
  let snap = Report.snapshot r in
  check_bool "heap gauge sampled" true
    (match Metrics.get snap ~node:0 "gc.heap.objects" with
    | Some (Metrics.Gauge g) -> g >= 1
    | _ -> false);
  check_bool "copyset histogram fed" true
    (match Metrics.get snap ~node:0 "dsm.copyset.size" with
    | Some (Metrics.Histogram s) -> s.Metrics.s_count >= 1
    | _ -> false);
  match Report.latency r "token_acquire.read" with
  | Some s -> check_bool "acquire latency measured" true (s.Metrics.s_count >= 1)
  | None -> Alcotest.fail "no acquire latency"

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "parse misc" `Quick test_json_parse_misc;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "basic" `Quick test_metrics_basic;
          Alcotest.test_case "diff+json" `Quick test_metrics_diff_and_json;
          Alcotest.test_case "kind conflict" `Quick test_metrics_kind_conflict;
        ] );
      ( "trace",
        [
          Alcotest.test_case "roundtrip all constructors" `Quick
            test_trace_roundtrip_all_constructors;
          Alcotest.test_case "virtual timestamps" `Quick test_trace_timestamps;
          Alcotest.test_case "lazy recordf" `Quick test_tracelog_lazy;
        ] );
      ( "spans",
        [
          Alcotest.test_case "derivation" `Quick test_span_derivation;
          Alcotest.test_case "perfetto export" `Quick test_perfetto_export;
          Alcotest.test_case "report" `Quick test_report;
        ] );
      ( "summary",
        [ Alcotest.test_case "reservoir" `Quick test_reservoir_summary ] );
      ( "wiring",
        [ Alcotest.test_case "cluster end-to-end" `Quick test_cluster_wiring ] );
    ]
