open Bmx_util

(* ------------------------------------------------------------------ *)
(* Indexed SSP tables.

   The old representation was one association list per (node, bunch),
   deduplicated with [List.exists] on every insert — O(n) on the write
   barrier's hottest path.  Each table is now a hash-membership set with
   the insertion-ordered list kept alongside as the public view (newest
   first, exactly the order the list tables had), plus secondary indexes:

   - [by_uid]   — the SSP's target uid (the object the entry protects);
   - [by_uid2]  — an optional second uid key (inter stubs: the source
                  uid, which is what the §5 invariant-3 hook queries);
   - [by_node]  — the peer node of the entry (scion holder, stub holder,
                  owner side), which is what the scion cleaner's
                  destination and per-sender queries need.

   [key_count]/[touched] track the table at {e match-key} granularity
   (see {!Ssp.inter_stub_key}): the journal records every key whose
   presence flipped since the last {!rebase_stub_journal}, and the scion
   cleaner derives reachability-table deltas from it (added = touched
   key still present, removed = touched key now absent).  Cumulative
   since the journal base, the delta applies correctly to a mirror in
   any state between the base and now.  Working on keys rather than
   records means a BGC that merely relocates targets (new addresses,
   same edges) journals nothing. *)

type ('a, 'k) table = {
  key_uid : 'a -> Ids.Uid.t;
  key_uid2 : ('a -> Ids.Uid.t) option;
  key_node : 'a -> Ids.Node.t;
  key_of : 'a -> 'k;
  mutable view : 'a list; (* newest first *)
  members : ('a, unit) Hashtbl.t;
  by_uid : ('a, unit) Hashtbl.t Ids.Uid_tbl.t;
  by_uid2 : ('a, unit) Hashtbl.t Ids.Uid_tbl.t;
  by_node : ('a, unit) Hashtbl.t Ids.Node_tbl.t;
  key_count : ('k, int) Hashtbl.t;
  touched : ('k, unit) Hashtbl.t;
}

let t_make ~key_uid ?key_uid2 ~key_node ~key_of () =
  {
    key_uid;
    key_uid2;
    key_node;
    key_of;
    view = [];
    members = Hashtbl.create 16;
    by_uid = Ids.Uid_tbl.create 16;
    by_uid2 = Ids.Uid_tbl.create 16;
    by_node = Ids.Node_tbl.create 8;
    key_count = Hashtbl.create 16;
    touched = Hashtbl.create 16;
  }

let bucket_add tbl key item =
  let b =
    match Ids.Uid_tbl.find_opt tbl key with
    | Some b -> b
    | None ->
        let b = Hashtbl.create 4 in
        Ids.Uid_tbl.add tbl key b;
        b
  in
  Hashtbl.replace b item ()

let bucket_remove tbl key item =
  match Ids.Uid_tbl.find_opt tbl key with
  | None -> ()
  | Some b ->
      Hashtbl.remove b item;
      if Hashtbl.length b = 0 then Ids.Uid_tbl.remove tbl key

let nbucket_add tbl key item =
  let b =
    match Ids.Node_tbl.find_opt tbl key with
    | Some b -> b
    | None ->
        let b = Hashtbl.create 4 in
        Ids.Node_tbl.add tbl key b;
        b
  in
  Hashtbl.replace b item ()

let nbucket_remove tbl key item =
  match Ids.Node_tbl.find_opt tbl key with
  | None -> ()
  | Some b ->
      Hashtbl.remove b item;
      if Hashtbl.length b = 0 then Ids.Node_tbl.remove tbl key

let t_index_add tb item =
  bucket_add tb.by_uid (tb.key_uid item) item;
  (match tb.key_uid2 with
  | Some key -> bucket_add tb.by_uid2 (key item) item
  | None -> ());
  nbucket_add tb.by_node (tb.key_node item) item

let t_index_remove tb item =
  bucket_remove tb.by_uid (tb.key_uid item) item;
  (match tb.key_uid2 with
  | Some key -> bucket_remove tb.by_uid2 (key item) item
  | None -> ());
  nbucket_remove tb.by_node (tb.key_node item) item

let t_key_incr tb k =
  let c = match Hashtbl.find_opt tb.key_count k with Some c -> c | None -> 0 in
  Hashtbl.replace tb.key_count k (c + 1);
  if c = 0 then Hashtbl.replace tb.touched k ()

let t_key_decr tb k =
  match Hashtbl.find_opt tb.key_count k with
  | None -> ()
  | Some 1 ->
      Hashtbl.remove tb.key_count k;
      Hashtbl.replace tb.touched k ()
  | Some c -> Hashtbl.replace tb.key_count k (c - 1)

let t_add tb item =
  if Hashtbl.mem tb.members item then false
  else begin
    tb.view <- item :: tb.view;
    Hashtbl.replace tb.members item ();
    t_index_add tb item;
    t_key_incr tb (tb.key_of item);
    true
  end

let t_remove_pred tb pred =
  let drop = List.filter pred tb.view in
  match drop with
  | [] -> 0
  | _ ->
      tb.view <- List.filter (fun x -> not (pred x)) tb.view;
      List.iter
        (fun x ->
          Hashtbl.remove tb.members x;
          t_index_remove tb x;
          t_key_decr tb (tb.key_of x))
        drop;
      List.length drop

let t_replace tb items =
  (* Wholesale replacement (BGC table reconstruction): journal exactly
     the keys whose presence flips, so a rebuild that keeps the same
     edges (even with every record's volatile fields rewritten) adds
     nothing to the next delta. *)
  let new_count = Hashtbl.create (max 16 (2 * List.length items)) in
  let incoming = Hashtbl.create (max 16 (2 * List.length items)) in
  List.iter
    (fun x ->
      if not (Hashtbl.mem incoming x) then begin
        Hashtbl.replace incoming x ();
        let k = tb.key_of x in
        let c =
          match Hashtbl.find_opt new_count k with Some c -> c | None -> 0
        in
        Hashtbl.replace new_count k (c + 1)
      end)
    items;
  Hashtbl.iter
    (fun k _ ->
      if not (Hashtbl.mem new_count k) then Hashtbl.replace tb.touched k ())
    tb.key_count;
  Hashtbl.iter
    (fun k _ ->
      if not (Hashtbl.mem tb.key_count k) then Hashtbl.replace tb.touched k ())
    new_count;
  tb.view <- items;
  Hashtbl.reset tb.members;
  Ids.Uid_tbl.reset tb.by_uid;
  Ids.Uid_tbl.reset tb.by_uid2;
  Ids.Node_tbl.reset tb.by_node;
  Hashtbl.reset tb.key_count;
  Hashtbl.iter
    (fun x () ->
      Hashtbl.replace tb.members x ();
      t_index_add tb x)
    incoming;
  Hashtbl.iter (fun k c -> Hashtbl.replace tb.key_count k c) new_count

let t_by_uid tb uid =
  match Ids.Uid_tbl.find_opt tb.by_uid uid with
  | None -> []
  | Some b -> Hashtbl.fold (fun x () acc -> x :: acc) b []

let t_by_uid2 tb uid =
  match Ids.Uid_tbl.find_opt tb.by_uid2 uid with
  | None -> []
  | Some b -> Hashtbl.fold (fun x () acc -> x :: acc) b []

let t_has_node tb node =
  match Ids.Node_tbl.find_opt tb.by_node node with
  | None -> false
  | Some b -> Hashtbl.length b > 0

(* ------------------------------------------------------------------ *)
(* Reachability-table mirrors (§6.1, delta protocol).

   A node receiving delta reachability messages keeps, per (sender,
   bunch), the key set of the sender's stub tables reassembled from
   fulls and diffs.  Coverage queries — the cleaner's §6.1 deletion test
   — are O(1) key lookups.  [mi_basis] identifies the full table the
   mirror (and every delta the sender emits) builds on; a delta with a
   different basis is unusable and triggers a resync. *)

type mirror = {
  mutable mi_basis : int;
  mi_inter : (Ssp.inter_key, unit) Hashtbl.t;
  mi_intra : (Ssp.intra_key, unit) Hashtbl.t;
  mi_exiting : (Ids.Uid.t * Ids.Node.t, unit) Hashtbl.t;
}

(* ------------------------------------------------------------------ *)

type node_state = {
  mutable gc_version : int;
      (* per-node component of the BGC dirtiness epoch: bumped on root
         and scion changes (the collection's inputs), not on the
         bookkeeping a collection writes about itself *)
  last_bgc : int Ids.Bunch_tbl.t; (* composite epoch after last BGC *)
  mutable roots : Addr.t list;
  inter_stubs : (Ssp.inter_stub, Ssp.inter_key) table Ids.Bunch_tbl.t;
      (* by source bunch *)
  intra_stubs : (Ssp.intra_stub, Ssp.intra_key) table Ids.Bunch_tbl.t;
  inter_scions : (Ssp.inter_scion, Ssp.inter_key) table Ids.Bunch_tbl.t;
      (* by target bunch *)
  intra_scions : (Ssp.intra_scion, unit) table Ids.Bunch_tbl.t;
  last_seq : (Ids.Node.t * Ids.Bunch.t, int) Hashtbl.t;
  last_exiting : (Ids.Uid.t * Ids.Node.t) list ref Ids.Bunch_tbl.t;
  last_dests : Ids.Node.t list ref Ids.Bunch_tbl.t;
  (* Delta-table state.  Sender side: which basis (full-table id) each
     destination is believed to hold, and how many broadcasts happened
     since the journal base.  Receiver side: the mirrors. *)
  dest_basis : (Ids.Bunch.t * Ids.Node.t, int * int) Hashtbl.t;
  since_rebase : int ref Ids.Bunch_tbl.t;
  mirrors : (Ids.Node.t * Ids.Bunch.t, mirror) Hashtbl.t;
  (* Exiting-ownerPtr journal, same shape as the stub-table journals:
     present set plus the entries that flipped since the last rebase. *)
  exiting_cur : (Ids.Uid.t * Ids.Node.t, unit) Hashtbl.t Ids.Bunch_tbl.t;
  exiting_touched : (Ids.Uid.t * Ids.Node.t, unit) Hashtbl.t Ids.Bunch_tbl.t;
}

type t = {
  proto : Bmx_dsm.Protocol.t;
  per_node : node_state Ids.Node_tbl.t;
  mutable obs : Bmx_obs.Metrics.t option;
}

let create ~proto = { proto; per_node = Ids.Node_tbl.create 8; obs = None }
let proto t = t.proto
let stats t = Bmx_dsm.Protocol.stats t.proto
let set_metrics t m = t.obs <- Some m
let metrics t = t.obs

let make_inter_stub_table () =
  t_make
    ~key_uid:(fun (s : Ssp.inter_stub) -> s.Ssp.is_target_uid)
    ~key_uid2:(fun (s : Ssp.inter_stub) -> s.Ssp.is_src_uid)
    ~key_node:(fun (s : Ssp.inter_stub) -> s.Ssp.is_scion_at)
    ~key_of:Ssp.inter_stub_key ()

let make_intra_stub_table () =
  t_make
    ~key_uid:(fun (s : Ssp.intra_stub) -> s.Ssp.ns_uid)
    ~key_node:(fun (s : Ssp.intra_stub) -> s.Ssp.ns_holder)
    ~key_of:Ssp.intra_stub_key ()

let make_inter_scion_table () =
  t_make
    ~key_uid:(fun (s : Ssp.inter_scion) -> s.Ssp.xs_target_uid)
    ~key_node:(fun (s : Ssp.inter_scion) -> s.Ssp.xs_src_node)
    ~key_of:Ssp.inter_scion_key ()

let make_intra_scion_table () =
  t_make
    ~key_uid:(fun (s : Ssp.intra_scion) -> s.Ssp.xn_uid)
    ~key_node:(fun (s : Ssp.intra_scion) -> s.Ssp.xn_owner_side)
    ~key_of:(fun _ -> ()) ()

let node_state t node =
  match Ids.Node_tbl.find_opt t.per_node node with
  | Some ns -> ns
  | None ->
      let ns =
        {
          gc_version = 0;
          last_bgc = Ids.Bunch_tbl.create 8;
          roots = [];
          inter_stubs = Ids.Bunch_tbl.create 8;
          intra_stubs = Ids.Bunch_tbl.create 8;
          inter_scions = Ids.Bunch_tbl.create 8;
          intra_scions = Ids.Bunch_tbl.create 8;
          last_seq = Hashtbl.create 16;
          last_exiting = Ids.Bunch_tbl.create 8;
          last_dests = Ids.Bunch_tbl.create 8;
          dest_basis = Hashtbl.create 16;
          since_rebase = Ids.Bunch_tbl.create 8;
          mirrors = Hashtbl.create 16;
          exiting_cur = Ids.Bunch_tbl.create 8;
          exiting_touched = Ids.Bunch_tbl.create 8;
        }
      in
      Ids.Node_tbl.add t.per_node node ns;
      ns

let crash_node t ~node =
  (* GC tables are volatile per-node state (they are reconstructed by
     every local collection, §4.3): a crash loses roots, stub and scion
     tables, the cleaner's per-sender freshness clocks, the broadcast
     bookkeeping and the delta-table mirrors and journals alike.  The
     entry regenerates lazily, empty. *)
  Ids.Node_tbl.remove t.per_node node

let add_root t ~node a =
  let ns = node_state t node in
  ns.gc_version <- ns.gc_version + 1;
  ns.roots <- a :: ns.roots

let remove_root t ~node a =
  let ns = node_state t node in
  let found = ref false in
  let rec drop_one = function
    | [] -> []
    | x :: rest ->
        if Addr.equal x a then begin
          found := true;
          rest
        end
        else x :: drop_one rest
  in
  let roots' = drop_one ns.roots in
  if !found then begin
    ns.gc_version <- ns.gc_version + 1;
    ns.roots <- roots'
  end

let roots t ~node = (node_state t node).roots

let set_roots t ~node roots =
  let ns = node_state t node in
  if
    not
      (List.length roots = List.length ns.roots
      && List.for_all2 Addr.equal roots ns.roots)
  then begin
    ns.gc_version <- ns.gc_version + 1;
    ns.roots <- roots
  end

let find_table make tbl bunch =
  match Ids.Bunch_tbl.find_opt tbl bunch with
  | Some tb -> tb
  | None ->
      let tb = make () in
      Ids.Bunch_tbl.add tbl bunch tb;
      tb

let tbl_view tbl bunch =
  match Ids.Bunch_tbl.find_opt tbl bunch with Some tb -> tb.view | None -> []

let inter_stubs t ~node ~bunch = tbl_view (node_state t node).inter_stubs bunch
let intra_stubs t ~node ~bunch = tbl_view (node_state t node).intra_stubs bunch

let add_inter_stub t ~node (s : Ssp.inter_stub) =
  let ns = node_state t node in
  if t_add (find_table make_inter_stub_table ns.inter_stubs s.Ssp.is_src_bunch) s
  then ns.gc_version <- ns.gc_version + 1

let add_intra_stub t ~node (s : Ssp.intra_stub) =
  let ns = node_state t node in
  if t_add (find_table make_intra_stub_table ns.intra_stubs s.Ssp.ns_bunch) s
  then ns.gc_version <- ns.gc_version + 1

let replace_stub_tables t ~node ~bunch ~inter ~intra =
  let ns = node_state t node in
  t_replace (find_table make_inter_stub_table ns.inter_stubs bunch) inter;
  t_replace (find_table make_intra_stub_table ns.intra_stubs bunch) intra

let inter_scions t ~node ~bunch = tbl_view (node_state t node).inter_scions bunch
let intra_scions t ~node ~bunch = tbl_view (node_state t node).intra_scions bunch

let add_inter_scion t ~node (s : Ssp.inter_scion) =
  let ns = node_state t node in
  if
    t_add
      (find_table make_inter_scion_table ns.inter_scions s.Ssp.xs_target_bunch)
      s
  then ns.gc_version <- ns.gc_version + 1

let add_intra_scion t ~node (s : Ssp.intra_scion) =
  let ns = node_state t node in
  if
    t_add (find_table make_intra_scion_table ns.intra_scions s.Ssp.xn_bunch) s
  then ns.gc_version <- ns.gc_version + 1

let remove_in_table tbl bunch pred =
  match Ids.Bunch_tbl.find_opt tbl bunch with
  | None -> 0
  | Some tb -> t_remove_pred tb pred

let remove_inter_scions t ~node ~bunch pred =
  let ns = node_state t node in
  let n = remove_in_table ns.inter_scions bunch pred in
  if n > 0 then ns.gc_version <- ns.gc_version + 1;
  n

let remove_intra_scions t ~node ~bunch pred =
  let ns = node_state t node in
  let n = remove_in_table ns.intra_scions bunch pred in
  if n > 0 then ns.gc_version <- ns.gc_version + 1;
  n

(* ------------------------------------------------------------------ *)
(* BGC dirtiness epoch (economical collection).

   The composite epoch folds every input a local collection reads: the
   store (objects, forwarders, field writes), the directory (records,
   ownership, entering entries) and the per-node GC state (roots,
   scions).  A (node, bunch) pair whose epoch is unchanged since the end
   of its previous collection would recompute exactly the same live set
   and tables — the collection is skipped outright.  Crash/restart wipes
   the per-node state, so a recovering node always collects for real. *)

let dirty_epoch t ~node =
  let ns = node_state t node in
  ns.gc_version
  + Bmx_memory.Store.mut_version (Bmx_dsm.Protocol.store t.proto node)
  + Bmx_dsm.Directory.mut_version (Bmx_dsm.Protocol.directory t.proto node)

let bgc_clean t ~node ~bunch =
  let ns = node_state t node in
  match Ids.Bunch_tbl.find_opt ns.last_bgc bunch with
  | Some e -> e = dirty_epoch t ~node
  | None -> false

let note_bgc_epoch t ~node ~bunch =
  let ns = node_state t node in
  Ids.Bunch_tbl.replace ns.last_bgc bunch (dirty_epoch t ~node)

let has_inter_scions_from t ~node ~bunch ~src =
  match Ids.Bunch_tbl.find_opt (node_state t node).inter_scions bunch with
  | None -> false
  | Some tb -> t_has_node tb src

let has_intra_scions_from t ~node ~bunch ~src =
  match Ids.Bunch_tbl.find_opt (node_state t node).intra_scions bunch with
  | None -> false
  | Some tb -> t_has_node tb src

let inter_stubs_with_src t ~node ~bunch ~uid =
  match Ids.Bunch_tbl.find_opt (node_state t node).inter_stubs bunch with
  | None -> []
  | Some tb -> t_by_uid2 tb uid

let intra_stubs_for_uid t ~node ~bunch ~uid =
  match Ids.Bunch_tbl.find_opt (node_state t node).intra_stubs bunch with
  | None -> []
  | Some tb -> t_by_uid tb uid

let inter_scions_for_uid t ~node ~bunch ~uid =
  match Ids.Bunch_tbl.find_opt (node_state t node).inter_scions bunch with
  | None -> []
  | Some tb -> t_by_uid tb uid

(* ------------------------------------------------------------------ *)
(* Delta-table journal (sender side).                                  *)

type stub_delta = {
  sd_add_inter : Ssp.inter_key list;
  sd_del_inter : Ssp.inter_key list;
  sd_add_intra : Ssp.intra_key list;
  sd_del_intra : Ssp.intra_key list;
  sd_add_exiting : (Ids.Uid.t * Ids.Node.t) list;
  sd_del_exiting : (Ids.Uid.t * Ids.Node.t) list;
}

let split_touched tb =
  Hashtbl.fold
    (fun k () (added, removed) ->
      if Hashtbl.mem tb.key_count k then (k :: added, removed)
      else (added, k :: removed))
    tb.touched ([], [])

let find_pair_tbl tbl bunch =
  match Ids.Bunch_tbl.find_opt tbl bunch with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 16 in
      Ids.Bunch_tbl.add tbl bunch h;
      h

let note_exiting t ~node ~bunch exiting =
  (* Reflect the list the BGC just produced in the journal: every entry
     whose presence flips (in either direction) is marked touched, so
     cumulative deltas also cover entries that appeared and vanished
     again between two rebases. *)
  let ns = node_state t node in
  let cur = find_pair_tbl ns.exiting_cur bunch in
  let touched = find_pair_tbl ns.exiting_touched bunch in
  let next = Hashtbl.create (max 16 (2 * List.length exiting)) in
  List.iter (fun e -> Hashtbl.replace next e ()) exiting;
  Hashtbl.iter
    (fun e () -> if not (Hashtbl.mem next e) then Hashtbl.replace touched e ())
    cur;
  Hashtbl.iter
    (fun e () -> if not (Hashtbl.mem cur e) then Hashtbl.replace touched e ())
    next;
  Hashtbl.reset cur;
  Hashtbl.iter (fun e () -> Hashtbl.replace cur e ()) next

let current_exiting t ~node ~bunch =
  match Ids.Bunch_tbl.find_opt (node_state t node).exiting_cur bunch with
  | None -> []
  | Some h -> Hashtbl.fold (fun e () acc -> e :: acc) h []

let stub_delta t ~node ~bunch =
  let ns = node_state t node in
  let add_inter, del_inter =
    match Ids.Bunch_tbl.find_opt ns.inter_stubs bunch with
    | None -> ([], [])
    | Some tb -> split_touched tb
  in
  let add_intra, del_intra =
    match Ids.Bunch_tbl.find_opt ns.intra_stubs bunch with
    | None -> ([], [])
    | Some tb -> split_touched tb
  in
  let add_exiting, del_exiting =
    match
      ( Ids.Bunch_tbl.find_opt ns.exiting_touched bunch,
        Ids.Bunch_tbl.find_opt ns.exiting_cur bunch )
    with
    | None, _ -> ([], [])
    | Some touched, cur ->
        let present e =
          match cur with Some c -> Hashtbl.mem c e | None -> false
        in
        Hashtbl.fold
          (fun e () (a, d) -> if present e then (e :: a, d) else (a, e :: d))
          touched ([], [])
  in
  {
    sd_add_inter = add_inter;
    sd_del_inter = del_inter;
    sd_add_intra = add_intra;
    sd_del_intra = del_intra;
    sd_add_exiting = add_exiting;
    sd_del_exiting = del_exiting;
  }

let rebase_stub_journal t ~node ~bunch =
  let ns = node_state t node in
  (match Ids.Bunch_tbl.find_opt ns.inter_stubs bunch with
  | Some tb -> Hashtbl.reset tb.touched
  | None -> ());
  (match Ids.Bunch_tbl.find_opt ns.intra_stubs bunch with
  | Some tb -> Hashtbl.reset tb.touched
  | None -> ());
  (match Ids.Bunch_tbl.find_opt ns.exiting_touched bunch with
  | Some h -> Hashtbl.reset h
  | None -> ());
  match Ids.Bunch_tbl.find_opt ns.since_rebase bunch with
  | Some r -> incr r
  | None -> Ids.Bunch_tbl.add ns.since_rebase bunch (ref 1)

let broadcast_round t ~node ~bunch =
  match Ids.Bunch_tbl.find_opt (node_state t node).since_rebase bunch with
  | Some r -> !r
  | None -> 0

let dest_basis t ~node ~bunch ~dest =
  Hashtbl.find_opt (node_state t node).dest_basis (bunch, dest)

let record_dest_basis t ~node ~bunch ~dest ~round ~basis =
  Hashtbl.replace (node_state t node).dest_basis (bunch, dest) (round, basis)

(* ------------------------------------------------------------------ *)
(* Delta-table mirrors (receiver side).                                *)

let mirror_reset t ~node ~sender ~bunch ~basis ~inter ~intra ~exiting =
  let ns = node_state t node in
  let m =
    {
      mi_basis = basis;
      mi_inter = Hashtbl.create (max 16 (2 * List.length inter));
      mi_intra = Hashtbl.create (max 16 (2 * List.length intra));
      mi_exiting = Hashtbl.create (max 16 (2 * List.length exiting));
    }
  in
  List.iter (fun s -> Hashtbl.replace m.mi_inter (Ssp.inter_stub_key s) ()) inter;
  List.iter (fun s -> Hashtbl.replace m.mi_intra (Ssp.intra_stub_key s) ()) intra;
  List.iter (fun e -> Hashtbl.replace m.mi_exiting e ()) exiting;
  Hashtbl.replace ns.mirrors (sender, bunch) m

let mirror_find t ~node ~sender ~bunch =
  Hashtbl.find_opt (node_state t node).mirrors (sender, bunch)

let mirror_basis t ~node ~sender ~bunch =
  Option.map (fun m -> m.mi_basis) (mirror_find t ~node ~sender ~bunch)

let mirror_apply t ~node ~sender ~bunch ~basis ~seq ~add_inter ~del_inter
    ~add_intra ~del_intra ~add_exiting ~del_exiting =
  match mirror_find t ~node ~sender ~bunch with
  | Some m when m.mi_basis = basis ->
      (* The delta covers every key touched since its basis, so deletions
         are applied before additions: a key removed and later re-added
         appears only on the add side and must end up present. *)
      List.iter (Hashtbl.remove m.mi_inter) del_inter;
      List.iter (fun k -> Hashtbl.replace m.mi_inter k ()) add_inter;
      List.iter (Hashtbl.remove m.mi_intra) del_intra;
      List.iter (fun k -> Hashtbl.replace m.mi_intra k ()) add_intra;
      List.iter (Hashtbl.remove m.mi_exiting) del_exiting;
      List.iter (fun e -> Hashtbl.replace m.mi_exiting e ()) add_exiting;
      (* Basis chaining: this message's transport seq is what the
         sender's next delta on this stream will name as its basis. *)
      m.mi_basis <- seq;
      true
  | Some _ | None -> false

let mirror_covers_inter t ~node ~sender ~bunch (scion : Ssp.inter_scion) =
  match mirror_find t ~node ~sender ~bunch with
  | None -> false
  | Some m -> Hashtbl.mem m.mi_inter (Ssp.inter_scion_key scion)

let mirror_covers_intra t ~node ~sender ~bunch ~holder (scion : Ssp.intra_scion) =
  match mirror_find t ~node ~sender ~bunch with
  | None -> false
  | Some m -> Hashtbl.mem m.mi_intra (Ssp.intra_scion_key ~holder scion)

let mirror_exiting t ~node ~sender ~bunch =
  match mirror_find t ~node ~sender ~bunch with
  | None -> []
  | Some m -> Hashtbl.fold (fun e () acc -> e :: acc) m.mi_exiting []

let mirror_claims_target t ~node ~sender uid =
  let ns = node_state t node in
  Hashtbl.fold
    (fun (s, _) m hit ->
      hit
      || Ids.Node.equal s sender
         && Hashtbl.fold
              (fun (_, _, _, target) () hit -> hit || Ids.Uid.equal target uid)
              m.mi_inter false)
    ns.mirrors false

let mirror_inter_keys t ~node ~sender ~bunch =
  match mirror_find t ~node ~sender ~bunch with
  | None -> []
  | Some m -> Hashtbl.fold (fun k () acc -> k :: acc) m.mi_inter []

(* ------------------------------------------------------------------ *)

let last_exiting t ~node ~bunch =
  match Ids.Bunch_tbl.find_opt (node_state t node).last_exiting bunch with
  | Some r -> !r
  | None -> []

let record_exiting t ~node ~bunch exiting =
  Ids.Bunch_tbl.replace (node_state t node).last_exiting bunch (ref exiting)

let last_broadcast_dests t ~node ~bunch =
  match Ids.Bunch_tbl.find_opt (node_state t node).last_dests bunch with
  | Some r -> !r
  | None -> []

let record_broadcast_dests t ~node ~bunch dests =
  Ids.Bunch_tbl.replace (node_state t node).last_dests bunch (ref dests)

let last_table_seq t ~node ~sender ~bunch =
  Hashtbl.find_opt (node_state t node).last_seq (sender, bunch)

let record_table_seq t ~node ~sender ~bunch ~seq =
  Hashtbl.replace (node_state t node).last_seq (sender, bunch) seq

let bunches_with_tables t ~node =
  let ns = node_state t node in
  let collect tbl acc =
    Ids.Bunch_tbl.fold (fun b _ acc -> Ids.Bunch_set.add b acc) tbl acc
  in
  Ids.Bunch_set.elements
    (collect ns.inter_stubs
       (collect ns.intra_stubs
          (collect ns.inter_scions (collect ns.intra_scions Ids.Bunch_set.empty))))

let tbl_total tbl =
  Ids.Bunch_tbl.fold (fun _ tb acc -> acc + Hashtbl.length tb.members) tbl 0

let sample_ssp_gauges t ~node =
  match t.obs with
  | None -> ()
  | Some m ->
      let ns = node_state t node in
      let set name v = Bmx_obs.Metrics.set_gauge m ~node name v in
      (* [tbl_total] folds over per-bunch tables — O(bunches), never
         O(entries), and bunches don't grow with the heap. *)
      Bmx_util.Perfcount.counters.Bmx_util.Perfcount.obs_sample_work <-
        Bmx_util.Perfcount.counters.Bmx_util.Perfcount.obs_sample_work
        + Ids.Bunch_tbl.length ns.inter_stubs
        + Ids.Bunch_tbl.length ns.intra_stubs
        + Ids.Bunch_tbl.length ns.inter_scions
        + Ids.Bunch_tbl.length ns.intra_scions;
      set "gc.stubs.inter" (tbl_total ns.inter_stubs);
      set "gc.stubs.intra" (tbl_total ns.intra_stubs);
      set "gc.scion_table.inter" (tbl_total ns.inter_scions);
      set "gc.scion_table.intra" (tbl_total ns.intra_scions)

(* Sampled at every GC / cleaner completion: must stay O(1) in the heap.
   The store maintains object, byte and segment counters on
   install/remove, so no iteration happens here — the complexity tests
   assert via [Perfcount.obs_sample_work] that sampling cost does not
   scale with the object population. *)
let sample_node_gauges t ~node =
  match t.obs with
  | None -> ()
  | Some m ->
      let store = Bmx_dsm.Protocol.store t.proto node in
      let module Store = Bmx_memory.Store in
      let set name v = Bmx_obs.Metrics.set_gauge m ~node name v in
      Bmx_util.Perfcount.counters.Bmx_util.Perfcount.obs_sample_work <-
        Bmx_util.Perfcount.counters.Bmx_util.Perfcount.obs_sample_work + 3;
      set "gc.heap.objects" (Store.object_count store);
      set "gc.heap.bytes" (Store.objects_bytes store);
      set "gc.heap.segments" (Store.segment_count store);
      sample_ssp_gauges t ~node

let pp_node t ppf node =
  let ns = node_state t node in
  Format.fprintf ppf "@[<v>node %a gc-state:@," Ids.Node.pp node;
  Ids.Bunch_tbl.iter
    (fun b tb ->
      List.iter (fun s -> Format.fprintf ppf "  %a@," Ssp.pp_inter_stub s) tb.view;
      ignore b)
    ns.inter_stubs;
  Ids.Bunch_tbl.iter
    (fun _ tb ->
      List.iter (fun s -> Format.fprintf ppf "  %a@," Ssp.pp_intra_stub s) tb.view)
    ns.intra_stubs;
  Ids.Bunch_tbl.iter
    (fun _ tb ->
      List.iter (fun s -> Format.fprintf ppf "  %a@," Ssp.pp_inter_scion s) tb.view)
    ns.inter_scions;
  Ids.Bunch_tbl.iter
    (fun _ tb ->
      List.iter (fun s -> Format.fprintf ppf "  %a@," Ssp.pp_intra_scion s) tb.view)
    ns.intra_scions;
  Format.fprintf ppf "@]"
