bench/micro.ml: Analyze Bechamel Benchmark Bmx Bmx_dsm Bmx_memory Bmx_util Bmx_workload Hashtbl Instance List Measure Printf Staged Test Time Toolkit
