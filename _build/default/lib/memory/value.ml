type t = Ref of Bmx_util.Addr.t | Data of int

let nil = Ref Bmx_util.Addr.null
let is_pointer = function Ref a -> not (Bmx_util.Addr.is_null a) | Data _ -> false

let equal v1 v2 =
  match (v1, v2) with
  | Ref a, Ref b -> Bmx_util.Addr.equal a b
  | Data x, Data y -> Int.equal x y
  | Ref _, Data _ | Data _, Ref _ -> false

let pp ppf = function
  | Ref a when Bmx_util.Addr.is_null a -> Format.pp_print_string ppf "nil"
  | Ref a -> Format.fprintf ppf "&%a" Bmx_util.Addr.pp a
  | Data n -> Format.fprintf ppf "#%d" n
