lib/memory/value.ml: Bmx_util Format Int
