module Protocol = Bmx_dsm.Protocol
module Store = Bmx_memory.Store


(* Acquire the write token for every local object of the bunches: the
   "single consistent copy" precondition strongly-consistent collectors
   assume.  Attributed to the collector in the DSM counters. *)
let token_sweep gc ~node ~bunches =
  let proto = Bmx_gc.Gc_state.proto gc in
  let store = Protocol.store proto node in
  List.iter
    (fun bunch ->
      List.iter
        (fun (addr, _obj) ->
          let addr' = Protocol.acquire proto ~actor:Protocol.Gc ~node addr `Write in
          Protocol.release proto ~node addr')
        (Store.objects_of_bunch store bunch))
    bunches

let run gc ~node ~bunch =
  token_sweep gc ~node ~bunches:[ bunch ];
  Bmx_gc.Collect.run gc ~node ~bunches:[ bunch ] ~group_mode:false ()

let run_world gc ~node =
  let proto = Bmx_gc.Gc_state.proto gc in
  let bunches = Store.mapped_bunches (Protocol.store proto node) in
  token_sweep gc ~node ~bunches;
  Bmx_gc.Collect.run gc ~node ~bunches ~group_mode:false ()
