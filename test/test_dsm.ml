open Bmx_util
module Cluster = Bmx.Cluster
module Protocol = Bmx_dsm.Protocol
module Directory = Bmx_dsm.Directory
module Store = Bmx_memory.Store
module Value = Bmx_memory.Value
module Net = Bmx_netsim.Net

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_opt_int = check (Alcotest.option Alcotest.int)

let state c node addr =
  let proto = Cluster.proto c in
  let uid = Cluster.uid_at c ~node addr in
  match Directory.find (Protocol.directory proto node) uid with
  | Some r -> Some r.Directory.state
  | None -> None

let two_nodes () =
  let c = Cluster.create ~nodes:2 () in
  let b = Cluster.new_bunch c ~home:0 in
  (c, b)

(* -------------------------------------------------------------- acquire *)

let test_alloc_owner_has_write_token () =
  let c, b = two_nodes () in
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  check_bool "creator owns" true (Cluster.owner_of c ~uid:(Cluster.uid_at c ~node:0 a) = Some 0);
  check_bool "write state" true (state c 0 a = Some Directory.Write)

let test_read_acquire_replicates () =
  let c, b = two_nodes () in
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 42 |] in
  let a1 = Cluster.acquire_read c ~node:1 a in
  check_bool "copy cached at N1" true
    (Cluster.cached_at c ~node:1 ~uid:(Cluster.uid_at c ~node:0 a));
  check_bool "reader state" true (state c 1 a1 = Some Directory.Read);
  check_bool "owner downgraded to read" true (state c 0 a = Some Directory.Read);
  check_bool "data visible" true
    (Value.equal (Cluster.read c ~node:1 a1 0) (Value.Data 42));
  Cluster.release c ~node:1 a1

let test_write_acquire_transfers_ownership () =
  let c, b = two_nodes () in
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let uid = Cluster.uid_at c ~node:0 a in
  let a1 = Cluster.acquire_write c ~node:1 a in
  check_opt_int "N1 owns now" (Some 1) (Cluster.owner_of c ~uid);
  check_bool "N1 write state" true (state c 1 a1 = Some Directory.Write);
  check_bool "old owner invalid" true (state c 0 a = Some Directory.Invalid);
  Cluster.write c ~node:1 a1 0 (Value.Data 2);
  Cluster.release c ~node:1 a1;
  (* N0 reacquires and sees the new value: the consistency guarantee. *)
  let a0 = Cluster.acquire_read c ~node:0 a in
  check_bool "N0 sees write" true (Value.equal (Cluster.read c ~node:0 a0 0) (Value.Data 2));
  Cluster.release c ~node:0 a0

let test_write_invalidates_readers () =
  let c = Cluster.create ~nodes:4 () in
  let b = Cluster.new_bunch c ~home:0 in
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  List.iter
    (fun n ->
      let an = Cluster.acquire_read c ~node:n a in
      Cluster.release c ~node:n an)
    [ 1; 2; 3 ];
  let before = Stats.get (Cluster.stats c) "dsm.app.invalidations" in
  let a3 = Cluster.acquire_write c ~node:3 a in
  Cluster.release c ~node:3 a3;
  check_bool "read copies invalidated" true
    (state c 1 a = Some Directory.Invalid && state c 2 a = Some Directory.Invalid);
  check_bool "invalidation messages counted" true
    (Stats.get (Cluster.stats c) "dsm.app.invalidations" > before)

let test_local_reacquire_free () =
  let c, b = two_nodes () in
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let msgs_before = Net.total_messages (Cluster.net c) in
  let a' = Cluster.acquire_write c ~node:0 a in
  Cluster.release c ~node:0 a';
  check_int "no messages for local reacquire" msgs_before
    (Net.total_messages (Cluster.net c));
  check_int "local hit counted" 1 (Stats.get (Cluster.stats c) "dsm.app.acquire_local")

let test_held_token_conflicts () =
  let c, b = two_nodes () in
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let a0 = Cluster.acquire_write c ~node:0 a in
  Alcotest.check_raises "write held blocks write"
    (Failure "Protocol.acquire: write token held elsewhere") (fun () ->
      ignore (Cluster.acquire_write c ~node:1 a));
  Alcotest.check_raises "write held blocks read"
    (Failure "Protocol.acquire: write token held elsewhere") (fun () ->
      ignore (Cluster.acquire_read c ~node:1 a));
  Cluster.release c ~node:0 a0;
  let a1 = Cluster.acquire_read c ~node:1 a in
  Cluster.release c ~node:1 a1

let test_read_token_from_reader_distributed () =
  (* In distributed mode a read token can come from any reader; the
     owner need not be involved. *)
  let c = Cluster.create ~nodes:3 ~mode:Protocol.Distributed () in
  let b = Cluster.new_bunch c ~home:0 in
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let a1 = Cluster.acquire_read c ~node:1 a in
  Cluster.release c ~node:1 a1;
  (* N2's ownerPtr points at N0; but if N2 learned about the object from
     N1 it may be granted by N1.  Either way the data arrives and the
     copyset tree stays rooted at the owner. *)
  let a2 = Cluster.acquire_read c ~node:2 a in
  check_bool "N2 reads" true (Value.equal (Cluster.read c ~node:2 a2 0) (Value.Data 1));
  Cluster.release c ~node:2 a2;
  (* Invalidation from a write must reach every reader through the tree. *)
  let a0 = Cluster.acquire_write c ~node:0 a in
  Cluster.release c ~node:0 a0;
  check_bool "all readers invalidated" true
    (state c 1 a = Some Directory.Invalid && state c 2 a = Some Directory.Invalid)

let test_centralized_mode () =
  let c = Cluster.create ~nodes:3 ~mode:Protocol.Centralized () in
  let b = Cluster.new_bunch c ~home:0 in
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 5 |] in
  let a1 = Cluster.acquire_read c ~node:1 a in
  Cluster.release c ~node:1 a1;
  let a2 = Cluster.acquire_write c ~node:2 a in
  check_opt_int "ownership moved" (Some 2)
    (Cluster.owner_of c ~uid:(Cluster.uid_at c ~node:2 a2));
  Cluster.write c ~node:2 a2 0 (Value.Data 6);
  Cluster.release c ~node:2 a2;
  let a0 = Cluster.acquire_read c ~node:0 a in
  check_bool "value propagated" true
    (Value.equal (Cluster.read c ~node:0 a0 0) (Value.Data 6));
  Cluster.release c ~node:0 a0

let test_ownerptr_chain_and_compression () =
  (* N3 learns about the object early, so its ownerPtr goes stale as
     ownership hops 0 -> 1 -> 2.  Its eventual write acquire is forwarded
     along the chain 0 -> 1 -> 2 and compresses it. *)
  let c = Cluster.create ~nodes:4 () in
  let b = Cluster.new_bunch c ~home:0 in
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let uid = Cluster.uid_at c ~node:0 a in
  let a3 = Cluster.acquire_read c ~node:3 a in
  Cluster.release c ~node:3 a3;
  let a1 = Cluster.acquire_write c ~node:1 a in
  Cluster.release c ~node:1 a1;
  let a2 = Cluster.acquire_write c ~node:2 a1 in
  Cluster.release c ~node:2 a2;
  (* N3's ownerPtr still points at N0; the request must be forwarded
     0 -> 1 -> 2, counted as hops. *)
  let hops_before = Stats.get (Cluster.stats c) "dsm.app.hops" in
  let a3' = Cluster.acquire_write c ~node:3 a3 in
  Cluster.release c ~node:3 a3';
  check_opt_int "N3 owns" (Some 3) (Cluster.owner_of c ~uid);
  check_bool "request was forwarded along the chain" true
    (Stats.get (Cluster.stats c) "dsm.app.hops" >= hops_before + 2);
  (* After compression, N0's ownerPtr points directly at N3. *)
  (match Directory.find (Protocol.directory (Cluster.proto c) 0) uid with
  | Some r -> check_int "compressed" 3 r.Directory.prob_owner
  | None -> Alcotest.fail "N0 lost the record")

(* ------------------------------------------------------------ tokens/data *)

let test_read_requires_token () =
  let c, b = two_nodes () in
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let a1 = Cluster.acquire_read c ~node:1 a in
  Cluster.release c ~node:1 a1;
  let a0 = Cluster.acquire_write c ~node:0 a in
  Cluster.write c ~node:0 a0 0 (Value.Data 2);
  Cluster.release c ~node:0 a0;
  (* N1's copy is now inconsistent: strict reads fail, weak reads see
     the stale value (entry consistency's undefined state). *)
  Alcotest.check_raises "strict read without token"
    (Failure "Protocol.read_field: no read token (use ~weak for stale reads)")
    (fun () -> ignore (Cluster.read c ~node:1 a1 0));
  check_bool "weak read sees stale data" true
    (Value.equal (Cluster.read c ~weak:true ~node:1 a1 0) (Value.Data 1))

let test_write_requires_write_token () =
  let c, b = two_nodes () in
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let a1 = Cluster.acquire_read c ~node:1 a in
  Alcotest.check_raises "read token does not allow writes"
    (Failure "Protocol.write_field_raw: no write token") (fun () ->
      Cluster.write c ~node:1 a1 0 (Value.Data 9));
  Cluster.release c ~node:1 a1

let test_ptr_eq_follows_forwarders () =
  let c, b = two_nodes () in
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  (* Move the object via BGC (the owner copies it). *)
  Cluster.add_root c ~node:0 a;
  let _ = Cluster.bgc c ~node:0 ~bunch:b in
  let uid = Cluster.uid_at c ~node:0 a in
  let new_addr = Option.get (Store.addr_of_uid (Protocol.store (Cluster.proto c) 0) uid) in
  check_bool "moved" true (a <> new_addr);
  check_bool "old and new compare equal" true (Cluster.ptr_eq c ~node:0 a new_addr);
  let other = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 2 |] in
  check_bool "different objects differ" false (Cluster.ptr_eq c ~node:0 a other);
  check_bool "nil equals nil" true (Cluster.ptr_eq c ~node:0 Addr.null Addr.null);
  check_bool "nil differs from object" false (Cluster.ptr_eq c ~node:0 Addr.null a)

(* ------------------------------------------------- invariants 1 and 2 (§5) *)

let test_invariant1_acquire_returns_fresh_address () =
  let c, b = two_nodes () in
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 7 |] in
  Cluster.add_root c ~node:0 a;
  let _ = Cluster.bgc c ~node:0 ~bunch:b in
  (* N1 acquires using the stale address it knows; the grant must land it
     on a valid, current local address. *)
  let a1 = Cluster.acquire_read c ~node:1 a in
  check_bool "read works at granted address" true
    (Value.equal (Cluster.read c ~node:1 a1 0) (Value.Data 7));
  Cluster.release c ~node:1 a1

let test_invariant2_copyset_forwarding () =
  (* Build a genuine copy-set TREE for object o: N0 (owner) -> N1 -> N2,
     where N2's read token was granted by N1 (its stale ownerPtr pointed
     there).  Then a grant of another object p that references o carries
     o's new location to N1, and N1 must forward it to N2 — without o's
     copy-set ever being invalidated. *)
  let c = Cluster.create ~nodes:3 ~mode:Protocol.Distributed () in
  let b = Cluster.new_bunch c ~home:1 in
  (* o starts at N1 so that N2's first read makes its ownerPtr point at
     N1; ownership then moves to N0. *)
  let o = Cluster.alloc c ~node:1 ~bunch:b [| Value.Data 1 |] in
  let o_uid = Cluster.uid_at c ~node:1 o in
  let o_n2 = Cluster.acquire_read c ~node:2 o in
  Cluster.release c ~node:2 o_n2;
  let o_n0 = Cluster.acquire_write c ~node:0 o in
  Cluster.release c ~node:0 o_n0;
  Cluster.add_root c ~node:0 o_n0;
  (* Rebuild the read tree: N1 reads from owner N0; N2 re-reads through
     its stale ownerPtr (N1), landing in N1's copy-set. *)
  let o_n1 = Cluster.acquire_read c ~node:1 o in
  Cluster.release c ~node:1 o_n1;
  let o_n2 = Cluster.acquire_read c ~node:2 o_n2 in
  Cluster.release c ~node:2 o_n2;
  (* p -> o, owned by N0; the BGC at N0 moves both. *)
  let p = Cluster.alloc c ~node:0 ~bunch:b [| Value.Ref o_n0 |] in
  Cluster.add_root c ~node:0 p;
  let _ = Cluster.bgc c ~node:0 ~bunch:b in
  let fresh = Store.current_addr (Protocol.store (Cluster.proto c) 0) o_n0 in
  check_bool "o moved at N0" true (fresh <> o_n0);
  (* N1 acquires p for the first time: the grant piggybacks o's new
     location (invariant 1); N1 forwards it to its copy-set for o
     (invariant 2), reaching N2 in the background. *)
  let p_n1 = Cluster.acquire_read c ~node:1 p in
  Cluster.release c ~node:1 p_n1;
  let n1_store = Protocol.store (Cluster.proto c) 1 in
  check_opt_int "N1 knows o's new address" (Some fresh)
    (Store.addr_of_uid n1_store o_uid |> Option.map (Store.current_addr n1_store));
  ignore (Cluster.drain c);
  let n2_store = Protocol.store (Cluster.proto c) 2 in
  check_opt_int "N2 was informed transitively" (Some fresh)
    (Store.addr_of_uid n2_store o_uid |> Option.map (Store.current_addr n2_store))

let test_exiting_ownerptrs () =
  let c, b = two_nodes () in
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let a1 = Cluster.acquire_read c ~node:1 a in
  Cluster.release c ~node:1 a1;
  let uid = Cluster.uid_at c ~node:0 a in
  let exiting = Protocol.exiting_ownerptrs (Cluster.proto c) ~node:1 ~bunch:b in
  check_bool "N1 exits towards N0" true (List.mem (uid, 0) exiting);
  check_int "owner has no exiting ptr" 0
    (List.length (Protocol.exiting_ownerptrs (Cluster.proto c) ~node:0 ~bunch:b));
  (* Entering side mirrors it. *)
  let entering = Directory.entering (Protocol.directory (Cluster.proto c) 0) uid in
  check_bool "N0 sees entering from N1" true (Ids.Node_set.mem 1 entering)

(* ---------------------------------------------------- fault-driven mode *)

let test_demand_fetch_basics () =
  let c, b = two_nodes () in
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 33 |] in
  Cluster.add_root c ~node:0 a;
  let a1 = Cluster.demand_fetch c ~node:1 a in
  (* The copy is present but inconsistent: weak reads only. *)
  check_bool "weak read works" true
    (Value.equal (Cluster.read c ~weak:true ~node:1 a1 0) (Value.Data 33));
  Alcotest.check_raises "strict read still fails"
    (Failure "Protocol.read_field: no read token (use ~weak for stale reads)")
    (fun () -> ignore (Cluster.read c ~node:1 a1 0));
  (* The supplier registered the replica: the object survives the owner's
     BGC even with no root there beyond our fault. *)
  Cluster.remove_root c ~node:0 a;
  Cluster.add_root c ~node:1 a1;
  let r = Cluster.bgc c ~node:0 ~bunch:b in
  check_int "owner copy kept alive by the faulted replica" 0
    r.Bmx_gc.Collect.r_reclaimed;
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c))

let test_demand_fetch_carries_updates () =
  (* The supplier piggybacks new locations on the fault reply (§5). *)
  let c, b = two_nodes () in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let y = Cluster.alloc c ~node:0 ~bunch:b [| Value.Ref x |] in
  Cluster.add_root c ~node:0 y;
  let _ = Cluster.bgc c ~node:0 ~bunch:b in
  (* Fault y at N1: its reference to the moved x must be usable. *)
  let y1 = Cluster.demand_fetch c ~node:1 y in
  (match Cluster.read c ~weak:true ~node:1 y1 0 with
  | Value.Ref p ->
      let s1 = Protocol.store (Cluster.proto c) 1 in
      check_bool "referent address resolvable at N1" true
        (Store.resolve s1 p <> None
        || Protocol.uid_of_addr (Cluster.proto c) (Store.current_addr s1 p) <> None)
  | Value.Data _ -> Alcotest.fail "y.f0 should be a pointer");
  check_bool "fault counted" true (Stats.get (Cluster.stats c) "dsm.app.faults" > 0)

let test_demand_fetch_idempotent () =
  let c, b = two_nodes () in
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let a1 = Cluster.demand_fetch c ~node:1 a in
  let msgs = Bmx_netsim.Net.total_messages (Cluster.net c) in
  let a1' = Cluster.demand_fetch c ~node:1 a1 in
  check_int "second fault is a local hit" msgs
    (Bmx_netsim.Net.total_messages (Cluster.net c));
  check_int "same address" a1 a1'

(* The O(1) dsm.copyset.max gauge is a histogram maintained at every
   copyset mutation site; drive a workload through grants, invalidations,
   ownership transfers, reclaims and a crash, and after each phase check
   the cached maximum against a brute-force directory scan. *)
let test_copyset_max_gauge () =
  let c = Cluster.create ~nodes:4 ~seed:7 () in
  let proto = Cluster.proto c in
  let scan () =
    let best = ref 0 in
    List.iter
      (fun n ->
        Directory.iter (Protocol.directory proto n) (fun r ->
            let k = Ids.Node_set.cardinal r.Directory.copyset in
            if k > !best then best := k))
      (Protocol.nodes proto);
    !best
  in
  let gauge () =
    match
      Bmx_obs.Metrics.get
        (Bmx_obs.Metrics.snapshot (Cluster.metrics c))
        "dsm.copyset.max"
    with
    | Some (Bmx_obs.Metrics.Gauge v) -> v
    | _ -> Alcotest.fail "dsm.copyset.max gauge missing"
  in
  let agree phase = check_int ("gauge = scan " ^ phase) (scan ()) (gauge ()) in
  let b = Cluster.new_bunch c ~home:0 in
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1; Value.nil |] in
  Cluster.add_root c ~node:0 a;
  agree "after alloc";
  (* Spread read copies: copyset of the owner grows to 3. *)
  List.iter
    (fun n ->
      let a' = Cluster.acquire_read c ~node:n a in
      Cluster.release c ~node:n a')
    [ 1; 2; 3 ];
  agree "after read spread";
  (* A write invalidates every reader: max collapses. *)
  let a' = Cluster.acquire_write c ~node:1 a in
  Cluster.write c ~node:1 a' 0 (Value.Data 2);
  Cluster.release c ~node:1 a';
  agree "after write invalidation";
  (* Regrow, then crash the owner: its directory (and copysets) die. *)
  List.iter
    (fun n ->
      let a' = Cluster.acquire_read c ~node:n a in
      Cluster.release c ~node:n a')
    [ 0; 2 ];
  agree "after regrow";
  Cluster.crash_node c ~node:1;
  agree "after owner crash";
  ignore (Cluster.drain c);
  agree "after drain"

let () =
  Alcotest.run "dsm"
    [
      ( "tokens",
        [
          Alcotest.test_case "alloc grants write token" `Quick
            test_alloc_owner_has_write_token;
          Alcotest.test_case "read acquire replicates" `Quick test_read_acquire_replicates;
          Alcotest.test_case "write acquire transfers ownership" `Quick
            test_write_acquire_transfers_ownership;
          Alcotest.test_case "write invalidates readers" `Quick
            test_write_invalidates_readers;
          Alcotest.test_case "local reacquire is free" `Quick test_local_reacquire_free;
          Alcotest.test_case "held tokens conflict" `Quick test_held_token_conflicts;
          Alcotest.test_case "read grant from reader (distributed)" `Quick
            test_read_token_from_reader_distributed;
          Alcotest.test_case "centralized copy-sets" `Quick test_centralized_mode;
          Alcotest.test_case "ownerPtr chains compress" `Quick
            test_ownerptr_chain_and_compression;
        ] );
      ( "data",
        [
          Alcotest.test_case "reads need a token" `Quick test_read_requires_token;
          Alcotest.test_case "writes need the write token" `Quick
            test_write_requires_write_token;
          Alcotest.test_case "ptr_eq follows forwarders" `Quick
            test_ptr_eq_follows_forwarders;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "invariant 1: fresh addresses on acquire" `Quick
            test_invariant1_acquire_returns_fresh_address;
          Alcotest.test_case "invariant 2: copy-set forwarding" `Quick
            test_invariant2_copyset_forwarding;
          Alcotest.test_case "entering/exiting ownerPtrs" `Quick test_exiting_ownerptrs;
        ] );
      ( "fault-driven (§5)",
        [
          Alcotest.test_case "fetch installs an inconsistent copy" `Quick
            test_demand_fetch_basics;
          Alcotest.test_case "fetch carries location updates" `Quick
            test_demand_fetch_carries_updates;
          Alcotest.test_case "fetch is idempotent" `Quick test_demand_fetch_idempotent;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "copyset.max gauge stays exact" `Quick
            test_copyset_max_gauge;
        ] );
    ]
