(** Per-node garbage-collection state: stub and scion tables, mutator
    roots, and the FIFO bookkeeping of the scion cleaner (§3, §6.1).

    Tables are held per node per bunch — every cached copy of a bunch
    carries its own stub table and scion table (§3), which is what makes a
    replica collectable in isolation. *)

type node_state

type t

val create : proto:Bmx_dsm.Protocol.t -> t
val proto : t -> Bmx_dsm.Protocol.t
val stats : t -> Bmx_util.Stats.registry

val set_metrics : t -> Bmx_obs.Metrics.t -> unit
(** Attach a metrics registry for the occupancy gauges below. *)

val metrics : t -> Bmx_obs.Metrics.t option

val sample_node_gauges : t -> node:Bmx_util.Ids.Node.t -> unit(** Refresh the per-node occupancy gauges after a collection:
    [gc.heap.objects], [gc.heap.segments], [gc.stubs.inter/intra] and
    [gc.scion_table.inter/intra].  No-op without {!set_metrics}. *)

val sample_ssp_gauges : t -> node:Bmx_util.Ids.Node.t -> unit
(** Refresh just the stub/scion-table gauges (the cleaner calls this
    after pruning tables outside any collection). *)

val dirty_epoch : t -> node:Bmx_util.Ids.Node.t -> int
(** Composite mutation epoch of everything a local collection at [node]
    reads: store content, directory records/ownership/entering entries,
    GC roots and scion tables.  Monotone within a node's lifetime;
    deliberately NOT advanced by the bookkeeping a collection writes
    about itself (stub tables, exiting journals, broadcast bases), so a
    collection leaves the epoch where its own copies/reclaims put it. *)

val bgc_clean : t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t -> bool
(** Whether the epoch is unchanged since the end of the last recorded
    collection of [bunch] at [node] — in which case collecting again
    would recompute the identical live set, reclaim nothing, and
    rebroadcast identical tables. *)

val note_bgc_epoch :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t -> unit
(** Record the current epoch as the post-collection state of
    [bunch]@[node]; pairs with {!bgc_clean}. *)


val node_state : t -> Bmx_util.Ids.Node.t -> node_state
(** Created lazily per node. *)

val crash_node : t -> node:Bmx_util.Ids.Node.t -> unit
(** Drop the node's whole GC state (roots, SSP tables, cleaner
    freshness clocks, broadcast bookkeeping) — it died with the node's
    volatile memory.  The state regenerates lazily, empty. *)

(** {1 Mutator roots}

    The local root includes the mutator stacks (Figure 1). *)

val add_root : t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t -> unit
val remove_root : t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t -> unit
(** Removes one occurrence. *)

val roots : t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t list
val set_roots : t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t list -> unit

(** {1 Stub tables} *)

val inter_stubs :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t -> Ssp.inter_stub list

val intra_stubs :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t -> Ssp.intra_stub list

val add_inter_stub : t -> node:Bmx_util.Ids.Node.t -> Ssp.inter_stub -> unit
(** Idempotent (duplicate stubs are suppressed). *)

val add_intra_stub : t -> node:Bmx_util.Ids.Node.t -> Ssp.intra_stub -> unit

val replace_stub_tables :
  t ->
  node:Bmx_util.Ids.Node.t ->
  bunch:Bmx_util.Ids.Bunch.t ->
  inter:Ssp.inter_stub list ->
  intra:Ssp.intra_stub list ->
  unit
(** Install the tables a BGC reconstructed (§4.3). *)

(** {1 Scion tables} *)

val inter_scions :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t -> Ssp.inter_scion list
(** Scions protecting objects of [bunch] at [node]. *)

val intra_scions :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t -> Ssp.intra_scion list

val add_inter_scion : t -> node:Bmx_util.Ids.Node.t -> Ssp.inter_scion -> unit
(** Idempotent. *)

val add_intra_scion : t -> node:Bmx_util.Ids.Node.t -> Ssp.intra_scion -> unit

val remove_inter_scions :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> (Ssp.inter_scion -> bool) -> int
(** Remove scions satisfying the predicate; returns how many. *)

val remove_intra_scions :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> (Ssp.intra_scion -> bool) -> int

(** {1 Indexed queries}

    O(1)-ish views over the secondary indexes; all return the same
    records the list accessors above would surface, without walking the
    full table. *)

val has_inter_scions_from :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> src:Bmx_util.Ids.Node.t -> bool
(** Does [node] hold any inter-bunch scion for [bunch] whose stub lives
    at [src]?  (The cleaner's per-sender pruning guard.) *)

val has_intra_scions_from :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> src:Bmx_util.Ids.Node.t -> bool

val inter_stubs_with_src :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> uid:Bmx_util.Ids.Uid.t -> Ssp.inter_stub list
(** Inter-bunch stubs of [bunch] whose {e source} object is [uid] (the
    §5 invariant-3 write-transfer hook queries by source, not target). *)

val intra_stubs_for_uid :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> uid:Bmx_util.Ids.Uid.t -> Ssp.intra_stub list

val inter_scions_for_uid :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> uid:Bmx_util.Ids.Uid.t -> Ssp.inter_scion list

(** {1 Exiting-ownerPtr lists}

    The list a BGC last constructed for a bunch (§4.3); kept so the next
    broadcast can also reach nodes that dropped out of it. *)

val last_exiting :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> (Bmx_util.Ids.Uid.t * Bmx_util.Ids.Node.t) list

val record_exiting :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> (Bmx_util.Ids.Uid.t * Bmx_util.Ids.Node.t) list -> unit

val last_broadcast_dests :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> Bmx_util.Ids.Node.t list
(** Where the previous reachability broadcast for the bunch went.  A
    resend after a loss must still reach peers whose scions the replaced
    tables no longer mention (§6.1's retransmission tolerance). *)

val record_broadcast_dests :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> Bmx_util.Ids.Node.t list -> unit

(** {1 Delta reachability tables (§6.1, PR 4)}

    The cleaner ships table {e diffs} instead of full tables whenever a
    destination is known to sit on the previous round's basis.  The
    sender side journals every match key whose table presence flipped
    since the last {!rebase_stub_journal}; {!stub_delta} materialises the
    diff (covering {e every} touched key, so it is correct against any
    mirror state reached between the journal base and now).  The journal
    is rebased after every broadcast round; bases chain per message —
    each message's transport seq is the basis the next delta on that
    stream names, and a mismatch (loss, restart) makes the receiver pull
    a resync over the unreliable [Stub_table] channel.  The receiver
    side keeps per-(sender, bunch) mirrors keyed by basis id. *)

type stub_delta = {
  sd_add_inter : Ssp.inter_key list;
  sd_del_inter : Ssp.inter_key list;
  sd_add_intra : Ssp.intra_key list;
  sd_del_intra : Ssp.intra_key list;
  sd_add_exiting : (Bmx_util.Ids.Uid.t * Bmx_util.Ids.Node.t) list;
  sd_del_exiting : (Bmx_util.Ids.Uid.t * Bmx_util.Ids.Node.t) list;
}

val note_exiting :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> (Bmx_util.Ids.Uid.t * Bmx_util.Ids.Node.t) list -> unit
(** Reflect the exiting-ownerPtr list the BGC just produced in the
    journal: entries whose presence flips get marked touched, exactly
    like stub-table keys.  Call before {!stub_delta}. *)

val current_exiting :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> (Bmx_util.Ids.Uid.t * Bmx_util.Ids.Node.t) list
(** The exiting list as last journalled by {!note_exiting} (what a
    resync pull reads). *)

val stub_delta :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t -> stub_delta
(** Match keys touched since the journal base that are still present
    (adds) or now absent (dels).  Does not clear the journal.  Working
    at key granularity means a BGC rebuild that relocates targets but
    keeps the same edges contributes nothing. *)

val rebase_stub_journal :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t -> unit
(** Close the current broadcast round: clear the journal and advance
    {!broadcast_round}.  Call after every round's sends — the next
    round's deltas cover exactly one round of churn. *)

val broadcast_round :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t -> int
(** How many broadcast rounds this bunch has completed at [node].
    Resets only when the node crashes (state dies with it). *)

val dest_basis :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> dest:Bmx_util.Ids.Node.t -> (int * int) option
(** The [(round, seq)] of the last table message sent to [dest] for
    [bunch] — [None] until a first send.  [dest] is eligible for a
    delta only if [round] is the round just before the current one
    (otherwise it missed a round and the journal no longer covers the
    gap). *)

val record_dest_basis :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> dest:Bmx_util.Ids.Node.t -> round:int -> basis:int -> unit

val mirror_reset :
  t ->
  node:Bmx_util.Ids.Node.t ->
  sender:Bmx_util.Ids.Node.t ->
  bunch:Bmx_util.Ids.Bunch.t ->
  basis:int ->
  inter:Ssp.inter_stub list ->
  intra:Ssp.intra_stub list ->
  exiting:(Bmx_util.Ids.Uid.t * Bmx_util.Ids.Node.t) list ->
  unit
(** Install a full table received from [sender] as the new mirror. *)

val mirror_basis :
  t -> node:Bmx_util.Ids.Node.t -> sender:Bmx_util.Ids.Node.t
  -> bunch:Bmx_util.Ids.Bunch.t -> int option

val mirror_apply :
  t ->
  node:Bmx_util.Ids.Node.t ->
  sender:Bmx_util.Ids.Node.t ->
  bunch:Bmx_util.Ids.Bunch.t ->
  basis:int ->
  seq:int ->
  add_inter:Ssp.inter_key list ->
  del_inter:Ssp.inter_key list ->
  add_intra:Ssp.intra_key list ->
  del_intra:Ssp.intra_key list ->
  add_exiting:(Bmx_util.Ids.Uid.t * Bmx_util.Ids.Node.t) list ->
  del_exiting:(Bmx_util.Ids.Uid.t * Bmx_util.Ids.Node.t) list ->
  bool
(** Apply a delta and advance the mirror basis to [seq] (the transport
    seq that delivered it — the basis the sender's next delta names);
    [false] (and no change) if there is no mirror or its basis differs
    from [basis] — the caller must resync. *)

val mirror_covers_inter :
  t -> node:Bmx_util.Ids.Node.t -> sender:Bmx_util.Ids.Node.t
  -> bunch:Bmx_util.Ids.Bunch.t -> Ssp.inter_scion -> bool
(** Does the mirrored table contain a stub matching this scion (the
    cleaner's §6.1 deletion test, O(1))? *)

val mirror_covers_intra :
  t -> node:Bmx_util.Ids.Node.t -> sender:Bmx_util.Ids.Node.t
  -> bunch:Bmx_util.Ids.Bunch.t -> holder:Bmx_util.Ids.Node.t
  -> Ssp.intra_scion -> bool

val mirror_exiting :
  t -> node:Bmx_util.Ids.Node.t -> sender:Bmx_util.Ids.Node.t
  -> bunch:Bmx_util.Ids.Bunch.t
  -> (Bmx_util.Ids.Uid.t * Bmx_util.Ids.Node.t) list
(** The complete exiting list reassembled from fulls and deltas — what
    the entering reconciliation consumes. *)

val mirror_claims_target :
  t -> node:Bmx_util.Ids.Node.t -> sender:Bmx_util.Ids.Node.t
  -> Bmx_util.Ids.Uid.t -> bool
(** Does {e any} table mirrored from [sender] (whatever its source
    bunch) still hold an inter-bunch stub targeting [uid]?  The entering
    reconciliation uses this as a keep-alive: after the scion side of an
    SSP dies with a crash, the recovered owner's only protection is a
    checkpoint-restored entering entry, and that entry must not be
    retired while the claimant's stub survives. *)

val mirror_inter_keys :
  t -> node:Bmx_util.Ids.Node.t -> sender:Bmx_util.Ids.Node.t
  -> bunch:Bmx_util.Ids.Bunch.t -> Ssp.inter_key list
(** Every inter-bunch stub key mirrored from [sender]'s copy of
    [bunch] — the cleaner walks these to re-assert protection for
    stub targets whose scion did not survive a crash. *)

(** {1 Scion-cleaner FIFO state (§6.1)} *)

val last_table_seq :
  t -> node:Bmx_util.Ids.Node.t -> sender:Bmx_util.Ids.Node.t
  -> bunch:Bmx_util.Ids.Bunch.t -> int option

val record_table_seq :
  t -> node:Bmx_util.Ids.Node.t -> sender:Bmx_util.Ids.Node.t
  -> bunch:Bmx_util.Ids.Bunch.t -> seq:int -> unit

(** {1 Introspection} *)

val bunches_with_tables : t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Ids.Bunch.t list
val pp_node : t -> Format.formatter -> Bmx_util.Ids.Node.t -> unit
