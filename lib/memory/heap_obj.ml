open Bmx_util

type t = {
  uid : Ids.Uid.t;
  bunch : Ids.Bunch.t;
  fields : Value.t array;
  mutable version : int;
}

let make ?(version = 0) ~uid ~bunch ~fields () =
  { uid; bunch; fields; version }
let num_fields t = Array.length t.fields
let header_bytes = 2 * Addr.word
let size_bytes t = header_bytes + (num_fields t * Addr.word)
let get t i = t.fields.(i)

let set t i v =
  t.fields.(i) <- v;
  t.version <- t.version + 1

let fixup t i v = t.fields.(i) <- v

let clone t =
  { uid = t.uid; bunch = t.bunch; fields = Array.copy t.fields; version = t.version }

let overwrite t ~from =
  if t.uid <> from.uid then invalid_arg "Heap_obj.overwrite: uid mismatch";
  if Array.length t.fields <> Array.length from.fields then
    invalid_arg "Heap_obj.overwrite: arity mismatch";
  Array.blit from.fields 0 t.fields 0 (Array.length t.fields);
  t.version <- from.version

let pointers t =
  Array.fold_right
    (fun v acc -> match v with Value.Ref a when not (Addr.is_null a) -> a :: acc | _ -> acc)
    t.fields []

let pp ppf t =
  Format.fprintf ppf "@[<h>%a@%a{%a}@]" Ids.Uid.pp t.uid Ids.Bunch.pp t.bunch
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") Value.pp)
    (Array.to_list t.fields)
