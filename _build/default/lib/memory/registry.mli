(** The BMX-server's segment registry.

    A BMX-server runs on every node and provides allocation of
    non-overlapping segments (§8).  We centralize that service: the
    registry is the single authority handing out address ranges, so no two
    segments — whether allocation spaces or to-spaces created by concurrent
    BGCs on different replicas — can ever collide.  This is what lets the
    owner of an object pick its new to-space address unilaterally (§4.2):
    the address is globally fresh by construction. *)

type entry = {
  range : Bmx_util.Addr.Range.t;
  bunch : Bmx_util.Ids.Bunch.t;
  origin : Bmx_util.Ids.Node.t;  (** node the range was handed to *)
}

type t

val create : ?first_addr:Bmx_util.Addr.t -> unit -> t
(** Ranges are carved sequentially starting at [first_addr] (default one
    page past null, so that null is never inside a segment). *)

val alloc_range :
  t ->
  bunch:Bmx_util.Ids.Bunch.t ->
  origin:Bmx_util.Ids.Node.t ->
  ?bytes:int ->
  unit ->
  Bmx_util.Addr.Range.t
(** A fresh, globally non-overlapping range ([bytes] defaults to
    {!Segment.default_bytes}), registered to [bunch]. *)

val find : t -> Bmx_util.Addr.t -> entry option
(** The entry whose range contains the address, if any. *)

val bunch_of_addr : t -> Bmx_util.Addr.t -> Bmx_util.Ids.Bunch.t option

val entries_of_bunch : t -> Bmx_util.Ids.Bunch.t -> entry list
(** All ranges registered to the bunch, oldest first. *)

val total_bytes : t -> int
(** Total address-space bytes handed out so far. *)
