open Bmx_util
module T = Trace_event

type track = Dsm | Gc | Net | Cleaner

let track_name = function
  | Dsm -> "dsm"
  | Gc -> "gc"
  | Net -> "net"
  | Cleaner -> "cleaner"

let all_tracks = [ Dsm; Gc; Net; Cleaner ]

type t = {
  name : string;
  node : Ids.Node.t;
  track : track;
  ts : int;
  dur : int option;
  args : (string * Json.t) list;
}

let tok_name = function T.Read -> "read" | T.Write -> "write"
let actor_name = function T.App -> "app" | T.Gc -> "gc"

(* Cleaner traffic is interesting precisely because the paper runs it
   asynchronously (§4.3, §6); give it its own track. *)
let msg_track kind =
  match kind with "scion_message" | "stub_table" -> Cleaner | _ -> Net

let of_events timed =
  let spans = ref [] in
  let emit s = spans := s :: !spans in
  (* Open begin-events waiting for their end.  Values carry the start
     timestamp plus whatever the end event can't reconstruct. *)
  let open_acq : (T.actor * Ids.Node.t * Ids.Uid.t * T.tok, int) Hashtbl.t =
    Hashtbl.create 32
  in
  let open_gc : (Ids.Node.t, int * bool * int) Hashtbl.t = Hashtbl.create 8 in
  let open_msg :
      (Ids.Node.t * Ids.Node.t * string * int, int * bool * int ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let open_down : (Ids.Node.t, int) Hashtbl.t = Hashtbl.create 4 in
  (* Cut links and suspect pairs open interval spans on the Net track:
     [Link_cut]/[Link_heal] and [Suspect on]/[Suspect off] bracket them. *)
  let open_cut : (Ids.Node.t * Ids.Node.t, int) Hashtbl.t = Hashtbl.create 8 in
  let open_suspect : (Ids.Node.t * Ids.Node.t, int) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (ts, ev) ->
      match ev with
      | T.Acquire_start { actor; node; uid; tok } ->
          Hashtbl.replace open_acq (actor, node, uid, tok) ts
      | T.Acquire_done { actor; node; uid; tok; addr_valid } ->
          let key = (actor, node, uid, tok) in
          let start =
            match Hashtbl.find_opt open_acq key with
            | Some s ->
                Hashtbl.remove open_acq key;
                s
            | None -> ts
          in
          emit
            {
              name = "acquire." ^ tok_name tok;
              node;
              track = (match actor with T.App -> Dsm | T.Gc -> Gc);
              ts = start;
              dur = Some (ts - start);
              args =
                [
                  ("uid", Json.Int uid);
                  ("actor", Json.String (actor_name actor));
                  ("addr_valid", Json.Bool addr_valid);
                ];
            }
      | T.Gc_begin { node; group; bunches } ->
          Hashtbl.replace open_gc node (ts, group, List.length bunches)
      | T.Gc_end { node; group; live; reclaimed } ->
          let start, bunches =
            match Hashtbl.find_opt open_gc node with
            | Some (s, _, b) ->
                Hashtbl.remove open_gc node;
                (s, b)
            | None -> (ts, 0)
          in
          emit
            {
              name = (if group then "gc.ggc" else "gc.bgc");
              node;
              track = Gc;
              ts = start;
              dur = Some (ts - start);
              args =
                [
                  ("bunches", Json.Int bunches);
                  ("live", Json.Int live);
                  ("reclaimed", Json.Int reclaimed);
                ];
            }
      | T.Msg_sent { src; dst; kind; seq; rel } ->
          Hashtbl.replace open_msg (src, dst, kind, seq) (ts, rel, ref 1)
      | T.Msg_retransmit { src; dst; kind; seq; attempt } ->
          (match Hashtbl.find_opt open_msg (src, dst, kind, seq) with
          | Some (_, _, attempts) -> attempts := attempt
          | None -> ());
          emit
            {
              name = "retransmit." ^ kind;
              node = src;
              track = msg_track kind;
              ts;
              dur = None;
              args =
                [
                  ("dst", Json.Int dst);
                  ("seq", Json.Int seq);
                  ("attempt", Json.Int attempt);
                ];
            }
      | T.Msg_delivered { src; dst; kind; seq; rel } ->
          let start, attempts =
            match Hashtbl.find_opt open_msg (src, dst, kind, seq) with
            | Some (s, _, a) ->
                Hashtbl.remove open_msg (src, dst, kind, seq);
                (s, !a)
            | None -> (ts, 1)
          in
          emit
            {
              name = "msg." ^ kind;
              node = src;
              track = msg_track kind;
              ts = start;
              dur = Some (ts - start);
              args =
                [
                  ("dst", Json.Int dst);
                  ("seq", Json.Int seq);
                  ("rel", Json.Bool rel);
                  ("attempts", Json.Int attempts);
                ];
            }
      | T.Msg_suppressed { src; dst; kind; seq } ->
          emit
            {
              name = "suppressed." ^ kind;
              node = dst;
              track = msg_track kind;
              ts;
              dur = None;
              args = [ ("src", Json.Int src); ("seq", Json.Int seq) ];
            }
      | T.Msg_buffered { src; dst; kind; seq } ->
          emit
            {
              name = "buffered." ^ kind;
              node = dst;
              track = msg_track kind;
              ts;
              dur = None;
              args = [ ("src", Json.Int src); ("seq", Json.Int seq) ];
            }
      | T.Crash { node } -> Hashtbl.replace open_down node ts
      | T.Restart { node } ->
          let start =
            match Hashtbl.find_opt open_down node with
            | Some s ->
                Hashtbl.remove open_down node;
                s
            | None -> ts
          in
          emit
            { name = "down"; node; track = Net; ts = start;
              dur = Some (ts - start); args = [] }
      | T.Link_cut { src; dst } -> Hashtbl.replace open_cut (src, dst) ts
      | T.Link_heal { src; dst } ->
          let start =
            match Hashtbl.find_opt open_cut (src, dst) with
            | Some s ->
                Hashtbl.remove open_cut (src, dst);
                s
            | None -> ts
          in
          emit
            { name = "partition"; node = src; track = Net; ts = start;
              dur = Some (ts - start); args = [ ("dst", Json.Int dst) ] }
      | T.Suspect { src; dst; on } ->
          if on then Hashtbl.replace open_suspect (src, dst) ts
          else
            let start =
              match Hashtbl.find_opt open_suspect (src, dst) with
              | Some s ->
                  Hashtbl.remove open_suspect (src, dst);
                  s
              | None -> ts
            in
            emit
              { name = "suspect"; node = src; track = Net; ts = start;
                dur = Some (ts - start); args = [ ("dst", Json.Int dst) ] }
      | T.Rvm_recover { node; dropped; lost } ->
          emit
            {
              name = "rvm.recover";
              node;
              track = Net;
              ts;
              dur = None;
              args =
                [ ("dropped", Json.Int dropped); ("lost", Json.Int lost) ];
            }
      | T.Disk_fault { node; fault } ->
          emit
            {
              name = "disk.fault";
              node;
              track = Net;
              ts;
              dur = None;
              args = [ ("fault", Json.String fault) ];
            }
      | T.Gc_phase { node; phase; us } ->
          (* Wall-clock phase cost pinned at its virtual-time completion
             point; the duration is real microseconds, not µsteps, so it
             rides along as an arg on an instant slice. *)
          emit
            {
              name = "gc.phase." ^ phase;
              node;
              track = Gc;
              ts;
              dur = None;
              args = [ ("wall_us", Json.Int us) ];
            }
      | T.Release _ | T.Grant_sent _ | T.Hook_ssp _ | T.Invalidate _
      | T.Updates_applied _ | T.Forward_due _ | T.Copyset_forward _
      | T.Rpc _ | T.Owner_adopted _ | T.Tables_processed _
      | T.Bunch_verified _ | T.Shard_alloc _ | T.Shard_adopted _
      | T.Read_obs _ | T.Write_obs _ ->
          ())
    timed;
  let unfinished name node track ts args =
    emit { name; node; track; ts; dur = None;
           args = ("unfinished", Json.Bool true) :: args }
  in
  Hashtbl.iter
    (fun (actor, node, uid, tok) ts ->
      unfinished ("acquire." ^ tok_name tok) node
        (match actor with T.App -> Dsm | T.Gc -> Gc)
        ts
        [ ("uid", Json.Int uid) ])
    open_acq;
  Hashtbl.iter
    (fun node (ts, group, _) ->
      unfinished (if group then "gc.ggc" else "gc.bgc") node Gc ts [])
    open_gc;
  Hashtbl.iter
    (fun (src, dst, kind, seq) (ts, rel, _) ->
      unfinished ("msg." ^ kind) src (msg_track kind) ts
        [ ("dst", Json.Int dst); ("seq", Json.Int seq); ("rel", Json.Bool rel) ])
    open_msg;
  Hashtbl.iter
    (fun node ts -> unfinished "down" node Net ts [])
    open_down;
  Hashtbl.iter
    (fun (src, dst) ts ->
      unfinished "partition" src Net ts [ ("dst", Json.Int dst) ])
    open_cut;
  Hashtbl.iter
    (fun (src, dst) ts ->
      unfinished "suspect" src Net ts [ ("dst", Json.Int dst) ])
    open_suspect;
  List.sort (fun a b -> compare (a.ts, a.node, a.name) (b.ts, b.node, b.name))
    !spans
