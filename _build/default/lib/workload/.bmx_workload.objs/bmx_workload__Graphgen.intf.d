lib/workload/graphgen.mli: Bmx Bmx_util
