lib/core/gc_state.ml: Addr Bmx_dsm Bmx_util Format Hashtbl Ids List Ssp
