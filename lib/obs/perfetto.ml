open Bmx_util

let track_tid = function
  | Span.Dsm -> 0
  | Span.Gc -> 1
  | Span.Net -> 2
  | Span.Cleaner -> 3

let metadata_events nodes =
  List.concat_map
    (fun node ->
      Json.Obj
        [
          ("ph", Json.String "M");
          ("pid", Json.Int node);
          ("name", Json.String "process_name");
          ("args", Json.Obj [ ("name", Json.String (Printf.sprintf "node %d" node)) ]);
        ]
      :: List.map
           (fun track ->
             Json.Obj
               [
                 ("ph", Json.String "M");
                 ("pid", Json.Int node);
                 ("tid", Json.Int (track_tid track));
                 ("name", Json.String "thread_name");
                 ("args", Json.Obj [ ("name", Json.String (Span.track_name track)) ]);
               ])
           Span.all_tracks)
    nodes

let span_event (s : Span.t) =
  let common =
    [
      ("pid", Json.Int s.Span.node);
      ("tid", Json.Int (track_tid s.Span.track));
      ("ts", Json.Int s.Span.ts);
      ("name", Json.String s.Span.name);
      ("cat", Json.String (Span.track_name s.Span.track));
      ("args", Json.Obj s.Span.args);
    ]
  in
  match s.Span.dur with
  | Some d ->
      Json.Obj (("ph", Json.String "X") :: common @ [ ("dur", Json.Int d) ])
  | None ->
      Json.Obj (("ph", Json.String "i") :: ("s", Json.String "t") :: common)

let to_json ?(extra = []) spans =
  let nodes =
    List.fold_left
      (fun acc (s : Span.t) -> Ids.Node_set.add s.Span.node acc)
      Ids.Node_set.empty spans
    |> Ids.Node_set.elements
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.List (metadata_events nodes @ List.map span_event spans @ extra) );
      ("displayTimeUnit", Json.String "ms");
    ]

let to_string ?extra spans = Json.to_string (to_json ?extra spans)

let write_file ?extra path spans =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string ?extra spans))
