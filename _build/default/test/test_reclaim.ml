(* From-space reuse (§4.5). *)

open Bmx_util
module Cluster = Bmx.Cluster
module Protocol = Bmx_dsm.Protocol
module Store = Bmx_memory.Store
module Segment = Bmx_memory.Segment
module Value = Bmx_memory.Value
module Reclaim = Bmx_gc.Reclaim

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let from_space_segments c node bunch =
  Store.segments_of_bunch (Protocol.store (Cluster.proto c) node) bunch
  |> List.filter (fun s -> s.Segment.role = Segment.From_space)

let test_reclaim_frees_single_node () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let head = Bmx_workload.Graphgen.linked_list c ~node:0 ~bunch:b ~len:20 in
  Cluster.add_root c ~node:0 head;
  let _ = Cluster.bgc c ~node:0 ~bunch:b in
  check_int "one from-space segment" 1 (List.length (from_space_segments c 0 b));
  let r = Cluster.reclaim_from_space c ~node:0 ~bunch:b in
  check_int "segment freed" 1 r.Reclaim.q_segments_freed;
  check_bool "forwarders dropped" true (r.Reclaim.q_forwarders_dropped >= 20);
  check_int "no from-space left" 0 (List.length (from_space_segments c 0 b));
  (* The heap is intact and usable. *)
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c));
  let head' = Store.current_addr (Protocol.store (Cluster.proto c) 0) head in
  check_bool "list still readable" true
    (match Cluster.read c ~node:0 head' 1 with Value.Data _ -> true | _ -> false)

let test_reclaim_asks_owner_to_copy () =
  (* N1 caches x but N0 owns it.  After N1's BGC, x sits (scanned, not
     copied) in N1's from-space; reclaiming it requires asking N0 to
     evacuate x. *)
  let c = Cluster.create ~nodes:2 () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 5 |] in
  Cluster.add_root c ~node:0 x;
  let x1 = Cluster.acquire_read c ~node:1 x in
  Cluster.release c ~node:1 x1;
  Cluster.add_root c ~node:1 x1;
  let r1 = Cluster.bgc c ~node:1 ~bunch:b in
  check_int "nothing copied at N1 (not owner)" 0 r1.Bmx_gc.Collect.r_copied;
  check_int "x scanned in place" 1 r1.Bmx_gc.Collect.r_scanned_in_place;
  let rr = Cluster.reclaim_from_space c ~node:1 ~bunch:b in
  check_int "owner was asked to copy" 1 rr.Reclaim.q_copy_requests;
  check_bool "owner-side copies counted" true
    (Stats.get (Cluster.stats c) "gc.reclaim.owner_copies" >= 1);
  ignore (Cluster.drain c);
  (* x survives at both nodes, outside the freed range. *)
  let uid = Cluster.uid_at c ~node:0 x in
  check_bool "x cached at N1" true (Cluster.cached_at c ~node:1 ~uid);
  check_bool "x cached at N0" true (Cluster.cached_at c ~node:0 ~uid);
  check_int "from-space gone at N1" 0 (List.length (from_space_segments c 1 b));
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c));
  (* N1 can still use its (moved) replica through the mutator API. *)
  let x1' = Cluster.acquire_read c ~node:1 x1 in
  check_bool "replica readable after reclaim" true
    (Value.equal (Cluster.read c ~node:1 x1' 0) (Value.Data 5));
  Cluster.release c ~node:1 x1'

let test_reclaim_broadcasts_updates () =
  let c = Cluster.create ~nodes:2 () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 5 |] in
  Cluster.add_root c ~node:0 x;
  let x1 = Cluster.acquire_read c ~node:1 x in
  Cluster.release c ~node:1 x1;
  Cluster.add_root c ~node:1 x1;
  (* Owner-side BGC moves x; the from-space holds the forwarder. *)
  let _ = Cluster.bgc c ~node:0 ~bunch:b in
  let r = Cluster.reclaim_from_space c ~node:0 ~bunch:b in
  check_bool "address changes broadcast" true (r.Reclaim.q_updates_broadcast >= 1);
  ignore (Cluster.drain c);
  (* N1 learned the new address through the background update. *)
  let uid = Cluster.uid_at c ~node:0 x in
  let n0 = Protocol.store (Cluster.proto c) 0 in
  let n1 = Protocol.store (Cluster.proto c) 1 in
  check (Alcotest.option Alcotest.int) "N1 converged on the new address"
    (Store.addr_of_uid n0 uid)
    (Option.map (Store.current_addr n1) (Store.addr_of_uid n1 uid));
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c))

let test_reclaim_reuses_bytes () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let head = Bmx_workload.Graphgen.linked_list c ~node:0 ~bunch:b ~len:50 in
  Cluster.add_root c ~node:0 head;
  let _ = Cluster.bgc c ~node:0 ~bunch:b in
  let r = Cluster.reclaim_from_space c ~node:0 ~bunch:b in
  check_bool "bytes accounted" true (r.Reclaim.q_bytes_freed >= Segment.default_bytes)

let test_reclaim_noop_without_from_space () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  ignore (Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |]);
  let r = Cluster.reclaim_from_space c ~node:0 ~bunch:b in
  check_int "nothing to free" 0 r.Reclaim.q_segments_freed

let () =
  Alcotest.run "reclaim"
    [
      ( "from-space reuse",
        [
          Alcotest.test_case "frees the segment on a single node" `Quick
            test_reclaim_frees_single_node;
          Alcotest.test_case "asks owners to copy live objects out" `Quick
            test_reclaim_asks_owner_to_copy;
          Alcotest.test_case "broadcasts address changes" `Quick
            test_reclaim_broadcasts_updates;
          Alcotest.test_case "accounts freed bytes" `Quick test_reclaim_reuses_bytes;
          Alcotest.test_case "no-op without from-space" `Quick
            test_reclaim_noop_without_from_space;
        ] );
    ]
