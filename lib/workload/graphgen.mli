(** Synthetic object-graph generators.

    The paper motivates BMX with applications whose object graphs are
    "very intricate" — financial or design databases, cooperative work,
    WWW-like exploratory tools (§1).  These generators build such shapes
    through the public mutator API, so every cross-bunch edge goes through
    the write barrier and gets its SSP. *)

val linked_list :
  Bmx.Cluster.t ->
  node:Bmx_util.Ids.Node.t ->
  bunch:Bmx_util.Ids.Bunch.t ->
  len:int ->
  Bmx_util.Addr.t
(** A singly linked list of [len] cells (field 0 = next, field 1 = data);
    returns the head.  The caller decides about roots. *)

val binary_tree :
  Bmx.Cluster.t ->
  node:Bmx_util.Ids.Node.t ->
  bunch:Bmx_util.Ids.Bunch.t ->
  depth:int ->
  Bmx_util.Addr.t
(** A complete binary tree of the given depth (fields: left, right, data);
    returns the root object. *)

val ring :
  Bmx.Cluster.t ->
  node:Bmx_util.Ids.Node.t ->
  bunch:Bmx_util.Ids.Bunch.t ->
  len:int ->
  Bmx_util.Addr.t
(** A cycle of [len] cells — garbage a reference-counting collector can
    never reclaim. *)

val cross_bunch_ring :
  Bmx.Cluster.t ->
  node:Bmx_util.Ids.Node.t ->
  bunches:Bmx_util.Ids.Bunch.t list ->
  len:int ->
  Bmx_util.Addr.t
(** A cycle whose consecutive cells round-robin over [bunches]: an
    inter-bunch cycle, the GGC's reason to exist (§7).  All bunches must
    be mapped at [node]. *)

val random_graph :
  ?window:int ->
  Bmx.Cluster.t ->
  rng:Bmx_util.Rng.t ->
  node:Bmx_util.Ids.Node.t ->
  bunches:Bmx_util.Ids.Bunch.t list ->
  objects:int ->
  out_degree:int ->
  cross_bunch_prob:float ->
  Bmx_util.Addr.t array
(** [objects] objects spread round-robin over [bunches], each with
    [out_degree] reference fields; each edge targets a uniform random
    object, preferring the same bunch except with [cross_bunch_prob].
    With [window > 0] (default 0 = unlimited) every edge from an object
    of bunch [b] stays within bunches [b .. b+window-1] (mod bunches):
    neighbouring bunches only, so cross-bunch structure does not densify
    as bunches are added — the scaling sweeps pair this with
    [Driver.config.locality].  Returns all objects (callers typically
    root a subset). *)
