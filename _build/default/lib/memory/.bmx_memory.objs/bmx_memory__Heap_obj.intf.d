lib/memory/heap_obj.mli: Bmx_util Format Value
