(* Persistence by reachability (§1, §2.1). *)

module Cluster = Bmx.Cluster
module Persist = Bmx.Persist
module Value = Bmx_memory.Value
module Rvm = Bmx_rvm.Rvm
module Graphgen = Bmx_workload.Graphgen

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let test_checkpoint_only_reachable () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let live = Graphgen.linked_list c ~node:0 ~bunch:b ~len:10 in
  let _garbage = Graphgen.linked_list c ~node:0 ~bunch:b ~len:7 in
  Cluster.add_root c ~node:0 live;
  let disk = Persist.create_disk () in
  let n = Persist.checkpoint c ~node:0 ~bunch:b disk in
  (* "Objects that are no longer reachable from the persistent root
     should not be stored on disk" (§1). *)
  check_int "exactly the reachable objects persisted" 10 n;
  check_int "disk holds them" 10 (Rvm.cardinal disk)

let test_checkpoint_retires_dead_entries () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let head = Graphgen.linked_list c ~node:0 ~bunch:b ~len:6 in
  Cluster.add_root c ~node:0 head;
  let disk = Persist.create_disk () in
  ignore (Persist.checkpoint c ~node:0 ~bunch:b disk);
  check_int "first image" 6 (Rvm.cardinal disk);
  (* Cut the list after the head: the tail dies; the next checkpoint
     must remove it from disk. *)
  let h = Cluster.acquire_write c ~node:0 head in
  Cluster.write c ~node:0 h 0 Value.nil;
  Cluster.release c ~node:0 h;
  let n = Persist.checkpoint c ~node:0 ~bunch:b disk in
  check_int "only the head persisted now" 1 n;
  check_int "stale cells retired from disk" 1 (Rvm.cardinal disk)

let test_checkpoint_scoped_to_bunch () =
  let c = Cluster.create ~nodes:1 () in
  let b1 = Cluster.new_bunch c ~home:0 in
  let b2 = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b2 [| Value.Data 2 |] in
  let y = Cluster.alloc c ~node:0 ~bunch:b1 [| Value.Ref x |] in
  Cluster.add_root c ~node:0 y;
  let disk = Persist.create_disk () in
  check_int "only b1's object persisted" 1 (Persist.checkpoint c ~node:0 ~bunch:b1 disk)

let test_restore_after_reboot () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let head = Graphgen.linked_list c ~node:0 ~bunch:b ~len:5 in
  Cluster.add_root c ~node:0 head;
  let disk = Persist.create_disk () in
  ignore (Persist.checkpoint c ~node:0 ~bunch:b disk);
  (* The disk crashes and recovers; a replacement node joins the cluster
     and restores the persistent state. *)
  Rvm.crash disk;
  Rvm.recover disk;
  let replacement = Cluster.add_node c in
  let n = Persist.restore c ~node:replacement disk in
  check_int "all cells restored" 5 n;
  check_bool "safety after restore" true (Result.is_ok (Bmx.Audit.check_safety c));
  (* The restored replica is readable (weak: it carries no token). *)
  check_bool "restored list readable" true
    (match Cluster.read c ~weak:true ~node:replacement head 1 with
    | Value.Data _ -> true
    | _ -> false);
  (* And the restored node can synchronize normally. *)
  let h = Cluster.acquire_read c ~node:replacement head in
  Cluster.release c ~node:replacement h;
  check_bool "token path works" true
    (match Cluster.read c ~node:replacement h 1 with Value.Data _ -> true | _ -> false)

let test_checkpoint_gc_checkpoint_cycle () =
  (* Checkpoints interleave with collections and stay consistent. *)
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let head = Graphgen.linked_list c ~node:0 ~bunch:b ~len:12 in
  Cluster.add_root c ~node:0 head;
  let disk = Persist.create_disk () in
  ignore (Persist.checkpoint c ~node:0 ~bunch:b disk);
  ignore (Cluster.bgc c ~node:0 ~bunch:b);
  (* Post-GC the objects moved; a new checkpoint persists the new image
     (addresses differ, contents same). *)
  let n = Persist.checkpoint c ~node:0 ~bunch:b disk in
  check_int "same object count after GC" 12 n;
  check_int "no duplicate cells" 12 (Rvm.cardinal disk)

let () =
  Alcotest.run "persist"
    [
      ( "persistence by reachability",
        [
          Alcotest.test_case "only reachable objects stored" `Quick
            test_checkpoint_only_reachable;
          Alcotest.test_case "dead entries retired" `Quick
            test_checkpoint_retires_dead_entries;
          Alcotest.test_case "scoped to the bunch" `Quick test_checkpoint_scoped_to_bunch;
          Alcotest.test_case "restore after reboot" `Quick test_restore_after_reboot;
          Alcotest.test_case "checkpoint/GC/checkpoint" `Quick
            test_checkpoint_gc_checkpoint_cycle;
        ] );
    ]
