(* Flight recorder: bounded per-node rings over the typed event stream.

   Every red gate should ship its own reproduction slice.  The recorder
   taps the Trace_event log, keeps the last N events per node (so one
   chatty node cannot evict a quiet node's history), and on a trigger
   dumps the merged slice plus a metrics snapshot as a text artifact:
   '#'-prefixed header lines (reason, trip time, metrics JSON) followed
   by plain Trace_event.to_line lines — the slice feeds straight back
   into `bmxctl check --trace` / `certify --trace`, which skip '#'.

   Triggers: automatic on the §5 alarm (a GC-actor token acquire) and on
   truncating RVM recovery; external via [trip] for lint findings and
   audit loss, wired in bmxctl. *)

open Bmx_util
module T = Trace_event

type ring = {
  buf : (int * T.t) option array;
  mutable next : int;  (* next write position *)
  mutable count : int;  (* total writes ever *)
}

type dump = { reason : string; at : int; text : string }

type t = {
  per_node : int;
  max_dumps : int;
  metrics : Metrics.t option;
  rings : (Ids.Node.t, ring) Hashtbl.t;
  mutable dumps_rev : dump list;
  mutable n_dumps : int;
  mutable last_ts : int;
  mutable on_dump : (dump -> unit) option;
}

let create ?(per_node = 256) ?(max_dumps = 4) ?metrics () =
  if per_node <= 0 then invalid_arg "Flight.create: per_node";
  {
    per_node;
    max_dumps;
    metrics;
    rings = Hashtbl.create 8;
    dumps_rev = [];
    n_dumps = 0;
    last_ts = 0;
    on_dump = None;
  }

let set_on_dump t f = t.on_dump <- Some f
let dumps t = List.rev t.dumps_rev

(* Attribution is total over the event type on purpose: a new
   constructor must decide here which node's history it belongs to
   (both, for pair events) or the build breaks. *)
let nodes_of_event = function
  | T.Acquire_start { node; _ }
  | T.Acquire_done { node; _ }
  | T.Release { node; _ }
  | T.Updates_applied { node; _ }
  | T.Forward_due { node; _ }
  | T.Gc_begin { node; _ }
  | T.Gc_end { node; _ }
  | T.Gc_phase { node; _ }
  | T.Crash { node }
  | T.Restart { node }
  | T.Owner_adopted { node; _ }
  | T.Disk_fault { node; _ }
  | T.Rvm_recover { node; _ }
  | T.Bunch_verified { node; _ }
  | T.Shard_alloc { node; _ }
  | T.Shard_adopted { node; _ }
  | T.Read_obs { node; _ }
  | T.Write_obs { node; _ } ->
      (node, None)
  | T.Grant_sent { granter; requester; _ } -> (granter, Some requester)
  | T.Hook_ssp { granter; requester; _ } -> (granter, Some requester)
  | T.Invalidate { src; dst; _ }
  | T.Copyset_forward { src; dst; _ }
  | T.Msg_sent { src; dst; _ }
  | T.Msg_delivered { src; dst; _ }
  | T.Msg_retransmit { src; dst; _ }
  | T.Msg_suppressed { src; dst; _ }
  | T.Msg_buffered { src; dst; _ }
  | T.Rpc { src; dst; _ }
  | T.Link_cut { src; dst }
  | T.Link_heal { src; dst }
  | T.Suspect { src; dst; _ } ->
      (src, Some dst)
  | T.Tables_processed { at; sender; _ } -> (at, Some sender)

let ring_of t node =
  match Hashtbl.find_opt t.rings node with
  | Some r -> r
  | None ->
      let r = { buf = Array.make t.per_node None; next = 0; count = 0 } in
      Hashtbl.add t.rings node r;
      r

let push r entry =
  r.buf.(r.next) <- Some entry;
  r.next <- (r.next + 1) mod Array.length r.buf;
  r.count <- r.count + 1

(* ---------------------------------------------------------- dumping *)

let slice t =
  (* Merge every ring; duplicates (pair events recorded on both ends)
     collapse by timestamp — µstep stamps are strictly increasing, so a
     timestamp identifies an event. *)
  let all = ref [] in
  Hashtbl.iter
    (fun _ r ->
      Array.iter (function None -> () | Some e -> all := e :: !all) r.buf)
    t.rings;
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) !all in
  let rec dedup = function
    | (ta, _) :: ((tb, _) :: _ as rest) when ta = tb -> dedup rest
    | e :: rest -> e :: dedup rest
    | [] -> []
  in
  dedup sorted

let trip t ?at reason =
  if t.n_dumps < t.max_dumps then begin
    let at = match at with Some a -> a | None -> t.last_ts in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf (Printf.sprintf "# flight reason=%s\n" reason);
    Buffer.add_string buf (Printf.sprintf "# at=%d\n" at);
    (match t.metrics with
    | None -> ()
    | Some m ->
        Buffer.add_string buf
          ("# metrics=" ^ Json.to_string (Metrics.to_json (Metrics.snapshot m))
         ^ "\n"));
    List.iter
      (fun (_, e) ->
        Buffer.add_string buf (T.to_line e);
        Buffer.add_char buf '\n')
      (slice t);
    let d = { reason; at; text = Buffer.contents buf } in
    t.dumps_rev <- d :: t.dumps_rev;
    t.n_dumps <- t.n_dumps + 1;
    match t.on_dump with None -> () | Some f -> f d
  end

(* ---------------------------------------------------------- recording *)

let record t ts e =
  t.last_ts <- ts;
  let a, b = nodes_of_event e in
  push (ring_of t a) (ts, e);
  (match b with
  | Some b when b <> a -> push (ring_of t b) (ts, e)
  | _ -> ());
  (* Automatic triggers: the §5 alarm and truncating recovery. *)
  match e with
  | T.Acquire_start { actor = T.Gc; node; uid; _ } ->
      trip t ~at:ts
        (Printf.sprintf "gc-token-acquire:n%d:o%d" node uid)
  | T.Rvm_recover { node; dropped; lost } when dropped > 0 || lost > 0 ->
      trip t ~at:ts (Printf.sprintf "rvm-truncation:n%d" node)
  | _ -> ()

let attach t log = T.add_tap log (fun ts e -> record t ts e)
