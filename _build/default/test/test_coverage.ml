(* Second-wave coverage: edge cases and behaviours the per-module suites
   don't reach. *)

open Bmx_util
module Cluster = Bmx.Cluster
module Protocol = Bmx_dsm.Protocol
module Directory = Bmx_dsm.Directory
module Store = Bmx_memory.Store
module Segment = Bmx_memory.Segment
module Registry = Bmx_memory.Registry
module Value = Bmx_memory.Value
module Net = Bmx_netsim.Net
module Gc_state = Bmx_gc.Gc_state
module Barrier = Bmx_gc.Barrier
module Graphgen = Bmx_workload.Graphgen

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ----------------------------------------------------------------- dsm *)

let test_release_keeps_cached_consistency () =
  (* Between release and a remote write acquire, the released copy stays
     readable (entry consistency invalidates on conflict, not release). *)
  let c = Cluster.create ~nodes:2 () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let x1 = Cluster.acquire_read c ~node:1 x in
  Cluster.release c ~node:1 x1;
  check_bool "still readable after release" true
    (Value.equal (Cluster.read c ~node:1 x1 0) (Value.Data 1))

let test_double_release_harmless () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  Cluster.release c ~node:0 x;
  Cluster.release c ~node:0 x;
  let x' = Cluster.acquire_write c ~node:0 x in
  Cluster.release c ~node:0 x'

let test_centralized_invalidation_complete () =
  (* In centralized mode the owner's copy-set holds every reader; a write
     acquire must invalidate them all. *)
  let c = Cluster.create ~nodes:5 ~mode:Protocol.Centralized () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  List.iter
    (fun n ->
      let a = Cluster.acquire_read c ~node:n x in
      Cluster.release c ~node:n a)
    [ 1; 2; 3 ];
  let a4 = Cluster.acquire_write c ~node:4 x in
  Cluster.release c ~node:4 a4;
  let uid = Cluster.uid_at c ~node:4 x in
  List.iter
    (fun n ->
      match Directory.find (Protocol.directory (Cluster.proto c) n) uid with
      | Some r ->
          check_bool
            (Printf.sprintf "N%d invalidated" n)
            true
            (r.Directory.state = Directory.Invalid)
      | None -> Alcotest.fail "record lost")
    [ 0; 1; 2; 3 ]

let test_alloc_counter_and_owner () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  for _ = 1 to 5 do
    ignore (Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 0 |])
  done;
  check_int "allocations counted" 5 (Stats.get (Cluster.stats c) "dsm.alloc")

let test_read_grant_downgrades_owner () =
  let c = Cluster.create ~nodes:2 () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let uid = Cluster.uid_at c ~node:0 x in
  let x1 = Cluster.acquire_read c ~node:1 x in
  Cluster.release c ~node:1 x1;
  (match Directory.find (Protocol.directory (Cluster.proto c) 0) uid with
  | Some r ->
      check_bool "owner downgraded to read" true (r.Directory.state = Directory.Read);
      check_bool "still owner" true r.Directory.is_owner
  | None -> Alcotest.fail "owner record lost");
  (* The owner can upgrade itself back. *)
  let x0 = Cluster.acquire_write c ~node:0 x in
  Cluster.release c ~node:0 x0;
  match Directory.find (Protocol.directory (Cluster.proto c) 1) uid with
  | Some r -> check_bool "reader invalidated by upgrade" true (r.Directory.state = Directory.Invalid)
  | None -> Alcotest.fail "reader record lost"

(* -------------------------------------------------------------- memory *)

let test_segment_seal_blocks_allocation () =
  let range = Addr.Range.make ~lo:4096 ~size:256 in
  let seg = Segment.make ~range ~bunch:0 in
  Segment.seal seg;
  check (Alcotest.option Alcotest.int) "sealed segment refuses allocation" None
    (Segment.alloc seg ~size:16);
  check_int "no free bytes" 0 (Segment.bytes_free seg)

let test_store_cells_in_range () =
  let reg = Registry.create () in
  let s = Store.create ~registry:reg ~node:0 in
  let a1 = Store.alloc s ~bunch:0 ~uid:1 ~fields:[| Value.Data 1 |] in
  let a2 = Store.alloc s ~bunch:0 ~uid:2 ~fields:[| Value.Data 2 |] in
  let seg = List.hd (Store.segments_of_bunch s 0) in
  let cells = Store.cells_in_range s seg.Segment.range in
  check_int "both cells found" 2 (List.length cells);
  check (Alcotest.list Alcotest.int) "sorted by address" [ a1; a2 ]
    (List.map fst cells)

let test_registry_find_miss () =
  let reg = Registry.create () in
  let r = Registry.alloc_range reg ~bunch:3 ~origin:0 () in
  check_bool "hit inside" true (Registry.find reg r.Addr.Range.lo <> None);
  check_bool "miss below" true (Registry.find reg 0 = None);
  check_bool "miss above" true (Registry.find reg (r.Addr.Range.hi + 4096) = None)

(* ------------------------------------------------------------------ gc *)

let test_barrier_scion_target () =
  let c = Cluster.create ~nodes:2 () in
  let b_local = Cluster.new_bunch c ~home:0 in
  let b_remote = Cluster.new_bunch c ~home:1 in
  check_int "locally mapped bunch: scion local" 0
    (Barrier.scion_target (Cluster.gc c) ~node:0 ~bunch:b_local);
  check_int "remote bunch: scion at its home" 1
    (Barrier.scion_target (Cluster.gc c) ~node:0 ~bunch:b_remote)

let test_bgc_on_empty_bunch () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let r = Cluster.bgc c ~node:0 ~bunch:b in
  check_int "nothing live" 0 r.Bmx_gc.Collect.r_live;
  check_int "nothing reclaimed" 0 r.Bmx_gc.Collect.r_reclaimed;
  (* And on a node that never heard of the bunch. *)
  let c2 = Cluster.create ~nodes:2 () in
  let b2 = Cluster.new_bunch c2 ~home:0 in
  let r2 = Cluster.bgc c2 ~node:1 ~bunch:b2 in
  check_int "foreign node no-op" 0 r2.Bmx_gc.Collect.r_live

let test_bgc_idempotent_when_quiescent () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let head = Graphgen.linked_list c ~node:0 ~bunch:b ~len:10 in
  Cluster.add_root c ~node:0 head;
  let _ = Cluster.bgc c ~node:0 ~bunch:b in
  let r2 = Cluster.bgc c ~node:0 ~bunch:b in
  let r3 = Cluster.bgc c ~node:0 ~bunch:b in
  check_int "second run reclaims nothing" 0 r2.Bmx_gc.Collect.r_reclaimed;
  check_int "third run stable" r2.Bmx_gc.Collect.r_live r3.Bmx_gc.Collect.r_live;
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c))

let test_stub_survives_gc_of_live_source () =
  (* A live cross-bunch reference keeps its SSP across repeated BGCs. *)
  let c = Cluster.create ~nodes:1 () in
  let b1 = Cluster.new_bunch c ~home:0 in
  let b2 = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b2 [| Value.Data 1 |] in
  let y = Cluster.alloc c ~node:0 ~bunch:b1 [| Value.Ref x |] in
  Cluster.add_root c ~node:0 y;
  for _ = 1 to 3 do
    ignore (Cluster.bgc c ~node:0 ~bunch:b1);
    ignore (Cluster.drain c)
  done;
  check_int "stub stable across collections" 1
    (List.length (Gc_state.inter_stubs (Cluster.gc c) ~node:0 ~bunch:b1));
  check_int "scion stable" 1
    (List.length (Gc_state.inter_scions (Cluster.gc c) ~node:0 ~bunch:b2))

let test_reclaim_multiple_from_spaces () =
  (* Two BGCs without reclaim accumulate two from-space segments; one
     reclaim frees both. *)
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let head = Graphgen.linked_list c ~node:0 ~bunch:b ~len:10 in
  Cluster.add_root c ~node:0 head;
  let _ = Cluster.bgc c ~node:0 ~bunch:b in
  let _ = Cluster.bgc c ~node:0 ~bunch:b in
  let s = Protocol.store (Cluster.proto c) 0 in
  let from_spaces () =
    List.length
      (List.filter
         (fun seg -> seg.Segment.role = Segment.From_space)
         (Store.segments_of_bunch s b))
  in
  check_int "two from-spaces accumulated" 2 (from_spaces ());
  let r = Cluster.reclaim_from_space c ~node:0 ~bunch:b in
  check_int "both freed" 2 r.Bmx_gc.Reclaim.q_segments_freed;
  check_int "none left" 0 (from_spaces ());
  check_bool "heap usable" true (Result.is_ok (Bmx.Audit.check_safety c))

let test_ggc_explicit_subgroup () =
  (* Collecting a strict subset of the mapped bunches must not reclaim a
     cycle that crosses out of the subset. *)
  let c = Cluster.create ~nodes:1 () in
  let b1 = Cluster.new_bunch c ~home:0 in
  let b2 = Cluster.new_bunch c ~home:0 in
  let b3 = Cluster.new_bunch c ~home:0 in
  let _ring = Graphgen.cross_bunch_ring c ~node:0 ~bunches:[ b1; b2; b3 ] ~len:6 in
  (* Group {b1,b2}: the cycle passes through b3, whose scions into b1/b2
     are external roots. *)
  let r = Bmx_gc.Ggc.run (Cluster.gc c) ~node:0 ~bunches:[ b1; b2 ] () in
  check_int "partial group keeps the cycle" 0 r.Bmx_gc.Collect.r_reclaimed;
  (* The full group gets it. *)
  let r2 = Cluster.ggc c ~node:0 in
  check_int "full group reclaims" 6 r2.Bmx_gc.Collect.r_reclaimed

let test_gc_state_root_multiset () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  Cluster.add_root c ~node:0 x;
  Cluster.add_root c ~node:0 x;
  Cluster.remove_root c ~node:0 x;
  (* One of the two roots remains: the object must survive. *)
  let r = Cluster.bgc c ~node:0 ~bunch:b in
  check_int "still rooted once" 0 r.Bmx_gc.Collect.r_reclaimed;
  Cluster.remove_root c ~node:0 x;
  let r2 = Cluster.bgc c ~node:0 ~bunch:b in
  check_int "now collectable" 1 r2.Bmx_gc.Collect.r_reclaimed

(* ------------------------------------------------------------- cluster *)

let test_add_node_dynamic () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 9 |] in
  Cluster.add_root c ~node:0 x;
  let n = Cluster.add_node c in
  check_int "new node id" 1 n;
  let xn = Cluster.acquire_read c ~node:n x in
  check_bool "new node reads shared state" true
    (Value.equal (Cluster.read c ~node:n xn 0) (Value.Data 9));
  Cluster.release c ~node:n xn

let test_deterministic_cluster () =
  let run () =
    let c = Cluster.create ~nodes:2 ~seed:5 () in
    let b = Cluster.new_bunch c ~home:0 in
    let h = Graphgen.linked_list c ~node:0 ~bunch:b ~len:20 in
    Cluster.add_root c ~node:0 h;
    ignore (Cluster.bgc c ~node:0 ~bunch:b);
    (h, Net.total_messages (Cluster.net c), Registry.total_bytes (Protocol.registry (Cluster.proto c)))
  in
  check_bool "identical runs" true (run () = run ())

(* ------------------------------------------------------------- tracing *)

let test_token_discipline_audit () =
  let c = Cluster.create ~nodes:3 () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  check_bool "fresh cluster disciplined" true (Result.is_ok (Bmx.Audit.check_tokens c));
  let x1 = Cluster.acquire_read c ~node:1 x in
  Cluster.release c ~node:1 x1;
  let x2 = Cluster.acquire_read c ~node:2 x in
  Cluster.release c ~node:2 x2;
  check_bool "multiple readers fine" true (Result.is_ok (Bmx.Audit.check_tokens c));
  let xw = Cluster.acquire_write c ~node:2 x in
  Cluster.release c ~node:2 xw;
  check_bool "exclusive writer fine" true (Result.is_ok (Bmx.Audit.check_tokens c));
  (* Corrupt the state deliberately: a second owner. *)
  let proto = Cluster.proto c in
  let uid = Cluster.uid_at c ~node:2 x in
  (match Directory.find (Protocol.directory proto 0) uid with
  | Some r -> r.Directory.is_owner <- true
  | None -> Alcotest.fail "record missing");
  check_bool "audit catches a double owner" true
    (Result.is_error (Bmx.Audit.check_tokens c))

let test_trace_records_protocol_events () =
  let c = Cluster.create ~nodes:2 () in
  Tracelog.set_enabled (Cluster.tracer c) true;
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  Cluster.add_root c ~node:0 x;
  let x1 = Cluster.acquire_read c ~node:1 x in
  Cluster.release c ~node:1 x1;
  let x1' = Cluster.acquire_write c ~node:1 x1 in
  Cluster.release c ~node:1 x1';
  ignore (Cluster.bgc c ~node:1 ~bunch:b);
  let cats =
    List.map (fun e -> e.Tracelog.category) (Tracelog.events (Cluster.tracer c))
    |> List.sort_uniq compare
  in
  check_bool "dsm events traced" true (List.mem "dsm" cats);
  check_bool "gc events traced" true (List.mem "gc" cats)

let () =
  Alcotest.run "coverage"
    [
      ( "dsm edges",
        [
          Alcotest.test_case "release keeps cached consistency" `Quick
            test_release_keeps_cached_consistency;
          Alcotest.test_case "double release harmless" `Quick test_double_release_harmless;
          Alcotest.test_case "centralized invalidation complete" `Quick
            test_centralized_invalidation_complete;
          Alcotest.test_case "alloc counter" `Quick test_alloc_counter_and_owner;
          Alcotest.test_case "read grant downgrades the owner" `Quick
            test_read_grant_downgrades_owner;
        ] );
      ( "memory edges",
        [
          Alcotest.test_case "sealed segments refuse allocation" `Quick
            test_segment_seal_blocks_allocation;
          Alcotest.test_case "cells_in_range" `Quick test_store_cells_in_range;
          Alcotest.test_case "registry misses" `Quick test_registry_find_miss;
        ] );
      ( "gc edges",
        [
          Alcotest.test_case "barrier scion placement" `Quick test_barrier_scion_target;
          Alcotest.test_case "BGC on empty bunch" `Quick test_bgc_on_empty_bunch;
          Alcotest.test_case "BGC idempotent at fixpoint" `Quick
            test_bgc_idempotent_when_quiescent;
          Alcotest.test_case "SSPs stable across collections" `Quick
            test_stub_survives_gc_of_live_source;
          Alcotest.test_case "reclaim frees multiple from-spaces" `Quick
            test_reclaim_multiple_from_spaces;
          Alcotest.test_case "GGC subgroup respects external cycles" `Quick
            test_ggc_explicit_subgroup;
          Alcotest.test_case "roots are a multiset" `Quick test_gc_state_root_multiset;
        ] );
      ( "cluster",
        [
          Alcotest.test_case "dynamic node addition" `Quick test_add_node_dynamic;
          Alcotest.test_case "determinism" `Quick test_deterministic_cluster;
          Alcotest.test_case "trace records protocol events" `Quick
            test_trace_records_protocol_events;
          Alcotest.test_case "token-discipline audit" `Quick test_token_discipline_audit;
        ] );
    ]
