test/test_workload.ml: Addr Alcotest Array Bmx Bmx_dsm Bmx_gc Bmx_memory Bmx_netsim Bmx_util Bmx_workload Ids List Result Rng
