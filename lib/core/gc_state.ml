open Bmx_util

type node_state = {
  mutable roots : Addr.t list;
  inter_stubs : Ssp.inter_stub list ref Ids.Bunch_tbl.t; (* by source bunch *)
  intra_stubs : Ssp.intra_stub list ref Ids.Bunch_tbl.t;
  inter_scions : Ssp.inter_scion list ref Ids.Bunch_tbl.t; (* by target bunch *)
  intra_scions : Ssp.intra_scion list ref Ids.Bunch_tbl.t;
  last_seq : (Ids.Node.t * Ids.Bunch.t, int) Hashtbl.t;
  last_exiting : (Ids.Uid.t * Ids.Node.t) list ref Ids.Bunch_tbl.t;
  last_dests : Ids.Node.t list ref Ids.Bunch_tbl.t;
}

type t = {
  proto : Bmx_dsm.Protocol.t;
  per_node : node_state Ids.Node_tbl.t;
  mutable obs : Bmx_obs.Metrics.t option;
}

let create ~proto = { proto; per_node = Ids.Node_tbl.create 8; obs = None }
let proto t = t.proto
let stats t = Bmx_dsm.Protocol.stats t.proto
let set_metrics t m = t.obs <- Some m
let metrics t = t.obs

let node_state t node =
  match Ids.Node_tbl.find_opt t.per_node node with
  | Some ns -> ns
  | None ->
      let ns =
        {
          roots = [];
          inter_stubs = Ids.Bunch_tbl.create 8;
          intra_stubs = Ids.Bunch_tbl.create 8;
          inter_scions = Ids.Bunch_tbl.create 8;
          intra_scions = Ids.Bunch_tbl.create 8;
          last_seq = Hashtbl.create 16;
          last_exiting = Ids.Bunch_tbl.create 8;
          last_dests = Ids.Bunch_tbl.create 8;
        }
      in
      Ids.Node_tbl.add t.per_node node ns;
      ns

let crash_node t ~node =
  (* GC tables are volatile per-node state (they are reconstructed by
     every local collection, §4.3): a crash loses roots, stub and scion
     tables, the cleaner's per-sender freshness clocks and the broadcast
     bookkeeping alike.  The entry regenerates lazily, empty. *)
  Ids.Node_tbl.remove t.per_node node

let add_root t ~node a =
  let ns = node_state t node in
  ns.roots <- a :: ns.roots

let remove_root t ~node a =
  let ns = node_state t node in
  let rec drop_one = function
    | [] -> []
    | x :: rest -> if Addr.equal x a then rest else x :: drop_one rest
  in
  ns.roots <- drop_one ns.roots

let roots t ~node = (node_state t node).roots

let set_roots t ~node roots =
  let ns = node_state t node in
  ns.roots <- roots

let tbl_get tbl bunch =
  match Ids.Bunch_tbl.find_opt tbl bunch with Some r -> !r | None -> []

let tbl_add tbl bunch ~eq item =
  match Ids.Bunch_tbl.find_opt tbl bunch with
  | Some r -> if not (List.exists (eq item) !r) then r := item :: !r
  | None -> Ids.Bunch_tbl.add tbl bunch (ref [ item ])

let tbl_remove tbl bunch pred =
  match Ids.Bunch_tbl.find_opt tbl bunch with
  | None -> 0
  | Some r ->
      let keep, drop = List.partition (fun x -> not (pred x)) !r in
      r := keep;
      List.length drop

let inter_stubs t ~node ~bunch = tbl_get (node_state t node).inter_stubs bunch
let intra_stubs t ~node ~bunch = tbl_get (node_state t node).intra_stubs bunch

let add_inter_stub t ~node (s : Ssp.inter_stub) =
  tbl_add (node_state t node).inter_stubs s.Ssp.is_src_bunch ~eq:( = ) s

let add_intra_stub t ~node (s : Ssp.intra_stub) =
  tbl_add (node_state t node).intra_stubs s.Ssp.ns_bunch ~eq:( = ) s

let replace_stub_tables t ~node ~bunch ~inter ~intra =
  let ns = node_state t node in
  Ids.Bunch_tbl.replace ns.inter_stubs bunch (ref inter);
  Ids.Bunch_tbl.replace ns.intra_stubs bunch (ref intra)

let inter_scions t ~node ~bunch = tbl_get (node_state t node).inter_scions bunch
let intra_scions t ~node ~bunch = tbl_get (node_state t node).intra_scions bunch

let add_inter_scion t ~node (s : Ssp.inter_scion) =
  tbl_add (node_state t node).inter_scions s.Ssp.xs_target_bunch ~eq:( = ) s

let add_intra_scion t ~node (s : Ssp.intra_scion) =
  tbl_add (node_state t node).intra_scions s.Ssp.xn_bunch ~eq:( = ) s

let remove_inter_scions t ~node ~bunch pred =
  tbl_remove (node_state t node).inter_scions bunch pred

let remove_intra_scions t ~node ~bunch pred =
  tbl_remove (node_state t node).intra_scions bunch pred

let last_exiting t ~node ~bunch = tbl_get (node_state t node).last_exiting bunch

let record_exiting t ~node ~bunch exiting =
  Ids.Bunch_tbl.replace (node_state t node).last_exiting bunch (ref exiting)

let last_broadcast_dests t ~node ~bunch =
  tbl_get (node_state t node).last_dests bunch

let record_broadcast_dests t ~node ~bunch dests =
  Ids.Bunch_tbl.replace (node_state t node).last_dests bunch (ref dests)

let last_table_seq t ~node ~sender ~bunch =
  Hashtbl.find_opt (node_state t node).last_seq (sender, bunch)

let record_table_seq t ~node ~sender ~bunch ~seq =
  Hashtbl.replace (node_state t node).last_seq (sender, bunch) seq

let bunches_with_tables t ~node =
  let ns = node_state t node in
  let collect tbl acc =
    Ids.Bunch_tbl.fold (fun b _ acc -> Ids.Bunch_set.add b acc) tbl acc
  in
  Ids.Bunch_set.elements
    (collect ns.inter_stubs
       (collect ns.intra_stubs
          (collect ns.inter_scions (collect ns.intra_scions Ids.Bunch_set.empty))))

let tbl_total tbl = Ids.Bunch_tbl.fold (fun _ r acc -> acc + List.length !r) tbl 0

let sample_ssp_gauges t ~node =
  match t.obs with
  | None -> ()
  | Some m ->
      let ns = node_state t node in
      let set name v = Bmx_obs.Metrics.set_gauge m ~node name v in
      set "gc.stubs.inter" (tbl_total ns.inter_stubs);
      set "gc.stubs.intra" (tbl_total ns.intra_stubs);
      set "gc.scion_table.inter" (tbl_total ns.inter_scions);
      set "gc.scion_table.intra" (tbl_total ns.intra_scions)

let sample_node_gauges t ~node =
  match t.obs with
  | None -> ()
  | Some m ->
      let store = Bmx_dsm.Protocol.store t.proto node in
      let module Store = Bmx_memory.Store in
      let set name v = Bmx_obs.Metrics.set_gauge m ~node name v in
      set "gc.heap.objects" (Store.object_count store);
      set "gc.heap.segments"
        (List.fold_left
           (fun acc b -> acc + List.length (Store.segments_of_bunch store b))
           0 (Store.mapped_bunches store));
      sample_ssp_gauges t ~node

let pp_node t ppf node =
  let ns = node_state t node in
  Format.fprintf ppf "@[<v>node %a gc-state:@," Ids.Node.pp node;
  Ids.Bunch_tbl.iter
    (fun b r ->
      List.iter (fun s -> Format.fprintf ppf "  %a@," Ssp.pp_inter_stub s) !r;
      ignore b)
    ns.inter_stubs;
  Ids.Bunch_tbl.iter
    (fun _ r ->
      List.iter (fun s -> Format.fprintf ppf "  %a@," Ssp.pp_intra_stub s) !r)
    ns.intra_stubs;
  Ids.Bunch_tbl.iter
    (fun _ r ->
      List.iter (fun s -> Format.fprintf ppf "  %a@," Ssp.pp_inter_scion s) !r)
    ns.inter_scions;
  Ids.Bunch_tbl.iter
    (fun _ r ->
      List.iter (fun s -> Format.fprintf ppf "  %a@," Ssp.pp_intra_scion s) !r)
    ns.intra_scions;
  Format.fprintf ppf "@]"
