(** Per-node garbage-collection state: stub and scion tables, mutator
    roots, and the FIFO bookkeeping of the scion cleaner (§3, §6.1).

    Tables are held per node per bunch — every cached copy of a bunch
    carries its own stub table and scion table (§3), which is what makes a
    replica collectable in isolation. *)

type node_state

type t

val create : proto:Bmx_dsm.Protocol.t -> t
val proto : t -> Bmx_dsm.Protocol.t
val stats : t -> Bmx_util.Stats.registry

val set_metrics : t -> Bmx_obs.Metrics.t -> unit
(** Attach a metrics registry for the occupancy gauges below. *)

val metrics : t -> Bmx_obs.Metrics.t option

val sample_node_gauges : t -> node:Bmx_util.Ids.Node.t -> unit
(** Refresh the per-node occupancy gauges after a collection:
    [gc.heap.objects], [gc.heap.segments], [gc.stubs.inter/intra] and
    [gc.scion_table.inter/intra].  No-op without {!set_metrics}. *)

val sample_ssp_gauges : t -> node:Bmx_util.Ids.Node.t -> unit
(** Refresh just the stub/scion-table gauges (the cleaner calls this
    after pruning tables outside any collection). *)

val node_state : t -> Bmx_util.Ids.Node.t -> node_state
(** Created lazily per node. *)

val crash_node : t -> node:Bmx_util.Ids.Node.t -> unit
(** Drop the node's whole GC state (roots, SSP tables, cleaner
    freshness clocks, broadcast bookkeeping) — it died with the node's
    volatile memory.  The state regenerates lazily, empty. *)

(** {1 Mutator roots}

    The local root includes the mutator stacks (Figure 1). *)

val add_root : t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t -> unit
val remove_root : t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t -> unit
(** Removes one occurrence. *)

val roots : t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t list
val set_roots : t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t list -> unit

(** {1 Stub tables} *)

val inter_stubs :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t -> Ssp.inter_stub list

val intra_stubs :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t -> Ssp.intra_stub list

val add_inter_stub : t -> node:Bmx_util.Ids.Node.t -> Ssp.inter_stub -> unit
(** Idempotent (duplicate stubs are suppressed). *)

val add_intra_stub : t -> node:Bmx_util.Ids.Node.t -> Ssp.intra_stub -> unit

val replace_stub_tables :
  t ->
  node:Bmx_util.Ids.Node.t ->
  bunch:Bmx_util.Ids.Bunch.t ->
  inter:Ssp.inter_stub list ->
  intra:Ssp.intra_stub list ->
  unit
(** Install the tables a BGC reconstructed (§4.3). *)

(** {1 Scion tables} *)

val inter_scions :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t -> Ssp.inter_scion list
(** Scions protecting objects of [bunch] at [node]. *)

val intra_scions :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t -> Ssp.intra_scion list

val add_inter_scion : t -> node:Bmx_util.Ids.Node.t -> Ssp.inter_scion -> unit
(** Idempotent. *)

val add_intra_scion : t -> node:Bmx_util.Ids.Node.t -> Ssp.intra_scion -> unit

val remove_inter_scions :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> (Ssp.inter_scion -> bool) -> int
(** Remove scions satisfying the predicate; returns how many. *)

val remove_intra_scions :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> (Ssp.intra_scion -> bool) -> int

(** {1 Exiting-ownerPtr lists}

    The list a BGC last constructed for a bunch (§4.3); kept so the next
    broadcast can also reach nodes that dropped out of it. *)

val last_exiting :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> (Bmx_util.Ids.Uid.t * Bmx_util.Ids.Node.t) list

val record_exiting :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> (Bmx_util.Ids.Uid.t * Bmx_util.Ids.Node.t) list -> unit

val last_broadcast_dests :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> Bmx_util.Ids.Node.t list
(** Where the previous reachability broadcast for the bunch went.  A
    resend after a loss must still reach peers whose scions the replaced
    tables no longer mention (§6.1's retransmission tolerance). *)

val record_broadcast_dests :
  t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> Bmx_util.Ids.Node.t list -> unit

(** {1 Scion-cleaner FIFO state (§6.1)} *)

val last_table_seq :
  t -> node:Bmx_util.Ids.Node.t -> sender:Bmx_util.Ids.Node.t
  -> bunch:Bmx_util.Ids.Bunch.t -> int option

val record_table_seq :
  t -> node:Bmx_util.Ids.Node.t -> sender:Bmx_util.Ids.Node.t
  -> bunch:Bmx_util.Ids.Bunch.t -> seq:int -> unit

(** {1 Introspection} *)

val bunches_with_tables : t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Ids.Bunch.t list
val pp_node : t -> Format.formatter -> Bmx_util.Ids.Node.t -> unit
