open Bmx_util
module Cluster = Bmx.Cluster
module Value = Bmx_memory.Value

let linked_list c ~node ~bunch ~len =
  if len <= 0 then invalid_arg "Graphgen.linked_list: len must be positive";
  let rec build i next =
    if i = 0 then next
    else
      let cell = Cluster.alloc c ~node ~bunch [| Value.Ref next; Value.Data i |] in
      build (i - 1) cell
  in
  let tail = Cluster.alloc c ~node ~bunch [| Value.nil; Value.Data len |] in
  if len = 1 then tail else build (len - 1) tail

let rec binary_tree c ~node ~bunch ~depth =
  if depth <= 0 then
    Cluster.alloc c ~node ~bunch [| Value.nil; Value.nil; Value.Data 0 |]
  else
    let l = binary_tree c ~node ~bunch ~depth:(depth - 1) in
    let r = binary_tree c ~node ~bunch ~depth:(depth - 1) in
    Cluster.alloc c ~node ~bunch [| Value.Ref l; Value.Ref r; Value.Data depth |]

let ring c ~node ~bunch ~len =
  if len <= 0 then invalid_arg "Graphgen.ring: len must be positive";
  let first = Cluster.alloc c ~node ~bunch [| Value.nil; Value.Data 0 |] in
  let rec build i prev =
    if i = len then prev
    else
      let cell = Cluster.alloc c ~node ~bunch [| Value.Ref prev; Value.Data i |] in
      build (i + 1) cell
  in
  let last = build 1 first in
  let first = Cluster.acquire_write c ~node first in
  Cluster.write c ~node first 0 (Value.Ref last);
  Cluster.release c ~node first;
  first

let cross_bunch_ring c ~node ~bunches ~len =
  (match bunches with [] -> invalid_arg "Graphgen.cross_bunch_ring: no bunches" | _ -> ());
  let nb = List.length bunches in
  let bunch_of i = List.nth bunches (i mod nb) in
  let first = Cluster.alloc c ~node ~bunch:(bunch_of 0) [| Value.nil; Value.Data 0 |] in
  let rec build i prev =
    if i = len then prev
    else
      let cell =
        Cluster.alloc c ~node ~bunch:(bunch_of i) [| Value.Ref prev; Value.Data i |]
      in
      build (i + 1) cell
  in
  let last = build 1 first in
  let first = Cluster.acquire_write c ~node first in
  Cluster.write c ~node first 0 (Value.Ref last);
  Cluster.release c ~node first;
  first

let random_graph ?(window = 0) c ~rng ~node ~bunches ~objects ~out_degree
    ~cross_bunch_prob =
  let bunch_arr = Array.of_list bunches in
  let nb = Array.length bunch_arr in
  if nb = 0 then invalid_arg "Graphgen.random_graph: no bunches";
  let objs =
    Array.init objects (fun i ->
        let bunch = bunch_arr.(i mod nb) in
        Cluster.alloc c ~node ~bunch
          (Array.make (out_degree + 1) (Value.Data i)))
  in
  let bunch_of = Array.init objects (fun i -> bunch_arr.(i mod nb)) in
  Array.iteri
    (fun i src ->
      let src = Cluster.acquire_write c ~node src in
      for f = 0 to out_degree - 1 do
        (* Prefer a same-bunch target unless the coin says cross-bunch. *)
        let want_cross = Rng.float rng 1.0 < cross_bunch_prob in
        let pick () =
          if window <= 0 then Rng.int rng objects
          else begin
            (* Edges stay within the bunch window [i mod nb,
               i mod nb + window): neighbouring bunches only, so the
               graph's cross-bunch structure does not densify as more
               bunches are added (scaling sweeps). *)
            let per = max 1 (objects / nb) in
            let b = ((i mod nb) + Rng.int rng (min window nb)) mod nb in
            min (objects - 1) ((Rng.int rng per * nb) + b)
          end
        in
        let rec target tries =
          let j = pick () in
          if tries = 0 then j
          else if want_cross <> Ids.Bunch.equal bunch_of.(j) bunch_of.(i) then j
          else target (tries - 1)
        in
        let j = target 8 in
        Cluster.write c ~node src f (Value.Ref objs.(j))
      done;
      Cluster.release c ~node src;
      objs.(i) <- src)
    objs;
  objs
