(** A node's view of the shared address space.

    Every node caches copies of the objects it has mapped; the same global
    address resolves, on each node, to that node's local copy (or to a
    forwarding header left by a BGC, §4.2).  The store also owns the node's
    local [Segment] views — object-map and reference-map state is
    per-replica, since replicas of a bunch are collected independently. *)

type cell =
  | Object of Heap_obj.t  (** a local copy of the object at this address *)
  | Forwarder of Bmx_util.Addr.t
      (** header left in from-space after a copy: "a forwarding pointer is
          written into the object's header, which is left in from-space"
          (§4.2) *)

type t

val create : registry:Registry.t -> node:Bmx_util.Ids.Node.t -> t
val node : t -> Bmx_util.Ids.Node.t
val registry : t -> Registry.t

val arena : t -> Flatheap.t
(** The flat arena backing this store's own allocations.  Objects shipped
    to another node are cloned into the {e receiver}'s arena
    ([Heap_obj.clone ~heap]); a store's cells may still reference foreign
    arenas transiently.  Slots are released when the last cell referring
    to them is removed or forwarded — holding a [Heap_obj.t] across such
    an event and then using it raises (the slot generation check). *)

val alloc :
  ?version:int ->
  t ->
  bunch:Bmx_util.Ids.Bunch.t ->
  uid:Bmx_util.Ids.Uid.t ->
  fields:Value.t array ->
  Bmx_util.Addr.t
(** Allocate a new object in the node's active segment for [bunch],
    growing the bunch with a fresh registry range on segment overflow.
    Reference-map bits are set for pointer fields.  [version] (default
    0) seeds the object's write counter — GC copies pass the source's
    so the copy is not mistaken for a write. *)

val alloc_into :
  ?version:int ->
  t -> seg:Segment.t -> uid:Bmx_util.Ids.Uid.t -> fields:Value.t array
  -> Bmx_util.Addr.t option
(** Allocate directly into a specific segment (BGC copying into to-space). *)

val alloc_clone :
  t -> seg:Segment.t -> of_:Heap_obj.t -> Bmx_util.Addr.t option
(** Copy an existing object (same uid, bunch taken from the source, fields
    and version blitted raw) into [seg] and this store's arena — the
    collectors' copy primitive; no boxed field array is materialized. *)

val segment_at : t -> Bmx_util.Addr.t -> Segment.t option
(** The local segment view containing the address, if mapped. *)

val ensure_segment :
  t -> range:Bmx_util.Addr.Range.t -> bunch:Bmx_util.Ids.Bunch.t -> Segment.t
(** Local view of a (possibly remotely allocated) range; created on first
    use — mapping a segment of a replicated bunch. *)

val fresh_segment :
  t -> bunch:Bmx_util.Ids.Bunch.t -> ?bytes:int -> unit -> Segment.t
(** Allocate a brand-new range from the registry and map it locally. *)

val segments_of_bunch : t -> Bmx_util.Ids.Bunch.t -> Segment.t list
(** Locally mapped segments of the bunch, oldest first. *)

val set_active_segment : t -> bunch:Bmx_util.Ids.Bunch.t -> Segment.t -> unit
(** Make [seg] the bunch's current allocation target (a BGC retargets
    allocation at the to-space after a flip). *)

val cells_in_range : t -> Bmx_util.Addr.Range.t -> (Bmx_util.Addr.t * cell) list
(** All cells whose address falls in the range, by address. *)

val mapped_bunches : t -> Bmx_util.Ids.Bunch.t list

val cell : t -> Bmx_util.Addr.t -> cell option

val install : t -> Bmx_util.Addr.t -> Heap_obj.t -> unit
(** Bind the address to a local object copy (token grant, GC copy, or
    address-update installation).  Maintains the segment maps. *)

val set_forwarder : t -> at:Bmx_util.Addr.t -> target:Bmx_util.Addr.t -> unit
(** Replace the cell at [at] with a forwarding header to [target].
    Keeps the forwarder graph acyclic: a self-link is ignored, and if
    [target]'s own chain led back to [at] (address reuse — the object
    moved A -> B -> A and both hops were recorded here), the stale
    back-chain is re-pointed at [target], which becomes the endpoint.
    [Bmx_check.Lint.check_stores] verifies this invariant over every
    node after each run. *)

val remove : t -> Bmx_util.Addr.t -> unit
(** Drop the cell (object reclaimed or forwarder retired). *)

val resolve : t -> Bmx_util.Addr.t -> (Bmx_util.Addr.t * Heap_obj.t) option
(** Follow the local forwarder chain from the address to the current local
    copy; [None] if the address is unknown here or leads nowhere. *)

val current_addr : t -> Bmx_util.Addr.t -> Bmx_util.Addr.t
(** Endpoint of the local forwarder chain ([a] itself if not forwarded).
    The paper's pointer-comparison operation (§4.2) compares these. *)

val note_field_write : t -> obj_addr:Bmx_util.Addr.t -> index:int -> Value.t -> unit
(** Maintain the reference-map bit for field [index] of the object at
    [obj_addr] after a write. *)

val objects_of_bunch : t -> Bmx_util.Ids.Bunch.t -> (Bmx_util.Addr.t * Heap_obj.t) list
(** All local object copies (not forwarders) of the bunch, by address.
    Served from a per-bunch index — O(bunch), not O(store). *)

val has_objects_of_bunch : t -> Bmx_util.Ids.Bunch.t -> bool
(** Whether any local object copy of the bunch exists — O(1). *)

val addr_of_uid : t -> Bmx_util.Ids.Uid.t -> Bmx_util.Addr.t option
(** Current local address of the object with this uid, if cached. *)

val address_history : t -> Bmx_util.Ids.Uid.t -> Bmx_util.Addr.t list
(** Addresses this node has seen the object at, newest first.  This is the
    node-local knowledge from which new-location messages (§4.4) are
    composed: the head is where the node currently publishes the object,
    the second entry is where its peers may still believe it lives. *)

val iter : t -> (Bmx_util.Addr.t -> cell -> unit) -> unit
(** Whole-table iteration.  Bumps [Perfcount.store_cells_touched] per
    cell, so the complexity tests catch any hot path that full-scans. *)

val iter_objects_of_bunch :
  t -> Bmx_util.Ids.Bunch.t -> (Bmx_util.Addr.t -> Heap_obj.t -> unit) -> unit
(** Unordered, allocation-free variant of {!objects_of_bunch}. *)

val mut_version : t -> int
(** Mutation epoch: advances on install/remove/forward/field-write —
    every semantic change to the store's contents — and never on reads
    or forwarder path compression.  The economical BGC skips a
    collection whose inputs show the same composite version as its
    previous run. *)

val touch : t -> unit
(** Advance {!mut_version} (for callers that mutate object fields
    directly rather than through the store). *)

val bunch_object_count : t -> Bmx_util.Ids.Bunch.t -> int
(** O(1): live object cells of the bunch (the [objects_of_bunch] list
    length without building the list). *)

val object_count : t -> int
(** Number of local object copies — O(1), maintained by install/remove. *)

val objects_bytes : t -> int
(** Total [Heap_obj.size_bytes] of local object copies — O(1). *)

val segment_count : t -> int
(** Locally mapped segments — O(1). *)

val pp : Format.formatter -> t -> unit
