open Bmx_util
module Value = Bmx_memory.Value
module Heap_obj = Bmx_memory.Heap_obj
module Segment = Bmx_memory.Segment
module Registry = Bmx_memory.Registry
module Store = Bmx_memory.Store

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_opt_int = check (Alcotest.option Alcotest.int)

(* ----------------------------------------------------------------- Value *)

let test_value () =
  check_bool "nil is not a pointer" false (Value.is_pointer Value.nil);
  check_bool "ref is a pointer" true (Value.is_pointer (Value.Ref 64));
  check_bool "data is not" false (Value.is_pointer (Value.Data 64));
  check_bool "equal refs" true (Value.equal (Value.Ref 4) (Value.Ref 4));
  check_bool "ref <> data" false (Value.equal (Value.Ref 4) (Value.Data 4))

(* -------------------------------------------------------------- Heap_obj *)

let test_heap_obj_basics () =
  let o = Heap_obj.make ~uid:1 ~bunch:0 ~fields:[| Value.Data 1; Value.Ref 64 |] () in
  check_int "num_fields" 2 (Heap_obj.num_fields o);
  check_int "size includes header" (8 + 8) (Heap_obj.size_bytes o);
  check_bool "get" true (Value.equal (Heap_obj.get o 1) (Value.Ref 64));
  Heap_obj.set o 0 (Value.Data 9);
  check_int "version bumped" 1 (Heap_obj.version o);
  check (Alcotest.list Alcotest.int) "pointers" [ 64 ] (Heap_obj.pointers o)

let test_heap_obj_clone_overwrite () =
  let o = Heap_obj.make ~uid:1 ~bunch:0 ~fields:[| Value.Data 1 |] () in
  let o2 = Heap_obj.clone o in
  Heap_obj.set o2 0 (Value.Data 2);
  check_bool "clone is independent" true
    (Value.equal (Heap_obj.get o 0) (Value.Data 1));
  Heap_obj.overwrite o ~from:o2;
  check_bool "overwrite copies fields" true
    (Value.equal (Heap_obj.get o 0) (Value.Data 2));
  let other = Heap_obj.make ~uid:2 ~bunch:0 ~fields:[| Value.Data 0 |] () in
  Alcotest.check_raises "uid mismatch" (Invalid_argument "Heap_obj.overwrite: uid mismatch")
    (fun () -> Heap_obj.overwrite o ~from:other)

(* --------------------------------------------------------------- Segment *)

let test_segment_alloc () =
  let range = Addr.Range.make ~lo:4096 ~size:256 in
  let seg = Segment.make ~range ~bunch:0 in
  (match Segment.alloc seg ~size:100 with
  | Some a ->
      check_int "first alloc at base" 4096 a;
      check_bool "object map set" true (Bitmap.get seg.Segment.object_map a)
  | None -> Alcotest.fail "alloc failed");
  (match Segment.alloc seg ~size:100 with
  | Some a -> check_int "bump aligned" (4096 + 100) a
  | None -> Alcotest.fail "second alloc failed");
  check (Alcotest.option Alcotest.int) "overflow" None (Segment.alloc seg ~size:100);
  check_int "two objects recorded" 2 (List.length (Segment.objects seg))

let test_segment_reset () =
  let range = Addr.Range.make ~lo:0 ~size:256 in
  let seg = Segment.make ~range ~bunch:0 in
  ignore (Segment.alloc seg ~size:64);
  Segment.note_pointer seg 8 ~is_pointer:true;
  Segment.reset seg;
  check_bool "role free" true (seg.Segment.role = Segment.Free);
  check_int "maps cleared" 0 (Bitmap.cardinal seg.Segment.object_map);
  check_int "bump rewound" 256 (Segment.bytes_free seg)

(* -------------------------------------------------------------- Registry *)

let test_registry_non_overlap () =
  let reg = Registry.create () in
  let r1 = Registry.alloc_range reg ~bunch:0 ~origin:0 () in
  let r2 = Registry.alloc_range reg ~bunch:1 ~origin:1 () in
  let r3 = Registry.alloc_range reg ~bunch:0 ~origin:2 ~bytes:128 () in
  check_bool "r1 r2 disjoint" false (Addr.Range.overlaps r1 r2);
  check_bool "r2 r3 disjoint" false (Addr.Range.overlaps r2 r3);
  check_opt_int "find maps back" (Some 0)
    (Option.map (fun e -> e.Registry.bunch) (Registry.find reg r1.Addr.Range.lo));
  check_opt_int "bunch_of_addr" (Some 1) (Registry.bunch_of_addr reg r2.Addr.Range.lo);
  check_opt_int "unknown addr" None (Registry.bunch_of_addr reg 0);
  check_int "two ranges for bunch 0" 2 (List.length (Registry.entries_of_bunch reg 0));
  check_int "total bytes" (Addr.Range.size r1 + Addr.Range.size r2 + 128)
    (Registry.total_bytes reg)

(* ----------------------------------------------------------------- Store *)

let make_store () =
  let reg = Registry.create () in
  (reg, Store.create ~registry:reg ~node:0)

let test_store_alloc_and_maps () =
  let _, s = make_store () in
  let a = Store.alloc s ~bunch:0 ~uid:1 ~fields:[| Value.Ref 4096; Value.Data 2 |] in
  (match Store.cell s a with
  | Some (Store.Object o) -> check_int "uid" 1 o.Heap_obj.uid
  | _ -> Alcotest.fail "expected object cell");
  check_opt_int "uid index" (Some a) (Store.addr_of_uid s 1);
  (match Store.segment_at s a with
  | Some seg ->
      check_bool "object map bit" true (Bitmap.get seg.Segment.object_map a);
      let f0 = Addr.add a Heap_obj.header_bytes in
      check_bool "ref map bit for pointer field" true (Bitmap.get seg.Segment.ref_map f0);
      let f1 = Addr.add f0 Addr.word in
      check_bool "no ref map bit for data field" false (Bitmap.get seg.Segment.ref_map f1)
  | None -> Alcotest.fail "segment missing")

let test_store_segment_overflow () =
  let _, s = make_store () in
  (* Fill well past one segment: allocation must grow the bunch. *)
  (* Each object occupies 12 bytes (8-byte header + one word), so this
     overruns the default 64 KiB segment comfortably. *)
  let n = (Segment.default_bytes / 12) + 10 in
  let addrs = List.init n (fun i -> Store.alloc s ~bunch:0 ~uid:(i + 1) ~fields:[| Value.Data i |]) in
  check_int "all allocated" n (List.length (List.sort_uniq compare addrs));
  check_bool "bunch grew" true (List.length (Store.segments_of_bunch s 0) > 1)

let test_store_forwarders () =
  let _, s = make_store () in
  let a = Store.alloc s ~bunch:0 ~uid:1 ~fields:[| Value.Data 1 |] in
  let b = Store.alloc s ~bunch:0 ~uid:2 ~fields:[| Value.Data 2 |] in
  (* Move uid=1 to a fresh address c, chain a -> b' impossible; use real move. *)
  let obj = match Store.cell s a with Some (Store.Object o) -> o | _ -> assert false in
  let seg = List.hd (Store.segments_of_bunch s 0) in
  ignore seg;
  (* Copy the fields out before forwarding [a]: turning the cell into a
     forwarder releases the arena slot, so the handle must not be used
     afterwards. *)
  let fields = Heap_obj.fields_copy obj in
  let c = Store.alloc s ~bunch:0 ~uid:1 ~fields in
  Store.set_forwarder s ~at:a ~target:c;
  check_int "resolve follows forwarder" c
    (match Store.resolve s a with Some (a', _) -> a' | None -> -1);
  check_int "current_addr" c (Store.current_addr s a);
  check_int "unforwarded unchanged" b (Store.current_addr s b);
  (* Chains: c forwarded again to d. *)
  let d = Store.alloc s ~bunch:0 ~uid:1 ~fields in
  Store.set_forwarder s ~at:c ~target:d;
  check_int "chain followed" d (Store.current_addr s a);
  check (Alcotest.list Alcotest.int) "history newest first" [ d; c; a ]
    (Store.address_history s 1)

let test_store_remove () =
  let _, s = make_store () in
  let a = Store.alloc s ~bunch:0 ~uid:1 ~fields:[| Value.Data 1 |] in
  Store.remove s a;
  check_bool "cell gone" true (Store.cell s a = None);
  check_opt_int "uid index cleared" None (Store.addr_of_uid s 1);
  (match Store.segment_at s a with
  | Some seg -> check_bool "object map cleared" false (Bitmap.get seg.Segment.object_map a)
  | None -> Alcotest.fail "segment missing")

let test_store_objects_of_bunch () =
  let _, s = make_store () in
  let _ = Store.alloc s ~bunch:0 ~uid:1 ~fields:[| Value.Data 1 |] in
  let _ = Store.alloc s ~bunch:1 ~uid:2 ~fields:[| Value.Data 2 |] in
  let _ = Store.alloc s ~bunch:0 ~uid:3 ~fields:[| Value.Data 3 |] in
  check_int "bunch 0 has two" 2 (List.length (Store.objects_of_bunch s 0));
  check_int "bunch 1 has one" 1 (List.length (Store.objects_of_bunch s 1));
  check_int "object count" 3 (Store.object_count s);
  check (Alcotest.list Alcotest.int) "mapped bunches" [ 0; 1 ] (Store.mapped_bunches s)

let test_store_remote_install () =
  (* Installing an object allocated by another node maps its segment
     locally with the right bunch. *)
  let reg = Registry.create () in
  let s0 = Store.create ~registry:reg ~node:0 in
  let s1 = Store.create ~registry:reg ~node:1 in
  let a = Store.alloc s0 ~bunch:5 ~uid:1 ~fields:[| Value.Data 1 |] in
  let obj = match Store.cell s0 a with Some (Store.Object o) -> o | _ -> assert false in
  Store.install s1 a (Heap_obj.clone obj);
  check_opt_int "visible at node 1" (Some a) (Store.addr_of_uid s1 1);
  check (Alcotest.list Alcotest.int) "bunch mapped at node 1" [ 5 ]
    (Store.mapped_bunches s1)

let () =
  Alcotest.run "memory"
    [
      ("value", [ Alcotest.test_case "predicates" `Quick test_value ]);
      ( "heap_obj",
        [
          Alcotest.test_case "basics" `Quick test_heap_obj_basics;
          Alcotest.test_case "clone/overwrite" `Quick test_heap_obj_clone_overwrite;
        ] );
      ( "segment",
        [
          Alcotest.test_case "bump allocation" `Quick test_segment_alloc;
          Alcotest.test_case "reset" `Quick test_segment_reset;
        ] );
      ( "registry",
        [ Alcotest.test_case "non-overlapping ranges" `Quick test_registry_non_overlap ]
      );
      ( "store",
        [
          Alcotest.test_case "alloc and bit maps" `Quick test_store_alloc_and_maps;
          Alcotest.test_case "segment overflow" `Quick test_store_segment_overflow;
          Alcotest.test_case "forwarder chains" `Quick test_store_forwarders;
          Alcotest.test_case "remove" `Quick test_store_remove;
          Alcotest.test_case "objects per bunch" `Quick test_store_objects_of_bunch;
          Alcotest.test_case "remote install maps segment" `Quick test_store_remote_install;
        ] );
    ]
