lib/util/addr.mli: Format
