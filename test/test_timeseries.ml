(* Continuous telemetry: virtual-time series windows and the flight
   recorder.

   The series tests pin the contract that makes window queries trustable:
   merged window reservoirs reproduce the whole-run Stats.Summary
   estimator exactly whenever nothing evicted (same round-to-nearest-rank
   rule), JSONL export is a fixed point through of_jsonl, and eviction
   under pressure is deterministic per seed.  The flight tests pin the
   auto triggers (§5 alarm, truncating recovery), the ring/dump bounds,
   and that a dump slice replays through the lint and happens-before
   certifiers — clean slices come back clean, a §5 violation slice names
   Gc_acquired_token. *)

open Bmx_util
module T = Trace_event
module Ts = Bmx_obs.Timeseries
module Flight = Bmx_obs.Flight
module Metrics = Bmx_obs.Metrics

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_string = check Alcotest.string

(* ------------------------------------------------------------- series *)

(* Deterministic sample stream: spread over [windows] windows of [w]
   µsteps, [per] samples each, values drawn from a private Rng. *)
let feed_samples ts ~w ~windows ~per =
  let rng = Rng.make 99 in
  let all = ref [] in
  for win = 0 to windows - 1 do
    for k = 0 to per - 1 do
      let at = (win * w) + (k * w / per) in
      let v = float_of_int (Rng.int rng 10_000) in
      Ts.observe ts at ("latency.test", None) v;
      all := v :: !all
    done
  done;
  Ts.freeze ts;
  List.rev !all

let test_percentiles_match_summary_oracle () =
  (* 5 windows x 50 samples: under the per-window reservoir cap (128)
     and the whole-run Summary cap (1024), so neither side evicts and
     both must agree exactly at every percentile. *)
  let w = 1000 in
  let ts = Ts.create ~window:w () in
  let samples = feed_samples ts ~w ~windows:5 ~per:50 in
  let oracle = Stats.Summary.create () in
  List.iter (Stats.Summary.add oracle) samples;
  check_int "all samples offered" 250
    (Ts.sample_count ts ~since:0 ~until:(5 * w) "latency.test");
  List.iter
    (fun p ->
      check (Alcotest.float 0.0)
        (Printf.sprintf "p%g equals whole-run reservoir" p)
        (Stats.Summary.percentile oracle p)
        (Ts.percentile ts ~since:0 ~until:(5 * w) "latency.test" p))
    [ 0.; 50.; 90.; 99.; 99.9; 100. ]

let test_window_restriction () =
  (* Window k carries only the value k: an interval query must see
     exactly the windows it overlaps. *)
  let w = 100 in
  let ts = Ts.create ~window:w () in
  for win = 0 to 3 do
    for _ = 1 to 10 do
      Ts.observe ts (win * w) ("latency.test", None) (float_of_int win)
    done
  done;
  Ts.freeze ts;
  check (Alcotest.float 0.0) "single window" 2.
    (Ts.percentile ts ~since:200 ~until:300 "latency.test" 50.);
  check_int "interval sample count" 20
    (Ts.sample_count ts ~since:100 ~until:300 "latency.test");
  check (Alcotest.float 0.0) "two-window max" 2.
    (Ts.percentile ts ~since:100 ~until:300 "latency.test" 100.)

let test_counter_windows () =
  (* Counters sample as per-window deltas of the shared registry. *)
  let m = Metrics.create () in
  let ts = Ts.create ~window:100 ~metrics:m () in
  Ts.note ts 0;
  Metrics.incr m ~by:0 "ops";
  (* Close window 0: the new cell registers with its baseline here. *)
  Ts.note ts 100;
  Metrics.incr m ~by:20 "ops";
  Ts.note ts 200;
  Metrics.incr m ~by:5 "ops";
  Ts.note ts 300;
  Metrics.set_gauge m "level" 42;
  Ts.freeze ts;
  check_int "window 1 delta" 20 (Ts.counter_sum ts ~since:100 ~until:200 "ops");
  check_int "window 2 delta" 5 (Ts.counter_sum ts ~since:200 ~until:300 "ops");
  check_int "total" 25 (Ts.counter_sum ts ~since:0 ~until:400 "ops");
  check (Alcotest.option Alcotest.int) "gauge level at last close" (Some 42)
    (Ts.gauge_last ts ~since:0 ~until:400 "level")

let test_jsonl_round_trip () =
  let m = Metrics.create () in
  let ts = Ts.create ~window:100 ~metrics:m () in
  Ts.note ts 0;
  Metrics.incr m ~by:0 "ops";
  Ts.note ts 100;
  Metrics.incr m ~by:7 "ops";
  Metrics.set_gauge m ~node:2 "depth" 3;
  for k = 0 to 9 do
    Ts.observe ts (100 + (k * 10)) ("latency.test", None) (float_of_int k)
  done;
  Ts.note ts 300;
  Ts.freeze ts;
  let text = Ts.to_jsonl ts in
  match Ts.of_jsonl text with
  | Error m -> Alcotest.failf "of_jsonl: %s" m
  | Ok ts2 ->
      check_string "to_jsonl is a fixed point" text (Ts.to_jsonl ts2);
      check_int "counter survives" 7
        (Ts.counter_sum ts2 ~since:0 ~until:400 "ops");
      check (Alcotest.option Alcotest.int) "node-labelled gauge survives"
        (Some 3)
        (Ts.gauge_last ts2 ~since:0 ~until:400 ~node:2 "depth");
      check_int "samples survive" 10
        (Ts.sample_count ts2 ~since:0 ~until:400 "latency.test");
      check (Alcotest.float 0.0) "percentiles survive"
        (Ts.percentile ts ~since:0 ~until:400 "latency.test" 90.)
        (Ts.percentile ts2 ~since:0 ~until:400 "latency.test" 90.)

let test_eviction_deterministic_per_seed () =
  (* 400 samples into a 16-slot reservoir: heavy eviction.  Identical
     seeds must retain identical samples (and so identical JSONL). *)
  let run seed =
    let ts = Ts.create ~window:1000 ~reservoir:16 ~seed () in
    ignore (feed_samples ts ~w:1000 ~windows:2 ~per:200);
    Ts.to_jsonl ts
  in
  check_string "same seed, same series" (run 1) (run 1);
  check_int "offered count independent of eviction" 400
    (match Ts.of_jsonl (run 1) with
    | Ok ts -> Ts.sample_count ts ~since:0 ~until:2000 "latency.test"
    | Error _ -> -1)

let test_replay_matches_live () =
  (* The offline replay of a timed trace builds the same latency series
     a live tap would have. *)
  let timed =
    [
      (10, T.Acquire_start { actor = T.App; node = 0; uid = 1; tok = T.Read });
      ( 25,
        T.Acquire_done
          { actor = T.App; node = 0; uid = 1; tok = T.Read; addr_valid = true }
      );
      (40, T.Gc_begin { node = 1; group = false; bunches = [ 0 ] });
      (1200, T.Gc_end { node = 1; group = false; live = 3; reclaimed = 1 });
      ( 1300,
        T.Msg_sent { src = 0; dst = 1; kind = "stub_table"; seq = 1; rel = false }
      );
      ( 1450,
        T.Msg_delivered
          { src = 0; dst = 1; kind = "stub_table"; seq = 1; rel = false } );
    ]
  in
  let live = Ts.create ~window:1000 () in
  List.iter (fun (ts, e) -> Ts.event live ts e) timed;
  Ts.freeze live;
  let offline = Ts.replay ~window:1000 timed in
  check_string "replay equals live tap" (Ts.to_jsonl live) (Ts.to_jsonl offline);
  check (Alcotest.float 0.0) "acquire latency derived" 15.
    (Ts.percentile offline ~since:0 ~until:2000 "latency.token_acquire.read" 50.);
  check (Alcotest.float 0.0) "gc pause derived" 1160.
    (Ts.percentile offline ~since:0 ~until:2000 "latency.gc.pause" 50.);
  check (Alcotest.float 0.0) "msg flight derived" 150.
    (Ts.percentile offline ~since:0 ~until:2000 "latency.msg.stub_table" 50.)

(* ------------------------------------------------------------- flight *)

(* A lint-clean, certifier-clean event slice: an App acquire/release with
   a valid address, one FIFO-respecting message, one collection. *)
let benign_events =
  [
    (1, T.Acquire_start { actor = T.App; node = 0; uid = 1; tok = T.Read });
    ( 2,
      T.Acquire_done
        { actor = T.App; node = 0; uid = 1; tok = T.Read; addr_valid = true } );
    (3, T.Release { node = 0; uid = 1 });
    (4, T.Msg_sent { src = 0; dst = 1; kind = "stub_table"; seq = 1; rel = false });
    ( 5,
      T.Msg_delivered
        { src = 0; dst = 1; kind = "stub_table"; seq = 1; rel = false } );
    (6, T.Gc_begin { node = 1; group = false; bunches = [ 0 ] });
    (7, T.Gc_end { node = 1; group = false; live = 2; reclaimed = 0 });
  ]

let slice_events dump =
  String.split_on_char '\n' dump.Flight.text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match T.of_line line with
           | Ok e -> Some e
           | Error m -> Alcotest.failf "unparseable dump line %S: %s" line m)

let test_auto_trip_on_gc_token_acquire () =
  let m = Metrics.create () in
  Metrics.incr m ~by:3 "some.counter";
  let f = Flight.create ~metrics:m () in
  List.iter (fun (ts, e) -> Flight.record f ts e) benign_events;
  check_int "no dump before the alarm" 0 (List.length (Flight.dumps f));
  (* The §5 alarm: the collector entered the token-acquire path. *)
  Flight.record f 8
    (T.Acquire_start { actor = T.Gc; node = 1; uid = 7; tok = T.Read });
  match Flight.dumps f with
  | [ d ] ->
      check_string "trip reason names node and object" "gc-token-acquire:n1:o7"
        d.Flight.reason;
      check_int "tripped at the alarm event" 8 d.Flight.at;
      check_bool "metrics snapshot embedded" true
        (let re = "# metrics=" in
         let rec find i =
           i + String.length re <= String.length d.Flight.text
           && (String.sub d.Flight.text i (String.length re) = re
              || find (i + 1))
         in
         find 0);
      (* The slice replays through the linter and names the finding. *)
      let events = slice_events d in
      let vs = Bmx_check.Lint.run events in
      check_bool "lint names gc-acquired-token" true
        (List.exists
           (fun v -> v.Bmx_check.Lint.rule = Bmx_check.Lint.Gc_acquired_token)
           vs)
  | ds -> Alcotest.failf "expected exactly one dump, got %d" (List.length ds)

let test_auto_trip_on_truncating_recovery () =
  let f = Flight.create () in
  Flight.record f 1 (T.Crash { node = 2 });
  Flight.record f 2 (T.Restart { node = 2 });
  (* A clean recovery must not trip... *)
  Flight.record f 3 (T.Rvm_recover { node = 2; dropped = 0; lost = 0 });
  check_int "clean recovery is quiet" 0 (List.length (Flight.dumps f));
  (* ...a truncating one must. *)
  Flight.record f 4 (T.Rvm_recover { node = 2; dropped = 3; lost = 1 });
  match Flight.dumps f with
  | [ d ] -> check_string "reason" "rvm-truncation:n2" d.Flight.reason
  | ds -> Alcotest.failf "expected exactly one dump, got %d" (List.length ds)

let test_clean_slice_replays_clean () =
  let f = Flight.create () in
  List.iter (fun (ts, e) -> Flight.record f ts e) benign_events;
  Flight.trip f "external:test";
  match Flight.dumps f with
  | [ d ] ->
      let events = slice_events d in
      check_int "whole slice retained" (List.length benign_events)
        (List.length events);
      check_int "lint clean" 0 (List.length (Bmx_check.Lint.run events));
      let cert = Bmx_check.Races.certify ~overflowed:false events in
      check_bool "certifier clean" true (Bmx_check.Races.ok cert)
  | ds -> Alcotest.failf "expected exactly one dump, got %d" (List.length ds)

let test_ring_and_dump_bounds () =
  let f = Flight.create ~per_node:4 ~max_dumps:2 () in
  for i = 1 to 20 do
    Flight.record f i (T.Release { node = 0; uid = i })
  done;
  Flight.trip f "first";
  Flight.trip f "second";
  Flight.trip f "third (dropped)";
  let ds = Flight.dumps f in
  check_int "max_dumps bounds a trip storm" 2 (List.length ds);
  let d = List.hd ds in
  let events = slice_events d in
  check_int "ring keeps only the last per_node events" 4 (List.length events);
  (* The retained slice is the most recent suffix. *)
  check_bool "latest event present" true
    (List.exists (function T.Release { uid = 20; _ } -> true | _ -> false) events)

let test_pair_events_land_in_both_rings () =
  let f = Flight.create ~per_node:4 () in
  (* 8 node-0-only events overflow node 0's ring; the pair event with
     node 5 survives in node 5's ring. *)
  Flight.record f 1
    (T.Msg_sent { src = 0; dst = 5; kind = "stub_table"; seq = 1; rel = false });
  for i = 2 to 9 do
    Flight.record f i (T.Release { node = 0; uid = i })
  done;
  Flight.trip f "pair";
  let events = slice_events (List.hd (Flight.dumps f)) in
  check_bool "peer ring preserved the pair event" true
    (List.exists (function T.Msg_sent _ -> true | _ -> false) events)

let () =
  Alcotest.run "timeseries"
    [
      ( "series",
        [
          Alcotest.test_case "window percentiles match Summary oracle" `Quick
            test_percentiles_match_summary_oracle;
          Alcotest.test_case "interval queries respect windows" `Quick
            test_window_restriction;
          Alcotest.test_case "counter deltas and gauge levels" `Quick
            test_counter_windows;
          Alcotest.test_case "JSONL round trip" `Quick test_jsonl_round_trip;
          Alcotest.test_case "eviction deterministic per seed" `Quick
            test_eviction_deterministic_per_seed;
          Alcotest.test_case "offline replay matches live tap" `Quick
            test_replay_matches_live;
        ] );
      ( "flight",
        [
          Alcotest.test_case "auto trip on GC token acquire" `Quick
            test_auto_trip_on_gc_token_acquire;
          Alcotest.test_case "auto trip on truncating recovery" `Quick
            test_auto_trip_on_truncating_recovery;
          Alcotest.test_case "clean slice replays clean" `Quick
            test_clean_slice_replays_clean;
          Alcotest.test_case "ring and dump bounds" `Quick
            test_ring_and_dump_bounds;
          Alcotest.test_case "pair events land in both rings" `Quick
            test_pair_events_land_in_both_rings;
        ] );
    ]
