lib/memory/store.ml: Addr Array Bitmap Bmx_util Format Hashtbl Heap_obj Ids List Registry Segment Value
