test/test_rvm.mli:
