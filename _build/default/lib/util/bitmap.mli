(** Bit arrays at 4-byte granularity.

    §8 of the paper: the contents of a bunch are described by an
    {e object-map} (a set bit marks the start of an object) and a
    {e reference-map} (a set bit marks a pointer field), both implemented as
    bit arrays in which each bit describes a 4-byte address range. *)

type t

val create : range:Addr.Range.t -> t
(** A bitmap covering [range], all bits clear.  One bit per 4-byte word. *)

val range : t -> Addr.Range.t

val set : t -> Addr.t -> unit
(** Raises [Invalid_argument] if the address is outside the range or
    unaligned. *)

val clear : t -> Addr.t -> unit
val get : t -> Addr.t -> bool

val clear_all : t -> unit

val cardinal : t -> int
(** Number of set bits. *)

val iter_set : t -> (Addr.t -> unit) -> unit
(** Iterate over the addresses of all set bits, in increasing order. *)

val next_set : t -> Addr.t -> Addr.t option
(** [next_set t a] is the smallest set address [>= a], if any. *)

val copy : t -> t
val pp : Format.formatter -> t -> unit
