lib/dsm/directory.ml: Bmx_util Format Hashtbl Ids List Option
