(** Typed metrics registry with per-node labels.

    Supersedes the stringly [Stats.incr] registry for new code: every
    metric has a kind (counter, gauge, or virtual-time histogram) and an
    optional node label, so reports can aggregate per node or cluster
    wide without parsing names.  Time-valued histograms are in
    virtual-clock units (the µstep timestamps of {!Bmx_util.Trace_event},
    {!Bmx_util.Trace_event.quantum} µsteps per [Net.now] tick).

    Gauges come in two flavours: [set_gauge] stores the value pushed by
    the instrumented site, while [gauge_fn] registers a callback sampled
    lazily at {!snapshot} time — the right choice for occupancy numbers
    (heap objects, unacked messages) where polling beats hot-path
    updates. *)

open Bmx_util

type t

val create : unit -> t

(** {1 Recording} *)

val incr : t -> ?node:Ids.Node.t -> ?by:int -> string -> unit
(** Bump a counter (created at zero on first use). *)

val set_gauge : t -> ?node:Ids.Node.t -> string -> int -> unit

val gauge_fn : t -> ?node:Ids.Node.t -> string -> (unit -> int) -> unit
(** Register a callback gauge, sampled at snapshot time.  Re-registering
    the same name/node replaces the callback. *)

val observe : t -> ?node:Ids.Node.t -> string -> float -> unit
(** Add a sample to a histogram (created on first use, with a seed
    derived from the name and node so runs are deterministic). *)

(** {1 Continuous sampling}

    The periodic sampler ({!Timeseries}) must not rebuild association
    lists per window, so instead of {!snapshot} it caches direct cell
    references obtained from {!sources} and refreshes the cache only
    when {!generation} moves (a new cell was registered).  Raw histogram
    samples reach it live through {!set_observer}. *)

val generation : t -> int
(** Bumped each time a new cell (any kind) is registered. *)

type source =
  | S_counter of int ref
  | S_gauge of int ref
  | S_gauge_fn of (unit -> int) ref

val sources : t -> ((string * Ids.Node.t option) * source) list
(** Direct references to every counter/gauge cell, unsorted; histograms
    are excluded (their raw samples flow through the observer).  Reading
    through the returned refs allocates nothing. *)

val set_observer :
  t -> (string -> Ids.Node.t option -> float -> unit) option -> unit
(** Install (or clear) the live histogram-sample observer, called as
    [f name node sample] on every {!observe}.  At most one observer. *)

(** {1 Snapshots} *)

type summary = {
  s_count : int;
  s_min : float;
  s_max : float;
  s_mean : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
}

type value =
  | Counter of int
  | Gauge of int
  | Histogram of summary

type snapshot = ((string * Ids.Node.t option) * value) list
(** Sorted by name, then unlabelled before labelled, then node id. *)

val snapshot : t -> snapshot
(** Callback gauges are sampled now; a callback that raises yields a
    gauge of 0 rather than poisoning the snapshot. *)

val get : snapshot -> ?node:Ids.Node.t -> string -> value option

val counter_total : snapshot -> string -> int
(** Sum of a counter over every label (0 if absent). *)

val diff : before:snapshot -> after:snapshot -> snapshot
(** Counter deltas ([after - before]); gauges and histograms are taken
    from [after] as-is (they are levels, not flows). *)

(** {1 Export} *)

val to_text : snapshot -> string
(** Human-readable table, one metric per line. *)

val to_json : snapshot -> Json.t
(** A JSON array of [{name, node?, kind, ...}] objects. *)
