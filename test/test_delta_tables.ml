(* Equivalence of the indexed stub tables and the delta-reassembled
   mirrors with plain list semantics (PR 4).

   A reference model maintains the sender's stub tables as naive lists
   with the documented semantics (adds prepend-if-absent, replaces
   install verbatim).  Random op sequences — adds, wholesale replaces,
   broadcast rounds (some with every table message dropped), and
   crash/restart of either side — drive the real implementation, and
   after every op the indexed accessors must agree with the model
   exactly.  After every cleanly delivered round the receiver's mirror
   (rebuilt from fulls and one-round deltas, healed by pull-resyncs
   after losses and restarts) must cover precisely the stubs the model
   holds, and reassemble exactly the model's exiting list. *)

open Bmx_util
module Cluster = Bmx.Cluster
module Net = Bmx_netsim.Net
module Gc_state = Bmx_gc.Gc_state
module Scion_cleaner = Bmx_gc.Scion_cleaner
module Ssp = Bmx_gc.Ssp

let sender = 0
let receiver = 1
let pool_size = 6

type op =
  | Add_inter of int  (* pool index *)
  | Add_intra of int
  | Replace of bool array * bool array  (* presence masks over the pools *)
  | Round of bool array * bool  (* exiting mask, drop all table messages? *)
  | Crash_receiver
  | Crash_sender

let pp_mask m =
  String.concat "" (List.map (fun b -> if b then "1" else "0") (Array.to_list m))

let pp_op = function
  | Add_inter i -> Printf.sprintf "Add_inter %d" i
  | Add_intra i -> Printf.sprintf "Add_intra %d" i
  | Replace (a, b) -> Printf.sprintf "Replace (%s, %s)" (pp_mask a) (pp_mask b)
  | Round (m, drop) ->
      Printf.sprintf "Round (%s, drop=%b)" (pp_mask m) drop
  | Crash_receiver -> "Crash_receiver"
  | Crash_sender -> "Crash_sender"

let gen_mask = QCheck.Gen.(array_size (return pool_size) bool)

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun i -> Add_inter i) (int_bound (pool_size - 1)));
        (3, map (fun i -> Add_intra i) (int_bound (pool_size - 1)));
        (2, map2 (fun a b -> Replace (a, b)) gen_mask gen_mask);
        ( 6,
          map2
            (fun m d -> Round (m, d))
            gen_mask
            (frequency [ (4, return false); (1, return true) ]) );
        (1, return Crash_receiver);
        (1, return Crash_sender);
      ])

let arb_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 8 40) gen_op)

let masked pool mask =
  Array.to_list pool
  |> List.filteri (fun i _ -> mask.(i))

let sorted l = List.sort compare l

(* Aggregated across every generated sequence, so the suite can assert
   the interesting paths (delta sends, loss-triggered resyncs) really
   ran — a property that only ever exercised full tables would pass
   vacuously. *)
let total_deltas = ref 0
let total_fulls = ref 0
let total_resyncs = ref 0

let prop_indexed_tables_match_lists =
  QCheck.Test.make ~name:"indexed tables + delta mirrors = list semantics"
    ~count:150 arb_ops (fun ops ->
      let c = Cluster.create ~nodes:2 () in
      let g = Cluster.gc c in
      let b = Cluster.new_bunch c ~home:sender in
      let tb = Cluster.new_bunch c ~home:sender in
      let fault_rng = Rng.make 7 in
      (* Fixed pools of distinct records; every scion side lives at the
         receiver so it stays in the broadcast destination set whenever
         anything is published. *)
      let inter_pool =
        Array.init pool_size (fun i ->
            {
              Ssp.is_src_bunch = b;
              is_src_uid = 100 + i;
              is_created_at = sender;
              is_target_uid = 200 + i;
              is_target_bunch = tb;
              is_target_addr = Addr.null;
              is_scion_at = receiver;
            })
      in
      let intra_pool =
        Array.init pool_size (fun i ->
            { Ssp.ns_bunch = b; ns_uid = 300 + i; ns_holder = receiver })
      in
      let exiting_pool =
        Array.init pool_size (fun i -> (400 + i, receiver))
      in
      (* The reference model: the sender's tables with list semantics. *)
      let m_inter = ref [] and m_intra = ref [] and m_exiting = ref [] in
      let fail fmt = QCheck.Test.fail_reportf fmt in
      let check_views op =
        let vi = Gc_state.inter_stubs g ~node:sender ~bunch:b in
        if vi <> !m_inter then
          fail "after %s: inter view has %d entries, model %d" (pp_op op)
            (List.length vi) (List.length !m_inter);
        let vn = Gc_state.intra_stubs g ~node:sender ~bunch:b in
        if vn <> !m_intra then
          fail "after %s: intra view has %d entries, model %d" (pp_op op)
            (List.length vn) (List.length !m_intra);
        for i = 0 to pool_size - 1 do
          let uid = 100 + i in
          let got =
            sorted (Gc_state.inter_stubs_with_src g ~node:sender ~bunch:b ~uid)
          in
          let want =
            sorted (List.filter (fun s -> s.Ssp.is_src_uid = uid) !m_inter)
          in
          if got <> want then
            fail "after %s: inter_stubs_with_src %d diverges" (pp_op op) uid;
          let uid = 300 + i in
          let got =
            sorted (Gc_state.intra_stubs_for_uid g ~node:sender ~bunch:b ~uid)
          in
          let want =
            sorted (List.filter (fun s -> s.Ssp.ns_uid = uid) !m_intra)
          in
          if got <> want then
            fail "after %s: intra_stubs_for_uid %d diverges" (pp_op op) uid
        done
      in
      let check_mirror op =
        (* Only meaningful if this round actually addressed the receiver
           (after a sender crash the destination set can be empty until
           tables repopulate). *)
        if List.mem receiver (Gc_state.last_broadcast_dests g ~node:sender ~bunch:b)
        then begin
          Array.iteri
            (fun i stub ->
              let scion =
                {
                  Ssp.xs_src_bunch = b;
                  xs_src_uid = 100 + i;
                  xs_src_node = sender;
                  xs_target_uid = 200 + i;
                  xs_target_bunch = tb;
                }
              in
              let covered =
                Gc_state.mirror_covers_inter g ~node:receiver ~sender ~bunch:b
                  scion
              in
              let want =
                List.exists (fun s -> Ssp.inter_stub_matches s scion) !m_inter
              in
              if covered <> want then
                fail "after %s: mirror inter coverage of uid %d = %b, model %b"
                  (pp_op op) stub.Ssp.is_src_uid covered want)
            inter_pool;
          Array.iteri
            (fun i _ ->
              let scion =
                { Ssp.xn_bunch = b; xn_uid = 300 + i; xn_owner_side = sender }
              in
              let covered =
                Gc_state.mirror_covers_intra g ~node:receiver ~sender ~bunch:b
                  ~holder:receiver scion
              in
              let want =
                List.exists
                  (fun s -> Ssp.intra_stub_matches ~holder:receiver s scion)
                  !m_intra
              in
              if covered <> want then
                fail "after %s: mirror intra coverage of uid %d = %b, model %b"
                  (pp_op op) (300 + i) covered want)
            intra_pool;
          let got =
            sorted (Gc_state.mirror_exiting g ~node:receiver ~sender ~bunch:b)
          in
          if got <> sorted !m_exiting then
            fail "after %s: mirror exiting has %d entries, model %d" (pp_op op)
              (List.length got) (List.length !m_exiting)
        end
      in
      List.iter
        (fun op ->
          (match op with
          | Add_inter i ->
              let s = inter_pool.(i) in
              Gc_state.add_inter_stub g ~node:sender s;
              if not (List.mem s !m_inter) then m_inter := s :: !m_inter
          | Add_intra i ->
              let s = intra_pool.(i) in
              Gc_state.add_intra_stub g ~node:sender s;
              if not (List.mem s !m_intra) then m_intra := s :: !m_intra
          | Replace (mi, mn) ->
              let inter = masked inter_pool mi in
              let intra = masked intra_pool mn in
              Gc_state.replace_stub_tables g ~node:sender ~bunch:b ~inter
                ~intra;
              m_inter := inter;
              m_intra := intra
          | Round (mask, drop) ->
              let exiting = masked exiting_pool mask in
              if drop then
                Net.set_fault (Cluster.net c) ~kind:Net.Stub_table ~drop:1.0
                  ~dup:0.0 ~rng:fault_rng;
              (* The Collect call convention: tables already replaced,
                 broadcast, then record the exiting list for the next
                 round's destination set. *)
              ignore
                (Scion_cleaner.broadcast g ~node:sender ~bunch:b
                   ~old_inter:!m_inter ~old_intra:!m_intra ~exiting);
              Gc_state.record_exiting g ~node:sender ~bunch:b exiting;
              m_exiting := exiting;
              ignore (Cluster.drain c);
              if drop then Net.clear_faults (Cluster.net c)
              else check_mirror op
          | Crash_receiver ->
              Cluster.crash_node c ~node:receiver;
              Cluster.restart_node c ~node:receiver
          | Crash_sender ->
              Cluster.crash_node c ~node:sender;
              Cluster.restart_node c ~node:sender;
              m_inter := [];
              m_intra := [];
              m_exiting := []);
          check_views op)
        ops;
      (* One final clean round: whatever losses or crashes the sequence
         ended on, a single delivered message must restore the mirror to
         the truth (basis mismatches pull a resync synchronously). *)
      let exiting = !m_exiting in
      ignore
        (Scion_cleaner.broadcast g ~node:sender ~bunch:b ~old_inter:!m_inter
           ~old_intra:!m_intra ~exiting);
      Gc_state.record_exiting g ~node:sender ~bunch:b exiting;
      ignore (Cluster.drain c);
      check_mirror (Round (Array.make pool_size false, false));
      let stat name = Stats.get (Cluster.stats c) name in
      total_deltas := !total_deltas + stat "gc.cleaner.delta_sent";
      total_fulls := !total_fulls + stat "gc.cleaner.full_sent";
      total_resyncs := !total_resyncs + stat "gc.cleaner.resyncs";
      if stat "dsm.gc.acquire_read" + stat "dsm.gc.acquire_write" <> 0 then
        fail "table maintenance acquired a DSM token";
      true)

let test_paths_exercised () =
  Alcotest.(check bool)
    "delta messages were sent" true (!total_deltas > 0);
  Alcotest.(check bool) "full tables were sent" true (!total_fulls > 0);
  Alcotest.(check bool)
    "losses triggered mirror resyncs" true (!total_resyncs > 0)

let pinned_to_alcotest t =
  QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260807 |]) t

let () =
  Alcotest.run "delta_tables"
    [
      ( "equivalence",
        [
          pinned_to_alcotest prop_indexed_tables_match_lists;
          Alcotest.test_case "delta/full/resync paths exercised" `Quick
            test_paths_exercised;
        ] );
    ]
