test/test_races.mli:
