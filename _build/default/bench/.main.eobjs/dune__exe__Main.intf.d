bench/main.mli:
