(* The reliable-delivery layer of the network simulator: per-pair
   acknowledgements, retransmission with exponential backoff, duplicate
   suppression and reorder buffering (layered over the §6.1 transport —
   the paper needs none of this for safety; the platform wants it for
   liveness under sustained loss). *)

open Bmx_util
module Net = Bmx_netsim.Net

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let make ?(rto = 4) ?(rto_max = 64) ?(max_attempts = 20) kinds =
  let stats = Stats.create_registry () in
  let net : string Net.t = Net.create ~stats () in
  Net.set_reliable net ~rto ~rto_max ~max_attempts kinds;
  (net, stats)

(* ------------------------------------------------- exactly-once basics *)

let test_no_fault_exactly_once () =
  let net, _ = make [ Net.App_message ] in
  let seen = ref [] in
  Net.set_handler net (fun env -> seen := env.Net.payload :: !seen);
  List.iter
    (fun p -> Net.send net ~src:0 ~dst:1 ~kind:Net.App_message p)
    [ "a"; "b"; "c" ];
  ignore (Net.drain net);
  check (Alcotest.list Alcotest.string) "in order, once" [ "a"; "b"; "c" ]
    (List.rev !seen);
  check_int "all acked on delivery" 0 (Net.unacked_count net)

let test_duplicate_suppressed () =
  let net, stats = make [ Net.App_message ] in
  let seen = ref [] in
  Net.set_handler net (fun env -> seen := env.Net.payload :: !seen);
  Net.set_fault net ~kind:Net.App_message ~drop:0.0 ~dup:1.0 ~rng:(Rng.make 1);
  Net.send net ~src:0 ~dst:1 ~kind:Net.App_message "x";
  ignore (Net.drain net);
  check (Alcotest.list Alcotest.string) "handler saw it once" [ "x" ] !seen;
  check_int "the injected copy was suppressed" 1
    (Stats.get stats "net.rel.suppressed");
  check_int "acked" 0 (Net.unacked_count net)

let test_unreliable_dup_still_delivered_twice () =
  (* Regression: kinds outside the reliable set keep the raw §6.1
     semantics — an injected duplicate reaches the handler twice. *)
  let net, _ = make [] in
  let seen = ref 0 in
  Net.set_handler net (fun _ -> incr seen);
  Net.set_fault net ~kind:Net.Stub_table ~drop:0.0 ~dup:1.0 ~rng:(Rng.make 1);
  Net.send net ~src:0 ~dst:1 ~kind:Net.Stub_table "t";
  ignore (Net.drain net);
  check_int "raw transport delivers both copies" 2 !seen

let test_drop_then_retransmit_repairs () =
  let net, stats = make [ Net.App_message ] in
  let seen = ref [] in
  Net.set_handler net (fun env -> seen := env.Net.payload :: !seen);
  (* First transmission lost... *)
  Net.set_fault net ~kind:Net.App_message ~drop:1.0 ~dup:0.0 ~rng:(Rng.make 1);
  Net.send net ~src:0 ~dst:1 ~kind:Net.App_message "m1";
  ignore (Net.drain net);
  check (Alcotest.list Alcotest.string) "nothing arrived" [] !seen;
  check_int "still unacked" 1 (Net.unacked_count net);
  (* ...faults clear; the retransmission timer repairs the stream. *)
  Net.clear_faults net;
  ignore (Net.settle net);
  check (Alcotest.list Alcotest.string) "repaired" [ "m1" ] !seen;
  check_int "acked after repair" 0 (Net.unacked_count net);
  check_bool "a retransmission happened" true
    (Stats.get stats "net.retransmit.total" >= 1)

let test_reorder_buffering_restores_fifo () =
  (* m1's only transmission is lost while m2 gets through: the receiver
     must hold m2 back (never hand it to the handler ahead of the gap)
     until m1's retransmission lands. *)
  let net, stats = make [ Net.App_message ] in
  let seen = ref [] in
  Net.set_handler net (fun env -> seen := env.Net.payload :: !seen);
  Net.set_fault net ~kind:Net.App_message ~drop:1.0 ~dup:0.0 ~rng:(Rng.make 1);
  Net.send net ~src:0 ~dst:1 ~kind:Net.App_message "m1";
  Net.clear_faults net;
  Net.send net ~src:0 ~dst:1 ~kind:Net.App_message "m2";
  ignore (Net.drain net);
  check (Alcotest.list Alcotest.string) "m2 buffered behind the gap" [] !seen;
  check_int "buffered" 1 (Stats.get stats "net.rel.buffered");
  check_int "m1 unacked, m2 undeliverable hence unacked" 2
    (Net.unacked_count net);
  ignore (Net.settle net);
  check (Alcotest.list Alcotest.string) "handed off in send order"
    [ "m1"; "m2" ]
    (List.rev !seen);
  check_int "both acked" 0 (Net.unacked_count net)

(* --------------------------------------------------- backoff and caps *)

let test_backoff_doubles_and_caps () =
  let net, stats = make ~rto:4 ~rto_max:32 ~max_attempts:8 [ Net.App_message ] in
  Net.set_handler net (fun _ -> ());
  (* Black-hole transmissions; watch when the timer fires. *)
  Net.set_fault net ~kind:Net.App_message ~drop:1.0 ~dup:0.0 ~rng:(Rng.make 1);
  Net.send net ~src:0 ~dst:1 ~kind:Net.App_message "m";
  let fire_times = ref [] in
  for _ = 1 to 200 do
    if Net.tick net > 0 then fire_times := Net.now net :: !fire_times
  done;
  let times = List.rev !fire_times in
  let gaps =
    List.rev
      (snd
         (List.fold_left
            (fun (prev, acc) t -> (t, (t - prev) :: acc))
            (0, []) times))
  in
  (* attempt 1 is the original send; retransmissions fire after 4, then
     8, 16, 32, and stay capped at 32. *)
  check (Alcotest.list Alcotest.int) "exponential backoff, capped"
    [ 4; 8; 16; 32; 32; 32; 32 ]
    gaps;
  check_int "abandoned after max_attempts" 1
    (Stats.get stats "net.rel.abandoned");
  check_int "no longer tracked" 0 (Net.unacked_count net);
  (* Quiet after abandonment: no further retransmissions ever. *)
  let more = ref 0 in
  for _ = 1 to 100 do
    more := !more + Net.tick net
  done;
  check_int "silent after abandonment" 0 !more

(* -------------------------------------------- partitions and suspicion *)

let test_partition_suspect_then_heal_flush () =
  let net, stats = make ~rto:4 ~rto_max:32 ~max_attempts:8 [ Net.App_message ] in
  let seen = ref [] in
  Net.set_handler net (fun env -> seen := env.Net.payload :: !seen);
  Net.cut_link net ~src:0 ~dst:1;
  Net.cut_link net ~src:1 ~dst:0;
  List.iter
    (fun p -> Net.send net ~src:0 ~dst:1 ~kind:Net.App_message p)
    [ "p1"; "p2"; "p3" ];
  ignore (Net.drain net);
  (* Backoff reaches the suspect threshold (6 attempts at rto 4 capped
     at 32) a little past t = 124. *)
  for _ = 1 to 200 do
    ignore (Net.tick net)
  done;
  (* A severed path must never look like sustained loss: the sender goes
     suspect instead of abandoning, so nothing is given up no matter how
     long the cut lasts. *)
  check_bool "sender suspects the peer" true (Net.is_suspect net ~src:0 ~dst:1);
  check_bool "suspicion recorded" true
    (Stats.get stats "net.suspect_transitions" >= 1);
  check_int "nothing abandoned" 0 (Stats.get stats "net.rel.abandoned");
  check_int "backlog fully retained" 3 (Net.unacked_count net);
  check (Alcotest.list Alcotest.string) "nothing delivered" [] !seen;
  Net.heal_link net ~src:0 ~dst:1;
  Net.heal_link net ~src:1 ~dst:0;
  ignore (Net.settle net);
  check
    (Alcotest.list Alcotest.string)
    "backlog flushed in order, exactly once" [ "p1"; "p2"; "p3" ]
    (List.rev !seen);
  check_bool "suspicion cleared by the ack" false
    (Net.is_suspect net ~src:0 ~dst:1);
  check_int "all acked" 0 (Net.unacked_count net)

let test_long_partition_probe_rate_bounded () =
  (* Regression for the heal-flood hazard: during a long cut the sender
     must collapse to one probe per ceiling period per pair — not one
     backoff timer per queued message — or healing releases a
     retransmission flood and the virtual clock races ahead. *)
  let net, stats = make ~rto:4 ~rto_max:32 ~max_attempts:8 [ Net.App_message ] in
  let seen = ref [] in
  Net.set_handler net (fun env -> seen := env.Net.payload :: !seen);
  Net.cut_link net ~src:0 ~dst:1;
  Net.cut_link net ~src:1 ~dst:0;
  let payloads = List.init 5 (fun i -> Printf.sprintf "m%d" i) in
  List.iter (fun p -> Net.send net ~src:0 ~dst:1 ~kind:Net.App_message p) payloads;
  ignore (Net.drain net);
  let before = Stats.get stats "net.retransmit.total" in
  for _ = 1 to 960 do
    ignore (Net.tick net)
  done;
  let during = Stats.get stats "net.retransmit.total" - before in
  (* 960 ticks / 32-tick ceiling = 30 probe slots; pre-suspect backoff
     adds a few transmissions per message.  Well under the unsuspecting
     5 * 30 = 150. *)
  check_bool "probe rate bounded to the ceiling" true (during <= 60);
  check_bool "probes accounted" true (Stats.get stats "net.rel.probes" > 0);
  Net.heal_link net ~src:0 ~dst:1;
  Net.heal_link net ~src:1 ~dst:0;
  ignore (Net.settle net);
  check
    (Alcotest.list Alcotest.string)
    "whole backlog lands post-heal, in order" payloads (List.rev !seen);
  check_int "all acked" 0 (Net.unacked_count net)

let test_severed_path_outlives_small_attempt_cap () =
  (* Regression: with [max_attempts] below [suspect_after], the
     abandonment cap used to fire on a severed path before the failure
     detector could take over — silently giving up a reliable message
     the contract says is never abandoned and must land after heal. *)
  let net, stats = make ~rto:4 ~rto_max:32 ~max_attempts:3 [ Net.App_message ] in
  Net.set_backoff net ~suspect_after:6 ();
  let seen = ref [] in
  Net.set_handler net (fun env -> seen := env.Net.payload :: !seen);
  Net.cut_link net ~src:0 ~dst:1;
  Net.send net ~src:0 ~dst:1 ~kind:Net.App_message "survivor";
  ignore (Net.drain net);
  for _ = 1 to 400 do
    ignore (Net.tick net)
  done;
  check_int "never abandoned" 0 (Stats.get stats "net.rel.abandoned");
  check_bool "failure detector took over" true
    (Net.is_suspect net ~src:0 ~dst:1);
  check_int "backlog retained" 1 (Net.unacked_count net);
  Net.heal_link net ~src:0 ~dst:1;
  ignore (Net.settle net);
  check (Alcotest.list Alcotest.string) "delivered after heal" [ "survivor" ]
    !seen;
  check_int "acked" 0 (Net.unacked_count net)

let test_settle_terminates_during_partition () =
  let net, _ = make [ Net.App_message ] in
  Net.set_handler net (fun _ -> ());
  Net.cut_link net ~src:0 ~dst:1;
  Net.cut_link net ~src:1 ~dst:0;
  Net.send net ~src:0 ~dst:1 ~kind:Net.App_message "stuck";
  let before = Net.now net in
  ignore (Net.settle net);
  (* Settle must not spin its round budget waiting on a severed pair —
     the message is undeliverable until an explicit heal. *)
  check_bool "settle returns promptly" true (Net.now net - before < 1000);
  check_int "message survives the settle" 1 (Net.unacked_count net)

let test_backoff_knobs () =
  let net, _ = make ~rto:4 ~rto_max:32 [ Net.App_message ] in
  check_int "ceiling readable" 32 (Net.backoff_ceiling net);
  check_int "suspect threshold default" 6 (Net.suspect_after net);
  Net.set_backoff net ~rto_max:128 ~suspect_after:3 ();
  check_int "ceiling raised" 128 (Net.backoff_ceiling net);
  check_int "suspect threshold lowered" 3 (Net.suspect_after net)

let test_asymmetric_cut_blackholes_acks () =
  (* Payload direction open, ack direction cut: the receiver keeps
     getting (and suppressing) retransmissions while the sender hears
     nothing.  Healing the reverse link lets the next retransmission's
     ack complete the exchange. *)
  let net, stats = make ~rto:4 ~rto_max:32 [ Net.App_message ] in
  let seen = ref [] in
  Net.set_handler net (fun env -> seen := env.Net.payload :: !seen);
  Net.cut_link net ~src:1 ~dst:0;
  Net.send net ~src:0 ~dst:1 ~kind:Net.App_message "a1";
  ignore (Net.drain net);
  check (Alcotest.list Alcotest.string) "payload delivered once" [ "a1" ] !seen;
  check_int "ack blackholed" 1 (Stats.get stats "net.rel.ack_blackholed");
  check_int "sender still waiting" 1 (Net.unacked_count net);
  for _ = 1 to 40 do
    ignore (Net.tick net)
  done;
  check (Alcotest.list Alcotest.string) "duplicates all suppressed" [ "a1" ]
    !seen;
  Net.heal_link net ~src:1 ~dst:0;
  ignore (Net.settle net);
  check_int "acked after reverse heal" 0 (Net.unacked_count net);
  check (Alcotest.list Alcotest.string) "handler still saw it exactly once"
    [ "a1" ] !seen

(* ------------------------------------------------------- fault mixing *)

let test_drop_and_dup_same_kind_semantics () =
  (* Regression pinning Net.set_fault's documented dice order on one
     kind: the drop die rolls first, only kept messages roll the dup die
     — a message is never both dropped and duplicated, so over the raw
     transport [delivered = kept + duplicated] exactly. *)
  let net, stats = make [] in
  let seen = ref 0 in
  Net.set_handler net (fun _ -> incr seen);
  Net.set_fault net ~kind:Net.Stub_table ~drop:0.4 ~dup:0.5 ~rng:(Rng.make 99);
  let n = 500 in
  for i = 1 to n do
    Net.send net ~src:0 ~dst:1 ~kind:Net.Stub_table (string_of_int i)
  done;
  ignore (Net.drain net);
  let dropped = Stats.get stats "net.dropped.stub_table" in
  let duplicated = Stats.get stats "net.duplicated.stub_table" in
  check_bool "some dropped" true (dropped > 0);
  check_bool "some duplicated" true (duplicated > 0);
  check_int "delivered = kept + duplicated" ((n - dropped) + duplicated) !seen;
  (* Drops consume sequence numbers: the stream's clock ran to n. *)
  check_int "seq consumed by drops too" n (Net.current_seq net ~src:0 ~dst:1)

let test_exactly_once_under_heavy_loss_and_dup () =
  (* The headline property, deterministic per seed: whatever drop+dup do
     to individual transmissions of a reliable kind, each message is
     handed off exactly once, in per-pair send order. *)
  List.iter
    (fun seed ->
      let net, _ = make ~rto:2 ~rto_max:8 ~max_attempts:64 [ Net.App_message ] in
      let seen = Hashtbl.create 16 in
      let order = ref [] in
      Net.set_handler net (fun env ->
          Hashtbl.replace seen env.Net.payload
            (1
            + Option.value ~default:0 (Hashtbl.find_opt seen env.Net.payload));
          order := (env.Net.src, env.Net.dst, env.Net.payload) :: !order);
      Net.set_fault net ~kind:Net.App_message ~drop:0.4 ~dup:0.4
        ~rng:(Rng.make seed);
      let n = 40 in
      for i = 1 to n do
        Net.send net ~src:0 ~dst:1 ~kind:Net.App_message ("a" ^ string_of_int i);
        Net.send net ~src:2 ~dst:1 ~kind:Net.App_message ("b" ^ string_of_int i)
      done;
      (* Let the timers grind through the loss while it lasts... *)
      for _ = 1 to 50 do
        ignore (Net.tick net);
        ignore (Net.drain net)
      done;
      (* ...then the network heals. *)
      Net.clear_faults net;
      ignore (Net.settle net);
      check_int
        (Printf.sprintf "seed %d: all messages delivered" seed)
        (2 * n) (Hashtbl.length seen);
      Hashtbl.iter
        (fun p c ->
          check_int (Printf.sprintf "seed %d: %s exactly once" seed p) 1 c)
        seen;
      (* Per-pair FIFO at the handler. *)
      let stream src =
        List.rev !order
        |> List.filter (fun (s, _, _) -> s = src)
        |> List.map (fun (_, _, p) -> p)
      in
      check
        (Alcotest.list Alcotest.string)
        (Printf.sprintf "seed %d: stream 0->1 in order" seed)
        (List.init n (fun i -> "a" ^ string_of_int (i + 1)))
        (stream 0);
      check
        (Alcotest.list Alcotest.string)
        (Printf.sprintf "seed %d: stream 2->1 in order" seed)
        (List.init n (fun i -> "b" ^ string_of_int (i + 1)))
        (stream 2);
      check_int (Printf.sprintf "seed %d: nothing left" seed) 0
        (Net.unacked_count net))
    [ 1; 7; 42; 1234; 9001 ]

(* A property-based restatement: random fault rates, random message
   counts — exactly-once in-order always holds once the network heals. *)
let prop_exactly_once =
  QCheck.Test.make ~count:60 ~name:"reliable delivery is exactly-once in-order"
    QCheck.(
      triple (int_bound 30)
        (pair (float_bound_inclusive 0.6) (float_bound_inclusive 0.6))
        small_int)
    (fun (n, (drop, dup), seed) ->
      let n = n + 1 in
      let net, _ = make ~rto:2 ~rto_max:8 ~max_attempts:64 [ Net.App_message ] in
      let seen = ref [] in
      Net.set_handler net (fun env -> seen := env.Net.payload :: !seen);
      Net.set_fault net ~kind:Net.App_message ~drop ~dup ~rng:(Rng.make seed);
      for i = 1 to n do
        Net.send net ~src:0 ~dst:1 ~kind:Net.App_message (string_of_int i)
      done;
      for _ = 1 to 30 do
        ignore (Net.tick net);
        ignore (Net.drain net)
      done;
      Net.clear_faults net;
      ignore (Net.settle net);
      List.rev !seen = List.init n (fun i -> string_of_int (i + 1))
      && Net.unacked_count net = 0)

(* --------------------------------------------------- crash interaction *)

let test_crash_purges_and_stream_resumes () =
  let net, stats = make [ Net.App_message ] in
  let seen = ref [] in
  Net.set_handler net (fun env -> seen := env.Net.payload :: !seen);
  Net.send net ~src:0 ~dst:1 ~kind:Net.App_message "before";
  ignore (Net.drain net);
  (* Two messages in flight when the receiver dies. *)
  Net.send net ~src:0 ~dst:1 ~kind:Net.App_message "in-flight-1";
  Net.send net ~src:0 ~dst:1 ~kind:Net.App_message "in-flight-2";
  Net.set_down net 1;
  check_int "in-flight copies purged" 2
    (Stats.get stats "net.crash.purged_in_flight");
  check_bool "down" true (Net.is_down net 1);
  (* Retransmissions while down evaporate at the dead host. *)
  ignore (Net.tick ~dt:4 net);
  ignore (Net.drain net);
  check (Alcotest.list Alcotest.string) "nothing delivered while down"
    [ "before" ] (List.rev !seen);
  (* The node returns; the sender's buffer repairs the stream in order,
     exactly once. *)
  Net.set_up net 1;
  Net.send net ~src:0 ~dst:1 ~kind:Net.App_message "after";
  ignore (Net.settle net);
  check (Alcotest.list Alcotest.string) "stream resumed gap-free"
    [ "before"; "in-flight-1"; "in-flight-2"; "after" ]
    (List.rev !seen);
  check_int "all acked" 0 (Net.unacked_count net)

let test_sender_crash_loses_unacked () =
  (* The sender dies with messages unacknowledged: its retransmission
     buffer is volatile and dies too — the receiver simply sees a gapless
     prefix (the §6.1 contract never promises more than FIFO). *)
  let net, stats = make [ Net.App_message ] in
  let seen = ref [] in
  Net.set_handler net (fun env -> seen := env.Net.payload :: !seen);
  Net.send net ~src:0 ~dst:1 ~kind:Net.App_message "m1";
  ignore (Net.drain net);
  Net.set_fault net ~kind:Net.App_message ~drop:1.0 ~dup:0.0 ~rng:(Rng.make 1);
  Net.send net ~src:0 ~dst:1 ~kind:Net.App_message "m2";
  Net.clear_faults net;
  Net.set_down net 0;
  check_int "unacked buffer died with the sender" 1
    (Stats.get stats "net.crash.lost_unacked");
  Net.set_up net 0;
  (* The restarted sender opens a fresh conversation; delivery works. *)
  Net.send net ~src:0 ~dst:1 ~kind:Net.App_message "m3";
  ignore (Net.settle net);
  check (Alcotest.list Alcotest.string) "prefix + post-restart traffic"
    [ "m1"; "m3" ]
    (List.rev !seen);
  check_int "nothing pending" 0 (Net.unacked_count net)

let () =
  Alcotest.run "reliable"
    [
      ( "exactly-once",
        [
          Alcotest.test_case "no faults: in-order, once" `Quick
            test_no_fault_exactly_once;
          Alcotest.test_case "duplicate suppressed" `Quick
            test_duplicate_suppressed;
          Alcotest.test_case "unreliable kinds keep raw dup semantics" `Quick
            test_unreliable_dup_still_delivered_twice;
          Alcotest.test_case "drop repaired by retransmission" `Quick
            test_drop_then_retransmit_repairs;
          Alcotest.test_case "reorder buffering restores FIFO" `Quick
            test_reorder_buffering_restores_fifo;
        ] );
      ( "backoff",
        [
          Alcotest.test_case "partition: suspect then heal-flush" `Quick
            test_partition_suspect_then_heal_flush;
          Alcotest.test_case "long partition: probe rate bounded" `Quick
            test_long_partition_probe_rate_bounded;
          Alcotest.test_case "settle terminates during partition" `Quick
            test_settle_terminates_during_partition;
          Alcotest.test_case "severed path outlives small attempt cap" `Quick
            test_severed_path_outlives_small_attempt_cap;
          Alcotest.test_case "backoff knobs" `Quick test_backoff_knobs;
          Alcotest.test_case "asymmetric cut blackholes acks" `Quick
            test_asymmetric_cut_blackholes_acks;
          Alcotest.test_case "doubles, caps, abandons" `Quick
            test_backoff_doubles_and_caps;
        ] );
      ( "faults",
        [
          Alcotest.test_case "drop+dup on one kind: dice order pinned" `Quick
            test_drop_and_dup_same_kind_semantics;
          Alcotest.test_case "exactly-once under heavy loss+dup" `Quick
            test_exactly_once_under_heavy_loss_and_dup;
          QCheck_alcotest.to_alcotest prop_exactly_once;
        ] );
      ( "crash",
        [
          Alcotest.test_case "receiver crash: purge, evaporate, resume" `Quick
            test_crash_purges_and_stream_resumes;
          Alcotest.test_case "sender crash loses unacked buffer" `Quick
            test_sender_crash_loses_unacked;
        ] );
    ]
