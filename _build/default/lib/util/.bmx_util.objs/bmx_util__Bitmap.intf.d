lib/util/bitmap.mli: Addr Format
