lib/util/tracelog.mli: Format
