examples/txn_transfer.mli:
