(** The group garbage collector (§7).

    One GGC per node; it collects a {e group} of bunches local to the node
    with the same engine as the BGC.  Inter-bunch scions corresponding to
    SSPs that originate within the group are not part of the root, so
    inter-bunch cycles of garbage wholly inside the group are reclaimed.
    Bunches are grouped by the locality heuristic: every bunch mapped in
    memory at the site (no disk I/O). *)

val group : Gc_state.t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Ids.Bunch.t list
(** The locality-based group: all bunches currently mapped at the node. *)

val run :
  Gc_state.t ->
  node:Bmx_util.Ids.Node.t ->
  ?bunches:Bmx_util.Ids.Bunch.t list ->
  unit ->
  Collect.report
(** Collect [bunches] (default: {!group}) together at [node]. *)
