lib/util/ids.ml: Format Hashtbl Int Set
