lib/baseline/msweep_gc.ml: Bmx_dsm Bmx_gc Bmx_memory List
