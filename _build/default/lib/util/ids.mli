(** Identifier namespaces used across the BMX subsystems.

    Node identifiers name machines in the simulated network; bunch
    identifiers name bunches (§2.1); object uids give each allocated object
    a stable identity that survives GC copying.  Mutators never see uids —
    they work with addresses and forwarding pointers, exactly as in the
    paper — but the DSM keeps token state per object, and the object's
    address changes when its owner's BGC copies it, so bookkeeping keyed by
    a stable uid mirrors the real system's "the object itself" notion. *)

module type ID = sig
  type t = int

  val compare : t -> t -> int
  val equal : t -> t -> bool
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
  val to_string : t -> string
end

module Node : sig
  include ID

  val invalid : t
  (** Placeholder for "no node"; never a live node id. *)
end

module Bunch : ID

module Uid : sig
  include ID

  (** A fresh-uid source (one per cluster, so runs are deterministic). *)
  type gen

  val generator : unit -> gen
  val fresh : gen -> t
end

(** Hashtables and sets keyed by each id type. *)
module Node_tbl : Hashtbl.S with type key = Node.t
module Bunch_tbl : Hashtbl.S with type key = Bunch.t
module Uid_tbl : Hashtbl.S with type key = Uid.t
module Node_set : Set.S with type elt = Node.t
module Bunch_set : Set.S with type elt = Bunch.t
module Uid_set : Set.S with type elt = Uid.t
