open Bmx_util
module Cluster = Bmx.Cluster
module Value = Bmx_memory.Value

type config = {
  nodes : int;
  bunches : int;
  objects_per_bunch : int;
  out_degree : int;
  cross_bunch_prob : float;
  ops : int;
  write_prob : float;
  relink_prob : float;
  root_churn_prob : float;
  seed : int;
  mode : Bmx_dsm.Protocol.mode;
  update_policy : Bmx_dsm.Protocol.update_policy;
}

let default =
  {
    nodes = 4;
    bunches = 4;
    objects_per_bunch = 64;
    out_degree = 2;
    cross_bunch_prob = 0.2;
    ops = 2000;
    write_prob = 0.4;
    relink_prob = 0.3;
    root_churn_prob = 0.02;
    seed = 7;
    mode = Bmx_dsm.Protocol.Distributed;
    update_policy = Bmx_dsm.Protocol.Lazy;
  }

type t = {
  cfg : config;
  cluster : Cluster.t;
  objects : Addr.t array;
  (* Per node: the address under which the local mutator knows object i. *)
  handles : Addr.t array Ids.Node_tbl.t;
  rng : Rng.t;
  mutable rooted : (Ids.Node.t * int) list; (* (node, object index) *)
  (* Memoized cluster-wide reachability (a full-graph traversal): the
     legality check runs before every op, but only root churn and
     pointer relinks change the uid graph — reads, data writes, token
     transfers and collections all leave it intact. *)
  mutable reach_cache : Ids.Uid_set.t option;
}

let cluster t = t.cluster
let objects t = t.objects
let config t = t.cfg

let handle t ~node i =
  match Ids.Node_tbl.find_opt t.handles node with
  | Some arr -> arr.(i)
  | None -> t.objects.(i)

let set_handle t ~node i addr =
  match Ids.Node_tbl.find_opt t.handles node with
  | Some arr -> arr.(i) <- addr
  | None -> ()

let live_roots t = List.length t.rooted

let setup cfg =
  let c =
    Cluster.create ~nodes:cfg.nodes ~mode:cfg.mode
      ~update_policy:cfg.update_policy ~seed:cfg.seed ()
  in
  let rng = Rng.make (cfg.seed * 31) in
  let nodes = Cluster.nodes c in
  let node_arr = Array.of_list nodes in
  let bunches =
    List.init cfg.bunches (fun i ->
        Cluster.new_bunch c ~home:node_arr.(i mod Array.length node_arr))
  in
  (* Each bunch's population is created at its home node; edges through
     the barrier. *)
  let objects =
    Graphgen.random_graph c ~rng ~node:node_arr.(0) ~bunches
      ~objects:(cfg.bunches * cfg.objects_per_bunch)
      ~out_degree:cfg.out_degree ~cross_bunch_prob:cfg.cross_bunch_prob
  in
  let t =
    {
      cfg;
      cluster = c;
      objects;
      handles = Ids.Node_tbl.create cfg.nodes;
      rng;
      rooted = [];
      reach_cache = None;
    }
  in
  List.iter
    (fun n -> Ids.Node_tbl.add t.handles n (Array.copy objects))
    nodes;
  (* Root a quarter of the population, spread over the nodes, and give
     every node a replicated working set. *)
  Array.iteri
    (fun i addr ->
      if i mod 4 = 0 then begin
        let node = node_arr.(i mod Array.length node_arr) in
        let a = Cluster.acquire_read c ~node addr in
        Cluster.release c ~node a;
        set_handle t ~node i a;
        Cluster.add_root c ~node a;
        t.rooted <- (node, i) :: t.rooted
      end)
    objects;
  ignore (Cluster.drain c);
  t

let random_node t =
  let nodes = Array.of_list (Cluster.nodes t.cluster) in
  nodes.(Rng.int t.rng (Array.length nodes))

(* A mutator can only name objects it can reach from a root: pointers come
   from roots or from fields of reachable objects.  The handle table is a
   testing convenience and must not resurrect unreachable objects. *)
let invalidate_reachability t = t.reach_cache <- None

let reachable_uid t uid =
  let set =
    match t.reach_cache with
    | Some s -> s
    | None ->
        let s = Bmx.Audit.union_reachable t.cluster in
        t.reach_cache <- Some s;
        s
  in
  Ids.Uid_set.mem uid set

let uid_of_handle t addr = Bmx_dsm.Protocol.uid_of_addr (Cluster.proto t.cluster) addr

let one_op t =
  let c = t.cluster in
  let i = Rng.int t.rng (Array.length t.objects) in
  let node = random_node t in
  let addr = handle t ~node i in
  let legal =
    match uid_of_handle t addr with
    | Some uid -> reachable_uid t uid
    | None -> false
  in
  if not legal then () else
  if Rng.float t.rng 1.0 < t.cfg.root_churn_prob && t.rooted <> [] then begin
    (* Root churn: drop one root, add another — this is what creates
       garbage for the collector to find. *)
    match t.rooted with
    | (rn, ri) :: rest ->
        Cluster.remove_root c ~node:rn (handle t ~node:rn ri);
        t.rooted <- rest;
        let a = Cluster.acquire_read c ~node addr in
        Cluster.release c ~node a;
        set_handle t ~node i a;
        Cluster.add_root c ~node a;
        t.rooted <- t.rooted @ [ (node, i) ];
        invalidate_reachability t
    | [] -> ()
  end
  else if Rng.float t.rng 1.0 < t.cfg.write_prob then begin
    let a = Cluster.acquire_write c ~node addr in
    set_handle t ~node i a;
    if Rng.float t.rng 1.0 < t.cfg.relink_prob && t.cfg.out_degree > 0 then begin
      let j = Rng.int t.rng (Array.length t.objects) in
      let field = Rng.int t.rng t.cfg.out_degree in
      let target = handle t ~node j in
      let alive =
        match uid_of_handle t target with
        | Some uid -> reachable_uid t uid
        | None -> false
      in
      if alive then Cluster.write c ~node a field (Value.Ref target)
      else Cluster.write c ~node a field Value.nil;
      invalidate_reachability t
    end
    else
      Cluster.write c ~node a t.cfg.out_degree (Value.Data (Rng.int t.rng 1000));
    Cluster.release c ~node a
  end
  else begin
    let a = Cluster.acquire_read c ~node addr in
    set_handle t ~node i a;
    ignore (Cluster.read c ~node a t.cfg.out_degree);
    Cluster.release c ~node a
  end

let run_ops t ?ops () =
  let n = match ops with Some n -> n | None -> t.cfg.ops in
  (* Callers may have mutated the cluster directly (crashes, manual
     writes) since the last batch: trust nothing across the boundary. *)
  invalidate_reachability t;
  for _ = 1 to n do
    (* An op may target an object that has legitimately died (its roots
       were all dropped and a collection ran): real mutators cannot name
       such objects, but the driver keeps raw handles.  Skip those ops. *)
    try one_op t with Failure _ -> ()
  done
