(** A bounded, structured event trace.

    Every subsystem can record one-line events into a shared ring buffer;
    `bmxctl --trace` and failing tests dump the tail to show {e what the
    protocol actually did} — token moves, invalidations, collections,
    table exchanges — in order.  Recording is O(1) and allocation-light;
    a disabled trace costs one branch. *)

type t

type event = {
  seq : int;  (** global sequence number, monotonically increasing *)
  category : string;  (** e.g. "dsm", "gc", "net", "cleaner" *)
  detail : string;
}

val create : ?capacity:int -> unit -> t
(** Ring buffer of [capacity] events (default 4096), enabled. *)

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val record : t -> category:string -> string -> unit
(** Append an event (dropping the oldest when full).  No-op when
    disabled. *)

val recordf : t -> category:string -> ('a, unit, string, unit) format4 -> 'a
(** [recordf t ~category fmt ...] — formatted variant.  When the trace
    is disabled no string is built (the arguments are swallowed
    unformatted), so hot paths need no [enabled] guard — but keep the
    arguments themselves cheap (immediates, not [to_string] calls):
    OCaml still evaluates them. *)

val events : t -> event list
(** Retained events, oldest first. *)

val recent : t -> int -> event list
(** The last [n] events, oldest first. *)

val length : t -> int
val total_recorded : t -> int
(** Including events that have been dropped from the ring. *)

val clear : t -> unit
val pp_event : Format.formatter -> event -> unit
