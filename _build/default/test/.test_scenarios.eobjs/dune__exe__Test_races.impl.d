test/test_races.ml: Alcotest Bmx Bmx_dsm Bmx_gc Bmx_memory Bmx_netsim Bmx_util Ids Result Stats
