(** Baseline: strongly consistent mark-and-sweep (Kordale-style, §9).

    The second comparator the paper's Related Work names: "this GC
    algorithm is based on the mark & sweep technique, and objects are
    kept strongly consistent".  The model here:

    - {b strong consistency for marking}: before tracing, the collector
      acquires a read token for every local object of the bunch (so it
      marks the consistent object graph, not the local possibly stale
      copies) — DSM traffic attributed to the collector, like the
      locking copier;
    - {b no compaction}: live objects stay where they are.  Dead cells
      are removed and the reachability tables are regenerated, but
      segments never empty out and can never be handed back — the
      fragmentation the paper's copying design exists to avoid (§1),
      measured by experiment E18. *)

val run :
  Bmx_gc.Gc_state.t ->
  node:Bmx_util.Ids.Node.t ->
  bunch:Bmx_util.Ids.Bunch.t ->
  Bmx_gc.Collect.report
(** Mark (under read tokens) and sweep the bunch's replica at [node]. *)
