lib/workload/oo7.ml: Addr Array Bmx Bmx_dsm Bmx_memory Bmx_util Ids List Rng
