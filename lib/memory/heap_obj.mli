(** A node's local copy of a shared object.

    Each object has a header preceding its data with system information such
    as the object's size (§2.1).  Because bunches are replicated, every node
    holds its {e own} copy record for an object — copies may be mutually
    inconsistent between synchronization points, which is precisely what the
    BGC tolerates (§4.2).  The [uid] is the stable cross-node identity used
    by DSM token bookkeeping; mutators only ever see addresses.

    Representation: the record is a {e handle} into a flat arena
    ({!Flatheap}) — fields and the version counter are raw tagged ints in
    one big [Bigarray], not boxed [Value.t]s.  [base]/[gen] name the slot;
    every access checks [gen] so a use-after-reclaim raises
    [Invalid_argument] instead of silently reading a recycled slot. *)

type t = private {
  uid : Bmx_util.Ids.Uid.t;
  bunch : Bmx_util.Ids.Bunch.t;  (** bunch the object was allocated from *)
  heap : Flatheap.t;  (** arena holding the fields and version *)
  base : int;  (** slot base word in [heap] *)
  gen : int;  (** slot generation this handle was created under *)
}

val make :
  ?version:int ->
  ?heap:Flatheap.t ->
  uid:Bmx_util.Ids.Uid.t ->
  bunch:Bmx_util.Ids.Bunch.t ->
  fields:Value.t array ->
  unit ->
  t
(** [version] defaults to 0 (a freshly allocated object).  Copies made
    by the collector must pass the source's version: the version is the
    object's mutator-visible write counter, and a GC copy is not a
    write.  [heap] defaults to {!Flatheap.default}; stores allocate into
    their own arena. *)

val num_fields : t -> int

val version : t -> int
(** The mutator-visible write counter (bumped by {!set} only). *)

val size_bytes : t -> int
(** Header (two words) plus one word per field. *)

val header_bytes : int

val get : t -> int -> Value.t
(** Raises [Invalid_argument] on out-of-range index. *)

val set : t -> int -> Value.t -> unit
(** Writes the field and bumps the version. *)

val fixup : t -> int -> Value.t -> unit
(** Writes the field {e without} bumping the version.  For GC/protocol
    pointer retargeting (forwarder collapse, copy-forwarding) that
    rewrites an address to an alias of the same object: the value the
    mutator observes is unchanged, so the version — the mutator-visible
    write counter used by the happens-before certifier — must not move. *)

val get_raw : t -> int -> int
(** The raw tagged word of field [i] (see {!Value.to_raw}).  Bounds- and
    generation-checked; no allocation. *)

val clone : ?heap:Flatheap.t -> t -> t
(** Deep copy (fresh arena slot), same uid — a new replica or a GC copy.
    [heap] selects the destination arena (defaults to the source's own);
    the DSM passes the receiving store's arena when installing a grant.
    The paper's BGC copies objects non-destructively (§4.1). *)

val overwrite : t -> from:t -> unit
(** Replace [t]'s contents (fields and version) with [from]'s in place.
    The two must have the same uid and arity.  (The DSM installs grants
    as fresh clones so the segment maps stay accurate; this is for
    callers managing their own copies.) *)

val free : t -> unit
(** Release the arena slot.  Any later access through this (or any other)
    handle to the slot raises.  Owned by {!Store} — callers holding
    handles must not free. *)

val iter_pointers : t -> (Bmx_util.Addr.t -> unit) -> unit
(** Apply [f] to every non-null pointer field in field order.  Raw scan:
    no per-field allocation — the collectors' trace primitive. *)

val iteri_pointers : t -> (int -> Bmx_util.Addr.t -> unit) -> unit
(** Like {!iter_pointers} but passing the field index. *)

val pointers : t -> Bmx_util.Addr.t list
(** Addresses of all non-null pointer fields, in field order. *)

val fields_copy : t -> Value.t array
(** Decoded copy of all fields — for persistence snapshots and tests;
    allocates, keep off hot paths. *)

type image = {
  im_uid : Bmx_util.Ids.Uid.t;
  im_bunch : Bmx_util.Ids.Bunch.t;
  im_version : int;
  im_fields : Value.t array;
}
(** A plain-value snapshot of an object.  Anything that must outlive the
    arena slot stores one of these, not a handle — in particular the RVM
    disks: their per-record checksums hash the stored value, and a handle
    would hash the shared mutable arena, turning every later mutator
    write into phantom corruption at recovery. *)

val to_image : t -> image
val of_image : ?heap:Flatheap.t -> image -> t
(** Materialize the snapshot as a fresh object (fresh arena slot),
    preserving uid, bunch and version. *)

val image_copy : image -> image
val image_pointers : image -> Bmx_util.Addr.t list

val mark : t -> unit
(** Set this object's bit in the arena mark bitmap.  Traces that mark
    must {!unmark} everything they marked (the bitmap is shared and never
    bulk-cleared). *)

val unmark : t -> unit

val is_marked : t -> bool

val pp : Format.formatter -> t -> unit
