open Bmx_util
module Cluster = Bmx.Cluster
module Protocol = Bmx_dsm.Protocol
module Value = Bmx_memory.Value

type config = {
  nodes : int;
  bunches : int;
  objects_per_bunch : int;
  out_degree : int;
  cross_bunch_prob : float;
  ops : int;
  write_prob : float;
  relink_prob : float;
  root_churn_prob : float;
  seed : int;
  mode : Bmx_dsm.Protocol.mode;
  update_policy : Bmx_dsm.Protocol.update_policy;
  full_rescan_legality : bool;
  shards : int;
  locality : int;
}

let default =
  {
    nodes = 4;
    bunches = 4;
    objects_per_bunch = 64;
    out_degree = 2;
    cross_bunch_prob = 0.2;
    ops = 2000;
    write_prob = 0.4;
    relink_prob = 0.3;
    root_churn_prob = 0.02;
    seed = 7;
    mode = Bmx_dsm.Protocol.Distributed;
    update_policy = Bmx_dsm.Protocol.Lazy;
    full_rescan_legality = false;
    shards = 1;
    locality = 0;
  }

type t = {
  cfg : config;
  cluster : Cluster.t;
  objects : Addr.t array;
  (* Per node: the address under which the local mutator knows object i. *)
  handles : Addr.t array Ids.Node_tbl.t;
  rng : Rng.t;
  node_arr : Ids.Node.t array; (* cached — random_node must not allocate *)
  uids : Ids.Uid.t array; (* uid of object i (stable for its lifetime) *)
  uid_index : int Ids.Uid_tbl.t; (* uid -> population index *)
  reach : Reach.t; (* incremental legality memo (mirror of the cluster) *)
  (* Rooted set as a ring buffer: churn pops the oldest and pushes the
     newest — O(1), where the old list append was O(live roots). *)
  mutable root_nodes : Ids.Node.t array;
  mutable root_is : int array;
  mutable root_head : int;
  mutable root_len : int;
  (* Memoized from-scratch reachability, used only when the config asks
     for [full_rescan_legality] — kept as the slow baseline the
     complexity tests compare the mirror against. *)
  mutable reach_cache : Ids.Uid_set.t option;
}

let cluster t = t.cluster
let objects t = t.objects
let config t = t.cfg

let handle t ~node i =
  match Ids.Node_tbl.find_opt t.handles node with
  | Some arr -> arr.(i)
  | None -> t.objects.(i)

let set_handle t ~node i addr =
  match Ids.Node_tbl.find_opt t.handles node with
  | Some arr -> arr.(i) <- addr
  | None -> ()

let live_roots t = t.root_len

(* --- rooted-set ring buffer ------------------------------------------- *)

let root_push t node i =
  let cap = Array.length t.root_is in
  if t.root_len = cap then begin
    let cap' = max 8 (2 * cap) in
    let nodes' = Array.make cap' node and is' = Array.make cap' 0 in
    for k = 0 to t.root_len - 1 do
      let src = (t.root_head + k) mod cap in
      nodes'.(k) <- t.root_nodes.(src);
      is'.(k) <- t.root_is.(src)
    done;
    t.root_nodes <- nodes';
    t.root_is <- is';
    t.root_head <- 0
  end;
  let cap = Array.length t.root_is in
  let at = (t.root_head + t.root_len) mod cap in
  t.root_nodes.(at) <- node;
  t.root_is.(at) <- i;
  t.root_len <- t.root_len + 1

let root_pop t =
  let cap = Array.length t.root_is in
  let node = t.root_nodes.(t.root_head) and i = t.root_is.(t.root_head) in
  t.root_head <- (t.root_head + 1) mod cap;
  t.root_len <- t.root_len - 1;
  (node, i)

(* --- legality memo ----------------------------------------------------- *)

(* A mutator can only name objects it can reach from a root: pointers come
   from roots or from fields of reachable objects.  The handle table is a
   testing convenience and must not resurrect unreachable objects. *)
let invalidate_reachability t = t.reach_cache <- None

let reachable_uid t uid =
  let set =
    match t.reach_cache with
    | Some s -> s
    | None ->
        Perfcount.counters.Perfcount.memo_full_rebuilds <-
          Perfcount.counters.Perfcount.memo_full_rebuilds + 1;
        let s = Bmx.Audit.union_reachable t.cluster in
        t.reach_cache <- Some s;
        s
  in
  Ids.Uid_set.mem uid set

let uid_of_handle t addr = Protocol.uid_of_addr (Cluster.proto t.cluster) addr

(* Legality of operating on population index [i] through [addr]: the
   object must be reachable AND the handle must still be a mapped name
   for it (a node that slept through enough collections can hold an
   address whose forwarder chain has been retired; the op on it would
   fail, so a real mutator could not issue it). *)
let legal t i addr =
  if t.cfg.full_rescan_legality then
    match uid_of_handle t addr with
    | Some uid -> reachable_uid t uid
    | None -> false
  else Reach.reachable t.reach i && uid_of_handle t addr <> None

(* Rebuild the mirror from cluster truth: per-slot edges read from each
   object's owner copy (the audit's authoritative-graph rule, with the
   same stale-replica fallback), roots from every node's root set.
   O(population) — run once per batch, amortized over the batch's ops. *)
let resync t =
  if not t.cfg.full_rescan_legality then begin
    Perfcount.counters.Perfcount.memo_resyncs <-
      Perfcount.counters.Perfcount.memo_resyncs + 1;
    Reach.reset t.reach;
    let proto = Cluster.proto t.cluster in
    let module Store = Bmx_memory.Store in
    let module Heap_obj = Bmx_memory.Heap_obj in
    let copy_at node uid =
      let store = Protocol.store proto node in
      match Store.addr_of_uid store uid with
      | None -> None
      | Some a -> (
          match Store.resolve store a with
          | Some (_, obj) -> Some obj
          | None -> None)
    in
    let arity = t.cfg.out_degree in
    Array.iteri
      (fun i uid ->
        let obj =
          match Protocol.owner_of proto uid with
          | Some owner when copy_at owner uid <> None -> copy_at owner uid
          | Some _ | None -> (
              match Protocol.replica_nodes proto uid with
              | n :: _ -> copy_at n uid
              | [] -> None)
        in
        match obj with
        | None -> () (* reclaimed — unreachable, no edges *)
        | Some obj ->
            Heap_obj.iteri_pointers obj (fun slot target ->
                if slot < arity then
                  match Protocol.uid_of_addr proto target with
                  | Some tu -> (
                      match Ids.Uid_tbl.find_opt t.uid_index tu with
                      | Some j -> Reach.set_edge t.reach ~src:i ~slot j
                      | None -> ())
                  | None -> ()))
      t.uids;
    List.iter
      (fun node ->
        List.iter
          (fun addr ->
            match Protocol.uid_of_addr proto addr with
            | Some uid -> (
                match Ids.Uid_tbl.find_opt t.uid_index uid with
                | Some i -> Reach.add_root t.reach i
                | None -> ())
            | None -> ())
          (Cluster.roots t.cluster ~node))
      (Cluster.nodes t.cluster)
  end

let setup cfg =
  let c =
    Cluster.create ~nodes:cfg.nodes ~shards:cfg.shards ~mode:cfg.mode
      ~update_policy:cfg.update_policy ~seed:cfg.seed ()
  in
  let rng = Rng.make (cfg.seed * 31) in
  let nodes = Cluster.nodes c in
  let node_arr = Array.of_list nodes in
  let bunches =
    List.init cfg.bunches (fun i ->
        Cluster.new_bunch c ~home:node_arr.(i mod Array.length node_arr))
  in
  (* Each bunch's population is created at its home node; edges through
     the barrier. *)
  let objects =
    Graphgen.random_graph ~window:cfg.locality c ~rng ~node:node_arr.(0)
      ~bunches
      ~objects:(cfg.bunches * cfg.objects_per_bunch)
      ~out_degree:cfg.out_degree ~cross_bunch_prob:cfg.cross_bunch_prob
  in
  let proto = Cluster.proto c in
  let uids =
    Array.map
      (fun addr ->
        match Protocol.uid_of_addr proto addr with
        | Some uid -> uid
        | None -> failwith "Driver.setup: fresh object has no uid")
      objects
  in
  let uid_index = Ids.Uid_tbl.create (Array.length objects) in
  Array.iteri (fun i uid -> Ids.Uid_tbl.replace uid_index uid i) uids;
  let t =
    {
      cfg;
      cluster = c;
      objects;
      handles = Ids.Node_tbl.create cfg.nodes;
      rng;
      node_arr;
      uids;
      uid_index;
      reach = Reach.create ~n:(Array.length objects) ~arity:cfg.out_degree;
      root_nodes = Array.make 8 node_arr.(0);
      root_is = Array.make 8 0;
      root_head = 0;
      root_len = 0;
      reach_cache = None;
    }
  in
  List.iter
    (fun n -> Ids.Node_tbl.add t.handles n (Array.copy objects))
    nodes;
  (* Root a quarter of the population, spread over the nodes, and give
     every node a replicated working set. *)
  Array.iteri
    (fun i addr ->
      if i mod 4 = 0 then begin
        let node = node_arr.(i mod Array.length node_arr) in
        let a = Cluster.acquire_read c ~node addr in
        Cluster.release c ~node a;
        set_handle t ~node i a;
        Cluster.add_root c ~node a;
        root_push t node i
      end)
    objects;
  ignore (Cluster.drain c);
  resync t;
  t

let random_node t = t.node_arr.(Rng.int t.rng (Array.length t.node_arr))

(* Locality window: node [n] works on objects of bunches
   [n .. n+locality-1] (mod bunches).  Objects are laid out round-robin
   (object [i] lives in bunch [i mod bunches]), so a window pick is pure
   index arithmetic.  A fixed window keeps the per-node working set
   constant as the cluster grows — the property the e22 scaling sweep
   depends on for flat per-node traffic. *)
let pick_local t node =
  let nb = t.cfg.bunches in
  let per = max 1 (Array.length t.objects / nb) in
  let w = Rng.int t.rng (min t.cfg.locality nb) in
  let b = (node + w) mod nb in
  min (Array.length t.objects - 1) ((Rng.int t.rng per * nb) + b)

let one_op t =
  let c = t.cluster in
  (* locality = 0 keeps the historical draw order (object then node) so
     existing seeded runs replay identically. *)
  let i, node =
    if t.cfg.locality <= 0 then
      let i = Rng.int t.rng (Array.length t.objects) in
      (i, random_node t)
    else
      let node = random_node t in
      (pick_local t node, node)
  in
  let addr = handle t ~node i in
  let incremental = not t.cfg.full_rescan_legality in
  if not (legal t i addr) then () else
  if Rng.float t.rng 1.0 < t.cfg.root_churn_prob && t.root_len > 0 then begin
    (* Root churn: drop one root, add another — this is what creates
       garbage for the collector to find. *)
    let rn, ri = root_pop t in
    let removed = Cluster.remove_root_checked c ~node:rn (handle t ~node:rn ri) in
    if incremental then begin
      if removed then Reach.drop_root t.reach ri
    end;
    let a = Cluster.acquire_read c ~node addr in
    Cluster.release c ~node a;
    set_handle t ~node i a;
    Cluster.add_root c ~node a;
    root_push t node i;
    if incremental then Reach.add_root t.reach i
    else invalidate_reachability t
  end
  else if Rng.float t.rng 1.0 < t.cfg.write_prob then begin
    let a = Cluster.acquire_write c ~node addr in
    set_handle t ~node i a;
    if Rng.float t.rng 1.0 < t.cfg.relink_prob && t.cfg.out_degree > 0 then begin
      let j =
        if t.cfg.locality <= 0 then Rng.int t.rng (Array.length t.objects)
        else pick_local t node
      in
      let field = Rng.int t.rng t.cfg.out_degree in
      let target = handle t ~node j in
      let alive = legal t j target in
      if alive then Cluster.write c ~node a field (Value.Ref target)
      else Cluster.write c ~node a field Value.nil;
      if incremental then
        Reach.set_edge t.reach ~src:i ~slot:field (if alive then j else -1)
      else invalidate_reachability t
    end
    else
      Cluster.write c ~node a t.cfg.out_degree (Value.Data (Rng.int t.rng 1000));
    Cluster.release c ~node a
  end
  else begin
    let a = Cluster.acquire_read c ~node addr in
    set_handle t ~node i a;
    ignore (Cluster.read c ~node a t.cfg.out_degree);
    Cluster.release c ~node a
  end

let run_ops t ?(resync_first = true) ?ops () =
  let n = match ops with Some n -> n | None -> t.cfg.ops in
  (* Callers may have mutated the cluster directly (crashes, manual
     writes) since the last batch: trust nothing across the boundary.
     [resync_first:false] skips the O(population) re-extraction for
     callers that know only driver ops have run — the complexity tests
     use it to measure the steady-state per-op cost in isolation. *)
  if resync_first then begin
    invalidate_reachability t;
    resync t
  end;
  for _ = 1 to n do
    (* An op may target an object that has legitimately died (its roots
       were all dropped and a collection ran): real mutators cannot name
       such objects, but the driver keeps raw handles.  Skip those ops. *)
    try one_op t with Failure _ -> ()
  done

let check_memo t =
  if t.cfg.full_rescan_legality then Ok ()
  else begin
    let truth = Bmx.Audit.union_reachable t.cluster in
    let bad = ref [] in
    Array.iteri
      (fun i uid ->
        let mirror = Reach.reachable t.reach i in
        let oracle = Ids.Uid_set.mem uid truth in
        if mirror <> oracle then bad := (i, mirror, oracle) :: !bad)
      t.uids;
    match !bad with
    | [] -> Ok ()
    | l ->
        Error
          (Printf.sprintf "legality memo diverged on %d object(s): %s"
             (List.length l)
             (String.concat ", "
                (List.map
                   (fun (i, m, o) ->
                     Printf.sprintf "#%d mirror=%b oracle=%b" i m o)
                   (List.filteri (fun k _ -> k < 8) (List.rev l)))))
  end
