(* Transactional transfers over the DSM — the §10 future work, built.

   Three branch offices move money between shared accounts inside
   transactions (two-phase token holding for isolation, undo for abort,
   RVM for durability), while the copying collector runs concurrently.
   The strongly consistent baseline collector cannot even start while a
   transaction is open.

   Run with: dune exec examples/txn_transfer.exe *)

open Bmx_util
module Cluster = Bmx.Cluster
module Value = Bmx_memory.Value
module Txn = Bmx_txn.Txn
module Rvm = Bmx_rvm.Rvm

let n_accounts = 8
let n_transfers = 60

let () =
  let c = Cluster.create ~nodes:3 ~seed:31 () in
  let b = Cluster.new_bunch c ~home:0 in
  let rng = Rng.make 64 in
  let accounts =
    Array.init n_accounts (fun _ ->
        Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1000 |])
  in
  Array.iter (fun a -> Cluster.add_root c ~node:0 a) accounts;
  let disk =
    Rvm.create ~copy:(fun (a, im) -> (a, Bmx_memory.Heap_obj.image_copy im)) ()
  in

  let committed = ref 0 and aborted = ref 0 and conflicts = ref 0 in
  for k = 1 to n_transfers do
    let node = k mod 3 in
    let src = accounts.(Rng.int rng n_accounts) in
    let dst = accounts.(Rng.int rng n_accounts) in
    let amount = 1 + Rng.int rng 50 in
    let t = Txn.begin_ c ~node in
    (try
       let take = match Txn.read t src 0 with Value.Data v -> v | _ -> 0 in
       Txn.write t src 0 (Value.Data (take - amount));
       let put = match Txn.read t dst 0 with Value.Data v -> v | _ -> 0 in
       Txn.write t dst 0 (Value.Data (put + amount));
       (* One in five transfers is abandoned (simulating validation
          failure): the undo log restores both balances. *)
       if Rng.int rng 5 = 0 then begin
         Txn.abort t;
         incr aborted
       end
       else begin
         Txn.commit ~durable:disk t;
         incr committed
       end
     with Txn.Conflict _ ->
       Txn.abort t;
       incr conflicts);
    (* The collector works right through the transaction stream. *)
    if k mod 10 = 0 then ignore (Cluster.gc_round c)
  done;

  let total =
    Array.fold_left
      (fun acc a ->
        let a' = Cluster.acquire_read c ~node:0 a in
        let v = match Cluster.read c ~node:0 a' 0 with Value.Data v -> v | _ -> 0 in
        Cluster.release c ~node:0 a';
        acc + v)
      0 accounts
  in
  Printf.printf "%d transfers: %d committed, %d aborted, %d conflicts\n"
    n_transfers !committed !aborted !conflicts;
  Printf.printf "ledger total: %d (conserved: %b)\n" total (total = n_accounts * 1000);
  Printf.printf "collector token acquires during the run: %d\n"
    (Stats.get (Cluster.stats c) "dsm.gc.acquire_read"
    + Stats.get (Cluster.stats c) "dsm.gc.acquire_write");
  (* The durable after-images survive a crash of the home site. *)
  Rvm.crash disk;
  ignore (Rvm.recover disk);
  Printf.printf "recovered %d durable account images from the RVM log\n"
    (Rvm.cardinal disk);
  match Bmx.Audit.check_safety c with
  | Ok () -> print_endline "heap audit: ok"
  | Error m -> failwith m
