(* The experiment harness: one table per figure (E1-E4) and per claim
   (E5-E13) of the paper.  See DESIGN.md §3 for the index and
   EXPERIMENTS.md for expected-vs-measured. *)

open Bmx_util
module Cluster = Bmx.Cluster
module Protocol = Bmx_dsm.Protocol
module Directory = Bmx_dsm.Directory
module Store = Bmx_memory.Store
module Value = Bmx_memory.Value
module Net = Bmx_netsim.Net
module Gc_state = Bmx_gc.Gc_state
module Scenario = Bmx_workload.Scenario
module Graphgen = Bmx_workload.Graphgen
module Driver = Bmx_workload.Driver
module Locking_gc = Bmx_baseline.Locking_gc
module Refcount = Bmx_baseline.Refcount
open Harness

(* ------------------------------------------------------------------ E1 *)

let e1 () =
  let f = Scenario.figure1 () in
  let c = f.Scenario.f1_cluster in
  let gc = Cluster.gc c in
  let t =
    Table.create ~title:"E1 (Figure 1): stub/scion tables after setup"
      ~columns:[ "node"; "table"; "entry" ]
  in
  List.iter
    (fun node ->
      List.iter
        (fun bunch ->
          List.iter
            (fun s ->
              Table.add_row t
                [ Ids.Node.to_string node; "inter-stub"; Fmt.str "%a" Bmx_gc.Ssp.pp_inter_stub s ])
            (Gc_state.inter_stubs gc ~node ~bunch);
          List.iter
            (fun s ->
              Table.add_row t
                [ Ids.Node.to_string node; "inter-scion"; Fmt.str "%a" Bmx_gc.Ssp.pp_inter_scion s ])
            (Gc_state.inter_scions gc ~node ~bunch);
          List.iter
            (fun s ->
              Table.add_row t
                [ Ids.Node.to_string node; "intra-stub"; Fmt.str "%a" Bmx_gc.Ssp.pp_intra_stub s ])
            (Gc_state.intra_stubs gc ~node ~bunch);
          List.iter
            (fun s ->
              Table.add_row t
                [ Ids.Node.to_string node; "intra-scion"; Fmt.str "%a" Bmx_gc.Ssp.pp_intra_scion s ])
            (Gc_state.intra_scions gc ~node ~bunch))
        [ f.f1_b1; f.f1_b2 ])
    [ f.f1_n1; f.f1_n2; f.f1_n3 ];
  let t2 =
    Table.create ~title:"E1 (Figure 1): token state per object per node"
      ~columns:[ "object"; "N1"; "N2"; "N3" ]
  in
  let proto = Cluster.proto c in
  let state_of node addr =
    match Store.resolve (Protocol.store proto node) addr with
    | None -> (
        match Protocol.uid_of_addr proto addr with
        | Some uid when Store.addr_of_uid (Protocol.store proto node) uid <> None ->
            "cached"
        | _ -> "-")
    | Some (_, obj) -> (
        match Directory.find (Protocol.directory proto node) obj.Bmx_memory.Heap_obj.uid with
        | Some r ->
            Directory.token_state_to_string r.Directory.state
            ^ (if r.Directory.is_owner then ",o" else "")
        | None -> "?")
  in
  List.iter
    (fun (name, addr) ->
      Table.add_row t2
        [ name; state_of f.f1_n1 addr; state_of f.f1_n2 addr; state_of f.f1_n3 addr ])
    [ ("o1", f.f1_o1); ("o2", f.f1_o2); ("o3", f.f1_o3); ("o5", f.f1_o5) ];
  [ t; t2 ]

(* ------------------------------------------------------------------ E2 *)

let e2 () =
  let f = Scenario.figure1 () in
  let c = f.Scenario.f1_cluster in
  let proto = Cluster.proto c in
  let uid_of a = Cluster.uid_at c ~node:f.f1_n1 a in
  let addr_at node u =
    match Store.addr_of_uid (Protocol.store proto node) u with
    | Some a -> Addr.to_string a
    | None -> "-"
  in
  let before =
    List.map
      (fun (n, a) -> (n, addr_at f.f1_n1 (uid_of a), addr_at f.f1_n2 (uid_of a)))
      [ ("o1", f.f1_o1); ("o2", f.f1_o2); ("o3", f.f1_o3) ]
  in
  let report, ms = time_ms (fun () -> Cluster.bgc c ~node:f.f1_n2 ~bunch:f.f1_b1) in
  let t =
    Table.create ~title:"E2 (Figure 2): BGC at N2 copies only locally-owned o2"
      ~columns:[ "object"; "N1 before"; "N2 before"; "N1 after"; "N2 after"; "moved at N2" ]
  in
  List.iter
    (fun (n, a1b, a2b) ->
      let u = uid_of (match n with "o1" -> f.f1_o1 | "o2" -> f.f1_o2 | _ -> f.f1_o3) in
      let a1a = addr_at f.f1_n1 u and a2a = addr_at f.f1_n2 u in
      Table.add_row t [ n; a1b; a2b; a1a; a2a; bool_cell (a2b <> a2a) ])
    before;
  let t2 =
    Table.create ~title:"E2: collection profile (claim: owner-only copying, no tokens)"
      ~columns:[ "metric"; "value"; "paper expectation" ]
  in
  Table.add_rowf t2 "objects copied|%d|1 (only o2 is owned at N2)" report.Bmx_gc.Collect.r_copied;
  Table.add_rowf t2 "objects scanned in place|%d|o1 and o3 (not owned)" report.Bmx_gc.Collect.r_scanned_in_place;
  Table.add_rowf t2 "local reference updates|%d|pointers into o2 rewritten, no token" report.Bmx_gc.Collect.r_ref_updates;
  Table.add_rowf t2 "collector token acquires|%d|0 (never interferes)" (gc_token_traffic c);
  Table.add_rowf t2 "collector-caused invalidations|%d|0" (gc_invalidations c);
  Table.add_rowf t2 "wall time (ms)|%.3f|-" ms;
  [ t; t2 ]

(* ------------------------------------------------------------------ E3 *)

let e3 () =
  let t =
    Table.create
      ~title:"E3 (Figure 3 / §5): write-token acquire of o1 by N2, cases a-d"
      ~columns:
        [ "case"; "grant msgs"; "piggybacked updates"; "o1 valid at N2"; "o2 reachable at N2"; "N2 owns o1" ]
  in
  List.iter
    (fun (name, case) ->
      let f = Scenario.figure3 ~case in
      let c = f.Scenario.f3_cluster in
      let proto = Cluster.proto c in
      let before = snapshot c in
      let o1' = Cluster.acquire_write c ~node:f.f3_n2 f.f3_o1 in
      let grants = delta ~before c "net.sent.token_grant" in
      let piggy = delta ~before c "net.piggyback.token_grant" in
      let s2 = Protocol.store proto f.f3_n2 in
      let o1_ok = Store.resolve s2 o1' <> None in
      let o2_ok =
        match Store.resolve s2 o1' with
        | Some (_, obj) -> (
            match Bmx_memory.Heap_obj.get obj 0 with
            | Value.Ref p -> (
                match Store.resolve s2 p with
                | Some (_, o2) -> o2.Bmx_memory.Heap_obj.uid = f.f3_o2_uid
                | None -> false)
            | Value.Data _ -> false)
        | None -> false
      in
      Cluster.release c ~node:f.f3_n2 o1';
      let owns = Protocol.owner_of proto f.f3_o1_uid = Some f.f3_n2 in
      Table.add_row t
        [
          name;
          string_of_int grants;
          string_of_int piggy;
          bool_cell o1_ok;
          bool_cell o2_ok;
          bool_cell owns;
        ])
    [
      ("(a) no GC", Scenario.Case_a);
      ("(b) granter moved o1+o2", Scenario.Case_b);
      ("(c) granter moved o1", Scenario.Case_c);
      ("(d) requester moved o2", Scenario.Case_d);
    ];
  [ t ]

(* ------------------------------------------------------------------ E4 *)

let e4 () =
  let f = Scenario.figure4 () in
  let c = f.Scenario.f4_cluster in
  let t =
    Table.create
      ~title:"E4 (Figure 4 / §6.2): intra-bunch SSP deletion chain after the root drops"
      ~columns:[ "step"; "o1@N1"; "o1@N2"; "o1@N3"; "target alive"; "intra SSP" ]
  in
  let gc = Cluster.gc c in
  let row step =
    let cached n = bool_cell (Cluster.cached_at c ~node:n ~uid:f.f4_o1_uid) in
    let target =
      bool_cell (Ids.Uid_set.mem f.f4_target_uid (Bmx.Audit.cached_anywhere c))
    in
    let ssp =
      bool_cell
        (Gc_state.intra_scions gc ~node:f.f4_n3 ~bunch:f.f4_bunch
         |> List.exists (fun (s : Bmx_gc.Ssp.intra_scion) -> s.Bmx_gc.Ssp.xn_uid = f.f4_o1_uid))
    in
    Table.add_row t [ step; cached f.f4_n1; cached f.f4_n2; cached f.f4_n3; target; ssp ]
  in
  row "initial (rooted at N1)";
  ignore (Cluster.collect_until_quiescent c ());
  row "after full GC (still rooted)";
  Cluster.remove_root c ~node:f.f4_n1 f.f4_o1;
  row "root dropped";
  let rec rounds k =
    if k > 6 then ()
    else begin
      let n = Cluster.gc_round c in
      row (Printf.sprintf "gc round %d (reclaimed %d)" k n);
      if Bmx.Audit.total_cached_copies c > 0 then rounds (k + 1)
    end
  in
  rounds 1;
  [ t ]

(* ------------------------------------------------------------------ E5 *)

(* Explicit-update mode (the §4.4 alternative to piggybacking): after a
   collection, the new locations recorded by the from-space forwarders
   are pushed to every replica holder immediately, as dedicated
   messages. *)
let push_updates_explicitly c ~node ~bunch =
  let proto = Cluster.proto c in
  let store = Protocol.store proto node in
  let updates =
    List.concat_map
      (fun seg ->
        if seg.Bmx_memory.Segment.role = Bmx_memory.Segment.From_space then
          List.filter_map
            (fun (addr, cell) ->
              match cell with
              | Store.Forwarder _ -> (
                  let cur = Store.current_addr store addr in
                  match Protocol.uid_of_addr proto cur with
                  | Some uid when cur <> addr ->
                      Some { Protocol.lu_uid = uid; old_addr = addr; new_addr = cur }
                  | Some _ | None -> None)
              | Store.Object _ -> None)
            (Store.cells_in_range store seg.Bmx_memory.Segment.range)
        else [])
      (Store.segments_of_bunch store bunch)
  in
  if updates <> [] then
    List.iter
      (fun dst ->
        if dst <> node then Protocol.send_location_updates proto ~src:node ~dst updates)
      (Protocol.bunch_replica_nodes proto bunch)

let run_with_collector collector =
  let d = Driver.setup { Driver.default with ops = 1200; seed = 11 } in
  let c = Driver.cluster d in
  for _ = 1 to 4 do
    Driver.run_ops d ~ops:300 ();
    List.iter
      (fun bunch ->
        List.iter
          (fun node ->
            (match collector with
            | `Bgc | `Bgc_explicit -> ignore (Cluster.bgc c ~node ~bunch)
            | `Msweep ->
                ignore (Bmx_baseline.Msweep_gc.run (Cluster.gc c) ~node ~bunch)
            | `Locking -> ignore (Locking_gc.run (Cluster.gc c) ~node ~bunch));
            if collector = `Bgc_explicit then push_updates_explicitly c ~node ~bunch)
          (Protocol.bunch_replica_nodes (Cluster.proto c) bunch))
      (Protocol.bunches (Cluster.proto c));
    ignore (Cluster.drain c)
  done;
  c

let e5 () =
  let t =
    Table.create
      ~title:
        "E5 (§4.1/§8): GC/DSM interference under a mixed workload (4 nodes, 4 bunches, 1200 ops, 4 GC waves)"
      ~columns:
        [ "collector"; "gc token acquires"; "gc invalidations"; "gc ownerPtr hops"; "app invalidations"; "safety" ]
  in
  List.iter
    (fun (name, collector) ->
      let c = run_with_collector collector in
      Table.add_row t
        [
          name;
          string_of_int (gc_token_traffic c);
          string_of_int (gc_invalidations c);
          string_of_int (Stats.get (Cluster.stats c) "dsm.gc.hops");
          string_of_int (Stats.get (Cluster.stats c) "dsm.app.invalidations");
          bool_cell (Result.is_ok (Bmx.Audit.check_safety c));
        ])
    [
      ("BMX BGC (paper)", `Bgc);
      ("token-acquiring copier (Le Sergent-style)", `Locking);
      ("strongly consistent mark&sweep (Kordale-style)", `Msweep);
    ];
  [ t ]

(* ------------------------------------------------------------------ E6 *)

let e6 () =
  let t =
    Table.create
      ~title:"E6 (§4.4/§8): message counts by kind for the same workload + collections"
      ~columns:
        [ "collector"; "token req"; "token grant"; "invalidate"; "stub tables"; "addr updates"; "scion msgs"; "piggybacked"; "total msgs" ]
  in
  List.iter
    (fun (name, collector) ->
      let c = run_with_collector collector in
      let k = kind_count c in
      Table.add_row t
        [
          name;
          string_of_int (k Net.Token_request);
          string_of_int (k Net.Token_grant);
          string_of_int (k Net.Invalidate);
          string_of_int (k Net.Stub_table);
          string_of_int (k Net.Addr_update);
          string_of_int (k Net.Scion_message);
          string_of_int (Stats.get (Cluster.stats c) "net.piggyback.token_grant");
          string_of_int (Net.total_messages (Cluster.net c));
        ])
    [
      ("BMX BGC, piggyback (paper)", `Bgc);
      ("BMX BGC + explicit updates", `Bgc_explicit);
      ("token-acquiring copier", `Locking);
    ];
  [ t ]

(* ------------------------------------------------------------------ E7 *)

let e7 () =
  let t =
    Table.create
      ~title:
        "E7 (§4.1): mutator pause vs heap size — BGC pause is the flip (root \
         enumeration); the copy/scan runs concurrently (O'Toole); the \
         strongly-consistent collector stops the mutators for the whole \
         token sweep + copy"
      ~columns:
        [ "live objects"; "flip pause ms"; "concurrent BGC work ms"; "STW pause ms"; "STW/flip" ]
  in
  List.iter
    (fun objects ->
      (* BGC side: the mutator-visible pause is the flip — enumerating the
         roots (mutator stacks, scions, entering ownerPtrs, §4.1). *)
      let c1, b1, _ = replicated_bunch ~objects ~replicas:1 () in
      let gc1 = Cluster.gc c1 in
      let proto1 = Cluster.proto c1 in
      let (), flip_ms =
        time_ms (fun () ->
            ignore (Gc_state.roots gc1 ~node:0);
            ignore (Gc_state.inter_scions gc1 ~node:0 ~bunch:b1);
            ignore (Gc_state.intra_scions gc1 ~node:0 ~bunch:b1);
            ignore (Directory.entering_uids (Protocol.directory proto1 0)))
      in
      let _, bgc_ms = time_ms (fun () -> Cluster.bgc c1 ~node:0 ~bunch:b1) in
      (* STW side: identical heap and replication; pause = everything. *)
      let c2, b2, _ = replicated_bunch ~objects ~replicas:1 () in
      let _, stw_ms =
        time_ms (fun () -> Locking_gc.run (Cluster.gc c2) ~node:1 ~bunch:b2)
      in
      Table.add_row t
        [
          string_of_int objects;
          Printf.sprintf "%.4f" flip_ms;
          Printf.sprintf "%.3f" bgc_ms;
          Printf.sprintf "%.3f" stw_ms;
          Printf.sprintf "%.0fx" (stw_ms /. max flip_ms 0.0001);
        ])
    [ 1000; 4000; 16000 ];
  [ t ]

(* ------------------------------------------------------------------ E8 *)

let e8 () =
  let t =
    Table.create
      ~title:
        "E8 (§8 cost property): BGC cost at one node as the bunch is replicated on k nodes"
      ~columns:
        [ "replicas"; "BGC ms"; "BGC msgs"; "BGC gc-tokens"; "locking ms"; "locking msgs"; "locking gc-tokens" ]
  in
  List.iter
    (fun replicas ->
      let bgc_row =
        let c, b, _ = replicated_bunch ~objects:128 ~replicas () in
        let m0 = Net.total_messages (Cluster.net c) in
        let _, ms = time_ms (fun () -> Cluster.bgc c ~node:0 ~bunch:b) in
        ignore (Cluster.drain c);
        (ms, Net.total_messages (Cluster.net c) - m0, gc_token_traffic c)
      in
      let lock_row =
        let c, b, _ = replicated_bunch ~objects:128 ~replicas () in
        let m0 = Net.total_messages (Cluster.net c) in
        let _, ms = time_ms (fun () -> Locking_gc.run (Cluster.gc c) ~node:0 ~bunch:b) in
        ignore (Cluster.drain c);
        (ms, Net.total_messages (Cluster.net c) - m0, gc_token_traffic c)
      in
      let bms, bm, bt = bgc_row and lms, lm, lt = lock_row in
      Table.add_row t
        [
          string_of_int replicas;
          Printf.sprintf "%.3f" bms;
          string_of_int bm;
          string_of_int bt;
          Printf.sprintf "%.3f" lms;
          string_of_int lm;
          string_of_int lt;
        ])
    [ 0; 1; 2; 4; 7 ];
  [ t ]

(* ------------------------------------------------------------------ E9 *)

let e9 () =
  let make () =
    let c = Cluster.create ~nodes:2 () in
    let b1 = Cluster.new_bunch c ~home:0 in
    let b2 = Cluster.new_bunch c ~home:0 in
    let live = Graphgen.linked_list c ~node:0 ~bunch:b1 ~len:40 in
    Cluster.add_root c ~node:0 live;
    let _acyclic_garbage = Graphgen.linked_list c ~node:0 ~bunch:b1 ~len:60 in
    let _intra_ring = Graphgen.ring c ~node:0 ~bunch:b1 ~len:30 in
    let _cross_ring = Graphgen.cross_bunch_ring c ~node:0 ~bunches:[ b1; b2 ] ~len:30 in
    c
  in
  let t =
    Table.create
      ~title:
        "E9 (§6/§7): garbage reclaimed by category (40 live, 60 acyclic garbage, 30-cycle intra-bunch, 30-cycle inter-bunch)"
      ~columns:[ "collector"; "reclaimed"; "garbage left"; "live survivors"; "note" ]
  in
  (* BMX: BGC rounds then GGC. *)
  let c = make () in
  let bgc_reclaimed = Cluster.collect_until_quiescent c () in
  let after_bgc = Ids.Uid_set.cardinal (Bmx.Audit.garbage_retained c) in
  Table.add_rowf t "BGC rounds only|%d|%d|%d|intra-bunch cycles die; inter-bunch cycle needs GGC"
    bgc_reclaimed after_bgc
    (Ids.Uid_set.cardinal (Bmx.Audit.union_reachable c));
  let ggc_r = Cluster.ggc c ~node:0 in
  ignore (Cluster.drain c);
  ignore (Cluster.collect_until_quiescent c ());
  Table.add_rowf t "+ GGC at N0|%d|%d|%d|inter-bunch cycle reclaimed (§7)"
    (bgc_reclaimed + ggc_r.Bmx_gc.Collect.r_reclaimed)
    (Ids.Uid_set.cardinal (Bmx.Audit.garbage_retained c))
    (Ids.Uid_set.cardinal (Bmx.Audit.union_reachable c));
  (* Reference counting. *)
  let c2 = make () in
  let o = Refcount.analyze c2 () in
  Table.add_rowf t "ref-counting (Bevan)|%d|%d|%d|cycles never reclaimed (%d stuck in cycles)"
    o.Refcount.rc_reclaimed
    (Ids.Uid_set.cardinal (Bmx.Audit.garbage_retained c2) - o.Refcount.rc_reclaimed)
    (Ids.Uid_set.cardinal (Bmx.Audit.union_reachable c2))
    o.Refcount.rc_cycle_garbage;
  [ t ]

(* ----------------------------------------------------------------- E10 *)

let e10 () =
  let t =
    Table.create
      ~title:
        "E10 (§6.1): tolerance to message loss — idempotent tables (resend) vs inc/dec counting"
      ~columns:
        [ "loss %"; "BMX rounds to collect"; "BMX lost-live"; "BMX leaked"; "RC leaked"; "RC freed-live" ]
  in
  List.iter
    (fun loss ->
      (* BMX side: a dead remote chain; stub tables dropped with
         probability [loss]; each round resends. *)
      let c = Cluster.create ~nodes:2 () in
      let b1 = Cluster.new_bunch c ~home:0 in
      let b2 = Cluster.new_bunch c ~home:1 in
      let tail = Cluster.alloc c ~node:1 ~bunch:b2 [| Value.Data 1 |] in
      let head = Cluster.alloc c ~node:0 ~bunch:b1 [| Value.Ref tail |] in
      Cluster.add_root c ~node:0 head;
      ignore (Cluster.drain c);
      let _dead = Graphgen.linked_list c ~node:0 ~bunch:b1 ~len:50 in
      Cluster.remove_root c ~node:0 head;
      let rng = Rng.make (loss + 99) in
      Net.set_fault (Cluster.net c) ~kind:Net.Stub_table
        ~drop:(float_of_int loss /. 100.) ~dup:0.1 ~rng;
      let rounds = ref 0 in
      while Bmx.Audit.total_cached_copies c > 0 && !rounds < 40 do
        incr rounds;
        ignore (Cluster.gc_round c)
      done;
      let lost = Ids.Uid_set.cardinal (Bmx.Audit.lost_objects c) in
      let leaked = Bmx.Audit.total_cached_copies c in
      (* RC side: same shape. *)
      let c2 = Cluster.create ~nodes:1 () in
      let b = Cluster.new_bunch c2 ~home:0 in
      let _dead = Graphgen.linked_list c2 ~node:0 ~bunch:b ~len:52 in
      let live = Graphgen.linked_list c2 ~node:0 ~bunch:b ~len:10 in
      Cluster.add_root c2 ~node:0 live;
      let o =
        Refcount.analyze c2 ~loss_prob:(float_of_int loss /. 100.) ~dup_prob:0.1
          ~rng:(Rng.make (loss + 7)) ()
      in
      Table.add_row t
        [
          string_of_int loss;
          (if leaked = 0 then string_of_int !rounds else Printf.sprintf ">%d" !rounds);
          string_of_int lost;
          string_of_int leaked;
          string_of_int o.Refcount.rc_leaked;
          string_of_int o.Refcount.rc_premature;
        ])
    [ 0; 10; 25; 50 ];
  [ t ]

(* ----------------------------------------------------------------- E13 *)

let e13 () =
  let module Rvm = Bmx_rvm.Rvm in
  let t =
    Table.create ~title:"E13 (§2.1/§8): RVM recovery around a collection"
      ~columns:[ "scenario"; "objects before"; "objects after recovery"; "heap intact" ]
  in
  let run crash_mid =
    let c = Cluster.create ~nodes:1 () in
    let b = Cluster.new_bunch c ~home:0 in
    let head = Graphgen.linked_list c ~node:0 ~bunch:b ~len:25 in
    Cluster.add_root c ~node:0 head;
    let store = Protocol.store (Cluster.proto c) 0 in
    let disk = Rvm.create ~copy:(fun (a, o) -> (a, Bmx_memory.Heap_obj.clone o)) () in
    Rvm.begin_tx disk;
    List.iter (fun (a, o) -> Rvm.set disk a (a, o)) (Store.objects_of_bunch store b);
    Rvm.commit disk;
    (* The collection runs inside a transaction mirroring the heap moves:
       from-space keys retired, to-space keys written (§8's from/to-space
       files). *)
    let old_keys = Rvm.fold disk ~init:[] ~f:(fun a _ acc -> a :: acc) in
    let _ = Cluster.bgc c ~node:0 ~bunch:b in
    Rvm.begin_tx disk;
    List.iter (Rvm.delete disk) old_keys;
    List.iter (fun (a, o) -> Rvm.set disk a (a, o)) (Store.objects_of_bunch store b);
    if crash_mid then Rvm.crash_mid_commit disk else Rvm.commit disk;
    if not crash_mid then Rvm.crash disk;
    ignore (Rvm.recover disk);
    Rvm.cardinal disk
  in
  let committed = run false in
  Table.add_row t
    [ "crash after committed GC"; "25"; string_of_int committed; bool_cell (committed >= 25) ];
  let torn = run true in
  Table.add_row t
    [ "crash mid-commit (torn log)"; "25"; string_of_int torn; bool_cell (torn = 25) ];
  [ t ]

(* ----------------------------------------------------------------- E14 *)

let e14 () =
  let t =
    Table.create
      ~title:
        "E14 (ablation §1 motivation): OO7-style design-database traversals \
         with structural churn and per-wave collection"
      ~columns:
        [ "collector"; "T1 ms"; "T2 ms"; "reclaimed"; "gc tokens"; "gc invalidations" ]
  in
  List.iter
    (fun (name, collector) ->
      let c = Cluster.create ~nodes:2 () in
      let m = Bmx_workload.Oo7.build c ~node:0 Bmx_workload.Oo7.default in
      let _, t1_ms = time_ms (fun () -> ignore (Bmx_workload.Oo7.t1 m ~node:1)) in
      let _, t2_ms = time_ms (fun () -> ignore (Bmx_workload.Oo7.t2 m ~node:1)) in
      ignore (Bmx_workload.Oo7.churn m ~node:0);
      let garbage_before = Ids.Uid_set.cardinal (Bmx.Audit.garbage_retained c) in
      List.iter
        (fun bunch ->
          List.iter
            (fun node ->
              ignore
                (match collector with
                | `Bgc -> Cluster.bgc c ~node ~bunch
                | `Locking -> Locking_gc.run (Cluster.gc c) ~node ~bunch))
            (Protocol.bunch_replica_nodes (Cluster.proto c) bunch))
        (Protocol.bunches (Cluster.proto c));
      ignore (Cluster.drain c);
      (* Ownership churn from the locking sweep can pin garbage behind
         stale entering entries for a round; settle both sides the same
         way before measuring what the wave achieved. *)
      ignore (Cluster.collect_until_quiescent c ());
      let garbage_after = Ids.Uid_set.cardinal (Bmx.Audit.garbage_retained c) in
      Table.add_row t
        [
          name;
          Printf.sprintf "%.2f" t1_ms;
          Printf.sprintf "%.2f" t2_ms;
          string_of_int (garbage_before - garbage_after);
          string_of_int (gc_token_traffic c);
          string_of_int (gc_invalidations c);
        ])
    [ ("BMX BGC", `Bgc); ("token-acquiring copier", `Locking) ];
  [ t ]

(* ----------------------------------------------------------------- E15 *)

let e15 () =
  let t =
    Table.create
      ~title:
        "E15 (ablation, §2.2 vs §8): distributed vs centralized copy-sets \
         under the mixed workload"
      ~columns:
        [ "copy-set mode"; "ownerPtr hops"; "token requests"; "invalidations"; "total msgs"; "survivors" ]
  in
  List.iter
    (fun (name, mode) ->
      let d = Driver.setup { Driver.default with ops = 1500; seed = 19; mode } in
      Driver.run_ops d ();
      let c = Driver.cluster d in
      ignore (Cluster.collect_until_quiescent c ());
      Table.add_row t
        [
          name;
          string_of_int (Stats.get (Cluster.stats c) "dsm.app.hops");
          string_of_int (kind_count c Net.Token_request);
          string_of_int (Stats.get (Cluster.stats c) "dsm.app.invalidations");
          string_of_int (Net.total_messages (Cluster.net c));
          string_of_int (Ids.Uid_set.cardinal (Bmx.Audit.union_reachable c));
        ])
    [
      ("distributed (paper §2.2)", Protocol.Distributed);
      ("centralized (prototype §8)", Protocol.Centralized);
    ];
  [ t ]

(* ----------------------------------------------------------------- E16 *)

let e16 () =
  let t =
    Table.create
      ~title:
        "E16 (ablation, §4.4): lazy vs eager propagation of new locations"
      ~columns:
        [ "update policy"; "refs fixed by GC"; "refs fixed on acquire/sweep"; "piggybacked"; "total msgs" ]
  in
  List.iter
    (fun (name, update_policy) ->
      let d =
        Driver.setup { Driver.default with ops = 1200; seed = 23; update_policy }
      in
      Driver.run_ops d ~ops:600 ();
      ignore (Cluster.gc_round (Driver.cluster d));
      Driver.run_ops d ~ops:600 ();
      let c = Driver.cluster d in
      ignore (Cluster.collect_until_quiescent c ());
      Table.add_row t
        [
          name;
          string_of_int (Stats.get (Cluster.stats c) "gc.ref_updates");
          string_of_int (Stats.get (Cluster.stats c) "dsm.ref_fixes");
          string_of_int (Stats.get (Cluster.stats c) "net.piggyback.token_grant");
          string_of_int (Net.total_messages (Cluster.net c));
        ])
    [ ("lazy (paper §4.4)", Protocol.Lazy); ("eager sweep", Protocol.Eager) ];
  [ t ]

(* ----------------------------------------------------------------- E17 *)

(* §10: "evaluating the impact of the consistency granularity on our
   approach".  Two nodes repeatedly write DISJOINT objects that happen to
   share segments.  Fine grain: tokens per object, no conflict.  Coarse
   grain (modelled): a writer acquires the write token of every object in
   the target's segment — false sharing turns into invalidation traffic. *)
let e17 () =
  let t =
    Table.create
      ~title:"E17 (§10): consistency granularity — per-object vs per-segment tokens"
      ~columns:
        [ "granularity"; "acquires"; "invalidations"; "token requests"; "total msgs" ]
  in
  let run coarse =
    let c = Cluster.create ~nodes:2 () in
    let b = Cluster.new_bunch c ~home:0 in
    let objs =
      Array.init 32 (fun i -> Cluster.alloc c ~node:0 ~bunch:b [| Value.Data i |])
    in
    Array.iter (fun a -> Cluster.add_root c ~node:0 a) objs;
    let proto = Cluster.proto c in
    let write_obj node i =
      let addr = objs.(i) in
      if coarse then begin
        (* Acquire the whole segment's objects (the registry knows which
           objects share the target's segment). *)
        let seg_range =
          match Bmx_memory.Registry.find (Protocol.registry proto) addr with
          | Some e -> e.Bmx_memory.Registry.range
          | None -> assert false
        in
        Array.iter
          (fun a ->
            if Addr.Range.contains seg_range a then begin
              let a' = Protocol.acquire proto ~node a `Write in
              Protocol.release proto ~node a'
            end)
          objs
      end;
      let a = Cluster.acquire_write c ~node addr in
      Cluster.write c ~node a 0 (Value.Data (i * 2));
      Cluster.release c ~node a
    in
    (* Node 0 writes the even objects, node 1 the odd ones: disjoint data,
       shared segments. *)
    for round = 1 to 10 do
      ignore round;
      for i = 0 to 31 do
        write_obj (i mod 2) i
      done
    done;
    c
  in
  List.iter
    (fun (name, coarse) ->
      let c = run coarse in
      Table.add_row t
        [
          name;
          string_of_int (Stats.get (Cluster.stats c) "dsm.app.acquire_write");
          string_of_int (Stats.get (Cluster.stats c) "dsm.app.invalidations");
          string_of_int (kind_count c Net.Token_request);
          string_of_int (Net.total_messages (Cluster.net c));
        ])
    [ ("per-object (BMX)", false); ("per-segment (modelled)", true) ];
  [ t ]

(* ----------------------------------------------------------------- E18 *)

let e18 () =
  let t =
    Table.create
      ~title:
        "E18 (§1): heap footprint under churn — copying collection with \
         from-space reuse vs strongly consistent mark&sweep (no compaction)"
      ~columns:[ "churn cycles"; "copying KiB"; "mark&sweep KiB"; "ratio" ]
  in
  let footprint collector cycles =
    let c = Cluster.create ~nodes:1 () in
    let b = Cluster.new_bunch c ~home:0 in
    let anchor = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 0 |] in
    Cluster.add_root c ~node:0 anchor;
    for _ = 1 to cycles do
      let _junk = Graphgen.linked_list c ~node:0 ~bunch:b ~len:3000 in
      (match collector with
      | `Copying ->
          ignore (Cluster.bgc c ~node:0 ~bunch:b);
          ignore (Cluster.reclaim_from_space c ~node:0 ~bunch:b)
      | `Msweep ->
          ignore (Bmx_baseline.Msweep_gc.run (Cluster.gc c) ~node:0 ~bunch:b));
      ignore (Cluster.drain c)
    done;
    List.fold_left
      (fun acc seg ->
        if seg.Bmx_memory.Segment.role = Bmx_memory.Segment.Free then acc
        else acc + Addr.Range.size seg.Bmx_memory.Segment.range)
      0
      (Bmx_memory.Store.segments_of_bunch (Protocol.store (Cluster.proto c) 0) b)
  in
  List.iter
    (fun cycles ->
      let cp = footprint `Copying cycles and ms = footprint `Msweep cycles in
      Table.add_row t
        [
          string_of_int cycles;
          string_of_int (cp / 1024);
          string_of_int (ms / 1024);
          Printf.sprintf "%.1fx" (float_of_int ms /. float_of_int (max cp 1));
        ])
    [ 2; 4; 8 ];
  [ t ]

(* ----------------------------------------------------------------- E19 *)

let e19 () =
  let t =
    Table.create
      ~title:
        "E19 (§6): virtual-time latency — token-acquire and GC-pause \
         percentiles from the span layer (µsteps; as printed by 'bmxctl \
         report')"
      ~columns:[ "span"; "n"; "p50"; "p90"; "p99"; "max" ]
  in
  let cfg =
    {
      Driver.default with
      nodes = 4;
      bunches = 4;
      objects_per_bunch = 48;
      ops = 1500;
      seed = 11;
    }
  in
  let d = Driver.setup cfg in
  let c = Driver.cluster d in
  Cluster.set_event_trace c true;
  Driver.run_ops d ();
  ignore (Cluster.collect_until_quiescent c ());
  ignore (Cluster.settle c);
  let report =
    Bmx_obs.Report.of_events
      ~metrics:(Cluster.metrics c)
      (Bmx_util.Trace_event.timed_events (Cluster.evlog c))
  in
  let families = [ "token_acquire.read"; "token_acquire.write"; "gc.pause" ] in
  let json_rows =
    List.filter_map
      (fun fam ->
        match Bmx_obs.Report.latency report fam with
        | None ->
            Table.add_row t [ fam; "0"; "-"; "-"; "-"; "-" ];
            None
        | Some s ->
            let f v = Printf.sprintf "%.0f" v in
            Table.add_row t
              [
                fam;
                string_of_int s.Bmx_obs.Metrics.s_count;
                f s.Bmx_obs.Metrics.s_p50;
                f s.Bmx_obs.Metrics.s_p90;
                f s.Bmx_obs.Metrics.s_p99;
                f s.Bmx_obs.Metrics.s_max;
              ];
            Some
              ( fam,
                Bmx_obs.Json.Obj
                  [
                    ("n", Bmx_obs.Json.Int s.Bmx_obs.Metrics.s_count);
                    ("p50", Bmx_obs.Json.Float s.Bmx_obs.Metrics.s_p50);
                    ("p90", Bmx_obs.Json.Float s.Bmx_obs.Metrics.s_p90);
                    ("p99", Bmx_obs.Json.Float s.Bmx_obs.Metrics.s_p99);
                    ("max", Bmx_obs.Json.Float s.Bmx_obs.Metrics.s_max);
                  ] ))
      families
  in
  (* Machine-readable line for the perf-trajectory scraper. *)
  Printf.printf "BENCH %s\n"
    (Bmx_obs.Json.to_string
       (Bmx_obs.Json.Obj
          [
            ("experiment", Bmx_obs.Json.String "e19");
            ("unit", Bmx_obs.Json.String "virtual_usteps");
            ( "gc_token_acquires",
              Bmx_obs.Json.Int (Bmx_obs.Report.gc_token_acquires report) );
            ("latency", Bmx_obs.Json.Obj json_rows);
          ]));
  [ t ]

let all () =
  List.concat
    [
      e1 (); e2 (); e3 (); e4 (); e5 (); e6 (); e7 (); e8 (); e9 (); e10 ();
      e13 (); e14 (); e15 (); e16 (); e17 (); e18 (); e19 ();
    ]
