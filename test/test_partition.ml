(* End-to-end partition and storage-corruption regression tests.

   The contract under a network partition is CP-flavoured (§2.2's tokens
   are volatile leases, but a partition does not kill them): both sides
   keep computing and collecting their locally-owned objects, while any
   operation whose correctness needs a peer on the far side — moving a
   write token, invalidating a remote copy, adopting ownership — is
   refused until the partition heals.  Healing must therefore never
   reveal two owners of the same object, and no object reachable on
   either side may be lost to a collection that ran during the split.

   The storage half: a corrupted RVM log recovers to its last
   verifiable commit-terminated prefix, the fsck pass names exactly the
   cells that truncation cost, and a demand fetch from a surviving
   replica restores them — corruption may lose data, but never
   silently. *)

open Bmx_util
module Net = Bmx_netsim.Net
module Cluster = Bmx.Cluster
module Persist = Bmx.Persist
module Audit = Bmx.Audit
module Protocol = Bmx_dsm.Protocol
module Rvm = Bmx_rvm.Rvm
module Value = Bmx_memory.Value
module Lint = Bmx_check.Lint
module Races = Bmx_check.Races

(* BMX_CERTIFY=1 additionally replays each checked cluster's event
   trace through the happens-before certifier, as in test_faults. *)
let certify_soaks = Sys.getenv_opt "BMX_CERTIFY" <> None

let certify_trace ?(ctx = "") c =
  let log = Cluster.evlog c in
  let cert =
    Races.certify
      ~overflowed:(Trace_event.overflowed log)
      (Trace_event.events log)
  in
  if not (Races.ok cert) then
    Alcotest.failf "%scertifier: %s" ctx
      (String.concat "; "
         (List.map Races.finding_to_string cert.Races.findings))

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let refused f =
  try
    f ();
    false
  with Failure _ -> true

let stat c name = Stats.get (Cluster.stats c) name

let assert_clean ?(ctx = "") c =
  (match Audit.check_safety c with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%ssafety audit: %s" ctx m);
  (match Audit.check_tokens c with
  | Ok () -> ()
  | Error m -> Alcotest.failf "%stoken audit: %s" ctx m);
  (match Lint.check_all (Cluster.proto c) with
  | [] -> ()
  | v :: _ -> Alcotest.failf "%slinter: %s" ctx (Lint.violation_to_string v));
  if certify_soaks then certify_trace ~ctx c

(* ------------------------------------------------- split-brain safety *)

let test_split_brain_write_refused () =
  let c = Cluster.create ~nodes:4 ~trace_events:true () in
  let b = Cluster.new_bunch c ~home:0 in
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1; Value.nil |] in
  Cluster.add_root c ~node:0 a;
  (* Node 2 becomes a read-copy holder across the future cut. *)
  let a2 = Cluster.acquire_read c ~node:2 a in
  ignore (Cluster.read c ~node:2 a2 0);
  Cluster.release c ~node:2 a2;
  ignore (Cluster.drain c);
  Cluster.partition c ~groups:[ [ 0; 1 ]; [ 2; 3 ] ];
  let uid = Cluster.uid_at c ~node:0 a in
  (* The minority side cannot steal the write token: the owner is merely
     unreachable, not dead, and granting here would make two owners
     visible at heal. *)
  check_bool "cross-cut write acquire refused" true
    (refused (fun () -> ignore (Cluster.acquire_write c ~node:2 a2)));
  (* The owner side cannot take it either: node 2's read copy would
     survive the invalidation it can no longer be sent. *)
  check_bool "owner-side write acquire refused while holder is cut" true
    (refused (fun () -> ignore (Cluster.acquire_write c ~node:0 a)));
  check (Alcotest.option Alcotest.int) "ownership never moved" (Some 0)
    (Cluster.owner_of c ~uid);
  (* Weak reads of the locally cached copy still work on both sides —
     availability degrades to inconsistent reads, not to a halt. *)
  ignore (Cluster.read c ~weak:true ~node:2 a2 0);
  ignore (Cluster.read c ~weak:true ~node:0 a 0);
  Cluster.heal_all_links c;
  ignore (Cluster.settle c);
  (* Post-heal the transfer goes through exactly once. *)
  let a2' = Cluster.acquire_write c ~node:2 a2 in
  Cluster.write c ~node:2 a2' 0 (Value.Data 2);
  Cluster.release c ~node:2 a2';
  ignore (Cluster.drain c);
  check (Alcotest.option Alcotest.int) "exactly one owner after heal"
    (Some 2)
    (Cluster.owner_of c ~uid);
  check_bool "no reachable object lost" true
    (Ids.Uid_set.is_empty (Audit.lost_objects c));
  assert_clean c

let test_asymmetric_cut_refuses_rpcs () =
  let c = Cluster.create ~nodes:3 ~trace_events:true () in
  let b = Cluster.new_bunch c ~home:0 in
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  Cluster.add_root c ~node:0 a;
  ignore (Cluster.drain c);
  (* Only the reply direction dies.  A synchronous token exchange needs
     both directions, so the acquire is refused just like a full cut. *)
  Cluster.cut_link c ~src:0 ~dst:2;
  check_bool "pair counts as unreachable" false (Cluster.reachable c 2 0);
  check_bool "acquire refused across a half-cut" true
    (refused (fun () -> ignore (Cluster.acquire_read c ~node:2 a)));
  Cluster.heal_link c ~src:0 ~dst:2;
  let a2 = Cluster.acquire_read c ~node:2 a in
  ignore (Cluster.read c ~node:2 a2 0);
  Cluster.release c ~node:2 a2;
  ignore (Cluster.drain c);
  ignore (Cluster.settle c);
  assert_clean c

let test_adoption_deferred_until_heal () =
  let c = Cluster.create ~nodes:3 ~trace_events:true () in
  let b = Cluster.new_bunch c ~home:0 in
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  Cluster.add_root c ~node:0 a;
  let uid = Cluster.uid_at c ~node:0 a in
  (* Node 2 holds a replica that will sit on the far side of the cut. *)
  let a2 = Cluster.acquire_read c ~node:2 a in
  ignore (Cluster.read c ~node:2 a2 0);
  Cluster.release c ~node:2 a2;
  ignore (Cluster.drain c);
  let disk = Persist.create_disk () in
  ignore (Persist.checkpoint ~gc_roots:true c ~node:0 ~bunch:b disk);
  Cluster.crash_node c ~node:0;
  (* The owner restarts inside a partition that hides the surviving
     replica: recovery must not adopt — node 2's copy (and any token it
     could still be granted from a third party) would be invisible to
     the new owner. *)
  Cluster.partition c ~groups:[ [ 0; 1 ]; [ 2 ] ];
  Cluster.restart_node c ~node:0;
  ignore (Persist.recover_node c ~node:0 [ disk ]);
  check_int "adoption deferred, not forced" 1
    (stat c "persist.adopt_deferred_partition");
  check (Alcotest.option Alcotest.int) "object stays unowned for now" None
    (Cluster.owner_of c ~uid);
  (* Nothing lost meanwhile: copies exist on both sides. *)
  check_bool "no object lost during the split" true
    (Ids.Uid_set.is_empty (Audit.lost_objects c));
  Cluster.heal_all_links c;
  ignore (Cluster.settle c);
  (* The post-heal recovery pass can now see the whole cluster and
     adopts cleanly — one owner, not two. *)
  ignore (Persist.restore c ~node:0 disk);
  check (Alcotest.option Alcotest.int) "adopted exactly once after heal"
    (Some 0)
    (Cluster.owner_of c ~uid);
  ignore (Cluster.settle c);
  assert_clean c

(* ------------------------------------------- GC degradation under cut *)

let test_gc_continues_on_both_sides () =
  let c = Cluster.create ~nodes:4 ~trace_events:true () in
  let b0 = Cluster.new_bunch c ~home:0 in
  let b1 = Cluster.new_bunch c ~home:2 in
  (* Live anchors on both sides. *)
  let keep0 = Cluster.alloc c ~node:0 ~bunch:b0 [| Value.Data 0; Value.nil |] in
  Cluster.add_root c ~node:0 keep0;
  let keep1 = Cluster.alloc c ~node:2 ~bunch:b1 [| Value.Data 1; Value.nil |] in
  Cluster.add_root c ~node:2 keep1;
  (* A cross-cut reference: keep1 (owned on the far side) points at y in
     b0, protected only by its scion at node 0. *)
  let y = Cluster.alloc c ~node:0 ~bunch:b0 [| Value.Data 9 |] in
  Cluster.add_root c ~node:0 y;
  let k1 = Cluster.acquire_write c ~node:2 keep1 in
  Cluster.write c ~node:2 k1 1 (Value.Ref y);
  Cluster.release c ~node:2 k1;
  ignore (Cluster.drain c);
  Cluster.remove_root c ~node:0 y;
  let yuid = Cluster.uid_at c ~node:0 y in
  (* Plain local garbage on each side. *)
  let g0 = Cluster.alloc c ~node:0 ~bunch:b0 [| Value.Data 2 |] in
  Cluster.add_root c ~node:0 g0;
  let g1 = Cluster.alloc c ~node:2 ~bunch:b1 [| Value.Data 3 |] in
  Cluster.add_root c ~node:2 g1;
  ignore (Cluster.drain c);
  Cluster.remove_root c ~node:0 g0;
  Cluster.remove_root c ~node:2 g1;
  let acquires_before =
    stat c "dsm.gc.acquire_read" + stat c "dsm.gc.acquire_write"
  in
  Cluster.partition c ~groups:[ [ 0; 1 ]; [ 2; 3 ] ];
  (* Both sides keep collecting their locally-owned garbage during the
     split. *)
  let reclaimed = ref 0 in
  for _ = 1 to 4 do
    reclaimed := !reclaimed + Cluster.gc_round c
  done;
  check_bool "local garbage reclaimed on both sides" true (!reclaimed >= 2);
  (* The collector stayed token-free even while partitioned (§5). *)
  check_int "gc acquired no tokens under partition" acquires_before
    (stat c "dsm.gc.acquire_read" + stat c "dsm.gc.acquire_write");
  (* The cross-cut-referenced object survives: its only reference lives
     on the far side, and quarantine errs conservative. *)
  check_bool "cross-partition-referenced object survives" true
    (Ids.Uid_set.mem yuid (Audit.cached_anywhere c));
  check_bool "no reachable object lost during the split" true
    (Ids.Uid_set.is_empty (Audit.lost_objects c));
  Cluster.heal_all_links c;
  ignore (Cluster.settle c);
  ignore (Cluster.collect_until_quiescent c ());
  ignore (Cluster.settle c);
  check_bool "still cached after heal + full collection" true
    (Ids.Uid_set.mem yuid (Audit.cached_anywhere c));
  (* Now sever the one reference keeping y alive; the healed cluster's
     cleaner chain must converge and reclaim it. *)
  let k1' = Cluster.acquire_write c ~node:2 keep1 in
  Cluster.write c ~node:2 k1' 1 Value.nil;
  Cluster.release c ~node:2 k1';
  ignore (Cluster.drain c);
  ignore (Cluster.collect_until_quiescent c ());
  ignore (Cluster.settle c);
  check_bool "unreferenced object reclaimed after heal" false
    (Ids.Uid_set.mem yuid (Audit.cached_anywhere c));
  check_int "wire empty" 0 (Net.pending (Cluster.net c));
  assert_clean c

let test_partition_during_gc_flip () =
  (* Cut the network while a collection's stub tables are still in
     flight: the undelivered tables ride out the cut (or are deferred to
     reachable destinations only) and the cleaner quarantines anything
     from an unreachable sender — §5's verdict must hold on the trace
     all the same. *)
  let c = Cluster.create ~nodes:4 ~trace_events:true () in
  let b0 = Cluster.new_bunch c ~home:0 in
  let b1 = Cluster.new_bunch c ~home:2 in
  let x = Cluster.alloc c ~node:0 ~bunch:b0 [| Value.Data 0; Value.nil |] in
  Cluster.add_root c ~node:0 x;
  let y = Cluster.alloc c ~node:2 ~bunch:b1 [| Value.Data 1 |] in
  Cluster.add_root c ~node:2 y;
  let x' = Cluster.acquire_write c ~node:0 x in
  Cluster.write c ~node:0 x' 1 (Value.Ref y);
  Cluster.release c ~node:0 x';
  ignore (Cluster.drain c);
  (* Collect with tables left undrained, then cut mid-flight. *)
  ignore (Cluster.bgc c ~node:0 ~bunch:b0);
  Cluster.partition c ~groups:[ [ 0; 1 ]; [ 2; 3 ] ];
  ignore (Cluster.drain c);
  ignore (Cluster.gc_round c);
  check_bool "nothing lost with tables in flight across the cut" true
    (Ids.Uid_set.is_empty (Audit.lost_objects c));
  Cluster.heal_all_links c;
  ignore (Cluster.settle c);
  ignore (Cluster.collect_until_quiescent c ());
  ignore (Cluster.settle c);
  check_bool "referenced object survives the whole episode" true
    (Ids.Uid_set.mem (Cluster.uid_at c ~node:2 y) (Audit.cached_anywhere c));
  assert_clean c

let test_partition_during_ownership_transfer () =
  (* Partition immediately after a write-token transfer, before the
     background location updates drain: the far side must neither see
     two owners nor lose the object once the links heal. *)
  let c = Cluster.create ~nodes:4 ~trace_events:true () in
  let b = Cluster.new_bunch c ~home:0 in
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  Cluster.add_root c ~node:0 a;
  let a3 = Cluster.acquire_read c ~node:3 a in
  Cluster.release c ~node:3 a3;
  ignore (Cluster.drain c);
  let uid = Cluster.uid_at c ~node:0 a in
  (* Transfer ownership 0 -> 1, then cut before the addr updates land. *)
  let a1 = Cluster.acquire_write c ~node:1 a in
  Cluster.write c ~node:1 a1 0 (Value.Data 2);
  Cluster.release c ~node:1 a1;
  Cluster.partition c ~groups:[ [ 0; 1 ]; [ 2; 3 ] ];
  ignore (Cluster.drain c);
  check (Alcotest.option Alcotest.int) "one owner during the split" (Some 1)
    (Cluster.owner_of c ~uid);
  Cluster.heal_all_links c;
  ignore (Cluster.settle c);
  ignore (Cluster.drain c);
  check (Alcotest.option Alcotest.int) "one owner after heal" (Some 1)
    (Cluster.owner_of c ~uid);
  (* The stale side can reach the new owner again. *)
  let a3' = Cluster.acquire_read c ~node:3 a in
  check (Alcotest.string) "post-heal read sees the new value" "ok"
    (match Cluster.read c ~node:3 a3' 0 with
    | Value.Data 2 -> "ok"
    | _ -> "stale");
  Cluster.release c ~node:3 a3';
  ignore (Cluster.drain c);
  ignore (Cluster.settle c);
  assert_clean c

(* --------------------------------------- corruption, fsck and refetch *)

let test_corruption_fsck_and_refetch () =
  let c = Cluster.create ~nodes:3 ~trace_events:true () in
  let b = Cluster.new_bunch c ~home:0 in
  let a = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 0; Value.nil |] in
  Cluster.add_root c ~node:0 a;
  let disk = Persist.create_disk () in
  ignore (Persist.checkpoint ~gc_roots:true c ~node:0 ~bunch:b disk);
  let len1 = Rvm.log_length disk in
  (* A second generation: a new object X whose authoritative copy moves
     to node 2, with node 0 keeping a replica; plus a pointer a -> X. *)
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 7 |] in
  let x2 = Cluster.acquire_write c ~node:2 x in
  Cluster.write c ~node:2 x2 0 (Value.Data 8);
  Cluster.release c ~node:2 x2;
  Cluster.add_root c ~node:2 x2;
  ignore (Cluster.drain c);
  let x0 = Cluster.demand_fetch c ~node:0 x in
  let a' = Cluster.acquire_write c ~node:0 a in
  Cluster.write c ~node:0 a' 1 (Value.Ref x0);
  Cluster.release c ~node:0 a';
  ignore (Cluster.drain c);
  let xuid = Cluster.uid_at c ~node:0 x0 in
  let auid = Cluster.uid_at c ~node:0 a in
  ignore (Persist.checkpoint ~gc_roots:true c ~node:0 ~bunch:b disk);
  (* Bit rot strikes the first record of the second checkpoint: the
     whole second generation becomes unverifiable. *)
  Persist.corrupt_disk c ~node:0 disk (Persist.Flip_bits len1);
  check_int "fault accounted" 1 (stat c "rvm.faults_injected");
  Cluster.crash_node c ~node:0;
  Cluster.restart_node c ~node:0;
  ignore (Persist.recover_node c ~node:0 [ disk ]);
  check_bool "recovery dropped the unverifiable suffix" true
    (stat c "rvm.records_dropped" > 0);
  (* The first generation survived: a is back (stale contents). *)
  check_bool "prefix object restored" true
    (Bmx_memory.Store.addr_of_uid (Protocol.store (Cluster.proto c) 0) auid
    <> None);
  (* fsck names exactly the truncated cell that has no local copy. *)
  let fsck = Persist.verify_bunch c ~node:0 ~bunch:b disk in
  check_int "one cell missing" 1 (List.length fsck.Persist.f_missing);
  let missing_addr, missing_uid = List.hd fsck.Persist.f_missing in
  check (Alcotest.option Alcotest.int) "fsck identifies the lost object"
    (Some xuid) missing_uid;
  (* Never silently: the authoritative copy survived at node 2, so the
     audit does not count X lost even before the refetch. *)
  check_bool "nothing silently lost" true
    (Ids.Uid_set.is_empty (Audit.lost_objects c));
  (* Refetch from the surviving owner repairs the replica. *)
  ignore (Cluster.demand_fetch c ~node:0 missing_addr);
  let fsck2 = Persist.verify_bunch c ~node:0 ~bunch:b disk in
  check_int "fsck clean after refetch" 0 (List.length fsck2.Persist.f_missing);
  ignore (Cluster.drain c);
  ignore (Cluster.settle c);
  assert_clean c

(* A corruption soak: random faults against multi-generation logs.  The
   gate is honesty, not immunity — recovery may drop data, but every
   reachable object is either still cached somewhere, or named by the
   fsck report; nothing vanishes silently. *)
let corruption_soak_one seed =
  let rng = Rng.make (seed * 104729) in
  let c = Cluster.create ~nodes:3 ~seed ~trace_events:true () in
  let b = Cluster.new_bunch c ~home:0 in
  let disk = Persist.create_disk () in
  let objs = ref [] in
  for gen = 1 to 3 do
    for _ = 1 to 2 do
      let a =
        Cluster.alloc c ~node:0 ~bunch:b
          [| Value.Data (100 * gen); Value.nil |]
      in
      Cluster.add_root c ~node:0 a;
      (* Half the objects gain a surviving replica + owner elsewhere. *)
      if Rng.int rng 100 < 50 then begin
        let a2 = Cluster.acquire_write c ~node:2 a in
        Cluster.write c ~node:2 a2 0 (Value.Data (100 * gen + 1));
        Cluster.release c ~node:2 a2;
        Cluster.add_root c ~node:2 a2
      end;
      objs := a :: !objs
    done;
    ignore (Cluster.drain c);
    ignore (Persist.checkpoint ~gc_roots:true c ~node:0 ~bunch:b disk)
  done;
  let len = Rvm.log_length disk in
  let fault =
    match Rng.int rng 3 with
    | 0 -> Persist.Flip_bits (Rng.int rng len)
    | 1 -> Persist.Drop_record (Rng.int rng len)
    | _ -> Persist.Truncate_mid_record
  in
  Persist.corrupt_disk c ~node:0 disk fault;
  Cluster.crash_node c ~node:0;
  Cluster.restart_node c ~node:0;
  ignore (Persist.recover_node c ~node:0 [ disk ]);
  let fsck = Persist.verify_bunch c ~node:0 ~bunch:b disk in
  (* Refetch whatever still has an owner somewhere. *)
  List.iter
    (fun (addr, uid) ->
      match uid with
      | Some uid when Cluster.owner_of c ~uid <> None ->
          ignore (Cluster.demand_fetch c ~node:0 addr)
      | _ -> ())
    fsck.Persist.f_missing;
  ignore (Cluster.drain c);
  ignore (Cluster.settle c);
  (* Anything the audit counts lost must have been named by the fsck —
     corruption is allowed to cost data, never to hide the cost. *)
  let named =
    List.fold_left
      (fun s (_, uid) ->
        match uid with Some u -> Ids.Uid_set.add u s | None -> s)
      Ids.Uid_set.empty fsck.Persist.f_missing
  in
  let lost = Audit.lost_objects c in
  if not (Ids.Uid_set.subset lost named) then
    Alcotest.failf "seed %d: silent loss: %s" seed
      (String.concat ","
         (List.map Ids.Uid.to_string
            (Ids.Uid_set.elements (Ids.Uid_set.diff lost named))));
  (match Audit.check_tokens c with
  | Ok () -> ()
  | Error m -> Alcotest.failf "seed %d: token audit: %s" seed m);
  (match Lint.check_all (Cluster.proto c) with
  | [] -> ()
  | v :: _ ->
      Alcotest.failf "seed %d: linter: %s" seed (Lint.violation_to_string v));
  if certify_soaks then certify_trace ~ctx:(Printf.sprintf "seed %d: " seed) c

(* BMX_SOAK_SEEDS overrides the seed count, as in test_faults (CI
   shards and bisection runs). *)
let soak_seeds =
  match Sys.getenv_opt "BMX_SOAK_SEEDS" with
  | Some s -> int_of_string s
  | None -> 12

let test_corruption_soak () =
  for seed = 1 to soak_seeds do
    corruption_soak_one seed
  done

let () =
  Alcotest.run "partition"
    [
      ( "split-brain",
        [
          Alcotest.test_case "cross-cut write transfer refused" `Quick
            test_split_brain_write_refused;
          Alcotest.test_case "asymmetric cut refuses rpcs" `Quick
            test_asymmetric_cut_refuses_rpcs;
          Alcotest.test_case "adoption deferred until heal" `Quick
            test_adoption_deferred_until_heal;
        ] );
      ( "gc-degradation",
        [
          Alcotest.test_case "gc continues on both sides" `Quick
            test_gc_continues_on_both_sides;
          Alcotest.test_case "partition during gc flip" `Quick
            test_partition_during_gc_flip;
          Alcotest.test_case "partition during ownership transfer" `Quick
            test_partition_during_ownership_transfer;
        ] );
      ( "corruption",
        [
          Alcotest.test_case "fsck and refetch" `Quick
            test_corruption_fsck_and_refetch;
          Alcotest.test_case "corruption soak" `Slow test_corruption_soak;
        ] );
    ]
