(** The scion cleaner (§6).

    After a BGC reconstructs a bunch replica's stub table and exiting
    ownerPtr list (§4.3), the reachability information is sent to every
    node that either caches a copy of the same bunch or holds scions
    matching stubs of the old or new tables.  The cleaner at each
    receiver removes every scion no longer covered by a stub, and
    reconciles the entering ownerPtrs with the sender's exiting list —
    thereby updating the roots of the receiver's next BGC.

    Wire format: a message carries either the {e complete} stub tables
    ([Full]) or a one-round diff ([Delta]) against a basis identified by
    the transport sequence number of the previous message on the same
    (sender, bunch, dest) stream — bases chain: each message's own seq
    becomes the next delta's basis.  A lost message (or a receiver
    restart) surfaces as a basis mismatch on the next delta and is
    healed by pulling the sender's current tables; a peer the sender
    knows missed a round gets a fresh full instead.  Duplicates are
    suppressed by the per-pair FIFO sequence numbers the network already
    stamps (§6.1), exactly as for full tables.  The exiting ownerPtr
    list rides the same encoding: complete in fulls, flips-only in
    deltas, reassembled by the receiver's mirror before the entering
    reconciliation runs. *)

type table_body =
  | Full of {
      fb_inter : Ssp.inter_stub list;
      fb_intra : Ssp.intra_stub list;
      fb_exiting : (Bmx_util.Ids.Uid.t * Bmx_util.Ids.Node.t) list;
          (** the sender's complete exiting ownerPtrs: object and the
              owner node the sender believes in *)
    }
  | Delta of {
      db_basis : int;
          (** transport seq of the full table this diff builds on *)
      db_add_inter : Ssp.inter_key list;
      db_del_inter : Ssp.inter_key list;
      db_add_intra : Ssp.intra_key list;
      db_del_intra : Ssp.intra_key list;
      db_add_exiting : (Bmx_util.Ids.Uid.t * Bmx_util.Ids.Node.t) list;
      db_del_exiting : (Bmx_util.Ids.Uid.t * Bmx_util.Ids.Node.t) list;
    }

type table_msg = {
  tm_sender : Bmx_util.Ids.Node.t;
  tm_bunch : Bmx_util.Ids.Bunch.t;
  tm_body : table_body;
}

val msg_bytes : table_msg -> int
(** Actual wire size of the message — delta messages are costed by their
    delta payload, not the full-table formula. *)

val receive : Gc_state.t -> at:Bmx_util.Ids.Node.t -> seq:int -> table_msg -> unit
(** Process one reachability message at node [at].  Stale or duplicated
    messages (sequence number not beyond the last processed for the same
    (sender, bunch) stream) are ignored. *)

val destinations :
  Gc_state.t ->
  node:Bmx_util.Ids.Node.t ->
  bunch:Bmx_util.Ids.Bunch.t ->
  old_inter:Ssp.inter_stub list ->
  new_inter:Ssp.inter_stub list ->
  old_intra:Ssp.intra_stub list ->
  new_intra:Ssp.intra_stub list ->
  exiting:(Bmx_util.Ids.Uid.t * Bmx_util.Ids.Node.t) list ->
  Bmx_util.Ids.Node.t list
(** The nodes a BGC's reachability information must reach (§4.1): replicas
    of the bunch, scion holders of old and new stubs, and the owners the
    exiting list names. *)

val broadcast :
  Gc_state.t ->
  node:Bmx_util.Ids.Node.t ->
  bunch:Bmx_util.Ids.Bunch.t ->
  old_inter:Ssp.inter_stub list ->
  old_intra:Ssp.intra_stub list ->
  exiting:(Bmx_util.Ids.Uid.t * Bmx_util.Ids.Node.t) list ->
  int
(** Send the node's (already replaced) current tables for the bunch to
    all {!destinations} as background messages; returns the number of
    messages sent.  Each destination independently gets either a delta
    (when the sender knows which basis it holds) or a full table (first
    contact, periodic rebase, or when the accumulated diff outgrew the
    table).  Re-running after a loss simply resends — the cumulative
    encoding keeps that safe.  Accounts [tables.delta_bytes] (actual
    wire bytes) and [tables.full_bytes] (what full tables would have
    cost) per send. *)
