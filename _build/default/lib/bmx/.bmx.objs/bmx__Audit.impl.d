lib/bmx/audit.ml: Addr Bmx_dsm Bmx_memory Bmx_util Cluster Ids List Option Printf String
