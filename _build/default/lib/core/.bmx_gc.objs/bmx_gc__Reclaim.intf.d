lib/core/reclaim.mli: Bmx_util Gc_state
