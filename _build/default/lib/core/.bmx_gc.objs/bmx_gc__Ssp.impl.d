lib/core/ssp.ml: Addr Bmx_util Format Ids
