(* Executable reproductions of the paper's Figures 1-4 (experiments E1-E4). *)

open Bmx_util
module Cluster = Bmx.Cluster
module Protocol = Bmx_dsm.Protocol
module Directory = Bmx_dsm.Directory
module Store = Bmx_memory.Store
module Value = Bmx_memory.Value
module Gc_state = Bmx_gc.Gc_state
module Scenario = Bmx_workload.Scenario

let check = Alcotest.check
let check_bool = check Alcotest.bool
let check_int = check Alcotest.int
let check_opt_int = check (Alcotest.option Alcotest.int)

let uid c ~node addr = Cluster.uid_at c ~node addr

(* ------------------------------------------------------------- Figure 1 *)

let test_fig1_tables () =
  let f = Scenario.figure1 () in
  let c = f.Scenario.f1_cluster in
  let gc = Cluster.gc c in
  (* One inter-bunch stub for o3 -> o5, held at N2 (where the reference
     was created), even though o3 is cached on both N1 and N2. *)
  let stubs_n2 = Gc_state.inter_stubs gc ~node:f.f1_n2 ~bunch:f.f1_b1 in
  let stubs_n1 = Gc_state.inter_stubs gc ~node:f.f1_n1 ~bunch:f.f1_b1 in
  check_int "one inter-bunch stub at N2" 1 (List.length stubs_n2);
  check_int "no inter-bunch stub at N1" 0 (List.length stubs_n1);
  let stub = List.hd stubs_n2 in
  check_int "stub target is o5" (uid c ~node:f.f1_n3 f.f1_o5) stub.Bmx_gc.Ssp.is_target_uid;
  check_int "stub's scion lives at N3" f.f1_n3 stub.Bmx_gc.Ssp.is_scion_at;
  (* The matching inter-bunch scion was created at N3 by a scion-message. *)
  let scions_n3 = Gc_state.inter_scions gc ~node:f.f1_n3 ~bunch:f.f1_b2 in
  check_int "one inter-bunch scion at N3" 1 (List.length scions_n3);
  check_bool "stub and scion match" true
    (Bmx_gc.Ssp.inter_stub_matches stub (List.hd scions_n3));
  (* The ownership transfer N2 -> N1 created the intra-bunch SSP:
     stub at N1 (new owner), scion at N2 (old owner holding the stub). *)
  let intra_stubs_n1 = Gc_state.intra_stubs gc ~node:f.f1_n1 ~bunch:f.f1_b1 in
  check_int "one intra-bunch stub at N1" 1 (List.length intra_stubs_n1);
  check_int "intra stub names N2 as holder" f.f1_n2
    (List.hd intra_stubs_n1).Bmx_gc.Ssp.ns_holder;
  let intra_scions_n2 = Gc_state.intra_scions gc ~node:f.f1_n2 ~bunch:f.f1_b1 in
  check_int "one intra-bunch scion at N2" 1 (List.length intra_scions_n2);
  check_int "intra scion names N1 as owner side" f.f1_n1
    (List.hd intra_scions_n2).Bmx_gc.Ssp.xn_owner_side

let test_fig1_tokens () =
  let f = Scenario.figure1 () in
  let c = f.Scenario.f1_cluster in
  let proto = Cluster.proto c in
  let o3_uid = uid c ~node:f.f1_n1 f.f1_o3 in
  (* N1 owns o3 after the transfer; N2 keeps an inconsistent copy. *)
  check_opt_int "owner of o3" (Some f.f1_n1)
    (Protocol.owner_of proto o3_uid);
  (match Directory.find (Protocol.directory proto f.f1_n2) o3_uid with
  | Some r ->
      check_bool "N2 no longer owner of o3" false r.Directory.is_owner;
      check_bool "N2's o3 copy is inconsistent" true
        (r.Directory.state = Directory.Invalid)
  | None -> Alcotest.fail "N2 lost its record of o3");
  check_bool "o3 still cached at N2" true
    (Cluster.cached_at c ~node:f.f1_n2 ~uid:o3_uid);
  (* o5 is owned by N3 and cached nowhere else. *)
  let o5_uid = uid c ~node:f.f1_n3 f.f1_o5 in
  check_opt_int "owner of o5" (Some f.f1_n3)
    (Protocol.owner_of proto o5_uid);
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c))

(* ------------------------------------------------------------- Figure 2 *)

let test_fig2_bgc_copies_only_owned () =
  let f = Scenario.figure1 () in
  let c = f.Scenario.f1_cluster in
  let proto = Cluster.proto c in
  let o1_uid = uid c ~node:f.f1_n1 f.f1_o1 in
  let o2_uid = uid c ~node:f.f1_n1 f.f1_o2 in
  let o3_uid = uid c ~node:f.f1_n1 f.f1_o3 in
  let o2_at_n1_before = Store.addr_of_uid (Protocol.store proto f.f1_n1) o2_uid in
  let o2_at_n2_before = Store.addr_of_uid (Protocol.store proto f.f1_n2) o2_uid in
  (* BGC of B1 at N2: N2 owns only o2 there (o1 owned by N1, o3
     transferred to N1), so exactly one object is copied. *)
  let report = Cluster.bgc c ~node:f.f1_n2 ~bunch:f.f1_b1 in
  check_int "exactly one object copied" 1 report.Bmx_gc.Collect.r_copied;
  check_int "nothing reclaimed (all live)" 0 report.Bmx_gc.Collect.r_reclaimed;
  let o2_at_n2_after = Store.addr_of_uid (Protocol.store proto f.f1_n2) o2_uid in
  check_bool "o2 moved at N2" true (o2_at_n2_before <> o2_at_n2_after);
  (* o1 and o3 were scanned in place: same addresses. *)
  check_opt_int "o1 unmoved at N2"
    (Store.addr_of_uid (Protocol.store proto f.f1_n2) o1_uid)
    (Store.addr_of_uid (Protocol.store proto f.f1_n2) o1_uid);
  check_bool "o3 still at N2" true (Cluster.cached_at c ~node:f.f1_n2 ~uid:o3_uid);
  (* N1 has NOT been informed: its o2 is still at the old address
     (addresses diverge across replicas; the DSM data stays consistent). *)
  let o2_at_n1_after = Store.addr_of_uid (Protocol.store proto f.f1_n1) o2_uid in
  check_opt_int "N1 still sees o2 at the old address"
    o2_at_n1_before o2_at_n1_after;
  (* Pointers into o2 were updated locally at N2 without any token:
     o1.f0 and o3.f1 now name the new address. *)
  let n2_store = Protocol.store proto f.f1_n2 in
  let o1_at_n2 = Option.get (Store.addr_of_uid n2_store o1_uid) in
  (match Store.resolve n2_store o1_at_n2 with
  | Some (_, obj) -> (
      match Bmx_memory.Heap_obj.get obj 0 with
      | Value.Ref a ->
          check_opt_int "o1.f0 updated at N2"
            o2_at_n2_after (Some a)
      | Value.Data _ -> Alcotest.fail "o1.f0 should be a pointer")
  | None -> Alcotest.fail "o1 missing at N2");
  (* No token was acquired by the collector. *)
  check_int "collector acquired no token" 0
    (Stats.get (Cluster.stats c) "dsm.gc.acquire_read"
    + Stats.get (Cluster.stats c) "dsm.gc.acquire_write");
  (* Mutators on both nodes still work: N1 reads o1 -> o2 (old address,
     resolves through its own replica). *)
  let v = Cluster.read c ~weak:true ~node:f.f1_n1 f.f1_o2 0 in
  check_bool "N1 can still read o2" true (match v with Value.Ref _ -> true | _ -> true);
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c))

(* ------------------------------------------------------------- Figure 3 *)

let fig3_acquire_and_check case =
  let f = Scenario.figure3 ~case in
  let c = f.Scenario.f3_cluster in
  let proto = Cluster.proto c in
  (* The write-token acquire of o1 by N2 (§5's walkthrough). *)
  let o1_at_n2 = Cluster.acquire_write c ~node:f.f3_n2 f.f3_o1 in
  (* Invariant 1: o1's address and every reference inside it are valid at
     N2 before the acquire returns. *)
  let n2_store = Protocol.store proto f.f3_n2 in
  (match Store.resolve n2_store o1_at_n2 with
  | None -> Alcotest.fail "o1 not resolvable at N2 after acquire"
  | Some (_, obj) -> (
      match Bmx_memory.Heap_obj.get obj 0 with
      | Value.Ref o2_ptr -> (
          match Store.resolve n2_store o2_ptr with
          | Some (_, o2_obj) ->
              check_int "o1's field reaches o2 at N2"
                f.Scenario.f3_o2_uid o2_obj.Bmx_memory.Heap_obj.uid
          | None -> Alcotest.fail "o1's o2-reference dangles at N2")
      | Value.Data _ -> Alcotest.fail "o1.f0 should be a pointer"));
  Cluster.release c ~node:f.f3_n2 o1_at_n2;
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c));
  (* N2 is now the owner and its copy is writable. *)
  check_opt_int "N2 owns o1" (Some f.f3_n2)
    (Protocol.owner_of proto f.Scenario.f3_o1_uid)

let test_fig3_case_a () = fig3_acquire_and_check Scenario.Case_a
let test_fig3_case_b () = fig3_acquire_and_check Scenario.Case_b
let test_fig3_case_c () = fig3_acquire_and_check Scenario.Case_c
let test_fig3_case_d () = fig3_acquire_and_check Scenario.Case_d

let test_fig3_invariant3 () =
  (* Transfer of an object whose old owner holds inter-bunch stubs must
     create the intra-bunch SSP before the grant completes. *)
  let f = Scenario.figure4 () in
  let c = f.Scenario.f4_cluster in
  let gc = Cluster.gc c in
  let stubs_n2 = Gc_state.intra_stubs gc ~node:f.f4_n2 ~bunch:f.f4_bunch in
  check_int "intra stub at the new owner N2" 1 (List.length stubs_n2);
  check_int "intra stub names N3" f.f4_n3 (List.hd stubs_n2).Bmx_gc.Ssp.ns_holder;
  let scions_n3 = Gc_state.intra_scions gc ~node:f.f4_n3 ~bunch:f.f4_bunch in
  check_int "intra scion at the old owner N3" 1 (List.length scions_n3)

let test_fig1_centralized_mode () =
  (* The prototype's centralized copy-sets (§8) must produce the same
     SSP tables as the distributed design. *)
  let f = Scenario.figure1 ~mode:Protocol.Centralized () in
  let c = f.Scenario.f1_cluster in
  let gc = Cluster.gc c in
  check_int "one inter-bunch stub at N2" 1
    (List.length (Gc_state.inter_stubs gc ~node:f.f1_n2 ~bunch:f.f1_b1));
  check_int "one inter-bunch scion at N3" 1
    (List.length (Gc_state.inter_scions gc ~node:f.f1_n3 ~bunch:f.f1_b2));
  check_int "one intra stub at N1" 1
    (List.length (Gc_state.intra_stubs gc ~node:f.f1_n1 ~bunch:f.f1_b1));
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c))

let test_invariant3_third_party_holder () =
  (* Ownership chain: the stub holder is NOT the granter.  o is created
     (with an inter-bunch ref) at N1, moves to N2, then to N3.  The
     second transfer's granter (N2) only has an intra-bunch stub naming
     N1; invariant 3 must give N3 a DIRECT intra SSP to N1 — chains of
     intra SSPs never form (§3.2). *)
  let c = Cluster.create ~nodes:4 () in
  let n1 = 1 and n2 = 2 and n3 = 3 in
  let b = Cluster.new_bunch c ~home:n1 in
  let tb = Cluster.new_bunch c ~home:n1 in
  let target = Cluster.alloc c ~node:n1 ~bunch:tb [| Value.Data 1 |] in
  let o = Cluster.alloc c ~node:n1 ~bunch:b [| Value.Ref target |] in
  let o2 = Cluster.acquire_write c ~node:n2 o in
  Cluster.release c ~node:n2 o2;
  let o3 = Cluster.acquire_write c ~node:n3 o2 in
  Cluster.release c ~node:n3 o3;
  ignore (Cluster.drain c);
  let gc = Cluster.gc c in
  let stubs_n3 = Gc_state.intra_stubs gc ~node:n3 ~bunch:b in
  check_int "one intra stub at the new owner" 1 (List.length stubs_n3);
  check_int "stub points DIRECTLY at the inter-stub holder N1" n1
    (List.hd stubs_n3).Bmx_gc.Ssp.ns_holder;
  check_bool "matching scion at N1" true
    (List.exists
       (fun (s : Bmx_gc.Ssp.intra_scion) -> s.Bmx_gc.Ssp.xn_owner_side = n3)
       (Gc_state.intra_scions gc ~node:n1 ~bunch:b));
  (* The whole chain still protects the inter-bunch target. *)
  Cluster.add_root c ~node:n3 o3;
  ignore (Cluster.collect_until_quiescent c ());
  check_bool "target alive through the chain" true
    (Bmx_util.Ids.Uid_set.mem
       (Cluster.uid_at c ~node:n1 target)
       (Bmx.Audit.cached_anywhere c));
  (* Drop the root: everything unwinds, including at the old holders. *)
  Cluster.remove_root c ~node:n3 o3;
  ignore (Cluster.collect_until_quiescent c ());
  check_int "everything reclaimed" 0 (Bmx.Audit.total_cached_copies c)

(* ------------------------------------------------------------- Figure 4 *)

let test_fig4_deletion_chain () =
  let f = Scenario.figure4 () in
  let c = f.Scenario.f4_cluster in
  let cached node = Cluster.cached_at c ~node ~uid:f.Scenario.f4_o1_uid in
  check_bool "o1 on N1" true (cached f.f4_n1);
  check_bool "o1 on N2" true (cached f.f4_n2);
  check_bool "o1 on N3" true (cached f.f4_n3);
  (* While the root at N1 lives, no round of collection may reclaim any
     replica of o1 (the intra SSP and entering ownerPtrs protect them). *)
  ignore (Cluster.collect_until_quiescent c ());
  check_bool "o1 survives everywhere while rooted at N1" true
    (cached f.f4_n1 && cached f.f4_n2 && cached f.f4_n3);
  check_bool "target object survives" true
    (Bmx_util.Ids.Uid_set.mem f.f4_target_uid (Bmx.Audit.cached_anywhere c));
  (* Drop the only root: the §6.2 chain must reclaim o1 at N1, then N2,
     then N3, and finally the inter-bunch target. *)
  Cluster.remove_root c ~node:f.f4_n1 f.f4_o1;
  ignore (Cluster.collect_until_quiescent c ());
  check_bool "o1 reclaimed at N1" false (cached f.f4_n1);
  check_bool "o1 reclaimed at N2" false (cached f.f4_n2);
  check_bool "o1 reclaimed at N3" false (cached f.f4_n3);
  check_bool "inter-bunch target reclaimed too" false
    (Bmx_util.Ids.Uid_set.mem f.f4_target_uid (Bmx.Audit.cached_anywhere c));
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c))

let () =
  Alcotest.run "scenarios"
    [
      ( "figure1",
        [
          Alcotest.test_case "stub and scion tables" `Quick test_fig1_tables;
          Alcotest.test_case "token states and owners" `Quick test_fig1_tokens;
        ] );
      ( "figure2",
        [
          Alcotest.test_case "BGC copies only locally-owned objects" `Quick
            test_fig2_bgc_copies_only_owned;
        ] );
      ( "figure3",
        [
          Alcotest.test_case "case a: no GC anywhere" `Quick test_fig3_case_a;
          Alcotest.test_case "case b: granter moved both" `Quick test_fig3_case_b;
          Alcotest.test_case "case c: granter moved o1 only" `Quick test_fig3_case_c;
          Alcotest.test_case "case d: requester moved o2" `Quick test_fig3_case_d;
          Alcotest.test_case "invariant 3 creates intra SSP" `Quick
            test_fig3_invariant3;
          Alcotest.test_case "figure 1 under centralized copy-sets" `Quick
            test_fig1_centralized_mode;
          Alcotest.test_case "invariant 3: third-party stub holder" `Quick
            test_invariant3_third_party_holder;
        ] );
      ( "figure4",
        [
          Alcotest.test_case "cross-replica deletion chain" `Quick
            test_fig4_deletion_chain;
        ] );
    ]
