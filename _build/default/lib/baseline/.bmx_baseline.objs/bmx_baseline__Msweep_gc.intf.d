lib/baseline/msweep_gc.mli: Bmx_gc Bmx_util
