test/test_persist.ml: Alcotest Bmx Bmx_memory Bmx_rvm Bmx_workload Result
