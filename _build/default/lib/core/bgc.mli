(** The bunch garbage collector (§4).

    A BGC collects one local replica of one bunch, independently of any
    other bunch and of the other replicas of the same bunch.  Based on the
    concurrent compacting collector of O'Toole et al. (§4.1): small flip,
    no virtual-memory tricks, non-destructive copying. *)

val run :
  Gc_state.t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> Collect.report
(** Collect the replica of [bunch] cached at [node].  Acquires no token
    and sends no synchronous message; the reconstructed reachability
    tables go out as background messages (deliver them with
    {!Bmx_netsim.Net.drain}). *)

val run_all_replicas :
  Gc_state.t -> bunch:Bmx_util.Ids.Bunch.t -> Collect.report list
(** Convenience for tests and benchmarks: run the BGC on every node that
    caches the bunch, in node order (still one independent local
    collection per replica). *)
