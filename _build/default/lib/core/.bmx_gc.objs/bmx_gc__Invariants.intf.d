lib/core/invariants.mli: Bmx_util Gc_state
