let run t ~node ~bunch = Collect.run t ~node ~bunches:[ bunch ] ~group_mode:false ()

let run_all_replicas t ~bunch =
  let proto = Gc_state.proto t in
  List.map
    (fun node -> run t ~node ~bunch)
    (Bmx_dsm.Protocol.bunch_replica_nodes proto bunch)
