(* A cooperative CAD/design database — the "design databases" and
   "cooperative work" workloads of §1, plus the paper's persistence story:
   the design survives a site crash through the RVM log (§2.1, §8).

   Assemblies form a tree whose leaves are parts; engineers at different
   sites check out sub-assemblies (write tokens migrate), revise parts,
   and replace whole sub-trees, leaving old revisions for the collector.
   At the end the home site checkpoints the design into RVM, crashes, and
   recovers it.

   Run with: dune exec examples/design_db.exe *)

open Bmx_util
module Cluster = Bmx.Cluster
module Protocol = Bmx_dsm.Protocol
module Store = Bmx_memory.Store
module Value = Bmx_memory.Value
module Rvm = Bmx_rvm.Rvm

(* assembly = [left; right; revision] ; part = [nil; nil; revision] *)

let rec build_assembly c ~node ~bunch ~depth ~rev =
  if depth = 0 then
    Cluster.alloc c ~node ~bunch [| Value.nil; Value.nil; Value.Data rev |]
  else
    let l = build_assembly c ~node ~bunch ~depth:(depth - 1) ~rev in
    let r = build_assembly c ~node ~bunch ~depth:(depth - 1) ~rev in
    Cluster.alloc c ~node ~bunch [| Value.Ref l; Value.Ref r; Value.Data rev |]

let () =
  let c = Cluster.create ~nodes:3 ~seed:9 () in
  let design_bunch = Cluster.new_bunch c ~home:0 in
  let root = build_assembly c ~node:0 ~bunch:design_bunch ~depth:4 ~rev:1 in
  Cluster.add_root c ~node:0 root;
  Printf.printf "initial design: %d objects\n" (Bmx.Audit.total_cached_copies c);

  (* Engineer at N1 checks out the left sub-assembly and revises it by
     replacing it with a fresh revision (old sub-tree becomes garbage). *)
  let root_at_n1 = Cluster.acquire_write c ~node:1 root in
  let new_left = build_assembly c ~node:1 ~bunch:design_bunch ~depth:3 ~rev:2 in
  Cluster.write c ~node:1 root_at_n1 0 (Value.Ref new_left);
  Cluster.release c ~node:1 root_at_n1;
  Printf.printf "N1 replaced the left sub-assembly (rev 2)\n";

  (* Engineer at N2 revises a single part deep in the right sub-tree. *)
  let root_at_n2 = Cluster.acquire_read c ~node:2 root_at_n1 in
  let rec descend addr n =
    if n = 0 then addr
    else
      let a = Cluster.acquire_read c ~node:2 addr in
      let next = Cluster.read c ~node:2 a 1 in
      Cluster.release c ~node:2 a;
      match next with Value.Ref r -> descend r (n - 1) | _ -> addr
  in
  Cluster.release c ~node:2 root_at_n2;
  let part = descend root_at_n2 4 in
  let part' = Cluster.acquire_write c ~node:2 part in
  Cluster.write c ~node:2 part' 2 (Value.Data 3);
  Cluster.release c ~node:2 part';
  Printf.printf "N2 revised a leaf part in place (rev 3)\n";

  (* The home site syncs its view of the root (a token acquire brings the
     consistent copy — until then its stale copy conservatively pins the
     old revision, §4.2). *)
  let root_synced = Cluster.acquire_read c ~node:0 root in
  Cluster.release c ~node:0 root_synced;
  Cluster.remove_root c ~node:0 root;
  Cluster.add_root c ~node:0 root_synced;

  (* Collect the superseded revision at every site. *)
  let reclaimed = Cluster.collect_until_quiescent c () in
  Printf.printf "collector reclaimed %d superseded objects (no token acquired: %b)\n"
    reclaimed
    (Stats.get (Cluster.stats c) "dsm.gc.acquire_write" = 0);

  (* Checkpoint the design at the home site into recoverable memory. *)
  let store = Protocol.store (Cluster.proto c) 0 in
  let disk = Rvm.create ~copy:(fun (a, o) -> (a, Bmx_memory.Heap_obj.clone o)) () in
  Rvm.begin_tx disk;
  List.iter
    (fun (a, o) -> Rvm.set disk a (a, o))
    (Store.objects_of_bunch store design_bunch);
  Rvm.commit disk;
  Printf.printf "checkpointed %d objects into the RVM log\n" (Rvm.cardinal disk);

  (* The home site crashes... and recovers the design from stable store. *)
  Rvm.crash disk;
  ignore (Rvm.recover disk);
  let restored = Rvm.cardinal disk in
  Printf.printf "after crash+recovery: %d objects restored\n" restored;
  (match Bmx.Audit.check_safety c with
  | Ok () -> print_endline "heap audit: ok"
  | Error m -> failwith m);
  assert (restored > 0)
