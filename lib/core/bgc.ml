let run t ~node ~bunch =
  let r = Collect.run t ~node ~bunches:[ bunch ] ~group_mode:false () in
  Gc_state.sample_node_gauges t ~node;
  r

let run_all_replicas t ~bunch =
  let proto = Gc_state.proto t in
  List.map
    (fun node -> run t ~node ~bunch)
    (Bmx_dsm.Protocol.bunch_replica_nodes proto bunch)
