open Bmx_util
module Cluster = Bmx.Cluster
module Net = Bmx_netsim.Net
module Value = Bmx_memory.Value

type choice = Deliver of Ids.Node.t * Ids.Node.t | Local of int

let choice_to_string = function
  | Deliver (src, dst) -> Printf.sprintf "N%d=>N%d" src dst
  | Local i -> Printf.sprintf "local#%d" i

type report = {
  schedules : int;
  truncated : bool;
  violations : (choice list * string) list;
}

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%d schedule(s) explored%s, %d violation(s)"
    r.schedules
    (if r.truncated then " (truncated)" else "")
    (List.length r.violations);
  List.iter
    (fun (sched, msg) ->
      Format.fprintf ppf "@,  [%s] %s"
        (String.concat " " (List.map choice_to_string sched))
        msg)
    r.violations;
  Format.fprintf ppf "@]"

let default_check c =
  match Bmx.Audit.check_safety c with
  | Error _ as e -> e
  | Ok () -> Bmx.Audit.check_tokens c

let run ?(depth = 8) ?(max_schedules = 2000) ~build ?(locals = [])
    ?(finish = fun _ -> ()) ?(check = default_check) () =
  let locals = Array.of_list locals in
  let schedules = ref 0 and truncated = ref false and violations = ref [] in
  let apply c = function
    | Deliver (src, dst) -> ignore (Net.step_pair (Cluster.net c) ~src ~dst)
    | Local i -> locals.(i) c
  in
  let rec dfs prefix =
    if !schedules >= max_schedules then truncated := true
    else begin
      (* Stateless exploration: replay the deterministic scenario from
         scratch, then apply the schedule prefix. *)
      let c = build () in
      List.iter (apply c) (List.rev prefix);
      let used i =
        List.exists (function Local j -> i = j | Deliver _ -> false) prefix
      in
      let choices =
        if List.length prefix >= depth then []
        else
          List.map
            (fun (s, d) -> Deliver (s, d))
            (Net.deliverable_pairs (Cluster.net c))
          @ (Array.to_list locals
            |> List.mapi (fun i _ -> i)
            |> List.filter_map (fun i -> if used i then None else Some (Local i))
            )
      in
      match choices with
      | [] ->
          (* Leaf: run any locals the schedule never placed, let the
             scenario finish (e.g. recover a node it crashed), then
             settle — drain plus enough virtual time for the reliable
             layer's retransmissions — and check the final state. *)
          Array.iteri
            (fun i f ->
              if not (used i) then begin
                f c;
                ignore (Cluster.drain c)
              end)
            locals;
          finish c;
          ignore (Cluster.settle c);
          incr schedules;
          let sched = List.rev prefix in
          List.iter
            (fun v ->
              violations := (sched, Lint.violation_to_string v) :: !violations)
            (Lint.check_all (Cluster.proto c));
          (match check c with
          | Ok () -> ()
          | Error m -> violations := (sched, m) :: !violations)
      | cs -> List.iter (fun ch -> dfs (ch :: prefix)) cs
    end
  in
  dfs [];
  {
    schedules = !schedules;
    truncated = !truncated;
    violations = List.rev !violations;
  }

(* ------------------------------------------------------------------ *)
(* Built-in scenarios (mirroring the protection races of DESIGN.md §5
   pinned in test_races.ml, but left with their messages pending so the
   explorer owns the schedule). *)

(* An intra-bunch pointer stored at a node that never cached the target,
   then the target's root drops; only the barrier's entering
   registration protects it.  Locals: BGC at either node. *)
let uncached_store () =
  let c = Cluster.create ~nodes:2 ~trace_events:true () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let s = Cluster.alloc c ~node:0 ~bunch:b [| Value.nil |] in
  Cluster.add_root c ~node:0 x;
  Cluster.add_root c ~node:0 s;
  let s1 = Cluster.acquire_write c ~node:1 s in
  Cluster.write c ~node:1 s1 0 (Value.Ref x);
  Cluster.release c ~node:1 s1;
  Cluster.remove_root c ~node:0 x;
  c

let uncached_store_locals =
  [
    (fun c -> ignore (Cluster.bgc c ~node:0 ~bunch:0));
    (fun c -> ignore (Cluster.bgc c ~node:1 ~bunch:0));
  ]

(* A reachability table queued before a registration but deliverable
   after it (race 4): the stale table must not cancel the registration,
   under any interleaving of the pending traffic and the owner's BGC. *)
let stale_table () =
  let c = Cluster.create ~nodes:2 ~trace_events:true () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let s = Cluster.alloc c ~node:0 ~bunch:b [| Value.nil |] in
  Cluster.add_root c ~node:0 x;
  Cluster.add_root c ~node:0 s;
  let s1 = Cluster.acquire_read c ~node:1 s in
  Cluster.release c ~node:1 s1;
  ignore (Cluster.bgc c ~node:1 ~bunch:b);
  let s1' = Cluster.acquire_write c ~node:1 s1 in
  Cluster.write c ~node:1 s1' 0 (Value.Ref x);
  Cluster.release c ~node:1 s1';
  Cluster.remove_root c ~node:0 x;
  c

let stale_table_locals = [ (fun c -> ignore (Cluster.bgc c ~node:0 ~bunch:0)) ]

(* Two replicas of the same bunch collect concurrently: their stub
   tables cross on the wire while a root has just dropped.  Whatever
   order the tables (and the follow-up BGCs) land in, the freshly linked
   object must survive. *)
let crossing_tables () =
  let c = Cluster.create ~nodes:2 ~trace_events:true () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let s = Cluster.alloc c ~node:0 ~bunch:b [| Value.nil |] in
  Cluster.add_root c ~node:0 x;
  Cluster.add_root c ~node:0 s;
  let s1 = Cluster.acquire_write c ~node:1 s in
  Cluster.write c ~node:1 s1 0 (Value.Ref x);
  Cluster.release c ~node:1 s1;
  ignore (Cluster.bgc c ~node:0 ~bunch:b);
  ignore (Cluster.bgc c ~node:1 ~bunch:b);
  Cluster.remove_root c ~node:0 x;
  c

let crossing_tables_locals =
  [
    (fun c -> ignore (Cluster.bgc c ~node:0 ~bunch:0));
    (fun c -> ignore (Cluster.bgc c ~node:1 ~bunch:0));
  ]

(* Node 0 crashes while the protection traffic of an ownership transfer
   is still on the wire, at any point the explorer chooses; it may be
   restarted and recovered at any later point (or, failing that, by the
   leaf's finish step).  Node 1 takes write ownership of [s] and stores
   an inter-bunch reference to [x] — whose bunch node 1 does not map —
   so a reliable scion-message towards node 0 is pending when the
   explorer takes over.  A crash before its delivery purges it
   (retransmission repairs that after restart); a crash after its
   delivery wipes the installed scion (the durable checkpoint repairs
   that).  Whatever the interleaving of deliveries, crash, recovery and
   node 1's collection: nothing reachable may be lost and the trace must
   satisfy the recovery invariants.  The durable image is a [gc_roots]
   checkpoint taken before the transfer — the disks live outside the
   builder so the locals can reach them across stateless replays. *)
let crash_transfer_disks : Bmx.Persist.disk list ref = ref []

let crash_transfer () =
  let c = Cluster.create ~nodes:2 ~trace_events:true () in
  let bx = Cluster.new_bunch c ~home:0 in
  let bs = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:bx [| Value.Data 1 |] in
  let s = Cluster.alloc c ~node:0 ~bunch:bs [| Value.nil |] in
  Cluster.add_root c ~node:0 x;
  Cluster.add_root c ~node:0 s;
  let dx = Bmx.Persist.create_disk () and ds = Bmx.Persist.create_disk () in
  ignore (Bmx.Persist.checkpoint ~gc_roots:true c ~node:0 ~bunch:bx dx);
  ignore (Bmx.Persist.checkpoint ~gc_roots:true c ~node:0 ~bunch:bs ds);
  crash_transfer_disks := [ dx; ds ];
  (* Ownership of [s] moves 0 -> 1; the inter-bunch store leaves a
     scion-message for node 0 pending, with only a provisional entering
     registration (and, now, the checkpoint) protecting [x]. *)
  let s1 = Cluster.acquire_write c ~node:1 s in
  Cluster.write c ~node:1 s1 0 (Value.Ref x);
  Cluster.release c ~node:1 s1;
  Cluster.remove_root c ~node:0 x;
  c

let crash_transfer_recover c =
  if not (Cluster.node_alive c 0) then begin
    Cluster.restart_node c ~node:0;
    ignore (Bmx.Persist.recover_node c ~node:0 !crash_transfer_disks)
  end

let crash_transfer_locals =
  [
    (fun c -> if Cluster.node_alive c 0 then Cluster.crash_node c ~node:0);
    crash_transfer_recover;
    (fun c -> ignore (Cluster.bgc c ~node:1 ~bunch:1));
  ]

type scenario = {
  sc_name : string;
  sc_desc : string;
  sc_build : unit -> Cluster.t;
  sc_locals : (Cluster.t -> unit) list;
  sc_finish : Cluster.t -> unit;
}

let no_finish _ = ()

let builtin_scenarios =
  [
    {
      sc_name = "uncached-store";
      sc_desc =
        "intra-bunch store at a node without the target cached, root drops, \
         BGCs race the barrier registration";
      sc_build = uncached_store;
      sc_locals = uncached_store_locals;
      sc_finish = no_finish;
    };
    {
      sc_name = "stale-table";
      sc_desc =
        "reachability table queued before a fresh registration races its \
         delivery (DESIGN.md race 4)";
      sc_build = stale_table;
      sc_locals = stale_table_locals;
      sc_finish = no_finish;
    };
    {
      sc_name = "crossing-tables";
      sc_desc =
        "stub tables from two concurrent BGCs cross on the wire while a root \
         drops";
      sc_build = crossing_tables;
      sc_locals = crossing_tables_locals;
      sc_finish = no_finish;
    };
    {
      sc_name = "crash-transfer";
      sc_desc =
        "the old owner crashes while an ownership transfer's background \
         messages are in flight, then restarts and recovers from its RVM \
         checkpoint";
      sc_build = crash_transfer;
      sc_locals = crash_transfer_locals;
      sc_finish = crash_transfer_recover;
    };
  ]

let find_scenario name =
  List.find_opt (fun s -> String.equal s.sc_name name) builtin_scenarios
