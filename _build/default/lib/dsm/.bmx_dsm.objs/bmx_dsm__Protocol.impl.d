lib/dsm/protocol.ml: Addr Array Bmx_memory Bmx_netsim Bmx_util Directory Hashtbl Ids List Option Printf Stats Tracelog
