open Bmx_util
module Net = Bmx_netsim.Net

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let make () =
  let stats = Stats.create_registry () in
  let net : string Net.t = Net.create ~stats () in
  (net, stats)

let test_fifo_seq_per_pair () =
  let net, _ = make () in
  let seen = ref [] in
  Net.set_handler net (fun env -> seen := (env.Net.src, env.Net.dst, env.Net.seq) :: !seen);
  Net.send net ~src:0 ~dst:1 ~kind:Net.Stub_table "a";
  Net.send net ~src:0 ~dst:1 ~kind:Net.Stub_table "b";
  Net.send net ~src:0 ~dst:2 ~kind:Net.Stub_table "c";
  Net.send net ~src:0 ~dst:1 ~kind:Net.Scion_message "d";
  ignore (Net.drain net);
  let seqs_01 =
    List.rev !seen
    |> List.filter (fun (s, d, _) -> s = 0 && d = 1)
    |> List.map (fun (_, _, q) -> q)
  in
  check (Alcotest.list Alcotest.int) "seqs increase per pair" [ 1; 2; 3 ] seqs_01;
  let seqs_02 =
    List.rev !seen |> List.filter (fun (_, d, _) -> d = 2) |> List.map (fun (_, _, q) -> q)
  in
  check (Alcotest.list Alcotest.int) "independent stream" [ 1 ] seqs_02

let test_delivery_order_fifo () =
  let net, _ = make () in
  let seen = ref [] in
  Net.set_handler net (fun env -> seen := env.Net.payload :: !seen);
  List.iter (fun p -> Net.send net ~src:0 ~dst:1 ~kind:Net.App_message p)
    [ "1"; "2"; "3"; "4" ];
  ignore (Net.drain net);
  check (Alcotest.list Alcotest.string) "in order" [ "1"; "2"; "3"; "4" ]
    (List.rev !seen)

let test_handler_can_send () =
  (* A delivery handler may send more messages; drain keeps going. *)
  let net, _ = make () in
  Net.set_handler net (fun env ->
      if env.Net.payload = "ping" then
        Net.send net ~src:env.Net.dst ~dst:env.Net.src ~kind:Net.App_message "pong");
  Net.send net ~src:0 ~dst:1 ~kind:Net.App_message "ping";
  let delivered = Net.drain net in
  check_int "both delivered" 2 delivered;
  check_int "pending empty" 0 (Net.pending net)

let test_accounting () =
  let net, stats = make () in
  Net.set_handler net (fun _ -> ());
  Net.send net ~src:0 ~dst:1 ~kind:Net.Stub_table ~bytes:100 "x";
  Net.record_rpc net ~src:1 ~dst:0 ~kind:Net.Token_grant ~bytes:50 ();
  Net.record_piggyback net ~src:1 ~kind:Net.Token_grant ~bytes:24 ();
  check_int "sent stub_table" 1 (Net.sent net Net.Stub_table);
  check_int "sent grant" 1 (Net.sent net Net.Token_grant);
  check_int "total messages" 2 (Net.total_messages net);
  check_int "total bytes" 174 (Net.total_bytes net);
  check_int "piggyback count" 1 (Stats.get stats "net.piggyback.token_grant");
  check_int "piggyback bytes" 24 (Stats.get stats "net.bytes.piggyback")

let test_drop_consumes_seq () =
  let net, stats = make () in
  let seqs = ref [] in
  Net.set_handler net (fun env -> seqs := env.Net.seq :: !seqs);
  (* Drop everything: the stream sequence numbers advance anyway, as over
     a real lossy link. *)
  let rng = Rng.make 1 in
  Net.set_fault net ~kind:Net.Stub_table ~drop:1.0 ~dup:0.0 ~rng;
  Net.send net ~src:0 ~dst:1 ~kind:Net.Stub_table "lost";
  Net.clear_faults net;
  Net.send net ~src:0 ~dst:1 ~kind:Net.Stub_table "kept";
  ignore (Net.drain net);
  check (Alcotest.list Alcotest.int) "gap observed" [ 2 ] !seqs;
  check_int "drop counted" 1 (Stats.get stats "net.dropped.stub_table");
  check_int "only one sent" 1 (Net.sent net Net.Stub_table)

let test_duplication () =
  let net, stats = make () in
  let count = ref 0 in
  Net.set_handler net (fun _ -> incr count);
  let rng = Rng.make 1 in
  Net.set_fault net ~kind:Net.Stub_table ~drop:0.0 ~dup:1.0 ~rng;
  Net.send net ~src:0 ~dst:1 ~kind:Net.Stub_table "x";
  ignore (Net.drain net);
  check_int "delivered twice" 2 !count;
  check_int "duplication counted" 1 (Stats.get stats "net.duplicated.stub_table")

let test_fault_scoped_by_kind () =
  let net, _ = make () in
  let count = ref 0 in
  Net.set_handler net (fun _ -> incr count);
  let rng = Rng.make 1 in
  Net.set_fault net ~kind:Net.Stub_table ~drop:1.0 ~dup:0.0 ~rng;
  Net.send net ~src:0 ~dst:1 ~kind:Net.Scion_message "untouched";
  ignore (Net.drain net);
  check_int "other kinds unaffected" 1 !count

let test_step_empty () =
  let net, _ = make () in
  Net.set_handler net (fun _ -> ());
  check_bool "step on empty queue" false (Net.step net)

(* ----------------------------------------------------------- partitions *)

let test_cut_blackholes_until_heal () =
  let net, stats = make () in
  let count = ref 0 in
  Net.set_handler net (fun _ -> incr count);
  Net.cut_link net ~src:0 ~dst:1;
  check_bool "link reported cut" true (Net.is_cut net ~src:0 ~dst:1);
  check_bool "pair not reachable" false (Net.reachable net 0 1);
  Net.send net ~src:0 ~dst:1 ~kind:Net.Stub_table "lost";
  ignore (Net.drain net);
  check_int "blackholed at delivery" 0 !count;
  check_int "accounted as cut-dropped" 1
    (Stats.get stats "net.cut_dropped.total");
  Net.heal_link net ~src:0 ~dst:1;
  check_bool "pair reachable again" true (Net.reachable net 0 1);
  (* Unreliable traffic lost during the cut stays lost (§6.1 semantics);
     new sends flow. *)
  Net.send net ~src:0 ~dst:1 ~kind:Net.Stub_table "after";
  ignore (Net.drain net);
  check_int "post-heal traffic delivered" 1 !count

let test_cut_is_directed () =
  let net, _ = make () in
  let seen = ref [] in
  Net.set_handler net (fun env -> seen := env.Net.payload :: !seen);
  Net.cut_link net ~src:0 ~dst:1;
  Net.send net ~src:0 ~dst:1 ~kind:Net.Stub_table "forward";
  Net.send net ~src:1 ~dst:0 ~kind:Net.Stub_table "reverse";
  ignore (Net.drain net);
  check
    (Alcotest.list Alcotest.string)
    "only the cut direction blackholes" [ "reverse" ] !seen

let test_partition_groups () =
  let net, _ = make () in
  let count = ref 0 in
  Net.set_handler net (fun _ -> incr count);
  Net.partition net ~groups:[ [ 0; 1 ]; [ 2; 3 ] ];
  check_bool "intra-group reachable" true (Net.reachable net 0 1);
  check_bool "cross-group severed" false (Net.reachable net 0 2);
  check_bool "severed both ways" false (Net.reachable net 3 1);
  check_int "four directed pairs cut per side pair" 8
    (List.length (Net.cut_pairs net));
  Net.send net ~src:0 ~dst:1 ~kind:Net.Stub_table "in";
  Net.send net ~src:0 ~dst:2 ~kind:Net.Stub_table "across";
  ignore (Net.drain net);
  check_int "only intra-group traffic flows" 1 !count;
  Net.heal_all_links net;
  check_int "no cut links left" 0 (List.length (Net.cut_pairs net));
  Net.send net ~src:0 ~dst:2 ~kind:Net.Stub_table "healed";
  ignore (Net.drain net);
  check_int "cross-group flows after heal" 2 !count

let test_rpc_refused_on_cut () =
  let net, stats = make () in
  Net.set_handler net (fun _ -> ());
  Net.cut_link net ~src:1 ~dst:0;
  (* An RPC needs both directions: a cut reverse path (the reply's) is
     just as fatal as a cut forward path. *)
  let refused =
    try
      Net.record_rpc net ~src:0 ~dst:1 ~kind:Net.Token_request ();
      false
    with Failure _ -> true
  in
  check_bool "rpc raises across a cut" true refused;
  check_int "refusal accounted" 1 (Stats.get stats "net.rpc_unreachable");
  Net.heal_link net ~src:1 ~dst:0;
  Net.record_rpc net ~src:0 ~dst:1 ~kind:Net.Token_request ();
  check_int "healed rpc accounted as sent" 1 (Net.sent net Net.Token_request)

let test_kind_names_unique () =
  let names = List.map Net.kind_to_string Net.all_kinds in
  check_int "all kind names distinct" (List.length names)
    (List.length (List.sort_uniq compare names))

let () =
  Alcotest.run "netsim"
    [
      ( "fifo",
        [
          Alcotest.test_case "per-pair sequence numbers" `Quick test_fifo_seq_per_pair;
          Alcotest.test_case "delivery order" `Quick test_delivery_order_fifo;
          Alcotest.test_case "handler reentrancy" `Quick test_handler_can_send;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "messages, bytes, piggyback" `Quick test_accounting;
          Alcotest.test_case "kind names unique" `Quick test_kind_names_unique;
        ] );
      ( "faults",
        [
          Alcotest.test_case "drop consumes a sequence number" `Quick
            test_drop_consumes_seq;
          Alcotest.test_case "duplication" `Quick test_duplication;
          Alcotest.test_case "faults scoped by kind" `Quick test_fault_scoped_by_kind;
          Alcotest.test_case "step on empty" `Quick test_step_empty;
        ] );
      ( "partitions",
        [
          Alcotest.test_case "cut blackholes until heal" `Quick
            test_cut_blackholes_until_heal;
          Alcotest.test_case "cut is directed" `Quick test_cut_is_directed;
          Alcotest.test_case "partition groups" `Quick test_partition_groups;
          Alcotest.test_case "rpc refused on cut" `Quick test_rpc_refused_on_cut;
        ] );
    ]
