(** Minimal JSON values: emit and parse.

    The observability layer exports metrics snapshots and Perfetto
    timelines as JSON; the [@report] smoke test re-parses what it wrote
    to certify the export is well formed.  This module is deliberately
    tiny (no external dependency): integers stay integers, objects keep
    insertion order, and parsing accepts exactly the JSON grammar (with
    [\uXXXX] escapes decoded to UTF-8). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact rendering.  Non-finite floats render as [null] (JSON has no
    NaN/infinity). *)

val parse : string -> (t, string) result
(** Parse one JSON document (leading/trailing whitespace allowed).
    Numbers without [.], [e] or [E] parse as [Int]. *)

val member : string -> t -> t option
(** [member k (Obj _)] — first binding of [k], [None] otherwise. *)

val pp : Format.formatter -> t -> unit
