(** Causal spans derived from the structured event trace.

    A span is an interval on one node's virtual-time line, assembled by
    pairing begin/end events out of {!Bmx_util.Trace_event}:

    - [acquire.read] / [acquire.write] — token acquisition end-to-end,
      [Acquire_start] → [Acquire_done] keyed by (actor, node, uid, tok);
      app acquires land on the [Dsm] track, GC-actor acquires (which the
      paper forbids, §5) on the [Gc] track.
    - [gc.bgc] / [gc.ggc] — a collection cycle, [Gc_begin] → [Gc_end]
      keyed by node.
    - [msg.<kind>] — a background message flight on the sender's line,
      [Msg_sent] → [Msg_delivered] keyed by (src, dst, kind, seq).  For
      reliable kinds this covers the whole retransmit epoch (delivery
      carries the original seq); the [attempts] arg counts transmissions.
      Scion-cleaner traffic ([scion_message], [stub_table]) lands on the
      [Cleaner] track, everything else on [Net].
    - [down] — [Crash] → [Restart], on [Net].

    Retransmissions, suppressions and buffering become instants
    ([dur = None]).  A begin event with no matching end (message lost to
    a crash, trace truncated) yields an instant with ["unfinished"] set
    in its args.  Durations are in virtual µsteps
    ({!Bmx_util.Trace_event.quantum} per [Net.now] tick). *)

open Bmx_util

type track = Dsm | Gc | Net | Cleaner

val track_name : track -> string
val all_tracks : track list

type t = {
  name : string;
  node : Ids.Node.t;  (** whose timeline the span sits on *)
  track : track;
  ts : int;  (** start, virtual µsteps *)
  dur : int option;  (** [None] = instant *)
  args : (string * Json.t) list;
}

val of_events : (int * Trace_event.t) list -> t list
(** Input as produced by {!Bmx_util.Trace_event.timed_events} (oldest
    first); output sorted by [ts]. *)
