(** Persistence by reachability (§1, §2.1).

    "Objects can become persistent by reachability, that is, they are
    persistent if reachable from the persistent root ... objects that are
    no longer reachable from the persistent root should not be stored on
    disk."  This module implements exactly that contract on top of the
    RVM substrate: a checkpoint of a bunch stores the objects of the
    bunch reachable from the node's roots — and {e only} those — into a
    recoverable store, atomically (one RVM transaction per checkpoint,
    retiring stale entries).  [restore] rebuilds a node's replica of the
    bunch from the recovered image, re-registering ownership.

    The reachability decision is the collector's: checkpointing is "run
    the local trace, persist the survivors", which is why persistence by
    reachability needs a GC in the first place (§1). *)

type disk = (Bmx_util.Addr.t * Bmx_memory.Heap_obj.t) Bmx_rvm.Rvm.t

val create_disk : unit -> disk
(** A fresh recoverable store for heap cells. *)

val checkpoint :
  Cluster.t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t -> disk
  -> int
(** Persist the bunch's locally reachable objects into [disk] within one
    RVM transaction; previously persisted cells that are no longer
    reachable are deleted (persistence {e by reachability}).  Returns the
    number of objects persisted.  Raises [Failure] if the disk has an
    open transaction. *)

val restore :
  Cluster.t -> node:Bmx_util.Ids.Node.t -> disk -> int
(** Install every recovered cell into the node's store at its persisted
    address and root it (the recovered persistent state).  Objects whose
    owner still exists elsewhere come back as ordinary (inconsistent)
    replicas; orphaned objects get [node] as owner.  Returns the number
    of objects restored.  Intended for a rebooted or replacement node of
    the {e same} cluster — addresses and identities live in the cluster's
    single address space — after [Bmx_rvm.Rvm.recover] on the disk. *)
