(** End-of-run observability report.

    Combines a metrics registry snapshot with latency histograms derived
    from the span layer: every finished span feeds a
    [latency.<family>] histogram ([latency.token_acquire.read],
    [latency.token_acquire.write], [latency.gc.pause],
    [latency.msg.<kind>]), in virtual µsteps.

    The paper's non-interference claim (§5) is surfaced as the
    [gc.token_acquires] counter — the number of token acquisitions
    performed by the GC actor.  It must read 0; {!ok} says whether it
    does. *)

open Bmx_util

type t

val of_events : metrics:Metrics.t -> (int * Trace_event.t) list -> t
(** Derives spans from the timed trace, folds their durations into
    latency histograms {e inside [metrics]}, then snapshots it.  The
    [gc.token_acquires] counter is created (at zero) if no GC-actor
    acquire was ever recorded, so it appears in every report. *)

val spans : t -> Span.t list
val snapshot : t -> Metrics.snapshot

val gc_token_acquires : t -> int
val ok : t -> bool
(** [gc_token_acquires t = 0]. *)

val with_certified : t -> bool -> t
(** Attach the happens-before certifier's verdict ([Bmx_check.Races],
    computed by the caller — the observability layer does not depend on
    the checker).  Renders next to [gc.token_acquires] in {!to_text}
    and as a ["certified"] field in {!to_json}. *)

val certified : t -> bool option
(** [None] when no certificate was attached. *)

val latency : t -> string -> Metrics.summary option
(** [latency t "token_acquire.read"] — the [latency.*] histogram. *)

val to_text : t -> string
(** Metrics table, latency percentile table, non-interference verdict. *)

val to_json : t -> Json.t
