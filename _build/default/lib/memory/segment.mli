(** Segments: constant-size sets of contiguous virtual-memory pages (§2.1).

    A segment is the allocation and collection grain.  The BMX-server
    guarantees that segments never overlap (see {!Registry}).  Each segment
    carries the two GC bit arrays of §8: the {e object-map} (a set bit marks
    the first word of an object) and the {e reference-map} (a set bit marks
    a word that currently holds a pointer). *)

(** Role of a segment in its bunch's current GC epoch. *)
type role =
  | Active  (** normal allocation space; becomes from-space at a flip *)
  | From_space  (** being evacuated; may still hold live non-owned objects *)
  | To_space  (** destination of the current/most recent BGC copy phase *)
  | Free  (** fully reclaimed; contents discarded *)

type t = private {
  range : Bmx_util.Addr.Range.t;
  bunch : Bmx_util.Ids.Bunch.t;
  mutable role : role;
  mutable alloc_ptr : Bmx_util.Addr.t;  (** bump pointer *)
  object_map : Bmx_util.Bitmap.t;
  ref_map : Bmx_util.Bitmap.t;
}

val make : range:Bmx_util.Addr.Range.t -> bunch:Bmx_util.Ids.Bunch.t -> t

val default_bytes : int
(** Default segment size: 16 pages (64 KiB). *)

val bytes_free : t -> int

val alloc : t -> size:int -> Bmx_util.Addr.t option
(** Bump-allocate [size] bytes (word-aligned); sets the object-map bit at
    the returned address.  [None] on overflow — the caller grows the bunch
    with a fresh segment ("segment overflow", §2.1). *)

val seal : t -> unit
(** Exhaust the bump pointer.  A node that maps a {e view} of a range some
    other node allocates into must never bump-allocate there itself — the
    registry handed the range to exactly one allocator. *)

val contains : t -> Bmx_util.Addr.t -> bool
val set_role : t -> role -> unit
val role_to_string : role -> string

val note_pointer : t -> Bmx_util.Addr.t -> is_pointer:bool -> unit
(** Maintain the reference-map bit for the word at the given address. *)

val clear_object : t -> Bmx_util.Addr.t -> unit
(** Clear the object-map bit (object evacuated or dead). *)

val objects : t -> Bmx_util.Addr.t list
(** Addresses of all object starts recorded in the object-map. *)

val reset : t -> unit
(** Return the segment to [Free] with empty maps and a rewound bump
    pointer: the from-space reuse of §4.5. *)

val pp : Format.formatter -> t -> unit
