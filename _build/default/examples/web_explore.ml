(* A cooperative hypertext exploration tool — the "exploratory tools
   similar to the World-Wide-Web" workload of §1.

   A web of pages (objects with link fields) spans several bunches.
   Explorer nodes crawl the web concurrently through read tokens, keep
   bookmarks (roots), occasionally rewrite links (write tokens + barrier),
   and drop bookmarks.  Unbookmarked islands — including cross-bunch link
   cycles — are collected by the BGCs and the GGC.

   Run with: dune exec examples/web_explore.exe *)

open Bmx_util
module Cluster = Bmx.Cluster
module Value = Bmx_memory.Value
module Graphgen = Bmx_workload.Graphgen

let () =
  let c = Cluster.create ~nodes:3 ~seed:5 () in
  let rng = Rng.make 8 in
  let bunches = List.init 3 (fun i -> Cluster.new_bunch c ~home:i) in
  (* Build a web of 120 pages with 3 links each, 30% cross-bunch. *)
  let pages =
    Graphgen.random_graph c ~rng ~node:0 ~bunches ~objects:120 ~out_degree:3
      ~cross_bunch_prob:0.3
  in
  (* Each explorer bookmarks a few entry points. *)
  let bookmarks = ref [] in
  List.iteri
    (fun node entries ->
      List.iter
        (fun i ->
          let p = Cluster.acquire_read c ~node pages.(i) in
          Cluster.release c ~node p;
          Cluster.add_root c ~node p;
          bookmarks := (node, p) :: !bookmarks)
        entries)
    [ [ 0; 17 ]; [ 40; 55 ]; [ 80; 99 ] ];

  (* Crawl: follow random links from a bookmark, reading pages. *)
  let crawl ~node ~from ~steps =
    let rec go addr steps visited =
      if steps = 0 then visited
      else begin
        let a = Cluster.acquire_read c ~node addr in
        let link = Cluster.read c ~node a (Rng.int rng 3) in
        Cluster.release c ~node a;
        match link with
        | Value.Ref next when not (Addr.is_null next) -> go next (steps - 1) (visited + 1)
        | _ -> visited
      end
    in
    go from steps 0
  in
  List.iter
    (fun (node, p) ->
      let visited = crawl ~node ~from:p ~steps:30 in
      Printf.printf "explorer N%d crawled %d pages from a bookmark\n" node visited)
    !bookmarks;

  (* Editors rewire a few links (ownership migrates, barriers fire). *)
  for _ = 1 to 25 do
    let node = Rng.int rng 3 in
    let p = pages.(Rng.int rng 120) in
    (* Only touch pages that are still reachable. *)
    if
      Ids.Uid_set.mem
        (Cluster.uid_at c ~node:0 p)
        (Bmx.Audit.union_reachable c)
    then begin
      let a = Cluster.acquire_write c ~node p in
      Cluster.write c ~node a (Rng.int rng 3) (Value.Ref pages.(Rng.int rng 120));
      Cluster.release c ~node a
    end
  done;

  (* Two explorers drop their bookmarks: whole islands become garbage. *)
  (match !bookmarks with
  | (n1, p1) :: (n2, p2) :: _ ->
      Cluster.remove_root c ~node:n1 p1;
      Cluster.remove_root c ~node:n2 p2
  | _ -> ());

  let before = Bmx.Audit.total_cached_copies c in
  let reclaimed = Cluster.collect_until_quiescent c () in
  (* Cross-bunch cycles need the group collector (§7). *)
  let ggc_reclaimed =
    List.fold_left
      (fun acc node ->
        let r = Cluster.ggc c ~node in
        acc + r.Bmx_gc.Collect.r_reclaimed)
      0 (Cluster.nodes c)
  in
  ignore (Cluster.drain c);
  let more = Cluster.collect_until_quiescent c () in
  Printf.printf
    "after dropping bookmarks: %d copies -> %d reclaimed by BGCs, %d by GGCs (+%d follow-up)\n"
    before reclaimed ggc_reclaimed more;
  (* Stale replicas at the editors conservatively pin old link targets
     (§4.2: scanning an inconsistent copy errs towards liveness).  A
     re-crawl refreshes the explorers' working sets; collection then
     converges further. *)
  List.iter
    (fun (node, p) ->
      if List.exists (fun a -> Addr.equal a p) (Cluster.roots c ~node) then
        ignore (crawl ~node ~from:p ~steps:60))
    !bookmarks;
  let final = Cluster.collect_until_quiescent c () in
  Printf.printf "after a re-crawl sync: %d more reclaimed\n" final;
  Printf.printf
    "pages: %d reachable, %d unreachable but conservatively retained (stale replicas)\n"
    (Ids.Uid_set.cardinal (Bmx.Audit.union_reachable c))
    (Ids.Uid_set.cardinal (Bmx.Audit.garbage_retained c));
  match Bmx.Audit.check_safety c with
  | Ok () -> print_endline "heap audit: ok"
  | Error m -> failwith m
