lib/util/stats.mli:
