lib/util/ids.mli: Format Hashtbl Set
