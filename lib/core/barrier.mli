(** The write barrier (§3.2).

    Every pointer store an application performs goes through this barrier
    (the paper instruments writes with a C++ macro; here the mutator API
    is the instrumentation point).  When the barrier detects the creation
    of an inter-bunch reference it constructs the corresponding
    inter-bunch SSP immediately: stub and scion locally when the target
    bunch is mapped on this node, otherwise the stub locally and a
    {e scion-message} to a node mapping the target bunch (§3.2). *)

val write_field :
  Gc_state.t ->
  node:Bmx_util.Ids.Node.t ->
  Bmx_util.Addr.t ->
  int ->
  Bmx_memory.Value.t ->
  unit
(** Store a value into a field of the object at the address, running the
    write barrier.  Requires the write token (enforced by the DSM layer).
    Raises [Failure] like {!Bmx_dsm.Protocol.write_field_raw} on token
    violations. *)

val reassert_protection :
  Gc_state.t -> node:Bmx_util.Ids.Node.t -> Bmx_util.Addr.t -> unit
(** Re-run the barrier's protection side (no store) over every pointer
    field of the object at the address: stubs, scions and conservative
    entering registrations exactly as the original stores would have
    created them.  Crash recovery calls this per restored cell — the
    node's SSP tables were volatile, but they are derivable from the
    recovered contents (§8). *)

val scion_target :
  Gc_state.t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t
  -> Bmx_util.Ids.Node.t
(** Where the scion for a new inter-bunch reference created at [node]
    towards [bunch] will live: [node] itself when the bunch is locally
    mapped, else the bunch's home node. *)
