(* End-to-end: several nodes, several bunches, mutators, every collector
   component, persistence, and both copy-set modes. *)

open Bmx_util
module Cluster = Bmx.Cluster
module Protocol = Bmx_dsm.Protocol
module Store = Bmx_memory.Store
module Value = Bmx_memory.Value
module Graphgen = Bmx_workload.Graphgen
module Driver = Bmx_workload.Driver
module Rvm = Bmx_rvm.Rvm

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* End-to-end runs are also certified by the trace linter: the whole
   recorded history must satisfy the GC/DSM non-interference contract
   (see HACKING.md, "Invariant catalog & the checker"). *)
let assert_lint c =
  match Bmx_check.Lint.check_all (Cluster.proto c) with
  | [] -> ()
  | v :: _ -> Alcotest.failf "lint: %s" (Bmx_check.Lint.violation_to_string v)

let test_distributed_acyclic_collection () =
  (* A chain spanning three nodes and two bunches dies when the single
     root is dropped; a few asynchronous rounds reclaim every replica. *)
  let c = Cluster.create ~nodes:3 ~trace_events:true () in
  let b1 = Cluster.new_bunch c ~home:0 in
  let b2 = Cluster.new_bunch c ~home:1 in
  let tail = Cluster.alloc c ~node:1 ~bunch:b2 [| Value.Data 9 |] in
  let mid = Cluster.alloc c ~node:0 ~bunch:b1 [| Value.Ref tail |] in
  let head = Cluster.alloc c ~node:0 ~bunch:b1 [| Value.Ref mid |] in
  Cluster.add_root c ~node:2 (Cluster.acquire_read c ~node:2 head);
  Cluster.release c ~node:2 head;
  ignore (Cluster.drain c);
  ignore (Cluster.collect_until_quiescent c ());
  check_int "everything survives while rooted" 0
    (Ids.Uid_set.cardinal (Bmx.Audit.lost_objects c));
  check_bool "tail alive" true
    (Cluster.cached_at c ~node:1 ~uid:(Cluster.uid_at c ~node:1 tail));
  (* Drop the root at N2: all three objects on all nodes must go. *)
  List.iter (fun a -> Cluster.remove_root c ~node:2 a) (Cluster.roots c ~node:2);
  ignore (Cluster.collect_until_quiescent c ());
  check_int "no copies left anywhere" 0 (Bmx.Audit.total_cached_copies c);
  assert_lint c

let test_full_lifecycle_with_reclaim () =
  let c = Cluster.create ~nodes:2 ~trace_events:true () in
  let b = Cluster.new_bunch c ~home:0 in
  let head = Graphgen.linked_list c ~node:0 ~bunch:b ~len:100 in
  Cluster.add_root c ~node:0 head;
  (* Replicate some of it at N1. *)
  let h1 = Cluster.acquire_read c ~node:1 head in
  Cluster.release c ~node:1 h1;
  (* Mutate: chop the list in half. *)
  let rec advance addr n =
    if n = 0 then addr
    else
      match Cluster.read c ~node:0 addr 0 with
      | Value.Ref next -> advance next (n - 1)
      | Value.Data _ -> Alcotest.fail "list broken"
  in
  let cut = advance head 49 in
  let cut = Cluster.acquire_write c ~node:0 cut in
  Cluster.write c ~node:0 cut 0 Value.nil;
  Cluster.release c ~node:0 cut;
  (* Collect, reclaim from-space, keep using the heap. *)
  let r = Cluster.bgc c ~node:0 ~bunch:b in
  check_int "half the list reclaimed" 50 r.Bmx_gc.Collect.r_reclaimed;
  ignore (Cluster.drain c);
  let _ = Cluster.reclaim_from_space c ~node:0 ~bunch:b in
  ignore (Cluster.drain c);
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c));
  let head' = Store.current_addr (Protocol.store (Cluster.proto c) 0) head in
  check_int "fifty survivors walkable" 50
    (let rec walk addr n =
       match Cluster.read c ~node:0 addr 0 with
       | Value.Ref next when not (Addr.is_null next) -> walk next (n + 1)
       | Value.Ref _ -> n + 1
       | Value.Data _ -> -1
     in
     walk head' 0);
  assert_lint c

let test_modes_agree_on_reachability () =
  (* Centralized and distributed copy-set modes must reclaim exactly the
     same objects for the same workload. *)
  let outcome mode =
    let d =
      Driver.setup { Driver.default with ops = 400; seed = 21; mode; nodes = 3 }
    in
    let c = Driver.cluster d in
    Cluster.set_event_trace c true;
    Driver.run_ops d ();
    ignore (Cluster.collect_until_quiescent c ());
    check_bool "safe" true (Result.is_ok (Bmx.Audit.check_safety c));
    assert_lint c;
    Ids.Uid_set.cardinal (Bmx.Audit.union_reachable c)
  in
  check_int "same survivors"
    (outcome Protocol.Centralized)
    (outcome Protocol.Distributed)

let test_many_nodes_many_bunches () =
  let d =
    Driver.setup
      {
        Driver.default with
        nodes = 6;
        bunches = 8;
        objects_per_bunch = 32;
        ops = 1500;
        seed = 33;
      }
  in
  let c = Driver.cluster d in
  Cluster.set_event_trace c true;
  Driver.run_ops d ();
  ignore (Cluster.collect_until_quiescent c ());
  check_bool "safety at scale" true (Result.is_ok (Bmx.Audit.check_safety c));
  (* The collector still never touched a token — per the counters AND
     per the replayed trace. *)
  check_int "no collector acquires" 0
    (Stats.get (Cluster.stats c) "dsm.gc.acquire_read"
    + Stats.get (Cluster.stats c) "dsm.gc.acquire_write");
  assert_lint c

let test_ggc_after_workload () =
  let d = Driver.setup { Driver.default with ops = 600; seed = 17 } in
  Driver.run_ops d ();
  let c = Driver.cluster d in
  ignore (Cluster.collect_until_quiescent c ());
  let leftover_before =
    Ids.Uid_set.cardinal (Bmx.Audit.garbage_retained c)
  in
  (* Group collections at every node mop up intra-node cross-bunch cycles. *)
  List.iter (fun n -> ignore (Cluster.ggc c ~node:n)) (Cluster.nodes c);
  ignore (Cluster.drain c);
  ignore (Cluster.collect_until_quiescent c ());
  let leftover_after = Ids.Uid_set.cardinal (Bmx.Audit.garbage_retained c) in
  check_bool "GGC only helps" true (leftover_after <= leftover_before);
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c))

(* Persistence by reachability: a bunch survives a node crash through the
   RVM log (the paper's segment-per-file arrangement, §8). *)
let test_persistence_through_rvm () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let head = Graphgen.linked_list c ~node:0 ~bunch:b ~len:10 in
  Cluster.add_root c ~node:0 head;
  (* Persist the bunch replica: one record per cell, committed. *)
  let store = Protocol.store (Cluster.proto c) 0 in
  let disk : (Addr.t * Bmx_memory.Heap_obj.t) Rvm.t =
    Rvm.create ~copy:(fun (a, o) -> (a, Bmx_memory.Heap_obj.clone o)) ()
  in
  Rvm.begin_tx disk;
  List.iter
    (fun (addr, obj) -> Rvm.set disk addr (addr, obj))
    (Store.objects_of_bunch store b);
  Rvm.commit disk;
  (* Crash; recover; rebuild a fresh node's replica from the image. *)
  Rvm.crash disk;
  ignore (Rvm.recover disk);
  let c2 = Cluster.create ~nodes:1 () in
  let b2 = Cluster.new_bunch c2 ~home:0 in
  ignore b2;
  let restored =
    Rvm.fold disk ~init:0 ~f:(fun _addr (addr, obj) acc ->
        Store.install (Protocol.store (Cluster.proto c2) 0) addr
          (Bmx_memory.Heap_obj.clone obj);
        ignore addr;
        acc + 1)
  in
  check_int "all ten objects recovered" 10 restored

(* A long soak: sustained mutation, every collector component, fault
   windows, reclaim — safety checked at every epoch. *)
let test_soak () =
  let d =
    Driver.setup
      {
        Driver.default with
        nodes = 5;
        bunches = 6;
        objects_per_bunch = 48;
        ops = 0;
        seed = 101;
        root_churn_prob = 0.05;
      }
  in
  let c = Driver.cluster d in
  Cluster.set_event_trace c true;
  let rng = Rng.make 202 in
  for epoch = 1 to 12 do
    Driver.run_ops d ~ops:400 ();
    (* Every third epoch, a lossy window over the GC's table traffic. *)
    if epoch mod 3 = 0 then
      Bmx_netsim.Net.set_fault (Cluster.net c) ~kind:Bmx_netsim.Net.Stub_table
        ~drop:0.25 ~dup:0.1 ~rng;
    ignore (Cluster.gc_round c);
    Bmx_netsim.Net.clear_faults (Cluster.net c);
    (* Occasionally reclaim from-space and run a group collection. *)
    if epoch mod 4 = 0 then begin
      List.iter
        (fun bunch ->
          List.iter
            (fun node -> ignore (Cluster.reclaim_from_space c ~node ~bunch))
            (Protocol.bunch_replica_nodes (Cluster.proto c) bunch))
        (Protocol.bunches (Cluster.proto c));
      List.iter (fun n -> ignore (Cluster.ggc c ~node:n)) (Cluster.nodes c);
      ignore (Cluster.drain c)
    end;
    match Bmx.Audit.check_safety c with
    | Ok () -> ()
    | Error m -> Alcotest.failf "epoch %d: %s" epoch m
  done;
  ignore (Cluster.collect_until_quiescent c ~max_rounds:30 ());
  check_bool "final safety" true (Result.is_ok (Bmx.Audit.check_safety c));
  check_int "collector never acquired a token across the soak" 0
    (Stats.get (Cluster.stats c) "dsm.gc.acquire_read"
    + Stats.get (Cluster.stats c) "dsm.gc.acquire_write");
  assert_lint c

let () =
  Alcotest.run "integration"
    [
      ( "distributed collection",
        [
          Alcotest.test_case "acyclic cross-node chain" `Quick
            test_distributed_acyclic_collection;
          Alcotest.test_case "full lifecycle with from-space reuse" `Quick
            test_full_lifecycle_with_reclaim;
          Alcotest.test_case "copy-set modes agree" `Quick test_modes_agree_on_reachability;
          Alcotest.test_case "six nodes, eight bunches" `Slow test_many_nodes_many_bunches;
          Alcotest.test_case "GGC after workload" `Quick test_ggc_after_workload;
        ] );
      ( "persistence",
        [ Alcotest.test_case "bunch survives crash via RVM" `Quick test_persistence_through_rvm ]
      );
      ( "soak",
        [
          Alcotest.test_case "12 epochs: mutation, loss windows, reclaim, GGC" `Slow
            test_soak;
        ] );
    ]
