lib/memory/segment.mli: Bmx_util Format
