test/test_cleaner.mli:
