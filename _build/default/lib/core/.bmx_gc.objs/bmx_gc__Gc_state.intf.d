lib/core/gc_state.mli: Bmx_dsm Bmx_util Format Ssp
