open Bmx_util

type key = string * Ids.Node.t option

type cell =
  | C_counter of int ref
  | C_gauge of int ref
  | C_gauge_fn of (unit -> int) ref
  | C_histo of Stats.Summary.t

type t = {
  cells : (key, cell) Hashtbl.t;
  (* Bumped whenever a new cell is registered; the periodic sampler
     caches direct refs to the cells and uses this to notice when its
     cache went stale, so steady-state sampling never rebuilds lists. *)
  mutable generation : int;
  (* Live histogram-sample observer (the timeseries layer): called once
     per [observe] so windowed reservoirs see raw samples at the right
     virtual time, which a summary snapshot could never recover. *)
  mutable observer : (string -> Ids.Node.t option -> float -> unit) option;
}

let create () = { cells = Hashtbl.create 64; generation = 0; observer = None }
let generation t = t.generation
let set_observer t f = t.observer <- f

let add_cell t key cell =
  t.generation <- t.generation + 1;
  Hashtbl.add t.cells key cell

let wrong_kind name what =
  invalid_arg (Printf.sprintf "Metrics: %S already registered as a %s" name what)

let incr t ?node ?(by = 1) name =
  let key = (name, node) in
  match Hashtbl.find_opt t.cells key with
  | Some (C_counter r) -> r := !r + by
  | Some _ -> wrong_kind name "non-counter"
  | None -> add_cell t key (C_counter (ref by))

let set_gauge t ?node name v =
  let key = (name, node) in
  match Hashtbl.find_opt t.cells key with
  | Some (C_gauge r) -> r := v
  | Some _ -> wrong_kind name "non-gauge"
  | None -> add_cell t key (C_gauge (ref v))

let gauge_fn t ?node name f =
  let key = (name, node) in
  match Hashtbl.find_opt t.cells key with
  | Some (C_gauge_fn r) -> r := f
  | Some _ -> wrong_kind name "non-gauge"
  | None -> add_cell t key (C_gauge_fn (ref f))

let observe t ?node name x =
  let key = (name, node) in
  (match Hashtbl.find_opt t.cells key with
  | Some (C_histo s) -> Stats.Summary.add s x
  | Some _ -> wrong_kind name "non-histogram"
  | None ->
      let s = Stats.Summary.create ~seed:(Hashtbl.hash key) () in
      Stats.Summary.add s x;
      add_cell t key (C_histo s));
  match t.observer with None -> () | Some f -> f name node x

(* ------------------------------------------------- sampling sources *)

type source =
  | S_counter of int ref
  | S_gauge of int ref
  | S_gauge_fn of (unit -> int) ref

let sources t =
  Hashtbl.fold
    (fun key cell acc ->
      match cell with
      | C_counter r -> (key, S_counter r) :: acc
      | C_gauge r -> (key, S_gauge r) :: acc
      | C_gauge_fn f -> (key, S_gauge_fn f) :: acc
      | C_histo _ -> acc)
    t.cells []

(* ---------------------------------------------------------- snapshots *)

type summary = {
  s_count : int;
  s_min : float;
  s_max : float;
  s_mean : float;
  s_p50 : float;
  s_p90 : float;
  s_p99 : float;
}

type value =
  | Counter of int
  | Gauge of int
  | Histogram of summary

type snapshot = (key * value) list

let summarize s =
  {
    s_count = Stats.Summary.n s;
    s_min = Stats.Summary.min s;
    s_max = Stats.Summary.max s;
    s_mean = Stats.Summary.mean s;
    s_p50 = Stats.Summary.percentile s 50.;
    s_p90 = Stats.Summary.percentile s 90.;
    s_p99 = Stats.Summary.percentile s 99.;
  }

let compare_key (na, la) (nb, lb) =
  match String.compare na nb with
  | 0 -> (
      match (la, lb) with
      | None, None -> 0
      | None, Some _ -> -1
      | Some _, None -> 1
      | Some a, Some b -> Ids.Node.compare a b)
  | c -> c

let snapshot t : snapshot =
  Hashtbl.fold
    (fun key cell acc ->
      let v =
        match cell with
        | C_counter r -> Counter !r
        | C_gauge r -> Gauge !r
        | C_gauge_fn f -> Gauge (try !f () with _ -> 0)
        | C_histo s -> Histogram (summarize s)
      in
      (key, v) :: acc)
    t.cells []
  |> List.sort (fun (a, _) (b, _) -> compare_key a b)

let get snap ?node name =
  List.assoc_opt (name, node) snap

let counter_total snap name =
  List.fold_left
    (fun acc ((n, _), v) ->
      match v with Counter c when String.equal n name -> acc + c | _ -> acc)
    0 snap

let diff ~before ~after : snapshot =
  List.map
    (fun (key, v) ->
      match v with
      | Counter a ->
          let b =
            match List.assoc_opt key before with Some (Counter b) -> b | _ -> 0
          in
          (key, Counter (a - b))
      | Gauge _ | Histogram _ -> (key, v))
    after

(* ------------------------------------------------------------- export *)

let key_label (name, node) =
  match node with
  | None -> name
  | Some n -> Printf.sprintf "%s{node=%d}" name n

let to_text snap =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (key, v) ->
      let label = key_label key in
      (match v with
      | Counter c -> Buffer.add_string buf (Printf.sprintf "%-44s %d" label c)
      | Gauge g -> Buffer.add_string buf (Printf.sprintf "%-44s %d (gauge)" label g)
      | Histogram s ->
          Buffer.add_string buf
            (Printf.sprintf
               "%-44s n=%d min=%.0f p50=%.0f p90=%.0f p99=%.0f max=%.0f mean=%.1f"
               label s.s_count s.s_min s.s_p50 s.s_p90 s.s_p99 s.s_max s.s_mean));
      Buffer.add_char buf '\n')
    snap;
  Buffer.contents buf

let to_json snap =
  let entry ((name, node), v) =
    let base = [ ("name", Json.String name) ] in
    let base =
      match node with
      | None -> base
      | Some n -> base @ [ ("node", Json.Int n) ]
    in
    let rest =
      match v with
      | Counter c -> [ ("kind", Json.String "counter"); ("value", Json.Int c) ]
      | Gauge g -> [ ("kind", Json.String "gauge"); ("value", Json.Int g) ]
      | Histogram s ->
          [
            ("kind", Json.String "histogram");
            ("count", Json.Int s.s_count);
            ("min", Json.Float s.s_min);
            ("max", Json.Float s.s_max);
            ("mean", Json.Float s.s_mean);
            ("p50", Json.Float s.s_p50);
            ("p90", Json.Float s.s_p90);
            ("p99", Json.Float s.s_p99);
          ]
    in
    Json.Obj (base @ rest)
  in
  Json.List (List.map entry snap)
