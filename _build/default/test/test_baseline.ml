(* The comparator collectors: they must exhibit exactly the pathologies
   the paper's design avoids. *)

open Bmx_util
module Cluster = Bmx.Cluster
module Value = Bmx_memory.Value
module Graphgen = Bmx_workload.Graphgen
module Locking_gc = Bmx_baseline.Locking_gc
module Refcount = Bmx_baseline.Refcount

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let replicated_heap () =
  let c = Cluster.create ~nodes:3 () in
  let b = Cluster.new_bunch c ~home:0 in
  let head = Graphgen.binary_tree c ~node:0 ~bunch:b ~depth:3 in
  Cluster.add_root c ~node:0 head;
  (* Give N1 and N2 read replicas of the root (working set). *)
  List.iter
    (fun n ->
      let h = Cluster.acquire_read c ~node:n head in
      Cluster.release c ~node:n h)
    [ 1; 2 ];
  (c, b, head)

let test_locking_gc_acquires_tokens () =
  let c, b, _ = replicated_heap () in
  let r = Locking_gc.run (Cluster.gc c) ~node:0 ~bunch:b in
  check_bool "collector token traffic" true
    (Stats.get (Cluster.stats c) "dsm.gc.acquire_write" > 0);
  check_bool "still collects correctly" true (r.Bmx_gc.Collect.r_live > 0);
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c))

let test_locking_gc_invalidates_readers () =
  let c, b, head = replicated_heap () in
  let _ = Locking_gc.run (Cluster.gc c) ~node:0 ~bunch:b in
  check_bool "reader copies invalidated by the collector" true
    (Stats.get (Cluster.stats c) "dsm.gc.invalidations" > 0);
  (* The mutator at N1 must re-fetch: its working set was destroyed. *)
  let proto = Cluster.proto c in
  let uid = Cluster.uid_at c ~node:0 head in
  (match Bmx_dsm.Directory.find (Bmx_dsm.Protocol.directory proto 1) uid with
  | Some rec1 ->
      check_bool "N1's copy invalid" true
        (rec1.Bmx_dsm.Directory.state = Bmx_dsm.Directory.Invalid)
  | None -> ())

let test_locking_gc_copies_everything () =
  (* Unlike the BGC, the locking collector moves every live object,
     having first stolen ownership of all of them. *)
  let c, b, _ = replicated_heap () in
  let r1 = Locking_gc.run (Cluster.gc c) ~node:1 ~bunch:b in
  check_int "all live objects copied at the collecting node"
    r1.Bmx_gc.Collect.r_live r1.Bmx_gc.Collect.r_copied

let test_bgc_vs_locking_interference () =
  (* The headline comparison (E5): same heap, same collection work —
     the paper's collector generates zero collector-attributed DSM
     traffic, the baseline does not. *)
  let run collector =
    let c, b, _ = replicated_heap () in
    (match collector with
    | `Bgc -> ignore (Cluster.bgc c ~node:0 ~bunch:b)
    | `Locking -> ignore (Locking_gc.run (Cluster.gc c) ~node:0 ~bunch:b));
    Stats.get (Cluster.stats c) "dsm.gc.acquire_write"
    + Stats.get (Cluster.stats c) "dsm.gc.acquire_read"
    + Stats.get (Cluster.stats c) "dsm.gc.invalidations"
  in
  check_int "BGC: zero interference" 0 (run `Bgc);
  check_bool "locking baseline: interference" true (run `Locking > 0)

let test_msweep_reclaims_without_moving () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let live = Graphgen.linked_list c ~node:0 ~bunch:b ~len:5 in
  let _dead = Graphgen.linked_list c ~node:0 ~bunch:b ~len:4 in
  Cluster.add_root c ~node:0 live;
  let r = Bmx_baseline.Msweep_gc.run (Cluster.gc c) ~node:0 ~bunch:b in
  check_int "dead swept" 4 r.Bmx_gc.Collect.r_reclaimed;
  check_int "nothing moved" 0 r.Bmx_gc.Collect.r_copied;
  (* The live list is still at its original addresses. *)
  check_bool "unmoved" true
    (Bmx_memory.Store.current_addr
       (Bmx_dsm.Protocol.store (Cluster.proto c) 0)
       live
    = live);
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c))

let test_msweep_acquires_tokens () =
  let c, b, _ = replicated_heap () in
  let _ = Bmx_baseline.Msweep_gc.run (Cluster.gc c) ~node:1 ~bunch:b in
  check_bool "strongly consistent marking costs tokens" true
    (Stats.get (Cluster.stats c) "dsm.gc.acquire_read" > 0)

let test_msweep_never_frees_segments () =
  (* Repeated churn + mark&sweep keeps consuming address space; the
     copying collector with from-space reuse does not (the §1 claim). *)
  let footprint collector =
    let c = Cluster.create ~nodes:1 () in
    let b = Cluster.new_bunch c ~home:0 in
    let anchor = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 0 |] in
    Cluster.add_root c ~node:0 anchor;
    for _ = 1 to 6 do
      let _junk = Graphgen.linked_list c ~node:0 ~bunch:b ~len:3000 in
      (match collector with
      | `Copying ->
          ignore (Cluster.bgc c ~node:0 ~bunch:b);
          ignore (Cluster.reclaim_from_space c ~node:0 ~bunch:b)
      | `Msweep -> ignore (Bmx_baseline.Msweep_gc.run (Cluster.gc c) ~node:0 ~bunch:b));
      ignore (Cluster.drain c)
    done;
    (* Footprint = bytes of segments still holding data (not Free). *)
    List.fold_left
      (fun acc seg ->
        if seg.Bmx_memory.Segment.role = Bmx_memory.Segment.Free then acc
        else acc + Addr.Range.size seg.Bmx_memory.Segment.range)
      0
      (Bmx_memory.Store.segments_of_bunch
         (Bmx_dsm.Protocol.store (Cluster.proto c) 0)
         b)
  in
  check_bool "copying keeps the footprint smaller" true
    (footprint `Copying < footprint `Msweep)

let test_refcount_acyclic_ok () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let live = Graphgen.linked_list c ~node:0 ~bunch:b ~len:5 in
  let _dead = Graphgen.linked_list c ~node:0 ~bunch:b ~len:4 in
  Cluster.add_root c ~node:0 live;
  let o = Refcount.analyze c () in
  check_int "acyclic garbage reclaimed" 4 o.Refcount.rc_reclaimed;
  check_int "no premature frees" 0 o.Refcount.rc_premature;
  check_int "no leaks" 0 o.Refcount.rc_leaked;
  check_bool "messages were needed" true (o.Refcount.rc_messages > 0)

let test_refcount_cannot_collect_cycles () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let _ring = Graphgen.ring c ~node:0 ~bunch:b ~len:6 in
  let o = Refcount.analyze c () in
  check_int "cycle uncollectable by counting" 6 o.Refcount.rc_cycle_garbage;
  check_int "nothing reclaimed" 0 o.Refcount.rc_reclaimed;
  (* The paper's collector reclaims the same cycle in one local BGC. *)
  let r = Cluster.bgc c ~node:0 ~bunch:b in
  check_int "BGC reclaims the cycle" 6 r.Bmx_gc.Collect.r_reclaimed

let test_refcount_loss_leaks () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let _dead = Graphgen.linked_list c ~node:0 ~bunch:b ~len:50 in
  let rng = Rng.make 5 in
  let o = Refcount.analyze c ~loss_prob:0.3 ~rng () in
  check_bool "lost decrements leak garbage" true (o.Refcount.rc_leaked > 0);
  check_int "perfect-channel cycles unaffected" 0 o.Refcount.rc_cycle_garbage

let test_refcount_duplication_frees_live_objects () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  (* A live chain hanging off a dead head: duplicated decrements from the
     dead head's teardown can free the live tail. *)
  let live = Graphgen.linked_list c ~node:0 ~bunch:b ~len:10 in
  Cluster.add_root c ~node:0 live;
  let _dead_head = Cluster.alloc c ~node:0 ~bunch:b [| Value.Ref live |] in
  let rng = Rng.make 11 in
  let o = Refcount.analyze c ~dup_prob:1.0 ~rng () in
  check_bool "duplicated decrements free live objects" true
    (o.Refcount.rc_premature > 0)

let () =
  Alcotest.run "baseline"
    [
      ( "locking collector",
        [
          Alcotest.test_case "acquires tokens" `Quick test_locking_gc_acquires_tokens;
          Alcotest.test_case "invalidates readers" `Quick
            test_locking_gc_invalidates_readers;
          Alcotest.test_case "copies everything" `Quick test_locking_gc_copies_everything;
          Alcotest.test_case "interference comparison (E5)" `Quick
            test_bgc_vs_locking_interference;
        ] );
      ( "mark and sweep",
        [
          Alcotest.test_case "reclaims without moving" `Quick
            test_msweep_reclaims_without_moving;
          Alcotest.test_case "marking acquires tokens" `Quick test_msweep_acquires_tokens;
          Alcotest.test_case "never frees segments (fragmentation)" `Quick
            test_msweep_never_frees_segments;
        ] );
      ( "reference counting",
        [
          Alcotest.test_case "acyclic garbage ok" `Quick test_refcount_acyclic_ok;
          Alcotest.test_case "cycles never reclaimed (E9)" `Quick
            test_refcount_cannot_collect_cycles;
          Alcotest.test_case "loss leaks (E10)" `Quick test_refcount_loss_leaks;
          Alcotest.test_case "duplication frees live objects (E10)" `Quick
            test_refcount_duplication_frees_live_objects;
        ] );
    ]
