(** Lightweight recoverable virtual memory (after Satyanarayanan et al.,
    as used by BMX §2.1/§8).

    BMX bases recovery on RVM: once a bunch is mapped, every modification
    to the bunch's address range has an associated log entry and can be
    recovered after a system failure.  Like the original, this is a
    redo-log design with simple flat transactions — no nesting, no
    distribution, no concurrency control (§8).

    The model separates {e volatile} state (lost on [crash]) from {e
    stable} state (the simulated disk: checkpoint image + log).  A
    transaction buffers updates; [commit] appends them to the log followed
    by a commit record, atomically — recovery replays only
    commit-terminated log prefixes, so a crash mid-transaction is
    invisible.  [checkpoint] folds the log into the stable image and
    truncates it, exactly the RVM truncation mechanism.

    The store is polymorphic in the value type; BMX persists heap cells
    keyed by address (the from-space/to-space-as-files arrangement of
    O'Toole et al. that §8 adopts). *)

type 'v t

val create : copy:('v -> 'v) -> unit -> 'v t
(** [copy] must produce an independent duplicate of a value: values are
    copied on their way to the log and back, like bytes through a file. *)

(** {1 Transactions} *)

val begin_tx : 'v t -> unit
(** Raises [Failure] if a transaction is already open. *)

val in_tx : 'v t -> bool

val set : 'v t -> Bmx_util.Addr.t -> 'v -> unit
(** Buffer a write.  Raises [Failure] outside a transaction. *)

val delete : 'v t -> Bmx_util.Addr.t -> unit

val commit : 'v t -> unit
(** Apply the buffered updates to the volatile image and append them,
    with a commit record, to the stable log. *)

val abort : 'v t -> unit
(** Discard the buffered updates. *)

(** {1 Reading} *)

val get : 'v t -> Bmx_util.Addr.t -> 'v option
(** Read from the volatile image (uncommitted buffered writes of the open
    transaction are visible, as with mapped RVM regions). *)

val fold : 'v t -> init:'a -> f:(Bmx_util.Addr.t -> 'v -> 'a -> 'a) -> 'a
val cardinal : 'v t -> int

(** {1 Failure and recovery} *)

val crash : 'v t -> unit
(** Lose all volatile state, including any open transaction.  If a commit
    was in flight, its log tail may be torn (no commit record) and will be
    ignored by recovery. *)

val crash_mid_commit : 'v t -> unit
(** Like [crash], but taken exactly after the data records of the open
    transaction reached the log and before the commit record did — the
    worst-case torn write. *)

val recover : 'v t -> unit
(** Rebuild the volatile image from the stable checkpoint plus every
    committed log record.  Idempotent. *)

val checkpoint : 'v t -> unit
(** RVM truncation: fold the committed log into the stable image and
    clear the log.  Raises [Failure] inside a transaction. *)

val log_length : 'v t -> int
(** Number of records currently in the stable log (data + commit marks). *)
