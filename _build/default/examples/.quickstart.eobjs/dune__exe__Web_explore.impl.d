examples/web_explore.ml: Addr Array Bmx Bmx_gc Bmx_memory Bmx_util Bmx_workload Ids List Printf Rng
