(** Structured protocol/GC event trace for mechanical verification.

    Unlike {!Tracelog} (free-form strings for humans), this log records
    {e typed} events that the offline linter ([Bmx_check.Lint]) can
    replay against the protocol state machine: token acquisitions with
    their acting subsystem, grant messages with their piggybacked
    location-update counts, the §5 invariant hook firings, copy-set
    forwards, GC phase boundaries, and every network message with its
    per-pair sequence number.

    The log is an append-only buffer owned by the protocol instance and
    shared with the network simulator and the collector; it is disabled
    by default (recording costs one list cons per event when on).  Events
    serialize to a stable one-line text format so traces can be saved and
    linted offline ([bmxctl check --trace FILE]). *)

(** Which subsystem performed a token operation.  The paper's central
    claim (§5) is that [Gc] never appears in an acquisition event. *)
type actor = App | Gc

type tok = Read | Write

type t =
  | Acquire_start of {
      actor : actor;
      node : Ids.Node.t;
      uid : Ids.Uid.t;
      tok : tok;
    }  (** a node entered the token-acquire path for an object *)
  | Acquire_done of {
      actor : actor;
      node : Ids.Node.t;
      uid : Ids.Uid.t;
      tok : tok;
      addr_valid : bool;
          (** §5 invariant 1: the acquiring node resolved a valid local
              address for the object at completion time *)
    }
  | Release of { node : Ids.Node.t; uid : Ids.Uid.t }
  | Grant_sent of {
      granter : Ids.Node.t;
      requester : Ids.Node.t;
      uid : Ids.Uid.t;
      tok : tok;
      updates : int;  (** piggybacked location updates (§4.4) *)
    }
  | Hook_ssp of {
      granter : Ids.Node.t;
      requester : Ids.Node.t;
      uid : Ids.Uid.t;
    }  (** §5 invariant 3: the before-write-grant hook ran *)
  | Invalidate of { src : Ids.Node.t; dst : Ids.Node.t; uid : Ids.Uid.t }
  | Updates_applied of { node : Ids.Node.t; uids : Ids.Uid.t list }
      (** a batch of location updates was processed at [node] *)
  | Forward_due of {
      node : Ids.Node.t;
      uid : Ids.Uid.t;
      peers : Ids.Node.t list;
    }  (** §5 invariant 2: fresh location info must reach these copy-set
           members *)
  | Copyset_forward of { src : Ids.Node.t; dst : Ids.Node.t; uid : Ids.Uid.t }
  | Gc_begin of { node : Ids.Node.t; group : bool; bunches : Ids.Bunch.t list }
  | Gc_end of { node : Ids.Node.t; group : bool; live : int; reclaimed : int }
  | Msg_sent of {
      src : Ids.Node.t;
      dst : Ids.Node.t;
      kind : string;
      seq : int;
      rel : bool;  (** sent on a reliable (acked, retransmitted) channel *)
    }  (** a background message was enqueued (recorded once, at the
           original send — retransmissions get {!Msg_retransmit}) *)
  | Msg_delivered of {
      src : Ids.Node.t;
      dst : Ids.Node.t;
      kind : string;
      seq : int;
      rel : bool;
    }  (** a background message was handed to its handler.  Reliable
           deliveries carry the {e original} sequence number and are
           handed off exactly once, in send order; unreliable ones may
           repeat (duplicate) or leave gaps (loss). *)
  | Msg_retransmit of {
      src : Ids.Node.t;
      dst : Ids.Node.t;
      kind : string;
      seq : int;
      attempt : int;  (** total transmissions so far, >= 2 *)
    }  (** the reliable layer re-sent an unacknowledged message *)
  | Msg_suppressed of {
      src : Ids.Node.t;
      dst : Ids.Node.t;
      kind : string;
      seq : int;
    }  (** receiver-side duplicate suppression swallowed a copy *)
  | Msg_buffered of {
      src : Ids.Node.t;
      dst : Ids.Node.t;
      kind : string;
      seq : int;
    }  (** a reliable message arrived ahead of a gap and was buffered *)
  | Rpc of { src : Ids.Node.t; dst : Ids.Node.t; kind : string; seq : int }
      (** a synchronous request/reply executed inline by the caller; it
          shares the per-pair sequence counter with background messages
          but is exempt from their FIFO — it logically overtakes anything
          still queued *)
  | Crash of { node : Ids.Node.t }
      (** the node lost its volatile state (store, tokens, channels) *)
  | Restart of { node : Ids.Node.t }
      (** the node rejoined; recovery from the persistent image follows *)
  | Link_cut of { src : Ids.Node.t; dst : Ids.Node.t }
      (** the directed link src→dst was cut: transmissions on it
          blackhole (partition model, distinct from probabilistic loss) *)
  | Link_heal of { src : Ids.Node.t; dst : Ids.Node.t }
      (** the directed link src→dst was restored *)
  | Suspect of { src : Ids.Node.t; dst : Ids.Node.t; on : bool }
      (** the reliable layer's failure detector changed its opinion of
          dst as seen from src: [on = true] enters the suspect state
          (retransmissions collapse to a single slow probe), [on = false]
          clears it (an ack got through) *)
  | Owner_adopted of { node : Ids.Node.t; uid : Ids.Uid.t }
      (** recovery re-seated ownership of [uid] at [node] (only legal
          when the recorded owner is genuinely gone, not merely
          unreachable — the split-brain lint checks this) *)
  | Tables_processed of {
      at : Ids.Node.t;
      sender : Ids.Node.t;
      bunch : Ids.Bunch.t;
      seq : int;
    }
      (** the scion cleaner at [at] accepted and processed a reachability
          tables message — quarantined (dead or unreachable sender) and
          stale-seq messages are {e not} recorded, so the partition lint
          can flag any processing that should have been quarantined *)
  | Disk_fault of { node : Ids.Node.t; fault : string }
      (** a storage fault was injected into the node's RVM log
          ([flip_bits], [drop_record], [truncate_mid_record], ...) *)
  | Rvm_recover of { node : Ids.Node.t; dropped : int; lost : int }
      (** checksummed log recovery ran: [dropped] log records were behind
          the last verifiable commit prefix, losing the latest state of
          [lost] distinct addresses *)
  | Bunch_verified of { node : Ids.Node.t; missing : int }
      (** the fsck-style post-restore verification ran; [missing] objects
          present on the checksummed disk image failed to make it into
          the restored store *)
  | Shard_alloc of { shard : int; node : Ids.Node.t }
      (** a segment range was carved from registry shard [shard], applied
          by [node] — which must be the shard's owner; the
          [Shard_ownership] lint flags any other applier *)
  | Shard_adopted of { shard : int; node : Ids.Node.t }
      (** registry shard [shard]'s ownership was (re-)established at
          [node]: initial placement, post-restart recovery, or
          split-brain-checked adoption by a survivor *)
  | Read_obs of {
      actor : actor;
      node : Ids.Node.t;
      uid : Ids.Uid.t;
      version : int;  (** object version observed by the read *)
      covered : bool;
          (** the reader held a valid token (directory state was not
              [Invalid]) — [false] only for explicit [~weak] reads *)
    }  (** a field read at access level, for the happens-before
           certifier's read-mapping check ([Bmx_check.Races]) *)
  | Write_obs of {
      actor : actor;
      node : Ids.Node.t;
      uid : Ids.Uid.t;
      version : int;  (** object version {e after} the write *)
      covered : bool;
    }  (** a field write at access level; semantic writes only — GC and
           protocol pointer fixups ([Heap_obj.fixup]) are not recorded *)
  | Gc_phase of { node : Ids.Node.t; phase : string; us : int }
      (** a collector phase (trace / flip / copy / scan /
          cleaner-reconcile) completed at [node], having consumed [us]
          wall-clock microseconds — the first-class replacement for the
          BMX_GC_PHASE_TIMING stderr hack.  GC-side for the
          happens-before certifier: erasure deletes it. *)

type log

val create_log : ?capacity:int -> unit -> log
(** Disabled by default.  [capacity] (default 1_000_000) bounds memory:
    past it, recording stops and {!overflowed} reports the truncation so
    the linter can refuse to certify an incomplete trace. *)

val enabled : log -> bool
val set_enabled : log -> bool -> unit

val set_clock : log -> (unit -> int) -> unit
(** Anchor event timestamps to a virtual clock (typically [Net.now]).
    The default clock is constantly 0, in which case timestamps are just
    the event's 1-based position in the log. *)

val quantum : int
(** Virtual µsteps per clock tick (1000).  {!record} stamps each event
    [max (previous + 1) (clock () * quantum)]: timestamps are strictly
    increasing, anchored to the clock, and the slack between ticks counts
    intervening events — a deterministic measure of protocol work. *)

val add_tap : log -> (int -> t -> unit) -> unit
(** Register a live observer called as [f ts event] for every event the
    log actually records (enabled, under capacity), after it is appended.
    Taps fire in registration order and cannot be removed — they are
    wired once per cluster.  The continuous-observability layer (the
    timeseries sampler and the flight recorder) attaches here. *)

val record : log -> t -> unit
val events : log -> t list
(** Oldest first. *)

val timed_events : log -> (int * t) list
(** Oldest first, with the µstep timestamp assigned at {!record} time. *)

val length : log -> int
val overflowed : log -> bool
val clear : log -> unit
(** Drop all events, reset the overflow flag and the timestamp cursor;
    leaves [enabled] and the clock alone. *)

(** {1 Serialization} — stable one-line format, [to_line] ∘ [of_line] = id. *)

val to_line : t -> string
val of_line : string -> (t, string) result
val pp : Format.formatter -> t -> unit
