open Bmx_util

type 'v record = Set of Addr.t * 'v | Delete of Addr.t | Commit

type 'v t = {
  copy : 'v -> 'v;
  (* Volatile state. *)
  mutable image : (Addr.t, 'v) Hashtbl.t;
  mutable tx : 'v record list option; (* buffered records, reversed *)
  (* Stable state (the simulated disk). *)
  stable_image : (Addr.t, 'v) Hashtbl.t;
  mutable log : 'v record list; (* newest first *)
}

let create ~copy () =
  {
    copy;
    image = Hashtbl.create 64;
    tx = None;
    stable_image = Hashtbl.create 64;
    log = [];
  }

let begin_tx t =
  match t.tx with
  | Some _ -> failwith "Rvm.begin_tx: transaction already open"
  | None -> t.tx <- Some []

let in_tx t = t.tx <> None

let buffered t =
  match t.tx with
  | Some records -> records
  | None -> failwith "Rvm: no open transaction"

let set t a v = t.tx <- Some (Set (a, t.copy v) :: buffered t)
let delete t a = t.tx <- Some (Delete a :: buffered t)

let apply_record image copy = function
  | Set (a, v) -> Hashtbl.replace image a (copy v)
  | Delete a -> Hashtbl.remove image a
  | Commit -> ()

let commit t =
  let records = List.rev (buffered t) in
  t.tx <- None;
  List.iter (apply_record t.image t.copy) records;
  (* The append of data records plus the commit mark is the atomic step:
     recovery only honours commit-terminated prefixes. *)
  t.log <- Commit :: List.rev_append records t.log

let abort t =
  ignore (buffered t);
  t.tx <- None

let get t a =
  (* Uncommitted buffered writes are visible, newest first. *)
  let rec in_buffer = function
    | [] -> None
    | Set (a', v) :: _ when Addr.equal a a' -> Some (Some (t.copy v))
    | Delete a' :: _ when Addr.equal a a' -> Some None
    | _ :: rest -> in_buffer rest
  in
  match t.tx with
  | Some records -> (
      match in_buffer records with
      | Some answer -> answer
      | None -> Option.map t.copy (Hashtbl.find_opt t.image a))
  | None -> Option.map t.copy (Hashtbl.find_opt t.image a)

let fold t ~init ~f = Hashtbl.fold (fun a v acc -> f a v acc) t.image init
let cardinal t = Hashtbl.length t.image

let crash t =
  t.image <- Hashtbl.create 64;
  t.tx <- None

let crash_mid_commit t =
  let records = List.rev (buffered t) in
  (* Data records reached the log; the commit mark did not. *)
  t.log <- List.rev_append records t.log;
  crash t

let committed_records t =
  (* Oldest-first records belonging to commit-terminated transactions. *)
  let oldest_first = List.rev t.log in
  (* [acc] and [pending] are newest-first; a trailing [pending] with no
     commit record is a torn tail and is dropped. *)
  let rec go acc pending = function
    | [] -> List.rev acc
    | Commit :: rest -> go (pending @ acc) [] rest
    | r :: rest -> go acc (r :: pending) rest
  in
  go [] [] oldest_first

let recover t =
  let image = Hashtbl.create 64 in
  Hashtbl.iter (fun a v -> Hashtbl.replace image a (t.copy v)) t.stable_image;
  List.iter (apply_record image t.copy) (committed_records t);
  t.image <- image;
  t.tx <- None

let checkpoint t =
  if in_tx t then failwith "Rvm.checkpoint: transaction open";
  List.iter (apply_record t.stable_image t.copy) (committed_records t);
  t.log <- []

let log_length t = List.length t.log
