(** The paper's figures as constructible cluster states.

    Each function builds, through the public mutator API only, the exact
    situation one of the paper's figures depicts, and returns the cluster
    plus the named objects so tests and the experiment harness can assert
    and print the tables the figure shows. *)

type fig1 = {
  f1_cluster : Bmx.Cluster.t;
  f1_n1 : Bmx_util.Ids.Node.t;
  f1_n2 : Bmx_util.Ids.Node.t;
  f1_n3 : Bmx_util.Ids.Node.t;
  f1_b1 : Bmx_util.Ids.Bunch.t;
  f1_b2 : Bmx_util.Ids.Bunch.t;
  f1_o1 : Bmx_util.Addr.t;  (** reachable from the local root at N1 *)
  f1_o2 : Bmx_util.Addr.t;  (** o1 -> o2 -> o3, all in B1 *)
  f1_o3 : Bmx_util.Addr.t;  (** owned by N1 after transfer from N2 *)
  f1_o5 : Bmx_util.Addr.t;  (** in B2 on N3; target of the inter-bunch ref *)
}

val figure1 : ?mode:Bmx_dsm.Protocol.mode -> unit -> fig1
(** Figure 1: bunch B1 mapped on N1 and N2, B2 only on N3; the
    inter-bunch reference o3→o5 was created at N2 (stub at N2, scion at
    N3 via a scion-message); o3's write token then moved to N1, creating
    the intra-bunch SSP stub\@N1 → scion\@N2.  The local root at N1
    reaches o1 → o2 → o3.  Background messages are drained. *)

type fig3_case = Case_a | Case_b | Case_c | Case_d

type fig3 = {
  f3_cluster : Bmx.Cluster.t;
  f3_n1 : Bmx_util.Ids.Node.t;
  f3_n2 : Bmx_util.Ids.Node.t;
  f3_bunch : Bmx_util.Ids.Bunch.t;
  f3_o1 : Bmx_util.Addr.t;  (** as known at N2 before the acquire *)
  f3_o2 : Bmx_util.Addr.t;  (** as known at N2 before the acquire *)
  f3_o1_uid : Bmx_util.Ids.Uid.t;
  f3_o2_uid : Bmx_util.Ids.Uid.t;
}

val figure3 : case:fig3_case -> fig3
(** Figure 3: o1 → o2, both cached on N1 and N2; N1 owns o1, and o2's
    owner depends on the case.  [Case_a]: no BGC anywhere.  [Case_b]: BGC
    at N1 copied o1 and o2 (N1 owns both).  [Case_c]: BGC at N1 copied o1
    only (o2 is owned — and has been moved — at N2 as well).  [Case_d]:
    BGC at N2 copied o2 (owned there); N1 untouched.  The returned state
    is ready for the write-token acquire of o1 by N2 that §5 walks
    through. *)

type fig4 = {
  f4_cluster : Bmx.Cluster.t;
  f4_n1 : Bmx_util.Ids.Node.t;  (** holds the only mutator root to o1 *)
  f4_n2 : Bmx_util.Ids.Node.t;  (** current owner of o1 *)
  f4_n3 : Bmx_util.Ids.Node.t;  (** old owner, holds the inter-bunch stub *)
  f4_bunch : Bmx_util.Ids.Bunch.t;
  f4_target_bunch : Bmx_util.Ids.Bunch.t;
  f4_o1 : Bmx_util.Addr.t;
  f4_o1_uid : Bmx_util.Ids.Uid.t;
  f4_target_uid : Bmx_util.Ids.Uid.t;
      (** the object in the other bunch that o1's inter-bunch reference,
          created at N3, keeps alive *)
}

val figure4 : unit -> fig4
(** Figure 4 / §6.2: o1 cached on N1, N2 and N3; owner N2; intra-bunch SSP
    stub\@N2 → scion\@N3 (N3 created an inter-bunch reference from o1 when
    it owned it); the single mutator root is at N1. *)
