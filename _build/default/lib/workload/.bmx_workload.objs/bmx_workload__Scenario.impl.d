lib/workload/scenario.ml: Addr Bmx Bmx_memory Bmx_util Ids
