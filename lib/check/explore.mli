(** Bounded exhaustive schedule explorer — a small-scope model checker
    for the GC/DSM cooperation.

    A scenario is a deterministic builder that sets up a cluster, runs
    mutator/collector operations, and leaves background messages
    pending.  The explorer then enumerates every legal delivery order of
    those messages (legal = any interleaving that preserves the per-pair
    FIFO of §6.1, via {!Bmx_netsim.Net.step_pair}), optionally
    interleaving node-local steps (e.g. "run the owner's BGC now") at
    any point.  Each complete schedule replays the scenario from scratch
    — the simulator is deterministic — drains the network, and runs the
    trace linter plus the caller's safety check.

    The enumeration is exhaustive up to [depth] choice points; deeper
    schedules fall back to FIFO delivery for the remainder, so the
    explorer always terminates and every run ends in a fully drained,
    checkable state. *)

type choice =
  | Deliver of Bmx_util.Ids.Node.t * Bmx_util.Ids.Node.t
      (** deliver the oldest pending message of the (src, dst) pair *)
  | Local of int  (** run the [i]-th local step of the scenario *)

val choice_to_string : choice -> string

type report = {
  schedules : int;  (** complete schedules executed and checked *)
  truncated : bool;  (** hit [max_schedules] before exhausting the space *)
  violations : (choice list * string) list;
      (** failing schedule prefixes with the violation message *)
}

val pp_report : Format.formatter -> report -> unit

val run :
  ?depth:int ->
  ?max_schedules:int ->
  build:(unit -> Bmx.Cluster.t) ->
  ?locals:(Bmx.Cluster.t -> unit) list ->
  ?finish:(Bmx.Cluster.t -> unit) ->
  ?check:(Bmx.Cluster.t -> (unit, string) result) ->
  unit ->
  report
(** [run ~build ()] explores delivery schedules of the scenario.
    [depth] (default 8) bounds the exhaustively explored choice points;
    [max_schedules] (default 2000) caps the total schedules.  [locals]
    are node-local steps each schedulable (at most once, at any
    position) alongside deliveries.  [finish] (default: nothing) runs at
    every leaf after the unused locals and before the final settle — a
    crash scenario uses it to guarantee recovery happens on schedules
    that never placed the recovery local.  [check] (default:
    cluster-wide safety + token-discipline audit) runs on every settled
    final state; the trace linter always runs.  [build] must be
    deterministic and should create the cluster with
    [~trace_events:true] so the linter sees the whole history. *)

val default_check : Bmx.Cluster.t -> (unit, string) result
(** {!Bmx.Audit.check_safety} then {!Bmx.Audit.check_tokens}. *)

(** A named scenario for [bmxctl explore]. *)
type scenario = {
  sc_name : string;
  sc_desc : string;
  sc_build : unit -> Bmx.Cluster.t;
  sc_locals : (Bmx.Cluster.t -> unit) list;
  sc_finish : Bmx.Cluster.t -> unit;
}

val builtin_scenarios : scenario list
val find_scenario : string -> scenario option
