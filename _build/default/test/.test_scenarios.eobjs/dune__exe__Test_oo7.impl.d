test/test_oo7.ml: Alcotest Bmx Bmx_util Bmx_workload Result
