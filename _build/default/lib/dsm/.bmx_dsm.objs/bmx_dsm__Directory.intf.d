lib/dsm/directory.mli: Bmx_util Format
