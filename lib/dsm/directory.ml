open Bmx_util

type token_state = Invalid | Read | Write

let token_state_to_string = function
  | Invalid -> "i"
  | Read -> "r"
  | Write -> "w"

type record = {
  uid : Ids.Uid.t;
  mutable state : token_state;
  mutable held : bool;
  mutable is_owner : bool;
  mutable prob_owner : Ids.Node.t;
  mutable copyset : Ids.Node_set.t;
}

type t = {
  node : Ids.Node.t;
  records : record Ids.Uid_tbl.t;
  (* uid -> (origin node -> registration seq) *)
  entering : (Ids.Node.t, int) Hashtbl.t Ids.Uid_tbl.t;
  (* origin node -> uids with a live entering entry from it.  The scion
     cleaner reconciles one sender's entries per table message; without
     this index every table received would rescan the node's whole
     entering set — O(heap) per message at scale. *)
  entering_by_origin : (Ids.Node.t, unit Ids.Uid_tbl.t) Hashtbl.t;
  (* Memoized sorted [entering_uids] — the BGC root computation asks for
     it on every run; rebuilding costs O(E log E) only per mutation
     epoch, not per collection. *)
  mutable entering_uids_cache : Ids.Uid.t list option;
  (* Mutation epoch: bumped on every change that can alter a BGC's result
     — record creation/forgetting, ownership moves (via [touch], called
     by the protocol when it rewrites is_owner/prob_owner), and entering
     membership changes.  Token-state and copyset churn does not bump:
     the collector traces cached copies regardless of their consistency
     state.  Seq advances on an existing entering entry do not bump
     either — they only gate cleaner deletions, which happen at message
     receipt, not at collection time. *)
  mutable version : int;
}

let create ~node =
  {
    node;
    records = Ids.Uid_tbl.create 128;
    entering = Ids.Uid_tbl.create 32;
    entering_by_origin = Hashtbl.create 8;
    entering_uids_cache = None;
    version = 0;
  }

let mut_version t = t.version
let touch t = t.version <- t.version + 1

let node t = t.node
let find t uid = Ids.Uid_tbl.find_opt t.records uid

let ensure t ~uid ~prob_owner =
  match find t uid with
  | Some r -> r
  | None ->
      let r =
        {
          uid;
          state = Invalid;
          held = false;
          is_owner = false;
          prob_owner;
          copyset = Ids.Node_set.empty;
        }
      in
      touch t;
      Ids.Uid_tbl.add t.records uid r;
      r

let register_new_object t ~uid =
  let r =
    {
      uid;
      state = Write;
      held = false;
      is_owner = true;
      prob_owner = t.node;
      copyset = Ids.Node_set.empty;
    }
  in
  touch t;
  Ids.Uid_tbl.replace t.records uid r;
  r

let forget t uid =
  if Ids.Uid_tbl.mem t.records uid || Ids.Uid_tbl.mem t.entering uid then
    touch t;
  Ids.Uid_tbl.remove t.records uid;
  if Ids.Uid_tbl.mem t.entering uid then t.entering_uids_cache <- None;
  (match Ids.Uid_tbl.find_opt t.entering uid with
  | None -> ()
  | Some tbl ->
      Hashtbl.iter
        (fun from _ ->
          match Hashtbl.find_opt t.entering_by_origin from with
          | Some uids -> Ids.Uid_tbl.remove uids uid
          | None -> ())
        tbl);
  Ids.Uid_tbl.remove t.entering uid

let add_entering t ~seq ~uid ~from =
  if not (Ids.Node.equal from t.node) then begin
    let tbl =
      match Ids.Uid_tbl.find_opt t.entering uid with
      | Some tbl -> tbl
      | None ->
          let tbl = Hashtbl.create 4 in
          Ids.Uid_tbl.add t.entering uid tbl;
          t.entering_uids_cache <- None;
          tbl
    in
    let prev = Option.value ~default:(-1) (Hashtbl.find_opt tbl from) in
    if seq > prev then Hashtbl.replace tbl from seq;
    let uids =
      match Hashtbl.find_opt t.entering_by_origin from with
      | Some uids -> uids
      | None ->
          let uids = Ids.Uid_tbl.create 16 in
          Hashtbl.add t.entering_by_origin from uids;
          uids
    in
    if not (Ids.Uid_tbl.mem uids uid) then begin
      touch t;
      Ids.Uid_tbl.replace uids uid ()
    end
  end

let remove_entering t ~uid ~from =
  match Ids.Uid_tbl.find_opt t.entering uid with
  | None -> ()
  | Some tbl ->
      if Hashtbl.mem tbl from then touch t;
      Hashtbl.remove tbl from;
      if Hashtbl.length tbl = 0 then begin
        Ids.Uid_tbl.remove t.entering uid;
        t.entering_uids_cache <- None
      end;
      (match Hashtbl.find_opt t.entering_by_origin from with
      | Some uids -> Ids.Uid_tbl.remove uids uid
      | None -> ())

let entering t uid =
  match Ids.Uid_tbl.find_opt t.entering uid with
  | Some tbl -> Hashtbl.fold (fun n _ acc -> Ids.Node_set.add n acc) tbl Ids.Node_set.empty
  | None -> Ids.Node_set.empty

let entering_registration_seq t ~uid ~from =
  match Ids.Uid_tbl.find_opt t.entering uid with
  | Some tbl -> Option.value ~default:0 (Hashtbl.find_opt tbl from)
  | None -> 0

let is_entering_from t ~uid ~from =
  match Ids.Uid_tbl.find_opt t.entering uid with
  | Some tbl -> Hashtbl.mem tbl from
  | None -> false

let entering_uids_from t ~from =
  match Hashtbl.find_opt t.entering_by_origin from with
  | None -> []
  | Some uids ->
      Ids.Uid_tbl.fold (fun uid () acc -> uid :: acc) uids []
      |> List.sort Ids.Uid.compare

let entering_uids t =
  match t.entering_uids_cache with
  | Some uids -> uids
  | None ->
      let uids =
        Ids.Uid_tbl.fold
          (fun uid tbl acc -> if Hashtbl.length tbl = 0 then acc else uid :: acc)
          t.entering []
        |> List.sort Ids.Uid.compare
      in
      t.entering_uids_cache <- Some uids;
      uids

let iter t f = Ids.Uid_tbl.iter (fun _ r -> f r) t.records

let records t =
  Ids.Uid_tbl.fold (fun _ r acc -> r :: acc) t.records []
  |> List.sort (fun a b -> Ids.Uid.compare a.uid b.uid)

let pp_record ppf r =
  Format.fprintf ppf "@[<h>%a:%s%s%s->%a@]" Ids.Uid.pp r.uid
    (token_state_to_string r.state)
    (if r.is_owner then "o" else "")
    (if r.held then "!" else "")
    Ids.Node.pp r.prob_owner
