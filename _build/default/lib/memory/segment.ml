open Bmx_util

type role = Active | From_space | To_space | Free

type t = {
  range : Addr.Range.t;
  bunch : Ids.Bunch.t;
  mutable role : role;
  mutable alloc_ptr : Addr.t;
  object_map : Bitmap.t;
  ref_map : Bitmap.t;
}

let default_bytes = 16 * Addr.page_size

let make ~range ~bunch =
  {
    range;
    bunch;
    role = Active;
    alloc_ptr = range.Addr.Range.lo;
    object_map = Bitmap.create ~range;
    ref_map = Bitmap.create ~range;
  }

let bytes_free t = Addr.diff t.range.Addr.Range.hi t.alloc_ptr

let alloc t ~size =
  let size = Addr.align_up size in
  if size > bytes_free t then None
  else begin
    let a = t.alloc_ptr in
    t.alloc_ptr <- Addr.add a size;
    Bitmap.set t.object_map a;
    Some a
  end

let seal t = t.alloc_ptr <- t.range.Addr.Range.hi
let contains t a = Addr.Range.contains t.range a
let set_role t role = t.role <- role

let role_to_string = function
  | Active -> "active"
  | From_space -> "from"
  | To_space -> "to"
  | Free -> "free"

let note_pointer t a ~is_pointer =
  if is_pointer then Bitmap.set t.ref_map a else Bitmap.clear t.ref_map a

let clear_object t a = Bitmap.clear t.object_map a

let objects t =
  let acc = ref [] in
  Bitmap.iter_set t.object_map (fun a -> acc := a :: !acc);
  List.rev !acc

let reset t =
  t.role <- Free;
  t.alloc_ptr <- t.range.Addr.Range.lo;
  Bitmap.clear_all t.object_map;
  Bitmap.clear_all t.ref_map

let pp ppf t =
  Format.fprintf ppf "@[<h>seg %a %a %s objs=%d@]" Ids.Bunch.pp t.bunch
    Addr.Range.pp t.range (role_to_string t.role)
    (Bitmap.cardinal t.object_map)
