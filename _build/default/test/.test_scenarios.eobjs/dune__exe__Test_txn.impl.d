test/test_txn.ml: Alcotest Array Bmx Bmx_baseline Bmx_dsm Bmx_gc Bmx_memory Bmx_rvm Bmx_txn Bmx_util List QCheck QCheck_alcotest Random Result Stats
