open Bmx_util
module Protocol = Bmx_dsm.Protocol
module Store = Bmx_memory.Store
module Heap_obj = Bmx_memory.Heap_obj
module Rvm = Bmx_rvm.Rvm
module Directory = Bmx_dsm.Directory

type disk = (Addr.t * Heap_obj.image * Ids.Node.t list * bool) Rvm.t

let create_disk () =
  Rvm.create
    ~copy:(fun (a, im, claims, owned) -> (a, Heap_obj.image_copy im, claims, owned))
    ()

(* The GC protection metadata is itself recoverable data (§8): for each
   object the checkpoint records which remote nodes currently claim it —
   entering-ownerPtr registrations plus the stub-holding side of its
   scions.  Restore re-registers those claims, so the unprotected window
   between recovery and the claimants' next reachability rebroadcast
   cannot let a local collection reclaim an object a survivor still
   points at. *)
let claimants c ~node ~bunch =
  let proto = Cluster.proto c in
  let gc = Cluster.gc c in
  let dir = Protocol.directory proto node in
  let tbl = Ids.Uid_tbl.create 16 in
  let add uid n =
    if not (Ids.Node.equal n node) then
      let s =
        Option.value
          (Ids.Uid_tbl.find_opt tbl uid)
          ~default:Ids.Node_set.empty
      in
      Ids.Uid_tbl.replace tbl uid (Ids.Node_set.add n s)
  in
  List.iter
    (fun (s : Bmx_gc.Ssp.inter_scion) ->
      add s.Bmx_gc.Ssp.xs_target_uid s.Bmx_gc.Ssp.xs_src_node)
    (Bmx_gc.Gc_state.inter_scions gc ~node ~bunch);
  List.iter
    (fun (s : Bmx_gc.Ssp.intra_scion) ->
      add s.Bmx_gc.Ssp.xn_uid s.Bmx_gc.Ssp.xn_owner_side)
    (Bmx_gc.Gc_state.intra_scions gc ~node ~bunch);
  List.iter
    (fun uid ->
      Ids.Node_set.iter (fun n -> add uid n) (Directory.entering dir uid))
    (Directory.entering_uids dir);
  tbl

(* Objects of [bunch] reachable from the node's local roots, traced over
   the local replica (the same reachability the BGC computes).  With
   [gc_roots] the root set is widened to everything the BGC treats as a
   root (§4.3): remotely-referenced objects (scion targets, both kinds)
   and entering-ownerPtr registrations — so a checkpoint preserves
   exactly what a local collection would, not just the mutator-visible
   slice.  That is what a crashed node needs back: its copies may be the
   only surviving version of objects other nodes still point at. *)
let reachable_cells ?(gc_roots = false) c ~node ~bunch =
  let proto = Cluster.proto c in
  let store = Protocol.store proto node in
  let seen = Ids.Uid_tbl.create 64 in
  let out = ref [] in
  let rec visit addr =
    match Store.resolve store addr with
    | None -> ()
    | Some (a, obj) ->
        if not (Ids.Uid_tbl.mem seen obj.Heap_obj.uid) then begin
          Ids.Uid_tbl.add seen obj.Heap_obj.uid ();
          if Ids.Bunch.equal obj.Heap_obj.bunch bunch then out := (a, obj) :: !out;
          List.iter visit (Heap_obj.pointers obj)
        end
  in
  let roots =
    let mutator = Cluster.roots c ~node in
    if not gc_roots then mutator
    else
      let gc = Cluster.gc c in
      let dir = Protocol.directory proto node in
      let of_uid uid = Store.addr_of_uid store uid in
      mutator
      @ List.filter_map
          (fun (s : Bmx_gc.Ssp.inter_scion) -> of_uid s.Bmx_gc.Ssp.xs_target_uid)
          (Bmx_gc.Gc_state.inter_scions gc ~node ~bunch)
      @ List.filter_map
          (fun (s : Bmx_gc.Ssp.intra_scion) -> of_uid s.Bmx_gc.Ssp.xn_uid)
          (Bmx_gc.Gc_state.intra_scions gc ~node ~bunch)
      @ List.filter_map of_uid (Directory.entering_uids dir)
  in
  List.iter visit roots;
  !out

let checkpoint ?gc_roots c ~node ~bunch disk =
  let cells = reachable_cells ?gc_roots c ~node ~bunch in
  let claims = claimants c ~node ~bunch in
  let dir = Protocol.directory (Cluster.proto c) node in
  let keep = Hashtbl.create 64 in
  List.iter (fun (a, _) -> Hashtbl.replace keep a ()) cells;
  let stale =
    Rvm.fold disk ~init:[] ~f:(fun a _ acc ->
        if Hashtbl.mem keep a then acc else a :: acc)
  in
  Rvm.begin_tx disk;
  List.iter (Rvm.delete disk) stale;
  List.iter
    (fun (a, obj) ->
      let claim =
        match Ids.Uid_tbl.find_opt claims obj.Heap_obj.uid with
        | Some s -> Ids.Node_set.elements s
        | None -> []
      in
      (* Whether this node's copy is the authoritative one matters to
         whoever reads the image later: a recovered replica is stale
         data, a recovered owner copy is the object's true contents. *)
      let owned =
        match Directory.find dir obj.Heap_obj.uid with
        | Some r -> r.Directory.is_owner
        | None -> false
      in
      Rvm.set disk a (a, Heap_obj.to_image obj, claim, owned))
    cells;
  Rvm.commit disk;
  List.length cells

let restore c ~node disk =
  let proto = Cluster.proto c in
  let net = Protocol.net proto in
  let store = Protocol.store proto node in
  let dir = Protocol.directory proto node in
  Rvm.fold disk ~init:0 ~f:(fun _key (addr, im, claim, _owned) count ->
      let obj = Heap_obj.of_image ~heap:(Store.arena store) im in
      let uid = obj.Heap_obj.uid in
      Store.install store addr obj;
      (* If the object still has a live owner elsewhere (only this node's
         memory was lost), come back as an ordinary inconsistent replica;
         orphaned objects get this node as their owner. *)
      let owner_here =
        match Protocol.owner_of proto uid with
        | Some owner
          when (not (Ids.Node.equal owner node))
               && not (Bmx_netsim.Net.is_down net owner) ->
            ignore (Directory.ensure dir ~uid ~prob_owner:owner);
            (* Re-register this replica with the owner: an entering
               ownerPtr (protection) plus copyset membership (the
               restored copy must be invalidated like any other when a
               write token moves).  An owner on the far side of a
               network cut cannot be told synchronously — the
               registration rides the reliable scion-message channel
               instead and lands when the partition heals; until then
               the copy is a mere inconsistent replica and this node
               makes no claim the owner could not know about. *)
            let register () =
              Directory.add_entering
                (Protocol.directory proto owner)
                ~seq:
                  (Bmx_netsim.Net.current_seq net ~src:node ~dst:owner)
                ~uid ~from:node;
              match Directory.find (Protocol.directory proto owner) uid with
              | Some orec ->
                  let was = Ids.Node_set.cardinal orec.Directory.copyset in
                  orec.Directory.copyset <-
                    Ids.Node_set.add node orec.Directory.copyset;
                  Protocol.copyset_changed proto ~was
                    ~now:(Ids.Node_set.cardinal orec.Directory.copyset)
              | None -> ()
            in
            if Bmx_netsim.Net.reachable net node owner then register ()
            else begin
              Stats.incr (Cluster.stats c) "persist.deferred_registrations";
              Bmx_netsim.Net.send net ~src:node ~dst:owner
                ~kind:Bmx_netsim.Net.Scion_message ~bytes:24 (fun _seq ->
                  register ())
            end;
            false
        | Some _ | None -> (
            (* Orphaned (no recorded owner survives, or the recorded owner
               is down): the recovered copy is the best surviving version,
               so claim ownership through the protocol's recovery path.
               Adoption can still be refused when a {e surviving} replica
               sits on the far side of a partition (split-brain guard):
               come back as an unowned replica for now and let a
               post-heal recovery pass adopt. *)
            match Protocol.adopt_ownership proto ~node ~uid with
            | () -> true
            | exception Failure _ ->
                Stats.incr (Cluster.stats c) "persist.adopt_deferred_partition";
                ignore
                  (Directory.ensure dir ~uid
                     ~prob_owner:
                       (Option.value (Protocol.owner_of proto uid)
                          ~default:node));
                false)
      in
      (* Owner-side protection comes back with the data: every persisted
         remote claim is re-registered as an entering ownerPtr, stamped
         with the claimant pair's current sequence number so the cleaner's
         freshness check retires it on the claimant's next reachability
         broadcast.  A claimant that is itself down is registered all the
         same — dead-sender entries are quarantined, never dropped. *)
      if owner_here then
        List.iter
          (fun from ->
            if not (Ids.Node.equal from node) then
              Directory.add_entering dir
                ~seq:
                  (Bmx_netsim.Net.current_seq (Protocol.net proto) ~src:from
                     ~dst:node)
                ~uid ~from)
          claim;
      Protocol.register_copy_location proto ~uid ~addr;
      (* Local protection (stubs, scions, conservative registrations) is
         derivable from the recovered cells: replay the barrier over the
         restored pointer fields. *)
      Bmx_gc.Barrier.reassert_protection (Cluster.gc c) ~node addr;
      Cluster.add_root c ~node addr;
      count + 1)

let record_ev c e =
  let log = Protocol.evlog (Cluster.proto c) in
  if Trace_event.enabled log then Trace_event.record log e

let recover_node c ~node disks =
  if not (Cluster.node_alive c node) then
    invalid_arg "Persist.recover_node: restart the node first";
  List.fold_left
    (fun count disk ->
      let rep = Rvm.recover disk in
      if not (Rvm.clean_report rep) then begin
        Stats.incr (Cluster.stats c) ~by:rep.Rvm.r_dropped
          "rvm.records_dropped";
        Bmx_obs.Metrics.incr (Cluster.metrics c) ~node
          ~by:rep.Rvm.r_corrupt "rvm.corrupt_records_dropped"
      end;
      (* Recorded even for a clean report: the Checksum_recovery lint
         pairs every injected Disk_fault with a later Rvm_recover at the
         node, and a recovery that found nothing wrong is still the
         acknowledgement it is waiting for. *)
      record_ev c
        (Trace_event.Rvm_recover
           {
             node;
             dropped = rep.Rvm.r_dropped;
             lost = List.length rep.Rvm.r_lost;
           });
      count + restore c ~node disk)
    0 disks

(* fsck for a bunch: cross-check the stable image against the node's
   restored (or live) store.  Every persisted cell should be resolvable
   locally — a missing one means recovery lost data the checkpoint had
   promised durability for (e.g. an RVM log truncated past a corrupt
   record), and the caller should re-fetch it from a surviving replica
   before an audit counts it lost. *)
type fsck = { f_checked : int; f_missing : (Addr.t * Ids.Uid.t option) list }

let verify_bunch c ~node ~bunch disk =
  let proto = Cluster.proto c in
  let store = Protocol.store proto node in
  let checked = ref 0 and missing = ref [] in
  let seen = Hashtbl.create 16 in
  let miss addr uid =
    if not (Hashtbl.mem seen addr) then begin
      Hashtbl.replace seen addr ();
      missing := (addr, uid) :: !missing
    end
  in
  Rvm.fold disk ~init:() ~f:(fun _key (addr, im, _claims, _owned) () ->
      if Ids.Bunch.equal im.Heap_obj.im_bunch bunch then begin
        incr checked;
        if Store.addr_of_uid store im.Heap_obj.im_uid = None then
          miss addr (Some im.Heap_obj.im_uid)
      end);
  (* Cells recovery truncated out of the image entirely no longer appear
     in the fold above, but the recovery report still names their
     addresses: each is missing unless something (a re-fetch from a
     surviving replica, a later write-back) already put a copy back at
     this node.  A per-bunch disk only ever logged this bunch's cells,
     so no bunch filter is needed here. *)
  (match Rvm.last_recovery disk with
  | None -> ()
  | Some rep ->
      List.iter
        (fun addr ->
          incr checked;
          if Store.resolve store addr = None then
            miss addr (Protocol.uid_of_addr proto addr))
        rep.Rvm.r_lost);
  let missing = List.rev !missing in
  record_ev c (Trace_event.Bunch_verified { node; missing = List.length missing });
  { f_checked = !checked; f_missing = missing }

(* ------------------------------------------------------------------ *)
(* Registry shard journals.                                            *)
(*                                                                     *)
(* A shard's durable state is tiny and append-mostly: the carves it    *)
(* has handed out (the cursor is their maximum [hi]).  Each carve is   *)
(* one committed RVM transaction keyed by the range's low address, so  *)
(* the write-ahead image is exactly the shard's slice of the range     *)
(* index and recovery is a replay through [Registry.restore_entry].    *)
(* ------------------------------------------------------------------ *)

module Registry = Bmx_memory.Registry

type shard_disk = (Addr.t * Addr.t * Ids.Bunch.t * Ids.Node.t) Rvm.t

let create_shard_disk () : shard_disk = Rvm.create ~copy:(fun c -> c) ()

let journal_entry (disk : shard_disk) (e : Registry.entry) =
  let lo = e.Registry.range.Addr.Range.lo in
  Rvm.begin_tx disk;
  Rvm.set disk lo (lo, e.Registry.range.Addr.Range.hi, e.Registry.bunch, e.Registry.origin);
  Rvm.commit disk

let checkpoint_shard c ~shard (disk : shard_disk) =
  let reg = Protocol.registry (Cluster.proto c) in
  let entries = Registry.shard_entries reg shard in
  let keep = Hashtbl.create 16 in
  List.iter
    (fun (e : Registry.entry) -> Hashtbl.replace keep e.Registry.range.Addr.Range.lo ())
    entries;
  let stale =
    Rvm.fold disk ~init:[] ~f:(fun lo _ acc ->
        if Hashtbl.mem keep lo then acc else lo :: acc)
  in
  Rvm.begin_tx disk;
  List.iter (Rvm.delete disk) stale;
  List.iter
    (fun (e : Registry.entry) ->
      let lo = e.Registry.range.Addr.Range.lo in
      Rvm.set disk lo
        (lo, e.Registry.range.Addr.Range.hi, e.Registry.bunch, e.Registry.origin))
    entries;
  Rvm.commit disk;
  List.length entries

let attach_shard_journals c =
  let reg = Protocol.registry (Cluster.proto c) in
  let disks = Array.init (Registry.num_shards reg) (fun _ -> create_shard_disk ()) in
  (* Snapshot what is already carved, then journal every later carve as
     it happens. *)
  Array.iteri (fun s disk -> ignore (checkpoint_shard c ~shard:s disk)) disks;
  Registry.add_on_alloc reg (fun ~shard e -> journal_entry disks.(shard) e);
  disks

let recover_shard c ~shard ~node (disk : shard_disk) =
  let reg = Protocol.registry (Cluster.proto c) in
  let rep = Rvm.recover disk in
  if not (Rvm.clean_report rep) then begin
    Stats.incr (Cluster.stats c) ~by:rep.Rvm.r_dropped "rvm.records_dropped";
    Bmx_obs.Metrics.incr (Cluster.metrics c) ~node ~by:rep.Rvm.r_corrupt
      "rvm.corrupt_records_dropped"
  end;
  (* As in {!recover_node}: the Checksum_recovery lint pairs an injected
     Disk_fault with this acknowledgement even when nothing was wrong. *)
  record_ev c
    (Trace_event.Rvm_recover
       { node; dropped = rep.Rvm.r_dropped; lost = List.length rep.Rvm.r_lost });
  let installed =
    Rvm.fold disk ~init:0 ~f:(fun _lo (lo, hi, bunch, origin) count ->
        let e =
          {
            Registry.range = Addr.Range.make ~lo ~size:(hi - lo);
            bunch;
            origin;
          }
        in
        if Registry.restore_entry reg ~shard e then count + 1 else count)
  in
  (* Seat ownership and bring the allocation service back up through the
     cluster's adoption path, so the split-brain guard and the
     [Shard_adopted] trace both apply. *)
  Cluster.adopt_shard c ~shard ~node;
  installed

type shard_fsck = { s_checked : int; s_missing : Addr.t list }

let verify_shard c ~shard (disk : shard_disk) =
  let reg = Protocol.registry (Cluster.proto c) in
  let entries = Registry.shard_entries reg shard in
  let in_index = Hashtbl.create 16 in
  List.iter
    (fun (e : Registry.entry) ->
      Hashtbl.replace in_index e.Registry.range.Addr.Range.lo ())
    entries;
  let checked = ref 0 and missing = ref [] in
  let in_journal = Hashtbl.create 16 in
  Rvm.fold disk ~init:() ~f:(fun _key (lo, _hi, _bunch, _origin) () ->
      Hashtbl.replace in_journal lo ();
      incr checked;
      if not (Hashtbl.mem in_index lo) then missing := lo :: !missing);
  (* The index is an in-memory cache that survives service crashes, so a
     journal record lost to corruption never leaves a hole the process
     can feel — which is precisely why fsck must surface it: after a
     host loss the journal would have been the only copy. *)
  List.iter
    (fun (e : Registry.entry) ->
      let lo = e.Registry.range.Addr.Range.lo in
      incr checked;
      if not (Hashtbl.mem in_journal lo) then missing := lo :: !missing)
    entries;
  let missing = List.sort_uniq compare !missing in
  record_ev c
    (Trace_event.Bunch_verified { node = Registry.shard_owner reg shard;
                                  missing = List.length missing });
  { s_checked = !checked; s_missing = missing }

type fault = Flip_bits of int | Drop_record of int | Truncate_mid_record

let corrupt_disk c ~node disk fault =
  let name =
    match fault with
    | Flip_bits index ->
        Rvm.flip_bits disk ~index;
        Printf.sprintf "flip_bits:%d" index
    | Drop_record index ->
        Rvm.drop_record disk ~index;
        Printf.sprintf "drop_record:%d" index
    | Truncate_mid_record ->
        Rvm.truncate_mid_record disk;
        "truncate_mid_record"
  in
  Stats.incr (Cluster.stats c) "rvm.faults_injected";
  record_ev c (Trace_event.Disk_fault { node; fault = name })
