lib/bmx/cluster.ml: Addr Array Bmx_dsm Bmx_gc Bmx_memory Bmx_netsim Bmx_util List Rng Stats
