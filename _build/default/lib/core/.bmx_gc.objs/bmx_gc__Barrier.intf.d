lib/core/barrier.mli: Bmx_memory Bmx_util Gc_state
