lib/netsim/net.mli: Bmx_util Format
