test/test_ggc.mli:
