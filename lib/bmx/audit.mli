(** Whole-cluster verification oracles (tests and property checks only —
    a real node could never compute these; they peek at every store).

    The central safety property of the collector is that no object a
    mutator can still legally reach is ever lost.  Reachability is
    computed from every node's roots over the {e authoritative graph}:
    the edges of each object are read from its owner's copy — the
    consistent version a token acquire delivers.  Pointers surviving only
    in stale, invalidated replicas are {e not} edges: under entry
    consistency their contents are undefined and can never be legally
    obtained again (§2.2), which is exactly why the stub-regeneration
    rule of §4.3 may drop a stub as soon as the local object no longer
    contains the reference.  The BGC scanning stale copies keeps strictly
    more alive than this bar requires — the safe direction. *)

type stable_cell = {
  sc_owned : bool;
      (** the checkpointing node owned the object, so the image is the
          authoritative contents, not a stale replica *)
  sc_targets : Bmx_util.Ids.Uid.t list;  (** its pointer fields, as uids *)
}
(** One cell of a {e down} node's checkpointed state, as the audit sees
    it.  While a node is crashed its memory is gone but its stable store
    is not: recovery will reinstate exactly this (§8), so mid-crash
    verification must read the authoritative graph through it.  An image
    checkpointed as owner outranks any surviving stale replica — without
    that, reachability would follow pointers the (crashed) authoritative
    copy severed long ago.  Build one entry per uid found on the disks of
    currently-down nodes; omit the argument when every node is up. *)

val union_reachable :
  ?stable:stable_cell Bmx_util.Ids.Uid_tbl.t -> Cluster.t
  -> Bmx_util.Ids.Uid_set.t
(** Uids reachable from every node's mutator roots over the
    authoritative graph.  [stable] supplies the checkpointed state of
    down nodes (see {!type:stable_cell}). *)

val cached_anywhere : Cluster.t -> Bmx_util.Ids.Uid_set.t
(** Uids with at least one cached copy on some node. *)

val union_edges :
  ?stable:stable_cell Bmx_util.Ids.Uid_tbl.t -> Cluster.t
  -> Bmx_util.Ids.Uid_set.t ref Bmx_util.Ids.Uid_tbl.t
(** The authoritative edge graph itself — uid to pointer-target uids,
    each object's edges read from its owner's copy (stale-replica
    fallback as in {!union_reachable}).  The workload driver seeds its
    incremental reachability mirror from this exact graph, so the
    mirror's baseline is the audit's, by construction. *)

val root_uids : Cluster.t -> Bmx_util.Ids.Uid_set.t
(** Every node's mutator roots, as uids. *)

val lost_objects :
  ?stable:stable_cell Bmx_util.Ids.Uid_tbl.t -> Cluster.t
  -> Bmx_util.Ids.Uid_set.t
(** Safety violation witnesses: reachable uids with no copy anywhere —
    neither cached on a live node nor (when [stable] is given) held on a
    down node's stable store awaiting recovery.  Must always be empty. *)

val garbage_retained : Cluster.t -> Bmx_util.Ids.Uid_set.t
(** Unreachable uids still cached somewhere (waiting for collection). *)

val stale_edge_sources : Cluster.t -> Bmx_util.Ids.Uid_set.t
(** Cached uids with {e no} owner copy anywhere: the authoritative-graph
    construction had to read their edges from a stale, non-owner replica
    (or found no readable copy at all).  Reachability still uses those
    edges — the conservative direction — but such objects are reported
    here rather than silently conflated with authoritative ones, because
    no token acquire could deliver their contents any more.  Normally
    empty except transiently during ownership hand-off or from-space
    reclamation. *)

val check_safety : Cluster.t -> (unit, string) result
(** [Ok ()] when no reachable object has been lost and every locally
    reachable address still resolves at its node; [Error msg] otherwise. *)

val total_cached_copies : Cluster.t -> int
(** Sum over nodes of cached object copies (replicas counted once per
    node). *)

val check_tokens : Cluster.t -> (unit, string) result
(** Entry-consistency token discipline (§2.2), cluster-wide:

    - at most one owner per object;
    - at most one write token per object, and never alongside read
      tokens elsewhere ("several read tokens, or one exclusive write
      token");
    - a node with a valid (read/write) token actually caches a copy.

    [Error msg] names the first violation. *)
