lib/util/stats.ml: Array Float Hashtbl List Option Stdlib String
