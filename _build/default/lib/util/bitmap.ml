type t = { rg : Addr.Range.t; bits : Bytes.t }

let bit_index rg a =
  if not (Addr.Range.contains rg a) then
    invalid_arg "Bitmap: address out of range";
  if not (Addr.is_aligned a) then invalid_arg "Bitmap: unaligned address";
  Addr.diff a rg.Addr.Range.lo / Addr.word

let create ~range =
  let nbits = Addr.Range.size range / Addr.word in
  { rg = range; bits = Bytes.make ((nbits + 7) / 8) '\000' }

let range t = t.rg

let set t a =
  let i = bit_index t.rg a in
  let b = Char.code (Bytes.get t.bits (i lsr 3)) in
  Bytes.set t.bits (i lsr 3) (Char.chr (b lor (1 lsl (i land 7))))

let clear t a =
  let i = bit_index t.rg a in
  let b = Char.code (Bytes.get t.bits (i lsr 3)) in
  Bytes.set t.bits (i lsr 3) (Char.chr (b land lnot (1 lsl (i land 7))))

let get t a =
  let i = bit_index t.rg a in
  Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let clear_all t = Bytes.fill t.bits 0 (Bytes.length t.bits) '\000'

let popcount_byte b =
  let rec go b acc = if b = 0 then acc else go (b lsr 1) (acc + (b land 1)) in
  go b 0

let cardinal t =
  let n = ref 0 in
  Bytes.iter (fun c -> n := !n + popcount_byte (Char.code c)) t.bits;
  !n

let nbits t = Addr.Range.size t.rg / Addr.word

let iter_set t f =
  for i = 0 to nbits t - 1 do
    if Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0
    then f (Addr.add t.rg.Addr.Range.lo (i * Addr.word))
  done

let next_set t a =
  let a = Addr.align_up a in
  let start =
    if a <= t.rg.Addr.Range.lo then 0
    else if not (Addr.Range.contains t.rg a) then nbits t
    else bit_index t.rg a
  in
  let n = nbits t in
  let rec go i =
    if i >= n then None
    else if Char.code (Bytes.get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0
    then Some (Addr.add t.rg.Addr.Range.lo (i * Addr.word))
    else go (i + 1)
  in
  go start

let copy t = { rg = t.rg; bits = Bytes.copy t.bits }

let pp ppf t =
  Format.fprintf ppf "@[<h>bitmap %a: %d set@]" Addr.Range.pp t.rg (cardinal t)
