test/test_integration.ml: Addr Alcotest Bmx Bmx_dsm Bmx_gc Bmx_memory Bmx_netsim Bmx_rvm Bmx_util Bmx_workload Ids List Result Rng Stats
