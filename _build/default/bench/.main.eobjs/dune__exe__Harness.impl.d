bench/harness.ml: Addr Bmx Bmx_dsm Bmx_memory Bmx_netsim Bmx_util Bmx_workload Int64 List Monotonic_clock Stats
