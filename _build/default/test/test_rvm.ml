module Rvm = Bmx_rvm.Rvm

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool
let check_opt = check (Alcotest.option Alcotest.string)

let make () = Rvm.create ~copy:Fun.id ()

let test_commit_applies () =
  let r = make () in
  Rvm.begin_tx r;
  Rvm.set r 4 "a";
  Rvm.set r 8 "b";
  Rvm.commit r;
  check_opt "read a" (Some "a") (Rvm.get r 4);
  check_opt "read b" (Some "b") (Rvm.get r 8);
  check_int "cardinal" 2 (Rvm.cardinal r)

let test_abort_discards () =
  let r = make () in
  Rvm.begin_tx r;
  Rvm.set r 4 "a";
  Rvm.abort r;
  check_opt "nothing applied" None (Rvm.get r 4);
  check_int "log untouched" 0 (Rvm.log_length r)

let test_uncommitted_reads_own_writes () =
  let r = make () in
  Rvm.begin_tx r;
  Rvm.set r 4 "a";
  check_opt "sees own write" (Some "a") (Rvm.get r 4);
  Rvm.delete r 4;
  check_opt "sees own delete" None (Rvm.get r 4);
  Rvm.abort r

let test_crash_loses_volatile_recover_restores () =
  let r = make () in
  Rvm.begin_tx r;
  Rvm.set r 4 "a";
  Rvm.commit r;
  Rvm.crash r;
  check_opt "volatile lost" None (Rvm.get r 4);
  Rvm.recover r;
  check_opt "recovered from log" (Some "a") (Rvm.get r 4)

let test_crash_mid_tx_invisible () =
  let r = make () in
  Rvm.begin_tx r;
  Rvm.set r 4 "committed";
  Rvm.commit r;
  Rvm.begin_tx r;
  Rvm.set r 4 "doomed";
  Rvm.set r 8 "also doomed";
  Rvm.crash r;
  Rvm.recover r;
  check_opt "committed survives" (Some "committed") (Rvm.get r 4);
  check_opt "uncommitted gone" None (Rvm.get r 8)

let test_torn_commit_ignored () =
  let r = make () in
  Rvm.begin_tx r;
  Rvm.set r 4 "safe";
  Rvm.commit r;
  Rvm.begin_tx r;
  Rvm.set r 4 "torn";
  (* Crash after the data records reached the log, before the commit
     record: recovery must ignore the tail. *)
  Rvm.crash_mid_commit r;
  Rvm.recover r;
  check_opt "torn tail ignored" (Some "safe") (Rvm.get r 4)

let test_recover_idempotent () =
  let r = make () in
  Rvm.begin_tx r;
  Rvm.set r 4 "a";
  Rvm.delete r 4;
  Rvm.set r 4 "b";
  Rvm.commit r;
  Rvm.recover r;
  Rvm.recover r;
  check_opt "stable" (Some "b") (Rvm.get r 4)

let test_checkpoint_truncates () =
  let r = make () in
  Rvm.begin_tx r;
  Rvm.set r 4 "a";
  Rvm.commit r;
  check_bool "log non-empty" true (Rvm.log_length r > 0);
  Rvm.checkpoint r;
  check_int "log truncated" 0 (Rvm.log_length r);
  Rvm.crash r;
  Rvm.recover r;
  check_opt "data survives via checkpoint image" (Some "a") (Rvm.get r 4)

let test_delete_logged () =
  let r = make () in
  Rvm.begin_tx r;
  Rvm.set r 4 "a";
  Rvm.commit r;
  Rvm.begin_tx r;
  Rvm.delete r 4;
  Rvm.commit r;
  Rvm.crash r;
  Rvm.recover r;
  check_opt "delete replayed" None (Rvm.get r 4)

let test_no_nested_tx () =
  let r = make () in
  Rvm.begin_tx r;
  Alcotest.check_raises "nested" (Failure "Rvm.begin_tx: transaction already open")
    (fun () -> Rvm.begin_tx r);
  Rvm.abort r;
  Alcotest.check_raises "set outside tx" (Failure "Rvm: no open transaction")
    (fun () -> Rvm.set r 4 "x")

let test_values_copied () =
  (* Mutating a value after set must not corrupt the log (bytes-through-
     a-file semantics). *)
  let r = Rvm.create ~copy:Bytes.copy () in
  let v = Bytes.of_string "abc" in
  Rvm.begin_tx r;
  Rvm.set r 4 v;
  Bytes.set v 0 'X';
  Rvm.commit r;
  Rvm.crash r;
  Rvm.recover r;
  check_opt "copied at set time" (Some "abc")
    (Option.map Bytes.to_string (Rvm.get r 4))

(* A GC-flavoured end-to-end: persist a heap image, crash mid-"collection",
   recover the pre-collection state (the O'Toole from/to-space-as-files
   arrangement of §8). *)
let test_heap_image_recovery () =
  let r = make () in
  Rvm.begin_tx r;
  Rvm.set r 100 "obj1";
  Rvm.set r 200 "obj2";
  Rvm.commit r;
  (* A "BGC" moves obj1 to 300 inside a transaction, then the node dies
     before committing. *)
  Rvm.begin_tx r;
  Rvm.set r 300 "obj1";
  Rvm.delete r 100;
  Rvm.crash r;
  Rvm.recover r;
  check_opt "pre-GC state intact" (Some "obj1") (Rvm.get r 100);
  check_opt "to-space write invisible" None (Rvm.get r 300);
  (* Re-run the collection and commit this time. *)
  Rvm.begin_tx r;
  Rvm.set r 300 "obj1";
  Rvm.delete r 100;
  Rvm.commit r;
  Rvm.crash r;
  Rvm.recover r;
  check_opt "post-GC state durable" (Some "obj1") (Rvm.get r 300);
  check_opt "from-space slot gone" None (Rvm.get r 100)

let () =
  Alcotest.run "rvm"
    [
      ( "transactions",
        [
          Alcotest.test_case "commit applies" `Quick test_commit_applies;
          Alcotest.test_case "abort discards" `Quick test_abort_discards;
          Alcotest.test_case "reads own writes" `Quick test_uncommitted_reads_own_writes;
          Alcotest.test_case "no nesting" `Quick test_no_nested_tx;
          Alcotest.test_case "values copied" `Quick test_values_copied;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "crash/recover" `Quick test_crash_loses_volatile_recover_restores;
          Alcotest.test_case "crash mid-transaction" `Quick test_crash_mid_tx_invisible;
          Alcotest.test_case "torn commit ignored" `Quick test_torn_commit_ignored;
          Alcotest.test_case "recover idempotent" `Quick test_recover_idempotent;
          Alcotest.test_case "checkpoint truncates" `Quick test_checkpoint_truncates;
          Alcotest.test_case "deletes replayed" `Quick test_delete_logged;
          Alcotest.test_case "heap image recovery (E13)" `Quick test_heap_image_recovery;
        ] );
    ]
