(* Virtual-time metric series: the continuous half of bmx_obs.

   End-of-run reports (report.ml) answer "what happened overall"; this
   module answers "what was happening at virtual time T".  It slices the
   run into fixed-width windows of virtual µsteps (Trace_event
   timestamps, anchored to Net.now) and keeps a bounded ring of them:

   - counters and gauges come from the shared Metrics registry, read at
     each window close through cached cell references (never through
     Metrics.snapshot — the sampling path must stay allocation-bounded
     and heap-size-independent, see Perfcount.obs_sample_work);
   - latency.* histograms are derived live from the typed Trace_event
     stream (acquire start/done, gc begin/end, msg sent/delivered),
     mirroring Report's families, into per-window bounded reservoirs
     (Vitter's algorithm R with a private deterministic Rng per series)
     so p50/p99/p999 are queryable over any window interval;
   - any other Metrics.observe samples reach the windows through the
     registry's observer hook.

   Windows export as JSONL (one window per line, re-parseable) and as
   Perfetto "C" counter-track events. *)

open Bmx_util
module T = Trace_event

type key = string * Ids.Node.t option

(* A numeric column: one counter or gauge cell of the registry.  For
   counters [prev] holds the cumulative value at the previous close, so
   each window stores the per-window delta (a flow); gauges store the
   level at close. *)
type ncol = {
  nkey : key;
  nsrc : Metrics.source;
  mutable prev : int;
  nis_counter : bool;
}

type hcol = { hkey : key; hrng : Rng.t }

(* Per-window reservoir of one histogram column.  [hn] counts samples
   offered; the stored prefix is [min hn (Array.length hsamples)]. *)
type hwin = { mutable hn : int; mutable hsamples : float array }

type slot = {
  mutable t0 : int;
  mutable used : bool;  (* closed and queryable (vs in-progress/recycled) *)
  mutable nvals : int array;  (* per numeric column, value at close *)
  mutable hwins : hwin array;  (* per histogram column *)
}

type t = {
  window : int;
  reservoir : int;
  metrics : Metrics.t option;
  mutable gen : int;  (* Metrics.generation mirrored by the column cache *)
  mutable ncols : ncol array;
  nindex : (key, int) Hashtbl.t;
  mutable hcols : hcol array;
  hindex : (key, int) Hashtbl.t;
  slots : slot array;
  mutable cur : int;
  mutable cur_t0 : int;  (* -1 until the first event/note arrives *)
  mutable frozen : bool;
  mutable closed : int;
  mutable on_window : (t -> unit) option;
  (* open-interval state for live latency derivation *)
  open_acq : (T.actor * Ids.Node.t * Ids.Uid.t * T.tok, int) Hashtbl.t;
  open_gc : (Ids.Node.t, int) Hashtbl.t;
  open_msg : (Ids.Node.t * Ids.Node.t * string * int, int) Hashtbl.t;
  msg_keys : (string, key) Hashtbl.t;  (* kind -> interned latency key *)
  seed : int;
}

let default_window = T.quantum
let default_slots = 512
let default_reservoir = 128

let create ?(window = default_window) ?(slots = default_slots)
    ?(reservoir = default_reservoir) ?metrics ?(seed = 0x5e11e5) () =
  if window <= 0 then invalid_arg "Timeseries.create: window";
  if slots <= 0 then invalid_arg "Timeseries.create: slots";
  if reservoir <= 0 then invalid_arg "Timeseries.create: reservoir";
  {
    window;
    reservoir;
    metrics;
    gen = -1;
    ncols = [||];
    nindex = Hashtbl.create 64;
    hcols = [||];
    hindex = Hashtbl.create 16;
    slots =
      Array.init slots (fun _ ->
          { t0 = 0; used = false; nvals = [||]; hwins = [||] });
    cur = 0;
    cur_t0 = -1;
    frozen = false;
    closed = 0;
    on_window = None;
    open_acq = Hashtbl.create 32;
    open_gc = Hashtbl.create 8;
    open_msg = Hashtbl.create 64;
    msg_keys = Hashtbl.create 16;
    seed;
  }

let window t = t.window
let closed_windows t = t.closed
let on_window t f = t.on_window <- Some f

(* ------------------------------------------------------- column cache *)

let source_value = function
  | Metrics.S_counter r | Metrics.S_gauge r -> !r
  | Metrics.S_gauge_fn f -> ( try !f () with _ -> 0)

(* Re-mirror the registry's cells when its generation moved.  Existing
   columns keep their position (and their counter baseline); new cells
   append in sorted-key order so identical runs build identical column
   layouts regardless of hash-table iteration. *)
let refresh_cols t =
  match t.metrics with
  | None -> ()
  | Some m ->
      let g = Metrics.generation m in
      if g <> t.gen then begin
        t.gen <- g;
        let fresh =
          Metrics.sources m
          |> List.filter (fun (key, _) -> not (Hashtbl.mem t.nindex key))
          |> List.sort (fun (a, _) (b, _) -> compare a b)
        in
        if fresh <> [] then begin
          let n = Array.length t.ncols in
          let add =
            Array.of_list
              (List.map
                 (fun (nkey, nsrc) ->
                   {
                     nkey;
                     nsrc;
                     (* baseline now: a counter that predates its column
                        must not dump its whole history into the first
                        window it appears in *)
                     prev = source_value nsrc;
                     nis_counter =
                       (match nsrc with
                       | Metrics.S_counter _ -> true
                       | _ -> false);
                   })
                 fresh)
          in
          t.ncols <- Array.append t.ncols add;
          Array.iteri
            (fun i c -> Hashtbl.replace t.nindex c.nkey (n + i))
            add
        end
      end

let hcol_index t key =
  match Hashtbl.find_opt t.hindex key with
  | Some i -> i
  | None ->
      let i = Array.length t.hcols in
      let hrng = Rng.make (t.seed lxor Hashtbl.hash key) in
      t.hcols <- Array.append t.hcols [| { hkey = key; hrng } |];
      Hashtbl.replace t.hindex key i;
      i

(* --------------------------------------------------------- the clock *)

let align t ts = ts - (ts mod t.window)

let reset_slot s ~t0 =
  s.t0 <- t0;
  s.used <- false;
  Array.iter (fun hw -> hw.hn <- 0) s.hwins

let close_current t =
  refresh_cols t;
  let s = t.slots.(t.cur) in
  let n = Array.length t.ncols in
  if Array.length s.nvals < n then s.nvals <- Array.make n 0;
  for i = 0 to n - 1 do
    let c = t.ncols.(i) in
    let v = source_value c.nsrc in
    if c.nis_counter then begin
      s.nvals.(i) <- v - c.prev;
      c.prev <- v
    end
    else s.nvals.(i) <- v
  done;
  Perfcount.(
    counters.obs_sample_work <-
      counters.obs_sample_work + n + Array.length t.hcols);
  s.used <- true;
  t.closed <- t.closed + 1;
  match t.on_window with None -> () | Some f -> f t

let advance t =
  close_current t;
  t.cur <- (t.cur + 1) mod Array.length t.slots;
  t.cur_t0 <- t.cur_t0 + t.window;
  reset_slot t.slots.(t.cur) ~t0:t.cur_t0

let note t ts =
  if not t.frozen then begin
    if t.cur_t0 < 0 then begin
      t.cur_t0 <- align t ts;
      t.slots.(t.cur).t0 <- t.cur_t0
    end;
    while ts >= t.cur_t0 + t.window do
      advance t
    done
  end

let freeze t =
  if not t.frozen then begin
    if t.cur_t0 >= 0 then close_current t;
    t.frozen <- true;
    match t.metrics with None -> () | Some m -> Metrics.set_observer m None
  end

(* ------------------------------------------------------ observations *)

let observe t ts key x =
  if not t.frozen then begin
    note t ts;
    let i = hcol_index t key in
    let s = t.slots.(t.cur) in
    if Array.length s.hwins <= i then begin
      let n = Array.length s.hwins in
      let grown =
        Array.init (Array.length t.hcols) (fun j ->
            if j < n then s.hwins.(j)
            else { hn = 0; hsamples = Array.make t.reservoir 0. })
      in
      s.hwins <- grown
    end;
    let hw = s.hwins.(i) in
    hw.hn <- hw.hn + 1;
    let cap = Array.length hw.hsamples in
    if hw.hn <= cap then hw.hsamples.(hw.hn - 1) <- x
    else begin
      let j = Rng.int t.hcols.(i).hrng hw.hn in
      if j < cap then hw.hsamples.(j) <- x
    end
  end

(* Live latency families, mirroring Report: token_acquire.{gc,read,write},
   gc.pause, msg.<kind>. *)
let lat_acquire_gc : key = ("latency.token_acquire.gc", None)
let lat_acquire_read : key = ("latency.token_acquire.read", None)
let lat_acquire_write : key = ("latency.token_acquire.write", None)
let lat_gc_pause : key = ("latency.gc.pause", None)

let msg_key t kind =
  match Hashtbl.find_opt t.msg_keys kind with
  | Some k -> k
  | None ->
      let k = ("latency.msg." ^ kind, None) in
      Hashtbl.replace t.msg_keys kind k;
      k

let event t ts e =
  if not t.frozen then begin
    note t ts;
    match e with
    | T.Acquire_start { actor; node; uid; tok } ->
        Hashtbl.replace t.open_acq (actor, node, uid, tok) ts
    | T.Acquire_done { actor; node; uid; tok; _ } -> (
        let k = (actor, node, uid, tok) in
        match Hashtbl.find_opt t.open_acq k with
        | None -> ()
        | Some start ->
            Hashtbl.remove t.open_acq k;
            let fam =
              match (actor, tok) with
              | T.Gc, _ -> lat_acquire_gc
              | T.App, T.Read -> lat_acquire_read
              | T.App, T.Write -> lat_acquire_write
            in
            observe t ts fam (float_of_int (ts - start)))
    | T.Gc_begin { node; _ } -> Hashtbl.replace t.open_gc node ts
    | T.Gc_end { node; _ } -> (
        match Hashtbl.find_opt t.open_gc node with
        | None -> ()
        | Some start ->
            Hashtbl.remove t.open_gc node;
            observe t ts lat_gc_pause (float_of_int (ts - start)))
    | T.Msg_sent { src; dst; kind; seq; _ } ->
        Hashtbl.replace t.open_msg (src, dst, kind, seq) ts
    | T.Msg_delivered { src; dst; kind; seq; _ } -> (
        let k = (src, dst, kind, seq) in
        match Hashtbl.find_opt t.open_msg k with
        | None -> ()
        | Some start ->
            Hashtbl.remove t.open_msg k;
            observe t ts (msg_key t kind) (float_of_int (ts - start)))
    | _ -> ()
  end

let attach t log =
  T.add_tap log (fun ts e -> event t ts e);
  match t.metrics with
  | None -> ()
  | Some m ->
      Metrics.set_observer m
        (Some
           (fun name node x ->
             (* Samples observed outside the event stream land at the
                current window position. *)
             let ts = if t.cur_t0 < 0 then 0 else t.cur_t0 in
             observe t ts ((name, node) : key) x))

(* ------------------------------------------------------------ queries *)

let used_slots t =
  let l = ref [] in
  Array.iter (fun s -> if s.used then l := s :: !l) t.slots;
  List.sort (fun a b -> compare a.t0 b.t0) !l

let span t =
  match used_slots t with
  | [] -> None
  | first :: _ as l ->
      let last = List.nth l (List.length l - 1) in
      Some (first.t0, last.t0 + t.window)

let overlapping t ~since ~until =
  List.filter
    (fun s -> s.t0 < until && s.t0 + t.window > since)
    (used_slots t)

let counter_sum t ?node ~since ~until name =
  match Hashtbl.find_opt t.nindex (name, node) with
  | None -> 0
  | Some i ->
      List.fold_left
        (fun acc s -> if i < Array.length s.nvals then acc + s.nvals.(i) else acc)
        0
        (overlapping t ~since ~until)

let gauge_last t ?node ~since ~until name =
  match Hashtbl.find_opt t.nindex (name, node) with
  | None -> None
  | Some i ->
      List.fold_left
        (fun acc s ->
          if i < Array.length s.nvals then Some s.nvals.(i) else acc)
        None
        (overlapping t ~since ~until)

let stored hw = Stdlib.min hw.hn (Array.length hw.hsamples)

let gather t ?node ~since ~until name =
  match Hashtbl.find_opt t.hindex (name, node) with
  | None -> [||]
  | Some i ->
      let slots = overlapping t ~since ~until in
      let total =
        List.fold_left
          (fun acc s ->
            if i < Array.length s.hwins then acc + stored s.hwins.(i) else acc)
          0 slots
      in
      let out = Array.make total 0. in
      let pos = ref 0 in
      List.iter
        (fun s ->
          if i < Array.length s.hwins then begin
            let hw = s.hwins.(i) in
            let k = stored hw in
            Array.blit hw.hsamples 0 out !pos k;
            pos := !pos + k
          end)
        slots;
      out

let sample_count t ?node ~since ~until name =
  match Hashtbl.find_opt t.hindex (name, node) with
  | None -> 0
  | Some i ->
      List.fold_left
        (fun acc s ->
          if i < Array.length s.hwins then acc + s.hwins.(i).hn else acc)
        0
        (overlapping t ~since ~until)

(* Same round-to-nearest-rank estimator as Stats.Summary.percentile, so
   a merged window interval that saw every sample reproduces the
   whole-run reservoir exactly. *)
let percentile_of arr p =
  let len = Array.length arr in
  if len = 0 then 0.
  else begin
    let arr = Array.copy arr in
    Array.sort Float.compare arr;
    let rank = p /. 100. *. float_of_int (len - 1) in
    let lo = int_of_float (Float.round rank) in
    arr.(Stdlib.max 0 (Stdlib.min (len - 1) lo))
  end

let percentile t ?node ~since ~until name p =
  percentile_of (gather t ?node ~since ~until name) p

let histo_names t =
  Array.to_list (Array.map (fun h -> h.hkey) t.hcols)

let numeric_names t =
  Array.to_list (Array.map (fun c -> c.nkey) t.ncols)

(* ------------------------------------------------------------- export *)

let key_fields (name, node) =
  ("name", Json.String name)
  ::
  (match node with None -> [] | Some n -> [ ("node", Json.Int n) ])

let window_json t s =
  let numeric pred =
    let l = ref [] in
    for i = Array.length s.nvals - 1 downto 0 do
      if i < Array.length t.ncols && pred t.ncols.(i) then
        l :=
          Json.Obj (key_fields t.ncols.(i).nkey @ [ ("v", Json.Int s.nvals.(i)) ])
          :: !l
    done;
    !l
  in
  let histos =
    let l = ref [] in
    for i = Array.length s.hwins - 1 downto 0 do
      if i < Array.length t.hcols then begin
        let hw = s.hwins.(i) in
        if hw.hn > 0 then
          l :=
            Json.Obj
              (key_fields t.hcols.(i).hkey
              @ [
                  ("n", Json.Int hw.hn);
                  ( "samples",
                    Json.List
                      (List.init (stored hw) (fun j ->
                           Json.Float hw.hsamples.(j))) );
                ])
            :: !l
      end
    done;
    !l
  in
  Json.Obj
    [
      ("t0", Json.Int s.t0);
      ("t1", Json.Int (s.t0 + t.window));
      ("counters", Json.List (numeric (fun c -> c.nis_counter)));
      ("gauges", Json.List (numeric (fun c -> not c.nis_counter)));
      ("histos", Json.List histos);
    ]

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s ->
      Buffer.add_string buf (Json.to_string (window_json t s));
      Buffer.add_char buf '\n')
    (used_slots t);
  Buffer.contents buf

(* Rebuild a frozen, queryable series from its own JSONL.  Columns are
   keyed by (name, node); values missing from a line read as absent
   (shorter per-slot arrays), matching how a live series grows. *)
let of_jsonl text =
  let lines =
    String.split_on_char '\n' text |> List.filter (fun l -> String.trim l <> "")
  in
  let err fmt = Printf.ksprintf (fun m -> Error m) fmt in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match Json.parse line with
        | Error e -> err "bad JSONL line: %s" e
        | Ok j -> go (j :: acc) rest)
  in
  match go [] lines with
  | Error _ as e -> e
  | Ok [] -> Error "empty timeseries"
  | Ok (first :: _ as windows) -> (
      let int_m name j =
        match Json.member name j with Some (Json.Int i) -> Some i | _ -> None
      in
      match (int_m "t0" first, int_m "t1" first) with
      | Some t0, Some t1 when t1 > t0 ->
          let w = t1 - t0 in
          let t =
            create ~window:w ~slots:(Stdlib.max 1 (List.length windows)) ()
          in
          let nkind : (key, bool) Hashtbl.t = Hashtbl.create 32 in
          let ncol_index key is_counter =
            match Hashtbl.find_opt t.nindex key with
            | Some i -> i
            | None ->
                let i = Array.length t.ncols in
                Hashtbl.replace nkind key is_counter;
                t.ncols <-
                  Array.append t.ncols
                    [|
                      {
                        nkey = key;
                        nsrc = Metrics.S_gauge (ref 0);
                        prev = 0;
                        nis_counter = is_counter;
                      };
                    |];
                Hashtbl.replace t.nindex key i;
                i
          in
          let key_of j =
            match Json.member "name" j with
            | Some (Json.String name) ->
                let node =
                  match Json.member "node" j with
                  | Some (Json.Int n) -> Some n
                  | _ -> None
                in
                Some ((name, node) : key)
            | _ -> None
          in
          let ok = ref true in
          List.iteri
            (fun wi j ->
              let s = t.slots.(wi) in
              s.t0 <- (match int_m "t0" j with Some v -> v | None -> 0);
              s.used <- true;
              let load_numeric field is_counter =
                match Json.member field j with
                | Some (Json.List l) ->
                    List.iter
                      (fun entry ->
                        match (key_of entry, int_m "v" entry) with
                        | Some key, Some v ->
                            let i = ncol_index key is_counter in
                            if Array.length s.nvals <= i then begin
                              let old = s.nvals in
                              s.nvals <- Array.make (i + 1) 0;
                              Array.blit old 0 s.nvals 0 (Array.length old)
                            end;
                            s.nvals.(i) <- v
                        | _ -> ok := false)
                      l
                | _ -> ()
              in
              load_numeric "counters" true;
              load_numeric "gauges" false;
              (match Json.member "histos" j with
              | Some (Json.List l) ->
                  List.iter
                    (fun entry ->
                      match (key_of entry, int_m "n" entry) with
                      | Some key, Some n -> (
                          let i = hcol_index t key in
                          if Array.length s.hwins <= i then begin
                            let old = s.hwins in
                            s.hwins <-
                              Array.init (i + 1) (fun j ->
                                  if j < Array.length old then old.(j)
                                  else { hn = 0; hsamples = [||] })
                          end;
                          match Json.member "samples" entry with
                          | Some (Json.List samples) ->
                              let arr =
                                Array.of_list
                                  (List.filter_map
                                     (function
                                       | Json.Float f -> Some f
                                       | Json.Int i -> Some (float_of_int i)
                                       | _ -> None)
                                     samples)
                              in
                              s.hwins.(i) <- { hn = n; hsamples = arr }
                          | _ -> ok := false)
                      | _ -> ok := false)
                    l
              | _ -> ());
              t.closed <- t.closed + 1)
            windows;
          t.frozen <- true;
          if !ok then Ok t else Error "malformed series entry"
      | _ -> err "first window lacks t0/t1")

(* Perfetto counter tracks: one "C" event per numeric column per window
   (node-labelled series go to their node's process, cluster-wide to
   pid 0). *)
let perfetto_counters ?names t =
  let wanted (name, _) =
    match names with None -> true | Some l -> List.mem name l
  in
  List.concat_map
    (fun s ->
      let l = ref [] in
      for i = Array.length s.nvals - 1 downto 0 do
        if i < Array.length t.ncols && wanted t.ncols.(i).nkey then begin
          let name, node = t.ncols.(i).nkey in
          l :=
            Json.Obj
              [
                ("ph", Json.String "C");
                ("pid", Json.Int (match node with Some n -> n | None -> 0));
                ("name", Json.String name);
                ("ts", Json.Int s.t0);
                ("args", Json.Obj [ ("value", Json.Int s.nvals.(i)) ]);
              ]
            :: !l
        end
      done;
      !l)
    (used_slots t)

(* Offline replay: rebuild latency series (and window structure) from a
   timed event trace — bmxctl report --since/--until uses this when all
   it has is a trace file. *)
let replay ?window ?slots ?reservoir timed =
  let t = create ?window ?slots ?reservoir () in
  List.iter (fun (ts, e) -> event t ts e) timed;
  freeze t;
  t
