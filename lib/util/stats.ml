type registry = (string, int ref) Hashtbl.t

let create_registry () : registry = Hashtbl.create 64

let incr reg ?(by = 1) name =
  match Hashtbl.find_opt reg name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add reg name (ref by)

let get reg name =
  match Hashtbl.find_opt reg name with Some r -> !r | None -> 0

let reset reg = Hashtbl.iter (fun _ r -> r := 0) reg

let counters reg =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) reg []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let diff ~before ~after =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (k, v) -> Hashtbl.replace tbl k (-v)) before;
  List.iter
    (fun (k, v) ->
      let prev = Option.value ~default:0 (Hashtbl.find_opt tbl k) in
      Hashtbl.replace tbl k (prev + v))
    after;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

module Summary = struct
  let reservoir_capacity = 1024

  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    samples : float array;
    mutable filled : int;
    rng : Rng.t;
  }

  let default_seed = 0x5e5a11e

  let create ?(seed = default_seed) () =
    {
      n = 0;
      mean = 0.;
      m2 = 0.;
      min = infinity;
      max = neg_infinity;
      samples = Array.make reservoir_capacity 0.;
      filled = 0;
      rng = Rng.make seed;
    }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    (* Vitter's algorithm R: every sample has an equal chance of sitting in
       the reservoir, so percentiles over it are unbiased estimates. *)
    if t.filled < reservoir_capacity then begin
      t.samples.(t.filled) <- x;
      t.filled <- t.filled + 1
    end
    else begin
      let j = Rng.int t.rng t.n in
      if j < reservoir_capacity then t.samples.(j) <- x
    end

  let n t = t.n
  let mean t = if t.n = 0 then 0. else t.mean
  let stddev t = if t.n < 2 then 0. else sqrt (t.m2 /. float_of_int (t.n - 1))
  let min t = if t.n = 0 then 0. else t.min
  let max t = if t.n = 0 then 0. else t.max
  let total t = t.mean *. float_of_int t.n

  let percentile t p =
    if t.filled = 0 then 0.
    else begin
      let arr = Array.sub t.samples 0 t.filled in
      Array.sort Float.compare arr;
      let rank = p /. 100. *. float_of_int (Array.length arr - 1) in
      let lo = int_of_float (Float.round rank) in
      arr.(Stdlib.max 0 (Stdlib.min (Array.length arr - 1) lo))
    end
end
