(** Counters and summary statistics for experiments.

    Every subsystem (network, DSM, GC) records into a [registry]; the bench
    harness snapshots registries before/after a run to build the tables of
    EXPERIMENTS.md. *)

type registry

val create_registry : unit -> registry

val incr : registry -> ?by:int -> string -> unit
(** Bump the named counter (created at zero on first use). *)

val get : registry -> string -> int
(** Current value of a counter (0 if never bumped). *)

val reset : registry -> unit
(** Zero every counter. *)

val counters : registry -> (string * int) list
(** All counters, sorted by name. *)

val diff : before:(string * int) list -> after:(string * int) list
  -> (string * int) list
(** Per-counter deltas ([after - before]); names absent on one side count
    as zero. *)

(** Streaming summary of a sample (Welford's algorithm). *)
module Summary : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val n : t -> int
  val mean : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val total : t -> float
  val percentile : t -> float -> float
  (** [percentile t p] for [p] in [0,100]; retains all samples. *)
end
