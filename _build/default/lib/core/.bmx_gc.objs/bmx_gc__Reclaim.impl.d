lib/core/reclaim.ml: Addr Array Bmx_dsm Bmx_memory Bmx_netsim Bmx_util Gc_state Ids List Stats
