lib/baseline/refcount.ml: Bmx Bmx_dsm Bmx_memory Bmx_util Ids List Queue Rng
