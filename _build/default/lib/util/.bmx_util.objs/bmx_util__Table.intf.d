lib/util/table.mli:
