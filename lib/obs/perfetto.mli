(** Chrome-trace-event export of a span list (Perfetto-compatible).

    One trace "process" per node (pid = node id, named via [process_name]
    metadata), one "thread" per {!Span.track} (tid = track index, named
    via [thread_name]).  Finished spans become complete events
    ([ph = "X"], with [ts]/[dur] in virtual µsteps), instants become
    thread-scoped instant events ([ph = "i"]).  Load the output at
    ui.perfetto.dev or chrome://tracing. *)

val to_json : Span.t list -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)

val to_string : Span.t list -> string

val write_file : string -> Span.t list -> unit
