open Bmx_util
module E = Trace_event

type clock = int array

type info = {
  idx : int;
  ev : E.t;
  actor : E.actor;
  clock : clock;
}

let leq a b =
  let n = Stdlib.max (Array.length a) (Array.length b) in
  let get c i = if i < Array.length c then c.(i) else 0 in
  let ok = ref true in
  for i = 0 to n - 1 do
    if get a i > get b i then ok := false
  done;
  !ok

let join ~into src =
  Array.iteri (fun i v -> if v > into.(i) then into.(i) <- v) src

let node_span events =
  let m = ref 0 in
  let see n = if n > !m then m := n in
  Array.iter
    (fun (e : E.t) ->
      match e with
      | E.Acquire_start { node; _ }
      | E.Acquire_done { node; _ }
      | E.Release { node; _ }
      | E.Updates_applied { node; _ }
      | E.Forward_due { node; _ }
      | E.Gc_begin { node; _ }
      | E.Gc_end { node; _ }
      | E.Crash { node }
      | E.Restart { node }
      | E.Owner_adopted { node; _ }
      | E.Disk_fault { node; _ }
      | E.Rvm_recover { node; _ }
      | E.Bunch_verified { node; _ }
      | E.Shard_alloc { node; _ }
      | E.Shard_adopted { node; _ }
      | E.Read_obs { node; _ }
      | E.Write_obs { node; _ }
      | E.Gc_phase { node; _ } ->
          see node
      | E.Grant_sent { granter; requester; _ }
      | E.Hook_ssp { granter; requester; _ } ->
          see granter;
          see requester
      | E.Invalidate { src; dst; _ }
      | E.Copyset_forward { src; dst; _ }
      | E.Msg_sent { src; dst; _ }
      | E.Msg_delivered { src; dst; _ }
      | E.Msg_retransmit { src; dst; _ }
      | E.Msg_suppressed { src; dst; _ }
      | E.Msg_buffered { src; dst; _ }
      | E.Rpc { src; dst; _ }
      | E.Link_cut { src; dst }
      | E.Link_heal { src; dst }
      | E.Suspect { src; dst; _ } ->
          see src;
          see dst
      | E.Tables_processed { at; sender; _ } ->
          see at;
          see sender)
    events;
  !m + 1

let gc_kind = function
  | "scion_message" | "stub_table" | "reclaim_request" | "reclaim_reply"
  | "refcount_op" ->
      true
  | _ -> false

(* Engine core.  [copy = true] hands [emit] a private snapshot of each
   timestamp (callers may retain it); [copy = false] hands it the live
   clock array — valid only during the callback — and pays no per-event
   allocation beyond what the edges themselves store. *)
let exec ~copy ?nodes ?indices events emit =
  let nodes =
    match nodes with
    | Some n -> Stdlib.max n 1
    | None -> node_span events
  in
  (* Application clocks: only App-classified events increment these. *)
  let c = Array.init nodes (fun _ -> Array.make nodes 0) in
  (* GC-side clocks: what each node's collector has observed.  These
     absorb application clocks and GC message edges but never flow back
     into [c] — that asymmetry IS the non-interference statement. *)
  let g = Array.init nodes (fun _ -> Array.make nodes 0) in
  (* Message-edge snapshots.  Sequence numbers are per-(src, dst) stream
     and strictly increasing across kinds (the FIFO lint enforces this),
     so (src, dst, seq) identifies the send.  The snapshot is dropped at
     first delivery: clocks only grow, so a duplicate delivery joining
     nothing is a no-op — the edge is already absorbed. *)
  let snap : (int * int * int, clock) Hashtbl.t = Hashtbl.create 1024 in
  (* Grant-edge snapshots, keyed (requester, uid). *)
  let grant : (int * int, clock) Hashtbl.t = Hashtbl.create 64 in
  (* Invalidation accumulator per uid: clocks of every reader
     invalidated since the last write grant. *)
  let acc : (int, clock) Hashtbl.t = Hashtbl.create 64 in
  (* Actor of the in-flight acquire per uid (acquires are synchronous),
     and tokens currently held by the GC. *)
  let pending : (int, E.actor) Hashtbl.t = Hashtbl.create 16 in
  let held_by_gc : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  let pending_actor uid =
    match Hashtbl.find_opt pending uid with Some a -> a | None -> E.App
  in
  let view a = if copy then Array.copy a else a in
  (* Stored snapshots must survive later clock growth: fresh in copy
     mode (the emitted timestamp is already private), copied in view
     mode. *)
  let retain a = if copy then a else Array.copy a in
  (* App event at [n]: bump program order, timestamp = C(n). *)
  let step n =
    c.(n).(n) <- c.(n).(n) + 1;
    view c.(n)
  in
  (* Gc event at [n]: reads C(n) into G(n), timestamp = G(n). *)
  let gstep n =
    join ~into:g.(n) c.(n);
    view g.(n)
  in
  Array.mapi
    (fun pos ev ->
      let idx = match indices with Some ix -> ix.(pos) | None -> pos in
      let actor, clock =
        match ev with
        | E.Acquire_start { actor; node; uid; _ } ->
            Hashtbl.replace pending uid actor;
            (actor, (match actor with E.App -> step node | E.Gc -> gstep node))
        | E.Acquire_done { actor; node; uid; tok; _ } ->
            Hashtbl.remove pending uid;
            (match actor with
            | E.App ->
                (match Hashtbl.find_opt grant (node, uid) with
                | Some s ->
                    join ~into:c.(node) s;
                    Hashtbl.remove grant (node, uid)
                | None -> ());
                if tok = E.Write then (
                  (match Hashtbl.find_opt acc uid with
                  | Some s -> join ~into:c.(node) s
                  | None -> ());
                  Hashtbl.remove acc uid);
                (actor, step node)
            | E.Gc ->
                Hashtbl.replace held_by_gc (node, uid) ();
                (match Hashtbl.find_opt grant (node, uid) with
                | Some s ->
                    join ~into:g.(node) s;
                    Hashtbl.remove grant (node, uid)
                | None -> ());
                (actor, gstep node))
        | E.Release { node; uid } ->
            if Hashtbl.mem held_by_gc (node, uid) then begin
              Hashtbl.remove held_by_gc (node, uid);
              (E.Gc, gstep node)
            end
            else (E.App, step node)
        | E.Grant_sent { granter; requester; uid; _ } -> (
            match pending_actor uid with
            | E.App ->
                let ts = step granter in
                Hashtbl.replace grant (requester, uid) (retain ts);
                (E.App, ts)
            | E.Gc ->
                let ts = gstep granter in
                Hashtbl.replace grant (requester, uid) (retain ts);
                (E.Gc, ts))
        | E.Hook_ssp { granter; uid; _ } -> (
            match pending_actor uid with
            | E.App -> (E.App, step granter)
            | E.Gc -> (E.Gc, gstep granter))
        | E.Invalidate { src; dst; uid } -> (
            match pending_actor uid with
            | E.App ->
                (* Synchronous exchange: src and dst merge, and the
                   invalidated reader's clock feeds the accumulator the
                   next write grant will join. *)
                let ts = step src in
                join ~into:c.(dst) ts;
                join ~into:c.(src) c.(dst);
                let a =
                  match Hashtbl.find_opt acc uid with
                  | Some a -> a
                  | None ->
                      let a = Array.make nodes 0 in
                      Hashtbl.add acc uid a;
                      a
                in
                join ~into:a c.(dst);
                (E.App, view c.(src))
            | E.Gc ->
                let ts = gstep src in
                join ~into:g.(dst) ts;
                (E.Gc, ts))
        | E.Msg_sent { src; dst; kind; seq; _ } ->
            if gc_kind kind then begin
              let ts = gstep src in
              Hashtbl.replace snap (src, dst, seq) (retain ts);
              (E.Gc, ts)
            end
            else begin
              let ts = step src in
              Hashtbl.replace snap (src, dst, seq) (retain ts);
              (E.App, ts)
            end
        | E.Msg_delivered { src; dst; kind; seq; _ } ->
            if gc_kind kind then begin
              (match Hashtbl.find_opt snap (src, dst, seq) with
              | Some s ->
                  join ~into:g.(dst) s;
                  Hashtbl.remove snap (src, dst, seq)
              | None -> ());
              (E.Gc, gstep dst)
            end
            else begin
              (match Hashtbl.find_opt snap (src, dst, seq) with
              | Some s ->
                  join ~into:c.(dst) s;
                  Hashtbl.remove snap (src, dst, seq)
              | None -> ());
              (E.App, step dst)
            end
        | E.Rpc { src; dst; kind; _ } ->
            if gc_kind kind then begin
              let ts = gstep src in
              join ~into:g.(dst) ts;
              join ~into:g.(dst) c.(dst);
              join ~into:g.(src) g.(dst);
              (E.Gc, view g.(src))
            end
            else begin
              ignore (step src);
              join ~into:c.(dst) c.(src);
              join ~into:c.(src) c.(dst);
              (E.App, view c.(src))
            end
        | E.Msg_retransmit { src; dst = _; kind; _ } ->
            (* The original send's snapshot already carries the edge. *)
            if gc_kind kind then (E.Gc, gstep src) else (E.App, step src)
        | E.Msg_suppressed { dst; kind; _ } | E.Msg_buffered { dst; kind; _ }
          ->
            if gc_kind kind then (E.Gc, gstep dst) else (E.App, step dst)
        | E.Gc_begin { node; _ } | E.Gc_end { node; _ } | E.Gc_phase { node; _ }
          ->
            (E.Gc, gstep node)
        | E.Tables_processed { at; _ } -> (E.Gc, gstep at)
        | E.Read_obs { actor; node; _ } | E.Write_obs { actor; node; _ } -> (
            match actor with
            | E.App -> (E.App, step node)
            | E.Gc -> (E.Gc, gstep node))
        | E.Updates_applied { node; _ } | E.Forward_due { node; _ } ->
            (E.App, step node)
        | E.Copyset_forward { src; _ } -> (E.App, step src)
        | E.Crash { node } | E.Restart { node } -> (E.App, step node)
        | E.Owner_adopted { node; _ } -> (E.App, step node)
        | E.Disk_fault { node; _ }
        | E.Rvm_recover { node; _ }
        | E.Bunch_verified { node; _ }
        | E.Shard_alloc { node; _ }
        | E.Shard_adopted { node; _ } ->
            (E.App, step node)
        | E.Link_cut { src; _ } | E.Link_heal { src; _ } | E.Suspect { src; _ }
          ->
            (E.App, step src)
      in
      emit idx ev actor clock)
    events

let run ?nodes ?indices events =
  exec ~copy:true ?nodes ?indices events (fun idx ev actor clock ->
      { idx; ev; actor; clock })

let scan ?nodes ?indices events f =
  ignore
    (exec ~copy:false ?nodes ?indices events (fun idx _ actor clock ->
         f idx actor clock))
