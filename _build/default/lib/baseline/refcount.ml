open Bmx_util
module Protocol = Bmx_dsm.Protocol
module Store = Bmx_memory.Store
module Heap_obj = Bmx_memory.Heap_obj

type outcome = {
  rc_reclaimed : int;
  rc_leaked : int;
  rc_premature : int;
  rc_cycle_garbage : int;
  rc_messages : int;
}

(* The authoritative reference graph: the owner's copy of each object (or
   any replica if ownership is ambiguous), uid -> outgoing target uids,
   one entry per reference (reference counting counts occurrences). *)
let authoritative_edges c =
  let proto = Bmx.Cluster.proto c in
  let edges : Ids.Uid.t list ref Ids.Uid_tbl.t = Ids.Uid_tbl.create 256 in
  let all = Bmx.Audit.cached_anywhere c in
  Ids.Uid_set.iter
    (fun uid ->
      let node =
        match Protocol.owner_of proto uid with
        | Some n -> Some n
        | None -> (
            match Protocol.replica_nodes proto uid with n :: _ -> Some n | [] -> None)
      in
      match node with
      | None -> ()
      | Some n -> (
          let store = Protocol.store proto n in
          match Store.addr_of_uid store uid with
          | None -> ()
          | Some a -> (
              match Store.resolve store a with
              | None -> ()
              | Some (_, obj) ->
                  let targets =
                    List.filter_map
                      (Protocol.uid_of_addr proto)
                      (Heap_obj.pointers obj)
                  in
                  Ids.Uid_tbl.replace edges uid (ref targets))))
    all;
  edges

let initial_counts c edges =
  let counts : int ref Ids.Uid_tbl.t = Ids.Uid_tbl.create 256 in
  let bump uid =
    match Ids.Uid_tbl.find_opt counts uid with
    | Some r -> incr r
    | None -> Ids.Uid_tbl.add counts uid (ref 1)
  in
  Ids.Uid_set.iter
    (fun uid ->
      if not (Ids.Uid_tbl.mem counts uid) then Ids.Uid_tbl.add counts uid (ref 0))
    (Bmx.Audit.cached_anywhere c);
  Ids.Uid_tbl.iter (fun _ targets -> List.iter bump !targets) edges;
  (* Every mutator root contributes one count. *)
  let proto = Bmx.Cluster.proto c in
  List.iter
    (fun node ->
      List.iter
        (fun addr ->
          match Protocol.uid_of_addr proto addr with
          | Some uid -> bump uid
          | None -> ())
        (Bmx.Cluster.roots c ~node))
    (Bmx.Cluster.nodes c);
  counts

(* Cascade deletion: free every object whose count is zero; each freed
   object sends one decrement message per outgoing reference, subject to
   loss and duplication. *)
let cascade edges counts ~loss ~dup ~rng =
  (* Deep copy: the counts are refs, and each cascade must run against
     its own mutable state. *)
  let counts =
    let fresh = Ids.Uid_tbl.create (Ids.Uid_tbl.length counts) in
    Ids.Uid_tbl.iter (fun uid r -> Ids.Uid_tbl.add fresh uid (ref !r)) counts;
    fresh
  in
  let freed = ref Ids.Uid_set.empty in
  let messages = ref 0 in
  let queue = Queue.create () in
  Ids.Uid_tbl.iter (fun uid r -> if !r = 0 then Queue.add uid queue) counts;
  let dec uid =
    match Ids.Uid_tbl.find_opt counts uid with
    | None -> ()
    | Some r ->
        r := !r - 1;
        if !r <= 0 && not (Ids.Uid_set.mem uid !freed) then Queue.add uid queue
  in
  while not (Queue.is_empty queue) do
    let uid = Queue.take queue in
    if not (Ids.Uid_set.mem uid !freed) then begin
      freed := Ids.Uid_set.add uid !freed;
      let targets =
        match Ids.Uid_tbl.find_opt edges uid with Some r -> !r | None -> []
      in
      List.iter
        (fun v ->
          incr messages;
          let lost = match rng with Some g -> Rng.float g 1.0 < loss | None -> false in
          if not lost then begin
            dec v;
            let dupd = match rng with Some g -> Rng.float g 1.0 < dup | None -> false in
            if dupd then dec v
          end)
        targets
    end
  done;
  (!freed, !messages)

let analyze c ?(loss_prob = 0.0) ?(dup_prob = 0.0) ?rng () =
  let edges = authoritative_edges c in
  let counts = initial_counts c edges in
  let reachable = Bmx.Audit.union_reachable c in
  let cached = Bmx.Audit.cached_anywhere c in
  let garbage = Ids.Uid_set.diff cached reachable in
  (* Ground truth for what counting can reclaim at all: a perfect channel. *)
  let freed_perfect, _ = cascade edges counts ~loss:0.0 ~dup:0.0 ~rng:None in
  let cycle_garbage = Ids.Uid_set.diff garbage freed_perfect in
  let freed, messages =
    cascade edges counts ~loss:loss_prob ~dup:dup_prob ~rng
  in
  {
    rc_reclaimed = Ids.Uid_set.cardinal (Ids.Uid_set.inter freed garbage);
    rc_leaked =
      Ids.Uid_set.cardinal
        (Ids.Uid_set.diff (Ids.Uid_set.diff garbage freed) cycle_garbage);
    rc_premature = Ids.Uid_set.cardinal (Ids.Uid_set.inter freed reachable);
    rc_cycle_garbage = Ids.Uid_set.cardinal cycle_garbage;
    rc_messages = messages;
  }
