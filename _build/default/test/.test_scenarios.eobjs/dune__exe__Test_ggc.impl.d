test/test_ggc.ml: Alcotest Bmx Bmx_gc Bmx_memory Bmx_workload List Result
