open Bmx_util

type kind =
  | Token_request
  | Token_grant
  | Invalidate
  | Object_fetch
  | Scion_message
  | Stub_table
  | Addr_update
  | Reclaim_request
  | Reclaim_reply
  | Refcount_op
  | App_message

let kind_to_string = function
  | Token_request -> "token_request"
  | Token_grant -> "token_grant"
  | Invalidate -> "invalidate"
  | Object_fetch -> "object_fetch"
  | Scion_message -> "scion_message"
  | Stub_table -> "stub_table"
  | Addr_update -> "addr_update"
  | Reclaim_request -> "reclaim_request"
  | Reclaim_reply -> "reclaim_reply"
  | Refcount_op -> "refcount_op"
  | App_message -> "app_message"

let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)

let all_kinds =
  [
    Token_request; Token_grant; Invalidate; Object_fetch; Scion_message;
    Stub_table; Addr_update; Reclaim_request; Reclaim_reply; Refcount_op;
    App_message;
  ]

type 'p envelope = {
  src : Ids.Node.t;
  dst : Ids.Node.t;
  kind : kind;
  seq : int;
  payload : 'p;
}

type fault = { drop : float; dup : float; rng : Rng.t }

type 'p t = {
  stats : Stats.registry;
  queue : 'p envelope Queue.t;
  seqs : (Ids.Node.t * Ids.Node.t, int ref) Hashtbl.t;
  faults : (kind, fault) Hashtbl.t;
  mutable handler : ('p envelope -> unit) option;
  mutable evlog : Trace_event.log option;
}

let create ~stats () =
  {
    stats;
    queue = Queue.create ();
    seqs = Hashtbl.create 16;
    faults = Hashtbl.create 4;
    handler = None;
    evlog = None;
  }

let stats t = t.stats
let set_handler t f = t.handler <- Some f
let set_evlog t l = t.evlog <- Some l

let ev t e =
  match t.evlog with
  | Some l when Trace_event.enabled l -> Trace_event.record l e
  | Some _ | None -> ()

let ev_sent t ~src ~dst ~kind ~seq =
  ev t (Trace_event.Msg_sent { src; dst; kind = kind_to_string kind; seq })

let ev_delivered t ~src ~dst ~kind ~seq =
  ev t (Trace_event.Msg_delivered { src; dst; kind = kind_to_string kind; seq })

let next_seq t ~src ~dst =
  let key = (src, dst) in
  match Hashtbl.find_opt t.seqs key with
  | Some r ->
      incr r;
      !r
  | None ->
      Hashtbl.add t.seqs key (ref 1);
      1

let account t ~kind ~bytes =
  Stats.incr t.stats ("net.sent." ^ kind_to_string kind);
  Stats.incr t.stats "net.sent.total";
  Stats.incr t.stats ~by:bytes ("net.bytes." ^ kind_to_string kind);
  Stats.incr t.stats ~by:bytes "net.bytes.total"

let send t ~src ~dst ~kind ?(bytes = 64) payload =
  let seq = next_seq t ~src ~dst in
  ev_sent t ~src ~dst ~kind ~seq;
  let env = { src; dst; kind; seq; payload } in
  match Hashtbl.find_opt t.faults kind with
  | Some { drop; dup; rng } ->
      if Rng.float rng 1.0 < drop then begin
        Stats.incr t.stats ("net.dropped." ^ kind_to_string kind);
        Stats.incr t.stats "net.dropped.total"
      end
      else begin
        account t ~kind ~bytes;
        Queue.add env t.queue;
        if Rng.float rng 1.0 < dup then begin
          Stats.incr t.stats ("net.duplicated." ^ kind_to_string kind);
          account t ~kind ~bytes;
          Queue.add env t.queue
        end
      end
  | None ->
      account t ~kind ~bytes;
      Queue.add env t.queue

let record_rpc t ~src ~dst ~kind ?(bytes = 64) () =
  (* Synchronous exchange executed inline by the caller; it overtakes
     any queued background messages on the (src, dst) stream, so it gets
     its own event kind rather than a sent/delivered pair. *)
  let seq = next_seq t ~src ~dst in
  ev t (Trace_event.Rpc { src; dst; kind = kind_to_string kind; seq });
  account t ~kind ~bytes

let record_piggyback t ~kind ~bytes =
  Stats.incr t.stats ("net.piggyback." ^ kind_to_string kind);
  Stats.incr t.stats ~by:bytes ("net.bytes." ^ kind_to_string kind);
  Stats.incr t.stats ~by:bytes "net.bytes.total";
  Stats.incr t.stats ~by:bytes "net.bytes.piggyback"

let deliver t env =
  let handler =
    match t.handler with
    | Some h -> h
    | None -> failwith "Net.step: no handler installed"
  in
  Stats.incr t.stats ("net.delivered." ^ kind_to_string env.kind);
  ev_delivered t ~src:env.src ~dst:env.dst ~kind:env.kind ~seq:env.seq;
  handler env

let step t =
  match Queue.take_opt t.queue with
  | None -> false
  | Some env ->
      deliver t env;
      true

(* ------------------------------------------------------------------ *)
(* Out-of-global-order delivery for the schedule explorer.  The only
   ordering guarantee the GC design relies on is FIFO per (src, dst)
   pair (§6.1), so any interleaving that delivers each pair's messages
   in queue order is a legal network behaviour.  [deliverable_pairs]
   enumerates the choice points; [step_pair] commits one choice. *)

let deliverable_pairs t =
  let seen = Hashtbl.create 8 in
  Queue.fold
    (fun acc env ->
      let key = (env.src, env.dst) in
      if Hashtbl.mem seen key then acc
      else begin
        Hashtbl.add seen key ();
        key :: acc
      end)
    [] t.queue
  |> List.rev

let step_pair t ~src ~dst =
  (* Remove the oldest queued message of the pair, preserving the
     relative order of everything else. *)
  let all = List.of_seq (Queue.to_seq t.queue) in
  let rec split acc = function
    | [] -> None
    | env :: rest when Ids.Node.equal env.src src && Ids.Node.equal env.dst dst
      ->
        Some (env, List.rev_append acc rest)
    | env :: rest -> split (env :: acc) rest
  in
  match split [] all with
  | None -> false
  | Some (env, rest) ->
      Queue.clear t.queue;
      List.iter (fun e -> Queue.add e t.queue) rest;
      deliver t env;
      true

let drain t =
  let rec go n = if step t then go (n + 1) else n in
  go 0

let pending t = Queue.length t.queue

let current_seq t ~src ~dst =
  match Hashtbl.find_opt t.seqs (src, dst) with Some r -> !r | None -> 0
let set_fault t ~kind ~drop ~dup ~rng = Hashtbl.replace t.faults kind { drop; dup; rng }
let clear_faults t = Hashtbl.reset t.faults
let sent t kind = Stats.get t.stats ("net.sent." ^ kind_to_string kind)
let total_messages t = Stats.get t.stats "net.sent.total"
let total_bytes t = Stats.get t.stats "net.bytes.total"
