(* Deterministic regressions for the protection races of DESIGN.md §5.

   Each of these scenarios was originally found by randomized property
   testing (often needing thousands of programs); here they are pinned as
   minimal deterministic reproductions so a regression cannot hide. *)

open Bmx_util
module Cluster = Bmx.Cluster
module Protocol = Bmx_dsm.Protocol
module Directory = Bmx_dsm.Directory
module Store = Bmx_memory.Store
module Value = Bmx_memory.Value
module Net = Bmx_netsim.Net

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let alive c uid = Ids.Uid_set.mem uid (Bmx.Audit.cached_anywhere c)

(* Every race scenario is recorded (trace_events) and must come out of
   the trace linter clean: the §5 invariants, GC-never-acquires, and
   per-pair FIFO hold along the whole history, on top of the scenario's
   own assertions. *)
let assert_lint c =
  match Bmx_check.Lint.check_all (Cluster.proto c) with
  | [] -> ()
  | v :: _ -> Alcotest.failf "lint: %s" (Bmx_check.Lint.violation_to_string v)

(* Race 1: a scion protecting an object with no local copy at the scion
   node ("phantom" scion).  The reference s->x is created at N2, where
   x's bunch is mapped but x itself was never cached; every BGC at x's
   owner must still keep x alive, via the scion node's conservative
   exiting entry. *)
let test_phantom_scion_protects () =
  let c = Cluster.create ~nodes:3 ~trace_events:true () in
  let bt = Cluster.new_bunch c ~home:2 in
  let bs = Cluster.new_bunch c ~home:1 in
  let x = Cluster.alloc c ~node:0 ~bunch:bt [| Value.Data 1 |] in
  let x_uid = Cluster.uid_at c ~node:0 x in
  (* N2 creates the reference; bt is mapped at N2 (home) but x is not
     cached there. *)
  let s = Cluster.alloc c ~node:2 ~bunch:bs [| Value.Ref x |] in
  Cluster.add_root c ~node:2 s;
  ignore (Cluster.drain c);
  check_bool "x not cached at the scion node" false (Cluster.cached_at c ~node:2 ~uid:x_uid);
  (* The owner's BGC must not reclaim x, round after round. *)
  for _ = 1 to 3 do
    ignore (Cluster.bgc c ~node:0 ~bunch:bt);
    ignore (Cluster.drain c);
    check_bool "x survives at its owner" true (alive c x_uid)
  done;
  ignore (Cluster.gc_round c);
  check_bool "x survives full rounds" true (alive c x_uid);
  (* Dropping the reference lets the whole chain unwind. *)
  let s' = Cluster.acquire_write c ~node:2 s in
  Cluster.write c ~node:2 s' 0 Value.nil;
  Cluster.release c ~node:2 s';
  ignore (Cluster.collect_until_quiescent c ());
  check_bool "x reclaimed once the reference is gone" false (alive c x_uid);
  assert_lint c

(* Race 2: an intra-bunch pointer stored at a node that never cached the
   target.  No SSP describes the dependency; the barrier's immediate
   entering registration must carry it until the next BGC advertises a
   conservative exiting entry. *)
let test_uncached_intra_bunch_store () =
  let c = Cluster.create ~nodes:2 ~trace_events:true () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let x_uid = Cluster.uid_at c ~node:0 x in
  let s = Cluster.alloc c ~node:0 ~bunch:b [| Value.nil |] in
  Cluster.add_root c ~node:0 x;
  Cluster.add_root c ~node:0 s;
  (* N1 takes s (not x) and links x in; then x's original root drops. *)
  let s1 = Cluster.acquire_write c ~node:1 s in
  Cluster.write c ~node:1 s1 0 (Value.Ref x);
  Cluster.release c ~node:1 s1;
  check_bool "x not cached at N1" false (Cluster.cached_at c ~node:1 ~uid:x_uid);
  Cluster.remove_root c ~node:0 x;
  (* The owner's BGC runs before N1 ever collects: N0's stale copy of s
     does not show the new edge, so only the barrier registration
     protects x. *)
  let r = Cluster.bgc c ~node:0 ~bunch:b in
  check_int "x not reclaimed" 0
    (if alive c x_uid then 0 else r.Bmx_gc.Collect.r_reclaimed);
  check_bool "x alive" true (alive c x_uid);
  ignore (Cluster.collect_until_quiescent c ());
  check_bool "x still alive at quiescence" true (alive c x_uid);
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c));
  (* Unlink: x dies. *)
  let s1' = Cluster.acquire_write c ~node:1 s1 in
  Cluster.write c ~node:1 s1' 0 Value.nil;
  Cluster.release c ~node:1 s1';
  ignore (Cluster.collect_until_quiescent c ());
  check_bool "x reclaimed after unlink" false (alive c x_uid);
  assert_lint c

(* Race 4: a reachability table SENT before a registration but DELIVERED
   after it must not cancel the registration (stream logical clocks). *)
let test_stale_table_vs_fresh_registration () =
  let c = Cluster.create ~nodes:2 ~trace_events:true () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let x_uid = Cluster.uid_at c ~node:0 x in
  let s = Cluster.alloc c ~node:0 ~bunch:b [| Value.nil |] in
  Cluster.add_root c ~node:0 x;
  Cluster.add_root c ~node:0 s;
  (* N1 caches s and runs a BGC: its table (claiming nothing about x) is
     QUEUED towards N0 but not delivered. *)
  let s1 = Cluster.acquire_read c ~node:1 s in
  Cluster.release c ~node:1 s1;
  let _ = Cluster.bgc c ~node:1 ~bunch:b in
  check_bool "table in flight" true (Net.pending (Cluster.net c) > 0);
  (* Now N1 links x into s (registration at N0, logically newer), and
     x's root drops. *)
  let s1' = Cluster.acquire_write c ~node:1 s1 in
  Cluster.write c ~node:1 s1' 0 (Value.Ref x);
  Cluster.release c ~node:1 s1';
  Cluster.remove_root c ~node:0 x;
  (* The stale table arrives AFTER the registration. *)
  ignore (Cluster.drain c);
  let _ = Cluster.bgc c ~node:0 ~bunch:b in
  check_bool "stale table did not cancel the fresh registration" true
    (alive c x_uid);
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c));
  assert_lint c

(* Race 5 (§4.5's replies): from-space reuse synchronously informs every
   replica holder before dropping the forwarders, so a later grant
   carrying the old address still lands. *)
let test_reclaim_informs_before_dropping () =
  let c = Cluster.create ~nodes:3 ~trace_events:true () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 5 |] in
  let s = Cluster.alloc c ~node:0 ~bunch:b [| Value.Ref x |] in
  Cluster.add_root c ~node:0 s;
  (* N1 owns s (with its pointer to x at the old address). *)
  let s1 = Cluster.acquire_write c ~node:1 s in
  Cluster.release c ~node:1 s1;
  (* N0 moves x and reuses its from-space: N1 must be told synchronously. *)
  let _ = Cluster.bgc c ~node:0 ~bunch:b in
  let _ = Cluster.reclaim_from_space c ~node:0 ~bunch:b in
  (* A third node acquires s from N1; invariant 1 must give it a valid
     path to x even though s's field holds x's old address. *)
  let s2 = Cluster.acquire_read c ~node:2 s1 in
  (match Cluster.read c ~node:2 s2 0 with
  | Value.Ref p ->
      let st2 = Protocol.store (Cluster.proto c) 2 in
      check_bool "x reachable at N2 through the old address" true
        (Store.resolve st2 p <> None
        || Protocol.uid_of_addr (Cluster.proto c) (Store.current_addr st2 p) <> None)
  | Value.Data _ -> Alcotest.fail "s.f0 should be a pointer");
  Cluster.release c ~node:2 s2;
  ignore (Cluster.gc_round c);
  check_bool "x alive everywhere it should be" true
    (alive c (Cluster.uid_at c ~node:0 x));
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c));
  assert_lint c

(* Race 6: during from-space reuse, the owner's copy may already sit
   outside the doomed range; the reclaiming node must still move its OWN
   replica out before dropping the segment. *)
let test_reclaim_relocates_local_replica () =
  let c = Cluster.create ~nodes:2 ~trace_events:true () in
  let b = Cluster.new_bunch c ~home:1 in
  let x = Cluster.alloc c ~node:1 ~bunch:b [| Value.Data 9 |] in
  let x_uid = Cluster.uid_at c ~node:1 x in
  Cluster.add_root c ~node:1 x;
  (* N0 caches x at the original address and roots it. *)
  let x0 = Cluster.acquire_read c ~node:0 x in
  Cluster.release c ~node:0 x0;
  Cluster.add_root c ~node:0 x0;
  (* The owner N1 moves its copy (BGC); N0 still holds the old address. *)
  let _ = Cluster.bgc c ~node:1 ~bunch:b in
  (* N0 collects and reuses its from-space: its replica (in the doomed
     range) must be relocated, not dropped. *)
  let _ = Cluster.bgc c ~node:0 ~bunch:b in
  let _ = Cluster.reclaim_from_space c ~node:0 ~bunch:b in
  check_bool "replica still cached at N0" true (Cluster.cached_at c ~node:0 ~uid:x_uid);
  check_bool "root still resolves at N0" true
    (Store.resolve (Protocol.store (Cluster.proto c) 0) x0 <> None
    || Store.addr_of_uid (Protocol.store (Cluster.proto c) 0) x_uid <> None);
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c));
  assert_lint c

(* Race 7: ownership recovery.  The recorded owner's replica can die
   while another replica survives; the survivor adopts ownership so
   acquires keep working. *)
let test_ownership_adoption () =
  let c = Cluster.create ~nodes:2 ~trace_events:true () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 3 |] in
  let x_uid = Cluster.uid_at c ~node:0 x in
  let x1 = Cluster.acquire_read c ~node:1 x in
  Cluster.release c ~node:1 x1;
  Cluster.add_root c ~node:1 x1;
  (* Simulate the owner's replica having been collected in an unlucky
     interleaving: remove it directly. *)
  let proto = Cluster.proto c in
  Store.remove (Protocol.store proto 0) x;
  check_bool "owner record still says N0" true (Protocol.owner_of proto x_uid = Some 0);
  (* N1 adopts. *)
  Protocol.adopt_ownership proto ~node:1 ~uid:x_uid;
  check (Alcotest.option Alcotest.int) "ownership moved" (Some 1)
    (Protocol.owner_of proto x_uid);
  (* Acquires route to the new owner and work. *)
  let xa = Cluster.acquire_write c ~node:1 x1 in
  Cluster.write c ~node:1 xa 0 (Value.Data 4);
  Cluster.release c ~node:1 xa;
  check_bool "data accessible after adoption" true
    (Value.equal (Cluster.read c ~node:1 xa 0) (Value.Data 4));
  (* Adoption refuses illegal cases. *)
  Alcotest.check_raises "cannot adopt without a copy"
    (Invalid_argument "Protocol.adopt_ownership: adopting node has no copy")
    (fun () -> Protocol.adopt_ownership proto ~node:0 ~uid:x_uid);
  assert_lint c

(* Logical clocks: Net.current_seq and registration stamping. *)
let test_stream_logical_clocks () =
  let stats = Stats.create_registry () in
  let net : unit Net.t = Net.create ~stats () in
  Net.set_handler net (fun _ -> ());
  check_int "virgin stream" 0 (Net.current_seq net ~src:0 ~dst:1);
  Net.send net ~src:0 ~dst:1 ~kind:Net.Stub_table ();
  Net.record_rpc net ~src:0 ~dst:1 ~kind:Net.Token_request ();
  check_int "two messages stamped" 2 (Net.current_seq net ~src:0 ~dst:1);
  check_int "other direction untouched" 0 (Net.current_seq net ~src:1 ~dst:0);
  (* Directory: newer registrations survive older tables. *)
  let d = Bmx_dsm.Directory.create ~node:5 in
  Directory.add_entering d ~seq:7 ~uid:1 ~from:2;
  check_int "registration seq" 7 (Directory.entering_registration_seq d ~uid:1 ~from:2);
  Directory.add_entering d ~seq:3 ~uid:1 ~from:2;
  check_int "seq only moves forward" 7
    (Directory.entering_registration_seq d ~uid:1 ~from:2);
  Directory.add_entering d ~seq:9 ~uid:1 ~from:2;
  check_int "newer seq accepted" 9
    (Directory.entering_registration_seq d ~uid:1 ~from:2)

let () =
  Alcotest.run "races"
    [
      ( "protection races (DESIGN.md par. 5)",
        [
          Alcotest.test_case "phantom scions protect uncached targets" `Quick
            test_phantom_scion_protects;
          Alcotest.test_case "uncached intra-bunch stores protected" `Quick
            test_uncached_intra_bunch_store;
          Alcotest.test_case "stale tables cannot cancel fresh registrations" `Quick
            test_stale_table_vs_fresh_registration;
          Alcotest.test_case "from-space reuse waits for replies" `Quick
            test_reclaim_informs_before_dropping;
          Alcotest.test_case "reuse relocates the local replica" `Quick
            test_reclaim_relocates_local_replica;
          Alcotest.test_case "ownership adoption" `Quick test_ownership_adoption;
          Alcotest.test_case "stream logical clocks" `Quick test_stream_logical_clocks;
        ] );
    ]
