(** Mixed read/write/ownership-migration workloads over a cluster.

    The driver models the applications of §1: several nodes repeatedly
    acquire tokens, read and update shared objects, relink references
    (through the write barrier) and occasionally drop or add roots.  It is
    the engine behind experiments E5, E6 and E8.

    Every op is gated by a legality check — a mutator can only name
    objects still reachable from some root.  That check is served by an
    {e incremental} reachability mirror ({!Reach}) kept exact across root
    churn and pointer relinks, so the per-op cost does not grow with the
    heap; [full_rescan_legality] switches back to the memoized
    from-scratch recomputation ({!Bmx.Audit.union_reachable}) as the slow
    reference implementation (both modes draw identically from the RNG,
    so they execute the same op sequence). *)

type config = {
  nodes : int;
  bunches : int;
  objects_per_bunch : int;
  out_degree : int;  (** reference fields per object *)
  cross_bunch_prob : float;
  ops : int;  (** mutator operations per run *)
  write_prob : float;  (** probability an op is an update (else a read) *)
  relink_prob : float;  (** probability an update rewrites a pointer field *)
  root_churn_prob : float;  (** probability an op drops / re-adds a root *)
  seed : int;
  mode : Bmx_dsm.Protocol.mode;
  update_policy : Bmx_dsm.Protocol.update_policy;
  full_rescan_legality : bool;
      (** use the old full-traversal legality memo instead of the
          incremental mirror (complexity-test baseline; default false) *)
  shards : int;  (** registry shards for the cluster (default 1) *)
  locality : int;
      (** when positive, node [n] only operates on objects of bunches
          [n .. n+locality-1] (mod bunches) — a fixed per-node working
          set, so per-node traffic stays flat as nodes are added (the
          scaling sweeps).  [0] (default) keeps the historical
          uniform-random behaviour, drawing from the RNG in the same
          order as before the knob existed. *)
}

val default : config

type t

val setup : config -> t
(** Build the cluster and its object population; replicate a working set
    on every node; drain; seed the legality mirror from cluster truth. *)

val cluster : t -> Bmx.Cluster.t
val objects : t -> Bmx_util.Addr.t array
val config : t -> config

val run_ops : t -> ?resync_first:bool -> ?ops:int -> unit -> unit
(** Execute mutator operations (default: [config.ops]).  [resync_first]
    (default [true]) re-extracts the legality mirror from cluster truth
    before the batch — callers may have crashed nodes or written objects
    directly since the last one.  Pass [false] only when nothing but
    driver ops touched the cluster, e.g. to measure steady-state per-op
    cost. *)

val handle : t -> node:Bmx_util.Ids.Node.t -> int -> Bmx_util.Addr.t
(** The address under which the node's mutator currently knows object
    [i] — its local handle, updated on every acquire. *)

val live_roots : t -> int
(** Roots currently held across all nodes. *)

val check_memo : t -> (unit, string) result
(** Compare the incremental legality mirror object-by-object against the
    from-scratch oracle ({!Bmx.Audit.union_reachable}); [Error] names the
    first divergent indexes.  Always [Ok] under [full_rescan_legality]
    (there is no mirror to diverge). *)
