(* The flat arena under the microscope: the boxed-record heap model the
   repo used before the flat representation is rebuilt here as a mirror
   (plain OCaml records with a [Value.t array]), and a random op stream —
   alloc / set / fixup / clone / overwrite / free — is applied to both.
   After every op the two worlds must agree observationally: field values
   (decoded and raw), version counters, arity, size, pointer lists, and
   use-after-free behaviour (any access through a handle whose slot was
   reclaimed must raise, never read recycled memory).

   Mutation checks (each of these hand-applied breakages makes the suite
   fail — kept as documentation of what the tests actually pin down):
   - dropping the [lor 1] tag in [Value.to_raw (Data n)] conflates data
     with pointers: the "raw words round-trip" property and the mirror
     model's pointer lists diverge;
   - decoding data with [lsr] instead of [asr] loses negative payloads:
     "raw words round-trip" fails on [Data (-1)];
   - skipping the generation bump in [Flatheap.free] lets a stale handle
     read the slot's next tenant: "use-after-free raises" fails;
   - forgetting [bump_version] in [Heap_obj.set] (or bumping it in
     [fixup]) diverges the version counters in the mirror property;
   - recycling a freed slot without zero-filling leaks the previous
     object's fields into a fresh alloc: the mirror property catches the
     first [get] of a field the fresh object never wrote. *)

open Bmx_util
module Flatheap = Bmx_memory.Flatheap
module Heap_obj = Bmx_memory.Heap_obj
module Value = Bmx_memory.Value

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* --- unit tests -------------------------------------------------------- *)

let test_raw_roundtrip () =
  List.iter
    (fun v ->
      check_bool
        (Format.asprintf "round-trip %a" Value.pp v)
        true
        (Value.equal v (Value.of_raw (Value.to_raw v))))
    [
      Value.nil;
      Value.Data 0;
      Value.Data 1;
      Value.Data (-1);
      (* payloads are 62-bit (one tag bit, one sign bit) *)
      Value.Data 0x1FFF_FFFF_FFFF_FFFF;
      Value.Data (-0x2000_0000_0000_0000);
      Value.Ref 1;
      Value.Ref 0x3FFF_FFFF;
    ];
  check_int "nil is the zero word" 0 (Value.to_raw Value.nil);
  check_bool "nil is not a pointer" false (Value.raw_is_pointer Value.raw_nil);
  check_bool "data is not a pointer" false
    (Value.raw_is_pointer (Value.to_raw (Value.Data 4)));
  check_bool "ref is a pointer" true
    (Value.raw_is_pointer (Value.to_raw (Value.Ref 4)))

let test_use_after_free_raises () =
  let h = Flatheap.create ~initial_words:64 () in
  let o =
    Heap_obj.make ~heap:h ~uid:1 ~bunch:1
      ~fields:[| Value.Data 7; Value.Ref 3 |] ()
  in
  check_int "live before free" 1 (Flatheap.live h);
  Heap_obj.free o;
  check_int "live after free" 0 (Flatheap.live h);
  let raises f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "get raises" true (raises (fun () -> Heap_obj.get o 0));
  check_bool "version raises" true (raises (fun () -> Heap_obj.version o));
  check_bool "set raises" true
    (raises (fun () -> Heap_obj.set o 0 (Value.Data 9); 0));
  check_bool "double free raises" true
    (raises (fun () -> Heap_obj.free o; 0));
  (* The slot is recycled for the next same-arity alloc; the stale handle
     must still raise rather than read the new tenant. *)
  let o2 =
    Heap_obj.make ~heap:h ~uid:2 ~bunch:1
      ~fields:[| Value.Data 42; Value.nil |] ()
  in
  check_int "slot recycled" o.Heap_obj.base o2.Heap_obj.base;
  check_bool "stale handle still raises" true
    (raises (fun () -> Heap_obj.get o 0))

let test_free_list_reuse_bounds_growth () =
  let h = Flatheap.create ~initial_words:64 () in
  let batch () =
    let os =
      List.init 50 (fun i ->
          Heap_obj.make ~heap:h ~uid:i ~bunch:1
            ~fields:[| Value.Data i; Value.Data (-i); Value.nil |] ())
    in
    List.iter Heap_obj.free os
  in
  batch ();
  let cap = Flatheap.capacity h in
  for _ = 1 to 20 do batch () done;
  check_int "arena growth tracks peak live, not total allocs" cap
    (Flatheap.capacity h)

let test_zero_filled_alloc_reads_nil () =
  let h = Flatheap.create () in
  let base, gen = Flatheap.alloc h ~nfields:4 in
  for i = 0 to 3 do
    check_bool "fresh slot field is nil" true
      (Value.equal Value.nil (Value.of_raw (Flatheap.get_raw h ~base ~gen i)))
  done

let test_mark_bitmap () =
  let h = Flatheap.create () in
  let o =
    Heap_obj.make ~heap:h ~uid:9 ~bunch:2 ~fields:[| Value.Data 1 |] ()
  in
  let o2 =
    Heap_obj.make ~heap:h ~uid:10 ~bunch:2 ~fields:[| Value.Data 2 |] ()
  in
  check_bool "fresh unmarked" false (Heap_obj.is_marked o);
  Heap_obj.mark o;
  check_bool "marked" true (Heap_obj.is_marked o);
  check_bool "neighbour untouched" false (Heap_obj.is_marked o2);
  Heap_obj.unmark o;
  check_bool "unmarked" false (Heap_obj.is_marked o)

let test_alloc_copy_cross_arena () =
  let a = Flatheap.create () and b = Flatheap.create () in
  let o =
    Heap_obj.make ~version:5 ~heap:a ~uid:3 ~bunch:7
      ~fields:[| Value.Ref 12; Value.Data (-4); Value.nil |] ()
  in
  let c = Heap_obj.clone ~heap:b o in
  check_bool "clone landed in the other arena" true (c.Heap_obj.heap == b);
  check_int "uid preserved" o.Heap_obj.uid c.Heap_obj.uid;
  check_int "version preserved (a GC copy is not a write)" 5
    (Heap_obj.version c);
  for i = 0 to 2 do
    check_bool "field preserved" true
      (Value.equal (Heap_obj.get o i) (Heap_obj.get c i))
  done;
  (* Copies are independent: mutating one does not touch the other. *)
  Heap_obj.set c 1 (Value.Data 999);
  check_bool "copy independence" true
    (Value.equal (Value.Data (-4)) (Heap_obj.get o 1))

(* --- mirror-model property --------------------------------------------- *)

type model = {
  m_uid : int;
  mutable m_version : int;
  m_fields : Value.t array;
}

let random_value rng =
  match Rng.int rng 4 with
  | 0 -> Value.nil
  | 1 -> Value.Data (Rng.int rng 10_000 - 5_000)
  | 2 -> Value.Ref (1 + Rng.int rng 1_000)
  | _ -> Value.Data (Rng.int rng 3)

let agree obj m =
  Heap_obj.num_fields obj = Array.length m.m_fields
  && Heap_obj.version obj = m.m_version
  && obj.Heap_obj.uid = m.m_uid
  && Array.for_all (fun x -> x)
       (Array.mapi
          (fun i mv ->
            Value.equal (Heap_obj.get obj i) mv
            && Heap_obj.get_raw obj i = Value.to_raw mv)
          m.m_fields)
  &&
  let ptrs = List.filter_map
    (function Value.Ref a when a <> Addr.null -> Some a | _ -> None)
    (Array.to_list m.m_fields)
  in
  Heap_obj.pointers obj = ptrs

let prop_mirror =
  QCheck.Test.make ~name:"flat arena == boxed-record model under random ops"
    ~count:60
    QCheck.(pair small_nat (small_list small_nat))
    (fun (seed, steps) ->
      let rng = Rng.make (seed + 1) in
      let heap = Flatheap.create ~initial_words:32 () in
      let live : (Heap_obj.t * model) array ref = ref [||] in
      let dead : Heap_obj.t list ref = ref [] in
      let next_uid = ref 0 in
      let push pair = live := Array.append !live [| pair |] in
      let remove k =
        let n = Array.length !live in
        let out = Array.init (n - 1) (fun i -> !live.(if i < k then i else i + 1)) in
        live := out
      in
      let alloc () =
        let nf = 1 + Rng.int rng 4 in
        let fields = Array.init nf (fun _ -> random_value rng) in
        incr next_uid;
        let obj =
          Heap_obj.make ~heap ~uid:!next_uid ~bunch:1
            ~fields:(Array.copy fields) ()
        in
        push (obj, { m_uid = !next_uid; m_version = 0; m_fields = fields })
      in
      alloc ();
      let step op =
        let n = Array.length !live in
        match op mod 6 with
        | 0 -> alloc ()
        | 1 when n > 0 ->
            (* mutator write: field + version *)
            let obj, m = !live.(Rng.int rng n) in
            let i = Rng.int rng (Array.length m.m_fields) in
            let v = random_value rng in
            Heap_obj.set obj i v;
            m.m_fields.(i) <- v;
            m.m_version <- m.m_version + 1
        | 2 when n > 0 ->
            (* GC retarget: field without version *)
            let obj, m = !live.(Rng.int rng n) in
            let i = Rng.int rng (Array.length m.m_fields) in
            let v = random_value rng in
            Heap_obj.fixup obj i v;
            m.m_fields.(i) <- v
        | 3 when n > 0 ->
            (* collector copy *)
            let obj, m = !live.(Rng.int rng n) in
            let c = Heap_obj.clone obj in
            push (c, { m with m_fields = Array.copy m.m_fields })
        | 4 when n > 1 ->
            (* forward: replace one copy's contents with another's
               (the store's install-over-existing path) *)
            let k1 = Rng.int rng n and k2 = Rng.int rng n in
            let o1, m1 = !live.(k1) and o2, m2 = !live.(k2) in
            if Array.length m1.m_fields = Array.length m2.m_fields
               && m1.m_uid = m2.m_uid
            then begin
              Heap_obj.overwrite o1 ~from:o2;
              Array.blit m2.m_fields 0 m1.m_fields 0 (Array.length m2.m_fields);
              m1.m_version <- m2.m_version
            end
        | 5 when n > 1 ->
            (* reclaim *)
            let k = Rng.int rng n in
            let obj, _ = !live.(k) in
            Heap_obj.free obj;
            dead := obj :: !dead;
            remove k
        | _ -> ()
      in
      List.iter step steps;
      Array.for_all (fun (obj, m) -> agree obj m) !live
      && List.for_all
           (fun obj ->
             try ignore (Heap_obj.get obj 0); false
             with Invalid_argument _ -> true)
           !dead)

let () =
  Alcotest.run "flatheap"
    [
      ( "arena",
        [
          Alcotest.test_case "raw words round-trip" `Quick test_raw_roundtrip;
          Alcotest.test_case "use-after-free raises" `Quick
            test_use_after_free_raises;
          Alcotest.test_case "free-list reuse bounds growth" `Quick
            test_free_list_reuse_bounds_growth;
          Alcotest.test_case "fresh slots read as nil" `Quick
            test_zero_filled_alloc_reads_nil;
          Alcotest.test_case "mark bitmap" `Quick test_mark_bitmap;
          Alcotest.test_case "cross-arena copy" `Quick
            test_alloc_copy_cross_arena;
        ] );
      ( "model",
        [
          QCheck_alcotest.to_alcotest
            ~rand:(Random.State.make [| 20260808 |])
            prop_mirror;
        ] );
    ]
