(* Gate for the @bench-smoke alias: re-parse the BENCH line the
   e20-smoke run printed and fail the build if the run broke one of the
   tracked invariants — the collector must never touch the DSM token
   machinery (§5), and the steady-state delta encoding must not cost
   more than full tables would have.  The partitioned configuration
   additionally gates the degraded mode: §5 must hold across a network
   cut, and the delta-table streams must resynchronize within a bounded
   number of cleaner cycles after heal.

   Two performance gates ride along, locking in the flat-heap hot path:
   a wall-clock throughput floor (the pre-flat-heap driver managed ~155
   ops/sec at 8x1280; even the miniature smoke configuration must clear
   ten times that) and an OCaml-runtime allocation budget per mutator
   op (the legality memo, handle table and op dispatch are flat arrays
   and bitmaps; only Rng.float boxing and a few option cells remain). *)

module Json = Bmx_obs.Json

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let int_member name obj =
  match Json.member name obj with
  | Some (Json.Int i) -> i
  | Some _ -> die "bench-smoke: %S is not an integer" name
  | None -> die "bench-smoke: missing field %S" name

let float_member name obj =
  match Json.member name obj with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | Some _ -> die "bench-smoke: %S is not a number" name
  | None -> die "bench-smoke: missing field %S" name

(* 10x the seed driver's 8x1280 wall-clock throughput. *)
let ops_per_sec_floor = 1550.0

(* Minor words allocated per mutator op, measured across the whole
   workload batch.  An op is a token acquire + field access + release
   through the full DSM protocol simulation (messages, trace events),
   which legitimately allocates a few hundred words; the driver's own
   bookkeeping — legality memo, rooted set, node/handle lookup — is flat
   arrays and bitmaps and contributes almost nothing.  What matters is
   that the figure is a heap-size-independent constant (the complexity
   tests compare it across heap sizes); the budget here catches a
   reintroduced per-op traversal, not ordinary message allocation.
   The smoke configuration measures a deterministic 737 words/op once
   per-sample directory scans were gone (the e20 sweep stays flat,
   743..1409 across 4..16 nodes); ~13% of headroom absorbs compiler
   and runtime drift while still catching any O(population) cost that
   sneaks back onto the per-op or per-sample path. *)
let minor_words_per_op_budget = 832.0

let () =
  let path = Sys.argv.(1) in
  let ic = open_in path in
  let bench = ref None in
  (try
     while true do
       let line = input_line ic in
       if String.length line > 6 && String.sub line 0 6 = "BENCH " then
         bench := Some (String.sub line 6 (String.length line - 6))
     done
   with End_of_file -> close_in ic);
  let raw =
    match !bench with
    | Some s -> s
    | None -> die "bench-smoke: no BENCH line in %s" path
  in
  let json =
    match Json.parse raw with
    | Ok j -> j
    | Error e -> die "bench-smoke: BENCH line does not parse: %s" e
  in
  let configs =
    match Json.member "configs" json with
    | Some (Json.List l) -> l
    | _ -> die "bench-smoke: no configs list"
  in
  if configs = [] then die "bench-smoke: empty configs list";
  List.iter
    (fun cfg ->
      let nodes = int_member "nodes" cfg in
      let tokens = int_member "gc_token_acquires" cfg in
      if tokens <> 0 then
        die "bench-smoke: %d-node run acquired %d GC tokens (must be 0)"
          nodes tokens;
      if Json.member "partitioned" cfg = Some (Json.Bool true) then begin
        (if Json.member "converged" cfg <> Some (Json.Bool true) then
           die
             "bench-smoke: %d-node partitioned run never stopped resyncing \
              after heal"
             nodes);
        let rounds = int_member "heal_resync_rounds" cfg in
        if rounds > 4 then
          die
            "bench-smoke: %d-node partitioned run took %d cleaner cycles to \
             resync after heal (bound 4)"
            nodes rounds;
        Printf.printf
          "bench-smoke: %d nodes partitioned ok — gc tokens 0, resynced %d \
           cycle(s) after heal\n"
          nodes rounds
      end
      else begin
      let ops_per_sec = float_member "ops_per_sec" cfg in
      if ops_per_sec < ops_per_sec_floor then
        die
          "bench-smoke: %d-node run managed %.0f ops/sec (floor %.0f — the \
           superlinear legality memo is back?)"
          nodes ops_per_sec ops_per_sec_floor;
      let words_per_op = float_member "minor_words_per_op" cfg in
      if words_per_op > minor_words_per_op_budget then
        die
          "bench-smoke: %d-node run allocated %.0f minor words per op \
           (budget %.0f — a hot path regained a per-op allocation?)"
          nodes words_per_op minor_words_per_op_budget;
      let delta = int_member "steady_delta_bytes" cfg in
      let full = int_member "steady_full_bytes" cfg in
      if delta > full then
        die
          "bench-smoke: %d-node steady-state delta bytes (%d) exceed \
           full-table bytes (%d)"
          nodes delta full;
      Printf.printf
        "bench-smoke: %d nodes ok — gc tokens 0, %.0f ops/sec (floor %.0f), \
         %.0f alloc words/op (budget %.0f), steady delta %dB <= full %dB \
         (%.1f%%)\n"
        nodes ops_per_sec ops_per_sec_floor words_per_op
        minor_words_per_op_budget delta full
        (if full = 0 then 0.0 else 100.0 *. float_of_int delta /. float_of_int full)
      end)
    configs
