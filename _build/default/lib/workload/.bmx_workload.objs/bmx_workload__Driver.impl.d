lib/workload/driver.ml: Addr Array Bmx Bmx_dsm Bmx_memory Bmx_util Graphgen Ids List Rng
