examples/design_db.mli:
