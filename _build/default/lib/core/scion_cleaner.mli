(** The scion cleaner (§6).

    After a BGC reconstructs a bunch replica's stub table and exiting
    ownerPtr list (§4.3), the full tables are sent to every node that
    either caches a copy of the same bunch or holds scions matching stubs
    of the old or new tables.  The cleaner at each receiver removes every
    scion no longer covered by a stub, and reconciles the entering
    ownerPtrs with the sender's exiting list — thereby updating the roots
    of the receiver's next BGC.

    Because each message carries the {e complete} reachability tables, the
    messages are idempotent: losses are repaired by the next send and
    duplicates are harmless; the only transport requirement is per-pair
    FIFO, enforced with the sequence numbers the network already stamps
    (§6.1). *)

type table_msg = {
  tm_sender : Bmx_util.Ids.Node.t;
  tm_bunch : Bmx_util.Ids.Bunch.t;
  tm_inter_stubs : Ssp.inter_stub list;
  tm_intra_stubs : Ssp.intra_stub list;
  tm_exiting : (Bmx_util.Ids.Uid.t * Bmx_util.Ids.Node.t) list;
      (** the sender's exiting ownerPtrs: object and the owner node the
          sender believes in *)
}

val msg_bytes : table_msg -> int

val receive : Gc_state.t -> at:Bmx_util.Ids.Node.t -> seq:int -> table_msg -> unit
(** Process one reachability message at node [at].  Stale or duplicated
    messages (sequence number not beyond the last processed for the same
    (sender, bunch) stream) are ignored. *)

val destinations :
  Gc_state.t ->
  node:Bmx_util.Ids.Node.t ->
  bunch:Bmx_util.Ids.Bunch.t ->
  old_inter:Ssp.inter_stub list ->
  new_inter:Ssp.inter_stub list ->
  old_intra:Ssp.intra_stub list ->
  new_intra:Ssp.intra_stub list ->
  exiting:(Bmx_util.Ids.Uid.t * Bmx_util.Ids.Node.t) list ->
  Bmx_util.Ids.Node.t list
(** The nodes a BGC's reachability information must reach (§4.1): replicas
    of the bunch, scion holders of old and new stubs, and the owners the
    exiting list names. *)

val broadcast :
  Gc_state.t ->
  node:Bmx_util.Ids.Node.t ->
  bunch:Bmx_util.Ids.Bunch.t ->
  old_inter:Ssp.inter_stub list ->
  old_intra:Ssp.intra_stub list ->
  exiting:(Bmx_util.Ids.Uid.t * Bmx_util.Ids.Node.t) list ->
  int
(** Send the node's (already replaced) current tables for the bunch to all
    {!destinations} as background messages; returns the number of messages
    sent.  Re-running after a loss simply resends — idempotence makes that
    safe. *)
