open Bmx_util

type cell = Object of Heap_obj.t | Forwarder of Addr.t

type t = {
  node : Ids.Node.t;
  registry : Registry.t;
  arena : Flatheap.t; (* flat backing store for objects this store allocates *)
  cells : (Addr.t, cell) Hashtbl.t;
  segments : (Addr.t, Segment.t) Hashtbl.t; (* keyed by range.lo *)
  seg_order : Addr.t list ref Ids.Bunch_tbl.t; (* range.lo per bunch, oldest first *)
  active : Segment.t Ids.Bunch_tbl.t; (* current allocation segment per bunch *)
  uid_index : Addr.t Ids.Uid_tbl.t;
  known_addrs : Addr.t list ref Ids.Uid_tbl.t; (* newest first *)
  by_bunch : (Addr.t, Heap_obj.t) Hashtbl.t Ids.Bunch_tbl.t;
      (* live Object cells per bunch — kept in sync by install/remove so
         per-bunch scans don't walk the whole cell table *)
  slot_rc : (int, int) Hashtbl.t;
      (* arena slot -> number of cells holding it.  During an object move
         the same slot transiently sits at two addresses (installed at the
         new one before the old becomes a forwarder): the slot is freed
         back to its arena only when the last cell lets go. *)
  mutable objects : int; (* Object cells — O(1) [object_count] *)
  mutable objects_bytes : int; (* their total [size_bytes] — O(1) gauges *)
  mutable version : int;
      (* bumped on every semantic mutation (install/remove/forward/field
         write) — NOT on reads or path compression.  The economical BGC
         skips a collection whose node state shows the same composite
         version as its previous run. *)
}

let create ~registry ~node =
  {
    node;
    registry;
    arena = Flatheap.create ~initial_words:4096 ();
    cells = Hashtbl.create 256;
    segments = Hashtbl.create 16;
    seg_order = Ids.Bunch_tbl.create 8;
    active = Ids.Bunch_tbl.create 8;
    uid_index = Ids.Uid_tbl.create 256;
    known_addrs = Ids.Uid_tbl.create 256;
    by_bunch = Ids.Bunch_tbl.create 8;
    slot_rc = Hashtbl.create 256;
    objects = 0;
    objects_bytes = 0;
    version = 0;
  }

let mut_version t = t.version
let touch t = t.version <- t.version + 1

let arena t = t.arena

(* Arena ids and slot bases are both small; 20 bits of id over 44 bits of
   base keys a slot across arenas without allocating a tuple. *)
let slot_key (o : Heap_obj.t) = (Flatheap.id o.Heap_obj.heap lsl 44) lor o.Heap_obj.base

let rc_incr t o =
  let k = slot_key o in
  match Hashtbl.find_opt t.slot_rc k with
  | Some n -> Hashtbl.replace t.slot_rc k (n + 1)
  | None -> Hashtbl.add t.slot_rc k 1

let rc_decr t o =
  let k = slot_key o in
  match Hashtbl.find_opt t.slot_rc k with
  | Some n when n > 1 -> Hashtbl.replace t.slot_rc k (n - 1)
  | Some _ ->
      Hashtbl.remove t.slot_rc k;
      Heap_obj.free o
  | None -> () (* installed before this store tracked slots; leak, don't raise *)

let bunch_cells t bunch =
  match Ids.Bunch_tbl.find_opt t.by_bunch bunch with
  | Some h -> h
  | None ->
      let h = Hashtbl.create 64 in
      Ids.Bunch_tbl.add t.by_bunch bunch h;
      h

(* Let go of the cell currently at [a] (about to be overwritten, removed
   or turned into a forwarder): drop it from the bunch index, keep the
   O(1) object/byte counters honest, and release the arena slot if this
   was its last cell. *)
let unindex_cell t a =
  match Hashtbl.find_opt t.cells a with
  | Some (Object obj) ->
      Hashtbl.remove (bunch_cells t obj.Heap_obj.bunch) a;
      t.objects <- t.objects - 1;
      t.objects_bytes <- t.objects_bytes - Heap_obj.size_bytes obj;
      rc_decr t obj
  | Some (Forwarder _) | None -> ()

let node t = t.node
let registry t = t.registry

let add_segment t seg =
  let lo = seg.Segment.range.Addr.Range.lo in
  Hashtbl.replace t.segments lo seg;
  let bunch = seg.Segment.bunch in
  match Ids.Bunch_tbl.find_opt t.seg_order bunch with
  | Some r -> r := !r @ [ lo ]
  | None -> Ids.Bunch_tbl.add t.seg_order bunch (ref [ lo ])

let segment_at t a =
  match Registry.find t.registry a with
  | None -> None
  | Some e -> Hashtbl.find_opt t.segments e.Registry.range.Addr.Range.lo

let ensure_segment t ~range ~bunch =
  match Hashtbl.find_opt t.segments range.Addr.Range.lo with
  | Some seg -> seg
  | None ->
      let seg = Segment.make ~range ~bunch in
      (* This is a view of a range some other node allocates into: local
         bump allocation there would collide with the real allocator. *)
      Segment.seal seg;
      add_segment t seg;
      seg

let fresh_segment t ~bunch ?bytes () =
  let range = Registry.alloc_range t.registry ~bunch ~origin:t.node ?bytes () in
  let seg = Segment.make ~range ~bunch in
  add_segment t seg;
  seg

let segments_of_bunch t bunch =
  match Ids.Bunch_tbl.find_opt t.seg_order bunch with
  | None -> []
  | Some r -> List.filter_map (Hashtbl.find_opt t.segments) !r

let set_active_segment t ~bunch seg = Ids.Bunch_tbl.replace t.active bunch seg

let cells_in_range t range =
  Hashtbl.fold
    (fun a c acc -> if Addr.Range.contains range a then (a, c) :: acc else acc)
    t.cells []
  |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)

let mapped_bunches t =
  Ids.Bunch_tbl.fold (fun b _ acc -> b :: acc) t.seg_order []
  |> List.sort_uniq Ids.Bunch.compare

let cell t a = Hashtbl.find_opt t.cells a

let note_maps t a (obj : Heap_obj.t) =
  match segment_at t a with
  | None -> ()
  | Some seg ->
      Bitmap.set seg.Segment.object_map a;
      let n = Heap_obj.num_fields obj in
      for i = 0 to n - 1 do
        let field_addr = Addr.add a (Heap_obj.header_bytes + (i * Addr.word)) in
        if Segment.contains seg field_addr then
          Segment.note_pointer seg field_addr
            ~is_pointer:(Value.raw_is_pointer (Heap_obj.get_raw obj i))
      done

let install t a obj =
  (* Claim the new slot before letting go of the old cell: when [a] is
     re-installed with the handle it already holds, decr-then-incr would
     free the slot out from under us. *)
  touch t;
  rc_incr t obj;
  unindex_cell t a;
  t.objects <- t.objects + 1;
  t.objects_bytes <- t.objects_bytes + Heap_obj.size_bytes obj;
  Hashtbl.replace t.cells a (Object obj);
  Hashtbl.replace (bunch_cells t obj.Heap_obj.bunch) a obj;
  Ids.Uid_tbl.replace t.uid_index obj.Heap_obj.uid a;
  (match Ids.Uid_tbl.find_opt t.known_addrs obj.Heap_obj.uid with
  | Some r -> if (match !r with a' :: _ -> not (Addr.equal a a') | [] -> true) then r := a :: !r
  | None -> Ids.Uid_tbl.add t.known_addrs obj.Heap_obj.uid (ref [ a ]));
  (* Make sure the containing segment is mapped locally so the object-map
     stays accurate even for remotely allocated ranges. *)
  (match segment_at t a with
  | Some _ -> ()
  | None -> (
      match Registry.find t.registry a with
      | Some e -> ignore (ensure_segment t ~range:e.Registry.range ~bunch:e.Registry.bunch)
      | None -> ()));
  note_maps t a obj

let set_forwarder t ~at ~target =
  (* The forwarder graph must stay acyclic or [resolve] dies.  A cycle
     can only appear when the new link's target already chains back to
     [at] — possible under address reuse: an object moves A -> B -> A and
     a node that recorded the first hop later learns of the second (or a
     duplicated location update replays it).  The incoming link is the
     newest information, so break the stale orientation: re-point every
     hop of the back-chain at [target] and make [target] the endpoint. *)
  if
    (not (Addr.equal at target))
    && Hashtbl.find_opt t.cells at <> Some (Forwarder target)
  then begin
    touch t;
    (match Hashtbl.find_opt t.cells target with
    | Some (Forwarder _) ->
        let rec back_chain a acc fuel =
          if fuel = 0 then None
          else
            match Hashtbl.find_opt t.cells a with
            | Some (Forwarder next) ->
                if Addr.equal next at then Some (a :: acc)
                else back_chain next (a :: acc) (fuel - 1)
            | Some (Object _) | None -> None
        in
        (match back_chain target [] 4096 with
        | Some hops ->
            List.iter
              (fun h ->
                if not (Addr.equal h target) then
                  Hashtbl.replace t.cells h (Forwarder target))
              hops;
            Hashtbl.remove t.cells target
        | None -> ())
    | Some (Object _) | None -> ());
    unindex_cell t at;
    Hashtbl.replace t.cells at (Forwarder target);
    match segment_at t at with
    | Some seg -> Segment.clear_object seg at
    | None -> ()
  end

let remove t a =
  if Hashtbl.mem t.cells a then touch t;
  (match Hashtbl.find_opt t.cells a with
  | Some (Object obj) ->
      if Ids.Uid_tbl.find_opt t.uid_index obj.Heap_obj.uid = Some a then
        Ids.Uid_tbl.remove t.uid_index obj.Heap_obj.uid
  | Some (Forwarder _) | None -> ());
  unindex_cell t a;
  Hashtbl.remove t.cells a;
  match segment_at t a with
  | Some seg -> Segment.clear_object seg a
  | None -> ()

let resolve t a =
  (* Follow the forwarder chain, then path-compress it: every visited
     forwarder is retargeted at the endpoint, so chains stay short no
     matter how many times the object has moved. *)
  let rec go a visited fuel =
    if fuel = 0 then None
    else
      match Hashtbl.find_opt t.cells a with
      | Some (Object obj) -> Some (a, obj, visited)
      | Some (Forwarder target) -> go target (a :: visited) (fuel - 1)
      | None -> None
  in
  match go a [] 4096 with
  | None -> None
  | Some (endpoint, obj, visited) ->
      List.iter
        (fun hop ->
          if not (Addr.equal hop endpoint) then
            Hashtbl.replace t.cells hop (Forwarder endpoint))
        visited;
      Some (endpoint, obj)

let current_addr t a = match resolve t a with Some (a', _) -> a' | None -> a

let note_field_write t ~obj_addr ~index v =
  touch t;
  match segment_at t obj_addr with
  | None -> ()
  | Some seg ->
      let field_addr =
        Addr.add obj_addr (Heap_obj.header_bytes + (index * Addr.word))
      in
      if Segment.contains seg field_addr then
        Segment.note_pointer seg field_addr ~is_pointer:(Value.is_pointer v)

let alloc_into ?version t ~seg ~uid ~fields =
  let size = Heap_obj.header_bytes + (Array.length fields * Addr.word) in
  match Segment.alloc seg ~size with
  | None -> None
  | Some a ->
      let obj =
        Heap_obj.make ?version ~heap:t.arena ~uid ~bunch:seg.Segment.bunch ~fields ()
      in
      install t a obj;
      Some a

(* The collector's copy primitive: allocate segment space and blit the
   object's raw words into a fresh arena slot — no boxed field array. *)
let alloc_clone t ~seg ~of_ =
  match Segment.alloc seg ~size:(Heap_obj.size_bytes of_) with
  | None -> None
  | Some a ->
      install t a (Heap_obj.clone ~heap:t.arena of_);
      Some a

let alloc ?version t ~bunch ~uid ~fields =
  let seg =
    match Ids.Bunch_tbl.find_opt t.active bunch with
    | Some seg -> seg
    | None ->
        let seg =
          match
            List.find_opt
              (fun s -> s.Segment.role = Segment.Active)
              (segments_of_bunch t bunch)
          with
          | Some s -> s
          | None -> fresh_segment t ~bunch ()
        in
        Ids.Bunch_tbl.replace t.active bunch seg;
        seg
  in
  match alloc_into ?version t ~seg ~uid ~fields with
  | Some a -> a
  | None ->
      (* Segment overflow: grow the bunch (§2.1). *)
      let seg = fresh_segment t ~bunch () in
      Ids.Bunch_tbl.replace t.active bunch seg;
      (match alloc_into ?version t ~seg ~uid ~fields with
      | Some a -> a
      | None -> failwith "Store.alloc: object larger than a segment")

let objects_of_bunch t bunch =
  match Ids.Bunch_tbl.find_opt t.by_bunch bunch with
  | None -> []
  | Some h ->
      Hashtbl.fold (fun a obj acc -> (a, obj) :: acc) h []
      |> List.sort (fun (a, _) (b, _) -> Addr.compare a b)

let bunch_object_count t bunch =
  match Ids.Bunch_tbl.find_opt t.by_bunch bunch with
  | None -> 0
  | Some h -> Hashtbl.length h

let has_objects_of_bunch t bunch =
  match Ids.Bunch_tbl.find_opt t.by_bunch bunch with
  | None -> false
  | Some h -> Hashtbl.length h > 0

let addr_of_uid t uid = Ids.Uid_tbl.find_opt t.uid_index uid

let address_history t uid =
  match Ids.Uid_tbl.find_opt t.known_addrs uid with Some r -> !r | None -> []
let iter t f =
  Hashtbl.iter
    (fun a c ->
      Perfcount.(counters.store_cells_touched <- counters.store_cells_touched + 1);
      f a c)
    t.cells

let iter_objects_of_bunch t bunch f =
  match Ids.Bunch_tbl.find_opt t.by_bunch bunch with
  | None -> ()
  | Some h -> Hashtbl.iter f h

let object_count t = t.objects
let objects_bytes t = t.objects_bytes
let segment_count t = Hashtbl.length t.segments

let pp ppf t =
  Format.fprintf ppf "@[<v>store %a: %d objects, %d cells@]" Ids.Node.pp t.node
    (object_count t) (Hashtbl.length t.cells)
