test/test_rvm.ml: Alcotest Bmx_rvm Bytes Fun Option
