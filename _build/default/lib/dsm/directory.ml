open Bmx_util

type token_state = Invalid | Read | Write

let token_state_to_string = function
  | Invalid -> "i"
  | Read -> "r"
  | Write -> "w"

type record = {
  uid : Ids.Uid.t;
  mutable state : token_state;
  mutable held : bool;
  mutable is_owner : bool;
  mutable prob_owner : Ids.Node.t;
  mutable copyset : Ids.Node_set.t;
}

type t = {
  node : Ids.Node.t;
  records : record Ids.Uid_tbl.t;
  (* uid -> (origin node -> registration seq) *)
  entering : (Ids.Node.t, int) Hashtbl.t Ids.Uid_tbl.t;
}

let create ~node =
  { node; records = Ids.Uid_tbl.create 128; entering = Ids.Uid_tbl.create 32 }

let node t = t.node
let find t uid = Ids.Uid_tbl.find_opt t.records uid

let ensure t ~uid ~prob_owner =
  match find t uid with
  | Some r -> r
  | None ->
      let r =
        {
          uid;
          state = Invalid;
          held = false;
          is_owner = false;
          prob_owner;
          copyset = Ids.Node_set.empty;
        }
      in
      Ids.Uid_tbl.add t.records uid r;
      r

let register_new_object t ~uid =
  let r =
    {
      uid;
      state = Write;
      held = false;
      is_owner = true;
      prob_owner = t.node;
      copyset = Ids.Node_set.empty;
    }
  in
  Ids.Uid_tbl.replace t.records uid r;
  r

let forget t uid =
  Ids.Uid_tbl.remove t.records uid;
  Ids.Uid_tbl.remove t.entering uid

let add_entering t ~seq ~uid ~from =
  if not (Ids.Node.equal from t.node) then begin
    let tbl =
      match Ids.Uid_tbl.find_opt t.entering uid with
      | Some tbl -> tbl
      | None ->
          let tbl = Hashtbl.create 4 in
          Ids.Uid_tbl.add t.entering uid tbl;
          tbl
    in
    let prev = Option.value ~default:(-1) (Hashtbl.find_opt tbl from) in
    if seq > prev then Hashtbl.replace tbl from seq
  end

let remove_entering t ~uid ~from =
  match Ids.Uid_tbl.find_opt t.entering uid with
  | None -> ()
  | Some tbl ->
      Hashtbl.remove tbl from;
      if Hashtbl.length tbl = 0 then Ids.Uid_tbl.remove t.entering uid

let entering t uid =
  match Ids.Uid_tbl.find_opt t.entering uid with
  | Some tbl -> Hashtbl.fold (fun n _ acc -> Ids.Node_set.add n acc) tbl Ids.Node_set.empty
  | None -> Ids.Node_set.empty

let entering_registration_seq t ~uid ~from =
  match Ids.Uid_tbl.find_opt t.entering uid with
  | Some tbl -> Option.value ~default:0 (Hashtbl.find_opt tbl from)
  | None -> 0

let entering_uids t =
  Ids.Uid_tbl.fold
    (fun uid tbl acc -> if Hashtbl.length tbl = 0 then acc else uid :: acc)
    t.entering []

  |> List.sort Ids.Uid.compare

let iter t f = Ids.Uid_tbl.iter (fun _ r -> f r) t.records

let records t =
  Ids.Uid_tbl.fold (fun _ r acc -> r :: acc) t.records []
  |> List.sort (fun a b -> Ids.Uid.compare a.uid b.uid)

let pp_record ppf r =
  Format.fprintf ppf "@[<h>%a:%s%s%s->%a@]" Ids.Uid.pp r.uid
    (token_state_to_string r.state)
    (if r.is_owner then "o" else "")
    (if r.held then "!" else "")
    Ids.Node.pp r.prob_owner
