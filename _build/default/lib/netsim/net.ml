open Bmx_util

type kind =
  | Token_request
  | Token_grant
  | Invalidate
  | Object_fetch
  | Scion_message
  | Stub_table
  | Addr_update
  | Reclaim_request
  | Reclaim_reply
  | Refcount_op
  | App_message

let kind_to_string = function
  | Token_request -> "token_request"
  | Token_grant -> "token_grant"
  | Invalidate -> "invalidate"
  | Object_fetch -> "object_fetch"
  | Scion_message -> "scion_message"
  | Stub_table -> "stub_table"
  | Addr_update -> "addr_update"
  | Reclaim_request -> "reclaim_request"
  | Reclaim_reply -> "reclaim_reply"
  | Refcount_op -> "refcount_op"
  | App_message -> "app_message"

let pp_kind ppf k = Format.pp_print_string ppf (kind_to_string k)

let all_kinds =
  [
    Token_request; Token_grant; Invalidate; Object_fetch; Scion_message;
    Stub_table; Addr_update; Reclaim_request; Reclaim_reply; Refcount_op;
    App_message;
  ]

type 'p envelope = {
  src : Ids.Node.t;
  dst : Ids.Node.t;
  kind : kind;
  seq : int;
  payload : 'p;
}

type fault = { drop : float; dup : float; rng : Rng.t }

type 'p t = {
  stats : Stats.registry;
  queue : 'p envelope Queue.t;
  seqs : (Ids.Node.t * Ids.Node.t, int ref) Hashtbl.t;
  faults : (kind, fault) Hashtbl.t;
  mutable handler : ('p envelope -> unit) option;
}

let create ~stats () =
  {
    stats;
    queue = Queue.create ();
    seqs = Hashtbl.create 16;
    faults = Hashtbl.create 4;
    handler = None;
  }

let stats t = t.stats
let set_handler t f = t.handler <- Some f

let next_seq t ~src ~dst =
  let key = (src, dst) in
  match Hashtbl.find_opt t.seqs key with
  | Some r ->
      incr r;
      !r
  | None ->
      Hashtbl.add t.seqs key (ref 1);
      1

let account t ~kind ~bytes =
  Stats.incr t.stats ("net.sent." ^ kind_to_string kind);
  Stats.incr t.stats "net.sent.total";
  Stats.incr t.stats ~by:bytes ("net.bytes." ^ kind_to_string kind);
  Stats.incr t.stats ~by:bytes "net.bytes.total"

let send t ~src ~dst ~kind ?(bytes = 64) payload =
  let seq = next_seq t ~src ~dst in
  let env = { src; dst; kind; seq; payload } in
  match Hashtbl.find_opt t.faults kind with
  | Some { drop; dup; rng } ->
      if Rng.float rng 1.0 < drop then begin
        Stats.incr t.stats ("net.dropped." ^ kind_to_string kind);
        Stats.incr t.stats "net.dropped.total"
      end
      else begin
        account t ~kind ~bytes;
        Queue.add env t.queue;
        if Rng.float rng 1.0 < dup then begin
          Stats.incr t.stats ("net.duplicated." ^ kind_to_string kind);
          account t ~kind ~bytes;
          Queue.add env t.queue
        end
      end
  | None ->
      account t ~kind ~bytes;
      Queue.add env t.queue

let record_rpc t ~src ~dst ~kind ?(bytes = 64) () =
  ignore (next_seq t ~src ~dst);
  account t ~kind ~bytes

let record_piggyback t ~kind ~bytes =
  Stats.incr t.stats ("net.piggyback." ^ kind_to_string kind);
  Stats.incr t.stats ~by:bytes ("net.bytes." ^ kind_to_string kind);
  Stats.incr t.stats ~by:bytes "net.bytes.total";
  Stats.incr t.stats ~by:bytes "net.bytes.piggyback"

let step t =
  match Queue.take_opt t.queue with
  | None -> false
  | Some env ->
      let handler =
        match t.handler with
        | Some h -> h
        | None -> failwith "Net.step: no handler installed"
      in
      Stats.incr t.stats ("net.delivered." ^ kind_to_string env.kind);
      handler env;
      true

let drain t =
  let rec go n = if step t then go (n + 1) else n in
  go 0

let pending t = Queue.length t.queue

let current_seq t ~src ~dst =
  match Hashtbl.find_opt t.seqs (src, dst) with Some r -> !r | None -> 0
let set_fault t ~kind ~drop ~dup ~rng = Hashtbl.replace t.faults kind { drop; dup; rng }
let clear_faults t = Hashtbl.reset t.faults
let sent t kind = Stats.get t.stats ("net.sent." ^ kind_to_string kind)
let total_messages t = Stats.get t.stats "net.sent.total"
let total_bytes t = Stats.get t.stats "net.bytes.total"
