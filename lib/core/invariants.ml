open Bmx_util
module Net = Bmx_netsim.Net
module Protocol = Bmx_dsm.Protocol
module Store = Bmx_memory.Store
module Heap_obj = Bmx_memory.Heap_obj

let on_write_transfer t ~granter ~requester ~uid =
  let proto = Gc_state.proto t in
  let g_store = Protocol.store proto granter in
  match Store.addr_of_uid g_store uid with
  | None -> ()
  | Some a -> (
      match Store.resolve g_store a with
      | None -> ()
      | Some (_, obj) ->
          let bunch = obj.Heap_obj.bunch in
          let holds_inter =
            List.exists
              (fun (s : Ssp.inter_stub) -> Ids.Uid.equal s.Ssp.is_src_uid uid)
              (Gc_state.inter_stubs t ~node:granter ~bunch)
          in
          let intra_holders =
            List.filter_map
              (fun (s : Ssp.intra_stub) ->
                if Ids.Uid.equal s.Ssp.ns_uid uid then Some s.Ssp.ns_holder
                else None)
              (Gc_state.intra_stubs t ~node:granter ~bunch)
          in
          (* The new owner must end up with a direct link to every node
             holding inter-bunch stubs for the object; chains of intra SSPs
             never form (Figure 4 shows the direct owner-to-stub-holder
             link). *)
          let holders =
            (if holds_inter then [ granter ] else []) @ intra_holders
            |> List.sort_uniq Ids.Node.compare
            |> List.filter (fun h -> not (Ids.Node.equal h requester))
          in
          List.iter
            (fun holder ->
              Stats.incr (Gc_state.stats t) "gc.intra_ssp.created";
              Gc_state.add_intra_stub t ~node:requester
                { Ssp.ns_bunch = bunch; ns_uid = uid; ns_holder = holder };
              let scion =
                { Ssp.xn_bunch = bunch; xn_uid = uid; xn_owner_side = requester }
              in
              if Ids.Node.equal holder granter then begin
                (* §5: the granter creates the scion before replying and
                   piggybacks the stub-creation request on the grant. *)
                Gc_state.add_intra_scion t ~node:granter scion;
                Net.record_piggyback (Protocol.net proto) ~src:granter
                  ~kind:Net.Token_grant ~bytes:24 ()
              end
              else
                (* The stub holder is a third node (the granter itself only
                   had an intra stub): it learns about the new owner with a
                   background message. *)
                Net.send (Protocol.net proto) ~src:granter ~dst:holder
                  ~kind:Net.Scion_message ~bytes:24 (fun _seq ->
                    Gc_state.add_intra_scion t ~node:holder scion))
            holders)

let install t =
  Protocol.set_hooks (Gc_state.proto t)
    {
      Protocol.before_write_grant =
        (fun ~granter ~requester ~uid -> on_write_transfer t ~granter ~requester ~uid);
    }
