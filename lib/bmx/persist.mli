(** Persistence by reachability (§1, §2.1).

    "Objects can become persistent by reachability, that is, they are
    persistent if reachable from the persistent root ... objects that are
    no longer reachable from the persistent root should not be stored on
    disk."  This module implements exactly that contract on top of the
    RVM substrate: a checkpoint of a bunch stores the objects of the
    bunch reachable from the node's roots — and {e only} those — into a
    recoverable store, atomically (one RVM transaction per checkpoint,
    retiring stale entries).  [restore] rebuilds a node's replica of the
    bunch from the recovered image, re-registering ownership.

    The reachability decision is the collector's: checkpointing is "run
    the local trace, persist the survivors", which is why persistence by
    reachability needs a GC in the first place (§1). *)

type disk =
  (Bmx_util.Addr.t * Bmx_memory.Heap_obj.image * Bmx_util.Ids.Node.t list * bool)
  Bmx_rvm.Rvm.t
(** One recoverable cell: address, object snapshot (a plain-value
    {!Bmx_memory.Heap_obj.image}, never an arena handle — the RVM
    checksums hash the stored value), the remote nodes claiming the
    object at checkpoint time (entering-ownerPtr registrations plus the
    stub side of its scions), and whether this node owned the object.
    The GC protection metadata is itself recoverable data (§8): without
    it, a recovered owner could collect an object a surviving node still
    points at before that node's next reachability rebroadcast re-asserts
    the claim.  The ownership bit distinguishes an authoritative image
    from a checkpointed stale replica — the audit's stable-store view
    ({!Audit.union_reachable}) relies on it while the node is down. *)

val create_disk : unit -> disk
(** A fresh recoverable store for heap cells. *)

val checkpoint :
  ?gc_roots:bool ->
  Cluster.t -> node:Bmx_util.Ids.Node.t -> bunch:Bmx_util.Ids.Bunch.t -> disk
  -> int
(** Persist the bunch's locally reachable objects into [disk] within one
    RVM transaction; previously persisted cells that are no longer
    reachable are deleted (persistence {e by reachability}).  Returns the
    number of objects persisted.  Raises [Failure] if the disk has an
    open transaction.

    With [gc_roots] (default [false]) the trace starts from everything
    the local BGC treats as a root (§4.3) — mutator roots {e plus} scion
    targets and entering-ownerPtr registrations — so remotely-referenced
    objects survive the checkpoint too.  This is the mode a
    crash-tolerant deployment wants: after the node crashes, its copies
    may be the only surviving version of objects other nodes point at. *)

val restore :
  Cluster.t -> node:Bmx_util.Ids.Node.t -> disk -> int
(** Install every recovered cell into the node's store at its persisted
    address and root it (the recovered persistent state).  Objects whose
    owner still exists elsewhere come back as ordinary (inconsistent)
    replicas; orphaned objects get [node] as owner.  Returns the number
    of objects restored.  Intended for a rebooted or replacement node of
    the {e same} cluster — addresses and identities live in the cluster's
    single address space — after [Bmx_rvm.Rvm.recover] on the disk.
    Objects whose recorded owner is itself down are treated as orphans
    and adopted ({!Bmx_dsm.Protocol.adopt_ownership}): never block
    recovery on a dead peer.

    Partition behaviour: an owner that is alive but on the far side of a
    network cut cannot be registered with synchronously — the
    entering/copyset registration is queued on the reliable channel and
    lands on heal (stat [persist.deferred_registrations]).  Adoption
    refused by the split-brain guard (a surviving replica is cut off)
    leaves the object an unowned replica for a post-heal recovery pass
    to adopt (stat [persist.adopt_deferred_partition]); recovery itself
    never blocks on a partition. *)

val recover_node :
  Cluster.t -> node:Bmx_util.Ids.Node.t -> disk list -> int
(** Full recovery for a restarted node: [Bmx_rvm.Rvm.recover] each disk
    (replaying committed log prefixes, discarding torn tails and
    corrupted suffixes), then {!restore} its contents.  Call after
    {!Cluster.restart_node}; raises [Invalid_argument] while the node is
    still down.  Returns total objects restored.  A recovery that had to
    drop records bumps [rvm.records_dropped], the
    [rvm.corrupt_records_dropped] metric, and records an
    [Rvm_recover] trace event. *)

(** {1 fsck and storage fault injection} *)

type fsck = {
  f_checked : int;  (** persisted cells of the bunch examined *)
  f_missing : (Bmx_util.Addr.t * Bmx_util.Ids.Uid.t option) list;
      (** persisted (or persisted-then-truncated) cells with no
          surviving local copy — data the checkpoint promised and
          recovery could not deliver.  The uid is [None] when only the
          recovery report still names the address (the log entry itself
          is gone) and the cluster-wide address map cannot identify
          it. *)
}

val verify_bunch :
  Cluster.t ->
  node:Bmx_util.Ids.Node.t ->
  bunch:Bmx_util.Ids.Bunch.t ->
  disk ->
  fsck
(** Cross-check the stable image against the node's store: every
    persisted cell of the bunch must be locally resolvable, and every
    address the last recovery truncated ({!Bmx_rvm.Rvm.last_recovery})
    must have a copy back.  Records a [Bunch_verified] trace event.
    Missing cells should be re-fetched from a surviving replica
    ({!Cluster.demand_fetch}) before an audit counts them lost. *)

(** {1 Registry shard journals}

    A registry shard's durable state is its slice of the range index
    (the allocation cursor is the maximum [hi] of its carves).  Every
    carve is one committed RVM transaction keyed by the range's low
    address; recovery replays the journal through
    {!Bmx_memory.Registry.restore_entry} and re-seats ownership through
    {!Cluster.adopt_shard}, so the split-brain rule applies to shard
    recovery exactly as to object adoption. *)

type shard_disk =
  (Bmx_util.Addr.t * Bmx_util.Addr.t * Bmx_util.Ids.Bunch.t
  * Bmx_util.Ids.Node.t)
  Bmx_rvm.Rvm.t
(** One journaled carve: [(lo, hi, bunch, origin)], keyed by [lo]. *)

val create_shard_disk : unit -> shard_disk

val attach_shard_journals : Cluster.t -> shard_disk array
(** One journal per registry shard: snapshot the carves already handed
    out, then write-ahead every later carve as one committed transaction
    (via {!Bmx_memory.Registry.add_on_alloc}).  Attach once, at cluster
    setup or any quiescent point. *)

val checkpoint_shard : Cluster.t -> shard:int -> shard_disk -> int
(** Rewrite the journal from the shard's current index slice in one RVM
    transaction (retiring records the index no longer has — it never
    does today, ranges being immutable, but the checkpoint does not rely
    on that).  Returns the number of carves persisted.  This is also the
    repair path after {!verify_shard} reports journal loss: the
    surviving index re-seeds the durable image. *)

val recover_shard :
  Cluster.t -> shard:int -> node:Bmx_util.Ids.Node.t -> shard_disk -> int
(** Full shard recovery: [Bmx_rvm.Rvm.recover] the journal (recording an
    [Rvm_recover] trace event at [node], and the damage stats when the
    log was hurt), replay every surviving carve into the index
    ({!Bmx_memory.Registry.restore_entry} — idempotent against the
    entries the cluster-wide read cache already has; raises [Failure] if
    journal and cache disagree on a range), then seat [node] as owner
    and bring the allocation service up via {!Cluster.adopt_shard} —
    which can refuse (split-brain) if the recorded owner is alive across
    a cut.  Returns the number of carves the replay actually installed
    (0 when the cache already had them all). *)

type shard_fsck = {
  s_checked : int;
      (** cross-check probes run: journal records examined against the
          index plus index entries examined against the journal *)
  s_missing : Bmx_util.Addr.t list;
      (** range low addresses present on exactly one side — journal
          records the index lost (impossible today), or index entries
          the journal lost (dropped/truncated records).  The in-memory
          index masks journal loss while the process lives, which is
          precisely why fsck must surface it: after a host loss the
          journal would have been the only copy. *)
}

val verify_shard : Cluster.t -> shard:int -> shard_disk -> shard_fsck
(** fsck for a shard journal: symmetric difference between the journal's
    records and the shard's index slice.  Records a [Bunch_verified]
    trace event against the shard's owner.  A non-empty [s_missing]
    after fault injection is the {e honest} outcome; repair with
    {!checkpoint_shard} and re-verify. *)

type fault = Flip_bits of int | Drop_record of int | Truncate_mid_record
(** Index positions are oldest-first, as in {!Bmx_rvm.Rvm.flip_bits}. *)

val corrupt_disk :
  Cluster.t -> node:Bmx_util.Ids.Node.t -> _ Bmx_rvm.Rvm.t -> fault -> unit
(** Inject one storage fault into the disk's log — a heap {!disk} or a
    {!shard_disk} — recording a [Disk_fault] trace event against [node]
    (the disk's host) and the [rvm.faults_injected] stat, so the trace
    linter can demand that a subsequent recovery acknowledged the
    damage. *)
