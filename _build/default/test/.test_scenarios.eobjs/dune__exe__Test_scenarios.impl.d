test/test_scenarios.ml: Alcotest Bmx Bmx_dsm Bmx_gc Bmx_memory Bmx_util Bmx_workload List Option Result Stats
