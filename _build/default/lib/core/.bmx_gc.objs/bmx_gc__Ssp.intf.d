lib/core/ssp.mli: Bmx_util Format
