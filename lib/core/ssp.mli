(** Stub–scion pairs (§3.1).

    SSPs isolate each bunch replica so it can be collected with purely
    local information.  A {e stub} describes an outgoing reference held by
    this replica; the matching {e scion} is a GC root at the side being
    referenced.  Unlike the SSPs of RPC systems, they are auxiliary
    descriptions only: no indirection, no marshaling.

    Two kinds exist:

    - an {b inter-bunch SSP} follows the direction of a cross-bunch
      reference: stub at the node that created the reference (which held
      the write token, so it was the object's owner at the time), scion at
      a node where the target bunch is mapped;
    - an {b intra-bunch SSP} points {e against} the ownerPtr direction: the
      stub lives at the object's current owner and the scion at a previous
      owner that still holds inter-bunch stubs for the object, preserving
      that replica — and through it the inter-bunch stubs — until the
      owner-side copy dies (§3.2, §6.2). *)

type inter_stub = {
  is_src_bunch : Bmx_util.Ids.Bunch.t;  (** bunch of the referencing object *)
  is_src_uid : Bmx_util.Ids.Uid.t;  (** the referencing object *)
  is_created_at : Bmx_util.Ids.Node.t;  (** node holding this stub *)
  is_target_uid : Bmx_util.Ids.Uid.t;
  is_target_bunch : Bmx_util.Ids.Bunch.t;
  is_target_addr : Bmx_util.Addr.t;  (** address of the target at creation *)
  is_scion_at : Bmx_util.Ids.Node.t;  (** node holding the matching scion *)
}

type inter_scion = {
  xs_src_bunch : Bmx_util.Ids.Bunch.t;
  xs_src_uid : Bmx_util.Ids.Uid.t;
  xs_src_node : Bmx_util.Ids.Node.t;  (** node holding the matching stub *)
  xs_target_uid : Bmx_util.Ids.Uid.t;
  xs_target_bunch : Bmx_util.Ids.Bunch.t;
}

type intra_stub = {
  ns_bunch : Bmx_util.Ids.Bunch.t;
  ns_uid : Bmx_util.Ids.Uid.t;
  ns_holder : Bmx_util.Ids.Node.t;
      (** previous owner holding the inter-bunch stub(s); the matching
          scion lives there *)
}

type intra_scion = {
  xn_bunch : Bmx_util.Ids.Bunch.t;
  xn_uid : Bmx_util.Ids.Uid.t;
  xn_owner_side : Bmx_util.Ids.Node.t;
      (** the (then-)current owner holding the matching stub *)
}

(** {1 Match keys}

    Exactly the fields {!inter_stub_matches}/{!intra_stub_matches}
    compare.  Stub records also carry volatile detail (the target's
    address changes whenever the target bunch is copied), so the delta
    reachability tables and the cleaner's coverage checks work on keys:
    [inter_stub_matches stub scion] iff
    [inter_stub_key stub = inter_scion_key scion]. *)

type inter_key =
  Bmx_util.Ids.Bunch.t * Bmx_util.Ids.Uid.t * Bmx_util.Ids.Node.t * Bmx_util.Ids.Uid.t
(** source bunch, source uid, stub-holder node, target uid *)

type intra_key = Bmx_util.Ids.Bunch.t * Bmx_util.Ids.Uid.t * Bmx_util.Ids.Node.t
(** bunch, uid, scion-holder node *)

val inter_stub_key : inter_stub -> inter_key
val inter_scion_key : inter_scion -> inter_key
val intra_stub_key : intra_stub -> intra_key

val intra_scion_key : holder:Bmx_util.Ids.Node.t -> intra_scion -> intra_key
(** The key of the stub that would cover this scion when held at
    [holder]. *)

val inter_stub_matches : inter_stub -> inter_scion -> bool
(** Stub and scion of the same inter-bunch SSP? *)

val intra_stub_matches : holder:Bmx_util.Ids.Node.t -> intra_stub -> intra_scion -> bool
(** Does the stub (held at the scion's [xn_owner_side]) match a scion held
    at [holder]? *)

val pp_inter_stub : Format.formatter -> inter_stub -> unit
val pp_inter_scion : Format.formatter -> inter_scion -> unit
val pp_intra_stub : Format.formatter -> intra_stub -> unit
val pp_intra_scion : Format.formatter -> intra_scion -> unit
