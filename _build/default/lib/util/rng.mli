(** Deterministic pseudo-random numbers (splitmix64).

    All workloads and fault injection draw from an explicit generator so
    every experiment is reproducible from its seed. *)

type t

val make : int -> t
(** [make seed] creates a fresh generator. *)

val split : t -> t
(** An independent generator derived from [t]'s stream. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound).  [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool
val bits64 : t -> int64

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
