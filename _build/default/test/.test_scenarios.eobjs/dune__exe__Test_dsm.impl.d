test/test_dsm.ml: Addr Alcotest Bmx Bmx_dsm Bmx_gc Bmx_memory Bmx_netsim Bmx_util Ids List Option Result Stats
