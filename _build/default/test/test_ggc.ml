(* The group garbage collector (§7): inter-bunch cycles. *)

module Cluster = Bmx.Cluster
module Value = Bmx_memory.Value
module Graphgen = Bmx_workload.Graphgen
module Collect = Bmx_gc.Collect

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let test_bgc_cannot_collect_inter_bunch_cycle () =
  let c = Cluster.create ~nodes:1 () in
  let b1 = Cluster.new_bunch c ~home:0 in
  let b2 = Cluster.new_bunch c ~home:0 in
  let head = Graphgen.cross_bunch_ring c ~node:0 ~bunches:[ b1; b2 ] ~len:6 in
  ignore head;
  (* No roots at all: the ring is garbage, but each BGC sees the other
     bunch's scions as roots and keeps its half alive. *)
  let r1 = Cluster.bgc c ~node:0 ~bunch:b1 in
  ignore (Cluster.drain c);
  let r2 = Cluster.bgc c ~node:0 ~bunch:b2 in
  ignore (Cluster.drain c);
  check_int "BGC reclaims none of the cycle" 0
    (r1.Collect.r_reclaimed + r2.Collect.r_reclaimed);
  check_int "cycle still cached" 6 (Bmx.Audit.total_cached_copies c)

let test_ggc_collects_inter_bunch_cycle () =
  let c = Cluster.create ~nodes:1 () in
  let b1 = Cluster.new_bunch c ~home:0 in
  let b2 = Cluster.new_bunch c ~home:0 in
  let _ring = Graphgen.cross_bunch_ring c ~node:0 ~bunches:[ b1; b2 ] ~len:6 in
  let r = Cluster.ggc c ~node:0 in
  check_int "GGC reclaims the whole cycle" 6 r.Collect.r_reclaimed;
  check_int "nothing cached" 0 (Bmx.Audit.total_cached_copies c)

let test_ggc_keeps_rooted_cycle () =
  let c = Cluster.create ~nodes:1 () in
  let b1 = Cluster.new_bunch c ~home:0 in
  let b2 = Cluster.new_bunch c ~home:0 in
  let ring = Graphgen.cross_bunch_ring c ~node:0 ~bunches:[ b1; b2 ] ~len:6 in
  Cluster.add_root c ~node:0 ring;
  let r = Cluster.ggc c ~node:0 in
  check_int "rooted cycle survives" 0 r.Collect.r_reclaimed;
  check_int "all cached" 6 (Bmx.Audit.total_cached_copies c);
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c))

let test_ggc_respects_external_scions () =
  (* A cycle within the group referenced from a bunch OUTSIDE the group
     must survive a group collection over the cycle's bunches only. *)
  let c = Cluster.create ~nodes:1 () in
  let b1 = Cluster.new_bunch c ~home:0 in
  let b2 = Cluster.new_bunch c ~home:0 in
  let b3 = Cluster.new_bunch c ~home:0 in
  let ring = Graphgen.cross_bunch_ring c ~node:0 ~bunches:[ b1; b2 ] ~len:4 in
  let holder = Cluster.alloc c ~node:0 ~bunch:b3 [| Value.Ref ring |] in
  Cluster.add_root c ~node:0 holder;
  (* Group = {b1, b2} only: the scion from b3 is external, hence a root. *)
  let r = Bmx_gc.Ggc.run (Cluster.gc c) ~node:0 ~bunches:[ b1; b2 ] () in
  check_int "externally referenced cycle survives" 0 r.Collect.r_reclaimed;
  (* Drop the external holder; a full-group GGC now reclaims everything. *)
  Cluster.remove_root c ~node:0 holder;
  let r2 = Cluster.ggc c ~node:0 in
  check_int "everything reclaimed" 5 r2.Collect.r_reclaimed

let test_ggc_mixed_live_and_cycle () =
  let c = Cluster.create ~nodes:1 () in
  let b1 = Cluster.new_bunch c ~home:0 in
  let b2 = Cluster.new_bunch c ~home:0 in
  let live = Graphgen.linked_list c ~node:0 ~bunch:b1 ~len:10 in
  Cluster.add_root c ~node:0 live;
  let _ring = Graphgen.cross_bunch_ring c ~node:0 ~bunches:[ b1; b2 ] ~len:8 in
  let r = Cluster.ggc c ~node:0 in
  check_int "cycle reclaimed" 8 r.Collect.r_reclaimed;
  check_int "live list survives" 10 r.Collect.r_live;
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c))

let test_ggc_group_is_local_bunches () =
  let c = Cluster.create ~nodes:2 () in
  let b1 = Cluster.new_bunch c ~home:0 in
  let b2 = Cluster.new_bunch c ~home:1 in
  ignore (Cluster.alloc c ~node:0 ~bunch:b1 [| Value.Data 1 |]);
  ignore (Cluster.alloc c ~node:1 ~bunch:b2 [| Value.Data 2 |]);
  let g0 = Bmx_gc.Ggc.group (Cluster.gc c) ~node:0 in
  check (Alcotest.list Alcotest.int) "locality heuristic: bunches mapped at N0"
    [ b1 ] g0

let test_ggc_three_bunch_cycle () =
  let c = Cluster.create ~nodes:1 () in
  let bunches = List.init 3 (fun _ -> Cluster.new_bunch c ~home:0) in
  let _ring = Graphgen.cross_bunch_ring c ~node:0 ~bunches ~len:9 in
  let r = Cluster.ggc c ~node:0 in
  check_int "three-bunch cycle reclaimed" 9 r.Collect.r_reclaimed

let () =
  Alcotest.run "ggc"
    [
      ( "cycles",
        [
          Alcotest.test_case "BGC alone cannot reclaim inter-bunch cycles" `Quick
            test_bgc_cannot_collect_inter_bunch_cycle;
          Alcotest.test_case "GGC reclaims an inter-bunch cycle" `Quick
            test_ggc_collects_inter_bunch_cycle;
          Alcotest.test_case "rooted cycles survive" `Quick test_ggc_keeps_rooted_cycle;
          Alcotest.test_case "external scions are roots" `Quick
            test_ggc_respects_external_scions;
          Alcotest.test_case "live data survives alongside cycles" `Quick
            test_ggc_mixed_live_and_cycle;
          Alcotest.test_case "three-bunch cycle" `Quick test_ggc_three_bunch_cycle;
        ] );
      ( "grouping",
        [
          Alcotest.test_case "locality-based group" `Quick test_ggc_group_is_local_bunches;
        ] );
    ]
