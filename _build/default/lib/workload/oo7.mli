(** An OO7-flavoured design-database workload.

    The paper motivates BMX with design databases (§1); OO7 (Carey,
    DeWitt & Naughton) is the classic benchmark for that shape: a module
    of hierarchical {e assemblies} whose base level references
    {e composite parts}, each owning a small connected graph of
    {e atomic parts}.  This is a scaled-down OO7 built entirely through
    the public mutator API: assemblies live in one bunch, composite
    parts round-robin across several others, so base-assembly →
    composite edges exercise the write barrier's inter-bunch SSPs.

    Traversals follow the benchmark's naming: T1 is a read-only
    depth-first sweep touching every atomic part; T2 updates every
    atomic part it visits.  Structural churn (replacing composite parts)
    generates the floating garbage the collector must pick up. *)

type config = {
  levels : int;  (** assembly-tree depth (complex above base) *)
  assembly_fanout : int;
  comp_per_base : int;  (** composite parts per base assembly *)
  atomic_per_comp : int;  (** atomic parts per composite graph *)
  part_bunches : int;  (** bunches the composite parts spread over *)
  seed : int;
}

val default : config
(** levels 3, fanout 3, 3 composites per base, 8 atomics per composite,
    3 part bunches — a few hundred objects. *)

type t

val build : Bmx.Cluster.t -> node:Bmx_util.Ids.Node.t -> config -> t
(** Build the module at [node] and root it there. *)

val cluster : t -> Bmx.Cluster.t
val root : t -> Bmx_util.Addr.t
val config : t -> config
val size : t -> int
(** Objects the module comprises (assemblies + composites + atomics). *)

val t1 : t -> node:Bmx_util.Ids.Node.t -> int
(** Read-only traversal: acquire read tokens down the hierarchy, touch
    every atomic part; returns atomic parts visited. *)

val t2 : t -> node:Bmx_util.Ids.Node.t -> int
(** Update traversal: like T1 but bumps every atomic part's build date
    under a write token; returns atomic parts updated. *)

val churn : t -> node:Bmx_util.Ids.Node.t -> int
(** Structural update: rebuild one composite part per base assembly (a
    fresh part graph replaces the old one, which becomes garbage);
    returns objects newly made unreachable. *)
