lib/memory/registry.ml: Addr Bmx_util Ids List Option Segment
