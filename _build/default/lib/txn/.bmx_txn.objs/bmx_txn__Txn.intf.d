lib/txn/txn.mli: Bmx Bmx_memory Bmx_rvm Bmx_util
