(* An OO7-style design-database session (§1 motivation): build a module,
   traverse it from a remote engineering site, revise composite parts,
   and let the collector absorb the churn.

   Run with: dune exec examples/oo7_bench.exe *)

module Cluster = Bmx.Cluster
module Oo7 = Bmx_workload.Oo7

let () =
  let c = Cluster.create ~nodes:2 ~seed:3 () in
  let m = Oo7.build c ~node:0 Oo7.default in
  Printf.printf "module built: %d objects (assemblies, composites, atomic parts)\n"
    (Oo7.size m);
  Printf.printf "T1 (read traversal) from the remote site visited %d atomic parts\n"
    (Oo7.t1 m ~node:1);
  Printf.printf "T2 (update traversal) bumped %d build dates\n" (Oo7.t2 m ~node:1);
  let churned = Oo7.churn m ~node:0 in
  Printf.printf "design revision replaced parts: %d objects superseded\n" churned;
  let reclaimed = Cluster.collect_until_quiescent c () in
  Printf.printf "collector reclaimed %d (token acquires: %d)\n" reclaimed
    (Bmx_util.Stats.get (Cluster.stats c) "dsm.gc.acquire_read"
    + Bmx_util.Stats.get (Cluster.stats c) "dsm.gc.acquire_write");
  Printf.printf "T1 after revision+GC still visits %d atomic parts\n"
    (Oo7.t1 m ~node:1);
  match Bmx.Audit.check_safety c with
  | Ok () -> print_endline "heap audit: ok"
  | Error msg -> failwith msg
