open Bmx_util

(* A flat object arena: headers and data words of every object live in
   one growable [Bigarray] of native ints instead of one boxed record +
   one boxed [Value.t] array + up to [nfields] boxed constructor blocks
   per object.  The OCaml GC sees a single custom block however many
   objects the simulated heaps hold, the hot collector loops walk raw
   tagged ints with no decoding allocation, and GC copies are straight
   word blits.

   Slot layout (all offsets in words from [base]):

     +0  generation — stamped at [alloc], negated at [free].  A handle
         carries the generation it was born with; every access checks it,
         so a use-after-reclaim fails loudly instead of silently reading
         whatever object recycled the slot.
     +1  version — the mutator-visible write counter (see Heap_obj).
     +2  nfields
     +3… raw fields, tagged as by {!Value.to_raw}

   Freed slots go on per-arity free lists and are recycled by the next
   same-arity allocation, so arena growth tracks the peak live heap, not
   the total allocation volume (the copying collector re-allocates every
   live object each collection).

   The mark bitmap is one bit per arena word, addressed by slot base:
   collections use it for O(1) liveness membership during a trace.  The
   discipline is mark-then-unmark — every trace clears exactly the bits
   it set — so the bitmap needs no epoch machinery and no full clears. *)

type t = {
  id : int;  (* distinguishes arenas in cross-arena slot keys *)
  mutable data : (int, Bigarray.int_elt, Bigarray.c_layout) Bigarray.Array1.t;
  mutable bump : int;  (* first never-allocated word *)
  mutable marks : Bytes.t;  (* 1 bit per word of [data] *)
  free_lists : (int, int list ref) Hashtbl.t;  (* nfields -> slot bases *)
  mutable live : int;
  mutable next_gen : int;
}

let header_words = 3
let next_id = ref 0

let create ?(initial_words = 1024) () =
  incr next_id;
  {
    id = !next_id;
    data = Bigarray.Array1.create Bigarray.int Bigarray.c_layout (max 16 initial_words);
    bump = 0;
    marks = Bytes.make ((max 16 initial_words + 7) / 8) '\000';
    free_lists = Hashtbl.create 8;
    live = 0;
    next_gen = 1;
  }

let id t = t.id

let capacity t = Bigarray.Array1.dim t.data
let live t = t.live
let used_words t = t.bump

let grow t needed =
  let cap = ref (2 * capacity t) in
  while !cap < needed do
    cap := 2 * !cap
  done;
  let data' = Bigarray.Array1.create Bigarray.int Bigarray.c_layout !cap in
  Bigarray.Array1.blit t.data (Bigarray.Array1.sub data' 0 (capacity t));
  t.data <- data';
  let marks' = Bytes.make ((!cap + 7) / 8) '\000' in
  Bytes.blit t.marks 0 marks' 0 (Bytes.length t.marks);
  t.marks <- marks'

let stale base gen =
  invalid_arg
    (Printf.sprintf "Flatheap: stale handle (slot %d, gen %d): use after reclaim"
       base gen)

let check t ~base ~gen =
  if Bigarray.Array1.unsafe_get t.data base <> gen then stale base gen

let alloc t ~nfields =
  if nfields < 0 then invalid_arg "Flatheap.alloc: negative arity";
  let gen = t.next_gen in
  t.next_gen <- gen + 1;
  t.live <- t.live + 1;
  let base =
    match Hashtbl.find_opt t.free_lists nfields with
    | Some ({ contents = base :: rest } as l) ->
        l := rest;
        base
    | Some { contents = [] } | None ->
        let base = t.bump in
        let words = header_words + nfields in
        if base + words > capacity t then grow t (base + words);
        t.bump <- base + words;
        base
  in
  t.data.{base} <- gen;
  t.data.{base + 1} <- 0;
  t.data.{base + 2} <- nfields;
  Bigarray.Array1.(fill (sub t.data (base + header_words) nfields)) 0;
  (base, gen)

let free t ~base ~gen =
  check t ~base ~gen;
  let nfields = t.data.{base + 2} in
  t.data.{base} <- -gen; (* poison: any later gen check fails *)
  t.live <- t.live - 1;
  (match Hashtbl.find_opt t.free_lists nfields with
  | Some l -> l := base :: !l
  | None -> Hashtbl.add t.free_lists nfields (ref [ base ]));
  (* A freed slot must not linger in anyone's mark set. *)
  let i = base lsr 3 and b = base land 7 in
  Bytes.unsafe_set t.marks i
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.marks i) land lnot (1 lsl b)))

let nfields t ~base ~gen =
  check t ~base ~gen;
  t.data.{base + 2}

let version t ~base ~gen =
  check t ~base ~gen;
  t.data.{base + 1}

let set_version t ~base ~gen v =
  check t ~base ~gen;
  t.data.{base + 1} <- v

let bump_version t ~base ~gen =
  check t ~base ~gen;
  t.data.{base + 1} <- t.data.{base + 1} + 1

let field_check t ~base i =
  if i < 0 || i >= t.data.{base + 2} then
    invalid_arg (Printf.sprintf "Flatheap: field %d out of range" i)

let get_raw t ~base ~gen i =
  check t ~base ~gen;
  field_check t ~base i;
  Bigarray.Array1.unsafe_get t.data (base + header_words + i)

let set_raw t ~base ~gen i raw =
  check t ~base ~gen;
  field_check t ~base i;
  Bigarray.Array1.unsafe_set t.data (base + header_words + i) raw

let unsafe_get_raw t ~base i =
  Bigarray.Array1.unsafe_get t.data (base + header_words + i)

(* Copy fields and version from a slot (possibly of another arena) into a
   fresh slot of [dst]: the collector's object-copy primitive — one word
   blit, no Value boxing. *)
let alloc_copy dst ~src ~src_base ~src_gen =
  check src ~base:src_base ~gen:src_gen;
  let n = src.data.{src_base + 2} in
  let base, gen = alloc dst ~nfields:n in
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set dst.data
      (base + header_words + i)
      (Bigarray.Array1.unsafe_get src.data (src_base + header_words + i))
  done;
  dst.data.{base + 1} <- src.data.{src_base + 1};
  Perfcount.(counters.flat_words_copied <- counters.flat_words_copied + n);
  (base, gen)

let blit_fields ~src ~src_base ~src_gen ~dst ~dst_base ~dst_gen =
  check src ~base:src_base ~gen:src_gen;
  check dst ~base:dst_base ~gen:dst_gen;
  let n = src.data.{src_base + 2} in
  if dst.data.{dst_base + 2} <> n then
    invalid_arg "Flatheap.blit_fields: arity mismatch";
  for i = 0 to n - 1 do
    Bigarray.Array1.unsafe_set dst.data
      (dst_base + header_words + i)
      (Bigarray.Array1.unsafe_get src.data (src_base + header_words + i))
  done;
  dst.data.{dst_base + 1} <- src.data.{src_base + 1};
  Perfcount.(counters.flat_words_copied <- counters.flat_words_copied + n)

(* ------------------------------------------------------------------ *)
(* Mark bitmap (one bit per word, addressed by slot base).              *)

let mark t ~base =
  let i = base lsr 3 and b = base land 7 in
  Bytes.unsafe_set t.marks i
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.marks i) lor (1 lsl b)))

let unmark t ~base =
  let i = base lsr 3 and b = base land 7 in
  Bytes.unsafe_set t.marks i
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.marks i) land lnot (1 lsl b)))

let is_marked t ~base =
  Char.code (Bytes.unsafe_get t.marks (base lsr 3)) land (1 lsl (base land 7)) <> 0

(* The arena objects created by bare [Heap_obj.make] calls (tests,
   baseline collectors) land here. *)
let default = create ~initial_words:4096 ()
