lib/core/scion_cleaner.ml: Bmx_dsm Bmx_memory Bmx_netsim Bmx_util Gc_state Ids List Ssp Stats
