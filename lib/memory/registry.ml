open Bmx_util

type entry = { range : Addr.Range.t; bunch : Ids.Bunch.t; origin : Ids.Node.t }

module Addr_map = Map.Make (struct
  type t = Addr.t

  let compare = Addr.compare
end)

(* Each shard owns a fixed, contiguous slice of the single address space
   and carves ranges sequentially inside it.  The slice boundaries are
   arithmetic — shard k covers [first_lo + k*region_bytes,
   first_lo + (k+1)*region_bytes) — so routing an address to its shard is
   one subtraction and one division, O(1), before the per-shard floor
   lookup.  A shard's authoritative state is its allocation cursor and
   entry set, held by the owning node's BMX-server; the [by_lo] index is
   a cluster-wide read cache.  Because ranges are immutable once handed
   out (never freed, never moved), the cache can never go stale: lookups
   keep answering while the owner is down, and only new allocations
   fail. *)
type shard = {
  shard_id : int;
  region : Addr.Range.t;
  mutable next : Addr.t;
  mutable by_lo : entry Addr_map.t;
  mutable bytes : int;  (** O(1) maintained gauge: bytes carved here *)
  mutable owner : Ids.Node.t;
  mutable up : bool;
}

type t = {
  shards : shard array;
  region_bytes : int;
  first_lo : Addr.t;
  by_bunch : entry list ref Ids.Bunch_tbl.t;
  mutable total : int;  (** O(1) maintained gauge: sum of shard bytes *)
  mutable on_alloc : (shard:int -> entry -> unit) list;
}

(* 2^40 bytes per shard: far beyond any simulated heap, and small enough
   that 4096 shards still fit in a 63-bit OCaml int with headroom. *)
let default_region_bytes = 1 lsl 40

let create ?(shards = 1) ?(first_addr = Addr.page_size) () =
  if shards < 1 || shards > 4096 then
    invalid_arg "Registry.create: shards must be in [1, 4096]";
  let first_lo = Addr.align_up first_addr in
  let region_bytes = default_region_bytes in
  let mk k =
    let lo = first_lo + (k * region_bytes) in
    {
      shard_id = k;
      region = Addr.Range.make ~lo ~size:region_bytes;
      next = lo;
      by_lo = Addr_map.empty;
      bytes = 0;
      owner = 0;
      up = true;
    }
  in
  {
    shards = Array.init shards mk;
    region_bytes;
    first_lo;
    by_bunch = Ids.Bunch_tbl.create 16;
    total = 0;
    on_alloc = [];
  }

let num_shards t = Array.length t.shards

let shard_of_addr t a =
  if a < t.first_lo then None
  else
    let k = (a - t.first_lo) / t.region_bytes in
    if k < Array.length t.shards then Some k else None

let shard_of_bunch t bunch = bunch mod Array.length t.shards
let shard_owner t k = t.shards.(k).owner
let shard_up t k = t.shards.(k).up
let shard_bytes t k = t.shards.(k).bytes
let shard_region t k = t.shards.(k).region
let set_shard_owner t k node = t.shards.(k).owner <- node
let crash_shard t k = t.shards.(k).up <- false
let revive_shard t k = t.shards.(k).up <- true
let add_on_alloc t f = t.on_alloc <- f :: t.on_alloc

let index_bunch t e =
  match Ids.Bunch_tbl.find_opt t.by_bunch e.bunch with
  | Some r -> r := e :: !r
  | None -> Ids.Bunch_tbl.add t.by_bunch e.bunch (ref [ e ])

let alloc_range t ~bunch ~origin ?(bytes = Segment.default_bytes) () =
  let s = t.shards.(shard_of_bunch t bunch) in
  if not s.up then
    failwith (Printf.sprintf "registry shard %d down: cannot allocate" s.shard_id);
  let size = Addr.align_up bytes in
  if s.next + size > s.region.Addr.Range.hi then
    failwith (Printf.sprintf "registry shard %d region exhausted" s.shard_id);
  let range = Addr.Range.make ~lo:s.next ~size in
  s.next <- range.Addr.Range.hi;
  let e = { range; bunch; origin } in
  s.by_lo <- Addr_map.add range.Addr.Range.lo e s.by_lo;
  s.bytes <- s.bytes + size;
  t.total <- t.total + size;
  index_bunch t e;
  List.iter (fun f -> f ~shard:s.shard_id e) t.on_alloc;
  range

let find t a =
  match shard_of_addr t a with
  | None -> None
  | Some k -> (
      let s = t.shards.(k) in
      match
        Addr_map.find_last_opt (fun lo -> Addr.compare lo a <= 0) s.by_lo
      with
      | Some (_, e) when Addr.Range.contains e.range a -> Some e
      | Some _ | None -> None)

let bunch_of_addr t a = Option.map (fun e -> e.bunch) (find t a)

let entries_of_bunch t bunch =
  match Ids.Bunch_tbl.find_opt t.by_bunch bunch with
  | Some r -> List.rev !r
  | None -> []

let shard_entries t k =
  List.rev (Addr_map.fold (fun _ e acc -> e :: acc) t.shards.(k).by_lo [])

let total_bytes t = t.total

let restore_entry t ~shard e =
  let s = t.shards.(shard) in
  if not (Addr.Range.contains s.region e.range.Addr.Range.lo) then
    invalid_arg "Registry.restore_entry: range outside shard region";
  match Addr_map.find_opt e.range.Addr.Range.lo s.by_lo with
  | Some cached ->
      (* The read cache survived; recovery just confirms the journal and
         re-establishes the cursor past everything it promised. *)
      if
        cached.range.Addr.Range.hi <> e.range.Addr.Range.hi
        || not (Ids.Bunch.equal cached.bunch e.bunch)
      then failwith "Registry.restore_entry: journal disagrees with index";
      if s.next < e.range.Addr.Range.hi then s.next <- e.range.Addr.Range.hi;
      false
  | None ->
      s.by_lo <- Addr_map.add e.range.Addr.Range.lo e s.by_lo;
      let size = Addr.Range.size e.range in
      s.bytes <- s.bytes + size;
      t.total <- t.total + size;
      if s.next < e.range.Addr.Range.hi then s.next <- e.range.Addr.Range.hi;
      index_bunch t e;
      true
