type finding = { file : string; line : int; path : string }

let pp_finding ppf f =
  Format.fprintf ppf "%s:%d: forbidden DSM token call %s in the collector \
                      layer"
    f.file f.line f.path

let forbidden_members = [ "acquire"; "release"; "demand_fetch"; "set_hooks" ]

(* (basename, member) pairs allowed to break the rule: the invariant
   harness installs the §5 hook by design, and the e17 ablation measures
   the cost of coarse-grain token traffic, so it drives the token API on
   purpose. *)
let sanctioned =
  [
    ("invariants.ml", "set_hooks");
    ("experiments.ml", "acquire");
    ("experiments.ml", "release");
  ]

(* ------------------------------------------------------------------ *)
(* Comment / literal stripping.  Comments nest; strings inside comments
   protect "*)"; char literals can hold '"' and '('.  Stripped spans are
   replaced by spaces so line numbers and token boundaries survive. *)

let strip src =
  let n = String.length src in
  let buf = Bytes.of_string src in
  let blank i = if Bytes.get buf i <> '\n' then Bytes.set buf i ' ' in
  let i = ref 0 in
  let in_comment = ref 0 in
  while !i < n do
    let c = src.[!i] in
    if !in_comment > 0 then begin
      if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
        blank !i;
        blank (!i + 1);
        incr in_comment;
        i := !i + 2
      end
      else if c = '*' && !i + 1 < n && src.[!i + 1] = ')' then begin
        blank !i;
        blank (!i + 1);
        decr in_comment;
        i := !i + 2
      end
      else if c = '"' then begin
        (* A string inside a comment: skip to its closing quote so a
           "*)" inside it doesn't end the comment. *)
        blank !i;
        incr i;
        let stop = ref false in
        while (not !stop) && !i < n do
          (match src.[!i] with
          | '\\' when !i + 1 < n ->
              blank !i;
              blank (!i + 1);
              incr i
          | '"' -> stop := true
          | _ -> ());
          blank !i;
          incr i
        done
      end
      else begin
        blank !i;
        incr i
      end
    end
    else if c = '(' && !i + 1 < n && src.[!i + 1] = '*' then begin
      blank !i;
      blank (!i + 1);
      in_comment := 1;
      i := !i + 2
    end
    else if c = '"' then begin
      blank !i;
      incr i;
      let stop = ref false in
      while (not !stop) && !i < n do
        (match src.[!i] with
        | '\\' when !i + 1 < n ->
            blank !i;
            blank (!i + 1);
            incr i
        | '"' -> stop := true
        | _ -> ());
        blank !i;
        incr i
      done
    end
    else if
      (* Char literals: '\n', 'x', '"' — but NOT type variables ('a) or
         primes in identifiers (x').  Only treat as a literal when a
         closing quote sits where one must. *)
      c = '\''
      && (!i + 2 < n && src.[!i + 2] = '\'' && src.[!i + 1] <> '\\'
         || !i + 3 < n
            && src.[!i + 1] = '\\'
            && src.[!i + 3] = '\''
            && src.[!i + 2] <> 'x')
    then begin
      let len = if src.[!i + 1] = '\\' then 4 else 3 in
      for j = !i to !i + len - 1 do
        blank j
      done;
      i := !i + len
    end
    else incr i
  done;
  Bytes.to_string buf

(* ------------------------------------------------------------------ *)
(* Tokenizer: dotted identifier paths and '=' are all the lint needs. *)

let is_word_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\'' || c = '.'

let tokenize stripped =
  let n = String.length stripped in
  let out = ref [] in
  let line = ref 1 in
  let i = ref 0 in
  while !i < n do
    let c = stripped.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if is_word_char c then begin
      let start = !i in
      while !i < n && is_word_char stripped.[!i] do
        incr i
      done;
      out := (!line, String.sub stripped start (!i - start)) :: !out
    end
    else begin
      if c = '=' then out := (!line, "=") :: !out;
      incr i
    end
  done;
  List.rev !out

let split_last_dot s =
  match String.rindex_opt s '.' with
  | None -> None
  | Some k ->
      Some (String.sub s 0 k, String.sub s (k + 1) (String.length s - k - 1))

let scan_source ~file contents =
  let base = Filename.basename file in
  let tokens = tokenize (strip contents) in
  (* Pass 1: names bound (possibly transitively) to the protocol module. *)
  let aliases = Hashtbl.create 8 in
  Hashtbl.replace aliases "Protocol" ();
  Hashtbl.replace aliases "Bmx_dsm.Protocol" ();
  let rec collect = function
    | (_, "module") :: (_, name) :: (_, "=") :: (_, rhs) :: rest ->
        if Hashtbl.mem aliases rhs then Hashtbl.replace aliases name ();
        collect rest
    | _ :: rest -> collect rest
    | [] -> ()
  in
  collect tokens;
  (* Pass 2: dotted uses of a forbidden member through any alias. *)
  let out = ref [] in
  List.iter
    (fun (line, tok) ->
      match split_last_dot tok with
      | Some (prefix, member)
        when Hashtbl.mem aliases prefix
             && List.mem member forbidden_members
             && not (List.mem (base, member) sanctioned) ->
          out := { file; line; path = tok } :: !out
      | _ -> ())
    tokens;
  List.rev !out

let scan_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  scan_source ~file:path contents

let scan_dir dir =
  let findings = ref [] in
  let rec walk d =
    Array.iter
      (fun entry ->
        let path = Filename.concat d entry in
        if Sys.is_directory path then begin
          if entry <> "_build" && entry.[0] <> '.' then walk path
        end
        else if
          Filename.check_suffix entry ".ml" || Filename.check_suffix entry ".mli"
        then findings := scan_file path @ !findings)
      (Sys.readdir d)
  in
  walk dir;
  List.sort
    (fun a b ->
      match String.compare a.file b.file with
      | 0 -> compare a.line b.line
      | c -> c)
    !findings
