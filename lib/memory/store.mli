(** A node's view of the shared address space.

    Every node caches copies of the objects it has mapped; the same global
    address resolves, on each node, to that node's local copy (or to a
    forwarding header left by a BGC, §4.2).  The store also owns the node's
    local [Segment] views — object-map and reference-map state is
    per-replica, since replicas of a bunch are collected independently. *)

type cell =
  | Object of Heap_obj.t  (** a local copy of the object at this address *)
  | Forwarder of Bmx_util.Addr.t
      (** header left in from-space after a copy: "a forwarding pointer is
          written into the object's header, which is left in from-space"
          (§4.2) *)

type t

val create : registry:Registry.t -> node:Bmx_util.Ids.Node.t -> t
val node : t -> Bmx_util.Ids.Node.t
val registry : t -> Registry.t

val alloc :
  ?version:int ->
  t ->
  bunch:Bmx_util.Ids.Bunch.t ->
  uid:Bmx_util.Ids.Uid.t ->
  fields:Value.t array ->
  Bmx_util.Addr.t
(** Allocate a new object in the node's active segment for [bunch],
    growing the bunch with a fresh registry range on segment overflow.
    Reference-map bits are set for pointer fields.  [version] (default
    0) seeds the object's write counter — GC copies pass the source's
    so the copy is not mistaken for a write. *)

val alloc_into :
  ?version:int ->
  t -> seg:Segment.t -> uid:Bmx_util.Ids.Uid.t -> fields:Value.t array
  -> Bmx_util.Addr.t option
(** Allocate directly into a specific segment (BGC copying into to-space). *)

val segment_at : t -> Bmx_util.Addr.t -> Segment.t option
(** The local segment view containing the address, if mapped. *)

val ensure_segment :
  t -> range:Bmx_util.Addr.Range.t -> bunch:Bmx_util.Ids.Bunch.t -> Segment.t
(** Local view of a (possibly remotely allocated) range; created on first
    use — mapping a segment of a replicated bunch. *)

val fresh_segment :
  t -> bunch:Bmx_util.Ids.Bunch.t -> ?bytes:int -> unit -> Segment.t
(** Allocate a brand-new range from the registry and map it locally. *)

val segments_of_bunch : t -> Bmx_util.Ids.Bunch.t -> Segment.t list
(** Locally mapped segments of the bunch, oldest first. *)

val set_active_segment : t -> bunch:Bmx_util.Ids.Bunch.t -> Segment.t -> unit
(** Make [seg] the bunch's current allocation target (a BGC retargets
    allocation at the to-space after a flip). *)

val cells_in_range : t -> Bmx_util.Addr.Range.t -> (Bmx_util.Addr.t * cell) list
(** All cells whose address falls in the range, by address. *)

val mapped_bunches : t -> Bmx_util.Ids.Bunch.t list

val cell : t -> Bmx_util.Addr.t -> cell option

val install : t -> Bmx_util.Addr.t -> Heap_obj.t -> unit
(** Bind the address to a local object copy (token grant, GC copy, or
    address-update installation).  Maintains the segment maps. *)

val set_forwarder : t -> at:Bmx_util.Addr.t -> target:Bmx_util.Addr.t -> unit
(** Replace the cell at [at] with a forwarding header to [target].
    Keeps the forwarder graph acyclic: a self-link is ignored, and if
    [target]'s own chain led back to [at] (address reuse — the object
    moved A -> B -> A and both hops were recorded here), the stale
    back-chain is re-pointed at [target], which becomes the endpoint.
    [Bmx_check.Lint.check_stores] verifies this invariant over every
    node after each run. *)

val remove : t -> Bmx_util.Addr.t -> unit
(** Drop the cell (object reclaimed or forwarder retired). *)

val resolve : t -> Bmx_util.Addr.t -> (Bmx_util.Addr.t * Heap_obj.t) option
(** Follow the local forwarder chain from the address to the current local
    copy; [None] if the address is unknown here or leads nowhere. *)

val current_addr : t -> Bmx_util.Addr.t -> Bmx_util.Addr.t
(** Endpoint of the local forwarder chain ([a] itself if not forwarded).
    The paper's pointer-comparison operation (§4.2) compares these. *)

val note_field_write : t -> obj_addr:Bmx_util.Addr.t -> index:int -> Value.t -> unit
(** Maintain the reference-map bit for field [index] of the object at
    [obj_addr] after a write. *)

val objects_of_bunch : t -> Bmx_util.Ids.Bunch.t -> (Bmx_util.Addr.t * Heap_obj.t) list
(** All local object copies (not forwarders) of the bunch, by address.
    Served from a per-bunch index — O(bunch), not O(store). *)

val has_objects_of_bunch : t -> Bmx_util.Ids.Bunch.t -> bool
(** Whether any local object copy of the bunch exists — O(1). *)

val addr_of_uid : t -> Bmx_util.Ids.Uid.t -> Bmx_util.Addr.t option
(** Current local address of the object with this uid, if cached. *)

val address_history : t -> Bmx_util.Ids.Uid.t -> Bmx_util.Addr.t list
(** Addresses this node has seen the object at, newest first.  This is the
    node-local knowledge from which new-location messages (§4.4) are
    composed: the head is where the node currently publishes the object,
    the second entry is where its peers may still believe it lives. *)

val iter : t -> (Bmx_util.Addr.t -> cell -> unit) -> unit
val object_count : t -> int
val pp : Format.formatter -> t -> unit
