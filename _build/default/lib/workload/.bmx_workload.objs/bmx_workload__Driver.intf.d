lib/workload/driver.mli: Bmx Bmx_dsm Bmx_util
