test/test_baseline.ml: Addr Alcotest Bmx Bmx_baseline Bmx_dsm Bmx_gc Bmx_memory Bmx_util Bmx_workload List Result Rng Stats
