open Bmx_util
module Net = Bmx_netsim.Net
module Protocol = Bmx_dsm.Protocol
module Store = Bmx_memory.Store
module Registry = Bmx_memory.Registry
module Value = Bmx_memory.Value
module Heap_obj = Bmx_memory.Heap_obj

let bump t name = Stats.incr (Gc_state.stats t) name

let scion_target t ~node ~bunch =
  let proto = Gc_state.proto t in
  let mapped_locally =
    Store.segments_of_bunch (Protocol.store proto node) bunch <> []
  in
  if mapped_locally then node else Protocol.bunch_home proto bunch

let create_inter_ssp t ~node ~src_obj ~src_addr:_ ~target_addr =
  let proto = Gc_state.proto t in
  let src_bunch = src_obj.Heap_obj.bunch in
  match Registry.bunch_of_addr (Protocol.registry proto) target_addr with
  | None -> () (* not a heap address: nothing to describe *)
  | Some target_bunch when Ids.Bunch.equal target_bunch src_bunch -> ()
  | Some target_bunch -> (
      match Protocol.uid_of_addr proto target_addr with
      | None -> ()
      | Some target_uid ->
          bump t "gc.barrier.inter_refs";
          let scion_at = scion_target t ~node ~bunch:target_bunch in
          let stub =
            {
              Ssp.is_src_bunch = src_bunch;
              is_src_uid = src_obj.Heap_obj.uid;
              is_created_at = node;
              is_target_uid = target_uid;
              is_target_bunch = target_bunch;
              is_target_addr = target_addr;
              is_scion_at = scion_at;
            }
          in
          Gc_state.add_inter_stub t ~node stub;
          let scion =
            {
              Ssp.xs_src_bunch = src_bunch;
              xs_src_uid = src_obj.Heap_obj.uid;
              xs_src_node = node;
              xs_target_uid = target_uid;
              xs_target_bunch = target_bunch;
            }
          in
          (* If the scion node holds no copy of the target, the scion
             protects a purely remote object: the owner must learn at
             once that this node keeps it alive (a conservative entering
             ownerPtr), or an unlucky BGC at the owner could reclaim it
             before the scion node's first collection advertises it. *)
          let install_scion at =
            Gc_state.add_inter_scion t ~node:at scion;
            if Store.addr_of_uid (Protocol.store proto at) target_uid = None then
              match Protocol.owner_of proto target_uid with
              | Some owner when not (Ids.Node.equal owner at) ->
                  Bmx_dsm.Directory.add_entering
                    (Protocol.directory proto owner)
                    ~seq:(Net.current_seq (Protocol.net proto) ~src:at ~dst:owner)
                    ~uid:target_uid ~from:at
              | Some _ | None -> ()
          in
          if Ids.Node.equal scion_at node then install_scion node
          else begin
            (* The target bunch is not mapped here: a scion-message informs
               a node that maps it (§3.2).  While the message is in
               flight, the target is protected by nothing — the race the
               paper defers to its companion report.  A provisional
               entering ownerPtr at the target's owner covers the window;
               the delivery hands protection over to the scion and
               retires the provisional entry. *)
            bump t "gc.barrier.scion_messages";
            let provisional_owner =
              if Store.addr_of_uid (Protocol.store proto node) target_uid = None
              then
                match Protocol.owner_of proto target_uid with
                | Some owner when not (Ids.Node.equal owner node) ->
                    (* Registration must never fail halfway through a
                       store (the pointer would exist unprotected), so
                       across a cut the synchronous exchange is replaced
                       by a queued reliable registration: the entry is
                       installed eagerly — protection can only err
                       conservative — and the wire cost is accounted
                       when the link heals. *)
                    if Net.reachable (Protocol.net proto) node owner then
                      Net.record_rpc (Protocol.net proto) ~src:node ~dst:owner
                        ~kind:Net.Scion_message ~bytes:24 ()
                    else begin
                      bump t "gc.barrier.deferred_registrations";
                      Net.send (Protocol.net proto) ~src:node ~dst:owner
                        ~kind:Net.Scion_message ~bytes:24 (fun _seq -> ())
                    end;
                    Bmx_dsm.Directory.add_entering
                      (Protocol.directory proto owner)
                      ~seq:(Net.current_seq (Protocol.net proto) ~src:node ~dst:owner)
                      ~uid:target_uid ~from:node;
                    Some owner
                | Some _ | None -> None
              else None
            in
            Net.send (Protocol.net proto) ~src:node ~dst:scion_at
              ~kind:Net.Scion_message ~bytes:40 (fun _seq ->
                install_scion scion_at;
                match provisional_owner with
                | Some owner
                  when Store.addr_of_uid (Protocol.store proto node) target_uid
                       = None ->
                    (* The scion's own protection is in place; the
                       provisional entry has done its job.  (If the
                       creator meanwhile cached a replica, the ordinary
                       exiting/entering reconciliation owns the entry and
                       it stays.) *)
                    Bmx_dsm.Directory.remove_entering
                      (Protocol.directory proto owner)
                      ~uid:target_uid ~from:node
                | Some _ | None -> ())
          end)

(* Storing an intra-bunch pointer to an object this node has never cached
   creates a cross-node dependency no SSP describes (inter-bunch
   references get a scion immediately, §3.2; intra-bunch ones normally
   lean on the local replica of the target, which does not exist here).
   The next local BGC will advertise the dependency as a conservative
   exiting entry, but until then the target's owner must not reclaim it:
   the barrier registers the entering ownerPtr at the owner immediately.
   The registration is later removed by the ordinary reconciliation: this
   node's BGC over the bunch claims the target while the reference lives,
   and stops claiming when it goes. *)
let protect_uncached_target t ~node ~src_bunch ~target =
  let proto = Gc_state.proto t in
  let store = Protocol.store proto node in
  match Protocol.uid_of_addr proto target with
  | None -> ()
  | Some uid ->
      let same_bunch =
        match Bmx_memory.Registry.bunch_of_addr (Protocol.registry proto) target with
        | Some tb -> Ids.Bunch.equal tb src_bunch
        | None -> false
      in
      if same_bunch && Store.addr_of_uid store uid = None then begin
        match Protocol.owner_of proto uid with
        | Some owner when not (Ids.Node.equal owner node) ->
            bump t "gc.barrier.remote_target_registrations";
            (* As above: across a cut the registration rides the queued
               reliable channel instead of a synchronous exchange, and
               the (conservative) entry is installed eagerly so the
               freshly written pointer is never left unprotected. *)
            if Net.reachable (Protocol.net proto) node owner then
              Net.record_rpc (Protocol.net proto) ~src:node ~dst:owner
                ~kind:Net.Scion_message ~bytes:24 ()
            else begin
              bump t "gc.barrier.deferred_registrations";
              Net.send (Protocol.net proto) ~src:node ~dst:owner
                ~kind:Net.Scion_message ~bytes:24 (fun _seq -> ())
            end;
            Bmx_dsm.Directory.add_entering
              (Protocol.directory proto owner)
              ~seq:(Net.current_seq (Protocol.net proto) ~src:node ~dst:owner)
              ~uid ~from:node
        | Some _ | None -> ()
      end

(* Crash recovery re-runs the barrier over recovered contents: the SSPs
   and entering registrations the original stores created were volatile
   at the crashed node, and they are derivable from the restored cells —
   every pointer field gets the same protection a fresh store of that
   value would have created (§8: the GC metadata is recoverable data).
   Targets of other not-yet-restored cells are fine: the scion is keyed
   by uid and protects the cell whenever it appears. *)
let reassert_protection t ~node addr =
  let proto = Gc_state.proto t in
  let store = Protocol.store proto node in
  match Store.resolve store addr with
  | None -> ()
  | Some (src_addr, src_obj) ->
      List.iter
        (fun target ->
          if not (Addr.is_null target) then begin
            protect_uncached_target t ~node
              ~src_bunch:src_obj.Heap_obj.bunch ~target;
            create_inter_ssp t ~node ~src_obj ~src_addr ~target_addr:target
          end)
        (Heap_obj.pointers src_obj)

let write_field t ~node addr index v =
  let proto = Gc_state.proto t in
  bump t "gc.barrier.checks";
  Protocol.write_field_raw proto ~node addr index v;
  match v with
  | Value.Ref target when not (Addr.is_null target) -> (
      let store = Protocol.store proto node in
      match Store.resolve store addr with
      | Some (src_addr, src_obj) ->
          protect_uncached_target t ~node
            ~src_bunch:src_obj.Heap_obj.bunch ~target;
          create_inter_ssp t ~node ~src_obj ~src_addr ~target_addr:target
      | None -> ())
  | Value.Ref _ | Value.Data _ -> ()
