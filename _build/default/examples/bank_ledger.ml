(* A replicated bank ledger — the "financial databases" workload the
   paper's introduction motivates (§1).

   Accounts live in one bunch, the transaction journal in another; branch
   offices (nodes) update accounts under write tokens and append journal
   entries that reference accounts across bunches (exercising the write
   barrier and inter-bunch SSPs).  Old journal segments are dropped and
   garbage-collected while the branches keep serving traffic.

   Run with: dune exec examples/bank_ledger.exe *)

open Bmx_util
module Cluster = Bmx.Cluster
module Value = Bmx_memory.Value

let n_accounts = 16
let n_branches = 3
let n_days = 4
let tx_per_day = 50

(* account = [balance] ; journal entry = [prev; account_ref; amount] *)

let () =
  let c = Cluster.create ~nodes:n_branches ~seed:2024 () in
  let rng = Rng.make 77 in
  let accounts_bunch = Cluster.new_bunch c ~home:0 in
  let journal_bunch = Cluster.new_bunch c ~home:1 in

  let accounts =
    Array.init n_accounts (fun _ ->
        Cluster.alloc c ~node:0 ~bunch:accounts_bunch [| Value.Data 1000 |])
  in
  (* The account index is the persistent root (held at the home branch). *)
  Array.iter (fun a -> Cluster.add_root c ~node:0 a) accounts;

  (* Branch handles: each branch tracks where it last saw each account. *)
  let handle = Array.init n_branches (fun _ -> Array.copy accounts) in

  let journal_head = ref Addr.null in
  let journal_root = ref Addr.null in

  let post_transaction ~branch =
    let i = Rng.int rng n_accounts in
    let amount = Rng.int rng 200 - 100 in
    (* Update the balance under the write token. *)
    let a = Cluster.acquire_write c ~node:branch handle.(branch).(i) in
    handle.(branch).(i) <- a;
    let bal = match Cluster.read c ~node:branch a 0 with
      | Value.Data b -> b
      | _ -> assert false
    in
    Cluster.write c ~node:branch a 0 (Value.Data (bal + amount));
    Cluster.release c ~node:branch a;
    (* Append a journal entry referencing the account (inter-bunch ref:
       the barrier creates the SSP). *)
    let prev = if Addr.is_null !journal_head then Value.nil else Value.Ref !journal_head in
    let entry =
      Cluster.alloc c ~node:branch ~bunch:journal_bunch
        [| prev; Value.Ref a; Value.Data amount |]
    in
    journal_head := entry
  in

  for day = 1 to n_days do
    (* Each day's journal is a fresh chain. *)
    journal_head := Addr.null;
    (* A day of trading across all branches. *)
    for _ = 1 to tx_per_day do
      post_transaction ~branch:(Rng.int rng n_branches)
    done;
    (* The journal root moves to today's chain: yesterday's entries become
       unreachable (retention policy: one day). *)
    if not (Addr.is_null !journal_root) then
      Cluster.remove_root c ~node:1 !journal_root;
    let head_at_home = Cluster.acquire_read c ~node:1 !journal_head in
    Cluster.release c ~node:1 head_at_home;
    Cluster.add_root c ~node:1 head_at_home;
    journal_root := head_at_home;
    (* Nightly GC at every branch, independently, while balances stay
       consistent. *)
    let reclaimed = Cluster.collect_until_quiescent c () in
    let total =
      Array.fold_left
        (fun acc a ->
          let a' = Cluster.acquire_read c ~node:0 a in
          let v = match Cluster.read c ~node:0 a' 0 with
            | Value.Data b -> b
            | _ -> assert false
          in
          Cluster.release c ~node:0 a';
          acc + v)
        0 accounts
    in
    Printf.printf "day %d: %3d journal entries reclaimed, ledger total = %d\n"
      day reclaimed total;
    match Bmx.Audit.check_safety c with
    | Ok () -> ()
    | Error m -> failwith ("heap audit failed: " ^ m)
  done;

  Printf.printf "collector token acquires over %d days: %d\n" n_days
    (Stats.get (Cluster.stats c) "dsm.gc.acquire_read"
    + Stats.get (Cluster.stats c) "dsm.gc.acquire_write");
  Printf.printf "inter-bunch SSPs created by the barrier: %d\n"
    (Stats.get (Cluster.stats c) "gc.barrier.inter_refs")
