(** Plain-text table rendering for the experiment harness.

    The bench executable prints one table per experiment (the rows the
    paper's missing evaluation section would have reported); this module
    keeps the formatting in one place. *)

type t

val create : title:string -> columns:string list -> t

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] if the row width differs from the header. *)

val add_rowf : t -> ('a, unit, string, unit) format4 -> 'a
(** [add_rowf t fmt ...] formats a single string and splits it on ['|'] into
    cells: [add_rowf t "%d|%s" 1 "x"]. *)

val render : t -> string
val print : t -> unit
