examples/quickstart.mli:
