lib/util/tracelog.ml: Array Format List Printf
