open Bmx_util
module Cluster = Bmx.Cluster
module Protocol = Bmx_dsm.Protocol
module Store = Bmx_memory.Store
module Segment = Bmx_memory.Segment
module Value = Bmx_memory.Value
module Gc_state = Bmx_gc.Gc_state
module Ssp = Bmx_gc.Ssp
module Collect = Bmx_gc.Collect

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

(* ----------------------------------------------------------- write barrier *)

let test_barrier_same_bunch_no_ssp () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let y = Cluster.alloc c ~node:0 ~bunch:b [| Value.nil |] in
  Cluster.write c ~node:0 y 0 (Value.Ref x);
  check_int "no stub for intra-bunch ref" 0
    (List.length (Gc_state.inter_stubs (Cluster.gc c) ~node:0 ~bunch:b))

let test_barrier_cross_bunch_local_ssp () =
  let c = Cluster.create ~nodes:1 () in
  let b1 = Cluster.new_bunch c ~home:0 in
  let b2 = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b2 [| Value.Data 1 |] in
  let y = Cluster.alloc c ~node:0 ~bunch:b1 [| Value.nil |] in
  Cluster.write c ~node:0 y 0 (Value.Ref x);
  let stubs = Gc_state.inter_stubs (Cluster.gc c) ~node:0 ~bunch:b1 in
  check_int "one stub" 1 (List.length stubs);
  let stub = List.hd stubs in
  check_int "scion local (target bunch mapped here)" 0 stub.Ssp.is_scion_at;
  check_int "matching local scion" 1
    (List.length (Gc_state.inter_scions (Cluster.gc c) ~node:0 ~bunch:b2));
  check_int "no scion message needed" 0
    (Stats.get (Cluster.stats c) "gc.barrier.scion_messages")

let test_barrier_cross_node_scion_message () =
  let c = Cluster.create ~nodes:2 () in
  let b1 = Cluster.new_bunch c ~home:0 in
  let b2 = Cluster.new_bunch c ~home:1 in
  let x = Cluster.alloc c ~node:1 ~bunch:b2 [| Value.Data 1 |] in
  (* Creating the reference at N0, where B2 is not mapped, must emit a
     scion-message to B2's home. *)
  let y = Cluster.alloc c ~node:0 ~bunch:b1 [| Value.Ref x |] in
  ignore y;
  check_int "scion message sent" 1
    (Stats.get (Cluster.stats c) "gc.barrier.scion_messages");
  check_int "scion absent before delivery" 0
    (List.length (Gc_state.inter_scions (Cluster.gc c) ~node:1 ~bunch:b2));
  ignore (Cluster.drain c);
  check_int "scion created at B2's home after delivery" 1
    (List.length (Gc_state.inter_scions (Cluster.gc c) ~node:1 ~bunch:b2))

let test_barrier_duplicate_suppression () =
  let c = Cluster.create ~nodes:1 () in
  let b1 = Cluster.new_bunch c ~home:0 in
  let b2 = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b2 [| Value.Data 1 |] in
  let y = Cluster.alloc c ~node:0 ~bunch:b1 [| Value.nil |] in
  Cluster.write c ~node:0 y 0 (Value.Ref x);
  Cluster.write c ~node:0 y 0 (Value.Ref x);
  check_int "duplicate stub suppressed" 1
    (List.length (Gc_state.inter_stubs (Cluster.gc c) ~node:0 ~bunch:b1))

let test_barrier_checks_counted () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 0 |] in
  Cluster.write c ~node:0 x 0 (Value.Data 1);
  Cluster.write c ~node:0 x 0 (Value.Data 2);
  (* alloc initialization also goes through the barrier: 1 + 2 writes *)
  check_int "every store barrier-checked" 3
    (Stats.get (Cluster.stats c) "gc.barrier.checks")

(* -------------------------------------------------------------------- BGC *)

let test_bgc_reclaims_unreachable () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let live = Bmx_workload.Graphgen.linked_list c ~node:0 ~bunch:b ~len:5 in
  let _dead = Bmx_workload.Graphgen.linked_list c ~node:0 ~bunch:b ~len:7 in
  Cluster.add_root c ~node:0 live;
  let r = Cluster.bgc c ~node:0 ~bunch:b in
  check_int "live survive" 5 r.Collect.r_live;
  check_int "dead reclaimed" 7 r.Collect.r_reclaimed;
  check_int "owned live copied" 5 r.Collect.r_copied;
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c))

let test_bgc_leaves_forwarders () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  Cluster.add_root c ~node:0 x;
  let _ = Cluster.bgc c ~node:0 ~bunch:b in
  let s = Protocol.store (Cluster.proto c) 0 in
  (match Store.cell s x with
  | Some (Store.Forwarder target) ->
      check_int "forwarder points at the copy" target (Store.current_addr s x)
  | _ -> Alcotest.fail "expected forwarding header in from-space");
  check_bool "old address still readable via forwarder" true
    (Value.equal (Cluster.read c ~node:0 x 0) (Value.Data 1))

let test_bgc_roots_from_scions () =
  (* An object reachable ONLY from an inter-bunch scion must survive. *)
  let c = Cluster.create ~nodes:1 () in
  let b1 = Cluster.new_bunch c ~home:0 in
  let b2 = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b2 [| Value.Data 1 |] in
  let y = Cluster.alloc c ~node:0 ~bunch:b1 [| Value.Ref x |] in
  Cluster.add_root c ~node:0 y;
  (* Collect B2 alone: x has no mutator root, only the scion from B1. *)
  let r = Cluster.bgc c ~node:0 ~bunch:b2 in
  check_int "scion kept x alive" 0 r.Collect.r_reclaimed;
  check_bool "x survives" true
    (Cluster.cached_at c ~node:0 ~uid:(Cluster.uid_at c ~node:0 x))

let test_bgc_roots_from_entering_ownerptrs () =
  (* An object with no local root but a remote replica must survive at
     the owner (entering ownerPtr root, §4.1). *)
  let c = Cluster.create ~nodes:2 () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  let x1 = Cluster.acquire_read c ~node:1 x in
  Cluster.release c ~node:1 x1;
  Cluster.add_root c ~node:1 x1;
  (* No root at N0.  BGC at N0 must keep x because N1's replica enters. *)
  let r = Cluster.bgc c ~node:0 ~bunch:b in
  check_int "entering ownerPtr kept x alive" 0 r.Collect.r_reclaimed;
  check_bool "x survives at owner" true
    (Cluster.cached_at c ~node:0 ~uid:(Cluster.uid_at c ~node:0 x))

let test_bgc_stub_table_regeneration () =
  (* A dropped inter-bunch reference must disappear from the new stub
     table; the scion dies at the next cleaner pass; the target at the
     next BGC. *)
  let c = Cluster.create ~nodes:1 () in
  let b1 = Cluster.new_bunch c ~home:0 in
  let b2 = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b2 [| Value.Data 1 |] in
  let y = Cluster.alloc c ~node:0 ~bunch:b1 [| Value.Ref x |] in
  Cluster.add_root c ~node:0 y;
  check_int "stub exists" 1
    (List.length (Gc_state.inter_stubs (Cluster.gc c) ~node:0 ~bunch:b1));
  (* Drop the reference. *)
  let y' = Cluster.acquire_write c ~node:0 y in
  Cluster.write c ~node:0 y' 0 Value.nil;
  Cluster.release c ~node:0 y';
  let _ = Cluster.bgc c ~node:0 ~bunch:b1 in
  check_int "stub dropped from the new table" 0
    (List.length (Gc_state.inter_stubs (Cluster.gc c) ~node:0 ~bunch:b1));
  ignore (Cluster.drain c);
  check_int "scion cleaned" 0
    (List.length (Gc_state.inter_scions (Cluster.gc c) ~node:0 ~bunch:b2));
  let r = Cluster.bgc c ~node:0 ~bunch:b2 in
  check_int "target reclaimed" 1 r.Collect.r_reclaimed

let test_bgc_never_acquires_tokens () =
  let c = Cluster.create ~nodes:3 () in
  let b = Cluster.new_bunch c ~home:0 in
  let head = Bmx_workload.Graphgen.binary_tree c ~node:0 ~bunch:b ~depth:4 in
  Cluster.add_root c ~node:0 head;
  let h1 = Cluster.acquire_read c ~node:1 head in
  Cluster.release c ~node:1 h1;
  List.iter (fun n -> ignore (Cluster.bgc c ~node:n ~bunch:b)) [ 0; 1; 2 ];
  check_int "zero collector acquires" 0
    (Stats.get (Cluster.stats c) "dsm.gc.acquire_read"
    + Stats.get (Cluster.stats c) "dsm.gc.acquire_write");
  check_int "zero collector-caused invalidations" 0
    (Stats.get (Cluster.stats c) "dsm.gc.invalidations")

let test_bgc_flips_segments () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 1 |] in
  Cluster.add_root c ~node:0 x;
  let s = Protocol.store (Cluster.proto c) 0 in
  let _ = Cluster.bgc c ~node:0 ~bunch:b in
  let roles = List.map (fun seg -> seg.Segment.role) (Store.segments_of_bunch s b) in
  check_bool "a from-space segment exists" true (List.mem Segment.From_space roles);
  check_bool "the to-space became the active space" true (List.mem Segment.Active roles);
  (* New allocation lands in the new active segment, not in from-space. *)
  let y = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 2 |] in
  (match Store.segment_at s y with
  | Some seg -> check_bool "fresh alloc in active space" true (seg.Segment.role = Segment.Active)
  | None -> Alcotest.fail "no segment for fresh alloc")

let test_bgc_independent_per_replica () =
  (* Two replicas collect independently; addresses diverge; both mutators
     keep working; nothing is lost. *)
  let c = Cluster.create ~nodes:2 () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 7 |] in
  Cluster.add_root c ~node:0 x;
  let x1 = Cluster.acquire_read c ~node:1 x in
  Cluster.release c ~node:1 x1;
  Cluster.add_root c ~node:1 x1;
  let _ = Cluster.bgc c ~node:0 ~bunch:b in
  let uid = Cluster.uid_at c ~node:0 x in
  let a0 = Store.addr_of_uid (Protocol.store (Cluster.proto c) 0) uid in
  let a1 = Store.addr_of_uid (Protocol.store (Cluster.proto c) 1) uid in
  check_bool "addresses diverge (owner moved, replica lazy)" true (a0 <> a1);
  check_bool "weak read still fine at N1" true
    (Value.equal (Cluster.read c ~weak:true ~node:1 x1 0) (Value.Data 7));
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c))

let test_bgc_large_heap_multi_segment () =
  let c = Cluster.create ~nodes:1 () in
  let b = Cluster.new_bunch c ~home:0 in
  (* Enough objects to span several segments. *)
  let head = Bmx_workload.Graphgen.linked_list c ~node:0 ~bunch:b ~len:8000 in
  Cluster.add_root c ~node:0 head;
  let r = Cluster.bgc c ~node:0 ~bunch:b in
  check_int "all live copied" 8000 r.Collect.r_copied;
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c));
  (* And a second collection works on the moved heap. *)
  let r2 = Cluster.bgc c ~node:0 ~bunch:b in
  check_int "still live" 8000 r2.Collect.r_live

let () =
  Alcotest.run "gc"
    [
      ( "barrier",
        [
          Alcotest.test_case "intra-bunch stores make no SSP" `Quick
            test_barrier_same_bunch_no_ssp;
          Alcotest.test_case "cross-bunch store makes a local SSP" `Quick
            test_barrier_cross_bunch_local_ssp;
          Alcotest.test_case "cross-node target needs a scion-message" `Quick
            test_barrier_cross_node_scion_message;
          Alcotest.test_case "duplicate stubs suppressed" `Quick
            test_barrier_duplicate_suppression;
          Alcotest.test_case "every store checked" `Quick test_barrier_checks_counted;
        ] );
      ( "bgc",
        [
          Alcotest.test_case "reclaims unreachable objects" `Quick
            test_bgc_reclaims_unreachable;
          Alcotest.test_case "leaves forwarding headers" `Quick test_bgc_leaves_forwarders;
          Alcotest.test_case "scions are roots" `Quick test_bgc_roots_from_scions;
          Alcotest.test_case "entering ownerPtrs are roots" `Quick
            test_bgc_roots_from_entering_ownerptrs;
          Alcotest.test_case "stub tables regenerate" `Quick
            test_bgc_stub_table_regeneration;
          Alcotest.test_case "never acquires tokens" `Quick test_bgc_never_acquires_tokens;
          Alcotest.test_case "segment roles flip" `Quick test_bgc_flips_segments;
          Alcotest.test_case "replicas collect independently" `Quick
            test_bgc_independent_per_replica;
          Alcotest.test_case "multi-segment heap" `Quick test_bgc_large_heap_multi_segment;
        ] );
    ]
