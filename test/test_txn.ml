(* Transactions over the weakly consistent DSM (§10 future work). *)

open Bmx_util
module Cluster = Bmx.Cluster
module Protocol = Bmx_dsm.Protocol
module Value = Bmx_memory.Value
module Txn = Bmx_txn.Txn
module Rvm = Bmx_rvm.Rvm

let check = Alcotest.check
let check_int = check Alcotest.int
let check_bool = check Alcotest.bool

let setup () =
  let c = Cluster.create ~nodes:3 () in
  let b = Cluster.new_bunch c ~home:0 in
  let x = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 10 |] in
  let y = Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 20 |] in
  Cluster.add_root c ~node:0 x;
  Cluster.add_root c ~node:0 y;
  (c, b, x, y)

let data c node addr =
  match Cluster.read c ~node addr 0 with Value.Data v -> v | _ -> assert false

let test_commit_visible () =
  let c, _, x, y = setup () in
  (* Transfer 5 from x to y at node 1, transactionally. *)
  let t = Txn.begin_ c ~node:1 in
  let vx = match Txn.read t x 0 with Value.Data v -> v | _ -> assert false in
  let vy = match Txn.read t y 0 with Value.Data v -> v | _ -> assert false in
  Txn.write t x 0 (Value.Data (vx - 5));
  Txn.write t y 0 (Value.Data (vy + 5));
  check_int "write set" 2 (Txn.write_set_size t);
  Txn.commit t;
  check_bool "committed" true (Txn.status t = Txn.Committed);
  (* Node 2 observes the committed state. *)
  let x2 = Cluster.acquire_read c ~node:2 x in
  let y2 = Cluster.acquire_read c ~node:2 y in
  check_int "x" 5 (data c 2 x2);
  check_int "y" 25 (data c 2 y2);
  Cluster.release c ~node:2 x2;
  Cluster.release c ~node:2 y2

let test_abort_restores () =
  let c, _, x, y = setup () in
  let t = Txn.begin_ c ~node:1 in
  Txn.write t x 0 (Value.Data 999);
  Txn.write t x 0 (Value.Data 1000);
  Txn.write t y 0 (Value.Data 0);
  Txn.abort t;
  check_bool "aborted" true (Txn.status t = Txn.Aborted);
  let x0 = Cluster.acquire_read c ~node:0 x in
  let y0 = Cluster.acquire_read c ~node:0 y in
  check_int "x restored" 10 (data c 0 x0);
  check_int "y restored" 20 (data c 0 y0);
  Cluster.release c ~node:0 x0;
  Cluster.release c ~node:0 y0

let test_isolation_conflict () =
  let c, _, x, _ = setup () in
  let t1 = Txn.begin_ c ~node:1 in
  Txn.write t1 x 0 (Value.Data 11);
  (* A concurrent transaction at node 2 cannot touch x. *)
  let t2 = Txn.begin_ c ~node:2 in
  check_bool "conflict raised" true
    (try
       ignore (Txn.read t2 x 0);
       false
     with Txn.Conflict _ -> true);
  Txn.abort t2;
  Txn.commit t1;
  (* After commit, node 2 reads the new value. *)
  let t3 = Txn.begin_ c ~node:2 in
  check_bool "post-commit read" true (Txn.read t3 x 0 = Value.Data 11);
  Txn.commit t3

let test_read_then_upgrade () =
  let c, _, x, _ = setup () in
  let t = Txn.begin_ c ~node:1 in
  ignore (Txn.read t x 0);
  check_int "read set" 1 (Txn.read_set_size t);
  Txn.write t x 0 (Value.Data 42);
  check_int "upgraded to write set" 1 (Txn.write_set_size t);
  check_int "read set drained" 0 (Txn.read_set_size t);
  Txn.commit t

let test_alloc_in_aborted_txn_is_garbage () =
  let c, b, x, _ = setup () in
  let t = Txn.begin_ c ~node:0 in
  let fresh = Txn.alloc t ~bunch:b [| Value.Data 7 |] in
  Txn.write t x 0 (Value.Ref fresh);
  Txn.abort t;
  (* x's old value is restored, so the allocation is unreachable. *)
  let reclaimed = Cluster.collect_until_quiescent c () in
  check_bool "aborted allocation collected" true (reclaimed >= 1);
  check_bool "safety" true (Result.is_ok (Bmx.Audit.check_safety c))

let test_bgc_during_open_txn () =
  (* The paper's collector runs happily in the middle of a transaction —
     it acquires no token, so transactional locks cannot block it. *)
  let c, b, x, _ = setup () in
  let t = Txn.begin_ c ~node:1 in
  Txn.write t x 0 (Value.Data 77);
  let r = Cluster.bgc c ~node:0 ~bunch:b in
  check_bool "BGC ran under an open transaction" true (r.Bmx_gc.Collect.r_live >= 2);
  check_int "no collector tokens" 0
    (Stats.get (Cluster.stats c) "dsm.gc.acquire_read"
    + Stats.get (Cluster.stats c) "dsm.gc.acquire_write");
  (* ... while the strongly consistent baseline collector conflicts. *)
  check_bool "locking collector blocks on the transaction" true
    (try
       ignore (Bmx_baseline.Locking_gc.run (Cluster.gc c) ~node:0 ~bunch:b);
       false
     with Failure _ -> true);
  Txn.commit t;
  check_bool "txn value committed" true
    (let x0 = Cluster.acquire_read c ~node:0 x in
     let v = data c 0 x0 in
     Cluster.release c ~node:0 x0;
     v = 77)

let test_durable_commit () =
  let c, _, x, y = setup () in
  let disk =
    Rvm.create ~copy:(fun (a, im) -> (a, Bmx_memory.Heap_obj.image_copy im)) ()
  in
  let t = Txn.begin_ c ~node:1 in
  Txn.write t x 0 (Value.Data 111);
  Txn.write t y 0 (Value.Data 222);
  Txn.commit ~durable:disk t;
  (* Crash the disk and recover: both after-images are there. *)
  Rvm.crash disk;
  ignore (Rvm.recover disk);
  check_int "both after-images durable" 2 (Rvm.cardinal disk);
  let values =
    Rvm.fold disk ~init:[] ~f:(fun _ (_, im) acc ->
        (match im.Bmx_memory.Heap_obj.im_fields.(0) with
        | Value.Data v -> v
        | _ -> -1)
        :: acc)
    |> List.sort compare
  in
  check (Alcotest.list Alcotest.int) "values" [ 111; 222 ] values

let test_txn_across_gc_moves () =
  (* A transaction keeps working on objects the collector moves under
     it: handles stay valid through [Txn.current]. *)
  let c, b, x, _ = setup () in
  let t = Txn.begin_ c ~node:0 in
  Txn.write t x 0 (Value.Data 5);
  let _ = Cluster.bgc c ~node:0 ~bunch:b in
  (* The object moved; the transaction still reads and writes it. *)
  check_bool "read after move" true (Txn.read t x 0 = Value.Data 5);
  Txn.write t x 0 (Value.Data 6);
  Txn.commit t;
  let x' = Cluster.acquire_read c ~node:0 x in
  check_int "final value" 6 (data c 0 x');
  Cluster.release c ~node:0 x'

(* Property: money is conserved across any mix of committed and aborted
   transfers, with collections interleaved anywhere. *)
let prop_conservation =
  QCheck.Test.make ~name:"transfers conserve the total under commit/abort/GC"
    ~count:50
    QCheck.(list_of_size (QCheck.Gen.int_range 5 25) (triple (int_bound 7) (int_bound 7) bool))
    (fun steps ->
      let c = Cluster.create ~nodes:3 () in
      let b = Cluster.new_bunch c ~home:0 in
      let accounts =
        Array.init 8 (fun _ -> Cluster.alloc c ~node:0 ~bunch:b [| Value.Data 100 |])
      in
      Array.iter (fun a -> Cluster.add_root c ~node:0 a) accounts;
      let step k (src, dst, commit) =
        let node = k mod 3 in
        let t = Txn.begin_ c ~node in
        (try
           let vs = match Txn.read t accounts.(src) 0 with
             | Value.Data v -> v
             | _ -> assert false
           in
           Txn.write t accounts.(src) 0 (Value.Data (vs - 7));
           (* Read the destination AFTER debiting, so self-transfers see
              their own write (read-your-writes within the txn). *)
           let vd = match Txn.read t accounts.(dst) 0 with
             | Value.Data v -> v
             | _ -> assert false
           in
           Txn.write t accounts.(dst) 0 (Value.Data (vd + 7));
           if commit then Txn.commit t else Txn.abort t
         with Txn.Conflict _ -> Txn.abort t);
        if k mod 4 = 0 then ignore (Cluster.gc_round c)
      in
      List.iteri step steps;
      ignore (Cluster.collect_until_quiescent c ());
      let total =
        Array.fold_left
          (fun acc a ->
            let a' = Cluster.acquire_read c ~node:0 a in
            let v = data c 0 a' in
            Cluster.release c ~node:0 a';
            acc + v)
          0 accounts
      in
      total = 800 && Result.is_ok (Bmx.Audit.check_safety c))

let () =
  Alcotest.run "txn"
    [
      ( "acid",
        [
          Alcotest.test_case "commit makes effects visible" `Quick test_commit_visible;
          Alcotest.test_case "abort restores before-images" `Quick test_abort_restores;
          Alcotest.test_case "isolation via held tokens" `Quick test_isolation_conflict;
          Alcotest.test_case "read-to-write upgrade" `Quick test_read_then_upgrade;
          Alcotest.test_case "aborted allocations become garbage" `Quick
            test_alloc_in_aborted_txn_is_garbage;
          Alcotest.test_case "durable commit via RVM" `Quick test_durable_commit;
        ] );
      ( "gc interplay",
        [
          Alcotest.test_case "BGC runs under an open transaction" `Quick
            test_bgc_during_open_txn;
          Alcotest.test_case "transaction survives GC moves" `Quick
            test_txn_across_gc_moves;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| 20260704 |]) prop_conservation ]);
    ]
