type event = { seq : int; category : string; detail : string }

type t = {
  mutable enabled : bool;
  capacity : int;
  buf : event option array;
  mutable next : int; (* next write slot *)
  mutable count : int; (* total events ever recorded *)
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Tracelog.create: capacity must be positive";
  { enabled = true; capacity; buf = Array.make capacity None; next = 0; count = 0 }

let enabled t = t.enabled
let set_enabled t b = t.enabled <- b

let record t ~category detail =
  if t.enabled then begin
    t.buf.(t.next) <- Some { seq = t.count; category; detail };
    t.next <- (t.next + 1) mod t.capacity;
    t.count <- t.count + 1
  end

let recordf t ~category fmt =
  if t.enabled then Printf.ksprintf (record t ~category) fmt
  else Printf.ikfprintf ignore () fmt

let events t =
  (* Walking the ring from [next] visits slots oldest-first. *)
  let out = ref [] in
  for i = 0 to t.capacity - 1 do
    match t.buf.((t.next + i) mod t.capacity) with
    | Some e -> out := e :: !out
    | None -> ()
  done;
  List.rev !out

let recent t n =
  let all = events t in
  let len = List.length all in
  if len <= n then all else List.filteri (fun i _ -> i >= len - n) all

let length t = List.length (events t)
let total_recorded t = t.count

let clear t =
  Array.fill t.buf 0 t.capacity None;
  t.next <- 0;
  t.count <- 0

let pp_event ppf e =
  Format.fprintf ppf "[%06d] %-8s %s" e.seq e.category e.detail
