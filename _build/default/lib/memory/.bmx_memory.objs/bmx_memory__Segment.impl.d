lib/memory/segment.ml: Addr Bitmap Bmx_util Format Ids List
