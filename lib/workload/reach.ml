(* Exact decremental+incremental reachability over a fixed population.
   See reach.mli for the algorithm; everything here is flat arrays and a
   bit-per-object mark so the driver's legality check never allocates.

   Encoding: edge id [eid = src * arity + slot].  [out_.(eid)] is the
   slot's target index or -1.  In-edges of a node form a doubly-linked
   list threaded through [e_next]/[e_prev] (indexed by eid), with
   [pred_head.(target)] the first eid or -1 — so unlinking an edge on
   overwrite is O(1) and walking a node's predecessors is O(in-degree). *)

module Perfcount = Bmx_util.Perfcount

type t = {
  n : int;
  arity : int;
  out_ : int array; (* n*arity: slot target or -1 *)
  pred_head : int array; (* n: first incoming eid or -1 *)
  e_next : int array; (* n*arity *)
  e_prev : int array; (* n*arity *)
  roots : int array; (* n: root count *)
  reach : Bytes.t; (* mark bitmap, 1 bit per object *)
  (* Preallocated traversal scratch.  [queue] holds each node at most
     once per search (guarded by the mark bit or the stamp); [work] is
     the cascade worklist — pushes are bounded by one per (cleared
     node, out slot), so n*arity entries suffice for any single event. *)
  queue : int array;
  stamp : int array;
  mutable cur_stamp : int;
  work : int array;
}

let bit_get b i = Char.code (Bytes.unsafe_get b (i lsr 3)) land (1 lsl (i land 7)) <> 0

let bit_set b i =
  let k = i lsr 3 in
  Bytes.unsafe_set b k
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b k) lor (1 lsl (i land 7))))

let bit_clear b i =
  let k = i lsr 3 in
  Bytes.unsafe_set b k
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get b k) land lnot (1 lsl (i land 7)) land 0xff))

let create ~n ~arity =
  if n <= 0 || arity < 0 then invalid_arg "Reach.create";
  let ne = max 1 (n * arity) in
  {
    n;
    arity;
    out_ = Array.make ne (-1);
    pred_head = Array.make n (-1);
    e_next = Array.make ne (-1);
    e_prev = Array.make ne (-1);
    roots = Array.make n 0;
    reach = Bytes.make ((n + 7) lsr 3) '\000';
    queue = Array.make n 0;
    stamp = Array.make n 0;
    cur_stamp = 0;
    work = Array.make (ne + 1) 0;
  }

let reset t =
  Array.fill t.out_ 0 (Array.length t.out_) (-1);
  Array.fill t.pred_head 0 t.n (-1);
  Array.fill t.e_next 0 (Array.length t.e_next) (-1);
  Array.fill t.e_prev 0 (Array.length t.e_prev) (-1);
  Array.fill t.roots 0 t.n 0;
  Bytes.fill t.reach 0 (Bytes.length t.reach) '\000'

let reachable t i = bit_get t.reach i
let root_count t i = t.roots.(i)

let reachable_count t =
  let c = ref 0 in
  for i = 0 to t.n - 1 do
    if bit_get t.reach i then incr c
  done;
  !c

let touched k =
  Perfcount.counters.Perfcount.reach_nodes_touched <-
    Perfcount.counters.Perfcount.reach_nodes_touched + k

(* Mark [start] and everything newly reachable through it. *)
let mark_forward t start =
  if not (bit_get t.reach start) then begin
    bit_set t.reach start;
    t.queue.(0) <- start;
    let head = ref 0 and tail = ref 1 in
    while !head < !tail do
      let x = t.queue.(!head) in
      incr head;
      touched 1;
      let base = x * t.arity in
      for s = 0 to t.arity - 1 do
        let y = t.out_.(base + s) in
        if y >= 0 && not (bit_get t.reach y) then begin
          bit_set t.reach y;
          t.queue.(!tail) <- y;
          incr tail
        end
      done
    done
  end

let link_edge t eid target =
  let h = t.pred_head.(target) in
  t.e_prev.(eid) <- -1;
  t.e_next.(eid) <- h;
  if h >= 0 then t.e_prev.(h) <- eid;
  t.pred_head.(target) <- eid

let unlink_edge t eid target =
  let p = t.e_prev.(eid) and nx = t.e_next.(eid) in
  if p >= 0 then t.e_next.(p) <- nx else t.pred_head.(target) <- nx;
  if nx >= 0 then t.e_prev.(nx) <- p;
  t.e_next.(eid) <- -1;
  t.e_prev.(eid) <- -1

(* A support of [j0] vanished: re-derive its reachability, cascading to
   dependents.  The worklist holds candidates whose support may be gone;
   for each still-marked, root-free candidate we search backward through
   marked predecessors.  Finding a rooted anchor proves a live path (the
   backward walk is a real path in the graph, and marks never understate
   reachability, so the walk only crosses genuinely usable edges).
   Exhausting a rootless closure proves every member dead: a rooted path
   into the closure would have put its entry point — and then the root
   itself — into the search.  Clearing the closure may orphan its
   out-targets, so those re-enter the worklist. *)
let on_support_lost t j0 =
  let wh = ref 0 and wt = ref 0 in
  t.work.(0) <- j0;
  wt := 1;
  while !wh < !wt do
    let j = t.work.(!wh) in
    incr wh;
    if bit_get t.reach j && t.roots.(j) = 0 then begin
      t.cur_stamp <- t.cur_stamp + 1;
      let st = t.cur_stamp in
      t.queue.(0) <- j;
      t.stamp.(j) <- st;
      let head = ref 0 and tail = ref 1 in
      let anchored = ref false in
      while (not !anchored) && !head < !tail do
        let x = t.queue.(!head) in
        incr head;
        touched 1;
        if t.roots.(x) > 0 then anchored := true
        else begin
          let e = ref t.pred_head.(x) in
          while !e >= 0 do
            let p = !e / t.arity in
            if bit_get t.reach p && t.stamp.(p) <> st then begin
              t.stamp.(p) <- st;
              t.queue.(!tail) <- p;
              incr tail
            end;
            e := t.e_next.(!e)
          done
        end
      done;
      if not !anchored then begin
        (* queue.(0 .. tail-1) is the whole rootless backward closure. *)
        for k = 0 to !tail - 1 do
          bit_clear t.reach t.queue.(k)
        done;
        for k = 0 to !tail - 1 do
          let base = t.queue.(k) * t.arity in
          for s = 0 to t.arity - 1 do
            let y = t.out_.(base + s) in
            if y >= 0 && bit_get t.reach y then begin
              t.work.(!wt) <- y;
              incr wt
            end
          done
        done
      end
    end
  done

let set_edge t ~src ~slot target =
  if src < 0 || src >= t.n || slot < 0 || slot >= t.arity then
    invalid_arg "Reach.set_edge";
  if target >= t.n then invalid_arg "Reach.set_edge: target out of range";
  let eid = (src * t.arity) + slot in
  let old = t.out_.(eid) in
  if old <> target then begin
    if old >= 0 then unlink_edge t eid old;
    t.out_.(eid) <- target;
    if target >= 0 then begin
      link_edge t eid target;
      if bit_get t.reach src then mark_forward t target
    end;
    if old >= 0 then begin
      Perfcount.counters.Perfcount.memo_invalidations <-
        Perfcount.counters.Perfcount.memo_invalidations + 1;
      on_support_lost t old
    end
  end

let add_root t i =
  if i < 0 || i >= t.n then invalid_arg "Reach.add_root";
  t.roots.(i) <- t.roots.(i) + 1;
  mark_forward t i

let drop_root t i =
  if i < 0 || i >= t.n then invalid_arg "Reach.drop_root";
  if t.roots.(i) <= 0 then invalid_arg "Reach.drop_root: no root held";
  t.roots.(i) <- t.roots.(i) - 1;
  if t.roots.(i) = 0 then begin
    Perfcount.counters.Perfcount.memo_invalidations <-
      Perfcount.counters.Perfcount.memo_invalidations + 1;
    on_support_lost t i
  end
