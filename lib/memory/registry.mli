(** The BMX-server's segment registry, sharded by address range.

    A BMX-server runs on every node and provides allocation of
    non-overlapping segments (§8).  The registry is the authority handing
    out address ranges, so no two segments — whether allocation spaces or
    to-spaces created by concurrent BGCs on different replicas — can ever
    collide.  This is what lets the owner of an object pick its new
    to-space address unilaterally (§4.2): the address is globally fresh by
    construction.

    To keep that authority from becoming a cluster-wide bottleneck, the
    address space is carved into fixed contiguous regions, one per shard:
    shard [k] covers [[first_lo + k*2^40, first_lo + (k+1)*2^40)], and a
    bunch allocates from shard [bunch mod shards].  Routing an address to
    its shard is O(1) arithmetic; the floor lookup that follows is local
    to the shard.  Each shard has an explicit owning node whose
    BMX-server holds the authoritative allocation cursor; the range index
    itself is a cluster-wide read cache that can never go stale, because
    ranges are immutable once carved — never freed, never moved.  So when
    a shard's owner crashes, lookups ([find], [bunch_of_addr]) keep
    answering and only new allocations to that shard fail, until the
    shard is recovered (its RVM journal replayed) or adopted by a
    survivor — see [Bmx.Persist]. *)

type entry = {
  range : Bmx_util.Addr.Range.t;
  bunch : Bmx_util.Ids.Bunch.t;
  origin : Bmx_util.Ids.Node.t;  (** node the range was handed to *)
}

type t

val create : ?shards:int -> ?first_addr:Bmx_util.Addr.t -> unit -> t
(** Ranges are carved sequentially per shard; shard 0's region starts at
    [first_addr] (default one page past null, so that null is never
    inside a segment).  [shards] defaults to 1, which behaves exactly
    like the unsharded registry.  All shards start owned by node 0 and
    up; see {!set_shard_owner}. *)

val alloc_range :
  t ->
  bunch:Bmx_util.Ids.Bunch.t ->
  origin:Bmx_util.Ids.Node.t ->
  ?bytes:int ->
  unit ->
  Bmx_util.Addr.Range.t
(** A fresh, globally non-overlapping range ([bytes] defaults to
    {!Segment.default_bytes}), registered to [bunch] and carved from the
    shard [shard_of_bunch] routes to.  @raise Failure if that shard is
    down (owner crashed and not yet recovered) or its region is
    exhausted. *)

val find : t -> Bmx_util.Addr.t -> entry option
(** The entry whose range contains the address, if any.  O(1) shard
    routing plus an O(log segments-in-shard) floor lookup. *)

val bunch_of_addr : t -> Bmx_util.Addr.t -> Bmx_util.Ids.Bunch.t option

val entries_of_bunch : t -> Bmx_util.Ids.Bunch.t -> entry list
(** All ranges registered to the bunch, oldest first. *)

val total_bytes : t -> int
(** Total address-space bytes handed out so far.  O(1): a maintained
    gauge, not a fold over segments. *)

(** {2 Shard topology} *)

val num_shards : t -> int

val shard_of_addr : t -> Bmx_util.Addr.t -> int option
(** O(1) arithmetic routing: the shard whose region contains the
    address, or [None] for addresses outside every region (e.g. null). *)

val shard_of_bunch : t -> Bmx_util.Ids.Bunch.t -> int
(** The shard a bunch allocates from: [bunch mod num_shards].
    Deterministic, so every node routes identically without
    coordination. *)

val shard_owner : t -> int -> Bmx_util.Ids.Node.t
val shard_up : t -> int -> bool

val shard_bytes : t -> int -> int
(** O(1) maintained gauge: bytes carved from this shard. *)

val shard_region : t -> int -> Bmx_util.Addr.Range.t
val shard_entries : t -> int -> entry list
(** Entries carved from this shard, ascending by [range.lo]. *)

(** {2 Shard ownership and crash/recovery}

    These only flip the availability/ownership state; the durable side
    (per-shard RVM journal, fsck, split-brain-safe adoption) lives in
    [Bmx.Persist] and [Bmx.Cluster], which drive these entry points. *)

val set_shard_owner : t -> int -> Bmx_util.Ids.Node.t -> unit
val crash_shard : t -> int -> unit
(** Mark the shard's allocation service unavailable.  The read cache
    stays: [find] keeps answering for already-carved ranges. *)

val revive_shard : t -> int -> unit

val restore_entry : t -> shard:int -> entry -> bool
(** Recovery replay: re-install a journaled entry idempotently and
    advance the shard's cursor past it.  Returns [true] if the entry was
    missing from the index and got re-installed, [false] if the cache
    already had it.  @raise Failure if the journal and the surviving
    index disagree about the range — that is corruption, not recovery. *)

val add_on_alloc : t -> (shard:int -> entry -> unit) -> unit
(** Hook fired after each successful [alloc_range], with the shard that
    carved the range.  Used by the persistence layer to journal the
    allocation (write-ahead at the owner) and by the cluster to trace
    it.  Hooks run in reverse registration order. *)
