(* bmxctl — command-line driver for the BMX platform simulator.

   Subcommands:
     bmxctl scenario <fig1|fig2|fig3|fig4>   narrate a figure from the paper
     bmxctl workload [options]               run a mixed workload, summarize
     bmxctl stats [options]                  workload + full counter dump
     bmxctl oo7 [options]                    OO7-style design-database run
     bmxctl check [--trace FILE] [options]   lint a trace for invariant violations
     bmxctl explore [--depth N] SCENARIO     explore delivery schedules
     bmxctl report [options]                 metrics + latency report, Perfetto export *)

open Cmdliner
open Bmx_util
module Cluster = Bmx.Cluster
module Driver = Bmx_workload.Driver
module Scenario = Bmx_workload.Scenario

(* ------------------------------------------------------------- scenario *)

let run_scenario name =
  match name with
  | "fig1" ->
      let f = Scenario.figure1 () in
      let c = f.Scenario.f1_cluster in
      Printf.printf
        "Figure 1 built: B%d on {N%d,N%d}, B%d on {N%d}; o3->o5 stub at N%d, \
         scion at N%d; intra SSP stub@N%d -> scion@N%d.\n"
        f.f1_b1 f.f1_n1 f.f1_n2 f.f1_b2 f.f1_n3 f.f1_n2 f.f1_n3 f.f1_n1 f.f1_n2;
      Printf.printf "safety: %s\n"
        (match Bmx.Audit.check_safety c with Ok () -> "ok" | Error m -> m);
      `Ok ()
  | "fig4" ->
      let f = Scenario.figure4 () in
      let c = f.Scenario.f4_cluster in
      Printf.printf "Figure 4 built: o1 on N1,N2,N3; owner N%d; root at N%d.\n"
        f.f4_n2 f.f4_n1;
      Cluster.remove_root c ~node:f.f4_n1 f.f4_o1;
      let reclaimed = Cluster.collect_until_quiescent c () in
      Printf.printf "root dropped; %d objects reclaimed across the cluster; %d copies left.\n"
        reclaimed (Bmx.Audit.total_cached_copies c);
      `Ok ()
  | "fig2" ->
      let f = Scenario.figure1 () in
      let c = f.Scenario.f1_cluster in
      let r = Cluster.bgc c ~node:f.f1_n2 ~bunch:f.f1_b1 in
      Printf.printf
        "Figure 2: BGC of B%d at N%d copied %d object(s) (only the locally \
         owned o2), scanned %d in place, acquired %d tokens.\n"
        f.f1_b1 f.f1_n2 r.Bmx_gc.Collect.r_copied
        r.Bmx_gc.Collect.r_scanned_in_place
        (Stats.get (Cluster.stats c) "dsm.gc.acquire_read"
        + Stats.get (Cluster.stats c) "dsm.gc.acquire_write");
      `Ok ()
  | "fig3" ->
      List.iter
        (fun (name, case) ->
          let f = Scenario.figure3 ~case in
          let c = f.Scenario.f3_cluster in
          let o1 = Cluster.acquire_write c ~node:f.f3_n2 f.Scenario.f3_o1 in
          Cluster.release c ~node:f.f3_n2 o1;
          Printf.printf
            "case %s: write acquire of o1 by N%d ok; N%d now owner: %b\n" name
            f.f3_n2 f.f3_n2
            (Bmx_dsm.Protocol.owner_of (Cluster.proto c) f.Scenario.f3_o1_uid
            = Some f.f3_n2))
        [
          ("(a)", Scenario.Case_a);
          ("(b)", Scenario.Case_b);
          ("(c)", Scenario.Case_c);
          ("(d)", Scenario.Case_d);
        ];
      `Ok ()
  | other ->
      `Error (false, Printf.sprintf "unknown scenario %S (try fig1, fig2, fig3, fig4)" other)

let scenario_cmd =
  let scenario_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SCENARIO")
  in
  Cmd.v
    (Cmd.info "scenario" ~doc:"Build and narrate one of the paper's figures")
    Term.(ret (const run_scenario $ scenario_arg))

(* ------------------------------------------------------------- workload *)

let mode_conv =
  let parse = function
    | "distributed" -> Ok Bmx_dsm.Protocol.Distributed
    | "centralized" -> Ok Bmx_dsm.Protocol.Centralized
    | s -> Error (`Msg (Printf.sprintf "unknown mode %S" s))
  in
  let print ppf = function
    | Bmx_dsm.Protocol.Distributed -> Format.pp_print_string ppf "distributed"
    | Bmx_dsm.Protocol.Centralized -> Format.pp_print_string ppf "centralized"
  in
  Arg.conv (parse, print)

let kind_of_string = function
  | "token_request" -> Some Bmx_netsim.Net.Token_request
  | "token_grant" -> Some Bmx_netsim.Net.Token_grant
  | "invalidate" -> Some Bmx_netsim.Net.Invalidate
  | "object_fetch" -> Some Bmx_netsim.Net.Object_fetch
  | "scion_message" -> Some Bmx_netsim.Net.Scion_message
  | "stub_table" -> Some Bmx_netsim.Net.Stub_table
  | "addr_update" -> Some Bmx_netsim.Net.Addr_update
  | "reclaim_request" -> Some Bmx_netsim.Net.Reclaim_request
  | "reclaim_reply" -> Some Bmx_netsim.Net.Reclaim_reply
  | "refcount_op" -> Some Bmx_netsim.Net.Refcount_op
  | "app_message" -> Some Bmx_netsim.Net.App_message
  | _ -> None

let parse_fault_kinds fault_kinds =
  List.filter_map
    (fun s ->
      let s = String.trim s in
      if s = "" then None
      else
        match kind_of_string s with
        | Some k -> Some k
        | None -> failwith (Printf.sprintf "unknown message kind %S" s))
    (String.split_on_char ',' fault_kinds)

let sanitize_reason s =
  String.map
    (function ('a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.') as c -> c | _ -> '-')
    s

let write_flight_dumps dir f =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iteri
    (fun i (d : Bmx_obs.Flight.dump) ->
      let file =
        Filename.concat dir
          (Printf.sprintf "flight-%02d-%s.trace" i (sanitize_reason d.reason))
      in
      let oc = open_out file in
      output_string oc d.Bmx_obs.Flight.text;
      close_out oc;
      Printf.printf "flight: %s -> %s\n" d.Bmx_obs.Flight.reason file)
    (Bmx_obs.Flight.dumps f)

let run_workload nodes bunches objects ops seed mode collect ggc dump trace
    emit_trace flight_dir drop dup fault_kinds crashes partitions corrupt_disk =
  (* Disk corruption is only observable through a crash/recover cycle. *)
  let crashes = if corrupt_disk && crashes = 0 then 1 else crashes in
  let cfg =
    {
      Driver.default with
      nodes;
      bunches;
      objects_per_bunch = objects;
      ops;
      seed;
      mode;
    }
  in
  let d = Driver.setup cfg in
  let c = Driver.cluster d in
  let net = Cluster.net c in
  if trace then Bmx_util.Tracelog.set_enabled (Cluster.tracer c) true;
  if emit_trace <> None || flight_dir <> None || partitions > 0 || corrupt_disk
  then Cluster.set_event_trace c true;
  let flight =
    match flight_dir with
    | None -> None
    | Some _ -> Some (Cluster.enable_flight c)
  in
  let kinds = parse_fault_kinds fault_kinds in
  if drop > 0. || dup > 0. then
    List.iteri
      (fun i k ->
        Bmx_netsim.Net.set_fault net ~kind:k ~drop ~dup
          ~rng:(Rng.make (seed + 101 + i)))
      kinds;
  (* With [crashes] or [partitions] > 0 the op stream is cut into chunks;
     between chunks either a victim node checkpoints its bunches
     (continuous RVM logging, approximated), crashes, restarts and
     recovers from the image, or one node is split off behind a network
     cut, runs part of the workload degraded, and the cut heals. *)
  let episodes = crashes + partitions in
  (* Every address an fsck pass reported missing: an injected disk fault
     may destroy the only copy of an object — honest loss — but anything
     the final audit counts lost must appear in this set. *)
  let fsck_named = ref Ids.Uid_set.empty in
  if episodes <= 0 then Driver.run_ops d ()
  else begin
    let ev_rng = Rng.make (seed + 77) in
    let chunk = max 1 (ops / (episodes + 1)) in
    let disks : (int * int, Bmx.Persist.disk) Hashtbl.t = Hashtbl.create 16 in
    let crashes_left = ref crashes and parts_left = ref partitions in
    let crash_cycle cycle =
      let victims = Cluster.live_nodes c in
      let victim = List.nth victims (Rng.int ev_rng (List.length victims)) in
      List.iter
        (fun bunch ->
          let disk =
            match Hashtbl.find_opt disks (victim, bunch) with
            | Some disk -> disk
            | None ->
                let disk = Bmx.Persist.create_disk () in
                Hashtbl.add disks (victim, bunch) disk;
                disk
          in
          ignore (Bmx.Persist.checkpoint ~gc_roots:true c ~node:victim ~bunch disk))
        (Bmx_dsm.Protocol.bunches (Cluster.proto c));
      if corrupt_disk then begin
        let bunches = Bmx_dsm.Protocol.bunches (Cluster.proto c) in
        let bunch = List.nth bunches (Rng.int ev_rng (List.length bunches)) in
        match Hashtbl.find_opt disks (victim, bunch) with
        | None -> ()
        | Some disk ->
            let len = Bmx_rvm.Rvm.log_length disk in
            if len > 0 then begin
              let fault =
                match Rng.int ev_rng 3 with
                | 0 -> Bmx.Persist.Flip_bits (Rng.int ev_rng len)
                | 1 -> Bmx.Persist.Drop_record (Rng.int ev_rng len)
                | _ -> Bmx.Persist.Truncate_mid_record
              in
              Bmx.Persist.corrupt_disk c ~node:victim disk fault;
              Printf.printf "disk fault injected at N%d (bunch %d)\n" victim
                bunch
            end
      end;
      Cluster.crash_node c ~node:victim;
      Cluster.restart_node c ~node:victim;
      let recovered =
        Bmx.Persist.recover_node c ~node:victim
          (List.filter_map
             (fun bunch -> Hashtbl.find_opt disks (victim, bunch))
             (Bmx_dsm.Protocol.bunches (Cluster.proto c)))
      in
      ignore (Cluster.settle c);
      Printf.printf "crash cycle %d: N%d crashed, %d objects recovered\n" cycle
        victim recovered;
      (* fsck the recovered images: anything the checkpoint promised but
         recovery could not deliver must be re-fetched from a surviving
         replica before the final audit counts it lost. *)
      if corrupt_disk then
        List.iter
          (fun bunch ->
            match Hashtbl.find_opt disks (victim, bunch) with
            | None -> ()
            | Some disk ->
                let fsck = Bmx.Persist.verify_bunch c ~node:victim ~bunch disk in
                List.iter
                  (fun (addr, uid) ->
                    (match uid with
                    | Some u -> fsck_named := Ids.Uid_set.add u !fsck_named
                    | None -> ());
                    try ignore (Cluster.demand_fetch c ~node:victim addr)
                    with Failure _ -> ())
                  fsck.Bmx.Persist.f_missing;
                if fsck.Bmx.Persist.f_missing <> [] then
                  Printf.printf
                    "fsck: N%d bunch %d — %d cell(s) lost to corruption, \
                     re-fetched from surviving replicas\n"
                    victim bunch
                    (List.length fsck.Bmx.Persist.f_missing))
          (Bmx_dsm.Protocol.bunches (Cluster.proto c))
    in
    let partition_cycle cycle =
      let live = Cluster.live_nodes c in
      let lone = List.nth live (Rng.int ev_rng (List.length live)) in
      let rest = List.filter (fun n -> n <> lone) live in
      Cluster.partition c ~groups:[ [ lone ]; rest ];
      let tokens_before =
        Stats.get (Cluster.stats c) "dsm.gc.acquire_read"
        + Stats.get (Cluster.stats c) "dsm.gc.acquire_write"
      in
      (* Both sides keep computing and collecting: cross-partition token
         operations are refused (and swallowed by the driver), the GC
         needs no tokens at all. *)
      Driver.run_ops d ~ops:(max 1 (chunk / 2)) ();
      ignore (Cluster.gc_round c);
      let tokens_during =
        Stats.get (Cluster.stats c) "dsm.gc.acquire_read"
        + Stats.get (Cluster.stats c) "dsm.gc.acquire_write"
        - tokens_before
      in
      Cluster.heal_all_links c;
      ignore (Cluster.settle c);
      Printf.printf
        "partition cycle %d: N%d split off, GC token acquires while \
         partitioned: %d\n"
        cycle lone tokens_during
    in
    for cycle = 1 to episodes do
      Driver.run_ops d ~ops:chunk ();
      let do_crash =
        !crashes_left > 0
        && (!parts_left = 0
           || Rng.int ev_rng (!crashes_left + !parts_left) < !crashes_left)
      in
      if do_crash then begin
        decr crashes_left;
        crash_cycle cycle
      end
      else begin
        decr parts_left;
        partition_cycle cycle
      end
    done;
    Driver.run_ops d ~ops:(max 0 (ops - (episodes * chunk))) ()
  end;
  if drop > 0. || dup > 0. then begin
    Bmx_netsim.Net.clear_faults net;
    ignore (Cluster.settle c)
  end;
  let reclaimed = if collect then Cluster.collect_until_quiescent c () else 0 in
  let ggc_reclaimed =
    if ggc then
      List.fold_left
        (fun acc node -> acc + (Cluster.ggc c ~node).Bmx_gc.Collect.r_reclaimed)
        0 (Cluster.nodes c)
    else 0
  in
  ignore (Cluster.drain c);
  let stats = Cluster.stats c in
  Printf.printf "workload: %d nodes, %d bunches, %d objects, %d ops (seed %d)\n"
    nodes bunches (bunches * objects) ops seed;
  Printf.printf "app acquires: %d read, %d write; invalidations: %d; hops: %d\n"
    (Stats.get stats "dsm.app.acquire_read")
    (Stats.get stats "dsm.app.acquire_write")
    (Stats.get stats "dsm.app.invalidations")
    (Stats.get stats "dsm.app.hops");
  Printf.printf "collector: %d objects reclaimed (+%d by GGC), token acquires %d\n"
    reclaimed ggc_reclaimed
    (Stats.get stats "dsm.gc.acquire_read" + Stats.get stats "dsm.gc.acquire_write");
  Printf.printf "network: %d messages, %d bytes\n"
    (Bmx_netsim.Net.total_messages (Cluster.net c))
    (Bmx_netsim.Net.total_bytes (Cluster.net c));
  if drop > 0. || dup > 0. || crashes > 0 then
    Printf.printf
      "faults: %d dropped, %d duplicated, %d retransmitted, %d abandoned; %d \
       crashes (%d in-flight purged, %d unacked lost, %d evaporated at down \
       nodes)\n"
      (Stats.get stats "net.dropped.total")
      (Stats.get stats "net.duplicated.total")
      (Stats.get stats "net.retransmit.total")
      (Stats.get stats "net.rel.abandoned")
      (Stats.get stats "net.crash.count")
      (Stats.get stats "net.crash.purged_in_flight")
      (Stats.get stats "net.crash.lost_unacked")
      (Stats.get stats "net.down_dropped.total");
  Printf.printf "heap: %d copies cached, %d reachable, %d retained garbage\n"
    (Bmx.Audit.total_cached_copies c)
    (Ids.Uid_set.cardinal (Bmx.Audit.union_reachable c))
    (Ids.Uid_set.cardinal (Bmx.Audit.garbage_retained c));
  Printf.printf "safety: %s\n"
    (match Bmx.Audit.check_safety c with Ok () -> "ok" | Error m -> m);
  if dump then begin
    print_endline "--- counters";
    List.iter
      (fun (k, v) -> if v <> 0 then Printf.printf "%-45s %d\n" k v)
      (Stats.counters stats)
  end;
  if trace then begin
    print_endline "--- last 40 trace events";
    List.iter
      (fun e -> Format.printf "%a@." Bmx_util.Tracelog.pp_event e)
      (Bmx_util.Tracelog.recent (Cluster.tracer c) 40)
  end;
  (match emit_trace with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      let count = ref 0 in
      List.iter
        (fun e ->
          output_string oc (Bmx_util.Trace_event.to_line e);
          output_char oc '\n';
          incr count)
        (Cluster.events c);
      close_out oc;
      Printf.printf "trace: %d typed events written to %s\n" !count file);
  (* Flight post-mortems: automatic trips (GC token acquire, truncating
     RVM recovery) already fired live; end-of-run analysis trips — a lint
     rule firing, the audit finding loss — are added here, then every
     dump becomes an artifact replayable through check/certify. *)
  (match (flight, flight_dir) with
  | Some f, Some dir ->
      let vs = Bmx_check.Lint.check_all (Cluster.proto c) in
      List.iter
        (fun (v : Bmx_check.Lint.violation) ->
          Bmx_obs.Flight.trip f (Bmx_check.Lint.rule_to_string v.rule))
        vs;
      let lost = Bmx.Audit.lost_objects c in
      if not (Ids.Uid_set.is_empty lost) then
        Bmx_obs.Flight.trip f
          (Printf.sprintf "audit-loss:%d" (Ids.Uid_set.cardinal lost));
      write_flight_dumps dir f
  | _ -> ());
  (* The fault knobs double as a CI gate.  A lint finding is always a
     bug.  An injected disk fault may destroy the only copy of an object
     — honest, reported loss — so under --corrupt-disk the audit gate is
     the fsck honesty contract (everything lost is named) rather than
     zero loss. *)
  if partitions > 0 || corrupt_disk then begin
    let vs = Bmx_check.Lint.check_all (Cluster.proto c) in
    List.iter
      (fun v -> Format.eprintf "%a@." Bmx_check.Lint.pp_violation v)
      vs;
    Printf.printf "lint: %s\n"
      (if vs = [] then "clean"
       else Printf.sprintf "%d violation(s)" (List.length vs));
    let log = Cluster.evlog c in
    let cert =
      Bmx_check.Races.certify
        ~overflowed:(Bmx_util.Trace_event.overflowed log)
        (Bmx_util.Trace_event.events log)
    in
    List.iter
      (fun f -> Format.eprintf "%a@." Bmx_check.Races.pp_finding f)
      cert.Bmx_check.Races.findings;
    Printf.printf "certify: %s\n"
      (if Bmx_check.Races.ok cert then "clean"
       else
         Printf.sprintf "%d finding(s)"
           (List.length cert.Bmx_check.Races.findings));
    let lost = Bmx.Audit.lost_objects c in
    let silent = Ids.Uid_set.diff lost !fsck_named in
    if corrupt_disk && not (Ids.Uid_set.is_empty lost) then
      Printf.printf
        "disk faults destroyed %d object(s) with no surviving replica (%d \
         named by fsck, %d silent)\n"
        (Ids.Uid_set.cardinal lost)
        (Ids.Uid_set.cardinal (Ids.Uid_set.inter lost !fsck_named))
        (Ids.Uid_set.cardinal silent);
    let audit_ok =
      if corrupt_disk then Ids.Uid_set.is_empty silent
      else Bmx.Audit.check_safety c = Ok ()
    in
    if vs <> [] || (not (Bmx_check.Races.ok cert)) || not audit_ok then exit 1
  end

let workload_term dump_default =
  let nodes = Arg.(value & opt int 4 & info [ "nodes"; "n" ] ~doc:"Cluster size") in
  let bunches = Arg.(value & opt int 4 & info [ "bunches"; "b" ] ~doc:"Bunch count") in
  let objects =
    Arg.(value & opt int 64 & info [ "objects" ] ~doc:"Objects per bunch")
  in
  let ops = Arg.(value & opt int 2000 & info [ "ops" ] ~doc:"Mutator operations") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Deterministic seed") in
  let mode =
    Arg.(
      value
      & opt mode_conv Bmx_dsm.Protocol.Distributed
      & info [ "mode" ] ~doc:"Copy-set mode: distributed or centralized")
  in
  let collect =
    Arg.(value & flag & info [ "collect" ] ~doc:"Run BGC rounds to quiescence")
  in
  let ggc = Arg.(value & flag & info [ "ggc" ] ~doc:"Run a GGC at every node") in
  let trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Record and print the event trace")
  in
  let emit_trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "emit-trace" ] ~docv:"FILE"
          ~doc:"Write the typed event trace to $(docv) for 'bmxctl check'")
  in
  let flight_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "flight" ] ~docv:"DIR"
          ~doc:
            "Attach the flight recorder and write every dump (auto trips \
             plus end-of-run lint/audit trips) as a replayable trace \
             artifact under $(docv)")
  in
  let drop =
    Arg.(
      value & opt float 0.
      & info [ "drop" ]
          ~doc:"Drop probability for the faulted message kinds (0.0-1.0)")
  in
  let dup =
    Arg.(
      value & opt float 0.
      & info [ "dup" ]
          ~doc:"Duplication probability for the faulted message kinds")
  in
  let fault_kinds =
    Arg.(
      value
      & opt string "stub_table,scion_message,addr_update"
      & info [ "fault-kinds" ] ~docv:"CSV"
          ~doc:
            "Comma-separated message kinds the drop/dup dice apply to (e.g. \
             stub_table,scion_message,addr_update)")
  in
  let crashes =
    Arg.(
      value & opt int 0
      & info [ "crashes" ]
          ~doc:
            "Crash/checkpoint/recover cycles interleaved with the op stream \
             (a random live node each time)")
  in
  let partitions =
    Arg.(
      value & opt int 0
      & info [ "partitions" ]
          ~doc:
            "Partition/heal episodes interleaved with the op stream: a \
             random node is split off behind a network cut, part of the \
             workload runs degraded (GC token-free on both sides), then \
             the cut heals.  Exits nonzero if the final lint or safety \
             audit fails.")
  in
  let corrupt_disk =
    Arg.(
      value & flag
      & info [ "corrupt-disk" ]
          ~doc:
            "Inject one random storage fault (bit flip, dropped or \
             truncated record) into a victim's RVM log before each \
             recovery; fsck the recovered image and re-fetch lost cells \
             from surviving replicas.  Implies at least one crash cycle.  \
             Exits nonzero if the final lint or safety audit fails.")
  in
  Term.(
    const run_workload $ nodes $ bunches $ objects $ ops $ seed $ mode $ collect
    $ ggc $ const dump_default $ trace $ emit_trace $ flight_dir $ drop $ dup
    $ fault_kinds $ crashes $ partitions $ corrupt_disk)

let workload_cmd =
  Cmd.v
    (Cmd.info "workload" ~doc:"Run a mixed mutator workload and summarize")
    (workload_term false)

let stats_cmd =
  Cmd.v
    (Cmd.info "stats" ~doc:"Run a workload and dump every counter")
    (workload_term true)

(* ------------------------------------------------------------------ oo7 *)

let run_oo7 levels fanout comps atomics bunches seed =
  let cfg =
    {
      Bmx_workload.Oo7.levels;
      assembly_fanout = fanout;
      comp_per_base = comps;
      atomic_per_comp = atomics;
      part_bunches = bunches;
      seed;
    }
  in
  let c = Cluster.create ~nodes:2 ~seed () in
  let m = Bmx_workload.Oo7.build c ~node:0 cfg in
  Printf.printf "module: %d objects\n" (Bmx_workload.Oo7.size m);
  Printf.printf "T1 visited %d atomic parts\n" (Bmx_workload.Oo7.t1 m ~node:1);
  Printf.printf "T2 updated %d atomic parts\n" (Bmx_workload.Oo7.t2 m ~node:1);
  Printf.printf "churn superseded %d objects\n" (Bmx_workload.Oo7.churn m ~node:0);
  Printf.printf "collector reclaimed %d copies (gc tokens: %d)\n"
    (Cluster.collect_until_quiescent c ())
    (Stats.get (Cluster.stats c) "dsm.gc.acquire_read"
    + Stats.get (Cluster.stats c) "dsm.gc.acquire_write");
  Printf.printf "safety: %s\n"
    (match Bmx.Audit.check_safety c with Ok () -> "ok" | Error m -> m)

let oo7_cmd =
  let levels = Arg.(value & opt int 3 & info [ "levels" ] ~doc:"Assembly depth") in
  let fanout = Arg.(value & opt int 3 & info [ "fanout" ] ~doc:"Assembly fanout") in
  let comps = Arg.(value & opt int 3 & info [ "composites" ] ~doc:"Composites per base") in
  let atomics = Arg.(value & opt int 8 & info [ "atomics" ] ~doc:"Atomic parts per composite") in
  let bunches = Arg.(value & opt int 3 & info [ "part-bunches" ] ~doc:"Bunches for parts") in
  let seed = Arg.(value & opt int 13 & info [ "seed" ] ~doc:"Deterministic seed") in
  Cmd.v
    (Cmd.info "oo7" ~doc:"Run the OO7-style design-database workload")
    Term.(const run_oo7 $ levels $ fanout $ comps $ atomics $ bunches $ seed)

(* ---------------------------------------------------------------- check *)

let load_trace file =
  let ic = open_in file in
  let events = ref [] and lineno = ref 0 and bad = ref 0 in
  (try
     while true do
       incr lineno;
       let line = String.trim (input_line ic) in
       (* '#' lines are flight-recorder headers (reason, metrics snapshot). *)
       if line <> "" && line.[0] <> '#' then
         match Bmx_util.Trace_event.of_line line with
         | Ok e -> events := e :: !events
         | Error m ->
             incr bad;
             Printf.eprintf "%s:%d: unparseable event (%s)\n" file !lineno m
     done
   with End_of_file -> ());
  close_in ic;
  (List.rev !events, !bad)

let run_check trace_file nodes bunches objects ops seed mode =
  let violations =
    match trace_file with
    | Some file ->
        let events, bad = load_trace file in
        Printf.printf "linting %d event(s) from %s\n" (List.length events) file;
        let vs = Bmx_check.Lint.run events in
        if bad > 0 then
          {
            Bmx_check.Lint.rule = Bmx_check.Lint.Incomplete_trace;
            at = -1;
            vnode = -1;
            detail =
              Printf.sprintf "%d line(s) of %s could not be parsed" bad file;
          }
          :: vs
        else vs
    | None ->
        (* No trace file: run a workload in-process with the typed event
           log on, then lint the live protocol (log + store check). *)
        let cfg =
          {
            Driver.default with
            nodes;
            bunches;
            objects_per_bunch = objects;
            ops;
            seed;
            mode;
          }
        in
        let d = Driver.setup cfg in
        let c = Driver.cluster d in
        Cluster.set_event_trace c true;
        Driver.run_ops d ();
        ignore (Cluster.collect_until_quiescent c ());
        ignore (Cluster.drain c);
        Printf.printf
          "workload: %d nodes, %d bunches, %d ops (seed %d); linting %d \
           event(s)\n"
          nodes bunches ops seed
          (List.length (Cluster.events c));
        Bmx_check.Lint.check_all (Cluster.proto c)
  in
  match violations with
  | [] ->
      print_endline "check: clean — all invariants held";
      `Ok ()
  | vs ->
      List.iter
        (fun v -> Format.eprintf "%a@." Bmx_check.Lint.pp_violation v)
        vs;
      Format.eprintf "check: %d violation(s)@." (List.length vs);
      exit 1

let check_cmd =
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Lint a saved trace (from 'workload --emit-trace') instead of \
                running a workload")
  in
  let nodes = Arg.(value & opt int 4 & info [ "nodes"; "n" ] ~doc:"Cluster size") in
  let bunches = Arg.(value & opt int 4 & info [ "bunches"; "b" ] ~doc:"Bunch count") in
  let objects =
    Arg.(value & opt int 64 & info [ "objects" ] ~doc:"Objects per bunch")
  in
  let ops = Arg.(value & opt int 2000 & info [ "ops" ] ~doc:"Mutator operations") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Deterministic seed") in
  let mode =
    Arg.(
      value
      & opt mode_conv Bmx_dsm.Protocol.Distributed
      & info [ "mode" ] ~doc:"Copy-set mode: distributed or centralized")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Replay a typed event trace through the invariant linter (GC never \
          acquires tokens; §5 invariants 1-3; per-pair FIFO; forwarder \
          acyclicity)")
    Term.(
      ret
        (const run_check $ trace_file $ nodes $ bunches $ objects $ ops $ seed
       $ mode))

(* -------------------------------------------------------------- certify *)

let run_certify trace_file json nodes bunches objects ops seed mode =
  let cert =
    match trace_file with
    | Some file ->
        let events, bad = load_trace file in
        Printf.printf "certifying %d event(s) from %s\n" (List.length events)
          file;
        Bmx_check.Races.certify ~overflowed:(bad > 0) events
    | None ->
        let cfg =
          {
            Driver.default with
            nodes;
            bunches;
            objects_per_bunch = objects;
            ops;
            seed;
            mode;
          }
        in
        let d = Driver.setup cfg in
        let c = Driver.cluster d in
        Cluster.set_event_trace c true;
        Driver.run_ops d ();
        ignore (Cluster.collect_until_quiescent c ());
        ignore (Cluster.drain c);
        let log = Cluster.evlog c in
        Printf.printf
          "workload: %d nodes, %d bunches, %d ops (seed %d); certifying %d \
           event(s)\n"
          nodes bunches ops seed
          (Bmx_util.Trace_event.length log);
        Bmx_check.Races.certify
          ~overflowed:(Bmx_util.Trace_event.overflowed log)
          (Bmx_util.Trace_event.events log)
  in
  if json then
    print_endline (Bmx_obs.Json.to_string (Bmx_check.Races.to_json cert))
  else print_string (Bmx_check.Races.to_text cert);
  if Bmx_check.Races.ok cert then `Ok () else exit 1

let certify_cmd =
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:"Certify a saved trace (from 'workload --emit-trace') instead \
                of running a workload")
  in
  let json =
    Arg.(value & flag & info [ "json" ] ~doc:"Emit the certificate as JSON")
  in
  let nodes = Arg.(value & opt int 4 & info [ "nodes"; "n" ] ~doc:"Cluster size") in
  let bunches = Arg.(value & opt int 4 & info [ "bunches"; "b" ] ~doc:"Bunch count") in
  let objects =
    Arg.(value & opt int 64 & info [ "objects" ] ~doc:"Objects per bunch")
  in
  let ops = Arg.(value & opt int 2000 & info [ "ops" ] ~doc:"Mutator operations") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Deterministic seed") in
  let mode =
    Arg.(
      value
      & opt mode_conv Bmx_dsm.Protocol.Distributed
      & info [ "mode" ] ~doc:"Copy-set mode: distributed or centralized")
  in
  Cmd.v
    (Cmd.info "certify"
       ~doc:
         "Replay a typed event trace through the happens-before engine: \
          vector-clock race detection, per-object read-mapping check, and \
          the GC non-interference erasure theorem (§5).  Exits 1 unless the \
          trace certifies clean")
    Term.(
      ret
        (const run_certify $ trace_file $ json $ nodes $ bunches $ objects
       $ ops $ seed $ mode))

(* --------------------------------------------------------------- report *)

let run_report nodes bunches objects ops seed mode ggc drop dup fault_kinds
    perfetto selfcheck since until series =
  let cfg =
    {
      Driver.default with
      nodes;
      bunches;
      objects_per_bunch = objects;
      ops;
      seed;
      mode;
    }
  in
  let d = Driver.setup cfg in
  let c = Driver.cluster d in
  Cluster.set_event_trace c true;
  let ts = Cluster.enable_timeseries c in
  let net = Cluster.net c in
  if drop > 0. || dup > 0. then
    List.iteri
      (fun i k ->
        Bmx_netsim.Net.set_fault net ~kind:k ~drop ~dup
          ~rng:(Rng.make (seed + 101 + i)))
      (parse_fault_kinds fault_kinds);
  Driver.run_ops d ();
  if drop > 0. || dup > 0. then Bmx_netsim.Net.clear_faults net;
  ignore (Cluster.collect_until_quiescent c ());
  if ggc then
    List.iter (fun node -> ignore (Cluster.ggc c ~node)) (Cluster.nodes c);
  (* Flush the reliable streams so message-flight spans close. *)
  ignore (Cluster.settle c);
  (* Stop sampling before the exit-time bulk report pass so its observes
     don't pollute the final window. *)
  Bmx_obs.Timeseries.freeze ts;
  let report =
    Bmx_obs.Report.of_events
      ~metrics:(Cluster.metrics c)
      (Bmx_util.Trace_event.timed_events (Cluster.evlog c))
  in
  let cert =
    Bmx_check.Races.certify
      ~overflowed:(Bmx_util.Trace_event.overflowed (Cluster.evlog c))
      (Cluster.events c)
  in
  let report = Bmx_obs.Report.with_certified report (Bmx_check.Races.ok cert) in
  Printf.printf "report: %d nodes, %d bunches, %d objects, %d ops (seed %d)\n\n"
    nodes bunches (bunches * objects) ops seed;
  print_string (Bmx_obs.Report.to_text report);
  (* Continuous-series window queries: --since/--until select a half-open
     virtual-time interval in µsteps; defaults cover the retained ring. *)
  (if since <> None || until <> None then
     match Bmx_obs.Timeseries.span ts with
     | None -> print_endline "\nwindow query: no windows retained"
     | Some (lo, hi) ->
         let since = Option.value since ~default:lo
         and until = Option.value until ~default:hi in
         Printf.printf "\n--- window [%d, %d) of [%d, %d) µsteps (%d windows)\n"
           since until lo hi
           (Bmx_obs.Timeseries.closed_windows ts);
         List.iter
           (fun comp ->
             let cn = Bmx_netsim.Net.Component.to_string comp in
             let msgs =
               Bmx_obs.Timeseries.counter_sum ts ~since ~until
                 ("net.comp.msgs." ^ cn)
             and bytes =
               Bmx_obs.Timeseries.counter_sum ts ~since ~until
                 ("net.comp.bytes." ^ cn)
             in
             if msgs > 0 || bytes > 0 then
               Printf.printf "  %-12s %6d msg(s) %10d byte(s)\n" cn msgs bytes)
           Bmx_netsim.Net.Component.all;
         List.iter
           (fun name ->
             let series = "latency." ^ name in
             let n =
               Bmx_obs.Timeseries.sample_count ts ~since ~until series
             in
             if n > 0 then
               let p q = Bmx_obs.Timeseries.percentile ts ~since ~until series q in
               Printf.printf
                 "  %-26s n=%-6d p50=%.0f p99=%.0f p999=%.0f µsteps\n" series n
                 (p 50.) (p 99.) (p 99.9))
           [
             "token_acquire.read";
             "token_acquire.write";
             "token_acquire.gc";
             "gc.pause";
           ]);
  (match series with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (Bmx_obs.Timeseries.to_jsonl ts);
      close_out oc;
      Printf.printf "series: %d window(s) written to %s\n"
        (Bmx_obs.Timeseries.closed_windows ts)
        file);
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  (match perfetto with
  | None -> ()
  | Some file ->
      let spans = Bmx_obs.Report.spans report in
      Bmx_obs.Perfetto.write_file
        ~extra:(Bmx_obs.Timeseries.perfetto_counters ts)
        file spans;
      Printf.printf "perfetto: %d span(s) written to %s\n" (List.length spans)
        file;
      if selfcheck then begin
        let ic = open_in file in
        let body = really_input_string ic (in_channel_length ic) in
        close_in ic;
        match Bmx_obs.Json.parse body with
        | Error m -> fail "perfetto JSON does not parse: %s" m
        | Ok j -> (
            match Bmx_obs.Json.member "traceEvents" j with
            | Some (Bmx_obs.Json.List evs) ->
                Printf.printf "selfcheck: perfetto JSON ok (%d trace events)\n"
                  (List.length evs)
            | _ -> fail "perfetto JSON lacks a traceEvents array")
      end);
  if selfcheck then begin
    if Bmx_util.Trace_event.overflowed (Cluster.evlog c) then
      fail "event log overflowed: report is incomplete";
    (match Bmx_obs.Report.latency report "token_acquire.read" with
    | Some s when s.Bmx_obs.Metrics.s_count > 0 -> ()
    | _ -> fail "no token-acquire latency samples");
    (match Bmx_obs.Report.latency report "gc.pause" with
    | Some s when s.Bmx_obs.Metrics.s_count > 0 -> ()
    | _ -> fail "no GC-pause latency samples")
  end;
  if not (Bmx_obs.Report.ok report) then
    fail "gc.token_acquires = %d (non-interference violated)"
      (Bmx_obs.Report.gc_token_acquires report);
  if not (Bmx_check.Races.ok cert) then begin
    List.iter
      (fun f -> Format.eprintf "%a@." Bmx_check.Races.pp_finding f)
      cert.Bmx_check.Races.findings;
    fail "happens-before certificate failed (%d finding(s))"
      (List.length cert.Bmx_check.Races.findings)
  end;
  match List.rev !failures with
  | [] -> `Ok ()
  | fs ->
      List.iter (Printf.eprintf "report: FAIL: %s\n") fs;
      exit 1

let report_cmd =
  let nodes = Arg.(value & opt int 4 & info [ "nodes"; "n" ] ~doc:"Cluster size") in
  let bunches = Arg.(value & opt int 4 & info [ "bunches"; "b" ] ~doc:"Bunch count") in
  let objects =
    Arg.(value & opt int 64 & info [ "objects" ] ~doc:"Objects per bunch")
  in
  let ops = Arg.(value & opt int 2000 & info [ "ops" ] ~doc:"Mutator operations") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Deterministic seed") in
  let mode =
    Arg.(
      value
      & opt mode_conv Bmx_dsm.Protocol.Distributed
      & info [ "mode" ] ~doc:"Copy-set mode: distributed or centralized")
  in
  let ggc = Arg.(value & flag & info [ "ggc" ] ~doc:"Run a GGC at every node") in
  let drop =
    Arg.(
      value & opt float 0.
      & info [ "drop" ]
          ~doc:"Drop probability for the faulted message kinds (0.0-1.0)")
  in
  let dup =
    Arg.(
      value & opt float 0.
      & info [ "dup" ]
          ~doc:"Duplication probability for the faulted message kinds")
  in
  let fault_kinds =
    Arg.(
      value
      & opt string "stub_table,scion_message,addr_update"
      & info [ "fault-kinds" ] ~docv:"CSV"
          ~doc:"Comma-separated message kinds the drop/dup dice apply to")
  in
  let perfetto =
    Arg.(
      value
      & opt (some string) None
      & info [ "perfetto" ] ~docv:"FILE"
          ~doc:
            "Write the span timeline as Chrome-trace-event JSON (load at \
             ui.perfetto.dev)")
  in
  let selfcheck =
    Arg.(
      value & flag
      & info [ "selfcheck" ]
          ~doc:
            "Re-parse the Perfetto JSON and require latency samples; exit 1 \
             on any failure (used by the @report smoke alias)")
  in
  let since =
    Arg.(
      value
      & opt (some int) None
      & info [ "since" ] ~docv:"µSTEP"
          ~doc:
            "Window-query start (virtual µsteps, inclusive); prints \
             per-component traffic and latency percentiles over the \
             continuous series restricted to the interval")
  in
  let until =
    Arg.(
      value
      & opt (some int) None
      & info [ "until" ] ~docv:"µSTEP"
          ~doc:"Window-query end (virtual µsteps, exclusive)")
  in
  let series =
    Arg.(
      value
      & opt (some string) None
      & info [ "series" ] ~docv:"FILE"
          ~doc:
            "Write the continuous virtual-time series (one JSON object \
             per window) to $(docv)")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run a workload with the event trace on and print the observability \
          report: typed metrics, virtual-time latency percentiles \
          (token-acquire, GC pause) and the gc.token_acquires \
          non-interference verdict")
    Term.(
      ret
        (const run_report $ nodes $ bunches $ objects $ ops $ seed $ mode $ ggc
       $ drop $ dup $ fault_kinds $ perfetto $ selfcheck $ since $ until
       $ series))

(* ---------------------------------------------------------------- watch *)

let run_watch nodes bunches objects ops seed mode every =
  let cfg =
    {
      Driver.default with
      nodes;
      bunches;
      objects_per_bunch = objects;
      ops;
      seed;
      mode;
    }
  in
  let d = Driver.setup cfg in
  let c = Driver.cluster d in
  Cluster.set_event_trace c true;
  let ts = Cluster.enable_timeseries c in
  let w = Bmx_obs.Timeseries.window ts in
  Printf.printf "watch: %d nodes, %d ops (seed %d); one row per %d window(s) \
                 of %d µsteps\n"
    nodes ops seed every w;
  Printf.printf "%12s %8s %10s %6s %12s %12s\n" "t1/µstep" "msgs" "bytes" "gcs"
    "p99.acq" "p99.pause";
  Bmx_obs.Timeseries.on_window ts (fun ts ->
      let n = Bmx_obs.Timeseries.closed_windows ts in
      if n mod every = 0 then
        match Bmx_obs.Timeseries.span ts with
        | None -> ()
        | Some (_, hi) ->
            let since = hi - (every * w) and until = hi in
            let sum prefix =
              List.fold_left
                (fun acc comp ->
                  acc
                  + Bmx_obs.Timeseries.counter_sum ts ~since ~until
                      (prefix ^ Bmx_netsim.Net.Component.to_string comp))
                0 Bmx_netsim.Net.Component.all
            in
            let p99 series =
              if Bmx_obs.Timeseries.sample_count ts ~since ~until series > 0
              then
                Printf.sprintf "%.0f"
                  (Bmx_obs.Timeseries.percentile ts ~since ~until series 99.)
              else "-"
            in
            let gcs =
              Bmx_obs.Timeseries.sample_count ts ~since ~until
                "latency.gc.pause"
            in
            Printf.printf "%12d %8d %10d %6d %12s %12s\n" until
              (sum "net.comp.msgs.") (sum "net.comp.bytes.") gcs
              (p99 "latency.token_acquire.write")
              (p99 "latency.gc.pause"));
  Driver.run_ops d ();
  ignore (Cluster.collect_until_quiescent c ());
  ignore (Cluster.settle c);
  Bmx_obs.Timeseries.freeze ts;
  Printf.printf "watch: %d window(s) closed, gc token acquires %d\n"
    (Bmx_obs.Timeseries.closed_windows ts)
    (Stats.get (Cluster.stats c) "dsm.gc.acquire_read"
    + Stats.get (Cluster.stats c) "dsm.gc.acquire_write")

let watch_cmd =
  let nodes = Arg.(value & opt int 4 & info [ "nodes"; "n" ] ~doc:"Cluster size") in
  let bunches = Arg.(value & opt int 4 & info [ "bunches"; "b" ] ~doc:"Bunch count") in
  let objects =
    Arg.(value & opt int 64 & info [ "objects" ] ~doc:"Objects per bunch")
  in
  let ops = Arg.(value & opt int 2000 & info [ "ops" ] ~doc:"Mutator operations") in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Deterministic seed") in
  let mode =
    Arg.(
      value
      & opt mode_conv Bmx_dsm.Protocol.Distributed
      & info [ "mode" ] ~doc:"Copy-set mode: distributed or centralized")
  in
  let every =
    Arg.(
      value & opt int 10
      & info [ "every" ]
          ~doc:"Print one dashboard row per $(docv) closed windows" ~docv:"N")
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:
         "Run a workload with continuous sampling on and print a live text \
          dashboard — per-component traffic, collections and p99 latencies \
          per window of virtual time — as the run advances")
    Term.(
      const run_watch $ nodes $ bunches $ objects $ ops $ seed $ mode $ every)

(* -------------------------------------------------------------- explore *)

let run_explore list_scenarios depth max_schedules name =
  if list_scenarios then begin
    List.iter
      (fun s ->
        Printf.printf "%-16s %s\n" s.Bmx_check.Explore.sc_name
          s.Bmx_check.Explore.sc_desc)
      Bmx_check.Explore.builtin_scenarios;
    `Ok ()
  end
  else
    match name with
    | None -> `Error (true, "missing SCENARIO argument (or use --list)")
    | Some name -> (
        match Bmx_check.Explore.find_scenario name with
        | None ->
            `Error
              ( false,
                Printf.sprintf
                  "unknown scenario %S (use --list to see the catalog)" name )
        | Some sc ->
            let build = sc.Bmx_check.Explore.sc_build in
            let locals = sc.Bmx_check.Explore.sc_locals in
            let c0 = build () in
            Printf.printf "scenario %s: %d message(s) pending, %d local step(s)\n"
              name
              (Bmx_netsim.Net.pending (Cluster.net c0))
              (List.length locals);
            let r =
              Bmx_check.Explore.run ~depth ~max_schedules ~build ~locals
                ~finish:sc.Bmx_check.Explore.sc_finish ()
            in
            Format.printf "%a@." Bmx_check.Explore.pp_report r;
            if r.Bmx_check.Explore.violations <> [] then exit 1;
            `Ok ())

let explore_cmd =
  let list_scenarios =
    Arg.(value & flag & info [ "list" ] ~doc:"List the built-in scenarios")
  in
  let depth =
    Arg.(
      value & opt int 6
      & info [ "depth" ] ~doc:"Exhaustively explored choice points")
  in
  let max_schedules =
    Arg.(
      value & opt int 2000
      & info [ "max-schedules" ] ~doc:"Cap on complete schedules")
  in
  let scenario =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SCENARIO")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Enumerate message delivery schedules of a race scenario (FIFO per \
          pair preserved) and run the linter plus the safety audit on every \
          final state")
    Term.(
      ret
        (const run_explore $ list_scenarios $ depth $ max_schedules $ scenario))

let main =
  Cmd.group
    (Cmd.info "bmxctl" ~version:"1.0"
       ~doc:
         "Drive the BMX platform simulator (Ferreira & Shapiro, OSDI '94 \
          reproduction)")
    [
      scenario_cmd;
      workload_cmd;
      stats_cmd;
      oo7_cmd;
      check_cmd;
      certify_cmd;
      explore_cmd;
      report_cmd;
      watch_cmd;
    ]

let () = exit (Cmd.eval main)
