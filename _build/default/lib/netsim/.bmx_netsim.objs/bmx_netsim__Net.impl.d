lib/netsim/net.ml: Bmx_util Format Hashtbl Ids Queue Rng Stats
