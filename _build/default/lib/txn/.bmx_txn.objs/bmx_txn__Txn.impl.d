lib/txn/txn.ml: Addr Bmx Bmx_dsm Bmx_gc Bmx_memory Bmx_rvm Bmx_util Ids List
