(* Quickstart: the BMX platform in ~60 lines.

   Three nodes share a persistent object graph through weakly consistent
   DSM; the copying collector runs per bunch, per node, without ever
   acquiring a token.

   Run with: dune exec examples/quickstart.exe *)

module Cluster = Bmx.Cluster
module Value = Bmx_memory.Value

let () =
  (* A cluster of three nodes sharing one 64-bit address space. *)
  let c = Cluster.create ~nodes:3 () in
  let n0 = 0 and n1 = 1 in

  (* Objects are allocated from bunches; a bunch is the unit of
     clustering, replication and collection. *)
  let bunch = Cluster.new_bunch c ~home:n0 in

  (* Allocate a two-cell list at N0: cell = [next; payload]. *)
  let tail = Cluster.alloc c ~node:n0 ~bunch [| Value.nil; Value.Data 42 |] in
  let head = Cluster.alloc c ~node:n0 ~bunch [| Value.Ref tail; Value.Data 1 |] in

  (* Persistence by reachability: whatever the root reaches stays. *)
  Cluster.add_root c ~node:n0 head;

  (* N1 reads the list through the entry-consistency protocol: acquire a
     read token, follow pointers, release. *)
  let head_at_n1 = Cluster.acquire_read c ~node:n1 head in
  let next = Cluster.read c ~node:n1 head_at_n1 0 in
  Cluster.release c ~node:n1 head_at_n1;
  (match next with
  | Value.Ref t ->
      let t' = Cluster.acquire_read c ~node:n1 t in
      (match Cluster.read c ~node:n1 t' 1 with
      | Value.Data v -> Printf.printf "N1 read tail payload: %d\n" v
      | _ -> assert false);
      Cluster.release c ~node:n1 t'
  | _ -> assert false);

  (* N1 updates the list: acquire the write token (ownership moves), store
     through the write barrier, release. *)
  let h = Cluster.acquire_write c ~node:n1 head in
  Cluster.write c ~node:n1 h 1 (Value.Data 2);
  Cluster.release c ~node:n1 h;

  (* Make some garbage and collect it — at each node independently. *)
  let _dropped = Cluster.alloc c ~node:n0 ~bunch [| Value.Data 0 |] in
  let report = Cluster.bgc c ~node:n0 ~bunch in
  Printf.printf "BGC at N0: %d live, %d copied, %d reclaimed\n"
    report.Bmx_gc.Collect.r_live report.Bmx_gc.Collect.r_copied
    report.Bmx_gc.Collect.r_reclaimed;
  ignore (Cluster.drain c);

  (* The collector never touched a token: *)
  Printf.printf "collector token acquires: %d (the paper's core claim)\n"
    (Bmx_util.Stats.get (Cluster.stats c) "dsm.gc.acquire_read"
    + Bmx_util.Stats.get (Cluster.stats c) "dsm.gc.acquire_write");

  (* And the heap is intact. *)
  match Bmx.Audit.check_safety c with
  | Ok () -> print_endline "heap audit: ok"
  | Error m -> failwith m
