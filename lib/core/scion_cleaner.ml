open Bmx_util
module Net = Bmx_netsim.Net
module Protocol = Bmx_dsm.Protocol
module Store = Bmx_memory.Store
module Registry = Bmx_memory.Registry
module Heap_obj = Bmx_memory.Heap_obj
module Directory = Bmx_dsm.Directory

type table_body =
  | Full of {
      fb_inter : Ssp.inter_stub list;
      fb_intra : Ssp.intra_stub list;
      fb_exiting : (Ids.Uid.t * Ids.Node.t) list;
    }
  | Delta of {
      db_basis : int;
      db_add_inter : Ssp.inter_key list;
      db_del_inter : Ssp.inter_key list;
      db_add_intra : Ssp.intra_key list;
      db_del_intra : Ssp.intra_key list;
      db_add_exiting : (Ids.Uid.t * Ids.Node.t) list;
      db_del_exiting : (Ids.Uid.t * Ids.Node.t) list;
    }

type table_msg = {
  tm_sender : Ids.Node.t;
  tm_bunch : Ids.Bunch.t;
  tm_body : table_body;
}

(* Deltas ship match keys (four resp. three small ids per entry, 24
   bytes) and exiting-list diffs, not full stub records and lists; the
   header is a little larger than a full table's (basis id plus section
   lengths). *)
let msg_bytes m =
  match m.tm_body with
  | Full { fb_inter; fb_intra; fb_exiting } ->
      16
      + (40 * List.length fb_inter)
      + (24 * List.length fb_intra)
      + (16 * List.length fb_exiting)
  | Delta
      {
        db_add_inter;
        db_del_inter;
        db_add_intra;
        db_del_intra;
        db_add_exiting;
        db_del_exiting;
        _;
      } ->
      24
      + (24 * (List.length db_add_inter + List.length db_del_inter))
      + (24 * (List.length db_add_intra + List.length db_del_intra))
      + (16 * (List.length db_add_exiting + List.length db_del_exiting))

(* How many bytes the same broadcast would have cost as a full table —
   the counterfactual the [tables.full_bytes] counter accumulates. *)
let full_bytes_of ~inter ~intra ~exiting =
  16
  + (40 * List.length inter)
  + (24 * List.length intra)
  + (16 * List.length exiting)

let bump ?by t name = Stats.incr ?by (Gc_state.stats t) name

(* Bring the local mirror of (sender, bunch)'s stub tables up to date
   from the message body.  Fulls always install.  A delta only applies if
   the mirror exists and sits on the delta's basis; otherwise the mirror
   is resynchronised by pulling the sender's current tables — an explicit
   RPC (it costs a round trip, accounted on the wire) that only happens
   after losses, restarts or first contact on a delta stream.

   The result classifies how much reconciliation the caller owes:
   [Mirror_unchanged] — a delta with no adds or deletes in any section
   applied cleanly to a mirror already sitting on its basis, so nothing
   downstream can differ from last time; [Mirror_delta] — a non-empty
   delta applied cleanly, so only the keys it names can have changed;
   [Mirror_rewritten] — a full install or a resync replaced the mirror
   wholesale, so every local scion and entering entry must be re-checked. *)
type sync_result = Mirror_unchanged | Mirror_delta | Mirror_rewritten

let sync_mirror t ~at ~seq msg =
  let proto = Gc_state.proto t in
  let sender = msg.tm_sender and bunch = msg.tm_bunch in
  match msg.tm_body with
  | Full { fb_inter; fb_intra; fb_exiting } ->
      Gc_state.mirror_reset t ~node:at ~sender ~bunch ~basis:seq ~inter:fb_inter
        ~intra:fb_intra ~exiting:fb_exiting;
      Mirror_rewritten
  | Delta
      {
        db_basis;
        db_add_inter;
        db_del_inter;
        db_add_intra;
        db_del_intra;
        db_add_exiting;
        db_del_exiting;
      } ->
      let applied =
        Gc_state.mirror_apply t ~node:at ~sender ~bunch ~basis:db_basis ~seq
          ~add_inter:db_add_inter ~del_inter:db_del_inter
          ~add_intra:db_add_intra ~del_intra:db_del_intra
          ~add_exiting:db_add_exiting ~del_exiting:db_del_exiting
      in
      if applied then
        if
          db_add_inter = [] && db_del_inter = [] && db_add_intra = []
          && db_del_intra = [] && db_add_exiting = [] && db_del_exiting = []
        then Mirror_unchanged
        else Mirror_delta
      else begin
        (* Basis mismatch (or no mirror at all): the delta is unusable.
           Pull the sender's current tables.  The new basis is the seq of
           the sender's latest send on this stream — that is the state
           the pull observes (tables only change at a BGC, which
           broadcasts immediately), so later deltas chain correctly;
           any older in-flight message simply resyncs again. *)
        let inter = Gc_state.inter_stubs t ~node:sender ~bunch in
        let intra = Gc_state.intra_stubs t ~node:sender ~bunch in
        let exiting = Gc_state.current_exiting t ~node:sender ~bunch in
        if not (Ids.Node.equal sender at) then
          Net.record_rpc (Protocol.net proto) ~src:at ~dst:sender
            ~kind:Net.Stub_table
            ~bytes:(full_bytes_of ~inter ~intra ~exiting)
            ~shard:(Registry.shard_of_bunch (Protocol.registry proto) bunch)
            ();
        let basis =
          match Gc_state.dest_basis t ~node:sender ~bunch ~dest:at with
          | Some (_, s) -> s
          | None -> seq
        in
        Gc_state.mirror_reset t ~node:at ~sender ~bunch ~basis ~inter ~intra
          ~exiting;
        bump t "gc.cleaner.resyncs";
        Mirror_rewritten
      end

let receive_untimed t ~at ~seq msg =
  let net = Protocol.net (Gc_state.proto t) in
  let sender_dead =
    (not (Ids.Node.equal msg.tm_sender at))
    && Bmx_netsim.Net.is_down net msg.tm_sender
  in
  let sender_unreachable =
    (not (Ids.Node.equal msg.tm_sender at))
    && (not sender_dead)
    && not (Net.reachable net msg.tm_sender at)
  in
  let fresh =
    match
      Gc_state.last_table_seq t ~node:at ~sender:msg.tm_sender ~bunch:msg.tm_bunch
    with
    | Some last -> seq > last
    | None -> true
  in
  if sender_dead then
    (* Quarantine, don't clean: a table attributed to a crashed node
       reflects state that died with it.  Acting on it could drop scions
       (and thus objects) that the recovered node still needs; the next
       table the node sends after restart supersedes everything. *)
    bump t "gc.cleaner.quarantined_dead_sender"
  else if sender_unreachable then
    (* Partition quarantine: the sender is alive but cut off (e.g. an
       asymmetric cut let the table through while the return path is
       dark).  Processing it could require a resynchronising pull RPC we
       cannot make, and any scion it retires could not be re-created by
       a cross-cut Scion_message until heal — so cross-partition tables
       wait.  Quarantine is free: the sender keeps rebroadcasting (its
       recorded destination list never forgets an unreached peer), and
       the post-heal table supersedes this one. *)
    bump t "gc.cleaner.quarantined_unreachable"
  else if not fresh then bump t "gc.cleaner.stale_ignored"
  else begin
    Gc_state.record_table_seq t ~node:at ~sender:msg.tm_sender ~bunch:msg.tm_bunch
      ~seq;
    bump t "gc.cleaner.processed";
    (let evlog = Protocol.evlog (Gc_state.proto t) in
     if Trace_event.enabled evlog then
       Trace_event.record evlog
         (Trace_event.Tables_processed
            { at; sender = msg.tm_sender; bunch = msg.tm_bunch; seq }));
    Bmx_util.Tracelog.recordf
      (Protocol.tracer (Gc_state.proto t))
      ~category:"cleaner" "N%d processed tables from N%d for B%d (seq %d)" at
      msg.tm_sender msg.tm_bunch seq;
    let proto = Gc_state.proto t in
    let sender = msg.tm_sender in
    let sync = sync_mirror t ~at ~seq msg in
    match sync with
    | Mirror_unchanged ->
      (* Quiet-stream fast path: an empty delta on a matching basis left
         the mirror bit-identical, so every check below would reproduce
         its previous answer — coverage can only shrink when the
         sender's tables shrink, the exiting list is unchanged so the
         entering reconciliation is a fixpoint, and the conservative
         re-assert sweep saw this exact mirror last time.  (Local state
         that could invalidate that reasoning — a crash wiping scions or
         mirrors — also wipes the delta basis, which forces the resync
         path, never this one.)  Skipping it makes a quiescent round's
         table traffic O(messages), not O(messages x entering set):
         at 16 nodes x 4096 objects the reconciliation sweep below was
         over 80% of a whole-cluster collection's wall-clock. *)
      bump t "gc.cleaner.noop_tables"
    | Mirror_delta ->
      (* Churn-proportional path: the delta applied cleanly, so only the
         keys it names can have changed anything local.  Deletions are
         the only way coverage shrinks, so they drive scion removal and
         entering retirement; additions drive entering re-adds and the
         conservative re-assert.  Everything else was reconciled when it
         first arrived and is untouched by this message.  The one check
         this path defers is the ageing of [registered_after_send]
         protection (an entry kept only because it was registered after
         an earlier send): the periodic full table (every [full_period]
         rounds) still runs the exhaustive sweep and retires it — a
         bounded conservative delay, never an unsafe deletion.  This is
         what makes a collection wave's table traffic O(round churn)
         instead of O(stub table x destinations). *)
      (match msg.tm_body with
      | Full _ -> assert false (* fulls classify as [Mirror_rewritten] *)
      | Delta
          {
            db_add_inter;
            db_del_inter;
            db_add_exiting;
            db_del_exiting;
            db_del_intra;
            _;
          } ->
          let dir = Protocol.directory proto at in
          let store = Protocol.store proto at in
          (* Scions uncovered by this round's deletions.  The sweep
             predicate is identical to the rewritten path's; it just
             only runs when a deletion could have uncovered something. *)
          if db_del_inter <> [] then
            List.iter
              (fun target_bunch ->
                if
                  Gc_state.has_inter_scions_from t ~node:at ~bunch:target_bunch
                    ~src:sender
                then
                  let removed =
                    Gc_state.remove_inter_scions t ~node:at ~bunch:target_bunch
                      (fun scion ->
                        Ids.Node.equal scion.Ssp.xs_src_node sender
                        && Ids.Bunch.equal scion.Ssp.xs_src_bunch msg.tm_bunch
                        && not
                             (Gc_state.mirror_covers_inter t ~node:at ~sender
                                ~bunch:msg.tm_bunch scion))
                  in
                  if removed > 0 then
                    bump t ~by:removed "gc.cleaner.inter_scions_removed")
              (Gc_state.bunches_with_tables t ~node:at);
          if
            db_del_intra <> []
            && Gc_state.has_intra_scions_from t ~node:at ~bunch:msg.tm_bunch
                 ~src:sender
          then begin
            let removed_intra =
              Gc_state.remove_intra_scions t ~node:at ~bunch:msg.tm_bunch
                (fun scion ->
                  Ids.Node.equal scion.Ssp.xn_owner_side sender
                  && not
                       (Gc_state.mirror_covers_intra t ~node:at ~sender
                          ~bunch:msg.tm_bunch ~holder:at scion))
            in
            if removed_intra > 0 then
              bump t ~by:removed_intra "gc.cleaner.intra_scions_removed"
          end;
          (* Entering entries that this round's deletions stop
             protecting: the exiting flips addressed to this node, plus
             the targets of deleted inter stubs (a stub claim was the
             keep-alive for checkpoint-restored entries). *)
          let candidates =
            List.filter_map
              (fun (uid, target) ->
                if Ids.Node.equal target at then Some uid else None)
              db_del_exiting
            @ List.map (fun (_, _, _, target_uid) -> target_uid) db_del_inter
          in
          Perfcount.(
            counters.gc_table_entries <-
              counters.gc_table_entries + List.length candidates);
          if candidates <> [] then begin
            let claimed =
              List.fold_left
                (fun acc (uid, target) ->
                  if Ids.Node.equal target at then Ids.Uid_set.add uid acc
                  else acc)
                Ids.Uid_set.empty
                (Gc_state.mirror_exiting t ~node:at ~sender ~bunch:msg.tm_bunch)
            in
            List.iter
              (fun uid ->
                let belongs_to_bunch =
                  match Store.addr_of_uid store uid with
                  | Some a -> (
                      match Store.resolve store a with
                      | Some (_, obj) ->
                          Ids.Bunch.equal obj.Heap_obj.bunch msg.tm_bunch
                      | None -> false)
                  | None -> false
                in
                let registered_after_send =
                  Directory.entering_registration_seq dir ~uid ~from:sender
                  >= seq
                in
                let stub_claimed =
                  Gc_state.mirror_claims_target t ~node:at ~sender uid
                in
                if
                  Directory.is_entering_from dir ~uid ~from:sender
                  && belongs_to_bunch
                  && (not (Ids.Uid_set.mem uid claimed))
                  && (not registered_after_send)
                  && not stub_claimed
                then begin
                  Directory.remove_entering dir ~uid ~from:sender;
                  bump t "gc.cleaner.entering_removed"
                end)
              (List.sort_uniq Ids.Uid.compare candidates)
          end;
          (* New exiting claims addressed here become entering entries;
             new stubs re-assert protection if no matching scion exists
             (same §6.1-dual repair as the rewritten path, restricted to
             the keys that just arrived). *)
          List.iter
            (fun (uid, target) ->
              if Ids.Node.equal target at then
                Directory.add_entering dir ~seq ~uid ~from:sender)
            db_add_exiting;
          Perfcount.(
            counters.gc_table_entries <-
              counters.gc_table_entries + List.length db_add_inter);
          List.iter
            (fun ((_, _, _, target_uid) as key) ->
              match Directory.find dir target_uid with
              | Some r
                when r.Directory.is_owner
                     && not
                          (Directory.is_entering_from dir ~uid:target_uid
                             ~from:sender) ->
                  let scion_here =
                    match Store.addr_of_uid store target_uid with
                    | None -> false
                    | Some a -> (
                        match Store.resolve store a with
                        | None -> false
                        | Some (_, tobj) ->
                            List.exists
                              (fun s -> Ssp.inter_scion_key s = key)
                              (Gc_state.inter_scions_for_uid t ~node:at
                                 ~bunch:tobj.Heap_obj.bunch ~uid:target_uid))
                  in
                  if not scion_here then begin
                    Directory.add_entering dir ~seq ~uid:target_uid
                      ~from:sender;
                    bump t "gc.cleaner.entering_reasserted"
                  end
              | Some _ | None -> ())
            db_add_inter;
          Gc_state.sample_ssp_gauges t ~node:at)
    | Mirror_rewritten ->
      begin
    (* Inter-bunch scions held here whose stub lived in the sender's copy
       of the bunch: drop those the (mirrored) stub table no longer
       covers.  Coverage is an O(1) key lookup per scion. *)
    List.iter
      (fun target_bunch ->
        if Gc_state.has_inter_scions_from t ~node:at ~bunch:target_bunch ~src:sender
        then
          let removed =
            Gc_state.remove_inter_scions t ~node:at ~bunch:target_bunch
              (fun scion ->
                Ids.Node.equal scion.Ssp.xs_src_node sender
                && Ids.Bunch.equal scion.Ssp.xs_src_bunch msg.tm_bunch
                && not
                     (Gc_state.mirror_covers_inter t ~node:at ~sender
                        ~bunch:msg.tm_bunch scion))
          in
          if removed > 0 then
            bump t ~by:removed "gc.cleaner.inter_scions_removed")
      (Gc_state.bunches_with_tables t ~node:at);
    (* Intra-bunch scions for this bunch whose owner side is the sender:
       keep only those the sender's intra stubs still name. *)
    if Gc_state.has_intra_scions_from t ~node:at ~bunch:msg.tm_bunch ~src:sender
    then begin
      let removed_intra =
        Gc_state.remove_intra_scions t ~node:at ~bunch:msg.tm_bunch (fun scion ->
            Ids.Node.equal scion.Ssp.xn_owner_side sender
            && not
                 (Gc_state.mirror_covers_intra t ~node:at ~sender
                    ~bunch:msg.tm_bunch ~holder:at scion))
      in
      if removed_intra > 0 then
        bump t ~by:removed_intra "gc.cleaner.intra_scions_removed"
    end;
    (* Entering ownerPtrs: reconcile the entries originating at the sender
       for objects of this bunch against the sender's exiting list. *)
    let dir = Protocol.directory proto at in
    let store = Protocol.store proto at in
    let claimed =
      (* The complete exiting list, reassembled from fulls and deltas by
         the mirror — delta messages only carry the flips. *)
      List.fold_left
        (fun acc (uid, target) ->
          if Ids.Node.equal target at then Ids.Uid_set.add uid acc else acc)
        Ids.Uid_set.empty
        (Gc_state.mirror_exiting t ~node:at ~sender:msg.tm_sender
           ~bunch:msg.tm_bunch)
    in
    let sender_entries = Directory.entering_uids_from dir ~from:msg.tm_sender in
    Perfcount.(
      counters.gc_table_entries <-
        counters.gc_table_entries + List.length sender_entries);
    List.iter
      (fun uid ->
        let belongs_to_bunch =
          match Store.addr_of_uid store uid with
          | Some a -> (
              match Store.resolve store a with
              | Some (_, obj) -> Ids.Bunch.equal obj.Heap_obj.bunch msg.tm_bunch
              | None -> false)
          | None -> false
        in
        let registered_after_send =
          Directory.entering_registration_seq dir ~uid ~from:msg.tm_sender
          >= seq
        in
        (* Keep-alive across owner crashes: a checkpoint-restored
           entering entry stands in for a scion that died with this
           node.  The sender's exiting list never named such an
           object — its claim rides in the inter-bunch stub tables —
           so consult the stub mirrors before retiring the entry. *)
        let stub_claimed =
          Gc_state.mirror_claims_target t ~node:at ~sender:msg.tm_sender uid
        in
        if belongs_to_bunch
           && (not (Ids.Uid_set.mem uid claimed))
           && (not registered_after_send)
           && not stub_claimed
        then begin
          Directory.remove_entering dir ~uid ~from:msg.tm_sender;
          bump t "gc.cleaner.entering_removed"
        end)
      sender_entries;
    Ids.Uid_set.iter
      (fun uid -> Directory.add_entering dir ~seq ~uid ~from:msg.tm_sender)
      claimed;
    (* The dual of the §6.1 deletion test, needed only after a crash: a
       mirrored stub whose matching scion no longer exists here (it was
       volatile state of a previous incarnation) leaves its target owned
       here with no root.  Re-assert protection as a conservative
       entering entry; it is retired through the normal reconciliation
       above once the claimant drops the stub.  Doing this on every
       stub-table arrival makes the repair independent of the order the
       sender's per-bunch tables land in. *)
    let mirror_keys =
      Gc_state.mirror_inter_keys t ~node:at ~sender:msg.tm_sender
        ~bunch:msg.tm_bunch
    in
    Perfcount.(
      counters.gc_table_entries <-
        counters.gc_table_entries + List.length mirror_keys);
    List.iter
      (fun ((_, _, _, target_uid) as key) ->
        match Directory.find dir target_uid with
        | Some r
          when r.Directory.is_owner
               && not
                    (Directory.is_entering_from dir ~uid:target_uid
                       ~from:msg.tm_sender) ->
            (* Scion presence is a by-target-uid index lookup, never a
               scan of the bunch's whole scion table. *)
            let scion_here =
              match Store.addr_of_uid store target_uid with
              | None -> false
              | Some a -> (
                  match Store.resolve store a with
                  | None -> false
                  | Some (_, tobj) ->
                      List.exists
                        (fun s -> Ssp.inter_scion_key s = key)
                        (Gc_state.inter_scions_for_uid t ~node:at
                           ~bunch:tobj.Heap_obj.bunch ~uid:target_uid))
            in
            if not scion_here then begin
              Directory.add_entering dir ~seq ~uid:target_uid
                ~from:msg.tm_sender;
              bump t "gc.cleaner.entering_reasserted"
            end
        | Some _ | None -> ())
      mirror_keys;
    Gc_state.sample_ssp_gauges t ~node:at
    end
  end

(* Cleaner merges run both inline (a node processing its own tables) and
   at message delivery, possibly long after the emitting collection; the
   timer here attributes that work to the reconcile phase wherever it
   lands. *)
let receive t ~at ~seq msg =
  let t0 = Sys.time () in
  receive_untimed t ~at ~seq msg;
  let ns = int_of_float ((Sys.time () -. t0) *. 1e9) in
  Perfcount.counters.Perfcount.gc_ns_reconcile <-
    Perfcount.counters.Perfcount.gc_ns_reconcile + ns

let destinations t ~node ~bunch ~old_inter ~new_inter ~old_intra ~new_intra
    ~exiting =
  let proto = Gc_state.proto t in
  let open Ids in
  let add_inter acc (s : Ssp.inter_stub) = Node_set.add s.Ssp.is_scion_at acc in
  let add_intra acc (s : Ssp.intra_stub) = Node_set.add s.Ssp.ns_holder acc in
  let add_owner acc (_, n) = Node_set.add n acc in
  let dests =
    Node_set.of_list (Protocol.bunch_replica_nodes proto bunch)
    |> fun acc ->
    List.fold_left add_inter acc old_inter |> fun acc ->
    List.fold_left add_inter acc new_inter |> fun acc ->
    List.fold_left add_intra acc old_intra |> fun acc ->
    List.fold_left add_intra acc new_intra |> fun acc ->
    List.fold_left add_owner acc exiting |> fun acc ->
    List.fold_left add_owner acc (Gc_state.last_exiting t ~node ~bunch)
  in
  Node_set.elements (Node_set.remove node dests)

(* A full table goes out at least every [full_period] rounds even on a
   healthy delta stream, bounding how long a silently diverged mirror
   (e.g. a duplicated-then-reordered delta) can last.  The period sets
   the steady-state floor of the delta encoding: roughly 1/full_period
   of a quiet stream's bytes are periodic refresh. *)
let full_period = 64

let broadcast t ~node ~bunch ~old_inter ~old_intra ~exiting =
  let proto = Gc_state.proto t in
  let net = Protocol.net proto in
  (* Table exchanges are per-bunch, and a bunch's segments all come from
     one registry shard — route and account them against it. *)
  let shard = Registry.shard_of_bunch (Protocol.registry proto) bunch in
  let new_inter = Gc_state.inter_stubs t ~node ~bunch in
  let new_intra = Gc_state.intra_stubs t ~node ~bunch in
  let dests =
    destinations t ~node ~bunch ~old_inter ~new_inter ~old_intra ~new_intra
      ~exiting
  in
  (* A resend must also reach last round's destinations: after a loss the
     replaced tables no longer name the peers whose scions must go. *)
  let dests =
    List.sort_uniq Ids.Node.compare
      (dests @ Gc_state.last_broadcast_dests t ~node ~bunch)
    |> List.filter (fun n -> not (Ids.Node.equal n node))
  in
  Gc_state.record_broadcast_dests t ~node ~bunch dests;
  (* Peers that are down or cut off right now are deferred, not
     forgotten: they stay in the recorded destination list, so the next
     round's rebroadcast reaches them once they return or the partition
     heals — the same §6.1 loss-repair path that covers dropped tables.
     (A deferred peer misses rounds, so its next table is a full one and
     its mirror resynchronises via the existing basis-mismatch path.)
     Never block on a dead or partitioned peer. *)
  let live_dests = List.filter (fun d -> Net.reachable net node d) dests in
  let deferred = List.length dests - List.length live_dests in
  if deferred > 0 then bump t ~by:deferred "gc.cleaner.deferred_unreachable";
  Gc_state.note_exiting t ~node ~bunch exiting;
  let full_body =
    Full { fb_inter = new_inter; fb_intra = new_intra; fb_exiting = exiting }
  in
  let full_sz = full_bytes_of ~inter:new_inter ~intra:new_intra ~exiting in
  let delta = Gc_state.stub_delta t ~node ~bunch in
  let delta_body_for basis =
    Delta
      {
        db_basis = basis;
        db_add_inter = delta.Gc_state.sd_add_inter;
        db_del_inter = delta.Gc_state.sd_del_inter;
        db_add_intra = delta.Gc_state.sd_add_intra;
        db_del_intra = delta.Gc_state.sd_del_intra;
        db_add_exiting = delta.Gc_state.sd_add_exiting;
        db_del_exiting = delta.Gc_state.sd_del_exiting;
      }
  in
  let delta_sz =
    msg_bytes { tm_sender = node; tm_bunch = bunch; tm_body = delta_body_for 0 }
  in
  (* The journal rebases after every round, so a delta covers exactly
     one round of churn.  Still send fulls periodically (bounding mirror
     drift) and whenever the round's churn costs as much as the table
     itself — common for small tables, where a full is the cheaper and
     sturdier encoding anyway. *)
  let round = Gc_state.broadcast_round t ~node ~bunch in
  let full_round =
    (round + 1) mod full_period = 0 || 2 * delta_sz >= full_sz
  in
  let send_to dst =
    let body =
      if full_round then full_body
      else
        match Gc_state.dest_basis t ~node ~bunch ~dest:dst with
        | Some (r, basis) when r = round - 1 -> delta_body_for basis
        | Some _ | None ->
            (* First contact, or the peer missed a round (down, or
               dropped out of the destination set): the journal no
               longer covers the gap, so restart the stream. *)
            full_body
    in
    let msg = { tm_sender = node; tm_bunch = bunch; tm_body = body } in
    let wire = msg_bytes msg in
    bump t ~by:full_sz "tables.full_bytes";
    bump t ~by:wire "tables.delta_bytes";
    (match body with
    | Full _ -> bump t "gc.cleaner.full_sent"
    | Delta _ -> bump t "gc.cleaner.delta_sent");
    Net.send net ~src:node ~dst ~kind:Net.Stub_table ~bytes:wire ~shard
      (fun seq -> receive t ~at:dst ~seq msg);
    (* The transport seq just stamped on this pair is the basis the next
       round's delta to this peer will name; the receiver's mirror
       records the same number when it processes the message. *)
    Gc_state.record_dest_basis t ~node ~bunch ~dest:dst ~round
      ~basis:(Net.current_seq net ~src:node ~dst)
  in
  List.iter send_to live_dests;
  Gc_state.rebase_stub_journal t ~node ~bunch;
  (* The scion cleaner is a per-node service operating on all local
     bunches (§6.1): the node's own scions matching its own regenerated
     stub tables are processed by direct hand-off, no message needed. *)
  let self_seq =
    match Gc_state.last_table_seq t ~node ~sender:node ~bunch with
    | Some s -> s + 1
    | None -> 1
  in
  receive t ~at:node ~seq:self_seq
    { tm_sender = node; tm_bunch = bunch; tm_body = full_body };
  List.length live_dests
