examples/bank_ledger.ml: Addr Array Bmx Bmx_memory Bmx_util Printf Rng Stats
