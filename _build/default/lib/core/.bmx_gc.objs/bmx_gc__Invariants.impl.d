lib/core/invariants.ml: Bmx_dsm Bmx_memory Bmx_netsim Bmx_util Gc_state Ids List Ssp Stats
