type t = {
  spans : Span.t list;
  snap : Metrics.snapshot;
  gc_acquires : int;
  certified : bool option;
}

let latency_family (s : Span.t) =
  match s.Span.name with
  | "acquire.read" ->
      Some
        (if s.Span.track = Span.Gc then "token_acquire.gc"
         else "token_acquire.read")
  | "acquire.write" ->
      Some
        (if s.Span.track = Span.Gc then "token_acquire.gc"
         else "token_acquire.write")
  | "gc.bgc" | "gc.ggc" -> Some "gc.pause"
  | name when String.length name > 4 && String.sub name 0 4 = "msg." ->
      Some ("msg." ^ String.sub name 4 (String.length name - 4))
  | _ -> None

let of_events ~metrics timed =
  let spans = Span.of_events timed in
  (* Created at zero so the non-interference number is in every report,
     then bumped per GC-actor acquisition. *)
  Metrics.incr metrics ~by:0 "gc.token_acquires";
  List.iter
    (fun (ev : Span.t) ->
      (match ev.Span.name with
      | "acquire.read" | "acquire.write" when ev.Span.track = Span.Gc ->
          Metrics.incr metrics "gc.token_acquires"
      | _ -> ());
      match (latency_family ev, ev.Span.dur) with
      | Some fam, Some d ->
          Metrics.observe metrics ("latency." ^ fam) (float_of_int d)
      | _ -> ())
    spans;
  let snap = Metrics.snapshot metrics in
  {
    spans;
    snap;
    gc_acquires =
      (match Metrics.get snap "gc.token_acquires" with
      | Some (Metrics.Counter c) -> c
      | _ -> 0);
    certified = None;
  }

let with_certified t verdict = { t with certified = Some verdict }
let certified t = t.certified
let spans t = t.spans
let snapshot t = t.snap
let gc_token_acquires t = t.gc_acquires
let ok t = t.gc_acquires = 0

let latency t fam =
  match Metrics.get t.snap ("latency." ^ fam) with
  | Some (Metrics.Histogram s) -> Some s
  | _ -> None

let latency_rows t =
  List.filter_map
    (fun ((name, node), v) ->
      match (node, v) with
      | None, Metrics.Histogram s
        when String.length name > 8 && String.sub name 0 8 = "latency." ->
          Some (name, s)
      | _ -> None)
    t.snap

let to_text t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "== metrics ==\n";
  Buffer.add_string buf (Metrics.to_text t.snap);
  Buffer.add_string buf "\n== latency (virtual usteps) ==\n";
  Buffer.add_string buf
    (Printf.sprintf "%-34s %8s %8s %8s %8s %8s\n" "span" "n" "p50" "p90" "p99"
       "max");
  List.iter
    (fun (name, (s : Metrics.summary)) ->
      Buffer.add_string buf
        (Printf.sprintf "%-34s %8d %8.0f %8.0f %8.0f %8.0f\n" name s.s_count
           s.s_p50 s.s_p90 s.s_p99 s.s_max))
    (latency_rows t);
  Buffer.add_string buf
    (Printf.sprintf "\nnon-interference: gc.token_acquires = %d%s\n"
       t.gc_acquires
       (if ok t then " (OK: GC never blocked on the consistency protocol)"
        else " (VIOLATION: the GC acquired tokens)"));
  (match t.certified with
  | None -> ()
  | Some v ->
      Buffer.add_string buf
        (Printf.sprintf "certified:        %s\n"
           (if v then
              "yes (happens-before: no races, read mapping intact, GC \
               erasure holds)"
            else "NO (happens-before certificate failed)")));
  Buffer.contents buf

let to_json t =
  Json.Obj
    [
      ("metrics", Metrics.to_json t.snap);
      ("spans", Json.Int (List.length t.spans));
      ("gc_token_acquires", Json.Int t.gc_acquires);
      ( "certified",
        match t.certified with None -> Json.Null | Some v -> Json.Bool v );
      ("ok", Json.Bool (ok t));
    ]
