lib/baseline/refcount.mli: Bmx Bmx_util
