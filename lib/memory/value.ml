type t = Ref of Bmx_util.Addr.t | Data of int

let nil = Ref Bmx_util.Addr.null
let is_pointer = function Ref a -> not (Bmx_util.Addr.is_null a) | Data _ -> false

let equal v1 v2 =
  match (v1, v2) with
  | Ref a, Ref b -> Bmx_util.Addr.equal a b
  | Data x, Data y -> Int.equal x y
  | Ref _, Data _ | Data _, Ref _ -> false

(* Raw tagged-int encoding for the flat arena (Flatheap): data words get
   a low tag bit of 1, pointers a tag bit of 0 so the nil pointer
   (Addr.null = 0) encodes as the all-zero word — freshly allocated slots
   are valid objects full of nil.  Data decodes with [asr] to keep the
   sign. *)
let to_raw = function
  | Data n -> (n lsl 1) lor 1
  | Ref a -> a lsl 1

let of_raw r = if r land 1 = 1 then Data (r asr 1) else Ref (r lsr 1)
let raw_nil = 0
let raw_is_pointer r = r land 1 = 0 && r <> 0
let raw_addr r = r lsr 1

let pp ppf = function
  | Ref a when Bmx_util.Addr.is_null a -> Format.pp_print_string ppf "nil"
  | Ref a -> Format.fprintf ppf "&%a" Bmx_util.Addr.pp a
  | Data n -> Format.fprintf ppf "#%d" n
