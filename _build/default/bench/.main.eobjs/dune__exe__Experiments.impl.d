bench/experiments.ml: Addr Array Bmx Bmx_baseline Bmx_dsm Bmx_gc Bmx_memory Bmx_netsim Bmx_rvm Bmx_util Bmx_workload Fmt Harness Ids List Printf Result Rng Stats Table
