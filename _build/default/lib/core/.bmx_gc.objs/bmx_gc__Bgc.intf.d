lib/core/bgc.mli: Bmx_util Collect Gc_state
