(** The bunch garbage collector (§4).

    A BGC collects one local replica of one bunch, independently of any
    other bunch and of the other replicas of the same bunch.  Based on the
    concurrent compacting collector of O'Toole et al. (§4.1): small flip,
    no virtual-memory tricks, non-destructive copying. *)

val run :
  ?economical:bool -> Gc_state.t -> node:Bmx_util.Ids.Node.t
  -> bunch:Bmx_util.Ids.Bunch.t -> Collect.report
(** Collect the replica of [bunch] cached at [node].  Acquires no token
    and sends no synchronous message; the reconstructed reachability
    tables go out as background messages (deliver them with
    {!Bmx_netsim.Net.drain}).

    With [~economical:true] (default false), two provably-redundant
    costs are elided: a pair whose {!Gc_state.dirty_epoch} is unchanged
    since its previous collection is skipped outright (counted under
    [gc.bgc.skipped_clean], an all-zero report), and a collection whose
    trace finds nothing dead does not evacuate — relocating survivors
    with no from-space to reclaim only manufactures forwarder and
    location-update churn.  Liveness is unaffected: any mutation,
    received deletion or crash bumps the epoch and the next collection
    runs in full. *)

val run_all_replicas :
  ?economical:bool -> Gc_state.t -> bunch:Bmx_util.Ids.Bunch.t
  -> Collect.report list
(** Convenience for tests and benchmarks: run the BGC on every node that
    caches the bunch, in node order (still one independent local
    collection per replica). *)
