lib/workload/scenario.mli: Bmx Bmx_dsm Bmx_util
