examples/design_db.ml: Bmx Bmx_dsm Bmx_memory Bmx_rvm Bmx_util List Printf Stats
