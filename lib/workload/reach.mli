(** Incremental reachability mirror for the workload driver's legality
    memo.

    The driver may only operate on objects a real mutator could still
    name — objects reachable from some node's roots over the
    authoritative (owner-copy) pointer graph.  Recomputing that set from
    scratch ({!Bmx.Audit.union_reachable}) is a full cluster traversal;
    doing it after every root churn or pointer relink made the driver's
    per-op cost grow with the heap.  This module keeps the reachable set
    {e exact} under incremental updates instead:

    - the driver's object population is fixed at [setup], so objects are
      dense indexes [0 .. n-1] and the pointer graph is a flat adjacency
      array ([out_degree] slots per object) plus array-encoded in-edge
      lists — no allocation on any update path;
    - {e additions} (new edge from a reachable source, new root) mark the
      newly reachable region by forward traversal — work proportional to
      what actually became reachable;
    - {e removals} (edge overwrite, last root dropped) re-derive the old
      target's status by a backward anchor search: walk in-edges through
      still-marked predecessors until a rooted {e anchor} proves the
      object still reachable, or the search exhausts a rootless backward
      closure — in which case {e every} member of that closure is
      unreachable (any rooted path into it would have surfaced as an
      anchor) and is unmarked, and the closure's out-targets are
      re-checked in cascade (they may have lost their only support).
      Work is proportional to the dying region and its frontier, not the
      heap.

    The invariant, asserted by [test/test_perf_model.ml] against the
    audit oracle: after every mutation the mark bitmap {e equals} the
    from-scratch reachable set.  All traversal scratch (queues, stamps)
    is preallocated at [create]. *)

type t

val create : n:int -> arity:int -> t
(** Mirror for [n] objects with [arity] pointer slots each.  All edges
    empty, no roots, nothing reachable. *)

val reset : t -> unit
(** Forget all edges, roots and marks (before a resync from cluster
    truth). *)

val set_edge : t -> src:int -> slot:int -> int -> unit
(** [set_edge t ~src ~slot target] records that [src]'s pointer slot
    [slot] now references [target] ([-1] = nil).  Unlinks the slot's
    previous target, marks forward from [target] if [src] is reachable,
    and re-derives the previous target's reachability. *)

val add_root : t -> int -> unit
(** One more root names the object; marks its forward closure. *)

val drop_root : t -> int -> unit
(** One root fewer; when the count hits zero the object's reachability
    is re-derived (and its dependents', in cascade). *)

val reachable : t -> int -> bool
(** O(1): is the object reachable right now? *)

val root_count : t -> int -> int
val reachable_count : t -> int
(** O(n) — diagnostic, not a hot path. *)
