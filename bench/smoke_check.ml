(* Gate for the @bench-smoke alias: re-parse the BENCH line the
   e20-smoke run printed and fail the build if the run broke one of the
   tracked invariants — the collector must never touch the DSM token
   machinery (§5), and the steady-state delta encoding must not cost
   more than full tables would have.  The partitioned configuration
   additionally gates the degraded mode: §5 must hold across a network
   cut, and the delta-table streams must resynchronize within a bounded
   number of cleaner cycles after heal. *)

module Json = Bmx_obs.Json

let die fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let int_member name obj =
  match Json.member name obj with
  | Some (Json.Int i) -> i
  | Some _ -> die "bench-smoke: %S is not an integer" name
  | None -> die "bench-smoke: missing field %S" name

let () =
  let path = Sys.argv.(1) in
  let ic = open_in path in
  let bench = ref None in
  (try
     while true do
       let line = input_line ic in
       if String.length line > 6 && String.sub line 0 6 = "BENCH " then
         bench := Some (String.sub line 6 (String.length line - 6))
     done
   with End_of_file -> close_in ic);
  let raw =
    match !bench with
    | Some s -> s
    | None -> die "bench-smoke: no BENCH line in %s" path
  in
  let json =
    match Json.parse raw with
    | Ok j -> j
    | Error e -> die "bench-smoke: BENCH line does not parse: %s" e
  in
  let configs =
    match Json.member "configs" json with
    | Some (Json.List l) -> l
    | _ -> die "bench-smoke: no configs list"
  in
  if configs = [] then die "bench-smoke: empty configs list";
  List.iter
    (fun cfg ->
      let nodes = int_member "nodes" cfg in
      let tokens = int_member "gc_token_acquires" cfg in
      if tokens <> 0 then
        die "bench-smoke: %d-node run acquired %d GC tokens (must be 0)"
          nodes tokens;
      if Json.member "partitioned" cfg = Some (Json.Bool true) then begin
        (if Json.member "converged" cfg <> Some (Json.Bool true) then
           die
             "bench-smoke: %d-node partitioned run never stopped resyncing \
              after heal"
             nodes);
        let rounds = int_member "heal_resync_rounds" cfg in
        if rounds > 4 then
          die
            "bench-smoke: %d-node partitioned run took %d cleaner cycles to \
             resync after heal (bound 4)"
            nodes rounds;
        Printf.printf
          "bench-smoke: %d nodes partitioned ok — gc tokens 0, resynced %d \
           cycle(s) after heal\n"
          nodes rounds
      end
      else begin
      let delta = int_member "steady_delta_bytes" cfg in
      let full = int_member "steady_full_bytes" cfg in
      if delta > full then
        die
          "bench-smoke: %d-node steady-state delta bytes (%d) exceed \
           full-table bytes (%d)"
          nodes delta full;
      Printf.printf
        "bench-smoke: %d nodes ok — gc tokens 0, steady delta %dB <= full %dB \
         (%.1f%%)\n"
        nodes delta full
        (if full = 0 then 0.0 else 100.0 *. float_of_int delta /. float_of_int full)
      end)
    configs
