test/test_coverage.ml: Addr Alcotest Bmx Bmx_dsm Bmx_gc Bmx_memory Bmx_netsim Bmx_util Bmx_workload List Printf Result Stats Tracelog
