open Bmx_util
module Net = Bmx_netsim.Net
module Protocol = Bmx_dsm.Protocol
module Registry = Bmx_memory.Registry
module Store = Bmx_memory.Store
module Value = Bmx_memory.Value
module Gc_state = Bmx_gc.Gc_state
module Barrier = Bmx_gc.Barrier
module Invariants = Bmx_gc.Invariants
module Bgc = Bmx_gc.Bgc
module Ggc = Bmx_gc.Ggc
module Reclaim = Bmx_gc.Reclaim

type t = {
  proto : Protocol.t;
  gc : Gc_state.t;
  net : (int -> unit) Net.t;
  stats : Stats.registry;
  rng : Rng.t;
  mutable next_node : int;
  mutable next_bunch : int;
}

let create ?(nodes = 3) ?mode ?update_policy ?(seed = 42) ?(trace_events = false)
    () =
  let stats = Stats.create_registry () in
  let net = Net.create ~stats () in
  let registry = Registry.create () in
  let proto = Protocol.create ~net ~registry ?mode ?update_policy () in
  Net.set_evlog net (Protocol.evlog proto);
  Trace_event.set_enabled (Protocol.evlog proto) trace_events;
  let gc = Gc_state.create ~proto in
  Invariants.install gc;
  Net.set_handler net (fun env -> env.Net.payload env.Net.seq);
  let t =
    { proto; gc; net; stats; rng = Rng.make seed; next_node = 0; next_bunch = 0 }
  in
  for _ = 1 to nodes do
    Protocol.add_node proto t.next_node;
    t.next_node <- t.next_node + 1
  done;
  t

let proto t = t.proto
let gc t = t.gc
let net t = t.net
let stats t = t.stats
let tracer t = Protocol.tracer t.proto
let evlog t = Protocol.evlog t.proto
let set_event_trace t b = Trace_event.set_enabled (Protocol.evlog t.proto) b
let events t = Trace_event.events (Protocol.evlog t.proto)
let rng t = t.rng
let nodes t = Protocol.nodes t.proto

let add_node t =
  let n = t.next_node in
  t.next_node <- t.next_node + 1;
  Protocol.add_node t.proto n;
  n

let new_bunch t ~home =
  let b = t.next_bunch in
  t.next_bunch <- t.next_bunch + 1;
  Protocol.declare_bunch t.proto ~bunch:b ~home;
  ignore (Store.fresh_segment (Protocol.store t.proto home) ~bunch:b ());
  b

let alloc t ~node ~bunch fields =
  (* Allocate with blank fields, then initialize through the barrier so
     inter-bunch references present at birth create their SSPs (§3.2). *)
  let blank = Array.map (fun _ -> Value.Data 0) fields in
  let addr = Protocol.alloc t.proto ~node ~bunch ~fields:blank in
  Array.iteri (fun i v -> Barrier.write_field t.gc ~node addr i v) fields;
  addr

let acquire_read t ~node addr = Protocol.acquire t.proto ~node addr `Read
let acquire_write t ~node addr = Protocol.acquire t.proto ~node addr `Write
let release t ~node addr = Protocol.release t.proto ~node addr
let demand_fetch t ~node addr = Protocol.demand_fetch t.proto ~node addr
let read t ?weak ~node addr i = Protocol.read_field t.proto ?weak ~node addr i
let write t ~node addr i v = Barrier.write_field t.gc ~node addr i v
let ptr_eq t ~node a b = Protocol.ptr_eq t.proto ~node a b
let add_root t ~node addr = Gc_state.add_root t.gc ~node addr

let remove_root t ~node addr =
  (* The collector rewrites stack roots through forwarders at each local
     collection (§4.4), so the caller's remembered address may be an
     older name for the same object: match by identity, exact address
     first. *)
  let roots = Gc_state.roots t.gc ~node in
  if List.exists (Addr.equal addr) roots then Gc_state.remove_root t.gc ~node addr
  else
    match Protocol.uid_of_addr t.proto addr with
    | None -> ()
    | Some uid -> (
        let same_object r = Protocol.uid_of_addr t.proto r = Some uid in
        match List.find_opt same_object roots with
        | Some r -> Gc_state.remove_root t.gc ~node r
        | None -> ())
let roots t ~node = Gc_state.roots t.gc ~node
let bgc t ~node ~bunch = Bgc.run t.gc ~node ~bunch
let ggc t ~node = Ggc.run t.gc ~node ()
let reclaim_from_space t ~node ~bunch = Reclaim.run t.gc ~node ~bunch
let drain t = Net.drain t.net

let gc_round t =
  let reclaimed = ref 0 in
  List.iter
    (fun bunch ->
      (* Every node that caches the bunch OR holds GC tables for it runs
         its local BGC: a node can hold scions for a bunch it has no
         copies of, and those tables must keep being advertised. *)
      let nodes =
        List.filter
          (fun node ->
            Protocol.store t.proto node |> fun s ->
            Bmx_memory.Store.objects_of_bunch s bunch <> []
            || Bmx_gc.Gc_state.inter_scions t.gc ~node ~bunch <> []
            || Bmx_gc.Gc_state.intra_scions t.gc ~node ~bunch <> []
            || Bmx_gc.Gc_state.inter_stubs t.gc ~node ~bunch <> []
            (* Peers that once received this node's tables keep getting
               rebroadcasts: that is the §6.1 retransmission that repairs
               losses without acknowledgements. *)
            || Bmx_gc.Gc_state.last_broadcast_dests t.gc ~node ~bunch <> [])
          (Protocol.nodes t.proto)
      in
      List.iter
        (fun node ->
          let r = Bgc.run t.gc ~node ~bunch in
          reclaimed := !reclaimed + r.Bmx_gc.Collect.r_reclaimed)
        nodes)
    (Protocol.bunches t.proto);
  ignore (Net.drain t.net);
  !reclaimed

let collect_until_quiescent t ?max_rounds () =
  (* A zero-reclaim round can still make progress: its trailing drain may
     remove scions or entering entries that enable reclamation several
     rounds later, one cleaner hop per round.  Chains are bounded by the
     cluster size, so quiescence needs (nodes + 1) empty rounds in a
     row. *)
  let quiet_needed = List.length (Protocol.nodes t.proto) + 1 in
  let max_rounds =
    match max_rounds with Some m -> m | None -> 10 + (3 * quiet_needed)
  in
  let rec go total zeros rounds =
    if rounds = 0 || zeros >= quiet_needed then total
    else
      let n = gc_round t in
      go (total + n) (if n = 0 then zeros + 1 else 0) (rounds - 1)
  in
  go 0 0 max_rounds

let uid_at t ~node addr =
  match Store.resolve (Protocol.store t.proto node) addr with
  | Some (_, obj) -> obj.Bmx_memory.Heap_obj.uid
  | None -> (
      match Protocol.uid_of_addr t.proto addr with
      | Some uid -> uid
      | None -> failwith "Cluster.uid_at: dangling address")

let cached_at t ~node ~uid =
  Store.addr_of_uid (Protocol.store t.proto node) uid <> None

let owner_of t ~uid = Protocol.owner_of t.proto uid
