(** Virtual-time metric series over ring-buffered windows.

    Slices a run into fixed-width windows of virtual µsteps
    ({!Bmx_util.Trace_event} timestamps, {!Bmx_util.Trace_event.quantum}
    µsteps per [Net.now] tick) and keeps a bounded ring of them:
    counters and gauges sampled from a {!Metrics} registry at each
    window close, plus windowed reservoir histograms ([latency.*]
    derived live from the typed event stream) so p50/p99/p999 are
    queryable over any interval.  The sampling path reads cached cell
    references — no snapshot lists — and charges
    [Perfcount.obs_sample_work] per column per close, keeping the
    observer effect allocation-bounded and heap-size-independent.

    Deterministic: reservoir evictions draw from a per-series
    deterministic {!Bmx_util.Rng}, so identical seeds yield identical
    series (and identical {!to_jsonl} output). *)

open Bmx_util

type t

type key = string * Ids.Node.t option

val create :
  ?window:int ->
  ?slots:int ->
  ?reservoir:int ->
  ?metrics:Metrics.t ->
  ?seed:int ->
  unit ->
  t
(** [window] is the width in virtual µsteps (default
    {!Bmx_util.Trace_event.quantum}, i.e. one [Net.now] tick); [slots]
    the ring capacity (default 512 windows — older windows are
    recycled); [reservoir] the per-window per-histogram sample cap
    (default 128). *)

val window : t -> int
val closed_windows : t -> int
(** Total windows closed so far (not capped by the ring). *)

(** {1 Feeding} *)

val attach : t -> Trace_event.log -> unit
(** Wire the series to a live run: taps the event log (latency
    derivation + clock advance) and, when a [metrics] registry was
    given, installs its sample observer. *)

val event : t -> int -> Trace_event.t -> unit
(** Feed one timed event by hand (what the tap calls). *)

val note : t -> int -> unit
(** Advance virtual time without an event (e.g. from a [Net] tick hook);
    closes any windows the new timestamp has passed. *)

val observe : t -> int -> key -> float -> unit
(** Add a raw histogram sample at the given virtual time. *)

val freeze : t -> unit
(** Close the in-progress window and stop accepting input (also detaches
    the metrics observer).  Call before end-of-run reporting so exit-time
    bulk observes don't pollute the last window. *)

val on_window : t -> (t -> unit) -> unit
(** Callback run after every window close — the live dashboard hook. *)

(** {1 Queries} — intervals are half-open [\[since, until)] in µsteps. *)

val span : t -> (int * int) option
(** Virtual-time range still covered by the ring. *)

val counter_sum :
  t -> ?node:Ids.Node.t -> since:int -> until:int -> string -> int

val gauge_last :
  t -> ?node:Ids.Node.t -> since:int -> until:int -> string -> int option
(** Level at the close of the last window overlapping the interval. *)

val percentile :
  t -> ?node:Ids.Node.t -> since:int -> until:int -> string -> float -> float
(** Merge the reservoirs of every overlapping window and estimate with
    the same round-to-nearest-rank rule as
    [Stats.Summary.percentile] — exact whenever no window evicted. *)

val sample_count :
  t -> ?node:Ids.Node.t -> since:int -> until:int -> string -> int
(** Samples {e offered} (not merely retained) over the interval. *)

val numeric_names : t -> key list
val histo_names : t -> key list

(** {1 Export} *)

val to_jsonl : t -> string
(** One JSON object per window (oldest first):
    [{"t0","t1","counters":[{"name","node"?,"v"}...],"gauges":[...],
    "histos":[{"name","node"?,"n","samples":[...]}]}]. *)

val of_jsonl : string -> (t, string) result
(** Rebuild a frozen, queryable series from {!to_jsonl} output. *)

val perfetto_counters : ?names:string list -> t -> Json.t list
(** Perfetto counter-track ("C") events, one per numeric column per
    window; [names] filters series names.  Merge into a trace via
    {!Perfetto.to_json}'s [?extra]. *)

val replay : ?window:int -> ?slots:int -> ?reservoir:int -> (int * Trace_event.t) list -> t
(** Offline: derive the latency series from a timed trace (counters and
    gauges are unavailable without a live registry).  Returns a frozen
    series. *)
